"""Figure 2: RHF CCSD for luciferin on the Sun/Opteron+IB cluster.

Paper series (32-256 processors): average time per CCSD iteration,
scaling efficiency relative to 32 processors, and the percentage of
elapsed time spent waiting for communication (8.4-13.4%).

Reproduced with the coarse model on the ``sun-opteron-ib`` machine;
the claims to check are the *shape*: near-linear scaling over this
modest range, and a roughly flat, low wait percentage.
"""

import pytest

from repro.chem import LUCIFERIN
from repro.machines import SUN_OPTERON_IB
from repro.perfmodel import ccsd_iteration_workload, sweep

from _tables import emit_table

PROCS = [32, 64, 128, 256]
SEG = 14


def generate_rows():
    workload = ccsd_iteration_workload(LUCIFERIN, seg=SEG)
    return sweep(workload, SUN_OPTERON_IB, PROCS, io_servers=8)


@pytest.mark.benchmark(group="fig2")
def test_fig2_luciferin_ccsd(benchmark):
    rows = benchmark(generate_rows)
    emit_table(
        "fig2_luciferin_ccsd",
        "Fig. 2 -- luciferin (C11H8O3S2N2) RHF CCSD, Sun/Opteron + InfiniBand",
        ["procs", "min/iter", "efficiency", "wait %"],
        [
            [r["procs"], r["time"] / 60, r["efficiency"], r["wait_percent"]]
            for r in rows
        ],
        notes=[
            "paper: efficiency stays near 1.0 over 32-256 procs; wait "
            "time 8.4-13.4% of elapsed",
        ],
    )
    # shape assertions: near-linear scaling, single-digit/low-teens wait
    assert rows[-1]["efficiency"] > 0.9
    assert all(2.0 < r["wait_percent"] < 20.0 for r in rows)
    # time per iteration roughly halves per doubling
    for a, b in zip(rows, rows[1:]):
        assert b["time"] < a["time"] * 0.65
