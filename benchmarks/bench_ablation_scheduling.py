"""Section V-B ablation: guided (shrinking-chunk) vs static scheduling.

The paper's master doles out pardo chunks whose size decreases as the
computation proceeds, "similar to the approach taken with guided
scheduling in OpenMP".  The alternative -- one static chunk per worker
-- load-imbalances whenever iteration costs vary (where clauses,
ragged edge blocks, heterogeneous terms).

We compare both policies (a) on the fine simulator with a triangular
``where M <= N`` iteration space whose per-iteration cost varies with
block shape, and (b) on the coarse model at scale.
"""

import pytest

from repro.chem import LUCIFERIN
from repro.machines import LAPTOP, SUN_OPTERON_IB
from repro.perfmodel import ccsd_iteration_workload, simulate
from repro.sip import SIPConfig, run_source

from _tables import emit_table

SRC = """
sial sched_probe
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
temp TC(M, N)

pardo M, N
  TC(M, N) = 0.0
  do L
    if L <= M
      get A(M, L)
      get B(L, N)
      TC(M, N) += A(M, L) * B(L, N)
    endif
  enddo L
  put C(M, N) = TC(M, N)
endpardo M, N
endsial sched_probe
"""
# iteration cost grows with M: static contiguous assignment hands the
# most expensive rows to one worker, guided rebalances the tail


def fine_times():
    out = {}
    for policy in ("guided", "static"):
        cfg = SIPConfig(
            workers=7,  # deliberately not dividing the 36+ iterations
            io_servers=1,
            segment_size=5,
            backend="model",
            machine=LAPTOP,
            scheduling=policy,
            inputs={"A": None, "B": None},
        )
        res = run_source(SRC, cfg, symbolics={"nb": 55})
        out[policy] = {
            "time": res.elapsed,
            "chunks": res.stats["chunks_served"],
        }
    return out


def coarse_times():
    workload = ccsd_iteration_workload(LUCIFERIN, seg=14)
    return {
        policy: simulate(
            workload, SUN_OPTERON_IB, 96, io_servers=8, scheduling=policy
        ).time
        for policy in ("guided", "static")
    }


@pytest.mark.benchmark(group="ablation-scheduling")
def test_guided_vs_static_fine(benchmark):
    result = benchmark(fine_times)
    emit_table(
        "ablation_scheduling_fine",
        "Section V-B -- guided vs static pardo scheduling (fine simulator)",
        ["policy", "time (ms)", "chunks served"],
        [
            [p, v["time"] * 1e3, v["chunks"]]
            for p, v in result.items()
        ],
        notes=["iteration cost grows with M; 7 workers"],
    )
    # static: one work chunk (plus one empty reply) per worker;
    # guided: many shrinking chunks
    assert result["static"]["chunks"] <= 2 * 7
    assert result["guided"]["chunks"] > 2 * 7
    # guided balances the skewed costs better than static
    assert result["guided"]["time"] < result["static"]["time"]


@pytest.mark.benchmark(group="ablation-scheduling")
def test_guided_vs_static_coarse(benchmark):
    result = benchmark(coarse_times)
    emit_table(
        "ablation_scheduling_coarse",
        "Section V-B -- scheduling policies at 96 procs (coarse model)",
        ["policy", "time (s)"],
        [[p, t] for p, t in result.items()],
    )
    assert result["guided"] <= result["static"] * 1.1
