"""Host wall-clock benchmark of the execution fast path.

Times the bundled CCSD and Fock-build drivers end-to-end with the fast
path disabled (legacy per-call ``np.einsum(..., optimize=True)``, eager
block copies) and enabled (compiled kernel plans, pre-decoded
instruction stream, zero-copy transport), asserts that both modes give
**bit-identical** simulated times, scalars, and array results, and
writes the measurements to ``BENCH_kernels.json``.

Per-kernel wall-clock comes from ``SIPConfig.kernel_wallclock``, which
wraps every backend kernel in a ``perf_counter`` accumulator.

The plan-cache health metric is the *warm* hit rate: the hit rate over
every contraction issued after the first amplitude sweep (each driver
is first run for a single sweep to count the signatures discovered
there; by design all compilation misses happen during that first
sweep).  The run fails if the warm hit rate drops below
``--min-hit-rate`` (default 0.9).

``--baseline-rev REV`` additionally times the same drivers against a
clean checkout of ``REV`` (via ``git worktree``) to quantify the
speedup over the pre-fast-path code; it is skipped gracefully when the
revision is unavailable (e.g. shallow CI clones).

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock_kernels.py \
        [--smoke] [--out BENCH_kernels.json] [--min-hit-rate 0.9] \
        [--baseline-rev HEAD~1]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.programs.drivers import _default_config, run_ccsd, run_fock_build

REPO_ROOT = Path(__file__).resolve().parent.parent

# each driver's own default SIP configuration, replicated here so the
# fastpath/kernel_wallclock toggles can be applied on top of it
_DRIVER_CONFIG = {
    "ccsd": lambda: _default_config(segment_size=3),
    "fock_build": lambda: _default_config(),
}

DRIVERS = {
    "ccsd": lambda cfg, **kw: run_ccsd(config=cfg, **kw),
    "fock_build": lambda cfg, **kw: run_fock_build(config=cfg, **kw),
}


def _config(name: str, fastpath: bool, timed: bool = False):
    cfg = _DRIVER_CONFIG[name]()
    cfg.fastpath = fastpath
    cfg.kernel_wallclock = timed
    return cfg


def _time_driver(name: str, fastpath: bool, repeats: int, timed: bool = False):
    """Best-of-``repeats`` wall time; returns (seconds, last outcome)."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        cfg = _config(name, fastpath, timed)
        t0 = time.perf_counter()
        out = DRIVERS[name](cfg)
        best = min(best, time.perf_counter() - t0)
    return best, out


def _check_identical(name: str, slow, fast) -> None:
    """Fast path on/off must be indistinguishable in results."""
    if slow.result.elapsed != fast.result.elapsed:
        raise SystemExit(
            f"{name}: simulated elapsed differs between fast path off/on: "
            f"{slow.result.elapsed!r} vs {fast.result.elapsed!r}"
        )
    if slow.result.scalars != fast.result.scalars:
        raise SystemExit(f"{name}: scalars differ between fast path off/on")
    if not np.array_equal(np.asarray(slow.value), np.asarray(fast.value)):
        raise SystemExit(f"{name}: result arrays differ between fast path off/on")


def _warm_hit_rate(name: str, full_stats: dict) -> float:
    """Plan-cache hit rate over contractions issued after the first sweep."""
    kw = {"iterations": 1} if name == "ccsd" else {}
    first = DRIVERS[name](_config(name, True), **kw).result.stats
    a1 = first["plan_cache_hits"] + first["plan_cache_misses"]
    m1 = first["plan_cache_misses"]
    a = full_stats["plan_cache_hits"] + full_stats["plan_cache_misses"]
    m = full_stats["plan_cache_misses"]
    warm_attempts = a - a1
    if warm_attempts <= 0:
        return 1.0
    return (warm_attempts - max(0, m - m1)) / warm_attempts


def _baseline_walls(rev: str, repeats: int) -> dict | None:
    """Time the drivers against a clean checkout of ``rev``."""
    wt = REPO_ROOT / ".bench_baseline_worktree"
    try:
        subprocess.run(
            ["git", "worktree", "add", "--force", str(wt), rev],
            cwd=REPO_ROOT, check=True, capture_output=True,
        )
    except (subprocess.CalledProcessError, FileNotFoundError) as exc:
        print(f"baseline rev {rev!r} unavailable, skipping: {exc}")
        return None
    try:
        code = (
            "import time, json, sys\n"
            "from repro.programs.drivers import run_ccsd, run_fock_build\n"
            f"reps = {repeats}\n"
            "out = {}\n"
            "for name, fn in [('ccsd', run_ccsd), ('fock_build', run_fock_build)]:\n"
            "    best = float('inf')\n"
            "    for _ in range(reps):\n"
            "        t0 = time.perf_counter(); fn(); best = min(best, time.perf_counter() - t0)\n"
            "    out[name] = best\n"
            "print(json.dumps(out))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": str(wt / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
            capture_output=True, text=True, timeout=1800,
        )
        if proc.returncode != 0:
            print(f"baseline run failed, skipping:\n{proc.stderr[-2000:]}")
            return None
        return {"rev": rev, "wall": json.loads(proc.stdout.strip().splitlines()[-1])}
    finally:
        subprocess.run(
            ["git", "worktree", "remove", "--force", str(wt)],
            cwd=REPO_ROOT, capture_output=True,
        )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="single repeat, quick CI run")
    ap.add_argument("--out", default="BENCH_kernels.json")
    ap.add_argument("--min-hit-rate", type=float, default=0.9,
                    help="fail if the warm plan-cache hit rate is below this")
    ap.add_argument("--baseline-rev", default=None,
                    help="git rev of the pre-fast-path code to time against")
    args = ap.parse_args()
    repeats = 1 if args.smoke else 3

    report: dict = {
        "config": "driver defaults (workers=3, io_servers=1)",
        "repeats": repeats,
        "drivers": {},
    }
    failures = []
    for name in DRIVERS:
        slow_wall, slow = _time_driver(name, fastpath=False, repeats=repeats)
        fast_wall, fast = _time_driver(name, fastpath=True, repeats=repeats)
        _check_identical(name, slow, fast)
        _, timed = _time_driver(name, fastpath=True, repeats=1, timed=True)
        stats = fast.result.stats
        warm = _warm_hit_rate(name, stats)
        entry = {
            "wall_legacy": slow_wall,
            "wall_fastpath": fast_wall,
            "speedup_vs_legacy": slow_wall / fast_wall,
            "simulated_elapsed": fast.result.elapsed,
            "bit_identical": True,
            "plan_cache": {
                "hits": stats["plan_cache_hits"],
                "misses": stats["plan_cache_misses"],
                "hit_rate": stats["plan_cache_hit_rate"],
                "warm_hit_rate": warm,
                "gemm_plans": stats["plan_cache_gemm"],
                "einsum_plans": stats["plan_cache_einsum"],
            },
            "zero_copy": {
                "shared_payloads": stats["cow_shared_payloads"],
                "bytes_not_copied": stats["cow_bytes_not_copied"],
                "cow_copies": stats["cow_copies"],
                "cow_bytes_copied": stats["cow_bytes_copied"],
            },
            "kernel_wall": timed.result.stats["kernel_wall"],
        }
        report["drivers"][name] = entry
        print(
            f"{name}: legacy {slow_wall:.3f}s -> fastpath {fast_wall:.3f}s "
            f"({entry['speedup_vs_legacy']:.2f}x), warm hit rate {warm:.3f}, "
            f"{entry['zero_copy']['bytes_not_copied']} bytes not copied"
        )
        if warm < args.min_hit_rate:
            failures.append(
                f"{name}: warm plan-cache hit rate {warm:.3f} "
                f"< {args.min_hit_rate}"
            )

    if args.baseline_rev:
        baseline = _baseline_walls(args.baseline_rev, repeats)
        if baseline is not None:
            report["baseline"] = baseline
            for name, wall in baseline["wall"].items():
                fastw = report["drivers"][name]["wall_fastpath"]
                report["drivers"][name]["speedup_vs_baseline"] = wall / fastw
                print(f"{name}: baseline ({args.baseline_rev}) {wall:.3f}s "
                      f"-> {wall / fastw:.2f}x speedup")

    Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if failures:
        for f in failures:
            print("FAIL:", f)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
