"""Figure 4: RHF CCSD for RDX and HMX on jaguar (Cray XT5), 1000-8000 procs.

Paper series: time and efficiency (relative to 1000 processors) for
both molecules.  Headline shape: "The larger HMX molecule displays
much better strong scaling for CCSD" -- more basis functions mean more
blocks, hence more pardo parallelism per processor.
"""

import pytest

from repro.chem import HMX, RDX
from repro.machines import JAGUAR_XT5
from repro.perfmodel import ccsd_iteration_workload, sweep

from _tables import emit_table

PROCS = [1000, 2000, 4000, 6000, 8000]
# one shared (paper-style) granularity; the O(v^4) integrals fit in
# jaguar's aggregate memory at these counts, so they are distributed
SEG = 32


def generate_rows():
    return {
        mol.name: sweep(
            ccsd_iteration_workload(mol, seg=SEG, vvvv_on_disk=False),
            JAGUAR_XT5,
            PROCS,
            baseline_procs=1000,
            io_servers=64,
        )
        for mol in (RDX, HMX)
    }


@pytest.mark.benchmark(group="fig4")
def test_fig4_rdx_hmx_ccsd(benchmark):
    series = benchmark(generate_rows)
    rows = []
    for name, mol_rows in series.items():
        for r in mol_rows:
            rows.append([name, r["procs"], r["time"] / 60, r["efficiency"]])
    emit_table(
        "fig4_rdx_hmx_ccsd",
        "Fig. 4 -- RDX vs HMX RHF CCSD on jaguar (efficiency vs 1000 procs)",
        ["molecule", "procs", "min/iter", "efficiency"],
        rows,
        notes=["paper: HMX (larger) scales much better than RDX"],
    )
    rdx = {r["procs"]: r for r in series["rdx"]}
    hmx = {r["procs"]: r for r in series["hmx"]}
    # HMX strictly better efficiency at every count beyond the baseline
    for p in PROCS[1:]:
        assert hmx[p]["efficiency"] > rdx[p]["efficiency"]
    # HMX holds good efficiency at 2000; RDX degrades faster
    assert hmx[2000]["efficiency"] > 0.9
    assert rdx[8000]["efficiency"] < hmx[8000]["efficiency"] * 0.8
    # both still get faster in absolute time up to 4000
    assert rdx[4000]["time"] < rdx[1000]["time"]
    assert hmx[4000]["time"] < hmx[1000]["time"]
