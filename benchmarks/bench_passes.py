"""Benchmark: what the optimizing middle-end buys at each ``-O`` level.

Runs the paper contraction, MP2 and CCSD drivers at ``-O0``, ``-O1``
and ``-O2`` on the simulator and records, per level:

* static and dynamically executed instruction counts,
* remote traffic (bytes that crossed rank boundaries, messages),
* simulated time and host wall-clock.

Two claims are asserted (a violation exits nonzero):

* every level is **bitwise identical** to ``-O0`` in scalars and
  persistent arrays -- the optimizer contract;
* on CCSD, ``-O2`` executes at least 10 % fewer instructions than
  ``-O0`` and does not regress host wall-clock (wall compared on the
  min over ``--repeats`` runs, with a 10 % noise allowance).

Usage::

    PYTHONPATH=src python benchmarks/bench_passes.py \
        [--smoke] [--repeats N] [--out BENCH_passes.json]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.programs import run_ccsd, run_mp2, run_paper_contraction
from repro.sip import SIPConfig, SIPError

REPO_ROOT = Path(__file__).resolve().parent.parent

LEVELS = (0, 1, 2)

#: (driver, kwargs) per case; --smoke shrinks the problems
CASES = {
    "paper_contraction": (run_paper_contraction, {"n_basis": 6, "n_occ": 2}),
    "mp2": (run_mp2, {"n_basis": 10, "n_occ": 3}),
    "ccsd": (run_ccsd, {"n_basis": 8, "n_occ": 3, "iterations": 2}),
}
SMOKE_CASES = {
    "paper_contraction": (run_paper_contraction, {"n_basis": 4, "n_occ": 2}),
    "mp2": (run_mp2, {"n_basis": 6, "n_occ": 2}),
    # ccsd must stay multi-segment even in smoke: the fetch-dedup and
    # fusion savings the >= 10% gate asserts live in the inner loops
    "ccsd": (run_ccsd, {"n_basis": 8, "n_occ": 3, "iterations": 1}),
}


def _config(level: int) -> SIPConfig:
    return SIPConfig(
        workers=2, io_servers=1, segment_size=2, opt_level=level
    )


def _persistent_arrays(result) -> list[str]:
    program = result._rt.program
    return [
        desc.name
        for desc in program.array_table
        if desc.kind in ("static", "distributed", "served")
    ]


def _check_identical(case: str, level: int, base, opt) -> None:
    if opt.result.scalars != base.result.scalars:
        raise SystemExit(
            f"{case}: -O{level} scalars differ from -O0 -- optimizer bug"
        )
    base_arrays = set(_persistent_arrays(base.result))
    for array in _persistent_arrays(opt.result):
        if array not in base_arrays:
            continue
        try:
            expected = base.result.array(array)
        except SIPError:
            continue  # declared but never materialized on this run
        if not np.array_equal(expected, opt.result.array(array)):
            raise SystemExit(
                f"{case}: -O{level} array {array!r} differs from -O0"
            )


def _measure(case: str, repeats: int) -> list[dict]:
    driver, kwargs = _ACTIVE_CASES[case]
    rows = []
    base = None
    for level in LEVELS:
        wall = float("inf")
        out = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = driver(config=_config(level), **kwargs)
            wall = min(wall, time.perf_counter() - t0)
        if level == 0:
            base = out
        else:
            _check_identical(case, level, base, out)
        stats = out.result.stats
        rows.append(
            {
                "level": level,
                "instr_static": stats.get(
                    "opt_instructions_after",
                    len(out.result._rt.program.instructions),
                ),
                "instr_executed": stats["instr_executed"],
                "remote_bytes": stats["remote_bytes"],
                "messages_sent": stats["messages_sent"],
                "simulated_seconds": out.result.elapsed,
                "wall_seconds": wall,
                "bit_identical_to_O0": True,
            }
        )
    return rows


def _deltas(rows: list[dict]) -> dict:
    base, o2 = rows[0], rows[-1]
    return {
        "instr_executed_saved_pct": 100.0
        * (base["instr_executed"] - o2["instr_executed"])
        / base["instr_executed"],
        "remote_bytes_saved_pct": 100.0
        * (base["remote_bytes"] - o2["remote_bytes"])
        / max(base["remote_bytes"], 1),
        "wall_ratio_O2_over_O0": o2["wall_seconds"] / base["wall_seconds"],
        "simulated_ratio_O2_over_O0": (
            o2["simulated_seconds"] / base["simulated_seconds"]
        ),
    }


_ACTIVE_CASES = CASES


def main() -> int:
    global _ACTIVE_CASES
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny problems, single repeat (CI)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="wall-clock repeats per level (default: 3, 1 "
                         "with --smoke); the minimum wall time is kept")
    ap.add_argument("--out", default="BENCH_passes.json")
    args = ap.parse_args()

    _ACTIVE_CASES = SMOKE_CASES if args.smoke else CASES
    repeats = args.repeats if args.repeats else (1 if args.smoke else 3)

    report: dict = {"repeats": repeats, "smoke": args.smoke, "cases": {}}
    failures: list[str] = []
    for case in _ACTIVE_CASES:
        rows = _measure(case, repeats)
        deltas = _deltas(rows)
        report["cases"][case] = {"levels": rows, "deltas": deltas}
        for row in rows:
            print(
                f"{case} -O{row['level']}: {row['instr_executed']} instrs, "
                f"{row['remote_bytes']:.0f} remote bytes, "
                f"sim {row['simulated_seconds']:.6f}s, "
                f"wall {row['wall_seconds']:.3f}s"
            )
        print(
            f"{case} -O2 vs -O0: "
            f"{deltas['instr_executed_saved_pct']:+.1f}% instrs, "
            f"{deltas['remote_bytes_saved_pct']:+.1f}% remote bytes, "
            f"wall x{deltas['wall_ratio_O2_over_O0']:.2f}"
        )

    ccsd = report["cases"]["ccsd"]["deltas"]
    if ccsd["instr_executed_saved_pct"] < 10.0:
        failures.append(
            f"ccsd: -O2 saved only {ccsd['instr_executed_saved_pct']:.1f}% "
            "executed instructions (need >= 10%)"
        )
    if ccsd["wall_ratio_O2_over_O0"] > 1.10:
        failures.append(
            f"ccsd: -O2 wall-clock regressed x"
            f"{ccsd['wall_ratio_O2_over_O0']:.2f} over -O0 (allow <= 1.10)"
        )

    out_path = REPO_ROOT / args.out
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
