"""Section II: the storage arithmetic that motivates the whole design.

The paper's numbers for a typical high-accuracy calculation
(n = 1000 basis functions, N = 100 electrons):

* one T-amplitude array is n^2 N^2 = 10^10 doubles = 80 GB;
* about a dozen copies (2 working + up to 10 for DIIS convergence
  acceleration) -> ~1 TB total, of which three need rapid access and
  are distributed in RAM while the rest live on disk;
* the larger integral array (n^3 N) is 800 GB by itself.

We regenerate these numbers from a SIAL declaration of the working set
via the SIP's dry-run analysis, and show the feasibility verdict (with
the suggested worker count) the dry run gives -- the very report
ACES III users rely on before burning supercomputer time.
"""

import pytest

from repro import SIPConfig, compile_sial, dry_run

from _tables import emit_table

N, NE = 1000, 100  # the paper's n (basis functions) and N (electrons)

CCSD_STORAGE = """
sial ccsd_storage
symbolic norb
symbolic nel
aoindex mu = 1, norb
aoindex nu = 1, norb
aoindex la = 1, norb
moindex i = 1, nel
moindex j = 1, nel
# three rapid-access amplitude arrays, distributed in RAM
distributed T2(mu, nu, i, j)
distributed T2OLD(mu, nu, i, j)
distributed RESID(mu, nu, i, j)
# nine more copies for DIIS convergence acceleration, on disk
served DIIS1(mu, nu, i, j)
served DIIS2(mu, nu, i, j)
served DIIS3(mu, nu, i, j)
served DIIS4(mu, nu, i, j)
served DIIS5(mu, nu, i, j)
served DIIS6(mu, nu, i, j)
served DIIS7(mu, nu, i, j)
served DIIS8(mu, nu, i, j)
served DIIS9(mu, nu, i, j)
# the big integral array: n^3 N
served VINTS(mu, nu, la, i)
endsial ccsd_storage
"""


def generate_report(workers=1024):
    program = compile_sial(CCSD_STORAGE)
    config = SIPConfig(
        workers=workers,
        io_servers=32,
        segment_size=25,
        memory_per_worker=2.0e9,
    )
    return dry_run(program, config, symbolics={"norb": N, "nel": NE})


@pytest.mark.benchmark(group="storage")
def test_storage_requirements(benchmark):
    report = benchmark(generate_report)
    amplitude_bytes = report.array_bytes["T2"]
    integral_bytes = report.array_bytes["VINTS"]
    amplitude_total = sum(
        b for name, b in report.array_bytes.items() if name != "VINTS"
    )
    emit_table(
        "storage_requirements",
        "Section II -- storage requirements at n=1000, N=100",
        ["quantity", "ours", "paper"],
        [
            ["one amplitude array (n^2 N^2)", f"{amplitude_bytes/1e9:.0f} GB", "80 GB"],
            ["twelve amplitude copies", f"{amplitude_total/1e12:.2f} TB", "~1 TB"],
            ["integral array (n^3 N)", f"{integral_bytes/1e9:.0f} GB", "800 GB"],
        ],
        notes=[
            f"dry run at 1024 workers x 2 GB/worker: "
            f"{'FEASIBLE' if report.feasible else 'infeasible'} "
            f"(distributed share {report.distributed_max_bytes/1e6:.0f} MB/worker)",
        ],
    )
    assert amplitude_bytes == N * N * NE * NE * 8  # exactly 80 GB
    assert integral_bytes == N**3 * NE * 8  # exactly 800 GB
    assert 0.9e12 < amplitude_total < 1.1e12  # "about 1 TB"
    assert report.feasible

    # the same computation on too few workers is flagged, with the
    # sufficient worker count in the report (paper, Section V-B)
    small = generate_report(workers=16)
    assert not small.feasible
    assert small.required_workers > 16
    sufficient = generate_report(workers=small.required_workers)
    assert sufficient.feasible
