"""Wall-clock benchmark: multiprocess backend vs. the simulator.

Runs the bundled MP2 and CCSD drivers end-to-end on both execution
backends -- the discrete-event simulator (``execution="sim"``) and the
true multiprocess backend (``execution="mp"``, real forked ranks over
pipes and POSIX shared memory) -- at 1, 2 and 4 worker processes.
Every mp run must be **bitwise identical** to its simulator twin
(scalars and all persistent arrays) and must unlink every shared-memory
segment it created; a violation fails the benchmark.

Wall time for the mp backend is the runtime's own
``stats["wallclock_seconds"]`` (fork through gather); the simulator is
timed around the driver call.  Note that mp wall-clock only *beats* the
simulator when real cores are available to run the ranks concurrently:
on a single-core host the 4-worker fleet (6 processes) merely
time-slices one CPU, so the speedup expectation is asserted only when
``os.cpu_count()`` provides at least ``--min-cores`` cores.  The
measured ratios and the detected core count are recorded in the JSON
either way.

Usage::

    PYTHONPATH=src python benchmarks/bench_mp_backend.py \
        [--smoke] [--out BENCH_mp_backend.json] [--min-cores 4]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.programs import run_ccsd, run_mp2
from repro.sip import SIPConfig, SIPError

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKER_COUNTS = (1, 2, 4)

#: (driver, kwargs) per benchmark case; --smoke shrinks the problem
CASES = {
    "mp2": (run_mp2, {"n_basis": 10, "n_occ": 3}),
    "ccsd": (run_ccsd, {"n_basis": 8, "n_occ": 2, "iterations": 2}),
}
SMOKE_CASES = {
    "mp2": (run_mp2, {"n_basis": 6, "n_occ": 2}),
    "ccsd": (run_ccsd, {"n_basis": 4, "n_occ": 1, "iterations": 1}),
}


def _config(workers: int, execution: str, smoke: bool) -> SIPConfig:
    kw = {}
    if execution == "mp" and not smoke:
        # full-size benchmark blocks are small; drop the threshold so
        # payloads genuinely exercise the shared-memory path and the
        # zero-leak assertion has something to bite on
        kw["mp_payload_shm_min"] = 64
    return SIPConfig(
        workers=workers,
        io_servers=1,
        segment_size=2,
        execution=execution,
        backend="real",
        **kw,
    )


def _persistent_arrays(result) -> list[str]:
    program = result._rt.program
    return [
        desc.name
        for desc in program.array_table
        if desc.kind in ("static", "distributed", "served")
    ]


def _check_identical(case: str, workers: int, sim, mp) -> None:
    if mp.result.scalars != sim.result.scalars:
        raise SystemExit(
            f"{case}@{workers}: scalars differ between sim and mp backends"
        )
    for array in _persistent_arrays(sim.result):
        try:
            expected = sim.result.array(array)
        except SIPError:
            continue  # declared but never materialized on this run
        if not np.array_equal(expected, mp.result.array(array)):
            raise SystemExit(
                f"{case}@{workers}: array {array!r} differs between backends"
            )
    if mp.result.stats["mp_shm_leaked"] != 0:
        raise SystemExit(
            f"{case}@{workers}: mp backend leaked "
            f"{mp.result.stats['mp_shm_leaked']} shared-memory segments"
        )


def _run_pair(case: str, workers: int, repeats: int, smoke: bool) -> dict:
    driver, kwargs = _ACTIVE_CASES[case]
    sim_wall = float("inf")
    mp_wall = float("inf")
    sim = mp = None
    mp_stats: dict = {}
    for _ in range(repeats):
        t0 = time.perf_counter()
        sim = driver(config=_config(workers, "sim", smoke), **kwargs)
        sim_wall = min(sim_wall, time.perf_counter() - t0)
        mp = driver(config=_config(workers, "mp", smoke), **kwargs)
        mp_stats = mp.result.stats
        mp_wall = min(mp_wall, mp_stats["wallclock_seconds"])
    _check_identical(case, workers, sim, mp)
    return {
        "workers": workers,
        "sim_wall": sim_wall,
        "mp_wall": mp_wall,
        "mp_over_sim": sim_wall / mp_wall,
        "bit_identical": True,
        "mp_processes": mp_stats["mp_processes"],
        "shm_segments": mp_stats["mp_shm_segments"],
        "shm_bytes": mp_stats["mp_shm_bytes"],
        "shm_leaked": mp_stats["mp_shm_leaked"],
    }


_ACTIVE_CASES = CASES


def main() -> int:
    global _ACTIVE_CASES
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny problems, 2 workers only, single repeat (CI)")
    ap.add_argument("--out", default="BENCH_mp_backend.json")
    ap.add_argument("--min-cores", type=int, default=4,
                    help="assert mp@4 beats sim only when this many CPU "
                         "cores are available")
    args = ap.parse_args()

    _ACTIVE_CASES = SMOKE_CASES if args.smoke else CASES
    worker_counts = (2,) if args.smoke else WORKER_COUNTS
    repeats = 1 if args.smoke else 3
    cores = os.cpu_count() or 1

    report: dict = {
        "cpu_cores": cores,
        "repeats": repeats,
        "smoke": args.smoke,
        "cases": {},
    }
    failures: list[str] = []
    for case in _ACTIVE_CASES:
        rows = []
        for workers in worker_counts:
            row = _run_pair(case, workers, repeats, args.smoke)
            rows.append(row)
            print(
                f"{case}@{workers}: sim {row['sim_wall']:.3f}s, "
                f"mp {row['mp_wall']:.3f}s "
                f"({row['mp_over_sim']:.2f}x, bitwise identical, "
                f"{row['shm_segments']} shm segments, 0 leaked)"
            )
        report["cases"][case] = rows

    # the speedup claim is only physical when the ranks can actually
    # run in parallel; otherwise record the measurement and move on
    if not args.smoke:
        four = {c: rows[-1] for c, rows in report["cases"].items()}
        if cores >= args.min_cores:
            for case, row in four.items():
                if row["mp_over_sim"] <= 1.0:
                    failures.append(
                        f"{case}: mp@4 not faster than sim "
                        f"({row['mp_wall']:.3f}s vs {row['sim_wall']:.3f}s) "
                        f"despite {cores} cores"
                    )
        else:
            report["speedup_assertion"] = (
                f"skipped: {cores} CPU core(s) < --min-cores "
                f"{args.min_cores}; a time-sliced fleet cannot beat the "
                f"in-process simulator"
            )
            print(report["speedup_assertion"])

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
