"""Wall-clock benchmark: multiprocess backend vs. the simulator.

Runs the bundled MP2 and CCSD drivers end-to-end on both execution
backends -- the discrete-event simulator (``execution="sim"``) and the
true multiprocess backend (``execution="mp"``, real forked ranks over
pipes and POSIX shared memory) -- at 1, 2 and 4 worker processes.
Every mp run must be **bitwise identical** to its simulator twin
(scalars and all persistent arrays) and must leak no shared-memory
segment or arena slot lease; a violation fails the benchmark.

Transport efficiency is asserted unconditionally (independent of
machine speed): at least 90 % of the at-or-above-threshold block
bytes must cross zero-copy through the slab arena, and per-transfer
segment creation must be ~0 after warmup (a handful of long-lived
slabs instead of one segment per payload).  CCSD at 2 workers is also
run with the arena disabled -- the PR 7 per-payload lifecycle -- and
the arena-on wall-clock is asserted no slower only when real cores
back the fleet.

Wall time for the mp backend is the runtime's own
``stats["wallclock_seconds"]`` (fork through gather); the simulator is
timed around the driver call.  Note that mp wall-clock only *beats* the
simulator when real cores are available to run the ranks concurrently:
on a single-core host the 4-worker fleet (6 processes) merely
time-slices one CPU, so the speedup expectation is asserted only when
``os.cpu_count()`` provides at least ``--min-cores`` cores.  The
measured ratios and the detected core count are recorded in the JSON
either way.

Usage::

    PYTHONPATH=src python benchmarks/bench_mp_backend.py \
        [--smoke] [--repeats N] [--out BENCH_mp_backend.json] \
        [--min-cores 4]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.programs import run_ccsd, run_mp2
from repro.sip import SIPConfig, SIPError

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKER_COUNTS = (1, 2, 4)

#: (driver, kwargs) per benchmark case; --smoke shrinks the problem
CASES = {
    "mp2": (run_mp2, {"n_basis": 10, "n_occ": 3}),
    "ccsd": (run_ccsd, {"n_basis": 8, "n_occ": 2, "iterations": 2}),
}
SMOKE_CASES = {
    "mp2": (run_mp2, {"n_basis": 6, "n_occ": 2}),
    "ccsd": (run_ccsd, {"n_basis": 4, "n_occ": 1, "iterations": 1}),
}


def _config(workers: int, execution: str, smoke: bool, **kw) -> SIPConfig:
    if execution == "mp":
        # benchmark blocks are small; drop the threshold so payloads
        # genuinely exercise the shared-memory paths and the zero-leak
        # and zero-copy assertions have something to bite on
        kw.setdefault("mp_payload_shm_min", 64)
    return SIPConfig(
        workers=workers,
        io_servers=1,
        segment_size=2,
        execution=execution,
        backend="real",
        **kw,
    )


def _persistent_arrays(result) -> list[str]:
    program = result._rt.program
    return [
        desc.name
        for desc in program.array_table
        if desc.kind in ("static", "distributed", "served")
    ]


def _check_identical(case: str, workers: int, sim, mp) -> None:
    if mp.result.scalars != sim.result.scalars:
        raise SystemExit(
            f"{case}@{workers}: scalars differ between sim and mp backends"
        )
    for array in _persistent_arrays(sim.result):
        try:
            expected = sim.result.array(array)
        except SIPError:
            continue  # declared but never materialized on this run
        if not np.array_equal(expected, mp.result.array(array)):
            raise SystemExit(
                f"{case}@{workers}: array {array!r} differs between backends"
            )
    stats = mp.result.stats
    if stats["mp_shm_leaked"] != 0:
        raise SystemExit(
            f"{case}@{workers}: mp backend leaked "
            f"{stats['mp_shm_leaked']} shared-memory segments"
        )
    if stats["arena_refs_leaked"] != 0:
        raise SystemExit(
            f"{case}@{workers}: mp backend leaked "
            f"{stats['arena_refs_leaked']} arena slot leases"
        )


def _check_transport(case: str, workers: int, stats: dict) -> None:
    """The alloc/copy-elimination claims, asserted on every machine."""
    detoured = stats["arena_hits"] + stats["arena_handoffs"] + stats["arena_misses"]
    if detoured == 0:
        return  # nothing crossed the threshold on this tiny problem
    shared_bytes = stats["bytes_zero_copy"] + stats["mp_shm_bytes"]
    zero_copy_ratio = (
        stats["bytes_zero_copy"] / shared_bytes if shared_bytes else 1.0
    )
    if zero_copy_ratio < 0.9:
        raise SystemExit(
            f"{case}@{workers}: only {100 * zero_copy_ratio:.1f} % of "
            "detoured block bytes moved zero-copy (need >= 90 %)"
        )
    # a handful of long-lived slabs, not one segment per transfer; only
    # meaningful once there are enough transfers to amortize the warmup
    # slabs (a 3-transfer smoke problem would trivially fail the ratio)
    if detoured >= 100:
        creates_per_transfer = (
            stats["mp_shm_segments"] + stats["arena_slabs"]
        ) / detoured
        if creates_per_transfer >= 0.05:
            raise SystemExit(
                f"{case}@{workers}: {creates_per_transfer:.3f} segment "
                "creates per detoured transfer (need ~0 after warmup)"
            )


def _run_pair(case: str, workers: int, repeats: int, smoke: bool) -> dict:
    driver, kwargs = _ACTIVE_CASES[case]
    sim_wall = float("inf")
    mp_wall = float("inf")
    sim = mp = None
    mp_stats: dict = {}
    for _ in range(repeats):
        t0 = time.perf_counter()
        sim = driver(config=_config(workers, "sim", smoke), **kwargs)
        sim_wall = min(sim_wall, time.perf_counter() - t0)
        mp = driver(config=_config(workers, "mp", smoke), **kwargs)
        mp_stats = mp.result.stats
        mp_wall = min(mp_wall, mp_stats["wallclock_seconds"])
    _check_identical(case, workers, sim, mp)
    _check_transport(case, workers, mp_stats)
    return {
        "workers": workers,
        "sim_wall": sim_wall,
        "mp_wall": mp_wall,
        "mp_over_sim": sim_wall / mp_wall,
        "bit_identical": True,
        "mp_processes": mp_stats["mp_processes"],
        "shm_segments": mp_stats["mp_shm_segments"],
        "shm_bytes": mp_stats["mp_shm_bytes"],
        "shm_leaked": mp_stats["mp_shm_leaked"],
        "arena_hits": mp_stats["arena_hits"],
        "arena_handoffs": mp_stats["arena_handoffs"],
        "arena_misses": mp_stats["arena_misses"],
        "arena_slabs": mp_stats["arena_slabs"],
        "arena_refs_leaked": mp_stats["arena_refs_leaked"],
        "bytes_zero_copy": mp_stats["bytes_zero_copy"],
        "batch_msgs_per_write": mp_stats["batch_msgs_per_write"],
    }


def _run_arena_ablation(repeats: int, smoke: bool) -> dict:
    """CCSD at 2 workers, arena on vs off (the PR 7 lifecycle)."""
    driver, kwargs = _ACTIVE_CASES["ccsd"]
    on_wall = off_wall = float("inf")
    for _ in range(repeats):
        on = driver(config=_config(2, "mp", smoke), **kwargs)
        on_wall = min(on_wall, on.result.stats["wallclock_seconds"])
        off = driver(config=_config(2, "mp", smoke, mp_arena=False), **kwargs)
        off_wall = min(off_wall, off.result.stats["wallclock_seconds"])
        if on.result.scalars != off.result.scalars:
            raise SystemExit("ccsd@2: arena on/off results differ")
    return {
        "case": "ccsd",
        "workers": 2,
        "arena_on_wall": on_wall,
        "arena_off_wall": off_wall,
        "on_over_off": off_wall / on_wall,
    }


_ACTIVE_CASES = CASES


def main() -> int:
    global _ACTIVE_CASES
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny problems, 2 workers only, single repeat (CI)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timing repeats per pairing (default: 3, 1 with "
                         "--smoke); the minimum wall time is kept")
    ap.add_argument("--out", default="BENCH_mp_backend.json")
    ap.add_argument("--min-cores", type=int, default=4,
                    help="assert wall-clock improvements only when this "
                         "many CPU cores are available")
    args = ap.parse_args()

    _ACTIVE_CASES = SMOKE_CASES if args.smoke else CASES
    worker_counts = (2,) if args.smoke else WORKER_COUNTS
    repeats = args.repeats if args.repeats else (1 if args.smoke else 3)
    cores = os.cpu_count() or 1

    report: dict = {
        "cpu_cores": cores,
        "repeats": repeats,
        "smoke": args.smoke,
        "cases": {},
    }
    failures: list[str] = []
    for case in _ACTIVE_CASES:
        rows = []
        for workers in worker_counts:
            row = _run_pair(case, workers, repeats, args.smoke)
            rows.append(row)
            print(
                f"{case}@{workers}: sim {row['sim_wall']:.3f}s, "
                f"mp {row['mp_wall']:.3f}s "
                f"({row['mp_over_sim']:.2f}x, bitwise identical, "
                f"{row['arena_hits']} fills + {row['arena_handoffs']} "
                f"handoffs / {row['arena_misses']} misses, "
                f"{row['arena_slabs']} slabs, "
                f"{row['batch_msgs_per_write']:.1f} msgs/write, 0 leaked)"
            )
        report["cases"][case] = rows

    ablation = _run_arena_ablation(repeats, args.smoke)
    report["arena_ablation"] = ablation
    print(
        f"ccsd@2 arena ablation: on {ablation['arena_on_wall']:.3f}s vs "
        f"off {ablation['arena_off_wall']:.3f}s "
        f"({ablation['on_over_off']:.2f}x)"
    )

    # wall-clock claims are only physical when the ranks can actually
    # run in parallel; otherwise record the measurement and move on
    if cores >= args.min_cores:
        if ablation["on_over_off"] < 1.0:
            failures.append(
                f"ccsd@2: arena made the mp backend slower "
                f"({ablation['arena_on_wall']:.3f}s vs "
                f"{ablation['arena_off_wall']:.3f}s) despite {cores} cores"
            )
        if not args.smoke:
            for case, rows in report["cases"].items():
                row = rows[-1]
                if row["mp_over_sim"] <= 1.0:
                    failures.append(
                        f"{case}: mp@4 not faster than sim "
                        f"({row['mp_wall']:.3f}s vs {row['sim_wall']:.3f}s) "
                        f"despite {cores} cores"
                    )
    else:
        report["speedup_assertion"] = (
            f"skipped: {cores} CPU core(s) < --min-cores "
            f"{args.min_cores}; a time-sliced fleet cannot beat the "
            f"in-process simulator (copy/alloc-elimination metrics "
            f"were still asserted)"
        )
        print(report["speedup_assertion"])

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
