"""Fault-injection sweep: overhead of riding out an adversarial substrate.

Production ACES III runs sit on hardware where transient faults are
routine; the resilient SIP protocol (per-message retry with exponential
backoff, sequence-number dedup, write-back retry, checkpoint restart)
must turn injected faults into bounded extra simulated time -- never
into wrong numerics.

This benchmark sweeps the message drop/delay rate on a CCSD-style
contraction + served-array + collective program and tables the cost:
simulated time vs. the fault-free run, retries issued, duplicates
deduped.  Every row is checked against the fault-free numerics.
"""

import numpy as np
import pytest

from repro.sip import FaultPlan, SIPConfig, run_source

from _tables import emit_table

SRC = """
sial fault_probe
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
served SV(M, N)
temp TC(M, N)
scalar e

pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  put C(M, N) = TC(M, N)
  prepare SV(M, N) = TC(M, N)
endpardo M, N
sip_barrier
server_barrier
e = 0.0
pardo M, N
  request SV(M, N)
  e += SV(M, N) * SV(M, N)
endpardo M, N
collective e
endsial fault_probe
"""

NB = 12
SEG = 3
RATES = [0.0, 0.02, 0.05, 0.10, 0.20]


def run_at(rate, a, b):
    plan = None
    if rate > 0:
        plan = FaultPlan(
            seed=42,
            message_drop_rate=rate / 2,
            message_delay_rate=rate / 2,
        )
    cfg = SIPConfig(
        workers=4,
        io_servers=2,
        segment_size=SEG,
        inputs={"A": a.copy(), "B": b.copy()},
        faults=plan,
    )
    return run_source(SRC, cfg, symbolics={"nb": NB})


def generate_rows():
    rng = np.random.default_rng(11)
    a = rng.standard_normal((NB, NB))
    b = rng.standard_normal((NB, NB))
    rows = []
    base = None
    for rate in RATES:
        res = run_at(rate, a, b)
        if base is None:
            base = res
        report = res.fault_report
        rows.append(
            {
                "rate": rate,
                "time": res.elapsed,
                "slowdown": res.elapsed / base.elapsed,
                "drops": report.injected.messages_dropped if report else 0,
                "delays": report.injected.messages_delayed if report else 0,
                "added": report.injected.added_latency if report else 0.0,
                "retries": report.retries.message_retries if report else 0,
                "dedup": report.retries.duplicates_ignored if report else 0,
                "e": res.scalar("e"),
                "recovered": report.all_recovered if report else True,
            }
        )
    return rows


@pytest.mark.benchmark(group="fault-resilience")
def test_fault_rate_sweep(benchmark):
    rows = benchmark(generate_rows)
    emit_table(
        "fault_resilience",
        "Fault injection -- message drop/delay sweep on a CCSD-style program",
        [
            "fault rate",
            "time (ms)",
            "slowdown",
            "drops",
            "delays",
            "added (ms)",
            "retries",
            "deduped",
        ],
        [
            [
                f"{r['rate']:.2f}",
                r["time"] * 1e3,
                f"{r['slowdown']:.2f}x",
                r["drops"],
                r["delays"],
                r["added"] * 1e3,
                r["retries"],
                r["dedup"],
            ]
            for r in rows
        ],
        notes=[
            "half of each rate is drops, half delay spikes (seed 42)",
            "every row's numerics match the fault-free run to roundoff "
            "(faults reshuffle the guided-scheduling iteration order)",
        ],
    )
    base = rows[0]
    for r in rows:
        # resilience is about correctness first: matching numerics
        assert r["e"] == pytest.approx(base["e"], rel=1e-12)
        assert r["recovered"]
    # heavy faults must cost time, not correctness
    heavy = rows[-1]
    assert heavy["drops"] > 0
    assert heavy["retries"] >= heavy["drops"]
    assert heavy["time"] >= base["time"]
