"""Transport microbenchmark: slab arena vs one-shot shm, framed batches.

Times the two block-detour paths of the multiprocess transport in
isolation, per transfer, across payload sizes:

* **one-shot**: create a ``SharedMemory`` segment, copy the payload
  in, pickle the stub, attach, copy out, unlink -- the PR 7 lifecycle
  and today's overflow path.
* **arena**: lease a slot from a pooled slab (reusing reclaimed slots
  after warmup), copy in once, frame the stub, map the receiver's
  Block view directly over the slot -- no receive copy, no per-transfer
  segment.

It also times the control plane: framing N small messages as one
protocol-5 batch vs one frame per message.

Hard assertions (independent of machine speed): after warmup the
arena creates **zero** segments per transfer while the one-shot path
creates one each, the arena moves every at-threshold byte zero-copy,
and no slot lease or segment outlives its round.

Usage::

    PYTHONPATH=src python benchmarks/bench_transport.py \
        [--repeats 2000] [--out BENCH_transport.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.sip.arena import ArenaReceiver, ArenaStats, SlabArena
from repro.sip.blocks import Block, BlockId
from repro.sip.messages import BlockReply
from repro.sip.mptransport import (
    ShmStats,
    decode_batch,
    encode_batch,
    pack_payload,
    unpack_payload,
)

import dataclasses

#: payload sizes to sweep, bytes (element counts are nbytes / 8)
SIZES = (4096, 65536, 524288)


def _payload(nbytes: int) -> BlockReply:
    n = nbytes // 8
    data = np.arange(n, dtype=np.float64)
    return BlockReply(block_id=BlockId(0, (0, 0)), block=Block((n,), data))


def bench_one_shot(nbytes: int, repeats: int) -> dict:
    msg = _payload(nbytes)
    stats = ShmStats()
    counter = [0]

    def namer() -> str:
        counter[0] += 1
        return f"rmpbench{os.getpid():x}n{counter[0]}"

    t0 = time.perf_counter()
    for _ in range(repeats):
        packed = pack_payload(msg, 0, namer, stats)
        (raw,) = decode_batch(encode_batch([(0, 7, nbytes, packed)]))
        out = unpack_payload(raw[3], stats)
        assert out.block.data.nbytes == nbytes
    elapsed = time.perf_counter() - t0
    assert stats.segments_created == repeats, "one-shot: one segment each"
    assert stats.segments_unlinked == repeats, "one-shot: leak"
    return {
        "path": "one_shot",
        "nbytes": nbytes,
        "repeats": repeats,
        "us_per_transfer": 1e6 * elapsed / repeats,
        "segments_per_transfer": stats.segments_created / repeats,
        "bytes_zero_copy": 0,
    }


def bench_arena(nbytes: int, repeats: int, warmup: int = 16) -> dict:
    msg = _payload(nbytes)
    stats = ArenaStats()
    arena = SlabArena(
        f"bench{os.getpid():x}",
        0,
        2,
        slab_bytes=1 << 22,
        max_bytes=1 << 26,
        stats=stats,
    )
    receiver = ArenaReceiver(stats=stats)

    def transfer(payload):
        ref = arena.place(payload.block, dest=1)
        assert ref is not None
        packed = dataclasses.replace(payload, block=ref)
        (raw,) = decode_batch(encode_batch([(0, 7, nbytes, packed)]))
        out = receiver.unpack(raw[3].block)
        assert out.data.nbytes == nbytes
        # the consumer is done with the mapped view: dropping it
        # releases the slot for the sender's next sweep
        return None

    try:
        # a working set of distinct buffers, cycled: the first pass
        # through fills slots, later passes hit the residency registry
        # and take the zero-copy handoff path -- the same mix a real
        # run shows (repeated gets of hot blocks dominate traffic);
        # the ``handoffs`` field in the row records the split
        payloads = [
            dataclasses.replace(msg, block=Block(msg.block.shape, msg.block.data.copy()))
            for _ in range(warmup)
        ]
        for p in payloads:
            transfer(p)
        gc.collect()  # release warmup leases so slots recycle
        created_after_warmup = stats.slabs_created

        t0 = time.perf_counter()
        for i in range(repeats):
            transfer(payloads[i % warmup])
        elapsed = time.perf_counter() - t0
        gc.collect()

        segs = stats.slabs_created - created_after_warmup
        assert segs == 0, f"arena created {segs} segments after warmup"
        assert stats.misses == 0, "arena overflowed on an in-class payload"
        assert receiver.live_leases() == 0, "leaked receiver leases"
        steady = {
            "path": "arena",
            "nbytes": nbytes,
            "repeats": repeats,
            "us_per_transfer": 1e6 * elapsed / repeats,
            "segments_per_transfer": segs / repeats,
            "bytes_zero_copy": stats.bytes_zero_copy,
            "handoffs": stats.handoffs,
            "slots_reclaimed": stats.slots_reclaimed,
        }
    finally:
        receiver.close()
        arena.destroy()
    return steady


def bench_control_plane(repeats: int, batch: int = 64) -> dict:
    msgs = [(0, 100 + i, 64, BlockReply(BlockId(0, (0, i)), Block((2, 2), None)))
            for i in range(batch)]
    t0 = time.perf_counter()
    for _ in range(repeats // batch):
        decode_batch(encode_batch(msgs))
    batched = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(repeats // batch):
        for m in msgs:
            decode_batch(encode_batch([m]))
    singles = time.perf_counter() - t0
    n = (repeats // batch) * batch
    return {
        "batch_size": batch,
        "messages": n,
        "us_per_msg_batched": 1e6 * batched / n,
        "us_per_msg_single": 1e6 * singles / n,
        "batch_speedup": singles / batched if batched > 0 else float("inf"),
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repeats", type=int, default=2000,
                    help="transfers per (path, size) row")
    ap.add_argument("--out", default="BENCH_transport.json")
    args = ap.parse_args()

    report: dict = {"repeats": args.repeats, "rows": [], "control_plane": None}
    for nbytes in SIZES:
        one = bench_one_shot(nbytes, args.repeats)
        ar = bench_arena(nbytes, args.repeats)
        ratio = one["us_per_transfer"] / ar["us_per_transfer"]
        report["rows"].extend([one, ar])
        print(
            f"{nbytes:>8d} B: one-shot {one['us_per_transfer']:8.2f} us, "
            f"arena {ar['us_per_transfer']:8.2f} us "
            f"({ratio:.2f}x, {ar['segments_per_transfer']:.0f} segments "
            f"per arena transfer after warmup)"
        )
    cp = bench_control_plane(args.repeats)
    report["control_plane"] = cp
    print(
        f"control plane: {cp['us_per_msg_batched']:.2f} us/msg batched "
        f"({cp['batch_size']} per frame) vs "
        f"{cp['us_per_msg_single']:.2f} us/msg single "
        f"({cp['batch_speedup']:.2f}x)"
    )

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
