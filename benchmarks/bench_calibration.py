"""Coarse-model calibration against the fine-grained simulator.

The scaling figures (2-7) come from the coarse task-level model; its
credibility rests on tracking the fine simulator where both run.  This
benchmark produces the comparison table for a blocked matrix multiply
at 1-8 workers on two machine models.
"""

import pytest

from repro.machines import BLUEGENE_P, LAPTOP
from repro.perfmodel import calibration_table

from _tables import emit_table


@pytest.mark.benchmark(group="calibration")
@pytest.mark.parametrize("machine", [LAPTOP, BLUEGENE_P], ids=lambda m: m.name)
def test_fine_vs_coarse(benchmark, machine):
    rows = benchmark(
        calibration_table, machine, n=48, seg=8, proc_counts=(1, 2, 4, 8)
    )
    emit_table(
        f"calibration_{machine.name}",
        f"Coarse model vs fine simulator ({machine.name}, 48x48 matmul)",
        ["workers", "fine (ms)", "coarse (ms)", "ratio"],
        [
            [r.procs, r.fine_time * 1e3, r.coarse_time * 1e3, r.ratio]
            for r in rows
        ],
    )
    for row in rows:
        assert 0.3 < row.ratio < 3.0, (row.procs, row.ratio)
