"""Section VI-B: programmer productivity.

"Programs that ... would have taken several months using a straight
MPI implementation can be developed in a week or two by an experienced
SIAL programmer."  A human study is out of scope; the measurable proxy
is the program-text ratio: the SIAL MP2 program versus the same
algorithm hand-written against the Global-Arrays-style baseline (with
its explicit index arithmetic, patch management, and memory layout)
and versus the infrastructure it leans on.

The comparison is apples-to-apples in function: both compute the same
MP2 energy and both run on the same simulated hardware in this
repository's test-suite.
"""

import inspect

import pytest

from repro.baselines import nwchem_mp2
from repro.programs import library

from _tables import emit_table


def count_sial_lines(source: str) -> int:
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )


def count_python_lines(obj) -> int:
    source = inspect.getsource(obj)
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )


def generate_rows():
    from repro.programs.ccsd_sial import CCSD_SIAL

    sial_mp2 = count_sial_lines(library.MP2_ENERGY)
    sial_lccd = count_sial_lines(library.LCCD_ITERATION)
    sial_ccsd = count_sial_lines(CCSD_SIAL)
    sial_fock = count_sial_lines(library.FOCK_BUILD)
    ga_mp2 = count_python_lines(nwchem_mp2.ga_mp2)
    # the GA program also relies on the toolkit's patch machinery the
    # programmer must understand (get/put/acc layout rules)
    import repro.baselines.ga as ga_mod

    ga_toolkit = count_python_lines(ga_mod)
    return {
        "sial_mp2": sial_mp2,
        "sial_lccd": sial_lccd,
        "sial_ccsd": sial_ccsd,
        "sial_fock": sial_fock,
        "ga_mp2": ga_mp2,
        "ga_toolkit": ga_toolkit,
    }


@pytest.mark.benchmark(group="productivity")
def test_productivity_line_counts(benchmark):
    counts = benchmark(generate_rows)
    emit_table(
        "productivity_loc",
        "Section VI-B -- program text: SIAL vs explicit GA-style code",
        ["program", "non-blank lines"],
        [
            ["MP2 energy (SIAL)", counts["sial_mp2"]],
            ["LCCD iteration (SIAL)", counts["sial_lccd"]],
            ["full CCSD (SIAL)", counts["sial_ccsd"]],
            ["Fock build (SIAL)", counts["sial_fock"]],
            ["MP2 energy (GA baseline, app code)", counts["ga_mp2"]],
            ["GA toolkit the app leans on", counts["ga_toolkit"]],
        ],
        notes=[
            "the SIAL programmer writes blocks and loops; layout, "
            "communication, overlap and memory live in the SIP",
        ],
    )
    # the SIAL MP2 is materially shorter than the equivalent GA program
    assert counts["sial_mp2"] < counts["ga_mp2"]
    # and the GA path additionally exposes the whole toolkit surface
    assert counts["ga_toolkit"] > 5 * counts["sial_mp2"]
