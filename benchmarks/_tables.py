"""Shared table emission for the per-figure benchmark harness.

Every figure benchmark produces the same rows/series the paper plots.
Tables are printed to stdout (visible with ``pytest -s``) and written
to ``benchmarks/results/<name>.txt`` so a plain ``pytest benchmarks/
--benchmark-only`` leaves the reproduction artifacts on disk.
"""

from __future__ import annotations

import os
from typing import Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_table(
    name: str,
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence],
    notes: Sequence[str] = (),
) -> str:
    """Format, print, and persist one reproduction table."""
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))
    for note in notes:
        lines.append(f"note: {note}")
    text = "\n".join(lines)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    return text


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
