"""Scheduling-policy sweep: guided vs static vs locality-aware.

The locality policy aligns pardo iterations with the workers that own
(or recently cached) the blocks those iterations fetch, then lets idle
workers steal the cold tail of the busiest queue.  This benchmark runs
the program library under every policy at several worker counts and
asserts the two properties that make the policy shippable:

* **determinism** -- every policy produces bitwise-identical results at
  every worker count (the canonical collective reduction makes the
  answer independent of which worker ran which iteration), and
* **traffic** -- on the get-heavy programs (MP2, CCSD) the locality
  policy moves strictly fewer simulated remote bytes than guided at
  every multi-worker count.

Simulated bytes moved and simulated wall-clock per (program, policy,
workers) cell are written to a JSON report (CI uploads it as an
artifact).

Usage::

    PYTHONPATH=src python benchmarks/bench_scheduling.py \
        [--smoke] [--out BENCH_scheduling.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.programs import (
    run_ao2mo,
    run_ccsd,
    run_fock_build,
    run_lccd,
    run_mp2,
    run_paper_contraction,
)
from repro.sip import SIPConfig

POLICIES = ("guided", "static", "locality")
WORKER_COUNTS = (1, 2, 4)

DRIVERS = {
    "mp2_energy": lambda cfg: run_mp2(n_basis=10, n_occ=4, config=cfg),
    "ccsd": lambda cfg: run_ccsd(n_basis=6, n_occ=2, iterations=2, config=cfg),
    "paper_contraction": lambda cfg: run_paper_contraction(
        n_basis=8, n_occ=3, config=cfg
    ),
    "ao2mo_transform": lambda cfg: run_ao2mo(n_basis=6, config=cfg),
    "lccd_iteration": lambda cfg: run_lccd(
        n_basis=6, n_occ=2, iterations=2, config=cfg
    ),
    "fock_build": lambda cfg: run_fock_build(n_basis=8, n_occ=3, config=cfg),
}

SMOKE_DRIVERS = ("mp2_energy", "ccsd")

# programs where the acceptance bar requires locality < guided traffic
TRAFFIC_GATED = ("mp2_energy", "ccsd")


def _config(policy: str, workers: int) -> SIPConfig:
    return SIPConfig(
        workers=workers, io_servers=1, segment_size=2, scheduling=policy
    )


def run_cell(name: str, policy: str, workers: int) -> dict:
    out = DRIVERS[name](_config(policy, workers))
    assert out.error < 1e-10, (name, policy, workers, out.error)
    stats = out.result.stats
    return {
        "program": name,
        "policy": policy,
        "workers": workers,
        "value": np.asarray(out.value).tolist(),
        "simulated_time": out.result.elapsed,
        "remote_bytes": int(stats["remote_bytes"]),
        "chunks": int(stats["sched_chunks"]),
        "iterations": int(stats["sched_iterations"]),
        "locality_hits": int(stats["sched_locality_hits"]),
        "locality_misses": int(stats["sched_locality_misses"]),
        "steals": int(stats["sched_steals"]),
        "stolen_iterations": int(stats["sched_stolen_iterations"]),
    }


def run_one(name: str) -> list[dict]:
    rows = []
    for workers in WORKER_COUNTS:
        cells = {p: run_cell(name, p, workers) for p in POLICIES}
        values = {repr(c["value"]) for c in cells.values()}
        assert len(values) == 1, (
            f"{name} @ {workers} workers: policies disagree bitwise: {values}"
        )
        if name in TRAFFIC_GATED and workers > 1:
            loc, gui = cells["locality"], cells["guided"]
            assert loc["remote_bytes"] < gui["remote_bytes"], (
                f"{name} @ {workers} workers: locality moved "
                f"{loc['remote_bytes']} B, guided {gui['remote_bytes']} B"
            )
        rows.extend(cells.values())
        loc = cells["locality"]
        saved = cells["guided"]["remote_bytes"] - loc["remote_bytes"]
        print(
            f"{name:>18} w={workers}: guided {cells['guided']['remote_bytes']:>9} B, "
            f"locality {loc['remote_bytes']:>9} B ({saved:+d} B saved)  "
            f"hits={loc['locality_hits']:<5} steals={loc['steals']:<3} "
            f"bitwise=yes"
        )
    return rows


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="subset, quick CI run")
    ap.add_argument("--out", default="BENCH_scheduling.json")
    args = ap.parse_args()

    names = SMOKE_DRIVERS if args.smoke else sorted(DRIVERS)
    rows = []
    for name in names:
        rows.extend(run_one(name))

    loc_rows = [r for r in rows if r["policy"] == "locality" and r["workers"] > 1]
    total_hits = sum(r["locality_hits"] for r in loc_rows)
    assert total_hits > 0, "locality policy never hit a preferred worker"
    saved = sum(
        g["remote_bytes"] - l["remote_bytes"]
        for g in rows
        for l in rows
        if g["policy"] == "guided"
        and l["policy"] == "locality"
        and g["program"] == l["program"]
        and g["workers"] == l["workers"]
        and g["workers"] > 1
    )

    report = {
        "benchmark": "scheduling",
        "smoke": args.smoke,
        "policies": list(POLICIES),
        "worker_counts": list(WORKER_COUNTS),
        "cells": rows,
        "total_locality_hits": total_hits,
        "total_steals": sum(r["steals"] for r in loc_rows),
        "remote_bytes_saved_vs_guided": int(saved),
    }
    Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"\nwrote {args.out}: {len(rows)} cells, "
        f"{saved} remote bytes saved vs guided"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
