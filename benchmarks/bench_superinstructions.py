"""Microbenchmarks of the super-instruction kernels (real wall time).

These are the only benchmarks that time *host* execution rather than
simulated execution: the numpy kernels standing in for the paper's
Fortran/DGEMM super instructions.  They document the granularity
argument of Section III -- a block contraction at segment size 10-50
does 2x10^3 .. 2x2500^3-scale flops, plenty to amortize overheads and
to overlap communication against.
"""

import numpy as np
import pytest

from repro.costmodel import CostModel
from repro.machines import LAPTOP
from repro.sip.backend import KernelOperand, RealBackend


def make_ops(seg, rank=4):
    rng = np.random.default_rng(0)
    shape = (seg,) * rank
    a = KernelOperand(
        shape=shape, index_ids=(0, 1, 2, 3), data=rng.standard_normal(shape)
    )
    b = KernelOperand(
        shape=shape, index_ids=(2, 3, 4, 5), data=rng.standard_normal(shape)
    )
    out = KernelOperand(
        shape=shape, index_ids=(0, 1, 4, 5), data=np.zeros(shape)
    )
    return out, a, b


@pytest.mark.benchmark(group="kernels")
@pytest.mark.parametrize("seg", [4, 10, 20])
def test_block_contraction_kernel(benchmark, seg):
    backend = RealBackend(CostModel(LAPTOP))
    out, a, b = make_ops(seg)
    benchmark(backend.contract, out, "=", a, b)
    # sanity: matches einsum
    ref = np.einsum("abcd,cdef->abef", a.data, b.data)
    assert np.allclose(out.data, ref)


@pytest.mark.benchmark(group="kernels")
@pytest.mark.parametrize("seg", [10, 20])
def test_block_permutation_kernel(benchmark, seg):
    backend = RealBackend(CostModel(LAPTOP))
    rng = np.random.default_rng(1)
    shape = (seg,) * 4
    src = KernelOperand(
        shape=shape, index_ids=(0, 1, 2, 3), data=rng.standard_normal(shape)
    )
    dst = KernelOperand(shape=shape, index_ids=(3, 1, 2, 0), data=np.zeros(shape))
    benchmark(backend.copy, dst, src)
    assert np.allclose(dst.data, src.data.transpose(3, 1, 2, 0))


@pytest.mark.benchmark(group="kernels")
def test_scalar_contraction_kernel(benchmark):
    backend = RealBackend(CostModel(LAPTOP))
    rng = np.random.default_rng(2)
    shape = (16, 16, 16, 16)
    a = KernelOperand(
        shape=shape, index_ids=(0, 1, 2, 3), data=rng.standard_normal(shape)
    )
    b = KernelOperand(
        shape=shape, index_ids=(0, 1, 2, 3), data=rng.standard_normal(shape)
    )
    value, _cost = benchmark(backend.scalar_contract, a, b)
    assert value == pytest.approx(float(np.sum(a.data * b.data)))


@pytest.mark.benchmark(group="kernels")
def test_energy_denominator_kernel(benchmark):
    from repro.programs.supers import cc_denominator
    from repro.sip.registry import SuperCall

    e_occ = -2.0 - 0.1 * np.arange(20)
    e_virt = 0.5 + 0.1 * np.arange(20)
    fn = cc_denominator(e_occ, e_virt)
    shape = (10, 10, 10, 10)
    block = KernelOperand(
        shape=shape,
        index_ids=(0, 1, 2, 3),
        data=np.ones(shape),
        element_ranges=((0, 10), (0, 10), (0, 10), (0, 10)),
    )

    def call():
        block.data[...] = 1.0
        return fn(
            SuperCall(name="cc_denominator", blocks=[block], scalars=[], real=True)
        )

    benchmark(call)
    denom = (
        e_occ[:10, None, None, None]
        + e_occ[None, :10, None, None]
        - e_virt[None, None, :10, None]
        - e_virt[None, None, None, :10]
    )
    assert np.allclose(block.data, 1.0 / denom)
