"""Figure 6: Fock matrix build for the diamond nanocrystal (C42H42N,
2944 basis functions) on jaguar, 12,000-108,000 cores.

Paper series: wall time and efficiency; strong scaling up to 72,000
cores, *longer* execution beyond, and the inset result that at 84,000
cores retuning the segment size dropped the time from 83.2 s to
57.5 s -- better than the 79.4 s of the untuned 72,000-core run.

All scaling-curve runs share one default segment size (the paper's
runs "were identical except for the number of processors"); the retune
table sweeps the segment size at 84,000 cores.
"""

import pytest

from repro.chem import DIAMOND_NV
from repro.machines import JAGUAR_XT5
from repro.perfmodel import fock_build_workload, simulate, sweep

from _tables import emit_table

PROCS = [12000, 24000, 48000, 72000, 84000, 96000, 108000]
DEFAULT_SEG = 8
TUNE_SEGS = [6, 7, 8, 9, 10, 11, 12, 13]


def generate_scaling():
    workload = fock_build_workload(DIAMOND_NV, seg=DEFAULT_SEG)
    return sweep(workload, JAGUAR_XT5, PROCS, baseline_procs=12000, io_servers=64)


def generate_retune():
    return [
        (seg, simulate(
            fock_build_workload(DIAMOND_NV, seg=seg),
            JAGUAR_XT5,
            84000,
            io_servers=64,
        ).time)
        for seg in TUNE_SEGS
    ]


@pytest.mark.benchmark(group="fig6")
def test_fig6_fock_build_scaling(benchmark):
    rows = benchmark(generate_scaling)
    emit_table(
        "fig6_fock_build",
        "Fig. 6 -- diamond nanocrystal (2944 fns) Fock build on jaguar",
        ["cores", "seconds", "efficiency"],
        [[r["procs"], r["time"], r["efficiency"]] for r in rows],
        notes=[
            "paper: strong scaling to 72k cores; 84k-108k runs take "
            "longer than 72k",
        ],
    )
    by = {r["procs"]: r for r in rows}
    # strong scaling up to 72k
    assert by[72000]["time"] < by[12000]["time"] / 3.5
    # no improvement past 72k (the turnover)
    for p in (84000, 96000, 108000):
        assert by[p]["time"] >= by[72000]["time"] * 0.99
    assert by[108000]["efficiency"] < by[72000]["efficiency"]


@pytest.mark.benchmark(group="fig6")
def test_fig6_segment_retune_at_84k(benchmark):
    table = benchmark(generate_retune)
    untuned_72k = simulate(
        fock_build_workload(DIAMOND_NV, seg=DEFAULT_SEG),
        JAGUAR_XT5,
        72000,
        io_servers=64,
    ).time
    untuned_84k = dict(table)[DEFAULT_SEG]
    best_seg, best_time = min(table, key=lambda kv: kv[1])
    emit_table(
        "fig6_retune_84k",
        "Fig. 6 inset -- segment-size retune at 84,000 cores",
        ["segment", "seconds"],
        [[seg, t] for seg, t in table],
        notes=[
            f"untuned default seg={DEFAULT_SEG}: 84k = {untuned_84k:.1f}s, "
            f"72k = {untuned_72k:.1f}s",
            f"tuned best seg={best_seg}: {best_time:.1f}s  (paper: 83.2s -> "
            "57.5s, beating the 79.4s untuned 72k run)",
        ],
    )
    # the paper's double-claim: tuned-84k beats untuned-84k AND untuned-72k
    assert best_time < untuned_84k
    assert best_time < untuned_72k
