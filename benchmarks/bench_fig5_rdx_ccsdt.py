"""Figure 5: RHF CCSD(T) for RDX on jaguar, 10,000-80,000 processors.

Paper series: wall time and efficiency relative to the 10,000-processor
run, with "good strong scaling up to around 30,000 processors" and
declining efficiency beyond.  The (T) triples are the n^7 term --
compute-dense, so they scale further than the CCSD iterations of
Fig. 4; the eventual roll-off comes from pardo granularity and master
dole-out at extreme processor counts.
"""

import pytest

from repro.chem import RDX
from repro.machines import JAGUAR_XT5
from repro.perfmodel import sweep, triples_workload

from _tables import emit_table

PROCS = [10000, 20000, 30000, 45000, 60000, 80000]
SEG = 20  # the paper's untuned default granularity for these runs


def generate_rows():
    workload = triples_workload(RDX, seg=SEG)
    return sweep(workload, JAGUAR_XT5, PROCS, baseline_procs=10000, io_servers=64)


@pytest.mark.benchmark(group="fig5")
def test_fig5_rdx_ccsdt(benchmark):
    rows = benchmark(generate_rows)
    emit_table(
        "fig5_rdx_ccsdt",
        "Fig. 5 -- RDX RHF CCSD(T) triples on jaguar (efficiency vs 10k procs)",
        ["procs", "minutes", "efficiency"],
        [[r["procs"], r["time"] / 60, r["efficiency"]] for r in rows],
        notes=["paper: good strong scaling to ~30k procs, declining beyond"],
    )
    by_procs = {r["procs"]: r for r in rows}
    # good scaling to 30k
    assert by_procs[20000]["efficiency"] > 0.85
    assert by_procs[30000]["efficiency"] > 0.75
    # declining beyond
    assert by_procs[80000]["efficiency"] < by_procs[30000]["efficiency"]
    assert by_procs[80000]["efficiency"] < 0.7
    # absolute time still improves out to 45k (the curve keeps falling)
    assert by_procs[45000]["time"] < by_procs[10000]["time"] / 2
