"""Memory-stress sweep: every bundled SIAL program at half its peak.

The paper's core promise is that SIAL programs keep working when the
arrays stop fitting: the SIP degrades to disk traffic, never to a wrong
answer.  This benchmark runs the whole program library twice per entry
-- once spill-enabled but unconstrained (the baseline), once with the
per-worker budget clamped to half the baseline's observed resident
peak (never below the dry-run pinned-only floor) -- and asserts that
every constrained run

* completes (no ``OutOfBlockMemory``),
* matches the baseline **bitwise** (static pardo scheduling keeps the
  iteration assignment identical; only timing may differ),
* reports victim-cascade activity whenever the budget actually bites,
* never runs faster than the unconstrained baseline in simulated time.

Pressure statistics for every program are written to a JSON report
(CI uploads it as an artifact).

Usage::

    PYTHONPATH=src python benchmarks/bench_memory_stress.py \
        [--smoke] [--out BENCH_memory_stress.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.programs import (
    run_ao2mo,
    run_ccsd,
    run_ccsd_t,
    run_fock_build,
    run_lccd,
    run_lccd_anderson,
    run_mp2,
    run_paper_contraction,
    run_uhf_mp2,
)
from repro.sip import SIPConfig

# the differential-test registry's program set, sized up slightly so the
# working sets are big enough for a halved budget to actually bite
DRIVERS = {
    "paper_contraction": lambda cfg: run_paper_contraction(
        n_basis=8, n_occ=3, config=cfg
    ),
    "mp2_energy": lambda cfg: run_mp2(n_basis=10, n_occ=4, config=cfg),
    "uhf_mp2_energy": lambda cfg: run_uhf_mp2(
        n_basis=8, n_alpha=3, n_beta=2, config=cfg
    ),
    "ao2mo_transform": lambda cfg: run_ao2mo(n_basis=6, config=cfg),
    "lccd_iteration": lambda cfg: run_lccd(
        n_basis=6, n_occ=2, iterations=2, config=cfg
    ),
    "lccd_anderson": lambda cfg: run_lccd_anderson(
        n_basis=6, n_occ=2, iterations=2, config=cfg
    ),
    "ccsd": lambda cfg: run_ccsd(n_basis=6, n_occ=2, iterations=2, config=cfg),
    "ccsd_t": lambda cfg: run_ccsd_t(n_basis=4, n_occ=1, sweeps=1, config=cfg),
    "fock_build": lambda cfg: run_fock_build(n_basis=8, n_occ=3, config=cfg),
}

SMOKE_DRIVERS = ("mp2_energy", "ao2mo_transform", "fock_build")

STAT_KEYS = (
    "mem_budget_bytes",
    "mem_peak_bytes",
    "mem_cascades",
    "mem_pressure_evictions",
    "mem_spills",
    "mem_spill_bytes",
    "mem_faults_in",
    "mem_fault_bytes",
    "mem_peak_spill_bytes",
)


def _config(budget=None):
    kw = dict(
        workers=2,
        io_servers=1,
        segment_size=2,
        scheduling="static",
        spill=True,
    )
    if budget is not None:
        kw["memory_per_worker"] = float(budget)
    return SIPConfig(**kw)


def run_one(name: str) -> dict:
    driver = DRIVERS[name]
    base = driver(_config())
    assert base.error < 1e-10, (name, base.error)
    peak = base.result.stats["mem_peak_bytes"]
    floor = base.result.dry_run.pinned_floor_bytes
    requirement = base.result.dry_run.per_worker_bytes
    budget = max(floor, peak // 2)

    out = driver(_config(budget=budget))
    assert out.error < 1e-10, (name, out.error)
    base_v = np.asarray(base.value)
    out_v = np.asarray(out.value)
    bitwise = bool(np.array_equal(out_v, base_v))
    assert bitwise, f"{name}: constrained run is not bitwise identical"

    stats = out.result.stats
    pressured = budget < peak
    if pressured:
        assert stats["mem_cascades"] > 0, (name, stats)
        assert stats["mem_spills"] > 0, (name, stats)
    assert out.result.elapsed >= base.result.elapsed, name

    row = {
        "program": name,
        "dry_run_requirement_bytes": int(requirement),
        "pinned_floor_bytes": int(floor),
        "baseline_peak_bytes": int(peak),
        "budget_bytes": int(budget),
        "budget_fraction_of_peak": round(budget / peak, 4) if peak else None,
        "pressured": pressured,
        "bitwise_identical": bitwise,
        "baseline_time": base.result.elapsed,
        "constrained_time": out.result.elapsed,
        "slowdown": (
            round(out.result.elapsed / base.result.elapsed, 4)
            if base.result.elapsed
            else None
        ),
        "stats": {k: int(stats[k]) for k in STAT_KEYS},
    }
    return row


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="subset, quick CI run")
    ap.add_argument("--out", default="BENCH_memory_stress.json")
    args = ap.parse_args()

    names = SMOKE_DRIVERS if args.smoke else sorted(DRIVERS)
    rows = []
    for name in names:
        row = run_one(name)
        rows.append(row)
        s = row["stats"]
        print(
            f"{name:>18}: budget {row['budget_bytes']:>9} B "
            f"({row['budget_fraction_of_peak']}x peak)  "
            f"cascades={s['mem_cascades']:<5} spills={s['mem_spills']:<5} "
            f"faults_in={s['mem_faults_in']:<5} slowdown={row['slowdown']}x "
            f"bitwise={'yes' if row['bitwise_identical'] else 'NO'}"
        )

    total_spills = sum(r["stats"]["mem_spills"] for r in rows)
    assert total_spills > 0, "no program generated any spill traffic"
    assert all(r["bitwise_identical"] for r in rows)

    report = {
        "benchmark": "memory_stress",
        "smoke": args.smoke,
        "programs": rows,
        "total_spills": total_spills,
        "total_spill_bytes": sum(r["stats"]["mem_spill_bytes"] for r in rows),
    }
    Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}: {len(rows)} programs, {total_spills} spills")
    return 0


if __name__ == "__main__":
    sys.exit(main())
