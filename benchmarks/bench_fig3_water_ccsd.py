"""Figure 3: RHF CCSD for the water cluster (H2O)21H+ on Cray XT4 and XT5.

Paper series: time per CCSD iteration, 512-4096 processors on the XT4
(kraken) and 512-2048 on the XT5 (pingo).  Shape to reproduce: both
machines scale over the range, and the XT5 (faster cores, faster
SeaStar2 links) is roughly 2x faster at equal processor counts.
"""

import pytest

from repro.chem import WATER_CLUSTER_21
from repro.machines import CRAY_XT4, CRAY_XT5
from repro.perfmodel import ccsd_iteration_workload, sweep

from _tables import emit_table

SEG = 16
XT4_PROCS = [512, 1024, 2048, 4096]
XT5_PROCS = [512, 1024, 2048]


def generate_rows():
    workload = ccsd_iteration_workload(WATER_CLUSTER_21, seg=SEG)
    return {
        "xt4": sweep(workload, CRAY_XT4, XT4_PROCS, io_servers=32),
        "xt5": sweep(workload, CRAY_XT5, XT5_PROCS, io_servers=32),
    }


@pytest.mark.benchmark(group="fig3")
def test_fig3_water_cluster_ccsd(benchmark):
    series = benchmark(generate_rows)
    rows = []
    for machine, machine_rows in series.items():
        for r in machine_rows:
            rows.append([machine, r["procs"], r["time"] / 60, r["efficiency"]])
    emit_table(
        "fig3_water_ccsd",
        "Fig. 3 -- (H2O)21H+ RHF CCSD, Cray XT4 (kraken) vs Cray XT5 (pingo)",
        ["machine", "procs", "min/iter", "efficiency"],
        rows,
        notes=[
            "paper: both lines fall with procs; the XT5 sits well below "
            "the XT4 at equal counts",
        ],
    )
    xt4 = {r["procs"]: r for r in series["xt4"]}
    xt5 = {r["procs"]: r for r in series["xt5"]}
    # XT5 faster at every shared count
    for p in XT5_PROCS:
        assert xt5[p]["time"] < xt4[p]["time"]
    # XT4 keeps scaling to 4096
    assert xt4[4096]["time"] < xt4[512]["time"] / 4
    # XT5 roughly 2x faster (processor speed ratio ~2)
    ratio = xt4[512]["time"] / xt5[512]["time"]
    assert 1.5 < ratio < 3.0
