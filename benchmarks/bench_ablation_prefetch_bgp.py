"""Section VI-A ablation: prefetch tuning on BlueGene/P.

The paper's porting story: on BG/P the processor/network performance
ratio differs sharply from the Crays, and the untuned prefetcher let
blocks arrive *too early* -- they were evicted from the (small) block
cache before use and had to be refetched; "the performance improvement
due after tuning was large" (>6 h down to ~4x the XT5 time).

We reproduce the mechanism on the fine-grained simulator: a blocked
contraction runs on the BG/P machine model with a deliberately small
block cache across prefetch depths.  Deep prefetch causes
evicted-before-use blocks and refetches; the tuned depth minimizes
simulated time.
"""

import pytest

from repro.machines import BLUEGENE_P, CRAY_XT5
from repro.sip import SIPConfig, run_source

from _tables import emit_table

SRC = """
sial prefetch_probe
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
temp TC(M, N)

pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  put C(M, N) = TC(M, N)
endpardo M, N
endsial prefetch_probe
"""

NB = 60
SEG = 5
CACHE_BLOCKS = 6  # deliberately tight, as on the 0.5 GB/core BG/P
DEPTHS = [0, 1, 2, 4, 8, 16]


def run_depth(depth, machine=BLUEGENE_P, cache=CACHE_BLOCKS):
    cfg = SIPConfig(
        workers=4,
        io_servers=1,
        segment_size=SEG,
        backend="model",
        machine=machine,
        prefetch_depth=depth,
        cache_blocks=cache,
        inputs={"A": None, "B": None},
    )
    return run_source(SRC, cfg, symbolics={"nb": NB})


def generate_rows():
    rows = []
    for depth in DEPTHS:
        res = run_depth(depth)
        rows.append(
            {
                "depth": depth,
                "time": res.elapsed,
                "wait": res.profile.total_wait,
                "evicted_before_use": res.stats["cache_evicted_before_use"],
                "refetches": res.stats["refetches"],
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation-prefetch")
def test_prefetch_tuning_on_bgp(benchmark):
    rows = benchmark(generate_rows)
    best = min(rows, key=lambda r: r["time"])
    emit_table(
        "ablation_prefetch_bgp",
        "Section VI-A -- prefetch depth on BlueGene/P (tight block cache)",
        ["depth", "time (ms)", "wait (ms)", "evicted unused", "refetches"],
        [
            [
                r["depth"],
                r["time"] * 1e3,
                r["wait"] * 1e3,
                r["evicted_before_use"],
                r["refetches"],
            ]
            for r in rows
        ],
        notes=[
            f"tuned depth here: {best['depth']}",
            "paper: untuned prefetch on BG/P evicted blocks before use, "
            "forcing refetches; tuning recovered a large factor",
        ],
    )
    by_depth = {r["depth"]: r for r in rows}
    # no prefetch: nothing arrives early, so nothing is evicted unused
    assert by_depth[0]["evicted_before_use"] == 0
    # over-deep prefetch thrashes the cache: blocks evicted before use
    deepest = by_depth[DEPTHS[-1]]
    assert deepest["evicted_before_use"] > 0
    assert deepest["refetches"] > 0
    # moderate prefetch beats both extremes
    assert best["depth"] not in (0, DEPTHS[-1])
    assert best["time"] < by_depth[0]["time"]
    assert best["time"] < deepest["time"]


@pytest.mark.benchmark(group="ablation-prefetch")
def test_bgp_vs_xt5_after_tuning(benchmark):
    """After tuning, BG/P time should be within ~the processor-speed
    ratio of the XT5 (paper: a factor of four), not the 14x of the
    untuned port."""

    def generate():
        best_bgp = min(
            (run_depth(d).elapsed for d in DEPTHS),
            default=None,
        )
        xt5 = run_depth(2, machine=CRAY_XT5, cache=64).elapsed
        return best_bgp, xt5

    best_bgp, xt5 = benchmark(generate)
    ratio = best_bgp / xt5
    emit_table(
        "ablation_bgp_vs_xt5",
        "Section VI-A -- tuned BG/P vs Cray XT5",
        ["machine", "time (ms)"],
        [["bluegene-p (tuned)", best_bgp * 1e3], ["cray-xt5", xt5 * 1e3]],
        notes=[
            f"ratio: {ratio:.1f}x (paper: ~4x, 'commensurate with the "
            "ratio of the processor speeds')"
        ],
    )
    assert 1.5 < ratio < 8.0
