"""Performance-model extraction: SIAL programs -> scaling predictions.

The paper's planned SIAL tool support included "providing support for
performance modeling" (Section VIII).  This benchmark exercises the
implementation in :mod:`repro.perfmodel.extract`: workload models are
derived *automatically from the compiled bytecode* of the repository's
SIAL programs, validated against fine-grained simulation at small
worker counts, and then used to predict strong scaling at counts the
fine simulator cannot reach.
"""

import numpy as np
import pytest

from repro.machines import CRAY_XT5, LAPTOP
from repro.perfmodel import extract_workload, simulate, sweep
from repro.programs import library
from repro.sial import compile_source
from repro.sip import SIPConfig, run_source

from _tables import emit_table

LCCD_SYMBOLICS = {"no": 4, "nv": 12, "niter": 2}
FOCK_SYMBOLICS = {"nb": 24}


def _fine_config(workers, machine):
    return SIPConfig(
        workers=workers,
        io_servers=2,
        segment_size=4,
        backend="model",
        machine=machine,
        inputs={
            "OOVV": None,
            "VVVV": None,
            "OOOO": None,
            "OVVO": None,
        },
        superinstructions={"cc_denominator": lambda call: 4.0},
    )


def generate_validation():
    prog = compile_source(library.LCCD_ITERATION)
    workload = extract_workload(
        prog, SIPConfig(segment_size=4), LCCD_SYMBOLICS
    )
    rows = []
    for workers in (2, 4, 8):
        fine = run_source(
            library.LCCD_ITERATION, _fine_config(workers, LAPTOP), LCCD_SYMBOLICS
        )
        coarse = simulate(workload, LAPTOP, workers, io_servers=2)
        rows.append(
            {
                "workers": workers,
                "fine": fine.elapsed,
                "coarse": coarse.time,
                "ratio": coarse.time / fine.elapsed,
            }
        )
    return rows


def generate_prediction():
    prog = compile_source(library.FOCK_BUILD)
    workload = extract_workload(
        prog, SIPConfig(segment_size=4), FOCK_SYMBOLICS, name="fock[extracted]"
    )
    return sweep(workload, CRAY_XT5, [1, 4, 16, 36, 64], io_servers=4)


@pytest.mark.benchmark(group="extracted")
def test_extracted_lccd_tracks_fine_simulation(benchmark):
    rows = benchmark(generate_validation)
    emit_table(
        "extracted_lccd_validation",
        "Extracted LCCD workload model vs fine simulation (laptop model)",
        ["workers", "fine (ms)", "coarse (ms)", "ratio"],
        [
            [r["workers"], r["fine"] * 1e3, r["coarse"] * 1e3, r["ratio"]]
            for r in rows
        ],
        notes=[
            "the workload spec is derived from the compiled bytecode, "
            "not hand-written",
        ],
    )
    for r in rows:
        assert 0.25 < r["ratio"] < 4.0, r
    # scaling trend agrees: both halve-ish from 2 to 8 workers
    fine_speedup = rows[0]["fine"] / rows[-1]["fine"]
    coarse_speedup = rows[0]["coarse"] / rows[-1]["coarse"]
    assert fine_speedup == pytest.approx(coarse_speedup, rel=0.5)


@pytest.mark.benchmark(group="extracted")
def test_extracted_fock_scaling_prediction(benchmark):
    rows = benchmark(generate_prediction)
    emit_table(
        "extracted_fock_prediction",
        "Strong scaling predicted from the extracted fock_build model",
        ["procs", "time (s)", "efficiency", "wait %"],
        [
            [r["procs"], r["time"], r["efficiency"], r["wait_percent"]]
            for r in rows
        ],
    )
    assert rows[0]["efficiency"] == pytest.approx(1.0)
    # 36 pardo blocks at segment 4: scaling saturates at ~36 procs
    by = {r["procs"]: r for r in rows}
    assert by[16]["time"] < by[1]["time"] / 8
    assert by[64]["time"] >= by[36]["time"] * 0.95


def generate_ccsd_extraction():
    from repro.chem import LUCIFERIN
    from repro.programs import CCSD_SIAL

    prog = compile_source(CCSD_SIAL)
    workload = extract_workload(
        prog,
        SIPConfig(segment_size=28),
        {"no": 2 * LUCIFERIN.n_occ, "nv": 2 * LUCIFERIN.n_virt, "niter": 1},
        name="ccsd-sial[luciferin]",
    )
    from repro.machines import SUN_OPTERON_IB

    rows = sweep(workload, SUN_OPTERON_IB, [32, 64, 128, 256], io_servers=8)
    return workload, rows


@pytest.mark.benchmark(group="extracted")
def test_extracted_real_ccsd_program_at_paper_scale(benchmark):
    """The *actual* SIAL CCSD program (not a hand-built spec), extracted
    at luciferin scale and swept over the Fig.-2 processor range.

    Absolute flops exceed the hand-built Fig.-2 model because the SIAL
    program works in spin orbitals (no spin adaptation); the scaling
    shape -- near-perfect over 32-256 procs -- is what Fig. 2 reports.
    """
    workload, rows = benchmark(generate_ccsd_extraction)
    emit_table(
        "extracted_ccsd_luciferin",
        "Fig. 2 regenerated from the compiled SIAL CCSD program itself",
        ["procs", "hours/iter", "efficiency", "wait %"],
        [
            [r["procs"], r["time"] / 3600, r["efficiency"], r["wait_percent"]]
            for r in rows
        ],
        notes=[
            f"{len(workload.phases)} phases extracted from bytecode; "
            f"max parallelism {workload.max_parallelism} pardo iterations",
            "spin-orbital formulation: ~8x the spin-adapted flop count of "
            "the hand-built Fig. 2 model; scaling shape is the claim",
        ],
    )
    assert rows[-1]["efficiency"] > 0.9
    for a, b in zip(rows, rows[1:]):
        assert b["time"] < a["time"] * 0.6
