"""Figure 7: Cytosine+OH UHF MP2 gradient -- ACES III vs NWChem.

Paper series (SGI Altix, 16-256 processors): wall time of ACES III
with 1 GB/core against NWChem with 2 GB/core and 4 GB/core.  Shape to
reproduce:

* ACES III at 1 GB/core runs everywhere and is the fastest line;
* NWChem never completes with 1 GB/core at any processor count, nor at
  16 processors with 2 GB/core (rigid GA memory layout);
* NWChem's runnable points are slower (synchronous GA gets leave
  communication unoverlapped).

The times come from the coarse model: the same UHF MP2-gradient
workload is played with overlap (SIA) and without (GA); feasibility
comes from the NWChem memory model in :mod:`repro.baselines` vs the
SIA's served-array design (worker RAM holds only amplitude shares).

Deviation note: the paper also reports the 16-processor NWChem run
failing at 4 GB/core (a >24 h timeout); our memory model marks that
point feasible and merely slow.
"""

import pytest

from repro.baselines import nwchem_gradient_feasible
from repro.chem import CYTOSINE_OH
from repro.machines import SGI_ALTIX
from repro.perfmodel import mp2_gradient_workload, simulate

from _tables import emit_table

PROCS = [16, 32, 64, 128, 256]
SEG = 12
GB = 1.0e9


def sia_feasible(n_ranks: int, memory_per_rank: float) -> bool:
    """ACES III keeps the big integral generations on served arrays;
    worker RAM holds amplitude shares plus block working sets."""
    mol = CYTOSINE_OH
    o, v = mol.n_occ, mol.n_virt
    amplitude_share = (o * v) ** 2 * 8.0 / n_ranks
    working = 64 * SEG**4 * 8.0
    return amplitude_share + working <= memory_per_rank


def _transform_passes(memory_per_rank: float) -> int:
    """NWChem-style conventional 4-index transform: when the
    half-transformed intermediates do not fit, the AO integrals are
    re-read once per batch of occupied orbitals."""
    from repro.baselines import nwchem_memory_floor

    mol = CYTOSINE_OH
    n, o = mol.n_basis, mol.n_occ
    per_orbital = n**3 * 8.0  # one occupied orbital's half-transformed slice
    free = memory_per_rank - nwchem_memory_floor(n, o)
    batch = max(1, int(free / per_orbital))
    return max(1, -(-o // batch))


def _nwchem_workload(memory_per_rank: float):
    from dataclasses import replace

    base = mp2_gradient_workload(CYTOSINE_OH, seg=SEG)
    passes = _transform_passes(memory_per_rank)
    phases = []
    for phase in base.phases:
        if phase.name == "transform":
            phase = replace(
                phase,
                served_bytes_per_iter=phase.served_bytes_per_iter * passes,
                served_unique_bytes=phase.served_unique_bytes * passes,
            )
        phases.append(phase)
    return replace(base, phases=tuple(phases))


def generate_rows():
    workload = mp2_gradient_workload(CYTOSINE_OH, seg=SEG)
    rows = []
    for p in PROCS:
        aces = simulate(workload, SGI_ALTIX, p, io_servers=max(1, p // 16))
        row = {"procs": p, "aces_1gb": aces.time if sia_feasible(p, GB) else None}
        for mem, key in ((2 * GB, "nwchem_2gb"), (4 * GB, "nwchem_4gb")):
            if nwchem_gradient_feasible(CYTOSINE_OH, p, mem):
                ga = simulate(
                    _nwchem_workload(mem),
                    SGI_ALTIX,
                    p,
                    io_servers=max(1, p // 16),
                    overlap=False,
                )
                row[key] = ga.time
            else:
                row[key] = None
        row["nwchem_1gb"] = (
            "runs" if nwchem_gradient_feasible(CYTOSINE_OH, p, GB) else None
        )
        rows.append(row)
    return rows


def _cell(value):
    if value is None:
        return "FAILED"
    if isinstance(value, str):
        return value
    return f"{value:.1f}"


@pytest.mark.benchmark(group="fig7")
def test_fig7_aces_vs_nwchem(benchmark):
    rows = benchmark(generate_rows)
    emit_table(
        "fig7_vs_nwchem",
        "Fig. 7 -- Cytosine+OH UHF MP2 gradient, SGI Altix (seconds)",
        ["procs", "ACES III 1GB", "NWChem 2GB", "NWChem 4GB", "NWChem 1GB"],
        [
            [
                r["procs"],
                _cell(r["aces_1gb"]),
                _cell(r["nwchem_2gb"]),
                _cell(r["nwchem_4gb"]),
                _cell(r["nwchem_1gb"]),
            ]
            for r in rows
        ],
        notes=[
            "paper: ACES III (1GB/core) beats NWChem (2GB and 4GB/core); "
            "NWChem fails at 1GB/core everywhere and at 16 procs",
            "deviation: our model lets NWChem 4GB/16p run (slowly); the "
            "paper reports it exceeding 24h",
        ],
    )
    by = {r["procs"]: r for r in rows}
    # ACES runs everywhere at 1 GB/core
    assert all(by[p]["aces_1gb"] is not None for p in PROCS)
    # NWChem never runs at 1 GB/core
    assert all(by[p]["nwchem_1gb"] is None for p in PROCS)
    # NWChem cannot run at 16 procs with 2 GB/core
    assert by[16]["nwchem_2gb"] is None
    # wherever NWChem runs, ACES III at 1 GB/core is faster
    for p in PROCS:
        for key in ("nwchem_2gb", "nwchem_4gb"):
            if by[p][key] is not None:
                assert by[p]["aces_1gb"] < by[p][key]
