"""Block-transfer engine observability report.

Runs representative bundled programs on both execution backends and
collects every ``blockio_*`` counter the transfer engine produces --
issued gets/requests, coalesced duplicate fetches, waiter depth,
in-flight peak, backpressure stalls, disk loads, write-backs and the
canonical accumulation ledger traffic.  The JSON this writes is the CI
artifact that lets a reviewer see, per program and worker count, how
the block movement pipeline actually behaved.

Hard gates (a violation fails the run):

* CCSD must coalesce (``blockio_coalesced > 0``) on both backends --
  its pardo loops re-get amplitude blocks across iterations, and a
  refactor that stops folding those duplicates onto the in-flight
  fetch would silently double the wire traffic;
* the single-block coalescing microprogram must issue exactly **one**
  GetBlock no matter how many iterations demand the block;
* every mp run must remain bitwise identical to its simulator twin.

Usage::

    PYTHONPATH=src python benchmarks/bench_blockio.py \
        [--out BENCH_blockio.json]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.programs import run_ccsd, run_mp2
from repro.sip import SIPConfig
from repro.sip.runner import run_source

REPO_ROOT = Path(__file__).resolve().parent.parent

#: every pardo L iteration demands the one block of D
COALESCE_SRC = """sial coalesce
symbolic nb
symbolic nl
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nl
distributed D(M, N)
temp T(M, N)
temp S(M, N)
pardo M, N
  T(M, N) = 1.0
  put D(M, N) = T(M, N)
endpardo M, N
sip_barrier
pardo L
  do M
    do N
      get D(M, N)
      S(M, N) = D(M, N) * 2.0
    enddo N
  enddo M
endpardo L
sip_barrier
endsial coalesce
"""


def _config(workers: int, execution: str, **kw) -> SIPConfig:
    defaults = dict(
        workers=workers,
        io_servers=1,
        segment_size=2,
        execution=execution,
        sanitize=True,
    )
    defaults.update(kw)
    return SIPConfig(**defaults)


def _blockio(stats: dict) -> dict:
    return {k: v for k, v in sorted(stats.items()) if k.startswith("blockio_")}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_blockio.json")
    args = parser.parse_args()

    report: dict = {"programs": {}, "gates": {}}
    failures: list[str] = []

    # -- representative programs on both backends -------------------------
    drivers = {
        "mp2": lambda cfg: run_mp2(n_basis=6, n_occ=2, config=cfg),
        "ccsd": lambda cfg: run_ccsd(
            n_basis=4, n_occ=1, iterations=2, config=cfg
        ),
    }
    for name, driver in drivers.items():
        per_program: dict = {}
        for execution in ("sim", "mp"):
            for workers in (1, 2, 4):
                out = driver(_config(workers, execution))
                if out.error >= 1e-10:
                    failures.append(
                        f"{name}@{workers}/{execution}: error {out.error}"
                    )
                per_program[f"{execution}@{workers}"] = _blockio(
                    out.result.stats
                )
        report["programs"][name] = per_program

    # gate: CCSD coalesces on both backends
    for execution in ("sim", "mp"):
        coalesced = report["programs"]["ccsd"][f"{execution}@2"][
            "blockio_coalesced"
        ]
        report["gates"][f"ccsd_coalesced_{execution}"] = coalesced
        if coalesced <= 0:
            failures.append(f"ccsd on {execution}: no coalesced fetches")

    # -- the one-wire-message microprogram --------------------------------
    for execution in ("sim", "mp"):
        res = run_source(
            COALESCE_SRC,
            _config(2, execution, segment_size=4),
            symbolics={"nb": 4, "nl": 12},
        )
        bio = _blockio(res.stats)
        report["programs"][f"coalesce_{execution}"] = bio
        report["gates"][f"coalesce_issued_gets_{execution}"] = bio[
            "blockio_issued_gets"
        ]
        if bio["blockio_issued_gets"] != 1:
            failures.append(
                f"coalesce microprogram on {execution}: "
                f"{bio['blockio_issued_gets']} GetBlocks issued, expected 1"
            )
        if bio["blockio_coalesced"] <= 0:
            failures.append(
                f"coalesce microprogram on {execution}: nothing coalesced"
            )

    report["ok"] = not failures
    report["failures"] = failures
    Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True))
    print(json.dumps(report["gates"], indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"ok -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
