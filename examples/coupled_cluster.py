#!/usr/bin/env python
"""A complete correlated-energy workflow on the simulated SIP.

Mirrors what a computational chemist does with ACES III:

1. Hartree-Fock on a (synthetic) molecule -- numpy reference;
2. MP2 energy via the SIAL program ``mp2_energy`` on the SIP;
3. LCCD (a linearized coupled-cluster iteration, with the O(v^4)
   integrals on disk-backed *served* arrays) via the SIAL program
   ``lccd_iteration``;
4. full CCSD and the (T) correction from the numpy reference library,
   to place the SIAL numbers in the method hierarchy.

Every SIAL energy is checked against its numpy counterpart.
"""

import numpy as np

from repro.chem import (
    ao_to_mo,
    ccsd,
    ccsd_t,
    lccd,
    make_integrals,
    mp2_energy_rhf,
    n_occ_spin,
    rhf,
    spin_orbital_eri,
)
from repro.programs import run_ccsd, run_ccsd_t, run_lccd, run_mp2
from repro.sip import SIPConfig

N_BASIS, N_OCC, SEED = 8, 3, 42
LCCD_SWEEPS = 8


def main() -> None:
    print(f"synthetic molecule: {N_BASIS} basis functions, {N_OCC} pairs\n")

    ints = make_integrals(N_BASIS, seed=SEED)
    scf = rhf(ints.h, ints.eri, N_OCC)
    print(f"RHF    energy = {scf.energy:+.10f}  "
          f"(converged in {scf.iterations} iterations)")

    # -- MP2 on the SIP -----------------------------------------------------
    mp2 = run_mp2(n_basis=N_BASIS, n_occ=N_OCC, seed=SEED)
    print(f"MP2    corr   = {mp2.value:+.10f}  (SIAL on SIP)")
    print(f"       ref    = {mp2.reference:+.10f}  (numpy)   "
          f"|err| = {mp2.error:.1e}")
    print(f"       simulated time = {mp2.result.elapsed*1e3:.2f} ms on "
          f"{len(mp2.result.profile.workers)} workers, "
          f"wait {100*mp2.result.profile.wait_fraction:.1f} %")

    # -- LCCD on the SIP (served VVVV integrals) ------------------------------
    config = SIPConfig(workers=4, io_servers=2, segment_size=2)
    lccd_out = run_lccd(
        n_basis=6, n_occ=2, iterations=LCCD_SWEEPS, seed=SEED, config=config
    )
    print(f"\nLCCD   corr   = {lccd_out.value:+.10f}  "
          f"(SIAL on SIP, {LCCD_SWEEPS} sweeps, VVVV on disk)")
    print(f"       ref    = {lccd_out.reference:+.10f}  (numpy)   "
          f"|err| = {lccd_out.error:.1e}")
    stats = lccd_out.result.stats
    print(f"       served-array traffic: {stats['server_cache_hits']} cache "
          f"hits, {stats['disk_reads']} disk reads")

    # -- full CCSD in SIAL ------------------------------------------------------
    ccsd_out = run_ccsd(n_basis=5, n_occ=2, iterations=3, seed=SEED)
    print(f"\nCCSD   corr   = {ccsd_out.value:+.10f}  "
          f"(SIAL on SIP, 3 sweeps, all Stanton intermediates)")
    print(f"       ref    = {ccsd_out.reference:+.10f}  (numpy)   "
          f"|err| = {ccsd_out.error:.1e}")
    assert ccsd_out.error < 1e-12

    # -- the (T) triples correction in SIAL (6-d subindexed blocks) ------------
    t_out = run_ccsd_t(n_basis=4, n_occ=2, sweeps=4, seed=SEED)
    print(f"(T)    corr   = {t_out.value:+.2e}  "
          f"(SIAL on SIP, T3 blocks over subindices)")
    print(f"       ref    = {t_out.reference:+.2e}  (numpy)   "
          f"|err| = {t_out.error:.1e}")
    assert t_out.error < 1e-15

    # -- reference CCSD / (T) hierarchy ----------------------------------------
    eri_mo = ao_to_mo(ints.eri, scf.mo_coeff)
    eri_so = spin_orbital_eri(eri_mo)
    eps = np.repeat(scf.mo_energy, 2)
    no = n_occ_spin(N_OCC)
    cc = ccsd(eps, eri_so, no, tolerance=1e-11)
    et = ccsd_t(eps, eri_so, cc.t1, cc.t2, no)
    lc = lccd(eps, eri_so, no, iterations=40, tolerance=1e-12)
    e_mp2 = mp2_energy_rhf(eri_mo, scf.mo_energy, N_OCC)

    print("\nmethod hierarchy (numpy references):")
    print(f"  MP2      {e_mp2:+.10f}")
    print(f"  LCCD     {lc.e_corr:+.10f}   (converged: {lc.converged})")
    print(f"  CCSD     {cc.e_corr:+.10f}   ({cc.iterations} iterations)")
    print(f"  CCSD(T)  {cc.e_corr + et:+.10f}   ((T) = {et:+.2e})")

    assert mp2.error < 1e-11
    assert lccd_out.error < 1e-11
    print("\nOK: all SIAL energies match their references.")


if __name__ == "__main__":
    main()
