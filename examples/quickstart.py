#!/usr/bin/env python
"""Quickstart: compile and run the paper's own contraction example.

This is the SIAL fragment from Section IV-D of the paper:

    R(M,N,I,J) = sum_{L,S} V(M,N,L,S) * T(L,S,I,J)

with V a two-electron-integral array computed on demand.  The script
compiles the program, shows the SIA bytecode, runs it on a simulated
SIP with 4 workers, verifies the result against numpy, and prints the
per-super-instruction profile the SIP collects for free.
"""

import numpy as np

from repro import SIPConfig, compile_sial, dry_run, run
from repro.chem import make_integrals
from repro.programs import PAPER_CONTRACTION
from repro.sial import disassemble

N_BASIS, N_OCC = 8, 4


def main() -> None:
    program = compile_sial(PAPER_CONTRACTION)

    print("=== SIA bytecode (excerpt) ===")
    listing = disassemble(program).splitlines()
    print("\n".join(listing[:18]))
    print(f"... ({len(listing)} lines total)\n")

    # inputs: a random T amplitude array and synthetic integrals for V
    rng = np.random.default_rng(0)
    t = rng.standard_normal((N_BASIS, N_BASIS, N_OCC, N_OCC))
    ints = make_integrals(N_BASIS, seed=0)

    config = SIPConfig(
        workers=4,
        io_servers=1,
        segment_size=3,
        inputs={"T": t},
        integral_source=ints.eri_block,
    )
    symbolics = {"norb": N_BASIS, "nocc": N_OCC}

    print("=== dry run (memory feasibility) ===")
    print(dry_run(program, config, symbolics).report(), "\n")

    result = run(program, config, symbolics)

    r_sial = result.array("R")
    r_numpy = np.einsum("mnls,lsij->mnij", ints.eri, t)
    err = np.abs(r_sial - r_numpy).max()
    print("=== results ===")
    print(f"max |SIAL - numpy|   : {err:.2e}")
    print(f"simulated wall time  : {result.elapsed * 1e3:.3f} ms")
    print(f"wait fraction        : {100 * result.profile.wait_fraction:.1f} %")
    print(f"messages sent        : {result.stats['messages_sent']}")
    print(f"remote bytes moved   : {result.stats['remote_bytes']}")
    print()
    print("=== profile ===")
    print(result.profile.report(limit=6))
    assert err < 1e-12, "SIAL result does not match numpy!"
    print("\nOK: SIAL result matches numpy.")


if __name__ == "__main__":
    main()
