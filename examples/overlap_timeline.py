#!/usr/bin/env python
"""Visualizing communication/computation overlap with the trace recorder.

Runs a blocked matrix multiply twice on a slow-network machine model --
once with the prefetcher off and once with lookahead 3 -- and renders
per-worker timelines where `#` is contraction time and `.` is waiting
for blocks. With prefetching, the dots (waits) largely disappear:
"in a well-tuned SIAL program, a large portion of the communication is
hidden behind computation" (paper, Section III).
"""

from repro.machines import Machine
from repro.sip import SIPConfig, run_source
from repro.sip.tracing import TraceRecorder

SRC = """
sial overlap_demo
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
temp TC(M, N)

pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  put C(M, N) = TC(M, N)
endpardo M, N
endsial overlap_demo
"""

SLOW_NET = Machine(
    name="slow-net",
    flop_rate=50e9,
    kernel_overhead=1e-6,
    latency=50e-6,
    bandwidth=0.05e9,
    memory_per_rank=4e9,
)


def run(depth: int):
    tracer = TraceRecorder()
    cfg = SIPConfig(
        workers=3,
        io_servers=1,
        segment_size=8,
        backend="model",
        machine=SLOW_NET,
        prefetch_depth=depth,
        inputs={"A": None, "B": None},
        tracer=tracer,
    )
    res = run_source(SRC, cfg, symbolics={"nb": 48})
    return tracer, res


def main() -> None:
    for depth, label in ((0, "prefetch OFF"), (3, "prefetch depth 3")):
        tracer, res = run(depth)
        print(f"=== {label} ===")
        print(tracer.timeline(width=68))
        print(
            f"elapsed {res.elapsed*1e3:.2f} ms, "
            f"wait {100*res.profile.wait_fraction:.1f} % of elapsed\n"
        )
    t_off = run(0)[1].elapsed
    t_on = run(3)[1].elapsed
    print(f"speedup from prefetching alone: {t_off / t_on:.2f}x")
    assert t_on < t_off
    print("OK: prefetching hides communication behind computation.")


if __name__ == "__main__":
    main()
