#!/usr/bin/env python
"""Checkpoint and restart -- the paper's rudimentary fault-tolerance facility.

A SIAL program serializes its distributed arrays with ``checkpoint``
(built on ``blocks_to_list``); a restarted run passes ``restart = 1``
and reloads them with ``list_to_blocks`` instead of recomputing.  The
external store is an ordinary dict that survives across runs (a real
deployment would put it on disk).
"""

from repro.programs import run_checkpoint_demo
from repro.sip import SIPConfig


def main() -> None:
    def config_factory():
        return SIPConfig(workers=3, io_servers=1, segment_size=2)

    first, second = run_checkpoint_demo(n_basis=8, config_factory=config_factory)

    print("first run (computes, then checkpoints):")
    print(f"  simulated time : {first.result.elapsed*1e3:.3f} ms")
    print(f"  output correct : {first.error == 0.0}")
    store_keys = sorted(k for k in first.result.external_store if not k.startswith("__"))
    print(f"  store now holds: {store_keys} + scalar snapshot")

    print("restarted run (restart=1: reloads instead of recomputing):")
    print(f"  simulated time : {second.result.elapsed*1e3:.3f} ms")
    print(f"  output correct : {second.error == 0.0}")
    speedup = first.result.elapsed / second.result.elapsed
    print(f"  restart speedup: {speedup:.2f}x (skipped the fill phase)")

    assert first.error == 0.0 and second.error == 0.0
    assert second.result.elapsed < first.result.elapsed
    print("\nOK: restart reproduced the result from the checkpoint.")


if __name__ == "__main__":
    main()
