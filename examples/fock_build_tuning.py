#!/usr/bin/env python
"""Fock-matrix build with runtime tuning -- the Fig. 6 workload in miniature.

Demonstrates the paper's central portability claim: the SIAL program
never changes; performance tuning happens entirely through runtime
parameters (segment size, worker count, machine).  The script runs the
same ``fock_build`` program

* across a sweep of segment sizes on one machine (time vs. granularity),
* on several machine models (Cray XT5 vs BlueGene/P),

verifying each run against the numpy Fock matrix and reporting the
simulated times that show the tuning trade-offs.
"""

from repro.machines import BLUEGENE_P, CRAY_XT5, SUN_OPTERON_IB
from repro.programs import run_fock_build
from repro.sip import SIPConfig

N_BASIS, N_OCC = 12, 4


def main() -> None:
    print(f"Fock build: {N_BASIS} basis functions, {N_OCC} occupied, "
          "4 workers\n")

    print("segment-size sweep on cray-xt5 (identical SIAL program):")
    print(f"  {'seg':>4s} {'blocks':>7s} {'time (ms)':>10s} {'wait %':>7s} "
          f"{'max err':>9s}")
    best = None
    for seg in (1, 2, 3, 4, 6):
        cfg = SIPConfig(
            workers=4, io_servers=1, segment_size=seg, machine=CRAY_XT5
        )
        out = run_fock_build(n_basis=N_BASIS, n_occ=N_OCC, config=cfg)
        blocks = -(-N_BASIS // seg) ** 2
        t = out.result.elapsed * 1e3
        wait = 100 * out.result.profile.wait_fraction
        print(f"  {seg:>4d} {blocks:>7d} {t:>10.2f} {wait:>7.1f} "
              f"{out.error:>9.1e}")
        assert out.error < 1e-12
        if best is None or t < best[1]:
            best = (seg, t)
    print(f"  -> best segment size here: {best[0]} "
          f"({best[1]:.2f} ms)\n")

    print("machine comparison at the best segment size:")
    for machine in (CRAY_XT5, SUN_OPTERON_IB, BLUEGENE_P):
        cfg = SIPConfig(
            workers=4, io_servers=1, segment_size=best[0], machine=machine
        )
        out = run_fock_build(n_basis=N_BASIS, n_occ=N_OCC, config=cfg)
        assert out.error < 1e-12
        print(f"  {machine.name:<16s} {out.result.elapsed*1e3:>9.2f} ms  "
              f"(flop rate {machine.flop_rate/1e9:.1f} GF/core, "
              f"bw {machine.bandwidth/1e9:.1f} GB/s)")

    print("\nOK: same program, same answers, machine-specific timings.")


if __name__ == "__main__":
    main()
