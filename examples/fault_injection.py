#!/usr/bin/env python
"""Fault injection -- running a SIAL program on an adversarial substrate.

A :class:`FaultPlan` makes the simulated machine misbehave
deterministically: remote messages are dropped or delayed, disk
operations fail, ranks crash at scheduled times.  With a plan attached,
the SIP switches to its resilient protocol (per-message retry with
exponential backoff, sequence-number dedup, write-back retry, restart
from checkpoint) and the run must produce the same numerics as on a
perfect machine -- faults cost simulated time, never correctness.
"""

import numpy as np

from repro.sip import FaultPlan, SIPConfig, run_source

SRC = """
sial fault_demo
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
served SV(M, N)
temp TC(M, N)
scalar e

pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  put C(M, N) = TC(M, N)
  prepare SV(M, N) = TC(M, N)
endpardo M, N
sip_barrier
server_barrier
e = 0.0
pardo M, N
  request SV(M, N)
  e += SV(M, N) * SV(M, N)
endpardo M, N
collective e
endsial fault_demo
"""


def main() -> None:
    rng = np.random.default_rng(7)
    nb = 9
    inputs = {
        "A": rng.standard_normal((nb, nb)),
        "B": rng.standard_normal((nb, nb)),
    }

    def run(faults=None):
        cfg = SIPConfig(
            workers=3,
            io_servers=2,
            segment_size=3,
            inputs={k: v.copy() for k, v in inputs.items()},
            faults=faults,
        )
        return run_source(SRC, cfg, symbolics={"nb": nb})

    base = run()
    print("perfect machine:")
    print(f"  simulated time: {base.elapsed*1e3:.3f} ms")
    print(f"  e = {base.scalar('e'):.12f}")

    plan = FaultPlan(
        seed=42,
        message_drop_rate=0.05,  # 5% of remote messages vanish
        message_delay_rate=0.05,  # 5% take a latency spike
        disk_write_error_rate=1.0,  # and exactly one disk write fails
        max_disk_errors=1,
    )
    res = run(plan)
    print("\nfaulty machine (seed 42):")
    print(f"  simulated time: {res.elapsed*1e3:.3f} ms "
          f"({res.elapsed/base.elapsed:.1f}x the fault-free run)")
    print(f"  e = {res.scalar('e'):.12f}")
    print()
    print(res.fault_report.summary())

    assert abs(res.scalar("e") - base.scalar("e")) < 1e-9
    assert np.array_equal(res.array("C"), base.array("C"))
    assert res.fault_report.all_recovered
    print("\nOK: same numerics, every injected fault retried or recovered.")


if __name__ == "__main__":
    main()
