#!/usr/bin/env python
"""Strong-scaling study with the coarse performance model.

Reproduces the *kind* of study behind the paper's Figs. 2-6 in a few
seconds: one CCSD iteration for luciferin swept from 32 to 4096 cores
on two machine models, plus the Fock-build turnover at extreme core
counts.  (The benchmark suite regenerates each actual figure; this
example shows the API.)
"""

from repro.chem import DIAMOND_NV, LUCIFERIN
from repro.machines import CRAY_XT5, JAGUAR_XT5, SUN_OPTERON_IB
from repro.perfmodel import ccsd_iteration_workload, fock_build_workload, sweep


def main() -> None:
    workload = ccsd_iteration_workload(LUCIFERIN, seg=14)
    print(f"workload: {workload.name}")
    print(f"  total flops      : {workload.total_flops:.3e}")
    print(f"  max parallelism  : {workload.max_parallelism} pardo iterations\n")

    for machine in (SUN_OPTERON_IB, CRAY_XT5):
        print(f"one CCSD iteration on {machine.name}:")
        print(f"  {'procs':>6s} {'time/iter':>12s} {'efficiency':>10s} "
              f"{'wait %':>7s}")
        rows = sweep(workload, machine, [32, 128, 512, 2048, 4096], io_servers=16)
        for row in rows:
            print(f"  {row['procs']:>6d} {row['time']/60:>10.2f}min "
                  f"{row['efficiency']:>10.2f} {row['wait_percent']:>7.1f}")
        print()

    print("Fock build for the diamond nanocrystal (2944 basis functions)")
    print("on jaguar -- scaling saturates near 72k cores (cf. Fig. 6):")
    fock = fock_build_workload(DIAMOND_NV, seg=11)
    rows = sweep(
        fock,
        JAGUAR_XT5,
        [12000, 24000, 48000, 72000, 96000],
        baseline_procs=12000,
        io_servers=64,
    )
    print(f"  {'procs':>7s} {'time':>9s} {'efficiency':>10s}")
    for row in rows:
        print(f"  {row['procs']:>7d} {row['time']:>8.1f}s "
              f"{row['efficiency']:>10.2f}")
    print("\nOK: scaling shapes generated (see benchmarks/ for the "
          "per-figure reproductions).")


if __name__ == "__main__":
    main()
