"""Tests for the high-level public API (repro.api)."""

import numpy as np
import pytest

import repro
from repro import SIPConfig, compile_sial, dry_run, run
from repro.sial import CompiledProgram, SemanticError

SRC = """
sial api_demo
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
scalar total

pardo M, N
  T(M, N) = 2.0
  put D(M, N) = T(M, N)
  total += T(M, N) * T(M, N)
endpardo M, N
collective total
endsial api_demo
"""


def test_compile_returns_program():
    prog = compile_sial(SRC)
    assert isinstance(prog, CompiledProgram)
    assert prog.name == "api_demo"


def test_run_accepts_source_or_compiled():
    cfg = SIPConfig(workers=2, io_servers=1, segment_size=4)
    r1 = run(SRC, cfg, symbolics={"nb": 8})
    r2 = run(compile_sial(SRC), SIPConfig(workers=2, io_servers=1, segment_size=4), symbolics={"nb": 8})
    assert r1.scalar("total") == r2.scalar("total")
    assert np.array_equal(r1.array("D"), r2.array("D"))


def test_run_default_config():
    result = run(SRC, symbolics={"nb": 8})
    assert np.all(result.array("D") == 2.0)
    # total = 4.0 per element over 8x8
    assert result.scalar("total") == pytest.approx(4.0 * 64)


def test_dry_run_without_executing():
    report = dry_run(SRC, SIPConfig(workers=2, segment_size=4), {"nb": 8})
    assert report.feasible
    assert report.array_bytes["D"] == 64 * 8


def test_dry_run_accepts_compiled():
    prog = compile_sial(SRC)
    report = dry_run(prog, symbolics={"nb": 8})
    assert report.feasible


def test_compile_errors_carry_location():
    with pytest.raises(SemanticError, match="undeclared"):
        compile_sial("sial t\npardo Q\nendpardo\nendsial t\n")


def test_package_exports():
    assert hasattr(repro, "run")
    assert hasattr(repro, "SIPConfig")
    assert hasattr(repro, "MACHINES")
    assert repro.__version__


def test_result_surfaces_profile_and_stats():
    result = run(SRC, SIPConfig(workers=3, segment_size=4), symbolics={"nb": 8})
    assert result.elapsed > 0
    assert result.profile.total_busy > 0
    assert "messages_sent" in result.stats
    text = result.profile.report()
    assert "wait fraction" in text
