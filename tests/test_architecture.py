"""Architecture lint: block movement goes through the transfer engine.

The refactor that extracted :mod:`repro.sip.blockio` concentrated every
block-transfer wire message and every pending-cache insertion in one
module.  These tests keep it that way: they AST-walk the source tree
and fail when a module outside the allowlists starts hand-rolling block
movement again (constructing GetBlock/PutBlock/... directly, inserting
pending cache entries, or importing the raw simulated wire layer).

Control-plane traffic (barriers, the master's dole-out protocol, acks)
deliberately stays outside the engine -- only *block* movement is
restricted.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: the block-transfer wire messages; constructing one of these is
#: putting a block movement on the wire
BLOCK_MESSAGES = {
    "GetBlock",
    "RequestBlock",
    "PutBlock",
    "PrepareBlock",
    "BlockReply",
}

#: modules allowed to construct block-transfer messages: the engine
#: itself and the message definitions (dataclass machinery)
MESSAGE_ALLOWLIST = {
    "sip/blockio.py",
    "sip/messages.py",
}

#: modules allowed to create pending cache entries: the engine and the
#: cache that implements them
INSERT_PENDING_ALLOWLIST = {
    "sip/blockio.py",
    "sip/cache.py",
}

#: modules allowed to touch the raw simulated wire layer
#: (``repro.simmpi.comm``): the simulator package itself and the
#: multiprocess transport that mirrors its interface
COMM_ALLOWLIST_PREFIXES = ("simmpi/",)
COMM_ALLOWLIST = {
    "sip/mptransport.py",
}


def repro_modules():
    for path in sorted(SRC.rglob("*.py")):
        yield path.relative_to(SRC).as_posix(), ast.parse(
            path.read_text(), filename=str(path)
        )


def called_name(node: ast.Call):
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def test_block_messages_are_only_constructed_by_the_engine():
    offenders = []
    for rel, tree in repro_modules():
        if rel in MESSAGE_ALLOWLIST:
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and called_name(node) in BLOCK_MESSAGES:
                offenders.append(f"{rel}:{node.lineno} constructs {called_name(node)}")
    assert not offenders, (
        "block-transfer messages must be built by the BlockTransferEngine "
        "(repro/sip/blockio.py), not hand-rolled:\n  " + "\n  ".join(offenders)
    )


def test_pending_cache_entries_are_only_inserted_by_the_engine():
    offenders = []
    for rel, tree in repro_modules():
        if rel in INSERT_PENDING_ALLOWLIST:
            continue
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and called_name(node) == "insert_pending"
            ):
                offenders.append(f"{rel}:{node.lineno}")
    assert not offenders, (
        "cache.insert_pending is the engine's request-table primitive; "
        "call BlockTransferEngine.hint/acquire/ensure_cached instead:\n  "
        + "\n  ".join(offenders)
    )


def test_raw_wire_layer_is_only_imported_by_transports():
    offenders = []
    for rel, tree in repro_modules():
        if rel in COMM_ALLOWLIST or rel.startswith(COMM_ALLOWLIST_PREFIXES):
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.endswith("simmpi.comm") or (
                    module.endswith("simmpi")
                    and any(a.name == "SimComm" for a in node.names)
                ):
                    offenders.append(f"{rel}:{node.lineno} imports {module}")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.endswith("simmpi.comm"):
                        offenders.append(
                            f"{rel}:{node.lineno} imports {alias.name}"
                        )
    assert not offenders, (
        "the raw wire layer (repro.simmpi.comm / SimComm) is a transport "
        "detail; code above the transports talks to CommEndpoint:\n  "
        + "\n  ".join(offenders)
    )


def test_the_allowlists_still_match_reality():
    """A lint whose allowlist names dead files lints nothing."""
    all_rel = {rel for rel, _ in repro_modules()}
    for rel in MESSAGE_ALLOWLIST | INSERT_PENDING_ALLOWLIST | COMM_ALLOWLIST:
        assert rel in all_rel, f"allowlisted module {rel} no longer exists"
