"""Unit tests for the mini Global Arrays toolkit."""

import numpy as np
import pytest

from repro.baselines import GACluster, GAError, GAMemoryError
from repro.machines import LAPTOP, Machine


def run_program(n_ranks, program, preload=None):
    cluster = GACluster(n_ranks, machine=LAPTOP)
    if preload:
        for name, value in preload.items():
            cluster.preload(name, value.shape, value)
    results = cluster.run(program)
    return cluster, results


def test_create_and_roundtrip_put_get():
    def program(env):
        yield from env.create("a", (8, 4))
        if env.rank == 0:
            data = np.arange(8.0).reshape(2, 4)
            yield from env.put("a", (3, 0), (5, 4), data)
        yield from env.sync()
        patch = yield from env.get("a", (3, 0), (5, 4))
        return patch

    _, results = run_program(2, program)
    expected = np.arange(8.0).reshape(2, 4)
    for patch in results:
        assert np.array_equal(patch, expected)


def test_get_spanning_multiple_owners():
    value = np.arange(48.0).reshape(12, 4)

    def program(env):
        patch = yield from env.get("v", (2, 1), (11, 3))
        return patch

    _, results = run_program(3, program, preload={"v": value})
    for patch in results:
        assert np.array_equal(patch, value[2:11, 1:3])


def test_accumulate_is_atomic_across_ranks():
    def program(env):
        yield from env.create("a", (4, 4))
        ones = np.ones((4, 4))
        yield from env.acc("a", (0, 0), (4, 4), ones)
        yield from env.sync()
        patch = yield from env.get("a", (0, 0), (4, 4))
        return patch

    cluster, results = run_program(4, program)
    for patch in results:
        assert np.all(patch == 4.0)
    assert np.all(cluster.read_array("a") == 4.0)


def test_patch_out_of_bounds_rejected():
    value = np.zeros((4, 4))

    def program(env):
        yield from env.get("v", (0, 0), (5, 4))

    with pytest.raises(GAError, match="outside array"):
        run_program(1, program, preload={"v": value})


def test_unknown_array_rejected():
    def program(env):
        yield from env.get("nope", (0, 0), (1, 1))

    with pytest.raises(GAError, match="unknown"):
        run_program(1, program)


def test_sync_waits_for_outstanding_writes():
    # rank 0 puts, everyone syncs, rank 1 must observe the data
    def program(env):
        yield from env.create("a", (4, 2))
        if env.rank == 0:
            yield from env.put("a", (2, 0), (4, 2), np.full((2, 2), 7.0))
        yield from env.sync()
        patch = yield from env.get("a", (2, 0), (4, 2))
        return patch

    _, results = run_program(2, program)
    assert np.all(results[1] == 7.0)


def test_nbget_overlaps_and_matches_blocking_get():
    value = np.arange(64.0).reshape(8, 8)

    def program(env):
        h = env.nbget("v", (0, 0), (4, 8))
        blocking = yield from env.get("v", (4, 0), (8, 8))
        early = yield from h.wait()
        return early, blocking

    _, results = run_program(2, program, preload={"v": value})
    early, blocking = results[0]
    assert np.array_equal(early, value[0:4])
    assert np.array_equal(blocking, value[4:8])


def test_reduce_sum():
    def program(env):
        total = yield from env.reduce_sum(float(env.rank + 1))
        return total

    _, results = run_program(4, program)
    assert results == [10.0, 10.0, 10.0, 10.0]


def test_allocate_local_enforces_budget():
    tiny = Machine(name="tiny", flop_rate=1e9, memory_per_rank=500.0)

    def program(env):
        env.allocate_local((4, 4))  # 128 B fine
        env.allocate_local((8, 8))  # 512 B: over budget
        yield from env.sync()

    cluster = GACluster(2, machine=tiny)
    with pytest.raises(GAMemoryError):
        cluster.run(program)


def test_local_share_counts_against_budget():
    small = Machine(name="small", flop_rate=1e9, memory_per_rank=3000.0)
    value = np.zeros((32, 8))  # 2048 B total, 1024 B/rank share

    def program(env):
        env.allocate_local((16, 16))  # 2048 B + 1024 share > 3000
        yield from env.sync()

    cluster = GACluster(2, machine=small)
    cluster.preload("v", value.shape, value)
    with pytest.raises(GAMemoryError):
        cluster.run(program)


def test_elapsed_time_recorded():
    def program(env):
        yield from env.create("a", (4, 4))
        yield env.compute(1e6)
        yield from env.sync()

    cluster, _ = run_program(2, program)
    assert cluster.elapsed > 0
