"""Tests for the NWChem-style GA MP2 baseline."""

import numpy as np
import pytest

from repro.baselines import GAMemoryError, ga_mp2, nwchem_feasible, nwchem_memory_floor
from repro.chem import CYTOSINE_OH, ao_to_mo, make_integrals, mp2_energy_rhf, rhf
from repro.machines import Machine


@pytest.fixture(scope="module")
def mp2_inputs():
    n, no = 8, 3
    ints = make_integrals(n, seed=42)
    scf = rhf(ints.h, ints.eri, no)
    emo = ao_to_mo(ints.eri, scf.mo_coeff)
    o, v = slice(0, no), slice(no, n)
    return (
        np.ascontiguousarray(emo[o, v, o, v]),
        scf.mo_energy[o],
        scf.mo_energy[v],
        mp2_energy_rhf(emo, scf.mo_energy, no),
    )


def test_ga_mp2_matches_reference(mp2_inputs):
    ovov, eo, ev, ref = mp2_inputs
    res = ga_mp2(ovov, eo, ev, n_ranks=3)
    assert res.energy == pytest.approx(ref, abs=1e-12)


def test_ga_mp2_rank_count_invariance(mp2_inputs):
    ovov, eo, ev, ref = mp2_inputs
    for p in (1, 2, 5):
        res = ga_mp2(ovov, eo, ev, n_ranks=p)
        assert res.energy == pytest.approx(ref, abs=1e-12), p


def test_nbget_variant_same_energy_less_time(mp2_inputs):
    ovov, eo, ev, ref = mp2_inputs
    sync = ga_mp2(ovov, eo, ev, n_ranks=3, use_nbget=False)
    nb = ga_mp2(ovov, eo, ev, n_ranks=3, use_nbget=True)
    assert nb.energy == pytest.approx(sync.energy, abs=1e-13)
    assert nb.elapsed <= sync.elapsed


def test_memory_floor_failure(mp2_inputs):
    ovov, eo, ev, _ = mp2_inputs
    tiny = Machine(name="tiny", flop_rate=1e9, memory_per_rank=4000.0)
    with pytest.raises(GAMemoryError):
        ga_mp2(ovov, eo, ev, n_ranks=2, machine=tiny, memory_floor=16_000.0)


def test_nwchem_memory_floor_independent_of_ranks():
    f = nwchem_memory_floor(156, 34)
    assert f == 5 * 156**2 * 34**2 * 8


def test_nwchem_feasibility_paper_shape():
    """Fig. 7: fails at 1 GB/core for cytosine+OH, runs at 2 GB/core."""
    assert not nwchem_feasible(CYTOSINE_OH, n_ranks=64, memory_per_rank=1.0e9)
    assert nwchem_feasible(CYTOSINE_OH, n_ranks=64, memory_per_rank=2.0e9)
    # more ranks cannot fix the rigid floor
    assert not nwchem_feasible(CYTOSINE_OH, n_ranks=4096, memory_per_rank=1.0e9)
