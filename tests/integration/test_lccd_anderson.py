"""Integration tests for the Anderson-accelerated LCCD SIAL program."""

import numpy as np
import pytest

from repro.chem import (
    ao_to_mo,
    lccd,
    lccd_anderson,
    make_integrals,
    rhf,
    spin_orbital_eri,
)
from repro.programs import run_lccd, run_lccd_anderson
from repro.sip import SIPConfig


def test_sial_matches_numpy_reference():
    out = run_lccd_anderson(iterations=5)
    assert out.error < 1e-12
    assert out.reference < 0


def test_first_sweep_equals_plain_lccd():
    """With one sweep there is no history yet: both programs agree."""
    plain = run_lccd(iterations=1).value
    accel = run_lccd_anderson(iterations=1).value
    assert accel == pytest.approx(plain, abs=1e-13)


def test_acceleration_tightens_convergence():
    """At equal sweep counts, Anderson mixing lands closer to the
    fixed point than plain iteration (the reason the paper's codes
    spend memory on convergence acceleration)."""
    ints = make_integrals(8, seed=42)
    scf = rhf(ints.h, ints.eri, 3)
    eri_so = spin_orbital_eri(ao_to_mo(ints.eri, scf.mo_coeff))
    eps = np.repeat(scf.mo_energy, 2)
    fixed_point = lccd(eps, eri_so, 6, iterations=200, tolerance=1e-14).e_corr
    for sweeps in (4, 6, 8):
        plain = lccd(eps, eri_so, 6, iterations=sweeps).e_corr
        accel = lccd_anderson(eps, eri_so, 6, iterations=sweeps).e_corr
        assert abs(accel - fixed_point) < abs(plain - fixed_point)


def test_worker_count_invariance():
    values = [
        run_lccd_anderson(
            iterations=3,
            config=SIPConfig(workers=w, io_servers=1, segment_size=2),
        ).value
        for w in (1, 3)
    ]
    assert values[0] == pytest.approx(values[1], abs=1e-13)


def test_history_arrays_cost_memory():
    """The accelerated program's dry run shows the extra amplitude
    copies (T2P, U, UP, T2N) -- the Section II storage story."""
    plain = run_lccd(iterations=2)
    accel = run_lccd_anderson(iterations=2)
    assert (
        accel.result.dry_run.distributed_max_bytes
        > plain.result.dry_run.distributed_max_bytes
    )
