"""Integration tests for the extended application set."""

import numpy as np
import pytest

from repro.programs import run_ao2mo, run_uhf_mp2
from repro.sip import SIPConfig


def test_uhf_mp2_matches_reference():
    out = run_uhf_mp2(n_basis=7, n_alpha=3, n_beta=2)
    assert out.reference < 0
    assert out.error < 1e-12


def test_uhf_mp2_channel_decomposition():
    out = run_uhf_mp2(n_basis=7, n_alpha=3, n_beta=2)
    scalars = out.result.scalars
    total = scalars["eaa"] + scalars["ebb"] + scalars["eab"]
    assert total == pytest.approx(scalars["emp2"], abs=1e-14)
    # every channel contributes correlation
    assert scalars["eaa"] < 0
    assert scalars["ebb"] < 0
    assert scalars["eab"] < 0


def test_uhf_mp2_closed_shell_limit():
    """With n_alpha == n_beta on a closed-shell system, UHF MP2 must
    reproduce the RHF MP2 energy."""
    from repro.programs import run_mp2

    uhf_out = run_uhf_mp2(n_basis=8, n_alpha=3, n_beta=3, seed=42)
    rhf_out = run_mp2(n_basis=8, n_occ=3, seed=42)
    assert uhf_out.value == pytest.approx(rhf_out.value, abs=1e-9)


def test_uhf_mp2_worker_invariance():
    values = [
        run_uhf_mp2(
            config=SIPConfig(workers=w, io_servers=1, segment_size=2)
        ).value
        for w in (1, 4)
    ]
    assert values[0] == pytest.approx(values[1], abs=1e-13)


def test_ao2mo_matches_reference():
    out = run_ao2mo(n_basis=5)
    assert out.error < 1e-12


def test_ao2mo_preserves_mo_symmetry():
    out = run_ao2mo(n_basis=5)
    vmo = np.asarray(out.value)
    assert np.allclose(vmo, vmo.transpose(1, 0, 2, 3), atol=1e-10)
    assert np.allclose(vmo, vmo.transpose(2, 3, 0, 1), atol=1e-10)


def test_ao2mo_segment_invariance():
    values = [
        np.asarray(
            run_ao2mo(
                n_basis=6,
                config=SIPConfig(workers=2, io_servers=1, segment_size=seg),
            ).value
        )
        for seg in (1, 2, 4)
    ]
    assert np.allclose(values[0], values[1])
    assert np.allclose(values[0], values[2])
