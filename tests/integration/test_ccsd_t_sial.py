"""Integration tests for the (T) triples correction in SIAL.

Completes the method suite: the Fig.-5 workload's energy expression,
built on the Section IV-E subindex machinery (6-dimensional T3 blocks
over subindexed virtual dimensions, operands read as slices).
"""

import numpy as np
import pytest

from repro.programs import run_ccsd_t
from repro.sip import SIPConfig


def test_matches_numpy_ccsd_t():
    out = run_ccsd_t(n_basis=4, n_occ=2, sweeps=2)
    assert out.error < 1e-18
    assert out.reference < 0


def test_matches_on_more_converged_amplitudes():
    out = run_ccsd_t(n_basis=4, n_occ=2, sweeps=6)
    assert out.error < 1e-18


def test_worker_invariance():
    values = [
        run_ccsd_t(
            config=SIPConfig(
                workers=w,
                io_servers=1,
                segment_size=2,
                subsegments_per_segment=2,
            )
        ).value
        for w in (1, 4)
    ]
    assert values[0] == pytest.approx(values[1], abs=1e-18)


def test_subsegment_invariance():
    values = [
        run_ccsd_t(
            config=SIPConfig(
                workers=2,
                io_servers=1,
                segment_size=2,
                subsegments_per_segment=sub,
            )
        ).value
        for sub in (1, 2)
    ]
    assert values[0] == pytest.approx(values[1], abs=1e-18)


def test_t3_blocks_stay_below_seg6():
    """The subindex design keeps T3 working blocks below seg^6."""
    cfg = SIPConfig(
        workers=2, io_servers=1, segment_size=4, subsegments_per_segment=4
    )
    out = run_ccsd_t(n_basis=4, n_occ=2, config=cfg)
    assert out.error < 1e-18
    seg6 = 4**6 * 8
    # pool peak includes T3C+T3D+ONES (3 sub-blocks) plus owned inputs,
    # all far below even one full seg^6 block
    assert out.result.stats["pool_peak_bytes"] < seg6
