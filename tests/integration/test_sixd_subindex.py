"""Section IV-E: six-dimensional intermediates via subindices.

The paper's motivating case for subindices: contracting A(a,b,c,k) with
B(k,l,m,n) yields a 6-dimensional C whose full seg^6 blocks would be
infeasible; declaring two of C's dimensions with subindices shrinks its
blocks while the operands keep their efficient full-segment size and
are accessed as slices.
"""

import numpy as np
import pytest

from repro.programs.library import SIXD_SUBINDEX
from repro.sip import SIPConfig, run_source


def run(nb=4, seg=2, sub=2, workers=3, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((nb,) * 4)
    b = rng.standard_normal((nb,) * 4)
    cfg = SIPConfig(
        workers=workers,
        io_servers=1,
        segment_size=seg,
        subsegments_per_segment=sub,
        inputs={"DA": a, "DB": b},
    )
    res = run_source(SIXD_SUBINDEX, cfg, {"nb": nb})
    return res, np.einsum("abck,klmn->abclmn", a, b)


def test_matches_einsum():
    res, ref = run()
    assert np.allclose(res.array("DC"), ref, atol=1e-12)


def test_subsegment_count_invariance():
    for sub in (1, 2):
        res, ref = run(sub=sub)
        assert np.allclose(res.array("DC"), ref, atol=1e-12), sub


def test_ragged_segments():
    res, ref = run(nb=5, seg=2, sub=2)
    assert np.allclose(res.array("DC"), ref, atol=1e-12)


def test_subindex_blocks_are_smaller_than_seg6():
    """The point of the exercise: C's blocks are seg^4 x sub^2, not
    seg^6, so per-worker peak memory stays at full-block scale."""
    res, _ = run(nb=4, seg=4, sub=4)  # one segment per dim, 4 subsegments
    seg6_block = 4**6 * 8
    # the pool never held a seg^6 block
    assert res.stats["pool_peak_bytes"] < seg6_block
