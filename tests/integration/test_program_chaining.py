"""Chaining SIAL programs through the external store.

The paper (Section IV-C): blocks_to_list / list_to_blocks "is used to
pass data between different SIAL programs".  Here the full ACES-style
pipeline runs as two separate SIAL programs: the AO->MO transform
serializes its result, host glue slices the OVOV block out of the
store, and the MP2 program consumes it -- final energy equal to the
direct numpy evaluation.
"""

import numpy as np
import pytest

from repro.chem import ao_to_mo, make_integrals, mp2_energy_rhf, rhf
from repro.programs import library, supers
from repro.sial import compile_source
from repro.sip import SIPConfig, run_source
from repro.sip.blocks import ResolvedIndexTable
from repro.sip.checkpoint import store_to_array

N_BASIS, N_OCC, SEED = 6, 2, 3

TRANSFORM_AND_DUMP = library.AO2MO_TRANSFORM.replace(
    "endsial ao2mo_transform",
    "sip_barrier\nblocks_to_list VMO\nendsial ao2mo_transform",
)


def test_transform_then_mp2_through_the_store():
    ints = make_integrals(N_BASIS, seed=SEED)
    scf = rhf(ints.h, ints.eri, N_OCC)
    assert scf.converged

    # program 1: AO->MO transform, result serialized to the store
    store: dict = {}
    cfg1 = SIPConfig(
        workers=3,
        io_servers=1,
        segment_size=2,
        inputs={"C": scf.mo_coeff},
        integral_source=ints.eri_block,
        external_store=store,
    )
    run_source(TRANSFORM_AND_DUMP, cfg1, symbolics={"nb": N_BASIS})
    assert "vmo" in store

    # host glue: assemble the MO integrals and slice the OVOV block
    prog1 = compile_source(TRANSFORM_AND_DUMP)
    table1 = ResolvedIndexTable(prog1, {"nb": N_BASIS}, segment_size=2)
    vmo = store_to_array(store, prog1, table1, "VMO")
    o, v = slice(0, N_OCC), slice(N_OCC, N_BASIS)
    ovov = np.ascontiguousarray(vmo[o, v, o, v])

    # program 2: MP2 energy on the transformed integrals
    cfg2 = SIPConfig(
        workers=2,
        io_servers=1,
        segment_size=2,
        inputs={"V": ovov},
        superinstructions={
            "mp2_denominator": supers.mp2_denominator(
                scf.mo_energy[o], scf.mo_energy[v]
            )
        },
    )
    result = run_source(
        library.MP2_ENERGY,
        cfg2,
        symbolics={"no": N_OCC, "nv": N_BASIS - N_OCC},
    )

    reference = mp2_energy_rhf(
        ao_to_mo(ints.eri, scf.mo_coeff), scf.mo_energy, N_OCC
    )
    assert result.scalar("emp2") == pytest.approx(reference, abs=1e-11)
