"""Medium-scale stress tests: many ranks, many blocks, model mode."""

import pytest

from repro.machines import CRAY_XT5
from repro.sip import SIPConfig, run_source

MATMUL = """
sial stress_matmul
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
temp TC(M, N)

pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  put C(M, N) = TC(M, N)
endpardo M, N
endsial stress_matmul
"""


def run(workers, nb=128, seg=8):
    cfg = SIPConfig(
        workers=workers,
        io_servers=2,
        segment_size=seg,
        backend="model",
        machine=CRAY_XT5,
        inputs={"A": None, "B": None},
    )
    return run_source(MATMUL, cfg, {"nb": nb})


def test_sixty_four_workers_complete_and_scale():
    """64 simulated ranks: completes, scales, stays deterministic."""
    res8 = run(8)
    res64 = run(64)
    # more workers help, though sub-linearly here: fewer workers enjoy
    # much more block-cache reuse (each holds more of A's rows)
    assert res64.elapsed < res8.elapsed
    # every block computed exactly once: pardo covered the space
    assert res64.profile.pardo_totals()[0].iterations == 16 * 16
    # determinism at scale
    assert run(64).elapsed == res64.elapsed


def test_thousands_of_blocks_through_tiny_cache():
    """4096 pardo iterations with a small cache: thrash-but-correct."""
    cfg = SIPConfig(
        workers=16,
        io_servers=1,
        segment_size=2,
        backend="model",
        machine=CRAY_XT5,
        cache_blocks=8,
        prefetch_depth=4,
        inputs={"A": None, "B": None},
    )
    res = run_source(MATMUL, cfg, {"nb": 64})
    assert res.profile.pardo_totals()[0].iterations == 32 * 32
    assert res.stats["cache_evictions"] > 0  # the cache really was tight
