"""Integration tests: full spin-orbital CCSD written in SIAL.

The flagship correctness result of the reproduction: the paper's
headline method, expressed entirely in the block language (every
Stanton intermediate a pardo phase, O(v^4) quantities on disk-backed
served arrays, denominators as user super instructions), reproduces
the numpy CCSD reference to floating-point accuracy.
"""

import numpy as np
import pytest

from repro.chem import (
    ao_to_mo,
    ccsd,
    make_integrals,
    mp2_energy_rhf,
    rhf,
    spin_orbital_eri,
)
from repro.programs import run_ccsd
from repro.sip import SIPConfig


def test_two_sweeps_match_numpy():
    out = run_ccsd(n_basis=5, n_occ=2, iterations=2)
    assert out.error < 1e-13
    assert out.reference < 0


def test_four_sweeps_match_numpy():
    out = run_ccsd(n_basis=5, n_occ=2, iterations=4)
    assert out.error < 1e-13


def test_singles_contribute():
    """By sweep 3 the T1 amplitudes are non-zero: the SIAL energy must
    include the 1/2 <ij||ab> t1 t1 term (scalars e1 != 0)."""
    out = run_ccsd(n_basis=5, n_occ=2, iterations=3)
    assert out.result.scalars["e1"] != 0.0
    assert out.error < 1e-13


def test_energy_approaches_converged_ccsd():
    ints = make_integrals(5, seed=42)
    scf = rhf(ints.h, ints.eri, 2)
    eri_so = spin_orbital_eri(ao_to_mo(ints.eri, scf.mo_coeff))
    eps = np.repeat(scf.mo_energy, 2)
    converged = ccsd(eps, eri_so, 4, tolerance=1e-12).e_corr
    e1 = run_ccsd(iterations=1).value
    e4 = run_ccsd(iterations=4).value
    assert abs(e4 - converged) < abs(e1 - converged)
    assert abs(e4 - converged) < 1e-6


def test_first_sweep_energy_below_mp2():
    """After one CCSD sweep the correlation energy moves past MP2
    (which is the zeroth entry of the iteration history)."""
    ints = make_integrals(5, seed=42)
    scf = rhf(ints.h, ints.eri, 2)
    e_mp2 = mp2_energy_rhf(ao_to_mo(ints.eri, scf.mo_coeff), scf.mo_energy, 2)
    out = run_ccsd(iterations=1)
    assert out.error < 1e-13
    assert out.value != pytest.approx(e_mp2, abs=1e-12)


def test_worker_and_segment_invariance():
    base = run_ccsd(
        iterations=2, config=SIPConfig(workers=1, io_servers=1, segment_size=3)
    ).value
    for workers, seg in ((3, 3), (2, 4)):
        value = run_ccsd(
            iterations=2,
            config=SIPConfig(workers=workers, io_servers=2, segment_size=seg),
        ).value
        assert value == pytest.approx(base, abs=1e-13), (workers, seg)


def test_wabef_intermediate_lives_on_disk():
    out = run_ccsd(iterations=2)
    # the W_abef prepare traffic reaches the I/O servers' disks
    assert out.result.stats["disk_writes"] > 0
    # and is requested back during the T2 update
    served_reads = (
        out.result.stats["server_cache_hits"]
        + out.result.stats["server_cache_misses"]
    )
    assert served_reads > 0
