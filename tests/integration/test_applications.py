"""Integration tests: full SIAL applications vs numpy references.

These are the repository's headline correctness results: the paper's
contraction example, an MP2 energy, an iterative LCCD with disk-backed
integrals, and a Fock build all execute on the simulated SIP and agree
with direct numpy evaluation to floating-point accuracy.
"""

import numpy as np
import pytest

from repro.machines import BLUEGENE_P, CRAY_XT5
from repro.programs import (
    run_checkpoint_demo,
    run_fock_build,
    run_lccd,
    run_mp2,
    run_paper_contraction,
)
from repro.sip import SIPConfig


def test_paper_contraction_example():
    out = run_paper_contraction(n_basis=6, n_occ=4)
    assert out.error < 1e-12


def test_paper_contraction_different_worker_counts_agree():
    values = []
    for w in (1, 2, 4):
        cfg = SIPConfig(workers=w, io_servers=1, segment_size=2)
        values.append(run_paper_contraction(config=cfg).value)
    assert np.allclose(values[0], values[1])
    assert np.allclose(values[0], values[2])


def test_mp2_energy_matches_reference():
    out = run_mp2(n_basis=8, n_occ=3)
    assert out.reference < 0
    assert out.error < 1e-12


def test_mp2_energy_various_sizes():
    for n_basis, n_occ, seed in [(6, 2, 1), (7, 3, 2), (9, 4, 3)]:
        out = run_mp2(n_basis=n_basis, n_occ=n_occ, seed=seed)
        assert out.error < 1e-11, (n_basis, n_occ)


def test_mp2_segment_size_invariance():
    """The paper's central tuning claim: segment size never changes results."""
    values = []
    for seg in (1, 2, 3, 5):
        cfg = SIPConfig(workers=2, io_servers=1, segment_size=seg)
        values.append(run_mp2(n_basis=8, n_occ=3, config=cfg).value)
    assert max(values) - min(values) < 1e-12


def test_lccd_energy_matches_reference():
    out = run_lccd(n_basis=6, n_occ=2, iterations=4)
    assert out.reference < 0
    assert out.error < 1e-12


def test_lccd_more_iterations_approach_convergence():
    e4 = run_lccd(iterations=4).value
    e8 = run_lccd(iterations=8).value
    e9 = run_lccd(iterations=9).value
    assert abs(e9 - e8) < abs(e8 - e4)


def test_lccd_uses_served_arrays_and_disk():
    out = run_lccd(iterations=2)
    assert out.result.stats["disk_writes"] == 0  # VVVV preloaded, never prepared
    # requests served from the I/O servers (cache or disk)
    served_traffic = (
        out.result.stats["server_cache_hits"]
        + out.result.stats["server_cache_misses"]
    )
    assert served_traffic > 0


def test_lccd_worker_count_invariance():
    values = [
        run_lccd(
            iterations=3,
            config=SIPConfig(workers=w, io_servers=2, segment_size=2),
        ).value
        for w in (1, 3)
    ]
    assert values[0] == pytest.approx(values[1], abs=1e-13)


def test_fock_build_matches_reference():
    out = run_fock_build(n_basis=8, n_occ=3)
    assert out.error < 1e-12


def test_fock_build_on_other_machines_same_answer():
    ref = run_fock_build().value
    for machine in (CRAY_XT5, BLUEGENE_P):
        cfg = SIPConfig(workers=3, io_servers=1, segment_size=2, machine=machine)
        out = run_fock_build(config=cfg)
        assert np.allclose(out.value, ref)


def test_fock_build_machines_differ_in_time_not_results():
    cfg_a = SIPConfig(workers=3, io_servers=1, segment_size=2, machine=CRAY_XT5)
    cfg_b = SIPConfig(workers=3, io_servers=1, segment_size=2, machine=BLUEGENE_P)
    out_a = run_fock_build(config=cfg_a)
    out_b = run_fock_build(config=cfg_b)
    assert out_a.error < 1e-12 and out_b.error < 1e-12
    # BG/P is slower per core: simulated time must reflect that
    assert out_b.result.elapsed > out_a.result.elapsed


def test_checkpoint_restart_produces_same_output():
    first, second = run_checkpoint_demo()
    assert first.error == 0.0
    assert second.error == 0.0
    # restart skipped the expensive fill phase
    assert second.result.elapsed < first.result.elapsed


def test_wait_fraction_in_plausible_band():
    """Fig. 2 reports 8.4-13.4% wait; our runs should be in a sane band."""
    out = run_paper_contraction(
        config=SIPConfig(workers=4, io_servers=1, segment_size=2)
    )
    frac = out.result.profile.wait_fraction
    assert 0.0 <= frac < 0.8
