"""Simulator-vs-real differential conformance suite.

The discrete-event simulator is the reference oracle; the multiprocess
backend (``execution="mp"``) runs the same programs on real OS
processes connected by pipes and shared memory, where message arrival
order is genuinely racy.  Every bundled SIAL program runs on both
backends at 1, 2 and 4 workers and must produce **bitwise identical**
scalars and arrays -- the canonical reduction orders (collective
ledger, '+=' accumulation keys) are what make that possible, and this
suite is what holds them to it.

Beyond results, each pairing checks the invariant slice of the stats
(total pardo iterations; traffic counters are legitimately different
because the mp barrier is message-based and arrival races change cache
behavior), that the sanitizer stays clean across process boundaries,
and that every shared-memory segment the run created was unlinked.
"""

import numpy as np
import pytest

from repro.programs import (
    run_ao2mo,
    run_ccsd,
    run_ccsd_t,
    run_checkpoint_demo,
    run_fock_build,
    run_lccd,
    run_lccd_anderson,
    run_mp2,
    run_paper_contraction,
    run_uhf_mp2,
)
from repro.sip import SIPConfig, SIPError
from repro.sip.runner import run_source

WORKER_COUNTS = (1, 2, 4)

DRIVERS = {
    "paper_contraction": lambda cfg: run_paper_contraction(
        n_basis=4, n_occ=2, config=cfg
    ),
    "mp2_energy": lambda cfg: run_mp2(n_basis=6, n_occ=2, config=cfg),
    "uhf_mp2_energy": lambda cfg: run_uhf_mp2(
        n_basis=5, n_alpha=2, n_beta=1, config=cfg
    ),
    "ao2mo_transform": lambda cfg: run_ao2mo(n_basis=4, config=cfg),
    "lccd_iteration": lambda cfg: run_lccd(
        n_basis=4, n_occ=1, iterations=2, config=cfg
    ),
    "lccd_anderson": lambda cfg: run_lccd_anderson(
        n_basis=4, n_occ=1, iterations=2, config=cfg
    ),
    "ccsd": lambda cfg: run_ccsd(n_basis=4, n_occ=1, iterations=2, config=cfg),
    "ccsd_t": lambda cfg: run_ccsd_t(n_basis=3, n_occ=1, sweeps=1, config=cfg),
    "fock_build": lambda cfg: run_fock_build(n_basis=5, n_occ=2, config=cfg),
}

#: the longest-running programs; their off-center worker counts are
#: deselected from tier-1 (w=2 still runs everywhere)
HEAVY = {"ccsd", "ccsd_t", "lccd_iteration", "lccd_anderson"}


def make_config(workers: int, execution: str, **kw) -> SIPConfig:
    defaults = dict(
        workers=workers,
        io_servers=1,
        segment_size=2,
        sanitize=True,
        execution=execution,
    )
    if execution == "mp":
        # low threshold so small test blocks still exercise the
        # shared-memory path, not just inline pickling
        defaults["mp_payload_shm_min"] = 256
    defaults.update(kw)
    return SIPConfig(**defaults)


def persistent_arrays(result) -> list[str]:
    """Names of arrays whose final contents a run can be asked for."""
    program = result._rt.program
    return [
        desc.name
        for desc in program.array_table
        if desc.kind in ("static", "distributed", "served")
    ]


def assert_bitwise_equal_results(sim, mp) -> None:
    """Scalars and every gatherable array must match bit for bit."""
    assert mp.result.scalars.keys() == sim.result.scalars.keys()
    for name, sim_value in sim.result.scalars.items():
        mp_value = mp.result.scalars[name]
        assert mp_value == sim_value, (
            f"scalar {name}: sim {sim_value!r} != mp {mp_value!r}"
        )
    for array in persistent_arrays(sim.result):
        try:
            expected = sim.result.array(array)
        except SIPError:
            continue  # declared but never materialized on this run
        actual = mp.result.array(array)
        assert np.array_equal(expected, actual), (
            f"array {array!r} differs between backends"
        )


def _params():
    for name in sorted(DRIVERS):
        for workers in WORKER_COUNTS:
            marks = [pytest.mark.mp]
            if name in HEAVY and workers != 2:
                marks.append(pytest.mark.slow)
            yield pytest.param(name, workers, marks=marks)


@pytest.mark.parametrize("name,workers", _params())
def test_mp_backend_is_bitwise_identical_to_simulator(name, workers):
    driver = DRIVERS[name]
    sim = driver(make_config(workers, "sim"))
    mp = driver(make_config(workers, "mp"))

    # both must also agree with the independent numpy reference
    assert sim.error < 1e-10
    assert mp.error < 1e-10
    assert_bitwise_equal_results(sim, mp)

    # invariants that hold regardless of message races
    assert sim.result.stats["execution"] == "sim"
    assert mp.result.stats["execution"] == "mp"
    assert (
        mp.result.stats["sched_iterations"]
        == sim.result.stats["sched_iterations"]
    )
    assert mp.result.stats["mp_processes"] == make_config(workers, "mp").world_size
    assert mp.result.stats["wallclock_seconds"] > 0.0

    # runtime sanitizer must stay clean across process boundaries
    assert sim.result.sanitizer_report.ok
    assert mp.result.sanitizer_report.ok

    # shared-memory hygiene: every one-shot segment created was
    # unlinked in-run, the parent swept exactly the slabs the ranks
    # created (they live for the whole run by design), and every
    # arena slot lease was accounted for before results shipped
    assert (
        mp.result.stats["mp_shm_segments"] == mp.result.stats["mp_shm_unlinked"]
    )
    assert mp.result.stats["mp_shm_leaked"] == 0
    assert (
        mp.result.stats["mp_arena_slabs_swept"] == mp.result.stats["arena_slabs"]
    )
    assert mp.result.stats["arena_refs_leaked"] == 0


@pytest.mark.mp
@pytest.mark.parametrize(
    "variant,overrides",
    [
        ("arena_off", {"mp_arena": False}),
        ("batching_off", {"mp_batch_max_msgs": 1}),
        ("tiny_arena", {"mp_arena_slab_bytes": 4096, "mp_arena_max_bytes": 8192}),
    ],
)
def test_transport_variants_stay_bitwise_identical(variant, overrides):
    """Arena and batching are pure transport optimizations: switching
    them off (or starving the arena into its one-shot overflow path)
    must not move a single bit of the results."""
    driver = DRIVERS["mp2_energy"]
    sim = driver(make_config(2, "sim"))
    mp = driver(make_config(2, "mp", **overrides))
    assert mp.error < 1e-10
    assert_bitwise_equal_results(sim, mp)
    assert mp.result.stats["mp_shm_leaked"] == 0
    assert mp.result.stats["arena_refs_leaked"] == 0
    if variant == "arena_off":
        assert mp.result.stats["arena_slabs"] == 0
        assert mp.result.stats["arena_hits"] == 0
    if variant == "batching_off":
        # one frame per message: piggybacking disabled end to end
        assert mp.result.stats["batch_msgs_per_write"] == 1.0


@pytest.mark.mp
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_checkpoint_chaining_matches_simulator(workers):
    """External-store writes merge back so run chaining works on mp."""

    def factory(execution):
        def make():
            return make_config(workers, execution, sanitize=False)

        return make

    sim_first, sim_second = run_checkpoint_demo(
        n_basis=4, config_factory=factory("sim")
    )
    mp_first, mp_second = run_checkpoint_demo(
        n_basis=4, config_factory=factory("mp")
    )
    for sim_out, mp_out in ((sim_first, mp_first), (sim_second, mp_second)):
        assert np.array_equal(
            np.asarray(sim_out.value), np.asarray(mp_out.value)
        )


@pytest.mark.mp
def test_worker_failure_is_surfaced_with_rank_and_traceback():
    """A rank raising mid-run must become one SIPError in the parent."""

    def explode(call):
        raise RuntimeError("superinstruction deliberately exploding")

    source = """sial t
symbolic nb
aoindex M = 1, nb
static S(M, M)
temp T(M, M)
pardo M
  T(M, M) = 1.0
  execute explode T(M, M)
endpardo
endsial t
"""
    cfg = make_config(
        2, "mp", sanitize=False, superinstructions={"explode": explode}
    )
    with pytest.raises(SIPError) as err:
        run_source(source, cfg, {"nb": 4})
    message = str(err.value)
    assert "mp backend" in message
    assert "deliberately exploding" in message


@pytest.mark.mp
def test_worker_hard_crash_is_detected():
    """A rank dying without reporting must not hang the parent."""
    import os

    def die(call):
        os._exit(3)

    source = """sial t
symbolic nb
aoindex M = 1, nb
temp T(M, M)
pardo M
  T(M, M) = 1.0
  execute die T(M, M)
endpardo
endsial t
"""
    cfg = make_config(2, "mp", sanitize=False, superinstructions={"die": die})
    with pytest.raises(SIPError, match="died|failed|gone|disconnected"):
        run_source(source, cfg, {"nb": 4})


@pytest.mark.mp
def test_mp_rejects_fault_injection_and_resilience():
    from repro.sip import FaultPlan

    with pytest.raises(ValueError, match="virtual time"):
        SIPConfig(execution="mp", faults=FaultPlan(seed=1))
    with pytest.raises(ValueError, match="virtual time"):
        SIPConfig(execution="mp", resilient=True)


@pytest.mark.mp
def test_unknown_execution_backend_rejected():
    with pytest.raises(ValueError, match="unknown execution backend"):
        SIPConfig(execution="threads")


COALESCE_SRC = """sial coalesce
symbolic nb
symbolic nl
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nl
distributed D(M, N)
temp T(M, N)
temp S(M, N)
pardo M, N
  T(M, N) = 1.0
  put D(M, N) = T(M, N)
endpardo M, N
sip_barrier
pardo L
  do M
    do N
      get D(M, N)
      S(M, N) = D(M, N) * 2.0
    enddo N
  enddo M
endpardo L
sip_barrier
endsial coalesce
"""


@pytest.mark.mp
@pytest.mark.parametrize("execution", ["sim", "mp"])
def test_duplicate_block_requests_coalesce_on_both_backends(execution):
    """Two pardo iterations getting the same block issue one wire message.

    D is a single block (the segment spans the whole index range) and
    every ``pardo L`` iteration demands it, so the transfer engine's
    request table must fold all the duplicate fetches onto the one
    in-flight GetBlock -- on the simulator and on real processes alike.
    """
    cfg = make_config(2, execution, segment_size=4)
    res = run_source(COALESCE_SRC, cfg, symbolics={"nb": 4, "nl": 12})
    assert res.stats["blockio_issued_gets"] == 1
    assert res.stats["blockio_replies"] == 1
    assert res.stats["blockio_coalesced"] > 0
    assert res.sanitizer_report.ok


@pytest.mark.mp
@pytest.mark.parametrize("execution", ["sim", "mp"])
def test_ccsd_coalesces_on_both_backends(execution):
    """CCSD re-gets amplitude blocks across pardo iterations; the
    engine must report coalesced duplicates on both backends."""
    out = DRIVERS["ccsd"](make_config(2, execution))
    stats = out.result.stats
    assert stats["blockio_coalesced"] > 0
    assert stats["blockio_issued_gets"] > 0
    assert stats["blockio_issued_requests"] > 0
