"""Differential test harness: every bundled SIAL program, three ways.

Each program in the library runs on the serial reference configuration
(one worker) and on the simulated parallel SIP with 2 and 4 workers,
always with the runtime block-access sanitizer enabled.  The results
must agree with each other and with the numpy reference, and the
sanitizer must observe zero conflicting accesses -- the paper's
determinism claim (Section IV-C), checked program by program.
"""

import numpy as np
import pytest

from repro.programs import (
    run_ao2mo,
    run_ccsd,
    run_ccsd_t,
    run_checkpoint_demo,
    run_fock_build,
    run_lccd,
    run_lccd_anderson,
    run_mp2,
    run_paper_contraction,
    run_uhf_mp2,
)
from repro.sip import SIPConfig

WORKER_COUNTS = (1, 2, 4)
TOLERANCE = 1e-10

DRIVERS = {
    "paper_contraction": lambda cfg: run_paper_contraction(
        n_basis=4, n_occ=2, config=cfg
    ),
    "mp2_energy": lambda cfg: run_mp2(n_basis=6, n_occ=2, config=cfg),
    "uhf_mp2_energy": lambda cfg: run_uhf_mp2(
        n_basis=5, n_alpha=2, n_beta=1, config=cfg
    ),
    "ao2mo_transform": lambda cfg: run_ao2mo(n_basis=4, config=cfg),
    "lccd_iteration": lambda cfg: run_lccd(
        n_basis=4, n_occ=1, iterations=2, config=cfg
    ),
    "lccd_anderson": lambda cfg: run_lccd_anderson(
        n_basis=4, n_occ=1, iterations=2, config=cfg
    ),
    "ccsd": lambda cfg: run_ccsd(n_basis=4, n_occ=1, iterations=2, config=cfg),
    "ccsd_t": lambda cfg: run_ccsd_t(n_basis=3, n_occ=1, sweeps=1, config=cfg),
    "fock_build": lambda cfg: run_fock_build(n_basis=5, n_occ=2, config=cfg),
}


def sanitized_config(workers):
    return SIPConfig(
        workers=workers, io_servers=1, segment_size=2, sanitize=True
    )


@pytest.mark.parametrize("name", sorted(DRIVERS))
def test_serial_and_parallel_agree_with_zero_conflicts(name):
    driver = DRIVERS[name]
    values = {}
    for workers in WORKER_COUNTS:
        out = driver(sanitized_config(workers))
        # every configuration reproduces the numpy reference
        assert out.error < TOLERANCE, (name, workers, out.error)
        report = out.result.sanitizer_report
        assert report is not None
        assert report.ok, (name, workers, report.render())
        assert report.accesses_recorded > 0, (name, workers)
        values[workers] = np.asarray(out.value)
    # serial reference vs parallel runs: identical to tight tolerance
    serial = values[WORKER_COUNTS[0]]
    for workers in WORKER_COUNTS[1:]:
        diff = float(np.max(np.abs(values[workers] - serial)))
        assert diff < TOLERANCE, (name, workers, diff)


def test_checkpoint_demo_differential():
    for workers in WORKER_COUNTS:
        first, second = run_checkpoint_demo(
            n_basis=4, config_factory=lambda w=workers: sanitized_config(w)
        )
        for out in (first, second):
            assert out.error < TOLERANCE, (workers, out.error)
            report = out.result.sanitizer_report
            assert report is not None and report.ok, (workers, report.render())
