"""Property-based end-to-end tests of the whole stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sip import SIPConfig, run_source

MATMUL = """
sial prop_matmul
symbolic nm
symbolic nn
symbolic nk
aoindex M = 1, nm
aoindex N = 1, nn
aoindex K = 1, nk
distributed A(M, K)
distributed B(K, N)
distributed C(M, N)
temp TC(M, N)

pardo M, N
  TC(M, N) = 0.0
  do K
    get A(M, K)
    get B(K, N)
    TC(M, N) += A(M, K) * B(K, N)
  enddo K
  put C(M, N) = TC(M, N)
endpardo M, N
endsial prop_matmul
"""


@given(
    nm=st.integers(min_value=1, max_value=9),
    nn=st.integers(min_value=1, max_value=9),
    nk=st.integers(min_value=1, max_value=9),
    seg=st.integers(min_value=1, max_value=5),
    workers=st.integers(min_value=1, max_value=5),
    prefetch=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_distributed_matmul_equals_numpy(nm, nn, nk, seg, workers, prefetch, seed):
    """Any shape, any (ragged) segmentation, any worker count, any
    prefetch depth: the SIAL result equals the numpy product."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((nm, nk))
    b = rng.standard_normal((nk, nn))
    cfg = SIPConfig(
        workers=workers,
        io_servers=1,
        segment_size=seg,
        prefetch_depth=prefetch,
        inputs={"A": a, "B": b},
    )
    res = run_source(MATMUL, cfg, symbolics={"nm": nm, "nn": nn, "nk": nk})
    assert np.allclose(res.array("C"), a @ b, atol=1e-10)
    # the dry run's estimate bounds the observed pool peak
    assert res.stats["pool_peak_bytes"] <= res.dry_run.per_worker_bytes


ACCUMULATE = """
sial prop_accumulate
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)

pardo M, N
  T(M, N) = 1.0
  put D(M, N) += T(M, N)
endpardo M, N
sip_barrier
pardo N, M
  T(M, N) = 2.0
  put D(M, N) += T(M, N)
endpardo N, M
endsial prop_accumulate
"""


@given(
    nb=st.integers(min_value=1, max_value=10),
    seg=st.integers(min_value=1, max_value=4),
    workers=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=20, deadline=None)
def test_accumulates_order_independent(nb, seg, workers):
    """+= puts from different pardos/workers always sum to the same
    total, regardless of distribution or timing."""
    cfg = SIPConfig(workers=workers, io_servers=1, segment_size=seg)
    res = run_source(ACCUMULATE, cfg, symbolics={"nb": nb})
    assert np.all(res.array("D") == 3.0)


SERVED_ROUNDTRIP = """
sial prop_served
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
served SV(M, N)
distributed OUT(M, N)
temp T(M, N)

pardo M, N
  get OUT(M, N)
  T(M, N) = OUT(M, N)
  prepare SV(M, N) = T(M, N)
endpardo M, N
server_barrier
pardo M, N
  request SV(M, N)
  T(M, N) = SV(M, N)
  put OUT(M, N) = T(M, N)
endpardo M, N
endsial prop_served
"""


@given(
    nb=st.integers(min_value=1, max_value=8),
    seg=st.integers(min_value=1, max_value=4),
    servers=st.integers(min_value=1, max_value=3),
    cache=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=20, deadline=None)
def test_served_array_roundtrip_identity(nb, seg, servers, cache, seed):
    """prepare-then-request through any number of I/O servers and any
    cache pressure is the identity on data.

    The OUT array is preloaded, copied through the served array, and
    read back; conflicting accesses are separated by barriers via the
    program structure (distinct pardos per epoch for OUT writes).
    """
    rng = np.random.default_rng(seed)
    value = rng.standard_normal((nb, nb))
    cfg = SIPConfig(
        workers=2,
        io_servers=servers,
        segment_size=seg,
        server_cache_blocks=cache,
        inputs={"OUT": value},
        validate_barriers=False,  # OUT is rewritten with equal values
    )
    res = run_source(SERVED_ROUNDTRIP, cfg, symbolics={"nb": nb})
    assert np.allclose(res.array("OUT"), value)
    assert np.allclose(res.array("SV"), value)
