"""Integration tests for the unified memory hierarchy under pressure.

A spill-enabled run constrained to half of its unconstrained resident
peak must still complete, produce bitwise-identical results, and report
nonzero victim-cascade activity -- the paper's "very large arrays"
story: the computation degrades to scratch-disk traffic, never to a
wrong answer.  Static pardo scheduling keeps chunk assignment (and so
block placement) identical between the two runs; only timing differs.
"""

import numpy as np
import pytest

from repro.programs import run_ao2mo, run_fock_build, run_mp2
from repro.simmpi.faults import FaultPlan
from repro.sip import SIPConfig
from repro.sip.dryrun import InfeasibleComputation

DRIVERS = {
    "mp2_energy": lambda cfg: run_mp2(n_basis=10, n_occ=4, config=cfg),
    "ao2mo_transform": lambda cfg: run_ao2mo(n_basis=6, config=cfg),
    "fock_build": lambda cfg: run_fock_build(n_basis=8, n_occ=3, config=cfg),
}


def config(budget=None, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("io_servers", 1)
    kw.setdefault("segment_size", 2)
    kw.setdefault("scheduling", "static")
    kw.setdefault("spill", True)
    if budget is not None:
        kw["memory_per_worker"] = float(budget)
    return SIPConfig(**kw)


def constrained_budget(base):
    """Half the observed resident peak, but never below the dry-run floor."""
    peak = base.result.stats["mem_peak_bytes"]
    floor = base.result.dry_run.pinned_floor_bytes
    return max(floor, peak // 2)


@pytest.mark.parametrize("name", sorted(DRIVERS))
def test_constrained_run_is_bitwise_identical(name):
    driver = DRIVERS[name]
    base = driver(config())
    assert base.error < 1e-10
    assert base.result.stats["mem_spills"] == 0  # unconstrained: no pressure

    out = driver(config(budget=constrained_budget(base)))
    assert out.error < 1e-10
    assert np.array_equal(np.asarray(out.value), np.asarray(base.value))
    stats = out.result.stats
    assert stats["mem_cascades"] > 0, stats
    assert stats["mem_spills"] > 0, stats
    assert stats["mem_faults_in"] > 0, stats
    # pressure costs simulated time: the constrained run cannot be faster
    assert out.result.elapsed >= base.result.elapsed


def test_prefetch_restores_loop_index_when_cache_fills():
    """Regression test for a prefetch/pressure interaction.

    ``_prefetch_future`` pokes future loop-index values into the live
    binding table while issuing speculative gets.  When the cache filled
    mid-prefetch it bailed out early *without restoring the saved
    value*, so the running iteration silently contracted with a future
    L -- wrong answers that only appeared once memory pressure made the
    cache-full path common.  The constrained run below spills owned
    blocks and exercises that path on every rank.
    """
    from repro.sip.runner import run_source

    src = """
sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
temp TC(M, N)

pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  put C(M, N) = TC(M, N)
endpardo M, N
endsial t
"""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((8, 8))
    b = rng.standard_normal((8, 8))

    def run(budget=None):
        return run_source(
            src, config(budget=budget, inputs={"A": a, "B": b}), symbolics={"nb": 8}
        )

    base = run()
    floor = base.dry_run.pinned_floor_bytes
    out = run(budget=max(floor, base.stats["mem_peak_bytes"] // 2))
    assert out.stats["mem_spills"] > 0
    np.testing.assert_allclose(out.array("C"), a @ b)
    assert np.array_equal(out.array("C"), base.array("C"))


def test_budget_below_pinned_floor_is_rejected_up_front():
    base = run_mp2(n_basis=10, n_occ=4, config=config())
    floor = base.result.dry_run.pinned_floor_bytes
    with pytest.raises(InfeasibleComputation, match="pinned-only floor"):
        run_mp2(n_basis=10, n_occ=4, config=config(budget=floor // 2))


def test_spill_survives_injected_scratch_faults():
    base = run_mp2(n_basis=10, n_occ=4, config=config())
    budget = constrained_budget(base)
    plan = FaultPlan(seed=11, disk_write_error_rate=0.05, disk_read_error_rate=0.05)
    out = run_mp2(
        n_basis=10, n_occ=4, config=config(budget=budget, faults=plan)
    )
    assert out.error < 1e-10
    assert np.array_equal(np.asarray(out.value), np.asarray(base.value))
    stats = out.result.stats
    assert stats["mem_spills"] > 0
    # with 5% error rates over hundreds of scratch ops, retries happen
    assert stats["mem_spill_retries"] > 0, stats


def test_profile_and_trace_report_pressure():
    from repro.sip.tracing import TraceRecorder

    base = run_mp2(n_basis=10, n_occ=4, config=config())
    tracer = TraceRecorder()
    out = run_mp2(
        n_basis=10,
        n_occ=4,
        config=config(budget=constrained_budget(base), tracer=tracer),
    )
    assert "memory pressure" in out.result.profile.report()
    assert tracer.mem_events
    assert "memory pressure actions" in tracer.report()
    assert "memory_pressure" in tracer.summary


def test_float32_run_is_dtype_aware_end_to_end():
    cfg64 = config()
    base = run_mp2(n_basis=8, n_occ=3, config=cfg64)
    cfg32 = config(dtype="float32")
    out = run_mp2(n_basis=8, n_occ=3, config=cfg32)
    # single precision tracks the double-precision answer loosely
    assert abs(float(out.value) - float(base.value)) < 1e-4
    # and every byte-denominated stat shrinks accordingly
    assert out.result.dry_run.per_worker_bytes * 2 == base.result.dry_run.per_worker_bytes
    assert out.result.stats["mem_peak_bytes"] < base.result.stats["mem_peak_bytes"]
