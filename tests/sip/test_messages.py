"""Unit tests for message wire-size accounting."""

import numpy as np

from repro.sip.blocks import Block, BlockId
from repro.sip.messages import (
    HEADER_BYTES,
    Ack,
    BlockReply,
    ChunkRequest,
    GetBlock,
    PutBlock,
    message_nbytes,
)


def test_block_messages_charged_block_size_plus_header():
    block = Block((4, 4), np.zeros((4, 4)))
    reply = BlockReply(BlockId(0, (1, 1)), block)
    assert message_nbytes(reply) == HEADER_BYTES + 128
    put = PutBlock(BlockId(0, (1, 1)), "=", block, 0, 0, 7)
    assert message_nbytes(put) == HEADER_BYTES + 128


def test_model_mode_blocks_still_sized_by_shape():
    block = Block((10, 10), None)  # no data, shape-only
    reply = BlockReply(BlockId(0, (1, 1)), block)
    assert message_nbytes(reply) == HEADER_BYTES + 800


def test_control_messages_default_size():
    assert message_nbytes(GetBlock(BlockId(0, (1,)), 5, 0, 0)) is None
    assert message_nbytes(Ack(3)) is None
    assert message_nbytes(ChunkRequest(0, 0, 0, 5)) is None


def test_messages_are_immutable():
    import pytest

    msg = Ack(3)
    with pytest.raises(Exception):
        msg.tag = 4  # type: ignore[misc]
