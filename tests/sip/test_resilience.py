"""End-to-end resilience: SIAL programs completing correctly on a
faulty substrate (message drops/delays, disk errors, rank crashes)."""

import numpy as np
import pytest

from repro.sial.compiler import compile_source
from repro.sip import FaultPlan, SIPConfig, SIPError, run_program, run_source


def wrap(decls, body):
    return f"sial t\n{decls}\n{body}\nendsial t\n"


PUT_GET_DECLS = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
distributed OUT(M, N)
temp T(M, N)
scalar e
"""

PUT_GET_BODY = """
pardo M, N
  T(M, N) = 3.0
  put D(M, N) = T(M, N)
endpardo M, N
sip_barrier
e = 0.0
pardo M, N
  get D(M, N)
  T(M, N) = 2.0 * D(M, N)
  put OUT(M, N) = T(M, N)
  e += D(M, N) * D(M, N)
endpardo M, N
collective e
"""

SERVED_DECLS = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
served SV(M, N)
distributed OUT(M, N)
temp T(M, N)
"""

SERVED_BODY = """
pardo M, N
  T(M, N) = 4.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
server_barrier
pardo M, N
  request SV(M, N)
  T(M, N) = SV(M, N)
  put OUT(M, N) = T(M, N)
endpardo M, N
"""


def run_pair(src, symbolics, plan, **cfg_kw):
    """Run fault-free and faulty with identical configs; return both."""
    defaults = dict(workers=2, io_servers=1, segment_size=3)
    defaults.update(cfg_kw)
    base = run_source(src, SIPConfig(**defaults), symbolics)
    faulty = run_source(src, SIPConfig(**defaults, faults=plan), symbolics)
    return base, faulty


def test_put_get_survives_message_drops():
    plan = FaultPlan(seed=3, message_drop_rate=1.0, max_message_drops=4)
    base, faulty = run_pair(
        wrap(PUT_GET_DECLS, PUT_GET_BODY), {"nb": 6}, plan, workers=3
    )
    report = faulty.fault_report
    assert report is not None
    assert report.injected.messages_dropped == 4
    assert report.retries.message_retries >= 4
    assert report.all_recovered, report.recovery_gaps()
    assert faulty.scalar("e") == pytest.approx(base.scalar("e"))
    assert np.array_equal(faulty.array("OUT"), base.array("OUT"))
    assert np.array_equal(faulty.array("D"), base.array("D"))


def test_heavy_drops_and_delays_still_converge():
    plan = FaultPlan(seed=5, message_drop_rate=0.1, message_delay_rate=0.1)
    base, faulty = run_pair(
        wrap(PUT_GET_DECLS, PUT_GET_BODY), {"nb": 7}, plan, workers=3
    )
    report = faulty.fault_report
    assert report.all_recovered, report.recovery_gaps()
    assert faulty.scalar("e") == pytest.approx(base.scalar("e"))
    assert np.array_equal(faulty.array("OUT"), base.array("OUT"))
    # delay spikes cost simulated time, never correctness
    if report.injected.messages_delayed:
        assert report.injected.added_latency > 0


def test_writeback_retries_on_disk_write_error():
    plan = FaultPlan(seed=0, disk_write_error_rate=1.0, max_disk_errors=2)
    base, faulty = run_pair(wrap(SERVED_DECLS, SERVED_BODY), {"nb": 6}, plan)
    report = faulty.fault_report
    assert report.injected.disk_write_errors == 2
    assert report.retries.writeback_retries >= 2
    assert report.all_recovered, report.recovery_gaps()
    assert np.array_equal(faulty.array("OUT"), base.array("OUT"))
    assert np.array_equal(faulty.array("SV"), base.array("SV"))


def test_read_retries_on_disk_read_error():
    plan = FaultPlan(seed=0, disk_read_error_rate=1.0, max_disk_errors=2)
    # a tiny server cache forces requests to round-trip through disk
    base, faulty = run_pair(
        wrap(SERVED_DECLS, SERVED_BODY), {"nb": 6}, plan, server_cache_blocks=2
    )
    report = faulty.fault_report
    assert report.injected.disk_read_errors == 2
    assert report.retries.disk_read_retries >= 2
    assert report.all_recovered, report.recovery_gaps()
    assert np.array_equal(faulty.array("OUT"), base.array("OUT"))


def test_prepare_accumulate_applied_exactly_once_under_drops():
    """A retried `prepare +=` must not double-accumulate."""
    body = """
pardo M, N
  T(M, N) = 1.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
server_barrier
pardo M, N
  T(M, N) = 1.0
  prepare SV(M, N) += T(M, N)
endpardo M, N
"""
    plan = FaultPlan(seed=9, message_drop_rate=0.15)
    base, faulty = run_pair(wrap(SERVED_DECLS, body), {"nb": 6}, plan, workers=3)
    assert np.all(faulty.array("SV") == 2.0)
    assert np.array_equal(faulty.array("SV"), base.array("SV"))
    assert faulty.fault_report.all_recovered


def test_resilient_mode_without_faults_matches_default():
    """resilient=True turns the ack/seq protocol on with no plan; the
    numerics match the default path and nothing is ever retried."""
    src = wrap(PUT_GET_DECLS, PUT_GET_BODY)
    base = run_source(src, SIPConfig(workers=2, io_servers=1, segment_size=3), {"nb": 6})
    res = run_source(
        src,
        SIPConfig(workers=2, io_servers=1, segment_size=3, resilient=True),
        {"nb": 6},
    )
    assert res.scalar("e") == pytest.approx(base.scalar("e"))
    assert np.array_equal(res.array("OUT"), base.array("OUT"))
    assert res.fault_report is None  # no plan -> nothing to report


def test_no_plan_has_no_fault_report():
    res = run_source(
        wrap(PUT_GET_DECLS, PUT_GET_BODY),
        SIPConfig(workers=2, io_servers=1, segment_size=3),
        {"nb": 6},
    )
    assert res.fault_report is None


def test_resilient_runs_are_deterministic():
    """Two runs with freshly built but identical plans are bit-identical
    in results AND simulated time."""
    src = wrap(PUT_GET_DECLS, PUT_GET_BODY)

    def go():
        plan = FaultPlan(seed=21, message_drop_rate=0.1, message_delay_rate=0.1)
        cfg = SIPConfig(workers=3, io_servers=1, segment_size=3, faults=plan)
        return run_source(src, cfg, {"nb": 7})

    r1, r2 = go(), go()
    assert r1.elapsed == r2.elapsed
    assert r1.scalar("e") == r2.scalar("e")
    assert np.array_equal(r1.array("OUT"), r2.array("OUT"))
    i1, i2 = r1.fault_report.injected, r2.fault_report.injected
    assert (i1.messages_dropped, i1.messages_delayed) == (
        i2.messages_dropped,
        i2.messages_delayed,
    )


def test_crash_restarts_from_checkpoint():
    from repro.programs.library import CHECKPOINT_DEMO

    prog = compile_source(CHECKPOINT_DEMO)
    sym = {"nb": 6.0, "restart": 0.0}
    cfg_kw = dict(workers=2, io_servers=1, segment_size=3)

    base = run_program(prog, SIPConfig(**cfg_kw), dict(sym))
    out0 = base.array("OUT")

    # crash worker 1 after the checkpoint but before the run completes
    crash_t = base.elapsed * 0.85
    plan = FaultPlan(seed=7, crash_times={SIPConfig(**cfg_kw).worker_rank(1): crash_t})
    res = run_program(prog, SIPConfig(**cfg_kw, faults=plan), dict(sym))

    report = res.fault_report
    assert report.injected.crashes == 1
    assert report.restarts == 1
    assert report.all_recovered, report.recovery_gaps()
    assert np.array_equal(res.array("OUT"), out0)
    assert res.scalar("phase2") == 1.0


def test_crash_without_checkpoint_raises():
    src = wrap(PUT_GET_DECLS, PUT_GET_BODY)
    cfg_kw = dict(workers=2, io_servers=1, segment_size=3)
    probe = run_source(src, SIPConfig(**cfg_kw), {"nb": 6})
    plan = FaultPlan(
        seed=0,
        crash_times={SIPConfig(**cfg_kw).worker_rank(0): probe.elapsed * 0.5},
    )
    with pytest.raises(SIPError, match="no checkpoint"):
        run_source(src, SIPConfig(**cfg_kw, faults=plan), {"nb": 6})


CCSD_STYLE = """sial smoke
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
served SV(M, N)
temp TC(M, N)
temp TS(M, N)
scalar e
pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  put C(M, N) = TC(M, N)
  prepare SV(M, N) = TC(M, N)
endpardo M, N
sip_barrier
server_barrier
e = 0.0
pardo M, N
  request SV(M, N)
  e += SV(M, N) * SV(M, N)
endpardo M, N
collective e
endsial smoke
"""


def test_ccsd_style_integration_under_mixed_faults():
    """The acceptance scenario: a contraction + served-array + collective
    program under message drops, delay spikes and one disk write error
    matches the fault-free numerics exactly, with every injected fault
    retried or recovered."""
    rng = np.random.default_rng(7)
    a = rng.standard_normal((9, 9))
    b = rng.standard_normal((9, 9))

    def run(faults=None):
        cfg = SIPConfig(
            workers=3,
            io_servers=2,
            segment_size=3,
            inputs={"A": a.copy(), "B": b.copy()},
            faults=faults,
        )
        return run_source(CCSD_STYLE, cfg, symbolics={"nb": 9})

    base = run()
    plan = FaultPlan(
        seed=42,
        message_drop_rate=0.05,
        message_delay_rate=0.05,
        disk_write_error_rate=1.0,
        max_disk_errors=1,
    )
    res = run(plan)
    report = res.fault_report

    assert report.injected.messages_dropped > 0
    assert report.injected.disk_write_errors == 1
    assert report.retries.message_retries >= report.injected.messages_dropped
    assert report.retries.writeback_retries >= 1
    assert report.all_recovered, report.recovery_gaps()
    assert res.scalar("e") == pytest.approx(base.scalar("e"), abs=1e-12)
    assert np.array_equal(res.array("C"), base.array("C"))
    assert np.array_equal(res.array("SV"), base.array("SV"))
