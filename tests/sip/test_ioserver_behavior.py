"""Focused tests of I/O-server semantics (write-back, ordering,
back-pressure) through small SIAL programs with tight server caches."""

import numpy as np
import pytest

from repro.sip import SIPConfig, run_source


def wrap(decls, body):
    return f"sial t\n{decls}\n{body}\nendsial t\n"


DECLS = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
served SV(M, N)
distributed OUT(M, N)
temp T(M, N)
"""


def test_write_back_is_lazy_but_complete():
    """Prepares are acked before the disk writes finish; by the end of
    the run every block is nevertheless on disk."""
    body = """
pardo M, N
  T(M, N) = 5.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(DECLS, body),
        SIPConfig(workers=2, io_servers=1, segment_size=2),
        {"nb": 8},
    )
    assert res.stats["disk_writes"] >= 16  # every block written back
    assert np.all(res.array("SV") == 5.0)


def test_overwrite_before_writeback_completes_keeps_latest():
    """Two prepares to the same block in quick succession: the final
    state (cache and disk) must be the second value."""
    body = """
pardo M, N
  T(M, N) = 1.0
  prepare SV(M, N) = T(M, N)
  T(M, N) = 2.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(DECLS, body),
        SIPConfig(workers=2, io_servers=1, segment_size=2),
        {"nb": 6},
    )
    assert np.all(res.array("SV") == 2.0)


def test_accumulate_ordering_through_disk():
    """'=' then '+=' to the same served block from one worker applies
    in order even when the base block must be pulled from disk."""
    body = """
pardo M, N
  T(M, N) = 10.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
server_barrier
pardo M, N
  T(M, N) = 1.0
  prepare SV(M, N) += T(M, N)
endpardo M, N
server_barrier
pardo M, N
  T(M, N) = 1.0
  prepare SV(M, N) += T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(DECLS, body),
        # cache of 2 forces the base blocks to round-trip through disk
        SIPConfig(workers=2, io_servers=1, segment_size=2, server_cache_blocks=2),
        {"nb": 6},
    )
    assert np.all(res.array("SV") == 12.0)


def test_tight_cache_backpressure_still_completes():
    """A server cache far smaller than the block set exercises the
    dirty-block back-pressure path without deadlock or data loss."""
    body = """
pardo M, N
  T(M, N) = 3.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
server_barrier
pardo M, N
  request SV(M, N)
  T(M, N) = SV(M, N)
  put OUT(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(DECLS, body),
        SIPConfig(
            workers=4,
            io_servers=1,
            segment_size=1,  # 64 blocks through a 2-entry cache
            server_cache_blocks=2,
        ),
        {"nb": 8},
    )
    assert np.all(res.array("OUT") == 3.0)
    assert res.stats["disk_reads"] > 0


def test_multiple_servers_partition_blocks():
    body = """
pardo M, N
  T(M, N) = 1.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(DECLS, body),
        SIPConfig(workers=2, io_servers=3, segment_size=2),
        {"nb": 6},
    )
    # all three servers received writes (9 blocks round-robin over 3)
    assert res.stats["disk_writes"] >= 9
    assert np.all(res.array("SV") == 1.0)


def test_request_served_from_cache_avoids_disk():
    """A freshly prepared block requested before eviction is a cache
    hit: no disk read."""
    body = """
pardo M, N
  T(M, N) = 4.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
server_barrier
pardo M, N
  request SV(M, N)
  T(M, N) = SV(M, N)
  put OUT(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(DECLS, body),
        SIPConfig(workers=2, io_servers=1, segment_size=2,
                  server_cache_blocks=64),
        {"nb": 6},
    )
    assert res.stats["disk_reads"] == 0
    assert res.stats["server_cache_hits"] > 0
    assert np.all(res.array("OUT") == 4.0)
