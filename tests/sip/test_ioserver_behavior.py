"""Focused tests of I/O-server semantics (write-back, ordering,
back-pressure) through small SIAL programs with tight server caches."""

import numpy as np
import pytest

from repro.sial.compiler import compile_source
from repro.simmpi import Simulator, World
from repro.sip import SIPConfig, run_source
from repro.sip.blocks import Block, BlockId
from repro.sip.ioserver import IOServerProcess
from repro.sip.runtime import SharedRuntime


def wrap(decls, body):
    return f"sial t\n{decls}\n{body}\nendsial t\n"


DECLS = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
served SV(M, N)
distributed OUT(M, N)
temp T(M, N)
"""


def test_write_back_is_lazy_but_complete():
    """Prepares are acked before the disk writes finish; by the end of
    the run every block is nevertheless on disk."""
    body = """
pardo M, N
  T(M, N) = 5.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(DECLS, body),
        SIPConfig(workers=2, io_servers=1, segment_size=2),
        {"nb": 8},
    )
    assert res.stats["disk_writes"] >= 16  # every block written back
    assert np.all(res.array("SV") == 5.0)


def test_overwrite_before_writeback_completes_keeps_latest():
    """Two prepares to the same block in quick succession: the final
    state (cache and disk) must be the second value."""
    body = """
pardo M, N
  T(M, N) = 1.0
  prepare SV(M, N) = T(M, N)
  T(M, N) = 2.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(DECLS, body),
        SIPConfig(workers=2, io_servers=1, segment_size=2),
        {"nb": 6},
    )
    assert np.all(res.array("SV") == 2.0)


def test_accumulate_ordering_through_disk():
    """'=' then '+=' to the same served block from one worker applies
    in order even when the base block must be pulled from disk."""
    body = """
pardo M, N
  T(M, N) = 10.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
server_barrier
pardo M, N
  T(M, N) = 1.0
  prepare SV(M, N) += T(M, N)
endpardo M, N
server_barrier
pardo M, N
  T(M, N) = 1.0
  prepare SV(M, N) += T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(DECLS, body),
        # cache of 2 forces the base blocks to round-trip through disk
        SIPConfig(workers=2, io_servers=1, segment_size=2, server_cache_blocks=2),
        {"nb": 6},
    )
    assert np.all(res.array("SV") == 12.0)


def test_tight_cache_backpressure_still_completes():
    """A server cache far smaller than the block set exercises the
    dirty-block back-pressure path without deadlock or data loss."""
    body = """
pardo M, N
  T(M, N) = 3.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
server_barrier
pardo M, N
  request SV(M, N)
  T(M, N) = SV(M, N)
  put OUT(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(DECLS, body),
        SIPConfig(
            workers=4,
            io_servers=1,
            segment_size=1,  # 64 blocks through a 2-entry cache
            server_cache_blocks=2,
        ),
        {"nb": 8},
    )
    assert np.all(res.array("OUT") == 3.0)
    assert res.stats["disk_reads"] > 0


def test_multiple_servers_partition_blocks():
    body = """
pardo M, N
  T(M, N) = 1.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(DECLS, body),
        SIPConfig(workers=2, io_servers=3, segment_size=2),
        {"nb": 6},
    )
    # all three servers received writes (9 blocks round-robin over 3)
    assert res.stats["disk_writes"] >= 9
    assert np.all(res.array("SV") == 1.0)


def test_request_served_from_cache_avoids_disk():
    """A freshly prepared block requested before eviction is a cache
    hit: no disk read."""
    body = """
pardo M, N
  T(M, N) = 4.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
server_barrier
pardo M, N
  request SV(M, N)
  T(M, N) = SV(M, N)
  put OUT(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(DECLS, body),
        SIPConfig(workers=2, io_servers=1, segment_size=2,
                  server_cache_blocks=64),
        {"nb": 6},
    )
    assert res.stats["disk_reads"] == 0
    assert res.stats["server_cache_hits"] > 0
    assert np.all(res.array("OUT") == 4.0)


class _PresetDelayDisk:
    """Stub disk whose writes complete after preset delays.

    Unlike the real (serial) Disk, completions can come out of issue
    order -- exactly the hazard the write-back version check guards.
    """

    def __init__(self, sim, delays):
        self.sim = sim
        self._delays = iter(delays)

    def write(self, nbytes):
        ev = self.sim.event(name="stub disk write")
        self.sim._schedule_call(next(self._delays), ev.succeed, None)
        return ev


def test_out_of_order_writeback_keeps_latest_snapshot():
    """Regression test: a write-back completing after a newer one used
    to store its stale snapshot into disk_data unconditionally, leaving
    the disk image older than the acknowledged state."""
    prog = compile_source(
        "sial t\naoindex M = 1, 4\nserved SV(M)\nscalar e\ne = 0.0\nendsial t\n"
    )
    cfg = SIPConfig(workers=1, io_servers=1, segment_size=2)
    sim = Simulator()
    world = World(sim, cfg.world_size, cfg.machine.network())
    rt = SharedRuntime(prog, cfg, {}, sim, world)
    server = IOServerProcess(rt, 0, world.comm(cfg.server_rank(0)))
    # first write-back lands at t=10, the second (newer) at t=1
    server.disk = _PresetDelayDisk(sim, [10.0, 1.0])

    bid = BlockId(prog.array_id("SV"), (1,))
    entry = server.cache.insert_ready(
        bid, Block((2,), np.array([1.0, 1.0])), dirty=True
    )
    server._start_writeback(bid)  # snapshots 1.0, completes last
    entry.block.data[...] = 2.0
    entry.dirty = True
    server._start_writeback(bid)  # snapshots 2.0, completes first
    sim.run()
    assert np.all(server.disk_data[bid] == 2.0)
    assert not entry.dirty
