"""Property tests for chunk scheduling.

Two layers:

* scheduler-level -- every policy serves every iteration exactly once
  no matter how workers interleave their requests; and
* master-level -- the same holds across the resilient wire protocol,
  where requests may be retried (and the retried reply must be a
  bitwise replay, keyed per (worker, pardo pc, activation) so replies
  can never leak across activations or pardos).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sial.compiler import compile_source
from repro.simmpi import Simulator, World
from repro.sip import SIPConfig
from repro.sip.master import MasterProcess
from repro.sip.messages import ChunkRequest
from repro.sip.runtime import SharedRuntime
from repro.sip.scheduler import make_scheduler

POLICIES = ("guided", "static", "locality")


# -- scheduler level ---------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_policies_serve_each_iteration_exactly_once(data):
    n = data.draw(st.integers(0, 40), label="iterations")
    workers = data.draw(st.integers(1, 5), label="workers")
    policy = data.draw(st.sampled_from(POLICIES), label="policy")
    chunk_factor = data.draw(st.integers(1, 4), label="chunk_factor")
    min_chunk = data.draw(st.integers(1, 6), label="min_chunk")
    preferred = None
    if policy == "locality" and n:
        preferred = data.draw(
            st.lists(
                st.integers(0, workers - 1), min_size=n, max_size=n
            ),
            label="preferred",
        )
    iters = [(i,) for i in range(n)]
    sched = make_scheduler(
        policy,
        iters,
        workers,
        chunk_factor,
        min_chunk=min_chunk,
        preferred=preferred,
    )
    served = []
    active = set(range(workers))
    while active:
        w = data.draw(st.sampled_from(sorted(active)), label="asker")
        chunk = sched.next_chunk_for(w)
        if chunk:
            served.extend(chunk)
        else:
            active.discard(w)
    assert sorted(served) == iters
    assert sched.stats.iterations == n
    # a drained scheduler stays drained
    for w in range(workers):
        assert sched.next_chunk_for(w) == []


# -- master level ------------------------------------------------------------

_TWO_PARDO_SRC = """sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
pardo M, N where M < N
  T(M, N) = 1.0
  put D(M, N) = T(M, N)
endpardo M, N
pardo M, N where M > N
  T(M, N) = 2.0
  put D(M, N) = T(M, N)
endpardo M, N
endsial t
"""


class FakeComm:
    """Records isends so tests can inspect the master's replies."""

    def __init__(self):
        self.sent = []

    def isend(self, payload, dest, tag, nbytes=None):
        self.sent.append((payload, dest, tag))


def make_master(workers, scheduling="guided", nb=8):
    config = SIPConfig(
        workers=workers,
        io_servers=1,
        segment_size=2,
        scheduling=scheduling,
        resilient=True,
    )
    prog = compile_source(_TWO_PARDO_SRC)
    sim = Simulator()
    world = World(sim, config.world_size, config.machine.network(), None)
    rt = SharedRuntime(prog, config, {"nb": nb}, sim, world)
    master = MasterProcess(rt, FakeComm())
    pcs = [
        pc
        for pc, instr in enumerate(prog.instructions)
        if instr.op == "PARDO_START"
    ]
    return master, pcs


def pardo_space(master, pc):
    from repro.sip.scheduler import enumerate_pardo

    _pid, ids, conds, _exit, _gets = master.rt.decoded.instructions[pc].args
    return enumerate_pardo(master.rt.table, ids, conds)


def test_replay_cache_does_not_alias_across_pardos():
    """Regression: the replay cache used to ignore which pardo (and
    which activation) a retried request belonged to, so a request for
    the second pardo could be answered with the first pardo's cached
    chunk when the seq numbers happened to collide."""
    master, (pc1, pc2) = make_master(workers=1)
    comm = master.comm

    master._serve_chunk(ChunkRequest(pc1, 0, 0, reply_tag=100, seq=3), source=1)
    reply1 = comm.sent[-1][0]
    assert list(reply1.iterations)
    assert set(reply1.iterations) <= set(pardo_space(master, pc1))

    # same worker, same seq, different pardo pc: must NOT be a replay
    master._serve_chunk(ChunkRequest(pc2, 0, 0, reply_tag=101, seq=3), source=1)
    reply2 = comm.sent[-1][0]
    assert master.resilience.duplicates_ignored == 0
    assert set(reply2.iterations) <= set(pardo_space(master, pc2))
    assert set(reply2.iterations).isdisjoint(set(reply1.iterations))

    # a true retry (same worker, pc, activation, seq) replays the
    # identical reply instead of draining a fresh chunk
    before = len(comm.sent)
    master._serve_chunk(ChunkRequest(pc2, 0, 0, reply_tag=101, seq=3), source=1)
    assert master.resilience.duplicates_ignored == 1
    assert comm.sent[before][0] is reply2


def test_replay_cache_does_not_alias_across_activations():
    master, (pc1, _pc2) = make_master(workers=1)
    comm = master.comm
    space = pardo_space(master, pc1)

    # drain activation 0 completely (worker seq counter keeps rising)
    seq = 0
    got0 = []
    while True:
        master._serve_chunk(
            ChunkRequest(pc1, 0, 0, reply_tag=10 + seq, seq=seq), source=1
        )
        chunk = comm.sent[-1][0].iterations
        if not chunk:
            break
        got0.extend(chunk)
        seq += 1
    assert sorted(got0) == space

    # activation 1 re-runs the same pc: its first request must get the
    # full space again, not a stale cached reply from activation 0
    master._serve_chunk(
        ChunkRequest(pc1, 1, 0, reply_tag=99, seq=seq + 1), source=1
    )
    first = comm.sent[-1][0].iterations
    assert first
    assert set(first) <= set(space)
    assert master.resilience.duplicates_ignored == 0


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_master_exactly_once_under_retries_and_interleavings(data):
    """Across random interleavings, worker counts, policies, and
    resilient retried/duplicated requests, the master serves every
    iteration of every pardo exactly once, and every retry is answered
    with the identical cached reply."""
    workers = data.draw(st.integers(1, 3), label="workers")
    policy = data.draw(st.sampled_from(POLICIES), label="policy")
    master, pcs = make_master(workers=workers, scheduling=policy)
    comm = master.comm

    for pc in pcs:
        space = pardo_space(master, pc)
        served = {w: [] for w in range(workers)}
        seqs = {w: 0 for w in range(workers)}
        last = {}
        active = set(range(workers))
        while active:
            w = data.draw(st.sampled_from(sorted(active)), label="asker")
            retry = w in last and data.draw(st.booleans(), label="retry")
            if retry:
                req, prev_reply = last[w]
                before = len(comm.sent)
                master._serve_chunk(req, source=1 + w)
                # the retry is replayed bitwise, not served afresh
                assert comm.sent[before][0] is prev_reply
                continue
            req = ChunkRequest(
                pc, 0, w, reply_tag=1000 + seqs[w], seq=seqs[w]
            )
            seqs[w] += 1
            master._serve_chunk(req, source=1 + w)
            reply = comm.sent[-1][0]
            last[w] = (req, reply)
            if reply.iterations:
                served[w].extend(reply.iterations)
            else:
                active.discard(w)
        everything = sorted(
            it for chunks in served.values() for it in chunks
        )
        assert everything == space
