"""Master-protocol behaviors: pardo activations, collectives, scheduling."""

import dataclasses

import numpy as np
import pytest

from repro.sial.bytecode import CompiledCondition
from repro.sial.compiler import compile_source
from repro.sip import FaultPlan, SIPConfig, run_program, run_source


def wrap(decls, body):
    return f"sial t\n{decls}\n{body}\nendsial t\n"


def test_pardo_inside_do_loop_activates_per_trip():
    """The same pardo pc executes once per enclosing do-loop trip; the
    master must treat each activation as a fresh iteration space."""
    decls = """
symbolic nb
symbolic niter
aoindex M = 1, nb
index it = 1, niter
distributed D(M, M)
temp T(M, M)
"""
    body = """
do it
  pardo M
    T(M, M) = 1.0
    put D(M, M) += T(M, M)
  endpardo M
  sip_barrier
enddo it
"""
    res = run_source(
        wrap(decls, body),
        SIPConfig(workers=3, io_servers=1, segment_size=2),
        {"nb": 6, "niter": 5},
    )
    assert np.all(np.diag(res.array("D")) == 5.0)
    totals = res.profile.pardo_totals()
    assert totals[0].iterations == 5 * 3  # 5 activations x 3 diagonal blocks


def test_consecutive_pardos_get_independent_spaces():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
"""
    body = """
pardo M, N where M < N
  T(M, N) = 1.0
  put D(M, N) += T(M, N)
endpardo M, N
pardo M, N where M > N
  T(M, N) = 2.0
  put D(M, N) += T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(decls, body),
        SIPConfig(workers=2, io_servers=1, segment_size=3),
        {"nb": 9},
    )
    d = res.array("D")
    assert np.all(d[0:3, 3:9] == 1.0)  # upper blocks from pardo 0
    assert np.all(d[3:9, 0:3] == 2.0)  # lower blocks from pardo 1
    assert np.all(d[0:3, 0:3] == 0.0)  # diagonal untouched


def test_multiple_collectives_in_sequence():
    decls = "symbolic nb\naoindex M = 1, nb\ntemp T(M, M)\nscalar a\nscalar b\n"
    body = """
pardo M
  T(M, M) = 1.0
  a += T(M, M) * T(M, M)
endpardo M
collective a
pardo M
  T(M, M) = 2.0
  b += T(M, M) * T(M, M)
endpardo M
collective b
"""
    res = run_source(
        wrap(decls, body),
        SIPConfig(workers=3, io_servers=1, segment_size=2),
        {"nb": 8},
    )
    # 4 diagonal blocks of 2x2: a = 4*4*1, b = 4*4*4
    assert res.scalar("a") == pytest.approx(16.0)
    assert res.scalar("b") == pytest.approx(64.0)


def test_collective_deterministic_across_runs():
    decls = "symbolic nb\naoindex M = 1, nb\ntemp T(M, M)\nscalar s\n"
    body = """
pardo M
  T(M, M) = 0.1
  s += T(M, M) * T(M, M)
endpardo M
collective s
"""
    values = {
        run_source(
            wrap(decls, body),
            SIPConfig(workers=w, io_servers=1, segment_size=1),
            {"nb": 13},
        ).scalar("s")
        for w in (1, 2, 3, 7)
    }
    # bitwise identical regardless of worker count (master sums in
    # worker order, contributions partitioned deterministically)...
    # at minimum, all equal to within strict fp reproducibility of the
    # deterministic schedule:
    assert max(values) - min(values) < 1e-12


def test_static_scheduling_end_to_end():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
"""
    body = """
pardo M, N
  T(M, N) = 7.0
  put D(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(decls, body),
        SIPConfig(workers=3, io_servers=1, segment_size=2, scheduling="static"),
        {"nb": 8},
    )
    assert np.all(res.array("D") == 7.0)
    # static: one work chunk + one empty reply per worker
    assert res.stats["chunks_served"] <= 6


_LOCALITY_SRC = wrap(
    """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
distributed E(M, N)
temp T(M, N)
temp S(M, N)
scalar acc
""",
    """
pardo M, N
  T(M, N) = 1.5
  put D(M, N) = T(M, N)
endpardo M, N
sip_barrier
pardo M, N where M < N
  get D(M, N)
  S(M, N) = D(M, N) * 2.0
  put E(M, N) = S(M, N)
  acc += S(M, N) * D(M, N)
endpardo M, N
collective acc
""",
)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_locality_bitwise_identical_to_guided(workers):
    """The acceptance bar: same bits out of every policy."""
    results = {}
    for policy in ("guided", "static", "locality"):
        res = run_source(
            _LOCALITY_SRC,
            SIPConfig(
                workers=workers, io_servers=1, segment_size=2, scheduling=policy
            ),
            {"nb": 8},
        )
        results[policy] = (res.scalar("acc"), res.array("E").tobytes())
    assert results["locality"] == results["guided"] == results["static"]


def test_locality_end_to_end_stats_and_fewer_remote_bytes():
    runs = {}
    for policy in ("guided", "locality"):
        runs[policy] = run_source(
            _LOCALITY_SRC,
            SIPConfig(
                workers=4, io_servers=1, segment_size=2, scheduling=policy
            ),
            {"nb": 12},
        )
    loc = runs["locality"].stats
    assert loc["sched_policy"] == "locality"
    assert loc["sched_locality_hits"] > 0
    assert loc["sched_locality_hits"] + loc["sched_locality_misses"] == loc[
        "sched_iterations"
    ]
    # aligning iterations with the owners of the blocks they get must
    # move strictly fewer remote bytes than placement-blind guided
    assert loc["remote_bytes"] < runs["guided"].stats["remote_bytes"]
    g = runs["guided"].stats
    assert g["sched_policy"] == "guided"
    assert g["sched_locality_hits"] == 0 and g["sched_steals"] == 0


def test_locality_profile_and_trace_surface_counters():
    from repro.sip import TraceRecorder

    tracer = TraceRecorder()
    res = run_source(
        _LOCALITY_SRC,
        SIPConfig(
            workers=3,
            io_servers=1,
            segment_size=2,
            scheduling="locality",
            tracer=tracer,
        ),
        {"nb": 8},
    )
    sched = res.profile.scheduling
    assert sched is not None and sched.policy == "locality"
    assert sched.chunks == res.stats["sched_chunks"]
    assert "scheduling (locality)" in res.profile.report()
    assert tracer.sched_events
    assert sum(e.size for e in tracer.sched_events) == sched.iterations
    assert "chunk scheduling:" in tracer.report()
    assert "scheduling" in tracer.summary


def test_collective_bitwise_across_worker_counts():
    """The canonical per-iteration reduction makes collectives exactly
    reproducible across worker counts, not just to 1e-12.  (The scalar
    must start at zero: a nonzero base assigned in serial code runs
    redundantly on every worker and is summed once per worker, by the
    collective's long-standing semantics.)"""
    decls = "symbolic nb\naoindex M = 1, nb\ntemp T(M, M)\nscalar s\n"
    body = """
pardo M
  T(M, M) = 0.1
  s += T(M, M) * T(M, M)
endpardo M
collective s
"""
    values = {
        run_source(
            wrap(decls, body),
            SIPConfig(workers=w, io_servers=1, segment_size=1),
            {"nb": 13},
        ).scalar("s")
        for w in (1, 2, 3, 7)
    }
    assert len(values) == 1


def test_pardo_where_clause_reading_scalar_uses_worker_snapshot():
    """Regression: the master used to enumerate where clauses against
    its own (stale, in fact never-populated) scalar state.  The
    analyzer rejects scalars in where clauses, so build the condition
    by patching the compiled bytecode, the way hand-built programs
    can."""
    src = wrap(
        """
symbolic nb
aoindex M = 1, nb
distributed D(M, M)
temp T(M, M)
scalar thresh
""",
        """
thresh = 2.0
pardo M where M < nb
  T(M, M) = 1.0
  put D(M, M) = T(M, M)
endpardo M
""",
    )
    prog = compile_source(src)
    thresh_id = prog.scalar_table.index("thresh")
    pc, start = next(
        (pc, i)
        for pc, i in enumerate(prog.instructions)
        if i.op == "PARDO_START"
    )
    cond = start.args[2][0]
    # rewrite `M < nb` into `M < thresh`
    patched = (
        CompiledCondition(cond.op, cond.left_rpn, (("scalar", thresh_id),)),
    )
    args = start.args[:2] + (patched,) + start.args[3:]
    prog.instructions[pc] = dataclasses.replace(start, args=args)
    res = run_program(
        prog,
        SIPConfig(workers=2, io_servers=1, segment_size=2),
        {"nb": 8},
    )
    d = res.array("D")
    # thresh = 2.0 at pardo entry: only segment M=1 qualifies
    assert np.all(np.diag(d)[:2] == 1.0)
    assert np.all(np.diag(d)[2:] == 0.0)


def test_chunk_replay_keyed_per_activation_under_faults():
    """Regression for the replay-cache collision: with injected delays
    and drops, retried chunk requests from several activations of the
    same pardo pc must never be answered with another activation's
    cached chunk."""
    decls = """
symbolic nb
symbolic niter
aoindex M = 1, nb
index it = 1, niter
distributed D(M, M)
temp T(M, M)
"""
    body = """
do it
  pardo M
    T(M, M) = 1.0
    put D(M, M) += T(M, M)
  endpardo M
  sip_barrier
enddo it
"""
    plan = FaultPlan(
        seed=11,
        message_drop_rate=0.04,
        message_delay_rate=0.3,
        message_delay=0.02,
        max_message_drops=40,
    )
    res = run_source(
        wrap(decls, body),
        SIPConfig(
            workers=3,
            io_servers=1,
            segment_size=2,
            faults=plan,
            retry_timeout=0.05,
        ),
        {"nb": 6, "niter": 5},
    )
    assert np.all(np.diag(res.array("D")) == 5.0)
    totals = res.profile.pardo_totals()
    assert totals[0].iterations == 5 * 3


def test_empty_pardo_iteration_space():
    decls = """
symbolic nb
aoindex M = 1, nb
distributed D(M, M)
temp T(M, M)
scalar x
"""
    body = """
pardo M where M > 99
  T(M, M) = 1.0
  put D(M, M) = T(M, M)
endpardo M
x = 1.0
"""
    res = run_source(
        wrap(decls, body),
        SIPConfig(workers=2, io_servers=1, segment_size=2),
        {"nb": 6},
    )
    assert res.scalar("x") == 1.0
    assert np.all(res.array("D") == 0.0)
