"""Master-protocol behaviors: pardo activations, collectives, scheduling."""

import numpy as np
import pytest

from repro.sip import SIPConfig, run_source


def wrap(decls, body):
    return f"sial t\n{decls}\n{body}\nendsial t\n"


def test_pardo_inside_do_loop_activates_per_trip():
    """The same pardo pc executes once per enclosing do-loop trip; the
    master must treat each activation as a fresh iteration space."""
    decls = """
symbolic nb
symbolic niter
aoindex M = 1, nb
index it = 1, niter
distributed D(M, M)
temp T(M, M)
"""
    body = """
do it
  pardo M
    T(M, M) = 1.0
    put D(M, M) += T(M, M)
  endpardo M
  sip_barrier
enddo it
"""
    res = run_source(
        wrap(decls, body),
        SIPConfig(workers=3, io_servers=1, segment_size=2),
        {"nb": 6, "niter": 5},
    )
    assert np.all(np.diag(res.array("D")) == 5.0)
    totals = res.profile.pardo_totals()
    assert totals[0].iterations == 5 * 3  # 5 activations x 3 diagonal blocks


def test_consecutive_pardos_get_independent_spaces():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
"""
    body = """
pardo M, N where M < N
  T(M, N) = 1.0
  put D(M, N) += T(M, N)
endpardo M, N
pardo M, N where M > N
  T(M, N) = 2.0
  put D(M, N) += T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(decls, body),
        SIPConfig(workers=2, io_servers=1, segment_size=3),
        {"nb": 9},
    )
    d = res.array("D")
    assert np.all(d[0:3, 3:9] == 1.0)  # upper blocks from pardo 0
    assert np.all(d[3:9, 0:3] == 2.0)  # lower blocks from pardo 1
    assert np.all(d[0:3, 0:3] == 0.0)  # diagonal untouched


def test_multiple_collectives_in_sequence():
    decls = "symbolic nb\naoindex M = 1, nb\ntemp T(M, M)\nscalar a\nscalar b\n"
    body = """
pardo M
  T(M, M) = 1.0
  a += T(M, M) * T(M, M)
endpardo M
collective a
pardo M
  T(M, M) = 2.0
  b += T(M, M) * T(M, M)
endpardo M
collective b
"""
    res = run_source(
        wrap(decls, body),
        SIPConfig(workers=3, io_servers=1, segment_size=2),
        {"nb": 8},
    )
    # 4 diagonal blocks of 2x2: a = 4*4*1, b = 4*4*4
    assert res.scalar("a") == pytest.approx(16.0)
    assert res.scalar("b") == pytest.approx(64.0)


def test_collective_deterministic_across_runs():
    decls = "symbolic nb\naoindex M = 1, nb\ntemp T(M, M)\nscalar s\n"
    body = """
pardo M
  T(M, M) = 0.1
  s += T(M, M) * T(M, M)
endpardo M
collective s
"""
    values = {
        run_source(
            wrap(decls, body),
            SIPConfig(workers=w, io_servers=1, segment_size=1),
            {"nb": 13},
        ).scalar("s")
        for w in (1, 2, 3, 7)
    }
    # bitwise identical regardless of worker count (master sums in
    # worker order, contributions partitioned deterministically)...
    # at minimum, all equal to within strict fp reproducibility of the
    # deterministic schedule:
    assert max(values) - min(values) < 1e-12


def test_static_scheduling_end_to_end():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
"""
    body = """
pardo M, N
  T(M, N) = 7.0
  put D(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(decls, body),
        SIPConfig(workers=3, io_servers=1, segment_size=2, scheduling="static"),
        {"nb": 8},
    )
    assert np.all(res.array("D") == 7.0)
    # static: one work chunk + one empty reply per worker
    assert res.stats["chunks_served"] <= 6


def test_empty_pardo_iteration_space():
    decls = """
symbolic nb
aoindex M = 1, nb
distributed D(M, M)
temp T(M, M)
scalar x
"""
    body = """
pardo M where M > 99
  T(M, M) = 1.0
  put D(M, M) = T(M, M)
endpardo M
x = 1.0
"""
    res = run_source(
        wrap(decls, body),
        SIPConfig(workers=2, io_servers=1, segment_size=2),
        {"nb": 6},
    )
    assert res.scalar("x") == 1.0
    assert np.all(res.array("D") == 0.0)
