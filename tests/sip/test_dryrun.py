"""Unit tests for the dry-run memory analysis."""

import pytest

from repro.sial.compiler import compile_source
from repro.sip.blocks import ResolvedIndexTable
from repro.sip.config import SIPConfig
from repro.sip.dryrun import dry_run
from repro.sip.memory import BlockPool
from repro.sip.runner import run_source

DECLS = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
static S(M, N)
temp T(M, N)
local LO(M, N)
distributed D(M, N)
served SV(M, N)
"""


def report_for(nb=16, seg=4, workers=4, **cfg_kw):
    prog = compile_source(f"sial t\n{DECLS}\nendsial t\n")
    config = SIPConfig(workers=workers, segment_size=seg, **cfg_kw)
    table = ResolvedIndexTable(prog, {"nb": nb}, segment_size=seg)
    return dry_run(prog, config, table)


def test_static_counted_in_full():
    r = report_for(nb=16)
    assert r.static_bytes == 16 * 16 * 8


def test_temp_and_local_one_block_each():
    r = report_for(nb=16, seg=4)
    assert r.temp_bytes == 4 * 4 * 8
    assert r.local_bytes == 4 * 4 * 8


def test_distributed_share_shrinks_with_workers():
    r1 = report_for(workers=1)
    r4 = report_for(workers=4)
    assert r4.distributed_max_bytes < r1.distributed_max_bytes


def test_served_not_counted_in_worker_ram():
    r = report_for()
    # served array total appears in array_bytes but not in RAM components
    assert r.array_bytes["SV"] == 16 * 16 * 8
    ram = (
        r.static_bytes
        + r.distributed_max_bytes
        + r.temp_bytes
        + r.local_bytes
        + r.cache_reserve_bytes
    )
    assert ram == r.per_worker_bytes


def test_infeasible_reports_required_workers():
    r = report_for(nb=64, seg=8, workers=1, memory_per_worker=80_000.0)
    assert not r.feasible
    assert r.required_workers > 1
    assert "INFEASIBLE" in r.report()
    # the suggestion should actually be sufficient for the distributed share
    r2 = report_for(
        nb=64, seg=8, workers=r.required_workers, memory_per_worker=80_000.0
    )
    assert r2.distributed_max_bytes <= 80_000.0


def test_feasible_report_text():
    r = report_for()
    assert "FEASIBLE" in r.report()
    assert "static" in r.report()


def test_hopeless_case_flagged():
    # static alone exceeds memory: no worker count helps
    r = report_for(nb=64, workers=4, memory_per_worker=1000.0)
    assert not r.feasible
    assert r.required_workers == -1


def test_pinned_floor_reported():
    r = report_for(nb=16, seg=4)
    assert r.pinned_floor_bytes == 6 * 4 * 4 * 8  # 6 x largest block
    assert "pinned-only floor" in r.report()
    assert "spill headroom" in r.report()


def test_spill_flips_infeasible_to_feasible():
    # too small for the no-spill requirement, plenty above the floor
    r = report_for(nb=64, seg=8, workers=1, memory_per_worker=80_000.0)
    assert not r.feasible
    r_spill = report_for(
        nb=64, seg=8, workers=1, memory_per_worker=80_000.0, spill=True
    )
    assert r_spill.feasible
    assert r_spill.spill_headroom_bytes > 0


def test_spill_cannot_rescue_budget_below_the_floor():
    r = report_for(nb=64, seg=8, workers=1, memory_per_worker=1000.0, spill=True)
    assert not r.feasible
    assert "pinned-only floor exceeds the budget" in r.report()


def test_dtype_scales_dry_run_estimate():
    r64 = report_for(nb=16)
    r32 = report_for(nb=16, dtype="float32")
    assert r32.static_bytes * 2 == r64.static_bytes
    assert r32.per_worker_bytes * 2 == r64.per_worker_bytes


def test_dry_run_estimate_covers_observed_peak():
    """The paper's guarantee: the dry run bounds actual memory use."""
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
temp TC(M, N)
"""
    body = """
pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  put C(M, N) = TC(M, N)
endpardo M, N
"""
    import numpy as np

    rng = np.random.default_rng(0)
    a = rng.standard_normal((12, 12))
    b = rng.standard_normal((12, 12))
    res = run_source(
        f"sial t\n{decls}\n{body}\nendsial t\n",
        SIPConfig(workers=3, segment_size=4, inputs={"A": a, "B": b}),
        symbolics={"nb": 12},
    )
    assert res.stats["pool_peak_bytes"] <= res.dry_run.per_worker_bytes
