"""Property tests for the compiled contraction plans.

Every plan -- GEMM-lowered or einsum-path -- must produce results
**bitwise identical** to the legacy ``np.einsum(..., optimize=True)``
call it replaces, across permuted layouts, repeated (diagonal)
indices, reductions, and operand slices.
"""

import numpy as np
import pytest

from repro.sip.plans import (
    KernelPlanCache,
    einsum_subscripts,
    perm,
)
from repro.sip.plans import _EinsumPlan, _GemmPlan  # type: ignore


def legacy(a_ids, a, b_ids, b, out_ids, out_shape, op="=", seed_dst=None):
    """What the pre-plan backend computed."""
    sub = einsum_subscripts(a_ids, b_ids, out_ids)
    res = np.einsum(sub, a, b, optimize=True)
    dst = np.zeros(out_shape) if seed_dst is None else seed_dst.copy()
    if op == "=":
        dst[...] = res
    elif op == "+=":
        dst[...] += res
    else:
        dst[...] -= res
    return dst


def run_plan(cache, a_ids, a, b_ids, b, out_ids, out_shape, op="=", seed_dst=None):
    plan = cache.contraction(a_ids, a.shape, b_ids, b.shape, out_ids, out_shape)
    dst = np.zeros(out_shape) if seed_dst is None else seed_dst.copy()
    plan.execute(a, b, dst, op)
    return plan, dst


# (a_ids, a_shape, b_ids, b_shape, out_ids, out_shape) covering the
# paper's contraction shapes: matmul, 4-index ladders, permuted
# layouts, full reductions, diagonals, and outer products
CASES = [
    # plain matmul
    ((0, 1), (4, 5), (1, 2), (5, 3), (0, 2), (4, 3)),
    # permuted output layout
    ((0, 1), (4, 5), (1, 2), (5, 3), (2, 0), (3, 4)),
    # 4-index ladder contraction (paper Section IV-D)
    ((0, 1, 2, 3), (3, 4, 2, 5), (2, 3, 4, 5), (2, 5, 3, 2), (0, 1, 4, 5), (3, 4, 3, 2)),
    # contraction with permuted operand axes
    ((2, 0, 1), (3, 4, 5), (2, 1), (3, 5), (0, 1), (4, 5)),
    # full contraction to a scalar-like 0-d output
    ((0, 1), (4, 5), (0, 1), (4, 5), (), ()),
    # repeated index within an operand (diagonal) -> einsum plan
    ((0, 0), (4, 4), (0, 1), (4, 3), (1,), (3,)),
    # batch index present everywhere -> einsum plan
    ((0, 1), (4, 5), (0, 1), (4, 5), (0,), (4,)),
    # pure reduction of an operand-only index -> einsum plan
    ((0, 1, 2), (4, 5, 3), (1,), (5,), (0,), (4,)),
    # outer product (no contracted index) -> einsum plan
    ((0,), (4,), (1,), (5,), (0, 1), (4, 5)),
]


@pytest.mark.parametrize("case", CASES, ids=[str(i) for i in range(len(CASES))])
@pytest.mark.parametrize("op", ["=", "+=", "-="])
def test_plans_match_legacy_einsum_bitwise(case, op):
    a_ids, a_shape, b_ids, b_shape, out_ids, out_shape = case
    rng = np.random.default_rng(hash(case) % 2**32)
    a = rng.standard_normal(a_shape)
    b = rng.standard_normal(b_shape)
    seed = rng.standard_normal(out_shape)
    cache = KernelPlanCache()
    _, got = run_plan(cache, a_ids, a, b_ids, b, out_ids, out_shape, op, seed)
    want = legacy(a_ids, a, b_ids, b, out_ids, out_shape, op, seed)
    assert np.array_equal(got, want)


def test_plans_match_on_sliced_noncontiguous_operands():
    """Blocks arrive as views (subindex slices); plans must not assume
    contiguity."""
    rng = np.random.default_rng(7)
    base_a = rng.standard_normal((8, 10))
    base_b = rng.standard_normal((10, 6))
    a = base_a[1:5, 2:9]  # (4, 7) non-contiguous view
    b = base_b[2:9, ::2]  # (7, 3) strided view
    cache = KernelPlanCache()
    _, got = run_plan(cache, (0, 1), a, (1, 2), b, (0, 2), (4, 3))
    want = legacy((0, 1), a, (1, 2), b, (0, 2), (4, 3))
    assert np.array_equal(got, want)


def test_gemm_applies_to_clean_contractions_only():
    cache = KernelPlanCache()
    clean = cache.contraction((0, 1), (4, 5), (1, 2), (5, 3), (0, 2), (4, 3))
    assert isinstance(clean, _GemmPlan)
    diagonal = cache.contraction((0, 0), (4, 4), (0, 1), (4, 3), (1,), (3,))
    assert isinstance(diagonal, _EinsumPlan)
    outer = cache.contraction((0,), (4,), (1,), (5,), (0, 1), (4, 5))
    assert isinstance(outer, _EinsumPlan)


def test_plan_reuse_is_bit_identical_and_counted():
    rng = np.random.default_rng(3)
    cache = KernelPlanCache()
    sig = ((0, 1, 2, 3), (3, 4, 2, 5), (2, 3, 4, 5), (2, 5, 3, 2),
           (0, 1, 4, 5), (3, 4, 3, 2))
    a_ids, a_shape, b_ids, b_shape, out_ids, out_shape = sig
    results = []
    for _ in range(3):
        a = rng.standard_normal(a_shape)
        b = rng.standard_normal(b_shape)
        plan, got = run_plan(cache, a_ids, a, b_ids, b, out_ids, out_shape)
        want = legacy(a_ids, a, b_ids, b, out_ids, out_shape)
        assert np.array_equal(got, want)
        results.append(plan)
    assert results[0] is results[1] is results[2]  # one compiled plan
    assert cache.stats.misses == 1
    assert cache.stats.hits == 2
    assert cache.stats.hit_rate == pytest.approx(2 / 3)


def test_distinct_shapes_compile_distinct_plans():
    cache = KernelPlanCache()
    cache.contraction((0, 1), (4, 5), (1, 2), (5, 3), (0, 2), (4, 3))
    cache.contraction((0, 1), (2, 5), (1, 2), (5, 3), (0, 2), (2, 3))
    assert cache.stats.misses == 2
    assert cache.stats.gemm_plans == 2


def test_perm_memoized_and_consistent():
    cache = KernelPlanCache()
    p1 = cache.perm((2, 1, 0), (0, 1, 2))
    p2 = cache.perm((2, 1, 0), (0, 1, 2))
    assert p1 == p2 == perm((2, 1, 0), (0, 1, 2)) == (2, 1, 0)
    assert cache.stats.perm_misses == 1
    assert cache.stats.perm_hits == 1


def test_perm_handles_repeated_ids():
    # diagonal block D(M, M): both dst axes carry the same index id
    assert perm((7, 7), (7, 7)) == (0, 1)


def test_perm_mismatch_raises():
    from repro.sip.config import SIPError

    with pytest.raises(SIPError, match="operand index mismatch"):
        perm((0, 1), (0, 2))
