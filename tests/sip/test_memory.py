"""Unit tests for the block memory pool."""

import pytest

from repro.sip.memory import BlockPool, OutOfBlockMemory


def test_allocate_and_free_accounting():
    pool = BlockPool(budget_bytes=10_000, real=True)
    b = pool.allocate((10, 10))  # 800 bytes
    assert pool.stats.bytes_in_use == 800
    assert pool.stats.blocks_in_use == 1
    pool.free(b)
    assert pool.stats.bytes_in_use == 0
    assert pool.stats.peak_bytes == 800


def test_buffer_reuse_in_real_mode():
    pool = BlockPool(budget_bytes=10_000, real=True)
    b1 = pool.allocate((5, 5))
    data1 = b1.data
    pool.free(b1)
    b2 = pool.allocate((5, 5))
    assert b2.data is data1  # stack reuse
    assert pool.stats.reuses == 1
    assert pool.stats.allocations == 1


def test_different_shapes_do_not_share_buffers():
    pool = BlockPool(budget_bytes=10_000, real=True)
    b1 = pool.allocate((5, 5))
    pool.free(b1)
    b2 = pool.allocate((25,))
    assert pool.stats.reuses == 0


def test_budget_enforced():
    pool = BlockPool(budget_bytes=1000, real=True)
    pool.allocate((10, 10))  # 800
    with pytest.raises(OutOfBlockMemory, match="budget"):
        pool.allocate((10, 10))


def test_model_mode_accounts_without_data():
    pool = BlockPool(budget_bytes=1000, real=False)
    b = pool.allocate((10, 10))
    assert b.data is None
    assert pool.stats.bytes_in_use == 800
    with pytest.raises(OutOfBlockMemory):
        pool.allocate((10, 10))
    pool.free(b)
    assert pool.stats.bytes_in_use == 0


def test_peak_tracks_high_water_mark():
    pool = BlockPool(budget_bytes=100_000, real=False)
    blocks = [pool.allocate((10,)) for _ in range(5)]  # 5 * 80
    for b in blocks[:3]:
        pool.free(b)
    pool.allocate((10,))
    assert pool.stats.peak_bytes == 400
    assert pool.stats.peak_blocks == 5


def test_peak_blocks_is_global_not_per_shape():
    """peak_blocks counts total live blocks across all shapes at once;
    per-shape high-water marks live in peak_by_shape."""
    pool = BlockPool(budget_bytes=100_000, real=False)
    a = pool.allocate((10,))
    b = pool.allocate((10,))
    c = pool.allocate((5, 5))
    assert pool.stats.peak_blocks == 3  # 2 of one shape + 1 of another
    assert pool.stats.peak_by_shape == {(10,): 2, (5, 5): 1}
    for blk in (a, b, c):
        pool.free(blk)
    # churning one shape raises neither peak
    d = pool.allocate((10,))
    pool.free(d)
    assert pool.stats.peak_blocks == 3
    assert pool.stats.peak_by_shape[(10,)] == 2


def test_dtype_aware_block_sizes():
    import numpy as np

    pool = BlockPool(budget_bytes=1000, real=True, dtype=np.float32)
    b = pool.allocate((10, 10))
    assert b.data.dtype == np.float32
    assert pool.stats.bytes_in_use == 400  # 100 elements x 4 B
    pool.allocate((10, 10))  # fits: two float32 blocks are 800 B
    with pytest.raises(OutOfBlockMemory):
        pool.allocate((10, 10))


def test_freed_block_loses_data_reference():
    pool = BlockPool(budget_bytes=10_000, real=True)
    b = pool.allocate((4,))
    pool.free(b)
    assert b.data is None
