"""Tests for the checkpoint store helpers and on-disk persistence."""

import numpy as np
import pytest

from repro.sial.compiler import compile_source
from repro.sip import SIPConfig, SIPError, run_source
from repro.sip.blocks import ResolvedIndexTable
from repro.sip.checkpoint import (
    array_to_store,
    checkpoint_scalars,
    load_store,
    save_store,
    store_to_array,
)

DECLS = """
sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
endsial t
"""


@pytest.fixture
def prog_and_table():
    prog = compile_source(DECLS)
    table = ResolvedIndexTable(prog, {"nb": 10}, segment_size=4)
    return prog, table


def test_array_store_roundtrip(prog_and_table):
    prog, table = prog_and_table
    value = np.arange(100.0).reshape(10, 10)
    store = {}
    array_to_store(store, prog, table, "D", value)
    assert set(store["d"]) == {(i, j) for i in (1, 2, 3) for j in (1, 2, 3)}
    back = store_to_array(store, prog, table, "D")
    assert np.array_equal(back, value)


def test_array_to_store_shape_checked(prog_and_table):
    prog, table = prog_and_table
    with pytest.raises(SIPError, match="shape"):
        array_to_store({}, prog, table, "D", np.zeros((4, 4)))


def test_store_to_array_missing(prog_and_table):
    prog, table = prog_and_table
    with pytest.raises(SIPError, match="not in the external store"):
        store_to_array({}, prog, table, "D")


def test_checkpoint_scalars_helpers():
    assert checkpoint_scalars({"__scalars__": [1.0, 2.0]}) == [1.0, 2.0]
    with pytest.raises(SIPError):
        checkpoint_scalars({})


def test_save_load_store_roundtrip(tmp_path, prog_and_table):
    prog, table = prog_and_table
    value = np.arange(100.0).reshape(10, 10)
    store = {"__scalars__": [3.5, -1.0], "__checkpoint_seq__": 2}
    array_to_store(store, prog, table, "D", value)
    path = str(tmp_path / "ckpt.npz")
    save_store(store, path)
    loaded = load_store(path)
    assert loaded["__scalars__"] == [3.5, -1.0]
    assert loaded["__checkpoint_seq__"] == 2
    assert np.array_equal(store_to_array(loaded, prog, table, "D"), value)


def test_checkpoint_survives_process_restart(tmp_path):
    """Full flow: run + checkpoint -> persist -> load -> restart run."""
    from repro.programs import library

    store = {}
    cfg = SIPConfig(workers=2, io_servers=1, segment_size=2, external_store=store)
    run_source(
        library.CHECKPOINT_DEMO, cfg, symbolics={"nb": 6, "restart": 0}
    )
    path = str(tmp_path / "demo.npz")
    save_store(store, path)

    # "new process": fresh store from disk
    reloaded = load_store(path)
    cfg2 = SIPConfig(
        workers=3, io_servers=1, segment_size=2, external_store=reloaded
    )
    res = run_source(
        library.CHECKPOINT_DEMO, cfg2, symbolics={"nb": 6, "restart": 1}
    )
    assert np.all(res.array("OUT") == 2.0)


def test_save_store_rejects_model_mode_shapes(tmp_path):
    store = {"d": {(1, 1): (4, 4)}}  # shapes, not data
    with pytest.raises(SIPError, match="model-mode"):
        save_store(store, str(tmp_path / "x.npz"))
