"""End-to-end tests for the execution fast path.

The fast path (compiled kernel plans, pre-decoded instruction stream,
copy-on-write block transport) is a pure host-side optimization: with
it on or off, a run must produce bit-identical simulated times,
scalars, and array results.  These tests pin that invariant on the
bundled drivers, and cover the copy-on-write ``Block`` semantics the
transport layer relies on.
"""

import numpy as np
import pytest

from repro.programs.drivers import _default_config, run_ccsd, run_fock_build
from repro.sip.blocks import Block


def _cfg(fastpath, **kw):
    cfg = _default_config(**kw)
    cfg.fastpath = fastpath
    return cfg


def _assert_outcomes_identical(slow, fast):
    assert slow.result.elapsed == fast.result.elapsed
    assert slow.result.scalars == fast.result.scalars
    assert np.array_equal(np.asarray(slow.value), np.asarray(fast.value))


def test_fock_build_fastpath_bit_identical():
    slow = run_fock_build(config=_cfg(False))
    fast = run_fock_build(config=_cfg(True))
    _assert_outcomes_identical(slow, fast)


def test_ccsd_fastpath_bit_identical():
    kw = dict(n_basis=4, n_occ=2, iterations=2, config=None)
    slow = run_ccsd(**{**kw, "config": _cfg(False, segment_size=3)})
    fast = run_ccsd(**{**kw, "config": _cfg(True, segment_size=3)})
    _assert_outcomes_identical(slow, fast)


def test_fastpath_stats_surface_plan_cache_and_cow():
    out = run_fock_build(config=_cfg(True))
    stats = out.result.stats
    for key in (
        "plan_cache_hits",
        "plan_cache_misses",
        "plan_cache_hit_rate",
        "plan_cache_gemm",
        "plan_cache_einsum",
        "cow_shared_payloads",
        "cow_bytes_not_copied",
        "cow_copies",
        "cow_bytes_copied",
    ):
        assert key in stats
    attempts = stats["plan_cache_hits"] + stats["plan_cache_misses"]
    assert attempts > 0
    assert stats["plan_cache_misses"] <= attempts


def test_ccsd_plan_cache_hit_rate_is_high():
    out = run_ccsd(config=_cfg(True, segment_size=3), n_basis=4, n_occ=2, iterations=3)
    stats = out.result.stats
    # every signature compiles once in the first sweep, then hits
    assert stats["plan_cache_hit_rate"] > 0.5


def test_legacy_path_reports_no_plan_cache_activity():
    out = run_fock_build(config=_cfg(False))
    stats = out.result.stats
    assert stats["plan_cache_hits"] == 0
    assert stats["plan_cache_misses"] == 0
    assert stats["cow_shared_payloads"] == 0


def test_sanitized_run_stays_clean_with_cow():
    """COW sharing must not trip the block-access sanitizer."""
    cfg = _cfg(True)
    cfg.sanitize = True
    fast = run_fock_build(config=cfg)
    slow = run_fock_build(config=_cfg(False))
    _assert_outcomes_identical(slow, fast)


# ---------------------------------------------------------------------------
# Block copy-on-write unit semantics
# ---------------------------------------------------------------------------


def test_share_aliases_buffer_until_write():
    orig = Block((2, 3), np.arange(6.0).reshape(2, 3))
    twin = orig.share()
    assert twin.data is orig.data  # zero-copy snapshot
    copied = twin.ensure_writable()
    assert copied == twin.data.nbytes
    assert twin.data is not orig.data
    twin.data[...] = -1.0
    assert orig.data[0, 0] == 0.0  # no aliasing after detach


def test_ensure_writable_is_free_when_exclusive():
    orig = Block((4,), np.ones(4))
    twin = orig.share()
    # original detaches first: twin is then the sole holder
    assert orig.ensure_writable() == orig.data.nbytes
    assert twin.ensure_writable() == 0
    assert orig.ensure_writable() == 0  # already exclusive


def test_share_chain_counts_holders():
    orig = Block((2,), np.zeros(2))
    t1 = orig.share()
    t2 = t1.share()
    assert t1.data is orig.data and t2.data is orig.data
    # three holders: first two detaches copy, the last is exclusive
    assert t1.ensure_writable() > 0
    assert t2.ensure_writable() > 0
    assert orig.ensure_writable() == 0


def test_surrender_guards_buffer_recycling():
    orig = Block((2,), np.zeros(2))
    twin = orig.share()
    assert not orig.surrender()  # twin still references the buffer
    assert twin.surrender()  # last holder out: safe to recycle


def test_model_mode_blocks_share_trivially():
    orig = Block((8, 8), None)
    twin = orig.share()
    assert twin.data is None
    assert twin.ensure_writable() == 0
    assert orig.surrender()
