"""Runtime error paths of the worker VM: misuse must fail loudly."""

import numpy as np
import pytest

from repro.sip import SIPConfig, SIPError, run_source


def cfg(**kw):
    defaults = dict(workers=2, io_servers=1, segment_size=3)
    defaults.update(kw)
    return SIPConfig(**defaults)


def wrap(decls, body):
    return f"sial t\n{decls}\n{body}\nendsial t\n"


def test_temp_block_read_before_write():
    decls = "symbolic nb\naoindex M = 1, nb\ntemp T(M, M)\ntemp U(M, M)\n"
    body = "pardo M\nU(M, M) = T(M, M)\nendpardo\n"
    with pytest.raises(SIPError, match="read before it was written"):
        run_source(wrap(decls, body), cfg(), {"nb": 6})


def test_temp_holds_only_current_block():
    # write T at one coordinate, then read it at another
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
temp T(M, N)
temp U(M, N)
"""
    body = """
pardo M
  do N
    if N == 1
      T(M, N) = 1.0
    endif
    if N == 2
      U(M, N) = T(M, N)
    endif
  enddo N
endpardo M
"""
    with pytest.raises(SIPError, match="read before it was written"):
        run_source(wrap(decls, body), cfg(workers=1), {"nb": 6})


def test_incompatible_segmentation_rejected():
    # M has range 8, L has range 6: L's segments don't match D's dims
    decls = """
symbolic nb
symbolic nl
aoindex M = 1, nb
aoindex L = 1, nl
distributed D(M, M)
temp T(L, L)
"""
    body = """
pardo L
  get D(L, L)
  T(L, L) = D(L, L)
endpardo L
"""
    with pytest.raises(SIPError, match="incompatible|outside"):
        run_source(
            wrap(decls, body),
            cfg(segment_size=4, workers=1, inputs={"D": np.zeros((8, 8))}),
            {"nb": 8, "nl": 6},
        )


def test_deallocate_of_missing_local_block():
    decls = "symbolic nb\naoindex M = 1, nb\nlocal L(M, M)\n"
    body = "pardo M\ndeallocate L(M, M)\nendpardo\n"
    with pytest.raises(SIPError, match="deallocate of missing"):
        run_source(wrap(decls, body), cfg(), {"nb": 6})


def test_execute_with_distributed_block_rejected():
    def noop(call):
        return 1.0

    decls = "symbolic nb\naoindex M = 1, nb\ndistributed D(M, M)\ntemp T(M, M)\n"
    body = """
pardo M
  T(M, M) = 1.0
  put D(M, M) = T(M, M)
  get D(M, M)
  execute noop D(M, M)
endpardo
"""
    with pytest.raises(SIPError, match="must be static/temp/local"):
        run_source(
            wrap(decls, body), cfg(superinstructions={"noop": noop}), {"nb": 6}
        )


def test_request_of_never_prepared_block():
    decls = "symbolic nb\naoindex M = 1, nb\nserved SV(M, M)\ntemp T(M, M)\n"
    body = "pardo M\nrequest SV(M, M)\nT(M, M) = SV(M, M)\nendpardo\n"
    with pytest.raises(SIPError, match="never prepared"):
        run_source(wrap(decls, body), cfg(), {"nb": 6})


def test_served_array_without_io_servers():
    decls = "symbolic nb\naoindex M = 1, nb\nserved SV(M, M)\ntemp T(M, M)\n"
    body = "pardo M\nT(M, M) = 1.0\nprepare SV(M, M) = T(M, M)\nendpardo\n"
    with pytest.raises(SIPError, match="io_servers is 0"):
        run_source(wrap(decls, body), cfg(io_servers=0), {"nb": 6})


def test_input_for_undeclared_array():
    decls = "symbolic nb\naoindex M = 1, nb\ntemp T(M, M)\n"
    with pytest.raises(SIPError, match="undeclared array"):
        run_source(
            wrap(decls, ""), cfg(inputs={"NOPE": np.zeros((6, 6))}), {"nb": 6}
        )


def test_input_for_temp_array_rejected():
    decls = "symbolic nb\naoindex M = 1, nb\ntemp T(M, M)\n"
    with pytest.raises(SIPError, match="cannot provide input"):
        run_source(
            wrap(decls, ""), cfg(inputs={"T": np.zeros((6, 6))}), {"nb": 6}
        )


def test_input_shape_mismatch():
    decls = "symbolic nb\naoindex M = 1, nb\ndistributed D(M, M)\n"
    with pytest.raises(SIPError, match="declared shape"):
        run_source(
            wrap(decls, ""), cfg(inputs={"D": np.zeros((3, 3))}), {"nb": 6}
        )


def test_unknown_super_instruction_lists_known():
    decls = "symbolic nb\naoindex M = 1, nb\ntemp T(M, M)\n"
    body = "pardo M\nT(M, M) = 0.0\nexecute ghost T(M, M)\nendpardo\n"

    def real(call):
        return None

    with pytest.raises(SIPError, match="registered: real_one"):
        run_source(
            wrap(decls, body),
            cfg(superinstructions={"real_one": real}),
            {"nb": 6},
        )


def test_array_gather_for_temp_rejected():
    decls = "symbolic nb\naoindex M = 1, nb\ntemp T(M, M)\nscalar x\n"
    res = run_source(wrap(decls, "x = 1.0\n"), cfg(), {"nb": 6})
    with pytest.raises(SIPError, match="persist"):
        res.array("T")


def test_list_to_blocks_without_store_entry():
    decls = "symbolic nb\naoindex M = 1, nb\ndistributed D(M, M)\n"
    body = "list_to_blocks D\n"
    with pytest.raises(SIPError, match="no serialized data"):
        run_source(wrap(decls, body), cfg(), {"nb": 6})
