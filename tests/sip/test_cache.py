"""Unit tests for the LRU block cache."""

import pytest

from repro.simmpi import Simulator
from repro.sip.blocks import Block, BlockId
from repro.sip.cache import BlockCache
from repro.sip.config import SIPError


def bid(i):
    return BlockId(0, (i,))


def ready(cache, i, dirty=False):
    return cache.insert_ready(bid(i), Block((2,), None), dirty=dirty)


def test_insert_and_lookup():
    cache = BlockCache(4)
    ready(cache, 1)
    assert cache.lookup(bid(1)) is not None
    assert cache.lookup(bid(2)) is None


def test_lru_eviction_order():
    cache = BlockCache(3)
    for i in (1, 2, 3):
        ready(cache, i)
    cache.lookup(bid(1))  # touch 1 -> 2 is now LRU
    ready(cache, 4)
    assert bid(2) not in cache
    assert bid(1) in cache
    assert cache.stats.evictions == 1


def test_capacity_never_exceeded():
    cache = BlockCache(3)
    for i in range(10):
        ready(cache, i)
    assert len(cache) <= 3


def test_pending_entries_not_evicted():
    sim = Simulator()
    cache = BlockCache(2)
    cache.insert_pending(bid(1), sim.event())
    cache.insert_pending(bid(2), sim.event())
    with pytest.raises(SIPError, match="cache full"):
        cache.insert_pending(bid(3), sim.event())


def test_dirty_entries_not_evicted():
    cache = BlockCache(2)
    ready(cache, 1, dirty=True)
    ready(cache, 2, dirty=True)
    with pytest.raises(SIPError, match="cache full"):
        ready(cache, 3)


def test_pinned_entries_not_evicted():
    cache = BlockCache(2)
    ready(cache, 1)
    cache.pin(bid(1))
    ready(cache, 2)
    ready(cache, 3)  # must evict 2, not pinned 1
    assert bid(1) in cache
    assert bid(2) not in cache
    cache.unpin(bid(1))


def test_fulfil_completes_pending():
    sim = Simulator()
    cache = BlockCache(4)
    ev = sim.event()
    entry = cache.insert_pending(bid(1), ev)
    assert entry.pending
    block = Block((2,), None)
    cache.fulfil(bid(1), block)
    assert not entry.pending
    assert entry.block is block


def test_fulfil_after_eviction_is_noop():
    sim = Simulator()
    cache = BlockCache(4)
    cache.insert_pending(bid(1), sim.event())
    cache.remove(bid(1))
    cache.fulfil(bid(1), Block((2,), None))  # must not raise
    assert bid(1) not in cache


def test_evicted_before_use_counted():
    cache = BlockCache(2)
    ready(cache, 1)
    cache.record_use(bid(1), hit=True)  # used
    ready(cache, 2)  # never used
    ready(cache, 3)  # evicts 1 (LRU)... 1 was used
    ready(cache, 4)  # evicts 2, unused
    assert cache.stats.evictions == 2
    assert cache.stats.evicted_before_use == 1


def test_clear_clean_spares_dirty_and_pending():
    sim = Simulator()
    cache = BlockCache(5)
    ready(cache, 1)
    ready(cache, 2, dirty=True)
    cache.insert_pending(bid(3), sim.event())
    cache.clear_clean()
    assert bid(1) not in cache
    assert bid(2) in cache
    assert bid(3) in cache


def test_duplicate_pending_insert_rejected():
    sim = Simulator()
    cache = BlockCache(4)
    cache.insert_pending(bid(1), sim.event())
    with pytest.raises(SIPError, match="duplicate"):
        cache.insert_pending(bid(1), sim.event())


def test_hit_miss_stats():
    cache = BlockCache(4)
    ready(cache, 1)
    cache.record_use(bid(1), hit=True)
    cache.record_use(bid(2), hit=False)
    cache.mark_refetch(bid(2))
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.refetches == 1


def test_insert_ready_updates_existing():
    cache = BlockCache(4)
    ready(cache, 1)
    b2 = Block((3,), None)
    cache.insert_ready(bid(1), b2)
    assert cache.lookup(bid(1)).block is b2
    assert len(cache) == 1


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        BlockCache(0)


def test_insert_ready_fires_pending_arrival():
    """A ready insert over a pending entry must wake fetch waiters.

    Regression test: insert_ready used to null out the pending entry's
    arrival event without triggering it, so a coroutine parked on the
    fetch slept forever.
    """
    sim = Simulator()
    cache = BlockCache(4)
    arrival = sim.event()
    cache.insert_pending(bid(1), arrival)
    woke = []

    def waiter():
        value = yield arrival
        woke.append(value)

    sim.spawn(waiter())
    block = Block((2,), None)
    entry = cache.insert_ready(bid(1), block)
    assert not entry.pending
    assert entry.arrival is None
    sim.run()
    assert woke == [block]


def test_insert_ready_over_fulfilled_entry_does_not_retrigger():
    """fulfil() fires the arrival elsewhere; a later insert_ready on the
    same entry must not try to trigger the already-fired event."""
    sim = Simulator()
    cache = BlockCache(4)
    arrival = sim.event()
    cache.insert_pending(bid(1), arrival)
    arrival.succeed(Block((2,), None))
    cache.fulfil(bid(1), Block((2,), None))
    cache.insert_ready(bid(1), Block((3,), None))  # must not raise
    sim.run()


def test_all_pinned_cache_cannot_make_room():
    cache = BlockCache(2)
    for i in (1, 2):
        ready(cache, i)
        cache.pin(bid(i))
    with pytest.raises(SIPError, match="cache full"):
        ready(cache, 3)
    # the failed insert must not have disturbed the pinned entries
    assert len(cache) == 2
    for i in (1, 2):
        cache.unpin(bid(i))


def test_remove_pending_entry_with_outstanding_arrival():
    """Evicting an in-flight entry must leave its arrival event usable.

    The fetch coroutine is still parked on the event; when the reply
    lands, fulfil() must be a no-op and the event must still fire.
    """
    sim = Simulator()
    cache = BlockCache(4)
    arrival = sim.event()
    cache.insert_pending(bid(1), arrival)
    woke = []

    def waiter():
        woke.append((yield arrival))

    sim.spawn(waiter())
    cache.remove(bid(1))
    assert cache.pending_count == 0
    block = Block((2,), None)
    cache.fulfil(bid(1), block)  # entry gone: must not resurrect it
    assert bid(1) not in cache
    arrival.succeed(block)  # the reply path still completes the fetch
    sim.run()
    assert woke == [block]


def test_unpin_after_remove_is_an_error():
    cache = BlockCache(4)
    ready(cache, 1)
    cache.pin(bid(1))
    # removing a pinned entry is a protocol violation the cache cannot
    # see (remove doesn't check pins); the later unpin must report it
    cache.remove(bid(1))
    with pytest.raises(SIPError, match="not cached"):
        cache.unpin(bid(1))


def test_unpin_of_never_pinned_entry_is_an_error():
    cache = BlockCache(4)
    ready(cache, 1)
    with pytest.raises(SIPError, match="unpinned"):
        cache.unpin(bid(1))


def test_evict_for_pressure_skips_dirty_pending_pinned():
    sim = Simulator()
    cache = BlockCache(
        8, nbytes_of=lambda block_id: 16
    )
    ready(cache, 1)  # clean: evictable
    ready(cache, 2, dirty=True)
    cache.insert_pending(bid(3), sim.event())
    ready(cache, 4)
    cache.pin(bid(4))
    ready(cache, 5)  # clean: evictable
    freed, count = cache.evict_for_pressure(1000)
    assert count == 2
    assert freed == 32
    assert bid(2) in cache and bid(3) in cache and bid(4) in cache
    assert cache.bytes_in_use == 48


def test_clear_clean_accounts_evictions():
    """Regression test: clear_clean used to delete entries directly,
    bypassing the eviction stats and the on_evict callback that
    _make_room evictions go through."""
    evicted = []
    cache = BlockCache(5, on_evict=lambda key, entry: evicted.append(key))
    ready(cache, 1)
    cache.record_use(bid(1), hit=True)
    ready(cache, 2)  # never used
    ready(cache, 3, dirty=True)  # spared
    cache.clear_clean()
    assert evicted == [bid(1), bid(2)]
    assert cache.stats.evictions == 2
    assert cache.stats.evicted_before_use == 1
    assert bid(3) in cache
