"""Unit tests for profile aggregation and reporting."""

import pytest

from repro.sial.compiler import compile_source
from repro.sip.profiling import InstrStats, PardoStats, RunProfile, WorkerProfile


def make_worker(instrs, pardos=None, elapsed=1.0):
    w = WorkerProfile()
    for pc, busy, wait in instrs:
        w.record_instr(pc, busy, wait)
    for pid, (iters, pelapsed, pwait) in (pardos or {}).items():
        stats = w.pardo_stats(pid)
        stats.iterations = iters
        stats.elapsed = pelapsed
        stats.wait_time = pwait
        stats.entries = 1
    w.elapsed = elapsed
    return w


def test_record_instr_accumulates():
    w = make_worker([(5, 1.0, 0.5), (5, 2.0, 0.0), (7, 0.5, 0.5)])
    assert w.instr[5].count == 2
    assert w.instr[5].busy_time == 3.0
    assert w.instr[5].wait_time == 0.5
    assert w.total_busy == 3.5
    assert w.total_wait == 1.0


def test_wait_fraction_average_over_workers():
    w1 = make_worker([(0, 0.8, 0.2)], elapsed=1.0)
    w2 = make_worker([(0, 0.4, 0.6)], elapsed=1.0)
    profile = RunProfile(workers=[w1, w2], elapsed=1.0)
    assert profile.wait_fraction == pytest.approx((0.2 + 0.6) / 2)


def test_wait_fraction_empty_profile():
    assert RunProfile(workers=[], elapsed=0.0).wait_fraction == 0.0


def test_hotspots_ranked_by_total_time():
    w = make_worker([(1, 5.0, 0.0), (2, 1.0, 0.0), (3, 2.0, 6.0)])
    profile = RunProfile(workers=[w], elapsed=10.0)
    ranked = profile.hotspots(limit=2)
    assert [pc for pc, _ in ranked] == [3, 1]


def test_hotspots_merged_across_workers():
    w1 = make_worker([(1, 1.0, 0.0)])
    w2 = make_worker([(1, 2.0, 0.5)])
    profile = RunProfile(workers=[w1, w2], elapsed=3.0)
    (pc, stats), = profile.hotspots(limit=1)
    assert pc == 1
    assert stats.count == 2
    assert stats.busy_time == 3.0
    assert stats.wait_time == 0.5


def test_pardo_totals_max_elapsed_sum_waits():
    w1 = make_worker([], pardos={0: (10, 2.0, 0.1)})
    w2 = make_worker([], pardos={0: (12, 3.0, 0.2)})
    profile = RunProfile(workers=[w1, w2], elapsed=3.0)
    totals = profile.pardo_totals()
    assert totals[0].iterations == 22
    assert totals[0].elapsed == 3.0  # max across workers
    assert totals[0].wait_time == pytest.approx(0.3)


def test_report_maps_pcs_to_source_lines():
    prog = compile_source(
        "sial t\nsymbolic nb\naoindex M = 1, nb\ntemp T(M, M)\n"
        "pardo M\nT(M, M) = 1.0\nendpardo\nendsial t\n"
    )
    fill_pc = [i for i, ins in enumerate(prog.instructions) if ins.op == "FILL"][0]
    w = make_worker([(fill_pc, 1.0, 0.0)])
    profile = RunProfile(workers=[w], elapsed=1.0, program=prog)
    text = profile.report()
    assert "FILL" in text
    assert "line 6" in text


def test_report_without_program_still_renders():
    w = make_worker([(0, 1.0, 0.0)])
    text = RunProfile(workers=[w], elapsed=1.0).report()
    assert "pc=0" in text


def test_by_line_merges_instructions_on_same_source_line():
    prog = compile_source(
        "sial t\nsymbolic nb\naoindex M = 1, nb\ntemp T(M, M)\n"
        "pardo M\nT(M, M) = 1.0\nT(M, M) += 2.0\nendpardo\nendsial t\n"
    )
    fills = [i for i, ins in enumerate(prog.instructions) if ins.op == "FILL"]
    assert len(fills) == 2
    w = make_worker([(fills[0], 1.0, 0.25), (fills[1], 2.0, 0.25)])
    profile = RunProfile(workers=[w], elapsed=3.0, program=prog)
    lines = profile.by_line()
    # the two assignments live on source lines 6 and 7
    assert lines[6].count == 1 and lines[6].busy_time == 1.0
    assert lines[7].count == 1 and lines[7].busy_time == 2.0


def test_by_line_without_program_groups_under_none():
    w = make_worker([(0, 1.0, 0.0), (5, 2.0, 0.5)])
    profile = RunProfile(workers=[w], elapsed=3.0)
    lines = profile.by_line()
    assert set(lines) == {None}
    assert lines[None].count == 2
    assert lines[None].busy_time == 3.0
    assert lines[None].wait_time == 0.5
