"""Unit tests for pardo iteration enumeration and chunk scheduling."""

import pytest

from repro.sial.compiler import compile_source
from repro.sip.blocks import ResolvedIndexTable
from repro.sip.scheduler import (
    GuidedScheduler,
    LocalityScheduler,
    SchedStats,
    StaticScheduler,
    enumerate_pardo,
    make_scheduler,
)


def pardo_args(body, n=8, seg=4):
    prog = compile_source(
        f"sial t\nsymbolic nb\naoindex M = 1, nb\naoindex N = 1, nb\n{body}\nendsial t\n"
    )
    table = ResolvedIndexTable(prog, {"nb": n}, segment_size=seg)
    start = [i for i in prog.instructions if i.op == "PARDO_START"][0]
    _pid, index_ids, conds, _exit, _gets = start.args
    return table, index_ids, conds


def test_enumerate_full_product():
    table, ids, conds = pardo_args("pardo M, N\nendpardo\n")
    iters = enumerate_pardo(table, ids, conds)
    assert iters == [(1, 1), (1, 2), (2, 1), (2, 2)]


def test_enumerate_with_where_clause():
    table, ids, conds = pardo_args("pardo M, N where M < N\nendpardo\n")
    iters = enumerate_pardo(table, ids, conds)
    assert iters == [(1, 2)]


def test_enumerate_with_symbolic_in_where():
    table, ids, conds = pardo_args(
        "pardo M, N where M < nb\nendpardo\n", n=8, seg=4
    )
    # n = 8, segments = 2, M < 8 always true
    assert len(enumerate_pardo(table, ids, conds)) == 4


def test_enumerate_multiple_conditions_conjunction():
    table, ids, conds = pardo_args(
        "pardo M, N where M < N, N < 2\nendpardo\n"
    )
    assert enumerate_pardo(table, ids, conds) == []


def test_guided_chunks_cover_everything_once():
    iters = [(i,) for i in range(100)]
    sched = GuidedScheduler(iters, workers=4, chunk_factor=2)
    seen = []
    while not sched.done:
        chunk = sched.next_chunk()
        assert chunk
        seen.extend(chunk)
    assert seen == iters
    assert sched.next_chunk() == []


def test_guided_chunk_sizes_non_increasing():
    sched = GuidedScheduler([(i,) for i in range(1000)], workers=8, chunk_factor=2)
    sizes = []
    while not sched.done:
        sizes.append(len(sched.next_chunk()))
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[0] > sizes[-1]
    assert sizes[-1] == 1


def test_guided_first_chunk_fraction():
    sched = GuidedScheduler([(i,) for i in range(160)], workers=4, chunk_factor=2)
    assert len(sched.next_chunk()) == 20  # 160 / (2*4)


def test_guided_empty_iteration_space():
    sched = GuidedScheduler([], workers=4)
    assert sched.done
    assert sched.next_chunk() == []


def test_static_scheduler_partitions_equally():
    iters = [(i,) for i in range(12)]
    sched = StaticScheduler(iters, workers=3)
    chunks = [sched.next_chunk_for(w) for w in range(3)]
    assert [len(c) for c in chunks] == [4, 4, 4]
    assert sum(chunks, []) == iters
    # second request yields nothing
    assert sched.next_chunk_for(0) == []


def test_static_scheduler_uneven():
    sched = StaticScheduler([(i,) for i in range(10)], workers=4)
    sizes = [len(sched.next_chunk_for(w)) for w in range(4)]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 3


def test_make_scheduler_dispatch():
    assert isinstance(make_scheduler("guided", [], 2, 2), GuidedScheduler)
    assert isinstance(make_scheduler("static", [], 2, 2), StaticScheduler)
    assert isinstance(make_scheduler("locality", [], 2, 2), LocalityScheduler)
    with pytest.raises(ValueError):
        make_scheduler("magic", [], 2, 2)


def test_make_scheduler_passes_min_chunk_through():
    # regression: min_chunk used to be silently dropped on the way from
    # the config to the scheduler
    iters = [(i,) for i in range(100)]
    sched = make_scheduler("guided", iters, workers=4, chunk_factor=2, min_chunk=25)
    assert sched.min_chunk == 25
    assert len(sched.next_chunk()) == 25  # guided size would be 13
    loc = make_scheduler("locality", iters, workers=4, chunk_factor=2, min_chunk=25)
    assert loc.min_chunk == 25
    assert len(loc.next_chunk_for(0)) == 25


def test_make_scheduler_shares_stats_object():
    stats = SchedStats(policy="guided")
    sched = make_scheduler("guided", [(i,) for i in range(10)], 2, 2, stats=stats)
    sched.next_chunk()
    assert stats.chunks == 1 and stats.iterations > 0


def test_guided_min_chunk_bounds_tail():
    sched = GuidedScheduler([(i,) for i in range(20)], workers=2, min_chunk=4)
    sizes = []
    while not sched.done:
        sizes.append(len(sched.next_chunk()))
    assert sum(sizes) == 20
    # every chunk but the ragged last one respects the floor
    assert all(s >= 4 for s in sizes[:-1])


def test_locality_serves_own_queue_first():
    iters = [(i,) for i in range(8)]
    preferred = [0, 0, 0, 0, 1, 1, 1, 1]
    sched = LocalityScheduler(iters, workers=2, preferred=preferred)
    c0 = sched.next_chunk_for(0)
    c1 = sched.next_chunk_for(1)
    assert all(i < (4,) for i in c0)
    assert all(i >= (4,) for i in c1)
    assert sched.stats.locality_hits == len(c0) + len(c1)
    assert sched.stats.locality_misses == 0
    assert sched.stats.steals == 0


def test_locality_covers_everything_once_despite_skew():
    # all iterations prefer worker 0; workers 1/2 must steal
    iters = [(i,) for i in range(60)]
    sched = LocalityScheduler(iters, workers=3, preferred=[0] * 60)
    served = []
    active = {0, 1, 2}
    order = [1, 2, 0]  # thieves ask first
    while active:
        for w in list(order):
            if w not in active:
                continue
            chunk = sched.next_chunk_for(w)
            if not chunk:
                active.discard(w)
            else:
                served.extend(chunk)
    assert sorted(served) == iters
    assert sched.stats.steals > 0
    assert sched.stats.stolen_iterations > 0
    assert sched.stats.locality_hits + sched.stats.locality_misses == 60


def test_locality_steals_tail_of_largest_queue():
    iters = [(i,) for i in range(10)]
    # worker 0 owns everything, worker 1 owns nothing
    sched = LocalityScheduler(
        iters, workers=2, preferred=[0] * 10, chunk_factor=5, min_chunk=1
    )
    chunk = sched.next_chunk_for(1)
    # the thief takes half of worker 0's queue, coldest (tail) first,
    # but receives it in enumeration order
    assert chunk == [(5,), (6,), (7,), (8,), (9,)][: len(chunk)]
    assert chunk[0] == (5,)
    assert sched.stats.steals == 1
    # worker 0 still gets its warm head
    assert sched.next_chunk_for(0)[0] == (0,)


def test_locality_round_robins_without_preferences():
    iters = [(i,) for i in range(6)]
    sched = LocalityScheduler(iters, workers=3)
    assert sched._home == [0, 1, 2, 0, 1, 2]


def test_locality_rejects_bad_preference_map():
    with pytest.raises(ValueError):
        LocalityScheduler([(0,), (1,)], workers=2, preferred=[0])
    with pytest.raises(ValueError):
        LocalityScheduler([(0,), (1,)], workers=2, preferred=[0, 5])


def test_locality_empty_iteration_space():
    sched = LocalityScheduler([], workers=2)
    assert sched.done
    assert sched.next_chunk_for(0) == []
    assert sched.next_chunk_for(1) == []
