"""Unit tests for pardo iteration enumeration and chunk scheduling."""

import pytest

from repro.sial.compiler import compile_source
from repro.sip.blocks import ResolvedIndexTable
from repro.sip.scheduler import (
    GuidedScheduler,
    StaticScheduler,
    enumerate_pardo,
    make_scheduler,
)


def pardo_args(body, n=8, seg=4):
    prog = compile_source(
        f"sial t\nsymbolic nb\naoindex M = 1, nb\naoindex N = 1, nb\n{body}\nendsial t\n"
    )
    table = ResolvedIndexTable(prog, {"nb": n}, segment_size=seg)
    start = [i for i in prog.instructions if i.op == "PARDO_START"][0]
    _pid, index_ids, conds, _exit, _gets = start.args
    return table, index_ids, conds


def test_enumerate_full_product():
    table, ids, conds = pardo_args("pardo M, N\nendpardo\n")
    iters = enumerate_pardo(table, ids, conds)
    assert iters == [(1, 1), (1, 2), (2, 1), (2, 2)]


def test_enumerate_with_where_clause():
    table, ids, conds = pardo_args("pardo M, N where M < N\nendpardo\n")
    iters = enumerate_pardo(table, ids, conds)
    assert iters == [(1, 2)]


def test_enumerate_with_symbolic_in_where():
    table, ids, conds = pardo_args(
        "pardo M, N where M < nb\nendpardo\n", n=8, seg=4
    )
    # n = 8, segments = 2, M < 8 always true
    assert len(enumerate_pardo(table, ids, conds)) == 4


def test_enumerate_multiple_conditions_conjunction():
    table, ids, conds = pardo_args(
        "pardo M, N where M < N, N < 2\nendpardo\n"
    )
    assert enumerate_pardo(table, ids, conds) == []


def test_guided_chunks_cover_everything_once():
    iters = [(i,) for i in range(100)]
    sched = GuidedScheduler(iters, workers=4, chunk_factor=2)
    seen = []
    while not sched.done:
        chunk = sched.next_chunk()
        assert chunk
        seen.extend(chunk)
    assert seen == iters
    assert sched.next_chunk() == []


def test_guided_chunk_sizes_non_increasing():
    sched = GuidedScheduler([(i,) for i in range(1000)], workers=8, chunk_factor=2)
    sizes = []
    while not sched.done:
        sizes.append(len(sched.next_chunk()))
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[0] > sizes[-1]
    assert sizes[-1] == 1


def test_guided_first_chunk_fraction():
    sched = GuidedScheduler([(i,) for i in range(160)], workers=4, chunk_factor=2)
    assert len(sched.next_chunk()) == 20  # 160 / (2*4)


def test_guided_empty_iteration_space():
    sched = GuidedScheduler([], workers=4)
    assert sched.done
    assert sched.next_chunk() == []


def test_static_scheduler_partitions_equally():
    iters = [(i,) for i in range(12)]
    sched = StaticScheduler(iters, workers=3)
    chunks = [sched.next_chunk_for(w) for w in range(3)]
    assert [len(c) for c in chunks] == [4, 4, 4]
    assert sum(chunks, []) == iters
    # second request yields nothing
    assert sched.next_chunk_for(0) == []


def test_static_scheduler_uneven():
    sched = StaticScheduler([(i,) for i in range(10)], workers=4)
    sizes = [len(sched.next_chunk_for(w)) for w in range(4)]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 3


def test_make_scheduler_dispatch():
    assert isinstance(make_scheduler("guided", [], 2, 2), GuidedScheduler)
    assert isinstance(make_scheduler("static", [], 2, 2), StaticScheduler)
    with pytest.raises(ValueError):
        make_scheduler("magic", [], 2, 2)
