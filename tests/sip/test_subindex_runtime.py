"""Runtime tests for subindex slicing, including distributed operands."""

import numpy as np
import pytest

from repro.sial import SemanticError, compile_source
from repro.sip import SIPConfig, run_source


def test_slice_of_distributed_block_after_get():
    """get fetches the whole block; subindexed reads slice it locally."""
    src = """
sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
subindex MM of M
distributed D(M, N)
distributed OUT(MM, N)
temp TS(MM, N)

pardo M, N
  get D(M, N)
  do MM in M
    TS(MM, N) = D(MM, N)
    TS(MM, N) *= 2.0
    put OUT(MM, N) = TS(MM, N)
  enddo MM
endpardo M, N
endsial t
"""
    rng = np.random.default_rng(1)
    d = rng.standard_normal((8, 8))
    cfg = SIPConfig(
        workers=3,
        io_servers=1,
        segment_size=4,
        subsegments_per_segment=2,
        inputs={"D": d},
    )
    res = run_source(src, cfg, {"nb": 8})
    assert np.allclose(res.array("OUT"), 2.0 * d)


def test_slice_read_without_get_still_rejected():
    src = """
sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
subindex MM of M
distributed D(M, N)
temp TS(MM, N)

pardo M, N
  do MM in M
    TS(MM, N) = D(MM, N)
  enddo MM
endpardo M, N
endsial t
"""
    with pytest.raises(SemanticError, match="without a preceding 'get'"):
        compile_source(src)


def test_subindexed_distributed_array_roundtrip():
    """An array *declared* with subindex dims distributes sub-blocks."""
    src = """
sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
subindex MM of M
distributed DSUB(MM, N)
distributed OUT(MM, N)
temp T(MM, N)

pardo N
  do M
    do MM in M
      get DSUB(MM, N)
      T(MM, N) = DSUB(MM, N)
      put OUT(MM, N) = T(MM, N)
    enddo MM
  enddo M
endpardo N
endsial t
"""
    rng = np.random.default_rng(2)
    d = rng.standard_normal((9, 9))
    cfg = SIPConfig(
        workers=2,
        io_servers=1,
        segment_size=3,
        subsegments_per_segment=3,
        inputs={"DSUB": d},
    )
    res = run_source(src, cfg, {"nb": 9})
    assert np.allclose(res.array("OUT"), d)


def test_insertion_into_existing_block():
    """Paper's insertion direction: subblock written back into a block."""
    src = """
sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
subindex MM of M
distributed OUT(M, N)
temp TI(M, N)
temp TS(MM, N)

pardo M, N
  TI(M, N) = 1.0
  do MM in M
    TS(MM, N) = TI(MM, N)
    TS(MM, N) *= 5.0
    TI(MM, N) = TS(MM, N)
  enddo MM
  put OUT(M, N) = TI(M, N)
endpardo M, N
endsial t
"""
    cfg = SIPConfig(
        workers=2, io_servers=1, segment_size=4, subsegments_per_segment=2
    )
    res = run_source(src, cfg, {"nb": 8})
    assert np.all(res.array("OUT") == 5.0)


def test_contraction_with_sliced_operands():
    """Sliced blocks feed contractions directly (Section IV-E usage)."""
    src = """
sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex K = 1, nb
subindex MM of M
distributed A(M, K)
distributed B(K, N)
distributed OUT(MM, N)
temp TA(MM, K)
temp TC(MM, N)

pardo M, N
  do MM in M
    TC(MM, N) = 0.0
    do K
      get A(M, K)
      TA(MM, K) = A(MM, K)
      get B(K, N)
      TC(MM, N) += TA(MM, K) * B(K, N)
    enddo K
    put OUT(MM, N) = TC(MM, N)
  enddo MM
endpardo M, N
endsial t
"""
    rng = np.random.default_rng(3)
    a = rng.standard_normal((8, 8))
    b = rng.standard_normal((8, 8))
    cfg = SIPConfig(
        workers=3,
        io_servers=1,
        segment_size=4,
        subsegments_per_segment=2,
        inputs={"A": a, "B": b},
    )
    res = run_source(src, cfg, {"nb": 8})
    assert np.allclose(res.array("OUT"), a @ b)
