"""Tests for the execution-trace recorder."""

import numpy as np

from repro.sial.bytecode import Op
from repro.sip import SIPConfig, run_source
from repro.sip.tracing import TraceRecorder

SRC = """
sial trace_probe
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
temp TC(M, N)

pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  put C(M, N) = TC(M, N)
endpardo M, N
sip_barrier
endsial trace_probe
"""


def run_traced(workers=3, sanitize=False):
    tracer = TraceRecorder()
    rng = np.random.default_rng(0)
    a, b = rng.standard_normal((8, 8)), rng.standard_normal((8, 8))
    cfg = SIPConfig(
        workers=workers,
        io_servers=1,
        segment_size=4,
        tracer=tracer,
        inputs={"A": a, "B": b},
        sanitize=sanitize,
    )
    res = run_source(SRC, cfg, symbolics={"nb": 8})
    return tracer, res


def test_events_recorded_with_kinds():
    tracer, _ = run_traced()
    counts = tracer.op_counts()
    assert counts[Op.CONTRACT] == 8  # 4 blocks x 2 L-blocks
    assert counts[Op.FILL] == 4
    assert counts[Op.PUT] == 4
    assert counts[Op.SIP_BARRIER] == 3  # one per worker


def test_event_times_ordered_and_within_run():
    tracer, res = run_traced()
    for e in tracer.events:
        assert 0.0 <= e.start <= e.end
        assert e.end <= res.elapsed + 1e-9
        assert e.wait >= 0.0
        assert e.busy >= -1e-12


def test_busy_wait_totals_match_profile():
    tracer, res = run_traced()
    # traced totals agree with the profile (both built from the same data)
    assert abs(tracer.total_wait() - res.profile.total_wait) < 1e-9


def test_timeline_renders_all_workers():
    tracer, _ = run_traced(workers=3)
    text = tracer.timeline(width=40)
    assert "w0" in text and "w1" in text and "w2" in text
    assert "#" in text  # contraction glyph somewhere


def test_report_lists_counts():
    tracer, _ = run_traced()
    report = tracer.report()
    assert "CONTRACT" in report
    assert "total busy" in report


def test_empty_recorder_renders_placeholder():
    tracer = TraceRecorder()
    assert "no events" in tracer.timeline()
    assert tracer.span() == (0.0, 0.0)


def test_per_worker_query():
    tracer, _ = run_traced(workers=2)
    all_events = len(tracer.events)
    assert len(tracer.for_worker(0)) + len(tracer.for_worker(1)) == all_events


def test_events_carry_source_lines():
    tracer, _ = run_traced()
    assert tracer.events
    for e in tracer.events:
        assert e.line is not None
    # the contraction `TC(M, N) += A(M, L) * B(L, N)` is on line 17
    contract_lines = {e.line for e in tracer.events if e.op == Op.CONTRACT}
    assert contract_lines == {17}


def test_record_without_line_defaults_to_none():
    tracer = TraceRecorder()
    tracer.record(0, 3, Op.FILL, 0.0, 1.0, 0.0)
    assert tracer.events[0].line is None


def test_sanitizer_off_and_on_trace_identically():
    """The sanitizer is pure bookkeeping: identical events either way."""
    plain, res_plain = run_traced(sanitize=False)
    sanitized, res_san = run_traced(sanitize=True)
    assert plain.events == sanitized.events
    assert res_plain.elapsed == res_san.elapsed
    assert res_san.sanitizer_report is not None
    assert res_san.sanitizer_report.ok
