"""Unit tests for the super-instruction kernels (real and model)."""

import numpy as np
import pytest

from repro.costmodel import CostModel
from repro.machines import LAPTOP
from repro.sip.backend import KernelOperand, ModelBackend, RealBackend, make_backend


@pytest.fixture
def real():
    return RealBackend(CostModel(LAPTOP))


@pytest.fixture
def model():
    return ModelBackend(CostModel(LAPTOP))


def op(data, ids):
    data = np.ascontiguousarray(data, dtype=np.float64)
    return KernelOperand(shape=data.shape, index_ids=tuple(ids), data=data)


def out(shape, ids):
    return KernelOperand(
        shape=shape, index_ids=tuple(ids), data=np.zeros(shape, dtype=np.float64)
    )


def test_fill_assign_and_accumulate(real):
    dst = out((3, 3), (0, 1))
    real.fill(dst, 2.5, "=")
    assert np.all(dst.data == 2.5)
    real.fill(dst, 1.0, "+=")
    assert np.all(dst.data == 3.5)
    real.fill(dst, 0.5, "-=")
    assert np.all(dst.data == 3.0)


def test_copy_identity_and_permute(real):
    rng = np.random.default_rng(1)
    src = rng.standard_normal((3, 4))
    dst = out((3, 4), (0, 1))
    real.copy(dst, op(src, (0, 1)))
    assert np.array_equal(dst.data, src)
    dst_t = out((4, 3), (1, 0))
    real.copy(dst_t, op(src, (0, 1)))
    assert np.array_equal(dst_t.data, src.T)


def test_copy_4d_permutation(real):
    rng = np.random.default_rng(2)
    src = rng.standard_normal((2, 3, 4, 5))
    # V1(K,J,I,L) = V2(I,J,K,L) style permutation
    dst = out((4, 3, 2, 5), (2, 1, 0, 3))
    real.copy(dst, op(src, (0, 1, 2, 3)))
    assert np.array_equal(dst.data, src.transpose(2, 1, 0, 3))


def test_accumulate_with_permutation(real):
    rng = np.random.default_rng(3)
    a = rng.standard_normal((3, 4))
    dst_data = rng.standard_normal((4, 3))
    dst = op(dst_data.copy(), (1, 0))
    real.accumulate(dst, "+=", op(a, (0, 1)))
    assert np.allclose(dst.data, dst_data + a.T)
    real.accumulate(dst, "-=", op(a, (0, 1)))
    assert np.allclose(dst.data, dst_data)


def test_scale_ops(real):
    a = np.ones((2, 2))
    dst = out((2, 2), (0, 1))
    real.scale(dst, "=", op(a, (0, 1)), 3.0)
    assert np.all(dst.data == 3.0)
    real.scale(dst, "+=", op(a, (0, 1)), 2.0)
    assert np.all(dst.data == 5.0)
    real.scale_inplace(dst, 0.5)
    assert np.all(dst.data == 2.5)


def test_negate(real):
    a = np.arange(6.0).reshape(2, 3)
    dst = out((3, 2), (1, 0))
    real.negate(dst, op(a, (0, 1)))
    assert np.array_equal(dst.data, -a.T)


def test_addsub(real):
    a = np.full((2, 2), 3.0)
    b = np.full((2, 2), 1.0)
    dst = out((2, 2), (0, 1))
    real.addsub(dst, "+", op(a, (0, 1)), op(b, (0, 1)))
    assert np.all(dst.data == 4.0)
    real.addsub(dst, "-", op(a, (0, 1)), op(b, (0, 1)))
    assert np.all(dst.data == 2.0)


def test_contract_matrix_multiply(real):
    rng = np.random.default_rng(4)
    a = rng.standard_normal((3, 5))
    b = rng.standard_normal((5, 4))
    dst = out((3, 4), (0, 2))
    real.contract(dst, "=", op(a, (0, 1)), op(b, (1, 2)))
    assert np.allclose(dst.data, a @ b)


def test_contract_4d_paper_term(real):
    rng = np.random.default_rng(5)
    v = rng.standard_normal((2, 3, 4, 5))  # V(M,N,L,S)
    t = rng.standard_normal((4, 5, 2, 3))  # T(L,S,I,J)
    dst = out((2, 3, 2, 3), (0, 1, 4, 5))
    real.contract(dst, "=", op(v, (0, 1, 2, 3)), op(t, (2, 3, 4, 5)))
    ref = np.einsum("mnls,lsij->mnij", v, t)
    assert np.allclose(dst.data, ref)


def test_contract_accumulate(real):
    a = np.eye(3)
    b = np.eye(3)
    dst_data = np.ones((3, 3))
    dst = op(dst_data, (0, 2))
    real.contract(dst, "+=", op(a, (0, 1)), op(b, (1, 2)))
    assert np.allclose(dst.data, np.ones((3, 3)) + np.eye(3))
    real.contract(dst, "-=", op(a, (0, 1)), op(b, (1, 2)))
    assert np.allclose(dst.data, np.ones((3, 3)))


def test_contract_outer_product(real):
    a = np.array([1.0, 2.0])
    b = np.array([3.0, 4.0, 5.0])
    dst = out((2, 3), (0, 1))
    real.contract(dst, "=", op(a, (0,)), op(b, (1,)))
    assert np.allclose(dst.data, np.outer(a, b))


def test_scalar_contract_full(real):
    rng = np.random.default_rng(6)
    a = rng.standard_normal((3, 4))
    b = rng.standard_normal((4, 3))
    value, cost = real.scalar_contract(op(a, (0, 1)), op(b, (1, 0)))
    assert value == pytest.approx(float(np.sum(a * b.T)))
    assert cost > 0


def test_compute_integrals_uses_source(real):
    full = np.arange(64.0).reshape(8, 8)

    def source(eranges):
        slices = tuple(slice(lo, hi) for lo, hi in eranges)
        return full[slices]

    dst = out((4, 4), (0, 1))
    real.compute_integrals(dst, ((4, 8), (0, 4)), source)
    assert np.array_equal(dst.data, full[4:8, 0:4])


def test_compute_integrals_shape_mismatch_rejected(real):
    dst = out((4, 4), (0, 1))
    with pytest.raises(Exception, match="shape"):
        real.compute_integrals(dst, ((0, 4), (0, 4)), lambda r: np.zeros((2, 2)))


def test_compute_integrals_requires_source_in_real_mode(real):
    dst = out((2, 2), (0, 1))
    with pytest.raises(Exception, match="integral_source"):
        real.compute_integrals(dst, ((0, 2), (0, 2)), None)


def test_model_backend_touches_no_data(model):
    dst = KernelOperand(shape=(4, 4), index_ids=(0, 1), data=None)
    src = KernelOperand(shape=(4, 4), index_ids=(0, 1), data=None)
    assert model.fill(dst, 1.0, "=") > 0
    assert model.copy(dst, src) > 0
    assert model.contract(dst, "=", src, src) > 0
    value, cost = model.scalar_contract(src, src)
    assert value == 0.0
    assert model.compute_integrals(dst, ((0, 4), (0, 4)), None) > 0


def test_costs_scale_with_work(model):
    small = KernelOperand(shape=(2, 2), index_ids=(0, 1))
    big = KernelOperand(shape=(64, 64), index_ids=(0, 1))
    k = KernelOperand(shape=(64, 64), index_ids=(1, 2))
    big_out = KernelOperand(shape=(64, 64), index_ids=(0, 2))
    assert model.fill(big, 0.0, "=") > model.fill(small, 0.0, "=")
    contract_cost = model.contract(big_out, "=", big, k)
    copy_cost = model.copy(big_out, big_out)
    assert contract_cost > copy_cost  # n^3 vs n^2


def test_make_backend():
    cm = CostModel(LAPTOP)
    assert make_backend("real", cm).real
    assert not make_backend("model", cm).real
    with pytest.raises(ValueError):
        make_backend("quantum", cm)


def test_mismatched_ids_rejected(real):
    dst = out((2, 2), (0, 1))
    with pytest.raises(Exception, match="mismatch"):
        real.copy(dst, op(np.ones((2, 2)), (5, 6)))


def test_operand_nbytes_tracks_actual_dtype():
    """nbytes follows the payload's itemsize, not a hardcoded 8."""
    f32 = KernelOperand(shape=(4, 5), index_ids=(0, 1),
                        data=np.zeros((4, 5), dtype=np.float32))
    assert f32.nbytes == 4 * 5 * 4
    f64 = KernelOperand(shape=(4, 5), index_ids=(0, 1),
                        data=np.zeros((4, 5), dtype=np.float64))
    assert f64.nbytes == 4 * 5 * 8


def test_operand_nbytes_model_mode_assumes_double():
    # no payload (model mode): cost accounting uses DTYPE_BYTES doubles
    shaped = KernelOperand(shape=(3, 7), index_ids=(0, 1), data=None)
    assert shaped.nbytes == 3 * 7 * 8
