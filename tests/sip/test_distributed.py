"""Unit tests for block placement and barrier-misuse detection."""

import pytest

from repro.sial.compiler import compile_source
from repro.sip.blocks import BlockId, ResolvedIndexTable
from repro.sip.distributed import BarrierViolation, ConflictTracker, Placement


def make_placement(n=12, seg=4, workers=3):
    prog = compile_source(
        "sial t\nsymbolic nb\naoindex M = 1, nb\naoindex N = 1, nb\n"
        "distributed D(M, N)\nendsial t\n"
    )
    table = ResolvedIndexTable(prog, {"nb": n}, segment_size=seg)
    return Placement(table, prog.array_id("D"), workers)


def test_every_block_has_exactly_one_owner():
    p = make_placement()
    seen = {}
    for w in range(3):
        for coords in p.owned_by(w):
            assert coords not in seen
            seen[coords] = w
    assert len(seen) == p.n_blocks == 9
    for coords, w in seen.items():
        assert p.owner_index(coords) == w


def test_linearize_delinearize_roundtrip():
    p = make_placement()
    for lin in range(p.n_blocks):
        assert p.linearize(p.delinearize(lin)) == lin


def test_placement_balanced():
    p = make_placement(n=16, seg=4, workers=4)  # 16 blocks over 4 workers
    counts = [len(p.owned_by(w)) for w in range(4)]
    assert counts == [4, 4, 4, 4]


def test_owner_index_in_range():
    p = make_placement(n=20, seg=3, workers=5)
    for coords in p.owned_by(2):
        assert 0 <= p.owner_index(coords) < 5


# -- conflict tracker ---------------------------------------------------------
B = BlockId(0, (1, 1))
B2 = BlockId(0, (1, 2))


def test_read_read_no_conflict():
    t = ConflictTracker("d")
    t.record_read(0, B)
    t.record_read(1, B)


def test_write_then_read_other_worker_conflicts():
    t = ConflictTracker("d")
    t.record_write(0, B, "=")
    with pytest.raises(BarrierViolation, match="reads block"):
        t.record_read(1, B)


def test_same_worker_write_then_read_ok():
    t = ConflictTracker("d")
    t.record_write(0, B, "=")
    t.record_read(0, B)


def test_read_then_write_other_worker_conflicts():
    t = ConflictTracker("d")
    t.record_read(0, B)
    with pytest.raises(BarrierViolation, match="writes block"):
        t.record_write(1, B, "=")


def test_write_write_other_worker_conflicts():
    t = ConflictTracker("d")
    t.record_write(0, B, "=")
    with pytest.raises(BarrierViolation, match="overwrites"):
        t.record_write(1, B, "=")


def test_accumulates_commute():
    t = ConflictTracker("d")
    t.record_write(0, B, "+=")
    t.record_write(1, B, "+=")
    t.record_write(2, B, "+=")


def test_accumulate_conflicts_with_plain_write():
    t = ConflictTracker("d")
    t.record_write(0, B, "=")
    with pytest.raises(BarrierViolation, match="conflicts with plain put"):
        t.record_write(1, B, "+=")


def test_accumulate_then_read_conflicts():
    t = ConflictTracker("d")
    t.record_write(0, B, "+=")
    with pytest.raises(BarrierViolation):
        t.record_read(1, B)


def test_distinct_blocks_independent():
    t = ConflictTracker("d")
    t.record_write(0, B, "=")
    t.record_read(1, B2)  # different block: fine


def test_new_epoch_clears_history():
    t = ConflictTracker("d")
    t.record_write(0, B, "=")
    t.new_epoch()
    t.record_read(1, B)  # previous epoch's write forgotten


def test_disabled_tracker_never_raises():
    t = ConflictTracker("d", enabled=False)
    t.record_write(0, B, "=")
    t.record_read(1, B)
    t.record_write(1, B, "=")
