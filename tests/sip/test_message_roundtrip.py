"""Property tests: every wire message survives the mp transport intact.

The multiprocess backend frames control messages with protocol-5
pickles (out-of-band buffers, batched per peer) and detours large
Block payloads either into the pooled slab arena
(:class:`~repro.sip.arena.SlabArena` / zero-copy mapped receive) or
through one-shot shared memory
(:func:`~repro.sip.mptransport.pack_payload` /
:func:`~repro.sip.mptransport.unpack_payload`).  These properties
drive randomly generated instances of **every** message type through
the full wire paths -- pack, frame, decode, unpack -- and require
field-exact identity on the other side, including bitwise-equal block
data, NaNs, zero-size blocks, non-contiguous (strided) views, and the
data-``None`` blocks of model mode.
"""

import dataclasses
import gc
import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sip.arena import ArenaReceiver, ArenaRef, ArenaStats, SlabArena
from repro.sip.blocks import Block, BlockId
from repro.sip.messages import (
    Ack,
    BarrierArrive,
    BarrierRelease,
    BlockReply,
    ChunkReply,
    ChunkRequest,
    CollectiveContribution,
    CollectiveResult,
    GetBlock,
    PrepareBlock,
    PutBlock,
    RequestBlock,
    Shutdown,
    WorkerDone,
    message_nbytes,
)
from repro.sip.mptransport import (
    ShmStats,
    decode_batch,
    encode_batch,
    pack_payload,
    unpack_payload,
)

# -- strategies --------------------------------------------------------------

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
any_floats = st.floats(allow_nan=True, allow_infinity=True, width=64)

coords = st.tuples(*[st.integers(0, 7)] * 2) | st.tuples(*[st.integers(0, 7)] * 4)
block_ids = st.builds(BlockId, st.integers(0, 9), coords)
shapes = st.lists(st.integers(1, 4), min_size=1, max_size=3).map(tuple)
ops = st.sampled_from(["=", "+="])
accum_keys = st.none() | st.tuples(
    st.integers(0, 1), st.integers(0, 9), st.integers(0, 9), st.integers(0, 99)
)


@st.composite
def blocks(draw):
    shape = draw(shapes)
    kind = draw(st.sampled_from(["dense", "strided", "model"]))
    if kind == "model":
        return Block(shape, None)
    values = draw(
        st.lists(
            any_floats,
            min_size=int(np.prod(shape)),
            max_size=int(np.prod(shape)),
        )
    )
    data = np.array(values, dtype=np.float64).reshape(shape)
    if kind == "strided":
        # embed in a twice-as-large buffer and keep every other element
        # along the first axis: a non-contiguous view with same values
        big = np.zeros((shape[0] * 2,) + shape[1:], dtype=np.float64)
        big[::2] = data
        data = big[::2]
        assert not data.flags["C_CONTIGUOUS"] or shape[0] == 1
    return Block(shape, data)


block_messages = st.one_of(
    st.builds(
        PutBlock,
        block_id=block_ids,
        op=ops,
        block=blocks(),
        worker_index=st.integers(0, 7),
        epoch=st.integers(0, 99),
        ack_tag=st.integers(-1, 5000),
        seq=st.integers(-1, 1000),
        accum_key=accum_keys,
    ),
    st.builds(
        PrepareBlock,
        block_id=block_ids,
        op=ops,
        block=blocks(),
        worker_index=st.integers(0, 7),
        epoch=st.integers(0, 99),
        ack_tag=st.integers(-1, 5000),
        seq=st.integers(-1, 1000),
        accum_key=accum_keys,
    ),
    st.builds(BlockReply, block_id=block_ids, block=blocks()),
)

control_messages = st.one_of(
    st.builds(
        GetBlock,
        block_id=block_ids,
        reply_tag=st.integers(1000, 9000),
        worker_index=st.integers(0, 7),
        epoch=st.integers(0, 99),
    ),
    st.builds(
        RequestBlock,
        block_id=block_ids,
        reply_tag=st.integers(1000, 9000),
        worker_index=st.integers(0, 7),
        epoch=st.integers(0, 99),
    ),
    st.builds(Ack, tag=st.integers(0, 9000)),
    st.builds(
        ChunkRequest,
        pardo_pc=st.integers(0, 500),
        activation=st.integers(0, 20),
        worker_index=st.integers(0, 7),
        reply_tag=st.integers(1000, 9000),
        seq=st.integers(-1, 1000),
        scalars=st.none() | st.lists(finite_floats, max_size=4).map(tuple),
    ),
    st.builds(
        ChunkReply,
        iterations=st.lists(
            st.tuples(st.integers(1, 8), st.integers(1, 8)), max_size=6
        ).map(tuple),
    ),
    st.builds(
        CollectiveContribution,
        seq=st.integers(0, 100),
        worker_index=st.integers(0, 7),
        value=finite_floats,
        reply_tag=st.integers(1000, 9000),
        base=finite_floats,
        deltas=st.none()
        | st.lists(
            st.tuples(
                st.tuples(st.integers(0, 9), st.integers(0, 9)), finite_floats
            ),
            max_size=4,
        ).map(tuple),
        poisoned=st.booleans(),
    ),
    st.builds(CollectiveResult, value=finite_floats),
    st.builds(
        WorkerDone, worker_index=st.integers(0, 7), ack_tag=st.integers(-1, 9000)
    ),
    st.builds(Shutdown, ack_tag=st.integers(-1, 9000)),
    st.builds(
        BarrierArrive,
        name=st.sampled_from(["sip_barrier", "server_barrier"]),
        generation=st.integers(0, 100),
        rank=st.integers(0, 9),
    ),
    st.builds(
        BarrierRelease,
        name=st.sampled_from(["sip_barrier", "server_barrier"]),
        generation=st.integers(0, 100),
    ),
)


# -- helpers -----------------------------------------------------------------

_counter = [0]


def _namer() -> str:
    _counter[0] += 1
    return f"rmproundtrip{os.getpid():x}n{_counter[0]}"


def wire_roundtrip(payload, shm_min: int):
    """The exact sender->receiver path of the mp transport."""
    send_stats, recv_stats = ShmStats(), ShmStats()
    packed = pack_payload(payload, shm_min, _namer, send_stats)
    received = pickle.loads(pickle.dumps(packed))
    out = unpack_payload(received, recv_stats)
    # whatever the sender parked in shared memory, the receiver freed
    assert recv_stats.segments_unlinked == send_stats.segments_created
    return out


def assert_blocks_equal(a: Block, b: Block) -> None:
    assert isinstance(b, Block)
    assert tuple(a.shape) == tuple(b.shape)
    if a.data is None:
        assert b.data is None
        return
    assert b.data is not None
    assert a.data.dtype == b.data.dtype
    assert np.array_equal(a.data, b.data, equal_nan=True)


def assert_messages_equal(sent, received) -> None:
    assert type(received) is type(sent)
    block = getattr(sent, "block", None)
    if block is None:
        assert received == sent
        return
    assert_blocks_equal(block, received.block)
    for field in sent.__dataclass_fields__:
        if field == "block":
            continue
        assert getattr(received, field) == getattr(sent, field), field


# -- properties --------------------------------------------------------------


@pytest.mark.mp
@settings(max_examples=200, deadline=None)
@given(msg=control_messages)
def test_control_messages_roundtrip_identically(msg):
    assert_messages_equal(msg, wire_roundtrip(msg, shm_min=1 << 14))


@pytest.mark.mp
@settings(max_examples=100, deadline=None)
@given(msg=block_messages)
def test_block_messages_roundtrip_inline(msg):
    """Below the threshold, blocks ride the pipe inside the pickle."""
    assert_messages_equal(msg, wire_roundtrip(msg, shm_min=1 << 30))


@pytest.mark.mp
@settings(max_examples=100, deadline=None)
@given(msg=block_messages)
def test_block_messages_roundtrip_via_shared_memory(msg):
    """At threshold zero, every data-carrying block takes the shm path."""
    assert_messages_equal(msg, wire_roundtrip(msg, shm_min=0))


@pytest.mark.mp
@settings(max_examples=50, deadline=None)
@given(block=blocks())
def test_block_pickle_drops_shared_state(block):
    """COW share bookkeeping must never leak across a process boundary."""
    twin = block.share() if block.data is not None else block
    clone = pickle.loads(pickle.dumps(twin))
    assert clone._shared is None
    assert_blocks_equal(twin, clone)


@settings(max_examples=50, deadline=None)
@given(bid=block_ids)
def test_block_id_roundtrips(bid):
    assert pickle.loads(pickle.dumps(bid)) == bid


# -- protocol-5 batch frames -------------------------------------------------


@pytest.mark.mp
@settings(max_examples=100, deadline=None)
@given(msgs=st.lists(st.one_of(control_messages, block_messages), max_size=6))
def test_batch_frames_roundtrip_identically(msgs):
    """A coalesced frame reproduces every message, in order, intact."""
    raws = [(0, 100 + i, 64 + i, m) for i, m in enumerate(msgs)]
    out = decode_batch(encode_batch(raws))
    assert len(out) == len(raws)
    for (src, tag, size, sent), (src2, tag2, size2, received) in zip(raws, out):
        assert (src2, tag2, size2) == (src, tag, size)
        assert_messages_equal(sent, received)
        block = getattr(received, "block", None)
        if isinstance(block, Block) and block.data is not None:
            # out-of-band buffers decode over a writable bytearray, so
            # a later in-place accumulate cannot trip on a read-only
            # view of the frame
            assert block.data.flags.writeable


# -- arena-backed refs -------------------------------------------------------


def _arena_pair() -> tuple[SlabArena, ArenaReceiver]:
    stats = ArenaStats()
    arena = SlabArena(
        f"roundtrip{os.getpid():x}",
        0,
        2,
        slab_bytes=1 << 16,
        max_bytes=1 << 20,
        stats=stats,
    )
    return arena, ArenaReceiver(stats=stats)


def arena_roundtrip(msg, arena: SlabArena, receiver: ArenaReceiver, dest=1):
    """The exact sender->receiver path of the arena transport."""
    packed = msg
    block = getattr(msg, "block", None)
    if isinstance(block, Block) and block.data is not None:
        ref = arena.place(block, dest)
        assert ref is not None, "fresh arena refused an in-class payload"
        packed = dataclasses.replace(msg, block=ref)
    (raw,) = decode_batch(encode_batch([(0, 7, 64, packed)]))
    payload = raw[3]
    ref = getattr(payload, "block", None)
    if isinstance(ref, ArenaRef):
        payload = dataclasses.replace(payload, block=receiver.unpack(ref))
    return payload


@pytest.mark.mp
@settings(max_examples=100, deadline=None)
@given(msg=block_messages)
def test_block_messages_roundtrip_via_arena(msg):
    """Every data-carrying block maps back bitwise equal, zero-copy,
    and the slot lease dies with the mapped block."""
    arena, receiver = _arena_pair()
    try:
        received = arena_roundtrip(msg, arena, receiver)
        assert_messages_equal(msg, received)
        had_data = (
            isinstance(getattr(msg, "block", None), Block)
            and msg.block.data is not None
        )
        if had_data:
            assert arena.stats.recv_mapped == 1
            assert arena.stats.bytes_zero_copy == received.block.data.nbytes
            # the mapped block can never leak borrowed memory into the
            # pool or hand it to a writer
            assert not received.block.data.flags.writeable
            assert received.block.surrender() is False
        del received
        gc.collect()
        assert receiver.live_leases() == 0
        assert arena.outstanding() == 0
        if had_data:
            assert arena.stats.recv_released == 1
    finally:
        receiver.close()
        arena.destroy()


@pytest.mark.mp
def test_arena_resend_is_zero_copy_handoff():
    """Re-sending an unmodified block to another rank copies nothing."""
    arena, receiver = _arena_pair()
    try:
        data = np.arange(64, dtype=np.float64).reshape(8, 8)
        block = Block((8, 8), data)
        ref1 = arena.place(block, dest=1)
        ref2 = arena.place(block, dest=2)
        assert ref1 is not None and ref2 is not None
        assert (ref1.name, ref1.data_off) == (ref2.name, ref2.data_off)
        assert arena.stats.hits == 1
        assert arena.stats.handoffs == 1
        assert arena.stats.handoff_bytes == data.nbytes
    finally:
        receiver.close()
        arena.destroy()


@pytest.mark.mp
def test_arena_pins_content_against_sender_writes():
    """A send snapshots the block: the sender's next in-place write must
    copy out (COW), leaving the receiver's mapped view untouched."""
    arena, receiver = _arena_pair()
    try:
        block = Block((4, 4), np.full((4, 4), 7.0))
        ref = arena.place(block, dest=1)
        block.ensure_writable()
        block.data[...] = -1.0
        out = receiver.unpack(ref)
        assert np.array_equal(out.data, np.full((4, 4), 7.0))
        # the write detached the sender from the pinned buffer, so the
        # residency can no longer serve handoffs for the new contents
        ref2 = arena.place(block, dest=2)
        out2 = receiver.unpack(ref2)
        assert np.array_equal(out2.data, np.full((4, 4), -1.0))
        del out, out2
        gc.collect()
    finally:
        receiver.close()
        arena.destroy()


@pytest.mark.mp
def test_arena_oversize_payload_misses():
    """Payloads larger than one slab overflow to the one-shot path."""
    arena, receiver = _arena_pair()
    try:
        big = Block((1 << 14,), np.zeros(1 << 14))  # 128 KiB > 64 KiB slab
        assert arena.place(big, dest=1) is None
        assert arena.stats.misses == 1
    finally:
        receiver.close()
        arena.destroy()


# -- traffic accounting ------------------------------------------------------


@pytest.mark.mp
def test_message_nbytes_counts_detoured_block_bytes():
    """A detoured message is accounted at its block bytes, never at the
    size of the stub riding the pipe (regression: _ShmRef had no
    ``nbytes`` and broke / undercounted traffic stats)."""
    block = Block((4, 4), np.ones((4, 4)))
    msg = BlockReply(block_id=BlockId(0, (0, 0)), block=block)
    full = message_nbytes(msg)
    assert full is not None and full > block.data.nbytes

    packed = pack_payload(msg, 0, _namer, ShmStats())
    assert not isinstance(packed.block, Block)
    assert message_nbytes(packed) == full
    unpack_payload(packed, ShmStats())  # unlink the one-shot segment

    arena, receiver = _arena_pair()
    try:
        ref = arena.place(block, dest=1)
        assert message_nbytes(dataclasses.replace(msg, block=ref)) == full
    finally:
        receiver.close()
        arena.destroy()


# -- world re-creation (checkpoint-restart chaining) -------------------------


@pytest.mark.mp
def test_recreated_world_shm_names_disjoint():
    """Two MPWorlds for the same (run, rank) -- e.g. checkpoint-restart
    chaining inside one process -- must never collide on segment names,
    one-shot or slab alike."""
    from repro.simmpi import Simulator
    from repro.sip.mptransport import MPWorld

    w1 = MPWorld(Simulator(), 2, 1, {}, "deadbeef")
    w2 = MPWorld(Simulator(), 2, 1, {}, "deadbeef")
    try:
        assert w1.epoch != w2.epoch
        names1 = {w1._shm_name() for _ in range(8)}
        names2 = {w2._shm_name() for _ in range(8)}
        assert not names1 & names2
        slabs1 = {w1.arena._slab_name(256) for _ in range(4)}
        slabs2 = {w2.arena._slab_name(256) for _ in range(4)}
        assert not slabs1 & slabs2
    finally:
        w1.arena.destroy()
        w2.arena.destroy()
