"""Property tests: every wire message survives the mp transport intact.

The multiprocess backend serializes control messages with pickle and
detours large Block payloads through shared memory
(:func:`~repro.sip.mptransport.pack_payload` /
:func:`~repro.sip.mptransport.unpack_payload`).  These properties drive
randomly generated instances of **every** message type through the full
wire path -- pack, pickle, unpickle, unpack -- and require field-exact
identity on the other side, including bitwise-equal block data, NaNs,
zero-size blocks, non-contiguous (strided) views, and the
data-``None`` blocks of model mode.
"""

import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sip.blocks import Block, BlockId
from repro.sip.messages import (
    Ack,
    BarrierArrive,
    BarrierRelease,
    BlockReply,
    ChunkReply,
    ChunkRequest,
    CollectiveContribution,
    CollectiveResult,
    GetBlock,
    PrepareBlock,
    PutBlock,
    RequestBlock,
    Shutdown,
    WorkerDone,
)
from repro.sip.mptransport import ShmStats, pack_payload, unpack_payload

# -- strategies --------------------------------------------------------------

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
any_floats = st.floats(allow_nan=True, allow_infinity=True, width=64)

coords = st.tuples(*[st.integers(0, 7)] * 2) | st.tuples(*[st.integers(0, 7)] * 4)
block_ids = st.builds(BlockId, st.integers(0, 9), coords)
shapes = st.lists(st.integers(1, 4), min_size=1, max_size=3).map(tuple)
ops = st.sampled_from(["=", "+="])
accum_keys = st.none() | st.tuples(
    st.integers(0, 1), st.integers(0, 9), st.integers(0, 9), st.integers(0, 99)
)


@st.composite
def blocks(draw):
    shape = draw(shapes)
    kind = draw(st.sampled_from(["dense", "strided", "model"]))
    if kind == "model":
        return Block(shape, None)
    values = draw(
        st.lists(
            any_floats,
            min_size=int(np.prod(shape)),
            max_size=int(np.prod(shape)),
        )
    )
    data = np.array(values, dtype=np.float64).reshape(shape)
    if kind == "strided":
        # embed in a twice-as-large buffer and keep every other element
        # along the first axis: a non-contiguous view with same values
        big = np.zeros((shape[0] * 2,) + shape[1:], dtype=np.float64)
        big[::2] = data
        data = big[::2]
        assert not data.flags["C_CONTIGUOUS"] or shape[0] == 1
    return Block(shape, data)


block_messages = st.one_of(
    st.builds(
        PutBlock,
        block_id=block_ids,
        op=ops,
        block=blocks(),
        worker_index=st.integers(0, 7),
        epoch=st.integers(0, 99),
        ack_tag=st.integers(-1, 5000),
        seq=st.integers(-1, 1000),
        accum_key=accum_keys,
    ),
    st.builds(
        PrepareBlock,
        block_id=block_ids,
        op=ops,
        block=blocks(),
        worker_index=st.integers(0, 7),
        epoch=st.integers(0, 99),
        ack_tag=st.integers(-1, 5000),
        seq=st.integers(-1, 1000),
        accum_key=accum_keys,
    ),
    st.builds(BlockReply, block_id=block_ids, block=blocks()),
)

control_messages = st.one_of(
    st.builds(
        GetBlock,
        block_id=block_ids,
        reply_tag=st.integers(1000, 9000),
        worker_index=st.integers(0, 7),
        epoch=st.integers(0, 99),
    ),
    st.builds(
        RequestBlock,
        block_id=block_ids,
        reply_tag=st.integers(1000, 9000),
        worker_index=st.integers(0, 7),
        epoch=st.integers(0, 99),
    ),
    st.builds(Ack, tag=st.integers(0, 9000)),
    st.builds(
        ChunkRequest,
        pardo_pc=st.integers(0, 500),
        activation=st.integers(0, 20),
        worker_index=st.integers(0, 7),
        reply_tag=st.integers(1000, 9000),
        seq=st.integers(-1, 1000),
        scalars=st.none() | st.lists(finite_floats, max_size=4).map(tuple),
    ),
    st.builds(
        ChunkReply,
        iterations=st.lists(
            st.tuples(st.integers(1, 8), st.integers(1, 8)), max_size=6
        ).map(tuple),
    ),
    st.builds(
        CollectiveContribution,
        seq=st.integers(0, 100),
        worker_index=st.integers(0, 7),
        value=finite_floats,
        reply_tag=st.integers(1000, 9000),
        base=finite_floats,
        deltas=st.none()
        | st.lists(
            st.tuples(
                st.tuples(st.integers(0, 9), st.integers(0, 9)), finite_floats
            ),
            max_size=4,
        ).map(tuple),
        poisoned=st.booleans(),
    ),
    st.builds(CollectiveResult, value=finite_floats),
    st.builds(
        WorkerDone, worker_index=st.integers(0, 7), ack_tag=st.integers(-1, 9000)
    ),
    st.builds(Shutdown, ack_tag=st.integers(-1, 9000)),
    st.builds(
        BarrierArrive,
        name=st.sampled_from(["sip_barrier", "server_barrier"]),
        generation=st.integers(0, 100),
        rank=st.integers(0, 9),
    ),
    st.builds(
        BarrierRelease,
        name=st.sampled_from(["sip_barrier", "server_barrier"]),
        generation=st.integers(0, 100),
    ),
)


# -- helpers -----------------------------------------------------------------

_counter = [0]


def _namer() -> str:
    _counter[0] += 1
    return f"rmproundtrip{os.getpid():x}n{_counter[0]}"


def wire_roundtrip(payload, shm_min: int):
    """The exact sender->receiver path of the mp transport."""
    send_stats, recv_stats = ShmStats(), ShmStats()
    packed = pack_payload(payload, shm_min, _namer, send_stats)
    received = pickle.loads(pickle.dumps(packed))
    out = unpack_payload(received, recv_stats)
    # whatever the sender parked in shared memory, the receiver freed
    assert recv_stats.segments_unlinked == send_stats.segments_created
    return out


def assert_blocks_equal(a: Block, b: Block) -> None:
    assert isinstance(b, Block)
    assert tuple(a.shape) == tuple(b.shape)
    if a.data is None:
        assert b.data is None
        return
    assert b.data is not None
    assert a.data.dtype == b.data.dtype
    assert np.array_equal(a.data, b.data, equal_nan=True)


def assert_messages_equal(sent, received) -> None:
    assert type(received) is type(sent)
    block = getattr(sent, "block", None)
    if block is None:
        assert received == sent
        return
    assert_blocks_equal(block, received.block)
    for field in sent.__dataclass_fields__:
        if field == "block":
            continue
        assert getattr(received, field) == getattr(sent, field), field


# -- properties --------------------------------------------------------------


@pytest.mark.mp
@settings(max_examples=200, deadline=None)
@given(msg=control_messages)
def test_control_messages_roundtrip_identically(msg):
    assert_messages_equal(msg, wire_roundtrip(msg, shm_min=1 << 14))


@pytest.mark.mp
@settings(max_examples=100, deadline=None)
@given(msg=block_messages)
def test_block_messages_roundtrip_inline(msg):
    """Below the threshold, blocks ride the pipe inside the pickle."""
    assert_messages_equal(msg, wire_roundtrip(msg, shm_min=1 << 30))


@pytest.mark.mp
@settings(max_examples=100, deadline=None)
@given(msg=block_messages)
def test_block_messages_roundtrip_via_shared_memory(msg):
    """At threshold zero, every data-carrying block takes the shm path."""
    assert_messages_equal(msg, wire_roundtrip(msg, shm_min=0))


@pytest.mark.mp
@settings(max_examples=50, deadline=None)
@given(block=blocks())
def test_block_pickle_drops_shared_state(block):
    """COW share bookkeeping must never leak across a process boundary."""
    twin = block.share() if block.data is not None else block
    clone = pickle.loads(pickle.dumps(twin))
    assert clone._shared is None
    assert_blocks_equal(twin, clone)


@settings(max_examples=50, deadline=None)
@given(bid=block_ids)
def test_block_id_roundtrips(bid):
    assert pickle.loads(pickle.dumps(bid)) == bid
