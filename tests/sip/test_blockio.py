"""Unit tests for the block-transfer engine (``repro.sip.blockio``).

The engine owns every in-flight block movement of one rank: the request
table with duplicate-request coalescing, the single backpressure
predicate that replaced the copy-pasted ``capacity - 2`` guards, and
the canonical '+=' accumulation ledger.  These tests pin each of those
behaviors in isolation (fake ports) and through whole runs (stats
surfaced by the runner).
"""

from types import SimpleNamespace

import pytest

from repro.sip import SIPConfig
from repro.sip.blockio import AccumLedger, BlockIOStats, BlockTransferEngine
from repro.sip.runner import run_source


def make_engine(capacity=8, pending=0, reserve=2, max_in_flight=None):
    """An engine wired to a fake port -- enough for the predicate paths."""
    cache = SimpleNamespace(capacity=capacity, pending_count=pending)
    port = SimpleNamespace(sim=None, comm=None, cache=cache, rt=None)
    return BlockTransferEngine(port, reserve=reserve, max_in_flight=max_in_flight)


# ---------------------------------------------------------------------------
# the backpressure predicate (satellite: the deduped cache-full guard)
# ---------------------------------------------------------------------------


def test_headroom_leaves_reserve_slots_free():
    # the historical guard was ``pending_count >= capacity - 2``: with
    # the default reserve of 2, a 8-slot cache admits speculative
    # fetches only while fewer than 6 are pending
    for pending in range(8):
        engine = make_engine(capacity=8, pending=pending)
        assert engine.headroom() == (pending < 6)


def test_headroom_reserve_is_configurable():
    assert make_engine(capacity=8, pending=5, reserve=0).headroom()
    assert not make_engine(capacity=8, pending=5, reserve=3).headroom()
    # reserve >= capacity means no speculative fetches at all
    assert not make_engine(capacity=2, pending=0, reserve=2).headroom()


def test_headroom_bounds_the_request_table():
    engine = make_engine(capacity=64, pending=0, max_in_flight=2)
    assert engine.headroom()
    engine._inflight["a"] = object()
    engine._inflight["b"] = object()
    assert not engine.headroom()
    engine._inflight.pop("a")
    assert engine.headroom()


def test_headroom_config_knobs_are_validated():
    with pytest.raises(ValueError):
        SIPConfig(blockio_reserve=-1)
    with pytest.raises(ValueError):
        SIPConfig(blockio_max_in_flight=0)
    cfg = SIPConfig(blockio_reserve=3, blockio_max_in_flight=4)
    assert cfg.blockio_reserve == 3
    assert cfg.blockio_max_in_flight == 4


# ---------------------------------------------------------------------------
# stats aggregation
# ---------------------------------------------------------------------------


def test_stats_add_sums_counters_and_maxes_peaks():
    a = BlockIOStats(issued_gets=2, coalesced=1, waiter_peak=3, in_flight_peak=5)
    b = BlockIOStats(issued_gets=4, issued_requests=1, waiter_peak=2, in_flight_peak=7)
    a.add(b)
    assert a.issued_gets == 6
    assert a.issued_requests == 1
    assert a.issued == 7
    assert a.coalesced == 1
    assert a.waiter_peak == 3  # peaks take max, not sum
    assert a.in_flight_peak == 7


# ---------------------------------------------------------------------------
# the canonical accumulation ledger
# ---------------------------------------------------------------------------


class FakeBlock:
    def __init__(self, data=None):
        self.data = data


def test_accum_ledger_folds_in_canonical_key_order():
    import numpy as np

    ledger = AccumLedger()
    bid = ("D", (0, 0))
    # buffered out of canonical order: iteration 2 lands before iteration 1
    ledger.buffer(bid, (0, 7, 0, (2,), 2), FakeBlock(np.array([0.0, 1.0])))
    ledger.buffer(bid, (0, 7, 0, (1,), 1), FakeBlock(np.array([2.0, 0.0])))
    assert bid in ledger
    assert ledger.pending_ids() == [bid]
    pending = ledger.pop_sorted(bid)
    assert [key for key, _ in pending] == [
        (0, 7, 0, (1,), 1),
        (0, 7, 0, (2,), 2),
    ]
    assert bid not in ledger
    assert ledger.stats.accum_folds == 1
    assert ledger.stats.accums_buffered == 2


def test_accum_ledger_fold_into_applies_increments():
    import numpy as np

    ledger = AccumLedger()
    bid = ("D", (0, 0))
    target = FakeBlock(np.array([1.0, 1.0]))
    assert not ledger.fold_into(bid, target)  # nothing buffered
    ledger.buffer(bid, (1, 0, 1), FakeBlock(np.array([0.5, 0.0])))
    ledger.buffer(bid, (1, 1, 2), FakeBlock(np.array([0.0, 0.25])))
    assert ledger.fold_into(bid, target)
    assert target.data.tolist() == [1.5, 1.25]


def test_accum_ledger_discard_drops_superseded_contributions():
    ledger = AccumLedger()
    bid = ("D", (0, 0))
    ledger.buffer(bid, (1, 0, 1), FakeBlock())
    ledger.discard(bid)  # an overwrite supersedes buffered '+=' deltas
    assert not ledger
    assert ledger.pop_sorted(bid) == []


def test_accum_ledger_keys_sort_iterations_before_spmd():
    ledger = AccumLedger()
    in_pardo = ledger.next_key((3, 0, (1, 2)), worker_index=1)
    outside = ledger.next_key(None, worker_index=0)
    assert in_pardo[0] == 0 and outside[0] == 1
    assert in_pardo < outside  # pardo contributions fold first
    # the per-sender counter keeps ties within one iteration ordered
    again = ledger.next_key((3, 0, (1, 2)), worker_index=1)
    assert again > in_pardo


# ---------------------------------------------------------------------------
# whole-run behavior: coalescing and the runner's blockio_* stats
# ---------------------------------------------------------------------------

COALESCE_SRC = """sial coalesce
symbolic nb
symbolic nl
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nl
distributed D(M, N)
temp T(M, N)
temp S(M, N)
pardo M, N
  T(M, N) = 1.0
  put D(M, N) = T(M, N)
endpardo M, N
sip_barrier
pardo L
  do M
    do N
      get D(M, N)
      S(M, N) = D(M, N) * 2.0
    enddo N
  enddo M
endpardo L
sip_barrier
endsial coalesce
"""


def run_coalesce(**kw):
    defaults = dict(workers=2, io_servers=1, segment_size=4, sanitize=True)
    defaults.update(kw)
    cfg = SIPConfig(**defaults)
    return run_source(COALESCE_SRC, cfg, symbolics={"nb": 4, "nl": 12})


def test_duplicate_requests_coalesce_to_one_wire_message():
    # D is a single block (the segment covers the whole range) and every
    # pardo L iteration demands it: the engine's request table must fold
    # the duplicates onto the one in-flight fetch
    res = run_coalesce()
    assert res.stats["blockio_issued_gets"] == 1
    assert res.stats["blockio_coalesced"] > 0
    assert res.stats["blockio_replies"] == 1


def test_runner_surfaces_blockio_stats_and_profile():
    res = run_coalesce()
    for key in (
        "blockio_issued",
        "blockio_issued_gets",
        "blockio_issued_requests",
        "blockio_coalesced",
        "blockio_in_flight_peak",
        "blockio_backpressure_stalls",
        "blockio_hint_drops",
        "blockio_puts",
        "blockio_replies",
    ):
        assert key in res.stats, key
    assert res.stats["blockio_issued"] == (
        res.stats["blockio_issued_gets"] + res.stats["blockio_issued_requests"]
    )
    bio = res.profile.blockio
    assert bio is not None
    assert bio.issued_gets == res.stats["blockio_issued_gets"]
    assert bio.in_flight_peak >= 1
