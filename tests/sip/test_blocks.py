"""Unit tests for segment arithmetic and the resolved index table."""

import pytest

from repro.sial.compiler import compile_source
from repro.sip.blocks import (
    Block,
    BlockId,
    ResolvedIndexTable,
    block_nbytes,
    block_shape,
)


def make_table(decls, symbolics=None, seg=4, sub=2, segment_sizes=None):
    prog = compile_source(f"sial t\n{decls}\nendsial t\n")
    return prog, ResolvedIndexTable(
        prog,
        symbolics or {},
        segment_size=seg,
        segment_sizes=segment_sizes,
        subsegments_per_segment=sub,
    )


def test_even_partition():
    prog, table = make_table("symbolic nb\naoindex M = 1, nb", {"nb": 12}, seg=4)
    m = table[prog.index_id("M")]
    assert m.n_segments == 3
    assert [s.length for s in m.segments] == [4, 4, 4]
    assert m.segment(2).start == 4
    assert list(m.values()) == [1, 2, 3]


def test_ragged_last_segment():
    prog, table = make_table("symbolic nb\naoindex M = 1, nb", {"nb": 10}, seg=4)
    m = table[prog.index_id("M")]
    assert [s.length for s in m.segments] == [4, 4, 2]


def test_simple_index_iterates_values():
    prog, table = make_table("index it = 3, 7")
    it = table[prog.index_id("it")]
    assert it.is_simple
    assert list(it.values()) == [3, 4, 5, 6, 7]
    assert it.n_segments == 0


def test_per_kind_segment_sizes():
    decls = "symbolic nb\naoindex M = 1, nb\nmoindex I = 1, nb"
    prog, table = make_table(decls, {"nb": 12}, seg=4, segment_sizes={"mo": 6})
    assert table[prog.index_id("M")].n_segments == 3
    assert table[prog.index_id("I")].n_segments == 2


def test_subindex_partition():
    decls = "symbolic nb\naoindex M = 1, nb\nsubindex MM of M"
    prog, table = make_table(decls, {"nb": 8}, seg=4, sub=2)
    mm = table[prog.index_id("MM")]
    assert mm.is_subindex
    assert mm.per_segment == 2
    assert mm.n_segments == 4  # 2 segments x 2 subsegments
    assert [s.length for s in mm.segments] == [2, 2, 2, 2]
    assert list(mm.subvalues_of(1)) == [1, 2]
    assert list(mm.subvalues_of(2)) == [3, 4]
    assert mm.super_segment_of(3) == 2


def test_subindex_ragged():
    decls = "symbolic nb\naoindex M = 1, nb\nsubindex MM of M"
    prog, table = make_table(decls, {"nb": 6}, seg=4, sub=2)
    mm = table[prog.index_id("MM")]
    # segments of M: [0:4), [4:6); subsegments: [0:2),[2:4),[4:6),[6:6)
    assert [s.length for s in mm.segments] == [2, 2, 2, 0]


def test_missing_symbolic_value_raises():
    with pytest.raises(ValueError, match="missing values"):
        make_table("symbolic nb\naoindex M = 1, nb")


def test_empty_index_range_rejected():
    with pytest.raises(ValueError, match="empty range"):
        make_table("symbolic nb\naoindex M = 5, nb", {"nb": 2})


def test_segment_number_out_of_range():
    prog, table = make_table("symbolic nb\naoindex M = 1, nb", {"nb": 8})
    m = table[prog.index_id("M")]
    with pytest.raises(IndexError):
        m.segment(3)
    with pytest.raises(IndexError):
        m.segment(0)


def test_array_shape_and_block_space():
    decls = "symbolic nb\naoindex M = 1, nb\naoindex N = 1, nb\ntemp A(M, N)"
    prog, table = make_table(decls, {"nb": 10}, seg=4)
    desc = prog.array_table[prog.array_id("A")]
    assert table.array_shape(desc) == (10, 10)
    assert [list(r) for r in table.array_block_space(desc)] == [
        [1, 2, 3],
        [1, 2, 3],
    ]


def test_block_shape_ragged_corner():
    decls = "symbolic nb\naoindex M = 1, nb\naoindex N = 1, nb\ntemp A(M, N)"
    prog, table = make_table(decls, {"nb": 10}, seg=4)
    desc = prog.array_table[prog.array_id("A")]
    assert block_shape(table, desc, (1, 1)) == (4, 4)
    assert block_shape(table, desc, (3, 3)) == (2, 2)
    assert block_shape(table, desc, (1, 3)) == (4, 2)


def test_block_nbytes_doubles():
    assert block_nbytes((4, 4)) == 128
    assert block_nbytes(()) == 8


def test_block_id_hashable_and_distinct():
    a = BlockId(0, (1, 2))
    b = BlockId(0, (1, 2))
    c = BlockId(1, (1, 2))
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
    assert len({a, b, c}) == 2


def test_block_copy_independent():
    import numpy as np

    block = Block((2, 2), np.ones((2, 2)))
    clone = block.copy()
    clone.data[0, 0] = 5.0
    assert block.data[0, 0] == 1.0
    model = Block((2, 2), None)
    assert model.copy().data is None
