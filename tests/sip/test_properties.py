"""Property-based tests (hypothesis) for SIP core data structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import CostModel
from repro.machines import LAPTOP
from repro.sip.backend import KernelOperand, RealBackend
from repro.sip.blocks import Block, BlockId
from repro.sip.cache import BlockCache
from repro.sip.memory import BlockPool, OutOfBlockMemory
from repro.sip.scheduler import GuidedScheduler, StaticScheduler

backend = RealBackend(CostModel(LAPTOP))


# ---------------------------------------------------------------------------
# kernels vs numpy
# ---------------------------------------------------------------------------
@st.composite
def contraction_case(draw):
    """Random contraction: operand index sets with controlled overlap."""
    n_total = draw(st.integers(min_value=2, max_value=6))
    ids = list(range(n_total))
    a_len = draw(st.integers(min_value=1, max_value=n_total - 1))
    a_ids = ids[:a_len]
    n_shared = draw(st.integers(min_value=0, max_value=a_len))
    b_rest = ids[a_len:]
    b_ids = a_ids[:n_shared] + b_rest
    if not b_ids:
        b_ids = [ids[0]]
    b_perm = draw(st.permutations(b_ids))
    out_ids = sorted(set(a_ids).symmetric_difference(set(b_perm)))
    if not out_ids:
        out_ids = []  # full contraction handled separately
    out_perm = draw(st.permutations(out_ids)) if out_ids else []
    dims = {i: draw(st.integers(min_value=1, max_value=3)) for i in ids}
    return a_ids, list(b_perm), list(out_perm), dims


@given(contraction_case(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_contraction_matches_einsum(case, seed):
    a_ids, b_ids, out_ids, dims = case
    if not out_ids:
        return  # scalar case covered below
    rng = np.random.default_rng(seed)
    a_data = rng.standard_normal([dims[i] for i in a_ids])
    b_data = rng.standard_normal([dims[i] for i in b_ids])
    out_shape = tuple(dims[i] for i in out_ids)
    a = KernelOperand(shape=a_data.shape, index_ids=tuple(a_ids), data=a_data)
    b = KernelOperand(shape=b_data.shape, index_ids=tuple(b_ids), data=b_data)
    out = KernelOperand(
        shape=out_shape, index_ids=tuple(out_ids), data=np.zeros(out_shape)
    )
    backend.contract(out, "=", a, b)

    letters = {i: chr(ord("a") + i) for i in dims}
    spec = (
        "".join(letters[i] for i in a_ids)
        + ","
        + "".join(letters[i] for i in b_ids)
        + "->"
        + "".join(letters[i] for i in out_ids)
    )
    ref = np.einsum(spec, a_data, b_data)
    assert np.allclose(out.data, ref, atol=1e-10)


@given(
    st.permutations(list(range(4))),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=40, deadline=None)
def test_copy_is_transpose(perm, seed):
    rng = np.random.default_rng(seed)
    shape = (2, 3, 4, 5)
    src_data = rng.standard_normal(shape)
    src = KernelOperand(shape=shape, index_ids=(0, 1, 2, 3), data=src_data)
    dst_shape = tuple(shape[p] for p in perm)
    dst = KernelOperand(
        shape=dst_shape,
        index_ids=tuple(perm),
        data=np.zeros(dst_shape),
    )
    backend.copy(dst, src)
    assert np.array_equal(dst.data, src_data.transpose(perm))


@given(
    st.permutations(list(range(3))),
    st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=30, deadline=None)
def test_copy_roundtrip_identity(perm, seed):
    """permute there and back == identity."""
    rng = np.random.default_rng(seed)
    shape = (3, 4, 5)
    original = rng.standard_normal(shape)
    src = KernelOperand(shape=shape, index_ids=(0, 1, 2), data=original.copy())
    mid_shape = tuple(shape[p] for p in perm)
    mid = KernelOperand(
        shape=mid_shape, index_ids=tuple(perm), data=np.zeros(mid_shape)
    )
    backend.copy(mid, src)
    back = KernelOperand(shape=shape, index_ids=(0, 1, 2), data=np.zeros(shape))
    backend.copy(back, mid)
    assert np.array_equal(back.data, original)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_scalar_contract_commutative(seed):
    rng = np.random.default_rng(seed)
    a_data = rng.standard_normal((3, 4))
    b_data = rng.standard_normal((4, 3))
    a = KernelOperand(shape=(3, 4), index_ids=(0, 1), data=a_data)
    b = KernelOperand(shape=(4, 3), index_ids=(1, 0), data=b_data)
    v1, _ = backend.scalar_contract(a, b)
    v2, _ = backend.scalar_contract(b, a)
    assert v1 == pytest.approx(v2, rel=1e-12)


# ---------------------------------------------------------------------------
# block pool
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["alloc", "free"]),
            st.integers(min_value=1, max_value=8),
        ),
        max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_pool_accounting_invariants(ops):
    pool = BlockPool(budget_bytes=10_000, real=True)
    live: list = []
    expected = 0
    for op, size in ops:
        if op == "alloc":
            nbytes = size * size * 8
            try:
                block = pool.allocate((size, size))
            except OutOfBlockMemory:
                assert expected + nbytes > 10_000
                continue
            live.append(block)
            expected += nbytes
        elif live:
            block = live.pop()
            expected -= block.nbytes
            pool.free(block)
        assert pool.stats.bytes_in_use == expected
        assert pool.stats.bytes_in_use <= 10_000
        assert pool.stats.peak_bytes >= pool.stats.bytes_in_use
    assert pool.stats.blocks_in_use == len(live)


# ---------------------------------------------------------------------------
# LRU cache
# ---------------------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.integers(min_value=0, max_value=20), max_size=80),
)
@settings(max_examples=50, deadline=None)
def test_cache_never_exceeds_capacity_and_serves_recent(capacity, keys):
    cache = BlockCache(capacity)
    for k in keys:
        cache.insert_ready(BlockId(0, (k,)), Block((1,), None))
        assert len(cache) <= capacity
    # the most recently inserted key is always resident
    if keys:
        assert BlockId(0, (keys[-1],)) in cache


# ---------------------------------------------------------------------------
# schedulers
# ---------------------------------------------------------------------------
@given(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_guided_covers_every_iteration_once(n_iter, workers, factor):
    iters = [(i,) for i in range(n_iter)]
    sched = GuidedScheduler(iters, workers, chunk_factor=factor)
    seen = []
    sizes = []
    while not sched.done:
        chunk = sched.next_chunk()
        assert chunk
        sizes.append(len(chunk))
        seen.extend(chunk)
    assert seen == iters
    assert sizes == sorted(sizes, reverse=True)


@given(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=60, deadline=None)
def test_static_covers_every_iteration_once(n_iter, workers):
    iters = [(i,) for i in range(n_iter)]
    sched = StaticScheduler(iters, workers)
    seen = []
    for w in range(workers):
        seen.extend(sched.next_chunk_for(w))
    assert seen == iters
