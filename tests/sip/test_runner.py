"""End-to-end tests: SIAL programs executed on the simulated SIP."""

import numpy as np
import pytest

from repro.sip import (
    BarrierViolation,
    InfeasibleComputation,
    SIPConfig,
    SIPError,
    run_source,
)


def cfg(**kw):
    defaults = dict(workers=2, io_servers=1, segment_size=3)
    defaults.update(kw)
    return SIPConfig(**defaults)


def wrap(decls, body, name="t"):
    return f"sial {name}\n{decls}\n{body}\nendsial {name}\n"


BASIC_DECLS = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed D(M, N)
temp T(M, N)
scalar e
"""


def test_put_then_get_roundtrip():
    src = wrap(
        BASIC_DECLS,
        """
pardo M, N
  T(M, N) = 1.0
  put D(M, N) = T(M, N)
endpardo M, N
""",
    )
    res = run_source(src, cfg(), symbolics={"nb": 7})
    assert np.all(res.array("D") == 1.0)
    assert res.elapsed > 0


def test_fill_with_scalar_expression():
    src = wrap(
        BASIC_DECLS,
        """
e = 2.0 + 1.5
pardo M, N
  T(M, N) = e
  put D(M, N) = T(M, N)
endpardo M, N
""",
    )
    res = run_source(src, cfg(), symbolics={"nb": 6})
    assert np.all(res.array("D") == 3.5)
    assert res.scalar("e") == 3.5


def test_permuted_copy_through_distributed():
    src = wrap(
        BASIC_DECLS + "distributed DT(M, N)\ntemp P(M, N)\n",
        """
pardo M, N
  T(M, N) = 0.0
  if M == N
    T(M, N) = 1.0
  endif
  put D(M, N) = T(M, N)
endpardo M, N
sip_barrier
pardo M, N
  get D(N, M)
  P(M, N) = D(N, M)
  put DT(M, N) = P(M, N)
endpardo M, N
""",
    )
    res = run_source(src, cfg(workers=3), symbolics={"nb": 7})
    D = res.array("D")
    DT = res.array("DT")
    assert np.allclose(DT, D.T)


def test_distributed_contraction_matches_numpy():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
temp TA(M, L)
temp TC(M, N)
"""
    body = """
pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  put C(M, N) = TC(M, N)
endpardo M, N
"""
    rng = np.random.default_rng(7)
    a = rng.standard_normal((8, 8))
    b = rng.standard_normal((8, 8))
    res = run_source(
        wrap(decls, body),
        cfg(workers=3, inputs={"A": a, "B": b}),
        symbolics={"nb": 8},
    )
    assert np.allclose(res.array("C"), a @ b)


def test_contract_accumulate_direct():
    # R += A*B without a temp for the product
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
temp TC(M, N)
"""
    body = """
pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  TC(M, N) *= 2.0
  put C(M, N) = TC(M, N)
endpardo M, N
"""
    rng = np.random.default_rng(8)
    a = rng.standard_normal((6, 6))
    b = rng.standard_normal((6, 6))
    res = run_source(
        wrap(decls, body), cfg(inputs={"A": a, "B": b}), symbolics={"nb": 6}
    )
    assert np.allclose(res.array("C"), 2.0 * (a @ b))


def test_accumulate_put_sums_worker_contributions():
    # every (M, N) pardo iteration accumulates 1.0 into D(1..)-style
    # block owned elsewhere; total must equal number of contributions
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
"""
    body = """
pardo M, N
  T(M, N) = 1.0
  put D(M, N) += T(M, N)
endpardo M, N
sip_barrier
pardo M, N
  T(M, N) = 1.0
  put D(M, N) += T(M, N)
endpardo M, N
"""
    res = run_source(wrap(decls, body), cfg(workers=4), symbolics={"nb": 6})
    assert np.all(res.array("D") == 2.0)


def test_scalar_contract_and_collective():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
scalar etot
"""
    body = """
pardo M, N
  get D(M, N)
  T(M, N) = D(M, N)
  etot += T(M, N) * T(M, N)
endpardo M, N
collective etot
"""
    rng = np.random.default_rng(9)
    d = rng.standard_normal((7, 7))
    res = run_source(
        wrap(decls, body), cfg(workers=3, inputs={"D": d}), symbolics={"nb": 7}
    )
    assert res.scalar("etot") == pytest.approx(float(np.sum(d * d)))


def test_served_array_roundtrip():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
served SV(M, N)
distributed D(M, N)
temp T(M, N)
"""
    body = """
pardo M, N
  T(M, N) = 4.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
server_barrier
pardo M, N
  request SV(M, N)
  T(M, N) = SV(M, N)
  put D(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(wrap(decls, body), cfg(workers=3, io_servers=2), symbolics={"nb": 8})
    assert np.all(res.array("D") == 4.0)
    assert np.all(res.array("SV") == 4.0)
    assert res.stats["disk_writes"] > 0


def test_served_accumulate():
    decls = """
symbolic nb
aoindex M = 1, nb
served SV(M, M)
temp T(M, M)
"""
    body = """
pardo M
  T(M, M) = 1.5
  prepare SV(M, M) += T(M, M)
endpardo M
server_barrier
pardo M
  T(M, M) = 1.5
  prepare SV(M, M) += T(M, M)
endpardo M
"""
    res = run_source(wrap(decls, body), cfg(), symbolics={"nb": 6})
    sv = res.array("SV")
    # only diagonal blocks were prepared
    for blk in range(2):
        sl = slice(3 * blk, 3 * blk + 3)
        assert np.all(sv[sl, sl] == 3.0)


def test_served_eviction_to_disk_and_reload():
    # tiny server cache forces eviction to disk between phases
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
served SV(M, N)
distributed D(M, N)
temp T(M, N)
"""
    body = """
pardo M, N
  T(M, N) = 7.0
  prepare SV(M, N) = T(M, N)
endpardo M, N
server_barrier
pardo M, N
  request SV(M, N)
  T(M, N) = SV(M, N)
  put D(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(decls, body),
        cfg(workers=2, io_servers=1, server_cache_blocks=2, segment_size=2),
        symbolics={"nb": 8},
    )
    assert np.all(res.array("D") == 7.0)
    assert res.stats["disk_reads"] > 0  # some blocks had to come from disk


def test_barrier_violation_detected():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
"""
    # write then read the same array without a barrier
    body = """
pardo M, N
  T(M, N) = 1.0
  put D(M, N) = T(M, N)
endpardo M, N
pardo M, N
  get D(N, M)
  T(M, N) = D(N, M)
endpardo M, N
"""
    with pytest.raises(BarrierViolation):
        run_source(wrap(decls, body), cfg(workers=4), symbolics={"nb": 6})


def test_barrier_violation_suppressed_when_disabled():
    decls = """
symbolic nb
aoindex M = 1, nb
distributed D(M, M)
temp T(M, M)
"""
    body = """
pardo M
  T(M, M) = 1.0
  put D(M, M) = T(M, M)
endpardo M
pardo M
  get D(M, M)
  T(M, M) = D(M, M)
endpardo M
"""
    # with validation off the (racy) program runs to completion
    res = run_source(
        wrap(decls, body),
        cfg(workers=2, validate_barriers=False),
        symbolics={"nb": 6},
    )
    assert res.elapsed > 0


def test_where_clause_limits_iterations():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
"""
    body = """
pardo M, N where M < N
  T(M, N) = 1.0
  put D(M, N) = T(M, N)
endpardo M, N
"""
    res = run_source(wrap(decls, body), cfg(workers=2), symbolics={"nb": 6})
    d = res.array("D")
    assert np.all(d[0:3, 3:6] == 1.0)  # block (1,2) written
    assert np.all(d[0:3, 0:3] == 0.0)  # diagonal blocks untouched
    totals = res.profile.pardo_totals()
    assert totals[0].iterations == 1


def test_procedures_and_do_loops():
    decls = """
symbolic nb
aoindex M = 1, nb
index rep = 1, 3
distributed D(M, M)
temp T(M, M)
scalar counter
"""
    body = """
proc bump
  counter += 1.0
endproc bump
do rep
  call bump
enddo rep
pardo M
  T(M, M) = counter
  put D(M, M) = T(M, M)
endpardo M
"""
    res = run_source(wrap(decls, body), cfg(), symbolics={"nb": 6})
    assert res.scalar("counter") == 3.0
    d = res.array("D")
    assert d[0, 0] == 3.0


def test_subindex_slice_and_insert():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
subindex MM of M
distributed D(M, N)
temp TI(M, N)
temp TS(MM, N)
"""
    # slice each block into subblocks, scale them, insert back
    body = """
pardo M, N
  TI(M, N) = 2.0
  do MM in M
    TS(MM, N) = TI(MM, N)
    TS(MM, N) *= 3.0
    TI(MM, N) = TS(MM, N)
  enddo MM
  put D(M, N) = TI(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(decls, body),
        cfg(workers=2, segment_size=4, subsegments_per_segment=2),
        symbolics={"nb": 8},
    )
    assert np.all(res.array("D") == 6.0)


def test_blocks_to_list_and_list_to_blocks_between_programs():
    decls = """
symbolic nb
aoindex M = 1, nb
distributed D(M, M)
temp T(M, M)
"""
    writer = wrap(decls, """
pardo M
  T(M, M) = 9.0
  put D(M, M) = T(M, M)
endpardo M
sip_barrier
blocks_to_list D
""", name="writer")
    reader = wrap(decls + "distributed OUT(M, M)\n", """
list_to_blocks D
pardo M
  get D(M, M)
  T(M, M) = D(M, M)
  put OUT(M, M) = T(M, M)
endpardo M
""", name="reader")
    store = {}
    run_source(writer, cfg(external_store=store), symbolics={"nb": 6})
    assert "d" in store
    res = run_source(reader, cfg(external_store=store), symbolics={"nb": 6})
    out = res.array("OUT")
    assert out[0, 0] == 9.0


def test_checkpoint_saves_all_distributed_arrays_and_scalars():
    decls = """
symbolic nb
aoindex M = 1, nb
distributed D(M, M)
distributed E(M, M)
temp T(M, M)
scalar iterdone
"""
    body = """
pardo M
  T(M, M) = 1.0
  put D(M, M) = T(M, M)
  put E(M, M) = T(M, M)
endpardo M
iterdone = 5.0
sip_barrier
checkpoint
"""
    store = {}
    run_source(wrap(decls, body), cfg(external_store=store), symbolics={"nb": 6})
    assert "d" in store and "e" in store
    assert store["__scalars__"][0] == 5.0


def test_custom_super_instruction_execute():
    calls = []

    def my_super(call):
        calls.append(call.name)
        if call.real:
            call.blocks[0].data[...] = call.scalars[0]
        return 100.0

    decls = """
symbolic nb
aoindex M = 1, nb
distributed D(M, M)
temp T(M, M)
"""
    body = """
pardo M
  T(M, M) = 0.0
  execute setval T(M, M), 4.5
  put D(M, M) = T(M, M)
endpardo M
"""
    res = run_source(
        wrap(decls, body),
        cfg(superinstructions={"setval": my_super}),
        symbolics={"nb": 6},
    )
    assert calls == ["setval", "setval"]
    assert res.array("D")[0, 0] == 4.5


def test_unknown_super_instruction_reported():
    decls = "symbolic nb\naoindex M = 1, nb\ntemp T(M, M)\n"
    body = "pardo M\nT(M, M) = 0.0\nexecute nosuch T(M, M)\nendpardo\n"
    with pytest.raises(SIPError, match="unknown super instruction"):
        run_source(wrap(decls, body), cfg(), symbolics={"nb": 6})


def test_model_mode_runs_without_data():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
temp TC(M, N)
"""
    body = """
pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  put C(M, N) = TC(M, N)
endpardo M, N
"""
    res = run_source(
        wrap(decls, body),
        cfg(workers=4, backend="model", inputs={"A": None, "B": None}),
        symbolics={"nb": 12},
    )
    assert res.elapsed > 0
    assert res.profile.total_busy > 0
    with pytest.raises(SIPError, match="model mode"):
        res.array("C")


def test_model_and_real_mode_same_simulated_time():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
"""
    body = """
pardo M, N
  T(M, N) = 1.0
  put D(M, N) = T(M, N)
endpardo M, N
"""
    r_real = run_source(wrap(decls, body), cfg(workers=2), symbolics={"nb": 6})
    r_model = run_source(
        wrap(decls, body), cfg(workers=2, backend="model"), symbolics={"nb": 6}
    )
    assert r_real.elapsed == pytest.approx(r_model.elapsed, rel=1e-9)


def test_deterministic_elapsed_time():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
"""
    body = """
pardo M, N
  T(M, N) = 1.0
  put D(M, N) += T(M, N)
endpardo M, N
"""
    times = {
        run_source(wrap(decls, body), cfg(workers=3), symbolics={"nb": 9}).elapsed
        for _ in range(3)
    }
    assert len(times) == 1


def test_get_of_unwritten_block_is_error():
    decls = "symbolic nb\naoindex M = 1, nb\ndistributed D(M, M)\ntemp T(M, M)\n"
    body = "pardo M\nget D(M, M)\nT(M, M) = D(M, M)\nendpardo\n"
    with pytest.raises(SIPError, match="unwritten"):
        run_source(wrap(decls, body), cfg(), symbolics={"nb": 6})


def test_memory_budget_enforced_via_dry_run():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
"""
    body = "pardo M, N\nT(M, N) = 1.0\nput D(M, N) = T(M, N)\nendpardo\n"
    with pytest.raises(InfeasibleComputation, match="INFEASIBLE"):
        run_source(
            wrap(decls, body),
            cfg(workers=1, memory_per_worker=10_000.0, segment_size=8),
            symbolics={"nb": 64},
        )


def test_more_workers_do_not_change_results():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
temp TC(M, N)
"""
    body = """
pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  put C(M, N) = TC(M, N)
endpardo M, N
"""
    rng = np.random.default_rng(11)
    a = rng.standard_normal((9, 9))
    b = rng.standard_normal((9, 9))
    results = [
        run_source(
            wrap(decls, body),
            cfg(workers=w, inputs={"A": a, "B": b}),
            symbolics={"nb": 9},
        ).array("C")
        for w in (1, 2, 5)
    ]
    for r in results[1:]:
        assert np.allclose(r, results[0])


def test_more_workers_reduce_elapsed_time():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
temp TC(M, N)
"""
    body = """
pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  put C(M, N) = TC(M, N)
endpardo M, N
"""
    times = [
        run_source(
            wrap(decls, body),
            cfg(workers=w, backend="model", inputs={"A": None, "B": None},
                segment_size=8),
            symbolics={"nb": 64},
        ).elapsed
        for w in (1, 4)
    ]
    assert times[1] < times[0] / 2  # at least 2x speedup from 4x workers


def test_prefetch_reduces_wait_time():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed C(M, N)
temp TC(M, N)
temp TB(L, N)
"""
    body = """
pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    TB(L, N) = 1.0
    TC(M, N) += A(M, L) * TB(L, N)
  enddo L
  put C(M, N) = TC(M, N)
endpardo M, N
"""
    from repro.machines import Machine

    slow_net = Machine(
        name="slownet",
        flop_rate=50e9,
        kernel_overhead=1e-6,
        latency=50e-6,
        bandwidth=0.05e9,
        memory_per_rank=4e9,
    )

    def run(depth):
        return run_source(
            wrap(decls, body),
            cfg(workers=2, backend="model", prefetch_depth=depth,
                inputs={"A": None}, segment_size=8, machine=slow_net),
            symbolics={"nb": 64},
        )

    no_prefetch = run(0)
    prefetch = run(3)
    assert prefetch.profile.total_wait < no_prefetch.profile.total_wait
    assert prefetch.elapsed < no_prefetch.elapsed


def test_profile_report_renders():
    decls = "symbolic nb\naoindex M = 1, nb\ndistributed D(M, M)\ntemp T(M, M)\n"
    body = "pardo M\nT(M, M) = 1.0\nput D(M, M) = T(M, M)\nendpardo\n"
    res = run_source(wrap(decls, body), cfg(), symbolics={"nb": 6})
    text = res.profile.report()
    assert "wait fraction" in text
    assert "pardo 0" in text


def test_allocate_deallocate_local_blocks():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
local LO(M, N)
distributed D(M, N)
"""
    body = """
pardo M, N
  allocate LO(M, N)
  LO(M, N) = 3.0
  put D(M, N) = LO(M, N)
  deallocate LO(M, N)
endpardo M, N
"""
    res = run_source(wrap(decls, body), cfg(), symbolics={"nb": 6})
    assert np.all(res.array("D") == 3.0)
    # at most one LO block live at a time on top of the owned D blocks
    # (6x6 array, 3x3 blocks, 2 workers -> <= 2 owned blocks per worker)
    assert res.stats["pool_peak_bytes"] <= 3 * 3 * 3 * 8


def test_create_delete_distributed():
    decls = """
symbolic nb
aoindex M = 1, nb
distributed D(M, M)
temp T(M, M)
"""
    body = """
create D
pardo M
  T(M, M) = 1.0
  put D(M, M) = T(M, M)
endpardo M
sip_barrier
delete D
"""
    res = run_source(wrap(decls, body), cfg(), symbolics={"nb": 6})
    assert np.all(res.array("D") == 0.0)  # deleted: gathers as zeros


def test_static_array_input_readable_everywhere():
    decls = """
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
static S(M, N)
distributed D(M, N)
temp T(M, N)
"""
    body = """
pardo M, N
  T(M, N) = S(M, N)
  put D(M, N) = T(M, N)
endpardo M, N
"""
    s = np.arange(36.0).reshape(6, 6)
    res = run_source(wrap(decls, body), cfg(workers=3, inputs={"S": s}), symbolics={"nb": 6})
    assert np.array_equal(res.array("D"), s)


def test_two_pardos_without_barrier_can_overlap():
    # not separated by a barrier and touching different arrays: legal
    decls = """
symbolic nb
aoindex M = 1, nb
distributed D1(M, M)
distributed D2(M, M)
temp T(M, M)
"""
    body = """
pardo M
  T(M, M) = 1.0
  put D1(M, M) = T(M, M)
endpardo M
pardo M
  T(M, M) = 2.0
  put D2(M, M) = T(M, M)
endpardo M
"""
    res = run_source(wrap(decls, body), cfg(workers=2), symbolics={"nb": 8})
    assert res.array("D1")[0, 0] == 1.0
    assert res.array("D2")[0, 0] == 2.0
