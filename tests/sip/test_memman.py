"""Unit tests for the unified per-rank MemoryManager.

Covers the victim cascade (clean cache replicas before spills), the
pinned-only OutOfBlockMemory floor, spill/fault-in round trips, adopted
input accounting, scratch capacity limits, simulated scratch time, and
injected scratch disk faults.
"""

import numpy as np
import pytest

from repro.machines import LAPTOP
from repro.simmpi.faults import FaultPlan, ResilienceStats
from repro.sip.blocks import Block, BlockId, block_nbytes
from repro.sip.config import SIPError
from repro.sip.memman import SPILL_ORDER, MemoryManager
from repro.sip.memory import OutOfBlockMemory

SHAPE = (4,)  # 32 B per float64 block
NBYTES = block_nbytes(SHAPE)


def bid(i):
    return BlockId(0, (i,))


def manager(budget_blocks=4, **kwargs):
    kwargs.setdefault("spill", True)
    return MemoryManager(
        budget_blocks * NBYTES,
        real=True,
        name="test",
        cache_blocks=8,
        nbytes_of=lambda block_id: NBYTES,
        **kwargs,
    )


def fill(mm, i, kind="temp"):
    """Allocate one registered pool block whose data encodes `i`."""
    block = mm.allocate(SHAPE)
    block.data[:] = float(i)
    mm.register(bid(i), block, kind)
    return block


def test_legacy_mode_pool_enforces_budget():
    mm = manager(budget_blocks=2, spill=False)
    fill(mm, 1)
    fill(mm, 2)
    with pytest.raises(OutOfBlockMemory):
        mm.allocate(SHAPE)
    assert mm.stats.cascades == 0  # legacy mode never cascades


def test_spill_makes_room_and_fault_in_restores_data():
    mm = manager(budget_blocks=2)
    b1 = fill(mm, 1)
    fill(mm, 2)
    fill(mm, 3)  # budget is 2 blocks: one victim must spill
    assert mm.stats.spills == 1
    assert mm.spilled_blocks == 1
    assert b1.data is None  # LRU-registered victim parked on scratch
    assert mm.bytes_in_use <= mm.budget_bytes
    mm.free(bid(3), mm._spillable[bid(3)][0])
    mm.touch(bid(1))
    assert mm.stats.faults_in == 1
    assert b1.data is not None
    np.testing.assert_array_equal(b1.data, np.full(SHAPE, 1.0))


def test_cascade_drops_clean_cache_before_spilling():
    mm = manager(budget_blocks=2)
    mm.cache_spill_ok = True
    mm.cache.insert_ready(bid(10), Block(SHAPE, np.zeros(SHAPE)))
    fill(mm, 1)
    fill(mm, 2)  # over budget: the clean replica must go first
    assert mm.stats.pressure_evictions == 1
    assert mm.stats.spills == 0
    assert bid(10) not in mm.cache


def test_spill_priority_order():
    assert SPILL_ORDER == ("temp", "local", "static", "owned")
    mm = manager(budget_blocks=3)
    owned = fill(mm, 1, kind="distributed")
    static = fill(mm, 2, kind="static")
    temp = fill(mm, 3, kind="temp")
    fill(mm, 4)  # one block over: the temp must be victimised first
    assert temp.data is None
    assert static.data is not None
    assert owned.data is not None


def test_pinned_blocks_survive_the_cascade():
    mm = manager(budget_blocks=2)
    pinned = fill(mm, 1)
    mm.pin_instr(bid(1))
    fill(mm, 2)
    fill(mm, 3)
    assert pinned.data is not None  # block 2 spilled instead
    mm.clear_instr_pins()
    assert not mm.pinned


def test_oom_only_when_pinned_floor_exceeds_budget():
    mm = manager(budget_blocks=2)
    fill(mm, 1)
    fill(mm, 2)
    mm.pin_instr(bid(1))
    mm.pin_instr(bid(2))
    with pytest.raises(OutOfBlockMemory, match="pinned and in-flight"):
        mm.allocate(SHAPE)
    assert mm.stats.oom_refusals == 1
    mm.clear_instr_pins()
    mm.allocate(SHAPE)  # same request succeeds once the pins are gone
    assert mm.stats.spills >= 1


def test_adopt_and_free_accounting():
    mm = manager(budget_blocks=4)
    block = Block(SHAPE, np.ones(SHAPE))
    mm.adopt(bid(1), block, "static")
    assert mm.adopted_bytes == NBYTES
    assert mm.bytes_in_use == NBYTES
    mm.free(bid(1), block)
    assert mm.adopted_bytes == 0
    assert mm.bytes_in_use == 0
    assert mm.pool.stats.frees == 0  # adopted blocks never hit the pool


def test_scratch_capacity_limits_spilling():
    mm = manager(budget_blocks=2, spill_capacity=float(NBYTES))
    fill(mm, 1)
    fill(mm, 2)
    fill(mm, 3)  # first spill fits on scratch
    assert mm.stats.spills == 1
    # scratch is now full; the next pressure event finds no victim and,
    # with everything else resident, the budget is genuinely exceeded
    with pytest.raises(OutOfBlockMemory):
        fill(mm, 4)


def test_scratch_io_charges_time_debt():
    mm = manager(budget_blocks=2, machine=LAPTOP)
    fill(mm, 1)
    fill(mm, 2)
    fill(mm, 3)
    assert mm.time_debt > 0.0
    debt = mm.take_time_debt()
    assert debt > 0.0
    assert mm.time_debt == 0.0


def test_no_machine_means_no_time_debt():
    mm = manager(budget_blocks=2)
    fill(mm, 1)
    fill(mm, 2)
    fill(mm, 3)
    assert mm.stats.spills == 1
    assert mm.time_debt == 0.0


def test_scratch_faults_are_retried_and_counted():
    plan = FaultPlan(seed=3, disk_write_error_rate=1.0, max_disk_errors=2)
    res = ResilienceStats()
    mm = manager(
        budget_blocks=2,
        machine=LAPTOP,
        faults=plan,
        fault_device="scratch0",
        resilience=res,
    )
    fill(mm, 1)
    fill(mm, 2)
    fill(mm, 3)  # spill hits two injected write errors, then succeeds
    assert mm.stats.spills == 1
    assert mm.stats.spill_write_retries == 2
    assert res.writeback_retries == 2
    assert plan.stats.disk_write_errors == 2


def test_scratch_fault_gives_up_after_retry_limit():
    plan = FaultPlan(seed=3, disk_write_error_rate=1.0)
    mm = manager(budget_blocks=2, machine=LAPTOP, faults=plan, retry_limit=3)
    fill(mm, 1)
    fill(mm, 2)
    with pytest.raises(SIPError, match="scratch write failed"):
        fill(mm, 3)


def test_restore_all_brings_every_block_back():
    mm = manager(budget_blocks=1)
    blocks = [fill(mm, i) for i in (1, 2, 3)]
    assert mm.spilled_blocks == 2
    mm.restore_all()
    assert mm.spilled_blocks == 0
    assert mm.spilled_out_bytes == 0
    for i, block in zip((1, 2, 3), blocks):
        np.testing.assert_array_equal(block.data, np.full(SHAPE, float(i)))


def test_peak_tracks_unified_residency():
    mm = manager(budget_blocks=8)
    fill(mm, 1)
    fill(mm, 2)
    assert mm.stats.peak_bytes == 2 * NBYTES
    mm.cache.insert_ready(bid(10), Block(SHAPE, np.zeros(SHAPE)))
    assert mm.stats.peak_bytes == 3 * NBYTES
