"""Tests for the runtime block-access sanitizer."""

import pytest

from repro.sip import BarrierViolation, SIPConfig, run_source

RACY = """
sial racy
symbolic nb
aoindex i = 1, nb
aoindex j = 1, nb
distributed D(i, i)
temp T(i, i)
pardo i, j
  T(i, i) = 1.0
  put D(i, i) = T(i, i)
endpardo i, j
sip_barrier
endsial racy
"""

CLEAN = """
sial clean
symbolic nb
aoindex i = 1, nb
aoindex j = 1, nb
distributed D(i, j)
temp T(i, j)
pardo i, j
  T(i, j) = 1.0
  put D(i, j) += T(i, j)
endpardo i, j
sip_barrier
endsial clean
"""

SERVED_RACY = """
sial served_racy
symbolic nb
aoindex i = 1, nb
aoindex j = 1, nb
served S(i, i)
temp T(i, i)
pardo i, j
  T(i, i) = 1.0
  prepare S(i, i) = T(i, i)
endpardo i, j
server_barrier
endsial served_racy
"""


def cfg(sanitize=True, **overrides):
    defaults = dict(workers=3, io_servers=1, segment_size=2, sanitize=sanitize)
    defaults.update(overrides)
    return SIPConfig(**defaults)


def test_racy_overwrite_put_reported():
    res = run_source(RACY, cfg(), {"nb": 4.0})
    rep = res.sanitizer_report
    assert rep is not None and not rep.ok
    assert rep.total_conflicts > 0
    conflict = rep.conflicts[0]
    assert conflict.kind == "write-write"
    assert conflict.array == "D"
    # both endpoints carry source line, pc, worker and pardo iteration
    for point in (conflict.first, conflict.second):
        assert point.line is not None
        assert point.pc >= 0
        assert point.iteration[0] == "iter"
    assert conflict.first.iteration != conflict.second.iteration


def test_owner_violations_recorded_not_raised():
    # without the sanitizer the owner-side tracker aborts the run ...
    with pytest.raises(BarrierViolation):
        run_source(RACY, cfg(sanitize=False), {"nb": 4.0})
    # ... with it, the run completes and the violation lands in the report
    res = run_source(RACY, cfg(), {"nb": 4.0})
    assert res.sanitizer_report.owner_violations


def test_clean_program_reports_no_conflicts():
    res = run_source(CLEAN, cfg(), {"nb": 4.0})
    rep = res.sanitizer_report
    assert rep is not None and rep.ok
    assert rep.accesses_recorded > 0
    assert rep.blocks_tracked > 0
    assert "no conflicts" in rep.render()


def test_served_prepare_overwrite_reported():
    res = run_source(SERVED_RACY, cfg(), {"nb": 4.0})
    rep = res.sanitizer_report
    assert rep is not None and not rep.ok
    assert any(c.array == "S" for c in rep.conflicts)


def test_sanitize_off_yields_no_report():
    res = run_source(CLEAN, cfg(sanitize=False), {"nb": 4.0})
    assert res.sanitizer_report is None


def test_sanitizer_consumes_no_simulated_time():
    on = run_source(CLEAN, cfg(), {"nb": 4.0})
    off = run_source(CLEAN, cfg(sanitize=False), {"nb": 4.0})
    assert on.elapsed == off.elapsed
    assert on.scalars == off.scalars
    assert on.stats["messages_sent"] == off.stats["messages_sent"]


def test_conflict_render_names_both_endpoints():
    res = run_source(RACY, cfg(), {"nb": 4.0})
    text = res.sanitizer_report.render()
    assert "write-write" in text
    assert "conflicts with" in text
    assert "line" in text
    assert "owner-side" in text


def test_env_var_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert SIPConfig().sanitize is True
    monkeypatch.delenv("REPRO_SANITIZE")
    assert SIPConfig().sanitize is False


def test_explicit_flag_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert SIPConfig(sanitize=True).sanitize is True


def test_conflicts_deduplicated_by_statement_pair():
    # 2x2 block grid -> several racing pairs, but all from one statement
    res = run_source(RACY, cfg(), {"nb": 4.0})
    rep = res.sanitizer_report
    assert len(rep.conflicts) == 1
    assert rep.total_conflicts >= len(rep.conflicts)
