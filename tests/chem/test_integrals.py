"""Unit tests for the synthetic integral generator."""

import numpy as np
import pytest

from repro.chem import make_integrals


@pytest.fixture(scope="module")
def ints():
    return make_integrals(8, seed=42)


def test_deterministic_by_seed():
    a = make_integrals(6, seed=1)
    b = make_integrals(6, seed=1)
    c = make_integrals(6, seed=2)
    assert np.array_equal(a.h, b.h)
    assert np.array_equal(a.eri, b.eri)
    assert not np.array_equal(a.eri, c.eri)


def test_core_hamiltonian_symmetric(ints):
    assert np.allclose(ints.h, ints.h.T)


def test_core_hamiltonian_diagonally_dominant(ints):
    diag = np.abs(np.diag(ints.h))
    off = np.abs(ints.h - np.diag(np.diag(ints.h))).sum(axis=1)
    assert np.all(diag > off)


def test_eri_eightfold_symmetry(ints):
    e = ints.eri
    for perm in [
        (1, 0, 2, 3),
        (0, 1, 3, 2),
        (1, 0, 3, 2),
        (2, 3, 0, 1),
        (3, 2, 0, 1),
        (2, 3, 1, 0),
        (3, 2, 1, 0),
    ]:
        assert np.allclose(e, e.transpose(perm)), perm


def test_coulomb_diagonal_positive(ints):
    n = ints.n_basis
    for p in range(n):
        for q in range(n):
            assert ints.eri[p, p, q, q] > 0


def test_eri_block_slicing(ints):
    block = ints.eri_block(((0, 4), (4, 8), (0, 4), (4, 8)))
    assert block.shape == (4, 4, 4, 4)
    assert np.array_equal(block, ints.eri[0:4, 4:8, 0:4, 4:8])


def test_h_block_slicing(ints):
    block = ints.h_block(((2, 5), (0, 8)))
    assert block.shape == (3, 8)
    assert np.array_equal(block, ints.h[2:5, 0:8])
