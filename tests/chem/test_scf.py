"""Unit tests for the SCF references."""

import numpy as np
import pytest

from repro.chem import fock_rhf, make_integrals, rhf, uhf


@pytest.fixture(scope="module")
def system():
    ints = make_integrals(8, seed=42)
    return ints, rhf(ints.h, ints.eri, n_occ=3)


def test_rhf_converges(system):
    _, res = system
    assert res.converged
    assert res.iterations < 60


def test_rhf_energy_below_core_guess(system):
    ints, res = system
    eps, c = np.linalg.eigh(ints.h)
    d0 = 2.0 * c[:, :3] @ c[:, :3].T
    f0 = fock_rhf(ints.h, ints.eri, d0)
    e_core_guess = 0.5 * float(np.sum(d0 * (ints.h + f0)))
    assert res.energy <= e_core_guess + 1e-12


def test_rhf_energy_monotone_history_tail(system):
    # after DIIS settles, energy changes become tiny
    _, res = system
    assert abs(res.history[-1] - res.history[-2]) < 1e-8


def test_density_trace_equals_electrons(system):
    _, res = system
    assert np.trace(res.density) == pytest.approx(6.0)


def test_density_idempotent(system):
    # orthonormal basis: (D/2)^2 = D/2 for RHF
    _, res = system
    half = res.density / 2.0
    assert np.allclose(half @ half, half, atol=1e-8)


def test_fock_density_commute_at_convergence(system):
    _, res = system
    comm = res.fock @ res.density - res.density @ res.fock
    assert np.max(np.abs(comm)) < 1e-8


def test_mo_coefficients_orthonormal(system):
    _, res = system
    c = res.mo_coeff
    assert np.allclose(c.T @ c, np.eye(c.shape[0]), atol=1e-10)


def test_orbital_energies_sorted(system):
    _, res = system
    assert np.all(np.diff(res.mo_energy) >= -1e-12)


def test_fock_rhf_matches_definition(system):
    ints, res = system
    f = fock_rhf(ints.h, ints.eri, res.density)
    j = np.einsum("mnls,ls->mn", ints.eri, res.density)
    k = np.einsum("mlns,ls->mn", ints.eri, res.density)
    assert np.allclose(f, ints.h + j - 0.5 * k)


def test_rhf_without_diis_same_answer(system):
    ints, res = system
    res2 = rhf(ints.h, ints.eri, 3, diis=False, max_iterations=500)
    assert res2.converged
    assert res2.energy == pytest.approx(res.energy, abs=1e-8)


def test_rhf_rejects_bad_occupation():
    ints = make_integrals(4, seed=0)
    with pytest.raises(ValueError):
        rhf(ints.h, ints.eri, n_occ=0)
    with pytest.raises(ValueError):
        rhf(ints.h, ints.eri, n_occ=5)


def test_uhf_converges_open_shell():
    ints = make_integrals(8, seed=42)
    res = uhf(ints.h, ints.eri, n_alpha=4, n_beta=3)
    assert res.converged
    assert np.trace(res.density) == pytest.approx(4.0)
    assert np.trace(res.density_b) == pytest.approx(3.0)


def test_uhf_closed_shell_matches_rhf():
    ints = make_integrals(8, seed=42)
    r = rhf(ints.h, ints.eri, n_occ=3)
    u = uhf(ints.h, ints.eri, n_alpha=3, n_beta=3)
    assert u.converged
    assert u.energy == pytest.approx(r.energy, abs=1e-7)
