"""Unit tests for MP2, LCCD, CCSD and (T) references."""

import numpy as np
import pytest

from repro.chem import (
    ao_to_mo,
    ccsd,
    ccsd_t,
    lccd,
    lccd_residual,
    make_integrals,
    mo_slices,
    mp2_density_spin,
    mp2_energy_rhf,
    mp2_energy_spin,
    n_occ_spin,
    rhf,
    spin_orbital_eri,
    spin_orbital_fock,
)

N_BASIS, N_OCC = 8, 3


@pytest.fixture(scope="module")
def system():
    ints = make_integrals(N_BASIS, seed=42)
    scf = rhf(ints.h, ints.eri, n_occ=N_OCC)
    assert scf.converged
    eri_mo = ao_to_mo(ints.eri, scf.mo_coeff)
    eri_so = spin_orbital_eri(eri_mo)
    eps_so = np.repeat(scf.mo_energy, 2)
    return ints, scf, eri_mo, eri_so, eps_so


def test_ao_to_mo_preserves_symmetry(system):
    _, _, eri_mo, _, _ = system
    assert np.allclose(eri_mo, eri_mo.transpose(1, 0, 2, 3))
    assert np.allclose(eri_mo, eri_mo.transpose(2, 3, 0, 1))


def test_ao_to_mo_identity_coefficients():
    ints = make_integrals(5, seed=3)
    assert np.allclose(ao_to_mo(ints.eri, np.eye(5)), ints.eri)


def test_spin_orbital_eri_antisymmetry(system):
    _, _, _, eri_so, _ = system
    assert np.allclose(eri_so, -eri_so.transpose(0, 1, 3, 2))
    assert np.allclose(eri_so, -eri_so.transpose(1, 0, 2, 3))
    assert np.allclose(eri_so, eri_so.transpose(1, 0, 3, 2))


def test_spin_orbital_fock_diagonal(system):
    _, scf, _, _, _ = system
    f = spin_orbital_fock(scf.mo_energy)
    assert f.shape == (2 * N_BASIS, 2 * N_BASIS)
    assert np.allclose(f, np.diag(np.diag(f)))


def test_mp2_negative(system):
    _, scf, eri_mo, _, _ = system
    e = mp2_energy_rhf(eri_mo, scf.mo_energy, N_OCC)
    assert e < 0


def test_mp2_spatial_equals_spin_orbital(system):
    """Strong cross-check of the whole transform chain."""
    _, scf, eri_mo, eri_so, eps_so = system
    e_spatial = mp2_energy_rhf(eri_mo, scf.mo_energy, N_OCC)
    e_spin = mp2_energy_spin(eri_so, eps_so, n_occ_spin(N_OCC))
    assert e_spin == pytest.approx(e_spatial, abs=1e-12)


def test_mp2_density_traceless_blocks(system):
    _, _, _, eri_so, eps_so = system
    dm = mp2_density_spin(eri_so, eps_so, n_occ_spin(N_OCC))
    no = n_occ_spin(N_OCC)
    # occupied block depletes, virtual block fills, by the same amount
    assert np.trace(dm[:no, :no]) < 0
    assert np.trace(dm[no:, no:]) > 0
    assert np.trace(dm[:no, :no]) == pytest.approx(-np.trace(dm[no:, no:]))
    assert np.allclose(dm, dm.T)


def test_ccsd_converges(system):
    _, _, _, eri_so, eps_so = system
    cc = ccsd(eps_so, eri_so, n_occ_spin(N_OCC), tolerance=1e-11)
    assert cc.converged
    assert cc.e_corr < 0


def test_ccsd_first_iteration_is_mp2(system):
    _, scf, eri_mo, eri_so, eps_so = system
    cc = ccsd(eps_so, eri_so, n_occ_spin(N_OCC), max_iterations=1)
    e_mp2 = mp2_energy_rhf(eri_mo, scf.mo_energy, N_OCC)
    assert cc.history[0] == pytest.approx(e_mp2, abs=1e-12)


def test_ccsd_beats_mp2(system):
    _, scf, eri_mo, eri_so, eps_so = system
    cc = ccsd(eps_so, eri_so, n_occ_spin(N_OCC), tolerance=1e-11)
    e_mp2 = mp2_energy_rhf(eri_mo, scf.mo_energy, N_OCC)
    assert cc.e_corr < e_mp2  # more correlation captured


def test_ccsd_t_small_negative(system):
    _, _, _, eri_so, eps_so = system
    cc = ccsd(eps_so, eri_so, n_occ_spin(N_OCC), tolerance=1e-11)
    et = ccsd_t(eps_so, eri_so, cc.t1, cc.t2, n_occ_spin(N_OCC))
    assert et < 0
    assert abs(et) < abs(cc.e_corr)


def test_ccsd_amplitude_antisymmetry(system):
    _, _, _, eri_so, eps_so = system
    cc = ccsd(eps_so, eri_so, n_occ_spin(N_OCC), tolerance=1e-11)
    t2 = cc.t2
    assert np.allclose(t2, -t2.transpose(1, 0, 2, 3), atol=1e-9)
    assert np.allclose(t2, -t2.transpose(0, 1, 3, 2), atol=1e-9)


def test_ccsd_size_consistency():
    """Two non-interacting copies: E_corr(AB) = 2 E_corr(A)."""
    n, no = 5, 2
    ints = make_integrals(n, seed=9)
    scf1 = rhf(ints.h, ints.eri, no)
    assert scf1.converged
    eri_mo1 = ao_to_mo(ints.eri, scf1.mo_coeff)

    # block-diagonal supersystem of two copies with zero coupling
    n2 = 2 * n
    h2 = np.zeros((n2, n2))
    h2[:n, :n] = ints.h
    h2[n:, n:] = ints.h
    # separate the two fragments energetically so occupation is 2x
    h2[n:, n:] -= 0.0
    eri2 = np.zeros((n2, n2, n2, n2))
    eri2[:n, :n, :n, :n] = ints.eri
    eri2[n:, n:, n:, n:] = ints.eri
    # fragments share no integrals -> non-interacting

    eps1 = np.repeat(scf1.mo_energy, 2)
    eso1 = spin_orbital_eri(eri_mo1)
    cc1 = ccsd(eps1, eso1, n_occ_spin(no), tolerance=1e-11)

    scf2 = rhf(h2, eri2, 2 * no)
    assert scf2.converged
    assert scf2.energy == pytest.approx(2 * scf1.energy, abs=1e-7)
    eri_mo2 = ao_to_mo(eri2, scf2.mo_coeff)
    eso2 = spin_orbital_eri(eri_mo2)
    eps2 = np.repeat(scf2.mo_energy, 2)
    cc2 = ccsd(eps2, eso2, n_occ_spin(2 * no), tolerance=1e-11)
    assert cc2.e_corr == pytest.approx(2 * cc1.e_corr, abs=1e-7)


def test_lccd_converges_and_is_negative(system):
    _, _, _, eri_so, eps_so = system
    lc = lccd(eps_so, eri_so, n_occ_spin(N_OCC), iterations=40, tolerance=1e-12)
    assert lc.converged
    assert lc.e_corr < 0


def test_lccd_first_iteration_is_mp2(system):
    _, scf, eri_mo, eri_so, eps_so = system
    lc = lccd(eps_so, eri_so, n_occ_spin(N_OCC), iterations=1)
    e_mp2 = mp2_energy_rhf(eri_mo, scf.mo_energy, N_OCC)
    assert lc.history[0] == pytest.approx(e_mp2, abs=1e-12)


def test_lccd_residual_driver_only_at_t2_zero(system):
    _, _, _, eri_so, _ = system
    no = n_occ_spin(N_OCC)
    nso = eri_so.shape[0]
    t2 = np.zeros((no, no, nso - no, nso - no))
    r = lccd_residual(eri_so, t2, no)
    o, v = slice(0, no), slice(no, nso)
    assert np.array_equal(r, eri_so[o, o, v, v])


def test_lccd_fixed_iterations_deterministic(system):
    _, _, _, eri_so, eps_so = system
    a = lccd(eps_so, eri_so, n_occ_spin(N_OCC), iterations=6)
    b = lccd(eps_so, eri_so, n_occ_spin(N_OCC), iterations=6)
    assert a.e_corr == b.e_corr
    assert np.array_equal(a.t2, b.t2)
