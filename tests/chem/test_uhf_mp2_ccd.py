"""Tests for UHF MP2, the UHF spin-orbital transform, and CCD."""

import numpy as np
import pytest

from repro.chem import (
    ao_to_mo,
    ccd,
    ccsd,
    lccd,
    make_integrals,
    mp2_energy_rhf,
    mp2_energy_spin,
    mp2_energy_uhf,
    rhf,
    spin_orbital_eri,
    spin_orbital_eri_uhf,
    uhf,
)


@pytest.fixture(scope="module")
def open_shell():
    n, na, nb = 7, 3, 2
    ints = make_integrals(n, seed=5)
    scf = uhf(ints.h, ints.eri, na, nb)
    assert scf.converged
    return n, na, nb, ints, scf


def _uhf_channels(n, na, nb, ints, scf):
    ca, cb = scf.mo_coeff, scf.mo_coeff_b
    mo_aa = ao_to_mo(ints.eri, ca)
    mo_bb = ao_to_mo(ints.eri, cb)
    tmp = np.einsum("mp,mnls->pnls", ca, ints.eri, optimize=True)
    tmp = np.einsum("nq,pnls->pqls", ca, tmp, optimize=True)
    tmp = np.einsum("lr,pqls->pqrs", cb, tmp, optimize=True)
    mo_ab = np.einsum("st,pqrs->pqrt", cb, tmp, optimize=True)
    oa, va = slice(0, na), slice(na, n)
    ob, vb = slice(0, nb), slice(nb, n)
    return mo_aa[oa, va, oa, va], mo_bb[ob, vb, ob, vb], mo_ab[oa, va, ob, vb]


def test_uhf_mp2_negative(open_shell):
    n, na, nb, ints, scf = open_shell
    aa, bb, ab = _uhf_channels(n, na, nb, ints, scf)
    e = mp2_energy_uhf(
        aa, bb, ab,
        scf.mo_energy[:na], scf.mo_energy[na:],
        scf.mo_energy_b[:nb], scf.mo_energy_b[nb:],
    )
    assert e < 0


def test_uhf_mp2_equals_spin_orbital_form(open_shell):
    """Spatial three-channel UHF MP2 == generic spin-orbital MP2."""
    n, na, nb, ints, scf = open_shell
    aa, bb, ab = _uhf_channels(n, na, nb, ints, scf)
    e_spatial = mp2_energy_uhf(
        aa, bb, ab,
        scf.mo_energy[:na], scf.mo_energy[na:],
        scf.mo_energy_b[:nb], scf.mo_energy_b[nb:],
    )
    # spin-orbital route: occupied first, then virtuals by energy
    energy = {(p, 0): scf.mo_energy[p] for p in range(n)}
    energy |= {(p, 1): scf.mo_energy_b[p] for p in range(n)}
    occ = [(p, 0) for p in range(na)] + [(p, 1) for p in range(nb)]
    virt = sorted(
        (x for x in energy if x not in occ), key=lambda x: energy[x]
    )
    order = np.array(occ + virt)
    eri_so = spin_orbital_eri_uhf(
        ints.eri, scf.mo_coeff, scf.mo_coeff_b, order
    )
    eps_so = np.array([energy[tuple(x)] for x in order])
    e_spin = mp2_energy_spin(eri_so, eps_so, na + nb)
    assert e_spatial == pytest.approx(e_spin, abs=1e-10)


def test_uhf_spin_orbital_eri_antisymmetric(open_shell):
    n, na, nb, ints, scf = open_shell
    order = np.array(
        [(p, 0) for p in range(na)]
        + [(p, 1) for p in range(nb)]
        + [(p, 0) for p in range(na, n)]
        + [(p, 1) for p in range(nb, n)]
    )
    eri_so = spin_orbital_eri_uhf(ints.eri, scf.mo_coeff, scf.mo_coeff_b, order)
    assert np.allclose(eri_so, -eri_so.transpose(0, 1, 3, 2), atol=1e-10)
    assert np.allclose(eri_so, -eri_so.transpose(1, 0, 2, 3), atol=1e-10)


def test_uhf_mp2_closed_shell_equals_rhf_mp2():
    n, no = 8, 3
    ints = make_integrals(n, seed=42)
    r = rhf(ints.h, ints.eri, no)
    u = uhf(ints.h, ints.eri, no, no)
    assert u.converged
    aa, bb, ab = _uhf_channels(n, no, no, ints, u)
    e_uhf = mp2_energy_uhf(
        aa, bb, ab,
        u.mo_energy[:no], u.mo_energy[no:],
        u.mo_energy_b[:no], u.mo_energy_b[no:],
    )
    eri_mo = ao_to_mo(ints.eri, r.mo_coeff)
    e_rhf = mp2_energy_rhf(eri_mo, r.mo_energy, no)
    assert e_uhf == pytest.approx(e_rhf, abs=1e-8)


# -- CCD -----------------------------------------------------------------
@pytest.fixture(scope="module")
def closed_shell():
    ints = make_integrals(8, seed=42)
    scf = rhf(ints.h, ints.eri, 3)
    eri_mo = ao_to_mo(ints.eri, scf.mo_coeff)
    eri_so = spin_orbital_eri(eri_mo)
    eps = np.repeat(scf.mo_energy, 2)
    return eri_so, eps


def test_ccd_converges(closed_shell):
    eri_so, eps = closed_shell
    res = ccd(eps, eri_so, 6, tolerance=1e-11)
    assert res.converged
    assert res.e_corr < 0
    assert res.t1 is None


def test_ccd_first_iteration_is_mp2(closed_shell):
    eri_so, eps = closed_shell
    res = ccd(eps, eri_so, 6, max_iterations=1)
    e_mp2 = mp2_energy_spin(eri_so, eps, 6)
    assert res.history[0] == pytest.approx(e_mp2, abs=1e-12)


def test_method_hierarchy_ccd_between_lccd_and_ccsd(closed_shell):
    """|E_CCD| <= |E_LCCD| and CCD ~ CCSD minus singles effects."""
    eri_so, eps = closed_shell
    e_lccd = lccd(eps, eri_so, 6, iterations=60, tolerance=1e-12).e_corr
    e_ccd = ccd(eps, eri_so, 6, tolerance=1e-11).e_corr
    e_ccsd = ccsd(eps, eri_so, 6, tolerance=1e-11).e_corr
    # LCCD overbinds (no quadratic damping); CCD and CCSD are close
    assert e_lccd < e_ccd
    assert abs(e_ccd - e_ccsd) < 0.2 * abs(e_ccsd)


def test_ccd_t2_antisymmetry(closed_shell):
    eri_so, eps = closed_shell
    res = ccd(eps, eri_so, 6, tolerance=1e-11)
    assert np.allclose(res.t2, -res.t2.transpose(1, 0, 2, 3), atol=1e-9)
    assert np.allclose(res.t2, -res.t2.transpose(0, 1, 3, 2), atol=1e-9)
