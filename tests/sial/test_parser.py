"""Unit tests for the SIAL parser."""

import pytest

from repro.sial import ast_nodes as ast
from repro.sial.errors import ParseError
from repro.sial.parser import parse


def wrap(body, decls=""):
    return f"sial test\n{decls}\n{body}\nendsial test\n"


def test_program_name_roundtrip():
    prog = parse("sial my_prog\nendsial my_prog\n")
    assert prog.name == "my_prog"
    assert prog.body == []


def test_mismatched_endsial_name_rejected():
    with pytest.raises(ParseError, match="does not match"):
        parse("sial a\nendsial b\n")


def test_index_decl_with_symbolic_range():
    prog = parse(wrap("", decls="symbolic norb\naoindex M = 1, norb"))
    decl = [d for d in prog.decls if isinstance(d, ast.IndexDecl)][0]
    assert decl.name == "M"
    assert decl.kind == "ao"
    assert isinstance(decl.lo, ast.NumberLit)
    assert isinstance(decl.hi, ast.ScalarRef)


def test_array_decl_kinds():
    decls = """
symbolic n
aoindex i = 1, n
aoindex j = 1, n
static S(i, j)
temp T(i, j)
local L(i, j)
distributed D(i, j)
served V(i, j)
"""
    prog = parse(wrap("", decls=decls))
    kinds = {d.name: d.kind for d in prog.decls if isinstance(d, ast.ArrayDecl)}
    assert kinds == {
        "S": "static",
        "T": "temp",
        "L": "local",
        "D": "distributed",
        "V": "served",
    }


def test_subindex_decl():
    prog = parse(wrap("", decls="symbolic n\naoindex i = 1, n\nsubindex ii of i"))
    sub = [d for d in prog.decls if isinstance(d, ast.SubindexDecl)][0]
    assert sub.name == "ii"
    assert sub.super_name == "i"


def test_pardo_with_where_clauses():
    body = """
pardo M, N where M < N, N != 3
endpardo M, N
"""
    prog = parse(wrap(body, decls="symbolic n\naoindex M = 1, n\naoindex N = 1, n"))
    pardo = prog.body[0]
    assert isinstance(pardo, ast.Pardo)
    assert pardo.indices == ("M", "N")
    assert [c.op for c in pardo.where] == ["<", "!="]


def test_pardo_multiple_where_keywords():
    body = "pardo M, N where M < N where N < 5\nendpardo\n"
    prog = parse(wrap(body, decls="symbolic n\naoindex M = 1, n\naoindex N = 1, n"))
    assert len(prog.body[0].where) == 2


def test_endpardo_index_mismatch_rejected():
    body = "pardo M, N\nendpardo N, M\n"
    with pytest.raises(ParseError, match="do not match"):
        parse(wrap(body, decls="symbolic n\naoindex M = 1, n\naoindex N = 1, n"))


def test_do_and_do_in():
    body = """
do i
  do ii in i
  enddo ii
enddo i
"""
    prog = parse(wrap(body, decls="symbolic n\naoindex i = 1, n\nsubindex ii of i"))
    do = prog.body[0]
    assert isinstance(do, ast.Do)
    doin = do.body[0]
    assert isinstance(doin, ast.DoIn)
    assert doin.subindex == "ii"
    assert doin.super_index == "i"


def test_if_else():
    body = """
if x > 1.0
  y = 1.0
else
  y = 2.0
endif
"""
    prog = parse(wrap(body, decls="scalar x\nscalar y"))
    node = prog.body[0]
    assert isinstance(node, ast.If)
    assert len(node.then_body) == 1
    assert len(node.else_body) == 1


def test_get_put_prepare_request():
    decls = """
symbolic n
aoindex i = 1, n
aoindex j = 1, n
distributed D(i, j)
served V(i, j)
temp T(i, j)
"""
    body = """
pardo i, j
get D(i, j)
request V(i, j)
T(i, j) = D(i, j)
put D(i, j) += T(i, j)
prepare V(i, j) = T(i, j)
endpardo i, j
"""
    prog = parse(wrap(body, decls=decls))
    pardo = prog.body[0]
    types = [type(s).__name__ for s in pardo.body]
    assert types == ["Get", "Request", "BlockAssign", "Put", "Prepare"]
    put = pardo.body[3]
    assert put.op == "+="


def test_put_requires_assignment():
    decls = "symbolic n\naoindex i = 1, n\ndistributed D(i)\n"
    with pytest.raises(ParseError, match="requires"):
        parse(wrap("pardo i\nput D(i)\nendpardo\n", decls=decls))


def test_contraction_expression():
    decls = """
symbolic n
aoindex a = 1, n
aoindex b = 1, n
aoindex c = 1, n
temp X(a, b)
temp Y(b, c)
temp Z(a, c)
"""
    body = "pardo a, c\ndo b\nZ(a, c) = X(a, b) * Y(b, c)\nenddo b\nendpardo\n"
    prog = parse(wrap(body, decls=decls))
    assign = prog.body[0].body[0].body[0]
    assert isinstance(assign, ast.BlockAssign)
    assert isinstance(assign.rhs, ast.BinaryOp)
    assert assign.rhs.op == "*"


def test_scalar_expression_precedence():
    prog = parse(wrap("x = 1 + 2 * 3\n", decls="scalar x"))
    assign = prog.body[0]
    assert isinstance(assign, ast.ScalarAssign)
    rhs = assign.rhs
    assert rhs.op == "+"
    assert isinstance(rhs.right, ast.BinaryOp)
    assert rhs.right.op == "*"


def test_parenthesized_expression():
    prog = parse(wrap("x = (1 + 2) * 3\n", decls="scalar x"))
    rhs = prog.body[0].rhs
    assert rhs.op == "*"
    assert rhs.left.op == "+"


def test_unary_minus():
    prog = parse(wrap("x = -y\n", decls="scalar x\nscalar y"))
    rhs = prog.body[0].rhs
    assert isinstance(rhs, ast.UnaryOp)


def test_proc_decl_and_call():
    src = """
sial p
scalar x
proc setx
  x = 1.0
endproc setx
call setx
endsial p
"""
    prog = parse(src)
    assert "setx" in prog.procs
    assert isinstance(prog.body[0], ast.Call)


def test_barriers_and_collective():
    decls = "scalar e"
    body = "sip_barrier\nserver_barrier\ncollective e\n"
    prog = parse(wrap(body, decls=decls))
    kinds = [getattr(s, "kind", None) for s in prog.body[:2]]
    assert kinds == ["sip", "server"]
    assert isinstance(prog.body[2], ast.Collective)


def test_execute_with_args():
    decls = "symbolic n\naoindex i = 1, n\ntemp T(i)\nscalar s"
    body = "pardo i\nexecute my_super T(i), s, 3.0\nendpardo\n"
    prog = parse(wrap(body, decls=decls))
    ex = prog.body[0].body[0]
    assert isinstance(ex, ast.Execute)
    assert ex.name == "my_super"
    assert len(ex.args) == 3


def test_blocks_to_list_and_checkpoint():
    decls = "symbolic n\naoindex i = 1, n\ndistributed D(i)"
    body = "blocks_to_list D\nlist_to_blocks D\ncheckpoint\n"
    prog = parse(wrap(body, decls=decls))
    types = [type(s).__name__ for s in prog.body]
    assert types == ["BlocksToList", "ListToBlocks", "Checkpoint"]


def test_create_delete_allocate_deallocate():
    decls = """
symbolic n
aoindex i = 1, n
aoindex j = 1, n
distributed D(i, j)
local L(i, j)
"""
    body = """
create D
pardo i, j
allocate L(i, j)
deallocate L(i, j)
endpardo
delete D
"""
    prog = parse(wrap(body, decls=decls))
    types = [type(s).__name__ for s in prog.body]
    assert types == ["Create", "Pardo", "Delete"]


def test_missing_endsial_reported():
    with pytest.raises(ParseError, match="endsial"):
        parse("sial oops\nx = 1\n")


def test_unexpected_keyword_as_statement():
    with pytest.raises(ParseError):
        parse(wrap("of x\n"))


def test_missing_newline_between_statements():
    with pytest.raises(ParseError):
        parse("sial t\nscalar x scalar y\nendsial t\n")


def test_paper_example_parses():
    src = """
sial contraction_example
symbolic norb
symbolic nocc
aoindex M = 1, norb
aoindex N = 1, norb
aoindex L = 1, norb
aoindex S = 1, norb
moindex I = 1, nocc
moindex J = 1, nocc
distributed T(L, S, I, J)
distributed R(M, N, I, J)
temp V(M, N, L, S)
temp tmp(M, N, I, J)
temp tmpsum(M, N, I, J)

pardo M, N, I, J
  tmpsum(M, N, I, J) = 0.0
  do L
    do S
      get T(L, S, I, J)
      compute_integrals V(M, N, L, S)
      tmp(M, N, I, J) = V(M, N, L, S) * T(L, S, I, J)
      tmpsum(M, N, I, J) += tmp(M, N, I, J)
    enddo S
  enddo L
  put R(M, N, I, J) = tmpsum(M, N, I, J)
endpardo M, N, I, J
endsial contraction_example
"""
    prog = parse(src)
    assert prog.name == "contraction_example"
    pardo = prog.body[0]
    assert isinstance(pardo, ast.Pardo)
    assert pardo.indices == ("M", "N", "I", "J")
