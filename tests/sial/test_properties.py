"""Property-based tests (hypothesis) for the SIAL front end."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sial.bytecode import evaluate_rpn
from repro.sial.compiler import compile_source
from repro.sial.lexer import KEYWORDS, TokenKind, tokenize
from repro.sial.parser import parse

# identifiers that do not collide with keywords
ident = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in KEYWORDS
)


@given(st.lists(ident, min_size=1, max_size=6, unique=True))
@settings(max_examples=50, deadline=None)
def test_lexer_preserves_identifier_order(names):
    source = " ".join(names)
    toks = [t for t in tokenize(source) if t.kind == TokenKind.IDENT]
    assert [t.text for t in toks] == names


@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_lexer_number_roundtrip(value):
    text = repr(value)
    toks = tokenize(f"x = {text}")
    numbers = [t for t in toks if t.kind == TokenKind.NUMBER]
    assert len(numbers) == 1
    assert float(numbers[0].text) == value


@given(st.text(alphabet=" \t\n#abcdefghij0123456789+-*/(),=<>", max_size=60))
@settings(max_examples=100, deadline=None)
def test_lexer_never_crashes_unexpectedly(text):
    """The lexer either tokenizes or raises its own diagnostic."""
    from repro.sial.errors import LexError

    try:
        toks = tokenize(text)
    except LexError:
        return
    assert toks[-1].kind == TokenKind.EOF


# -- scalar expression compilation --------------------------------------------
scalar_expr = st.recursive(
    st.one_of(
        st.integers(min_value=0, max_value=99).map(str),
        st.just("s1"),
        st.just("s2"),
    ),
    lambda inner: st.builds(
        lambda a, op, b: f"({a} {op} {b})",
        inner,
        st.sampled_from(["+", "-", "*"]),
        inner,
    ),
    max_leaves=8,
)


@given(scalar_expr)
@settings(max_examples=80, deadline=None)
def test_rpn_matches_python_eval(expr):
    source = f"sial t\nscalar s1\nscalar s2\nscalar out\nout = {expr}\nendsial t\n"
    prog = compile_source(source)
    assign = [i for i in prog.instructions if i.op == "SCALAR_ASSIGN"][0]
    _sid, _op, rpn = assign.args
    s1, s2 = 3.5, -1.25
    ours = evaluate_rpn(rpn, scalars=[s1, s2, 0.0])
    theirs = eval(expr, {"s1": s1, "s2": s2})  # noqa: S307 - test-local eval
    assert ours == theirs


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=50),
)
@settings(max_examples=40, deadline=None)
def test_nested_do_loops_compile_consistently(depth, hi):
    """Arbitrary nesting depth: jump targets always form matched pairs."""
    names = [f"i{k}" for k in range(depth)]
    decls = "\n".join(f"index {n} = 1, {hi}" for n in names)
    opens = "\n".join(f"do {n}" for n in names)
    closes = "\n".join(f"enddo {n}" for n in reversed(names))
    source = f"sial t\n{decls}\nscalar x\n{opens}\nx += 1.0\n{closes}\nendsial t\n"
    prog = compile_source(source)
    starts = [i for i in prog.instructions if i.op == "DO_START"]
    ends = [i for i in prog.instructions if i.op == "DO_END"]
    assert len(starts) == len(ends) == depth
    for s in starts:
        exit_pc = s.args[1]
        assert prog.instructions[exit_pc - 1].op == "DO_END"


@given(st.lists(ident, min_size=1, max_size=4, unique=True))
@settings(max_examples=40, deadline=None)
def test_pardo_index_lists_roundtrip(names):
    decls = "\n".join(f"aoindex {n} = 1, 8" for n in names)
    source = (
        f"sial t\n{decls}\npardo {', '.join(names)}\n"
        f"endpardo {', '.join(names)}\nendsial t\n"
    )
    prog = parse(source)
    assert prog.body[0].indices == tuple(names)


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=30))
@settings(max_examples=40, deadline=None)
def test_index_bounds_evaluate_exactly(lo, extra):
    hi = lo + extra
    source = f"sial t\nindex k = {lo}, {hi}\nendsial t\n"
    prog = compile_source(source)
    desc = prog.index_table[prog.index_id("k")]
    assert evaluate_rpn(desc.lo_rpn) == lo
    assert evaluate_rpn(desc.hi_rpn) == hi
