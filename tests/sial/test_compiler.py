"""Unit tests for the SIAL-to-bytecode compiler."""

import pytest

from repro.sial.bytecode import (
    CompiledCondition,
    Op,
    disassemble,
    evaluate_condition,
    evaluate_rpn,
)
from repro.sial.compiler import compile_source
from repro.sial.errors import SemanticError

DECLS = """
symbolic norb
aoindex M = 1, norb
aoindex N = 1, norb
aoindex L = 1, norb
scalar e
distributed D(M, N)
temp T(M, N)
local LO(M, N)
"""


def compile_body(body, decls=DECLS):
    return compile_source(f"sial t\n{decls}\n{body}\nendsial t\n")


def ops(prog):
    return [i.op for i in prog.instructions]


def test_tables_built():
    prog = compile_body("")
    assert [d.name for d in prog.index_table] == ["M", "N", "L"]
    assert [a.name for a in prog.array_table] == ["D", "T", "LO"]
    assert prog.scalar_table == ["e"]
    assert prog.symbolic_table == ["norb"]


def test_stop_terminates_main():
    prog = compile_body("e = 1.0")
    assert ops(prog) == [Op.SCALAR_ASSIGN, Op.STOP]


def test_do_loop_layout():
    prog = compile_body("do M\ne = 1.0\nenddo M\n")
    assert ops(prog) == [Op.DO_START, Op.SCALAR_ASSIGN, Op.DO_END, Op.STOP]
    start = prog.instructions[0]
    index_id, exit_pc, get_pcs = start.args
    assert index_id == prog.index_id("M")
    assert exit_pc == 3
    assert get_pcs == ()
    end = prog.instructions[2]
    assert end.args == (index_id, 1)  # body start


def test_pardo_layout_with_where():
    prog = compile_body("pardo M, N where M < N\ne = 1.0\nendpardo\n")
    assert ops(prog) == [Op.PARDO_START, Op.SCALAR_ASSIGN, Op.PARDO_END, Op.STOP]
    pardo_id, index_ids, conds, exit_pc, get_pcs = prog.instructions[0].args
    assert pardo_id == 0
    assert index_ids == (prog.index_id("M"), prog.index_id("N"))
    assert len(conds) == 1
    assert isinstance(conds[0], CompiledCondition)
    assert exit_pc == 3


def test_pardo_ids_sequential():
    prog = compile_body("pardo M\nendpardo\npardo N\nendpardo\n")
    starts = [i for i in prog.instructions if i.op == Op.PARDO_START]
    assert [s.args[0] for s in starts] == [0, 1]


def test_get_pcs_recorded_for_prefetch():
    body = """
pardo M
  do N
    get D(M, N)
    T(M, N) = D(M, N)
  enddo N
endpardo
"""
    prog = compile_body(body)
    do_start = [i for i in prog.instructions if i.op == Op.DO_START][0]
    get_pc = [pc for pc, i in enumerate(prog.instructions) if i.op == Op.GET][0]
    assert do_start.args[2] == (get_pc,)
    pardo_start = [i for i in prog.instructions if i.op == Op.PARDO_START][0]
    assert pardo_start.args[4] == (get_pc,)


def test_if_else_branches():
    prog = compile_body("if e < 1.0\ne = 1.0\nelse\ne = 2.0\nendif\n")
    assert ops(prog) == [
        Op.BRANCH_FALSE,
        Op.SCALAR_ASSIGN,
        Op.JUMP,
        Op.SCALAR_ASSIGN,
        Op.STOP,
    ]
    branch = prog.instructions[0]
    assert branch.args[1] == 3  # else target
    jump = prog.instructions[2]
    assert jump.args[0] == 4  # end target


def test_if_without_else():
    prog = compile_body("if e < 1.0\ne = 1.0\nendif\n")
    assert ops(prog) == [Op.BRANCH_FALSE, Op.SCALAR_ASSIGN, Op.STOP]
    assert prog.instructions[0].args[1] == 2


def test_proc_compiled_after_stop_and_call_patched():
    src = """
sial t
scalar x
proc setx
  x = 1.0
endproc setx
call setx
endsial t
"""
    prog = compile_source(src)
    assert ops(prog) == [Op.CALL, Op.STOP, Op.SCALAR_ASSIGN, Op.RETURN]
    assert prog.instructions[0].args[0] == 2
    assert prog.proc_entries == {"setx": 2}


def test_block_assign_forms():
    body = """
pardo M, N
  T(M, N) = 0.0
  T(M, N) = LO(N, M)
  T(M, N) += LO(M, N)
  T(M, N) = e * LO(M, N)
  T(M, N) = LO(M, N) + LO(M, N)
  T(M, N) = -LO(M, N)
  T(M, N) *= 2.0
  do L
    T(M, N) = LO(M, L) * LO(L, N)
  enddo L
endpardo
"""
    prog = compile_body(body)
    body_ops = ops(prog)
    for expected in (
        Op.FILL,
        Op.COPY,
        Op.ACCUM,
        Op.SCALE,
        Op.ADDSUB,
        Op.NEGATE,
        Op.SCALE_INPLACE,
        Op.CONTRACT,
    ):
        assert expected in body_ops


def test_scalar_contract_op():
    prog = compile_body("pardo M, N\ne = T(M, N) * LO(M, N)\nendpardo\n")
    assert Op.SCALAR_CONTRACT in ops(prog)


def test_addsub_with_accumulate_rejected():
    with pytest.raises(SemanticError, match="not supported"):
        compile_body("pardo M, N\nT(M, N) += LO(M, N) + LO(M, N)\nendpardo\n")


def test_rpn_evaluation():
    prog = compile_body("e = 2.0 + 3.0 * 4.0\n")
    instr = prog.instructions[0]
    scalar_id, op, rpn = instr.args
    assert scalar_id == 0
    assert op == "="
    assert evaluate_rpn(rpn) == 14.0


def test_rpn_with_symbolic_and_scalar():
    prog = compile_body("e = norb / 2.0 - e\n")
    _, _, rpn = prog.instructions[0].args
    value = evaluate_rpn(rpn, scalars=[10.0], symbolics=[8.0])
    assert value == -6.0


def test_rpn_unary_neg():
    prog = compile_body("e = -(1.0 + 2.0)\n")
    _, _, rpn = prog.instructions[0].args
    assert evaluate_rpn(rpn) == -3.0


def test_condition_evaluation_with_indices():
    prog = compile_body("pardo M, N where M < N\nendpardo\n")
    cond = prog.instructions[0].args[2][0]
    m, n = prog.index_id("M"), prog.index_id("N")
    assert evaluate_condition(cond, index_values={m: 1, n: 2})
    assert not evaluate_condition(cond, index_values={m: 2, n: 2})


def test_index_table_rpn_bounds():
    prog = compile_body("")
    m_desc = prog.index_table[prog.index_id("M")]
    assert evaluate_rpn(m_desc.lo_rpn, symbolics=[12.0]) == 1.0
    assert evaluate_rpn(m_desc.hi_rpn, symbolics=[12.0]) == 12.0


def test_subindex_descriptor():
    decls = DECLS + "\nsubindex MM of M\n"
    prog = compile_body("", decls=decls)
    mm = prog.index_table[prog.index_id("MM")]
    assert mm.is_subindex
    assert mm.super_id == prog.index_id("M")


def test_disassembler_output():
    prog = compile_body("pardo M, N\nget D(M, N)\nput D(M, N) = T(M, N)\nendpardo\n")
    text = disassemble(prog)
    assert "PARDO_START" in text
    assert "D(M,N)" in text
    assert "GET" in text


def test_compute_integrals_and_execute():
    decls = DECLS + "\ntemp V4(M, N)\n"
    body = "pardo M, N\ncompute_integrals V4(M, N)\nexecute foo V4(M, N), e, 1.5\nendpardo\n"
    prog = compile_body(body, decls=decls)
    assert Op.COMPUTE_INTEGRALS in ops(prog)
    exec_instr = [i for i in prog.instructions if i.op == Op.EXECUTE][0]
    name, args = exec_instr.args
    assert name == "foo"
    assert args[0][0] == "block"
    assert args[1] == ("scalar", 0)
    assert args[2] == ("num", 1.5)


def test_barriers_and_utility_ops():
    body = "sip_barrier\nserver_barrier\nblocks_to_list D\nlist_to_blocks D\ncheckpoint\ncollective e\n"
    prog = compile_body(body)
    assert ops(prog)[:-1] == [
        Op.SIP_BARRIER,
        Op.SERVER_BARRIER,
        Op.BLOCKS_TO_LIST,
        Op.LIST_TO_BLOCKS,
        Op.CHECKPOINT,
        Op.COLLECTIVE,
    ]


def test_nested_do_loops_jump_targets_consistent():
    body = """
do M
  do N
    e = 1.0
  enddo N
enddo M
"""
    prog = compile_body(body)
    # DO_START M, DO_START N, SCALAR_ASSIGN, DO_END N, DO_END M, STOP
    assert ops(prog) == [
        Op.DO_START,
        Op.DO_START,
        Op.SCALAR_ASSIGN,
        Op.DO_END,
        Op.DO_END,
        Op.STOP,
    ]
    outer, inner = prog.instructions[0], prog.instructions[1]
    assert outer.args[1] == 5  # exit past DO_END M
    assert inner.args[1] == 4  # exit past DO_END N
