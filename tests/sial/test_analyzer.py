"""Unit tests for SIAL semantic analysis."""

import pytest

from repro.sial.analyzer import analyze
from repro.sial.errors import SemanticError
from repro.sial.parser import parse


DECLS = """
symbolic norb
symbolic nocc
aoindex M = 1, norb
aoindex N = 1, norb
aoindex L = 1, norb
aoindex S = 1, norb
moindex I = 1, nocc
moindex J = 1, nocc
index iter = 1, 10
subindex MM of M
scalar e
distributed D(M, N)
served SV(M, N)
static ST(M, N)
temp T(M, N)
local LO(M, N)
"""


def check(body, decls=DECLS):
    source = f"sial t\n{decls}\n{body}\nendsial t\n"
    return analyze(parse(source), source)


def check_fails(body, match, decls=DECLS):
    with pytest.raises(SemanticError, match=match):
        check(body, decls)


def test_valid_paper_style_program():
    check(
        """
pardo M, N
  T(M, N) = 0.0
  get D(M, N)
  T(M, N) += D(M, N)
  put D(M, N) = T(M, N)
endpardo M, N
"""
    )


def test_duplicate_declaration_rejected():
    check_fails("", match="already declared", decls=DECLS + "\nscalar e\n")


def test_undeclared_array():
    check_fails("pardo M, N\nget NOPE(M, N)\nendpardo\n", match="undeclared")


def test_index_kind_mismatch():
    # D is declared D(M, N) with ao indices; I is an mo index
    check_fails(
        "pardo M, I\nget D(M, I)\nendpardo\n",
        match="kind",
    )


def test_rank_mismatch():
    check_fails("pardo M\nget D(M)\nendpardo\n", match="rank")


def test_nested_pardo_rejected():
    check_fails(
        "pardo M\npardo N\nendpardo\nendpardo\n",
        match="not be nested",
    )


def test_pardo_through_proc_rejected():
    body = """
proc inner
  pardo N
  endpardo
endproc inner
pardo M
  call inner
endpardo
"""
    check_fails(body, match="contains a pardo")


def test_unbound_index_rejected():
    check_fails("T(M, N) = 0.0\n", match="not bound")


def test_rebinding_index_rejected():
    check_fails("pardo M\ndo M\nenddo M\nendpardo\n", match="already bound")


def test_do_in_requires_super_bound():
    check_fails(
        "do MM in M\nenddo MM\n",
        match="requires 'M' to be bound",
    )


def test_do_in_wrong_super_rejected():
    check_fails(
        "do N\ndo MM in N\nenddo MM\nenddo N\n",
        match="not of 'N'",
    )


def test_do_over_subindex_needs_in():
    check_fails("do MM\nenddo MM\n", match="use 'do MM in M'")


def test_pardo_over_subindex_rejected():
    check_fails("pardo MM\nendpardo\n", match="may not iterate a subindex")


def test_get_requires_distributed():
    check_fails("pardo M, N\nget SV(M, N)\nendpardo\n", match="expected one of")
    check_fails("pardo M, N\nget T(M, N)\nendpardo\n", match="expected one of")


def test_request_requires_served():
    check_fails("pardo M, N\nrequest D(M, N)\nendpardo\n", match="expected one of")


def test_put_requires_distributed_dst_and_local_src():
    check_fails("pardo M, N\nput SV(M, N) = T(M, N)\nendpardo\n", match="expected")
    # src must be local-ish: distributed src rejected
    check_fails(
        "pardo M, N\nget D(M, N)\nput D(M, N) = D(M, N)\nendpardo\n",
        match="expected",
    )


def test_read_distributed_without_get_rejected():
    check_fails(
        "pardo M, N\nT(M, N) = D(M, N)\nendpardo\n",
        match="without a preceding 'get'",
    )


def test_read_served_without_request_rejected():
    check_fails(
        "pardo M, N\nT(M, N) = SV(M, N)\nendpardo\n",
        match="without a preceding 'request'",
    )


def test_get_in_outer_loop_covers_inner_use():
    check(
        """
pardo M, N
  get D(M, N)
  do iter
    T(M, N) = D(M, N)
  enddo iter
endpardo M, N
"""
    )


def test_get_does_not_leak_out_of_loop():
    check_fails(
        """
pardo M, N
  do iter
    get D(M, N)
  enddo iter
  T(M, N) = D(M, N)
endpardo M, N
""",
        match="without a preceding 'get'",
    )


def test_direct_assignment_to_distributed_rejected():
    check_fails(
        "pardo M, N\nD(M, N) = 0.0\nendpardo\n",
        match="written with 'put'",
    )


def test_direct_assignment_to_served_rejected():
    check_fails(
        "pardo M, N\nSV(M, N) = 0.0\nendpardo\n",
        match="written with 'prepare'",
    )


def test_static_write_in_pardo_rejected():
    check_fails(
        "pardo M, N\nST(M, N) = 0.0\nendpardo\n",
        match="static array",
    )


def test_static_write_outside_pardo_allowed():
    check("do M\ndo N\nST(M, N) = 0.0\nenddo N\nenddo M\n")


def test_compound_block_expression_rejected():
    check_fails(
        """
pardo M, N
  do L
    T(M, N) = LO(M, L) * LO(L, N) + LO(M, N)
  enddo L
endpardo
""",
        match="single block operation",
    )


def test_contraction_shape_checked():
    check_fails(
        """
pardo M, N
  do L
    T(M, N) = LO(M, L) * LO(M, L)
  enddo L
endpardo
""",
        match="do not match",
    )


def test_valid_contraction():
    check(
        """
pardo M, N
  do L
    T(M, N) = LO(M, L) * LO(L, N)
  enddo L
endpardo
"""
    )


def test_scalar_full_contraction():
    check("pardo M, N\ne = T(M, N) * LO(M, N)\nendpardo\n")


def test_scalar_partial_contraction_rejected():
    check_fails(
        "pardo M, N\ndo L\ne = T(M, L) * LO(L, N)\nenddo L\nendpardo\n",
        match="full contraction",
    )


def test_where_clause_restricted_to_pardo_indices():
    check("pardo M, N where M < N\nendpardo\n")
    check_fails(
        "pardo M, N where e < 1\nendpardo\n",
        match="where clauses may reference only",
    )
    check_fails(
        "pardo M where M < I\nendpardo\n",
        match="where clauses may reference only",
    )


def test_where_clause_with_symbolic_ok():
    check("pardo M where M < norb\nendpardo\n")


def test_barrier_inside_pardo_rejected():
    check_fails("pardo M\nsip_barrier\nendpardo\n", match="not allowed inside pardo")


def test_collective_inside_pardo_rejected():
    check_fails("pardo M\ncollective e\nendpardo\n", match="outside pardo")


def test_collective_requires_scalar():
    check_fails("collective D\n", match="not a scalar")


def test_index_range_must_be_symbolic_or_number():
    decls = "scalar s\naoindex M = 1, s\n"
    check_fails("", match="symbolic", decls=decls)


def test_simple_index_not_allowed_in_array_decl():
    decls = DECLS + "\ntemp BAD(iter, M)\n"
    check_fails("", match="require segment indices", decls=decls)


def test_subindex_slice_assignment():
    decls = DECLS + "\ntemp TSUB(MM, N)\n"
    check(
        """
pardo N
do M
  do MM in M
    TSUB(MM, N) = T(MM, N)
    T(MM, N) = TSUB(MM, N)
  enddo MM
enddo M
endpardo N
""",
        decls=decls,
    )


def test_permuted_copy_ok():
    check("pardo M, N\nT(M, N) = LO(N, M)\nendpardo\n")


def test_copy_with_disjoint_indices_rejected():
    check_fails(
        "pardo M, N, L\nT(M, N) = LO(M, L)\nendpardo\n",
        match="same index variables",
    )


def test_scale_and_fill_forms():
    check(
        """
pardo M, N
  T(M, N) = 3.0
  T(M, N) = e
  T(M, N) = e * LO(M, N)
  T(M, N) *= 2.0
endpardo
"""
    )


def test_add_form_same_indices():
    check("pardo M, N\nT(M, N) = LO(M, N) + LO(M, N)\nendpardo\n")
    check_fails(
        "pardo M, N, L\nT(M, N) = LO(M, L) + LO(L, N)\nendpardo\n",
        match="same index variables",
    )


def test_scalar_assign_to_undeclared_rejected():
    check_fails("nope = 1.0\n", match="not a declared scalar")


def test_if_with_scalar_condition():
    check("if e < 1.0\ne = 1.0\nendif\n")


def test_if_with_bound_index_condition():
    check("pardo M, N\nif M == N\nT(M, N) = 1.0\nendif\nendpardo\n")


def test_if_with_unbound_index_rejected():
    check_fails("if M == 1\ne = 1.0\nendif\n", match="not bound")


def test_compute_integrals_into_temp():
    decls = DECLS + "\ntemp V4(M, N)\n"
    check("pardo M, N\ncompute_integrals V4(M, N)\nendpardo\n", decls=decls)


def test_compute_integrals_into_distributed_rejected():
    check_fails(
        "pardo M, N\ncompute_integrals D(M, N)\nendpardo\n",
        match="expected one of",
    )


def test_allocate_requires_local():
    check("pardo M, N\nallocate LO(M, N)\nendpardo\n")
    check_fails("pardo M, N\nallocate T(M, N)\nendpardo\n", match="expected one of")


def test_blocks_to_list_requires_distributed():
    check("blocks_to_list D\n")
    check_fails("blocks_to_list SV\n", match="expected one of")


def test_recursive_proc_rejected():
    body = """
proc a
  call b
endproc a
proc b
  call a
endproc b
call a
"""
    check_fails(body, match="recursive")


def test_two_sequential_pardos_allowed():
    check("pardo M\nendpardo\npardo N\nendpardo\n")
