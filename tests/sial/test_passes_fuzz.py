"""Property-based differential fuzzing of the optimizer pipeline.

Hypothesis assembles random *well-formed* SIAL programs from a pool of
composable building blocks -- producer pardos, contraction loops with
deliberately redundant fetches, fusable contract+accumulate pairs,
constant-heavy scalar arithmetic, gratuitous extra barriers -- and each
generated program must satisfy the optimizer's contract:

* ``-O2`` (and ``-O1``) scalars and persistent arrays are **bitwise
  identical** to ``-O0``;
* the runtime sanitizer verdict is identical;
* the pass pipeline's rewritten program still verifies structurally.

The generator grows programs block by block, tracking which distributed
arrays have been initialized so every ``get`` is preceded by a producer
pardo and a barrier -- programs are correct by construction, and any
crash or mismatch is an optimizer bug, not a bad input.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sial import compile_source
from repro.sial.passes import optimize_program, verify_program
from repro.sip import SIPConfig, SIPError
from repro.sip.runner import run_program

DECLS = """symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex K = 1, nb
distributed D0(M, N)
distributed D1(M, N)
distributed D2(M, K)
distributed D3(K, N)
served SV(M, N)
temp T(M, N)
temp U(M, N)
temp TK(M, K)
temp TKN(K, N)
temp TMP(M, N)
scalar x
scalar y
scalar z
"""

#: producer blocks: (array it initializes, SIAL text)
PRODUCERS = {
    "D0": "pardo M, N\n  T(M, N) = 1.5\n  put D0(M, N) = T(M, N)\nendpardo M, N\n",
    "D1": "pardo M, N\n  T(M, N) = x\n  T(M, N) *= 2.0\n"
    "  put D1(M, N) = T(M, N)\nendpardo M, N\n",
    "D2": "pardo M, K\n  TK(M, K) = 2.0\n  put D2(M, K) = TK(M, K)\nendpardo M, K\n",
    "D3": "pardo K, N\n  TKN(K, N) = 0.25\n  put D3(K, N) = TKN(K, N)\nendpardo K, N\n",
    "SV": "pardo M, N\n  T(M, N) = 3.0\n  prepare SV(M, N) = T(M, N)\nendpardo M, N\n",
}

#: consumer blocks: (arrays they read, array they initialize or None,
#: SIAL text).  Shapes chosen to trigger specific optimizer passes.
CONSUMERS = [
    # redundant refetch of an identical operand (dedup_fetch)
    (
        ("D0",),
        "D1",
        "pardo M, N\n  get D0(M, N)\n  T(M, N) = D0(M, N)\n"
        "  get D0(M, N)\n  U(M, N) = D0(M, N)\n  U(M, N) += T(M, N)\n"
        "  put D1(M, N) = U(M, N)\nendpardo M, N\n",
    ),
    # fusable contraction pair + loop-invariant get (fuse, hoist)
    (
        ("D2", "D3", "D0"),
        "D1",
        "pardo M, N\n  get D0(M, N)\n  U(M, N) = D0(M, N)\n  do K\n"
        "    get D2(M, K)\n    get D3(K, N)\n"
        "    TMP(M, N) = D2(M, K) * D3(K, N)\n    U(M, N) += TMP(M, N)\n"
        "  enddo K\n  put D1(M, N) = U(M, N)\nendpardo M, N\n",
    ),
    # sibling do-loops refetching the same blocks (dedup dominators)
    (
        ("D2", "D3"),
        "D0",
        "pardo M, N\n  U(M, N) = 0.0\n  do K\n    get D2(M, K)\n"
        "    get D3(K, N)\n    U(M, N) += D2(M, K) * D3(K, N)\n  enddo K\n"
        "  do K\n    get D2(M, K)\n    get D3(K, N)\n"
        "    U(M, N) += D2(M, K) * D3(K, N)\n  enddo K\n"
        "  put D0(M, N) = U(M, N)\nendpardo M, N\n",
    ),
    # served-array traffic + straggler gets (prefetch hints)
    (
        ("SV", "D0"),
        "D1",
        "pardo M, N\n  request SV(M, N)\n  T(M, N) = SV(M, N)\n"
        "  get D0(M, N)\n  U(M, N) = D0(M, N)\n  U(M, N) += T(M, N)\n"
        "  put D1(M, N) = U(M, N)\nendpardo M, N\n",
    ),
    # dead temp write (dce) next to a live reduction
    (
        ("D0", "D1"),
        None,
        "pardo M, N\n  get D0(M, N)\n  get D1(M, N)\n"
        "  TMP(M, N) = 9.0\n  x += D0(M, N) * D1(M, N)\nendpardo M, N\n"
        "collective x\n",
    ),
]

#: serial scalar statements (constfold + RPN dedup fodder)
SCALAR_STMTS = [
    "x = 2.0 * 3.0 + 1.0\n",
    "y = 2.0 * 3.0 + 1.0\n",
    "z = x * 0.5 - y\n",
    "y += 4.0 / 2.0\n",
    "z *= 1.5\n",
]


@st.composite
def programs(draw):
    """A random well-formed program: producers before consumers, a
    barrier between every pardo, occasional doubled barriers."""
    parts = [f"sial fuzz\n{DECLS}"]
    initialized: set[str] = set()
    n_blocks = draw(st.integers(min_value=1, max_value=4))
    for _ in range(n_blocks):
        for stmt in draw(
            st.lists(st.sampled_from(SCALAR_STMTS), max_size=2)
        ):
            parts.append(stmt)
        reads, writes, text = draw(st.sampled_from(CONSUMERS))
        for needed in reads:
            if needed not in initialized:
                parts.append(PRODUCERS[needed])
                parts.append("sip_barrier\n")
                initialized.add(needed)
        parts.append(text)
        parts.append("sip_barrier\n")
        if draw(st.booleans()):
            parts.append("sip_barrier\n")  # redundant: coalescing fodder
        if writes:
            initialized.add(writes)
    parts.append("endsial fuzz\n")
    return "".join(parts)


def execute(prog, level: int):
    cfg = SIPConfig(
        workers=2, io_servers=1, segment_size=2, sanitize=True,
        opt_level=level,
    )
    return run_program(prog, cfg, {"nb": 4.0})


@given(programs())
@settings(max_examples=25, deadline=None)
def test_random_programs_are_bitwise_identical_across_opt_levels(source):
    prog = compile_source(source)
    r0 = execute(prog, 0)
    for level in (1, 2):
        opt = optimize_program(prog, level)
        assert bool(verify_program(opt))
        r = execute(prog, level)
        assert r.scalars == r0.scalars, (
            f"-O{level} changed scalars:\n{source}"
        )
        assert r.sanitizer_report.ok == r0.sanitizer_report.ok
        for desc in opt.array_table:
            if desc.kind not in ("static", "distributed", "served"):
                continue
            try:
                expected = r0.array(desc.name)
            except SIPError:
                continue
            assert np.array_equal(expected, r.array(desc.name)), (
                f"-O{level} changed array {desc.name}:\n{source}"
            )


@given(programs(), st.integers(min_value=1, max_value=2))
@settings(max_examples=25, deadline=None)
def test_random_programs_optimize_without_structural_breakage(source, level):
    prog = compile_source(source, optimize=level)
    assert bool(verify_program(prog))
    assert prog.opt_level == level
    assert prog.opt_report is not None
    assert all(p.verified for p in prog.opt_report.passes)
