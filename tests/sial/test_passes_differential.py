"""Differential harness: -O2 must be bitwise identical to -O0.

Every optimizer pass claims result-preservation; this suite is the
enforcement.  Each bundled application driver runs unoptimized and at
the full ``-O2`` pipeline -- on the deterministic simulator at 1, 2 and
4 workers, and on the multiprocess backend -- and every scalar and
every persistent array must match **bit for bit**, with identical
sanitizer verdicts.  The optimizer additionally must never *increase*
the simulated wall time (passes only remove dispatches or issue
fetches earlier).
"""

import numpy as np
import pytest

from repro.programs import (
    run_ao2mo,
    run_ccsd,
    run_ccsd_t,
    run_fock_build,
    run_lccd,
    run_lccd_anderson,
    run_mp2,
    run_paper_contraction,
    run_uhf_mp2,
)
from repro.sip import SIPConfig, SIPError

WORKER_COUNTS = (1, 2, 4)

DRIVERS = {
    "paper_contraction": lambda cfg: run_paper_contraction(
        n_basis=4, n_occ=2, config=cfg
    ),
    "mp2_energy": lambda cfg: run_mp2(n_basis=6, n_occ=2, config=cfg),
    "uhf_mp2_energy": lambda cfg: run_uhf_mp2(
        n_basis=5, n_alpha=2, n_beta=1, config=cfg
    ),
    "ao2mo_transform": lambda cfg: run_ao2mo(n_basis=4, config=cfg),
    "lccd_iteration": lambda cfg: run_lccd(
        n_basis=4, n_occ=1, iterations=2, config=cfg
    ),
    "lccd_anderson": lambda cfg: run_lccd_anderson(
        n_basis=4, n_occ=1, iterations=2, config=cfg
    ),
    "ccsd": lambda cfg: run_ccsd(n_basis=4, n_occ=1, iterations=2, config=cfg),
    "ccsd_t": lambda cfg: run_ccsd_t(n_basis=3, n_occ=1, sweeps=1, config=cfg),
    "fock_build": lambda cfg: run_fock_build(n_basis=5, n_occ=2, config=cfg),
}

#: the longest-running programs; their off-center worker counts are
#: deselected from tier-1 (w=2 still runs everywhere)
HEAVY = {"ccsd", "ccsd_t", "lccd_iteration", "lccd_anderson"}


def make_config(workers: int, opt_level: int, execution: str = "sim") -> SIPConfig:
    cfg = dict(
        workers=workers,
        io_servers=1,
        segment_size=2,
        sanitize=True,
        execution=execution,
        opt_level=opt_level,
    )
    if execution == "mp":
        cfg["mp_payload_shm_min"] = 256
    return SIPConfig(**cfg)


def persistent_arrays(result) -> list[str]:
    program = result._rt.program
    return [
        desc.name
        for desc in program.array_table
        if desc.kind in ("static", "distributed", "served")
    ]


def assert_bitwise_equal_results(base, opt) -> None:
    """Scalars and every gatherable array must match bit for bit."""
    assert opt.result.scalars.keys() == base.result.scalars.keys()
    for name, base_value in base.result.scalars.items():
        opt_value = opt.result.scalars[name]
        assert opt_value == base_value, (
            f"scalar {name}: -O0 {base_value!r} != -O2 {opt_value!r}"
        )
    # DCE may prune arrays the unoptimized program declared but whose
    # contents were dead; every array the optimized run still has must
    # match the baseline exactly
    base_arrays = set(persistent_arrays(base.result))
    for array in persistent_arrays(opt.result):
        assert array in base_arrays
        try:
            expected = base.result.array(array)
        except SIPError:
            continue  # declared but never materialized on this run
        actual = opt.result.array(array)
        assert np.array_equal(expected, actual), (
            f"array {array!r} differs between -O0 and -O2"
        )


def _params():
    for name in sorted(DRIVERS):
        for workers in WORKER_COUNTS:
            marks = []
            if name in HEAVY and workers != 2:
                marks.append(pytest.mark.slow)
            yield pytest.param(name, workers, marks=marks)


@pytest.mark.parametrize("name,workers", _params())
def test_O2_is_bitwise_identical_to_O0_on_simulator(name, workers):
    driver = DRIVERS[name]
    base = driver(make_config(workers, 0))
    opt = driver(make_config(workers, 2))

    # both must also agree with the independent numpy reference
    assert base.error < 1e-10
    assert opt.error < 1e-10
    assert_bitwise_equal_results(base, opt)

    # identical sanitizer verdicts
    assert base.result.sanitizer_report.ok == opt.result.sanitizer_report.ok

    # the pipeline actually ran and reported
    assert opt.result.stats["opt_level"] == 2
    assert "opt_instructions_after" in opt.result.stats
    # simulated time never regresses: passes only remove dispatches or
    # issue fetches earlier (tolerance covers float summation order)
    assert opt.result.elapsed <= base.result.elapsed * (1 + 1e-9)


@pytest.mark.parametrize("name,workers", _params())
def test_O1_is_bitwise_identical_to_O0_on_simulator(name, workers):
    if name in HEAVY and workers != 2:
        pytest.skip("heavy off-center combos covered by the -O2 suite")
    driver = DRIVERS[name]
    base = driver(make_config(workers, 0))
    opt = driver(make_config(workers, 1))
    assert opt.error < 1e-10
    assert_bitwise_equal_results(base, opt)


@pytest.mark.mp
@pytest.mark.parametrize(
    "name,workers",
    [
        pytest.param(name, w, marks=[] if w == 2 else [pytest.mark.slow])
        for name in ("paper_contraction", "mp2_energy", "ccsd")
        for w in WORKER_COUNTS
    ],
)
def test_O2_is_bitwise_identical_on_mp_backend(name, workers):
    """The optimized program ships to real worker processes by pickle;
    results must still match the unoptimized simulator bit for bit."""
    driver = DRIVERS[name]
    base = driver(make_config(workers, 0, "sim"))
    opt = driver(make_config(workers, 2, "mp"))
    assert opt.error < 1e-10
    assert_bitwise_equal_results(base, opt)
    assert opt.result.stats["opt_level"] == 2
    assert opt.result.sanitizer_report.ok
