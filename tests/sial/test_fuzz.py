"""Fuzz-style robustness tests: the front end must reject, never crash.

Any input -- random text, randomly mutated valid programs, randomly
assembled statement soups -- must either compile or raise a SialError
diagnostic.  Python-level exceptions (AttributeError, IndexError, ...)
escaping the compiler are bugs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sial import SialError, compile_source
from repro.programs import library


def try_compile(source: str):
    try:
        compile_source(source)
    except SialError:
        pass  # a diagnostic is the correct outcome for bad input
    except RecursionError:
        pass  # pathological nesting depth; acceptable rejection
    # anything else propagates and fails the test


@given(st.text(max_size=200))
@settings(max_examples=150, deadline=None)
def test_arbitrary_text_never_crashes_compiler(text):
    try_compile(text)


@given(
    st.sampled_from(sorted(library.ALL_PROGRAMS)),
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(["", "x", "(", ")", "\n", "pardo", "endsial", "=", "123"]),
)
@settings(max_examples=150, deadline=None)
def test_mutated_valid_programs_never_crash(name, position, injection):
    source = library.ALL_PROGRAMS[name]
    position = min(position, len(source))
    mutated = source[:position] + injection + source[position:]
    try_compile(mutated)


@given(
    st.lists(
        st.sampled_from(
            [
                "pardo M",
                "endpardo",
                "do M",
                "enddo",
                "if x < 1.0",
                "else",
                "endif",
                "get D(M, M)",
                "put D(M, M) = T(M, M)",
                "T(M, M) = 1.0",
                "x = x + 1.0",
                "sip_barrier",
                "call p",
                "proc p",
                "endproc",
                "collective x",
            ]
        ),
        max_size=12,
    )
)
@settings(max_examples=150, deadline=None)
def test_statement_soup_never_crashes(statements):
    decls = (
        "symbolic nb\naoindex M = 1, nb\ndistributed D(M, M)\n"
        "temp T(M, M)\nscalar x\n"
    )
    body = "\n".join(statements)
    try_compile(f"sial t\n{decls}\n{body}\nendsial t\n")


@given(st.binary(max_size=100))
@settings(max_examples=80, deadline=None)
def test_binary_garbage_never_crashes(data):
    try_compile(data.decode("latin-1"))
