"""Unit tests for the optimizing middle-end (repro.sial.passes).

Each pass is exercised on a small synthetic program whose bytecode
shape triggers it, and the rewritten program must (a) pass
verify_program, (b) show the expected structural change, and (c)
produce bitwise-identical results when run.  The differential suite
(test_passes_differential.py) covers the bundled applications; here we
pin down the per-pass mechanics.
"""

import pytest

from repro.sial import compile_source
from repro.sial.bytecode import Op
from repro.sial.passes import (
    build_pipeline,
    coalesce_barriers,
    eliminate_dead,
    eliminate_redundant_fetches,
    fold_constants,
    fuse_contractions,
    hoist_invariants,
    insert_prefetches,
    optimize_program,
    verify_program,
)
from repro.sip import SIPConfig
from repro.sip.runner import run_source

NB = {"nb": 4.0}


def ops(prog) -> list[str]:
    return [i.op for i in prog.instructions]


def run_both(source: str, symbolics=NB, **cfg_kw):
    """Run at -O0 and -O2 on the simulator; return both results."""
    results = []
    for level in (0, 2):
        cfg = SIPConfig(
            workers=2, segment_size=2, sanitize=True,
            opt_level=level, **cfg_kw,
        )
        results.append(run_source(source, cfg, dict(symbolics)))
    return results


def assert_bitwise(r0, r2) -> None:
    assert r0.scalars == r2.scalars
    assert r0.sanitizer_report.ok == r2.sanitizer_report.ok


# ---------------------------------------------------------------------------
# constant folding + RPN dedup
# ---------------------------------------------------------------------------
CONSTFOLD_SRC = """sial t
scalar x
scalar y
x = 2.0 * 3.0 + 1.0
y = 2.0 * 3.0 + 1.0
x = x * (4.0 - 2.0)
endsial t
"""


def test_constfold_reduces_rpn_to_literal():
    prog = compile_source(CONSTFOLD_SRC)
    folded, report = fold_constants(prog)
    assert bool(verify_program(folded))
    assigns = [i for i in folded.instructions if i.op == Op.SCALAR_ASSIGN]
    # 2.0 * 3.0 + 1.0 folds to the single literal 7.0
    assert assigns[0].args[2] == (("num", 7.0),)
    # x * (4.0 - 2.0) folds the subexpression but keeps the scalar read
    assert (
        ("num", 2.0) in assigns[2].args[2]
        and not any(t[0] == "num" and t[1] == 4.0 for t in assigns[2].args[2])
    )


def test_constfold_interns_identical_rpn_programs():
    prog = compile_source(CONSTFOLD_SRC)
    folded, _ = fold_constants(prog)
    assigns = [i for i in folded.instructions if i.op == Op.SCALAR_ASSIGN]
    # x and y are assigned the same folded expression: one shared tuple
    assert assigns[0].args[2] is assigns[1].args[2]


# ---------------------------------------------------------------------------
# dead code elimination
# ---------------------------------------------------------------------------
DCE_SRC = """sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
temp DEAD(M, N)
pardo M, N
  T(M, N) = 1.0
  DEAD(M, N) = 2.0
  put D(M, N) = T(M, N)
endpardo M, N
endsial t
"""


def test_dce_removes_unread_temp_writes_and_prunes_the_array():
    prog = compile_source(DCE_SRC)
    before_arrays = [d.name for d in prog.array_table]
    assert "DEAD" in before_arrays
    after, report = eliminate_dead(prog)
    assert bool(verify_program(after))
    assert report.removed >= 1
    # the FILL of DEAD is gone and so is its descriptor
    assert all(
        i.args[0].array_id != before_arrays.index("DEAD")
        for i in after.instructions
        if i.op == Op.FILL
    )
    assert "DEAD" not in [d.name for d in after.array_table]
    r0, r2 = run_both(DCE_SRC)
    assert_bitwise(r0, r2)


# ---------------------------------------------------------------------------
# contraction fusion
# ---------------------------------------------------------------------------
FUSE_SRC = """sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex K = 1, nb
distributed A(M, K)
distributed B(K, N)
distributed C(M, N)
temp TA(M, K)
temp TB(K, N)
temp ACC(M, N)
temp TMP(M, N)
pardo M, K
  TA(M, K) = 1.5
  put A(M, K) = TA(M, K)
endpardo M, K
pardo K, N
  TB(K, N) = 2.0
  put B(K, N) = TB(K, N)
endpardo K, N
sip_barrier
pardo M, N
  ACC(M, N) = 0.0
  do K
    get A(M, K)
    get B(K, N)
    TMP(M, N) = A(M, K) * B(K, N)
    ACC(M, N) += TMP(M, N)
  enddo K
  put C(M, N) = ACC(M, N)
endpardo M, N
endsial t
"""


def test_fuse_rewrites_contract_accum_pair_into_one_superinstruction():
    prog = compile_source(FUSE_SRC)
    fused, report = fuse_contractions(prog)
    assert bool(verify_program(fused))
    assert report.removed == 1
    assert Op.CONTRACT_FUSED in ops(fused)
    assert ops(fused).count(Op.CONTRACT) == 0
    instr = next(i for i in fused.instructions if i.op == Op.CONTRACT_FUSED)
    dst, op2, a, b, tmp_ids, factor = instr.args
    assert op2 == "+="
    assert factor is None
    assert set(dst.index_ids) == set(tmp_ids)


def test_fused_pipeline_sweeps_the_dead_temp():
    prog = optimize_program(compile_source(FUSE_SRC), 2)
    # TMP only existed to carry the contraction into the +=; after
    # fusion + DCE its descriptor is gone
    assert "TMP" not in [d.name for d in prog.array_table]


def test_fuse_results_bitwise_identical():
    r0, r2 = run_both(FUSE_SRC)
    assert_bitwise(r0, r2)


def test_fuse_refuses_when_temp_escapes():
    source = FUSE_SRC.replace(
        "  put C(M, N) = ACC(M, N)\n",
        "  TMP(M, N) *= 2.0\n  put C(M, N) = ACC(M, N)\n",
    )
    prog = compile_source(source)
    fused, report = fuse_contractions(prog)
    assert report.removed == 0
    assert Op.CONTRACT_FUSED not in ops(fused)


# ---------------------------------------------------------------------------
# loop-invariant hoisting / fetch dedup / prefetch
# ---------------------------------------------------------------------------
HOIST_SRC = """sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex K = 1, nb
distributed D(M, N)
distributed W(M, N)
temp T(M, N)
temp U(M, N)
pardo M, N
  T(M, N) = 3.0
  put D(M, N) = T(M, N)
endpardo M, N
sip_barrier
pardo M, N
  U(M, N) = 0.0
  do K
    get D(M, N)
    T(M, N) = D(M, N)
    T(M, N) *= 0.5
    U(M, N) += T(M, N)
  enddo K
  put W(M, N) = U(M, N)
endpardo M, N
endsial t
"""


def test_hoist_moves_invariant_get_before_the_loop():
    prog = compile_source(HOIST_SRC)
    hoisted, report = hoist_invariants(prog)
    assert bool(verify_program(hoisted))
    assert report.removed == 1
    seq = ops(hoisted)
    # the get now sits before the DO_START instead of inside the body
    do_pc = seq.index(Op.DO_START, seq.index(Op.SIP_BARRIER))
    assert hoisted.instructions[do_pc - 1].op == Op.GET


def test_hoist_results_bitwise_identical():
    r0, r2 = run_both(HOIST_SRC)
    assert_bitwise(r0, r2)


DEDUP_SRC = """sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex K = 1, nb
distributed D(M, N)
distributed W(M, N)
temp T(M, N)
temp U(M, N)
pardo M, N
  T(M, N) = 2.0
  put D(M, N) = T(M, N)
endpardo M, N
sip_barrier
pardo M, N
  get D(M, N)
  T(M, N) = D(M, N)
  get D(M, N)
  U(M, N) = D(M, N)
  U(M, N) += T(M, N)
  put W(M, N) = U(M, N)
endpardo M, N
endsial t
"""


def test_dedup_deletes_refetch_of_identical_operand():
    prog = compile_source(DEDUP_SRC)
    deduped, report = eliminate_redundant_fetches(prog)
    assert bool(verify_program(deduped))
    assert report.removed == 1
    r0, r2 = run_both(DEDUP_SRC)
    assert_bitwise(r0, r2)


def test_dedup_dominator_covers_sibling_loops_over_the_same_index():
    source = """sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex K = 1, nb
distributed D(M, K)
distributed E(K, N)
distributed W(M, N)
temp TD(M, K)
temp TE(K, N)
temp U(M, N)
pardo M, K
  TD(M, K) = 1.0
  put D(M, K) = TD(M, K)
endpardo M, K
pardo K, N
  TE(K, N) = 0.5
  put E(K, N) = TE(K, N)
endpardo K, N
sip_barrier
pardo M, N
  U(M, N) = 0.0
  do K
    get D(M, K)
    get E(K, N)
    U(M, N) += D(M, K) * E(K, N)
  enddo K
  do K
    get D(M, K)
    get E(K, N)
    U(M, N) += D(M, K) * E(K, N)
  enddo K
  put W(M, N) = U(M, N)
endpardo M, N
endsial t
"""
    prog = compile_source(source)
    deduped, report = eliminate_redundant_fetches(prog)
    # the second sibling `do K` re-fetches exactly the blocks the first
    # already enumerated: its gets are dominated and deleted
    assert report.removed == 2
    r0, r2 = run_both(source)
    assert_bitwise(r0, r2)


PREFETCH_SRC = """sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
distributed E(M, N)
distributed W(M, N)
temp T(M, N)
temp U(M, N)
pardo M, N
  T(M, N) = 1.0
  put D(M, N) = T(M, N)
  U(M, N) = 2.0
  put E(M, N) = U(M, N)
endpardo M, N
sip_barrier
pardo M, N
  get D(M, N)
  T(M, N) = D(M, N)
  get E(M, N)
  U(M, N) = E(M, N)
  U(M, N) += T(M, N)
  put W(M, N) = U(M, N)
endpardo M, N
endsial t
"""


def test_prefetch_hints_land_at_body_start():
    prog = compile_source(PREFETCH_SRC)
    hinted, report = insert_prefetches(prog)
    assert bool(verify_program(hinted))
    assert report.inserted >= 1
    seq = ops(hinted)
    # every hint sits directly after a PARDO_START
    for pc, op in enumerate(seq):
        if op == Op.PREFETCH:
            assert seq[pc - 1] in (Op.PARDO_START, Op.PREFETCH)
    # hinted pcs joined the pardo's get_pcs (locality affinity feed)
    for instr in hinted.instructions:
        if instr.op == Op.PARDO_START:
            get_pcs = instr.args[4]
            assert all(
                hinted.instructions[g].op
                in (Op.GET, Op.REQUEST, Op.PREFETCH)
                for g in get_pcs
            )


# ---------------------------------------------------------------------------
# barrier coalescing
# ---------------------------------------------------------------------------
REDUNDANT_BARRIER_SRC = """sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
distributed W(M, N)
temp T(M, N)
pardo M, N
  T(M, N) = 1.0
  put D(M, N) = T(M, N)
endpardo M, N
sip_barrier
sip_barrier
pardo M, N
  get D(M, N)
  T(M, N) = D(M, N)
  put W(M, N) = T(M, N)
endpardo M, N
endsial t
"""


def test_barrier_coalescing_removes_provably_redundant_barrier():
    prog = compile_source(REDUNDANT_BARRIER_SRC)
    assert ops(prog).count(Op.SIP_BARRIER) == 2
    merged, report = coalesce_barriers(prog)
    assert bool(verify_program(merged))
    assert report.removed == 1
    assert ops(merged).count(Op.SIP_BARRIER) == 1
    r0, r2 = run_both(REDUNDANT_BARRIER_SRC)
    assert_bitwise(r0, r2)


def test_barrier_coalescing_keeps_load_bearing_barriers():
    prog = compile_source(HOIST_SRC)
    merged, report = coalesce_barriers(prog)
    # the single barrier separates the producing and consuming pardos:
    # removing it would introduce a race diagnostic, so it stays
    assert report.removed == 0
    assert ops(merged).count(Op.SIP_BARRIER) == 1


# ---------------------------------------------------------------------------
# pass manager plumbing
# ---------------------------------------------------------------------------
def test_optimize_program_is_idempotent_and_tags_the_program():
    prog = compile_source(FUSE_SRC)
    opt = optimize_program(prog, 2)
    assert opt.opt_level == 2
    assert opt.opt_report is not None
    assert optimize_program(opt, 2) is opt
    assert optimize_program(opt, 1) is opt
    assert optimize_program(prog, 0) is prog


def test_optimize_program_rejects_bad_levels():
    prog = compile_source(CONSTFOLD_SRC)
    with pytest.raises(ValueError):
        optimize_program(prog, 3)
    with pytest.raises(ValueError):
        optimize_program(prog, -1)


def test_pipeline_report_counters_flow_into_run_stats():
    cfg = SIPConfig(workers=2, segment_size=2, opt_level=2)
    result = run_source(FUSE_SRC, cfg, dict(NB))
    stats = result.stats
    assert stats["opt_level"] == 2
    assert stats["opt_instructions_before"] > stats["opt_instructions_after"]
    assert stats["opt_fuse_removed"] == 1
    # unoptimized runs report level 0 and no pass counters
    stats0 = run_source(FUSE_SRC, SIPConfig(workers=2, segment_size=2), dict(NB)).stats
    assert stats0["opt_level"] == 0
    assert "opt_fuse_removed" not in stats0


def test_every_pass_preserves_source_locations():
    prog = compile_source(FUSE_SRC, optimize=2)
    located = [i for i in prog.instructions if i.location is not None]
    # the rewritten stream still carries source locations (including
    # the fused instruction, which inherits the producer's)
    assert located
    fused = [i for i in prog.instructions if i.op == Op.CONTRACT_FUSED]
    assert all(i.location is not None for i in fused)


def test_verify_program_catches_corruption():
    from dataclasses import replace as dc_replace

    prog = compile_source(FUSE_SRC)
    bad_instrs = list(prog.instructions)
    jump_pcs = [
        pc for pc, i in enumerate(bad_instrs) if i.op == Op.BRANCH_FALSE
    ]
    # corrupt a loop back-link instead if there are no branches
    target = next(
        pc for pc, i in enumerate(bad_instrs) if i.op == Op.DO_END
    )
    bad_instrs[target] = dc_replace(
        bad_instrs[target], args=(bad_instrs[target].args[0], 10_000)
    )
    bad = dc_replace(prog, instructions=tuple(bad_instrs))
    assert not verify_program(bad)


def test_build_pipeline_levels():
    assert [name for name, _ in build_pipeline(1).passes] == ["constfold", "dce"]
    names2 = [name for name, _ in build_pipeline(2).passes]
    assert names2[:2] == ["constfold", "dce"]
    assert set(names2) >= {"fuse", "hoist", "dedup_fetch", "prefetch", "barriers"}
