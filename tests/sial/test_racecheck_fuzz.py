"""Property/fuzz tests for the static race detector.

A small generator emits random pardo programs in two families:

* *seeded-race* programs contain exactly one planted hazard -- an
  overwriting put whose target tuple does not cover the pardo indices,
  or a get that crosses into the phase of an earlier pardo's writes --
  surrounded by random race-free filler;
* *race-free* variants are the same programs with the hazard repaired
  (accumulate instead of overwrite, or a barrier inserted).

The detector must flag every seeded race (zero false negatives) and
pass every repaired variant and every bundled program (zero false
positives).
"""

import random

import pytest

from repro.programs.library import ALL_PROGRAMS
from repro.sial import check_races, parse
from repro.sial.analyzer import analyze
from repro.sial.racecheck import NON_INJECTIVE, READ_WRITE

INDEX_POOL = ["ia", "jb", "kc", "ld"]
ARRAY_POOL = ["DA", "DB", "DC"]


def lint(source):
    return check_races(analyze(parse(source, "<fuzz>"), source))


def gen_program(seed, racy, hazard):
    """Emit one random pardo program; ``racy`` plants the hazard live."""
    rng = random.Random(seed)
    i, j = rng.sample(INDEX_POOL, 2)
    dist, aux = rng.sample(ARRAY_POOL, 2)
    name = f"fuzz_{hazard}_{seed}_{'racy' if racy else 'safe'}"
    lines = [
        f"sial {name}",
        "symbolic nb",
        f"aoindex {i} = 1, nb",
        f"aoindex {j} = 1, nb",
        f"distributed {dist}({i}, {i})",
        f"distributed {aux}({i}, {j})",
        f"temp T({i}, {i})",
        f"temp U({i}, {j})",
    ]
    if hazard == "overwrite_put":
        # hazard: '=' put not covering the pardo indices; repair: '+='
        op = "=" if racy else "+="
        body = [
            f"pardo {i}, {j}",
            f"  T({i}, {i}) = 1.0",
        ]
        # random race-free filler before/after the planted statement
        filler = [
            f"  U({i}, {j}) = 2.0",
            f"  put {aux}({i}, {j}) += U({i}, {j})",
        ]
        planted = [f"  put {dist}({i}, {i}) {op} T({i}, {i})"]
        stmts = (filler + planted) if rng.random() < 0.5 else (planted + filler)
        body += stmts + [f"endpardo {i}, {j}", "sip_barrier"]
    elif hazard == "phase_crossing_get":
        # hazard: second pardo reads what the first wrote, no barrier
        # between them; repair: insert the barrier
        body = [
            f"pardo {i}, {j}",
            f"  U({i}, {j}) = 1.0",
            f"  put {aux}({i}, {j}) = U({i}, {j})",
            f"endpardo {i}, {j}",
        ]
        if not racy:
            body.append("sip_barrier")
        body += [
            f"pardo {i}, {j}",
            f"  get {aux}({i}, {j})",
            f"  U({i}, {j}) = {aux}({i}, {j}) * 2.0",
            f"endpardo {i}, {j}",
            "sip_barrier",
        ]
    else:
        raise ValueError(hazard)
    # random trailing race-free phase (exercises phase bookkeeping)
    if rng.random() < 0.5:
        body += [
            f"pardo {i}, {j}",
            f"  U({i}, {j}) = 3.0",
            f"  put {aux}({i}, {j}) = U({i}, {j})",
            f"endpardo {i}, {j}",
            "sip_barrier",
        ]
    lines += body + [f"endsial {name}", ""]
    return "\n".join(lines)


SEEDS = range(12)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("hazard", ["overwrite_put", "phase_crossing_get"])
def test_seeded_races_always_detected(seed, hazard):
    source = gen_program(seed, racy=True, hazard=hazard)
    report = lint(source)
    assert not report.ok, f"missed seeded race:\n{source}"
    expected = NON_INJECTIVE if hazard == "overwrite_put" else READ_WRITE
    assert any(d.kind == expected for d in report.diagnostics), report.render()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("hazard", ["overwrite_put", "phase_crossing_get"])
def test_repaired_variants_are_clean(seed, hazard):
    source = gen_program(seed, racy=False, hazard=hazard)
    report = lint(source)
    assert report.ok, f"false positive:\n{source}\n{report.render()}"


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_race_location_points_at_planted_statement(seed):
    source = gen_program(seed, racy=True, hazard="overwrite_put")
    report = lint(source)
    diag = next(d for d in report.diagnostics if d.kind == NON_INJECTIVE)
    assert diag.location is not None
    planted = next(
        n for n, line in enumerate(source.splitlines(), start=1)
        if "=" in line and "put" in line and "(+" not in line and "+=" not in line
    )
    assert diag.location.line == planted


@pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
def test_bundled_programs_stay_clean(name):
    report = lint(ALL_PROGRAMS[name])
    assert report.ok, report.render()
