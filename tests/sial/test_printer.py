"""Tests for the SIAL pretty-printer, including parse/print round trips."""

import pytest

from repro.programs import library
from repro.sial import ast_nodes as ast
from repro.sial.parser import parse
from repro.sial.printer import format_source, pretty


def strip_locations(node):
    """Structural fingerprint of an AST node, ignoring source locations."""
    if isinstance(node, list):
        return [strip_locations(n) for n in node]
    if isinstance(node, tuple):
        return tuple(strip_locations(n) for n in node)
    if hasattr(node, "__dataclass_fields__"):
        fields = {}
        for name in node.__dataclass_fields__:
            if name == "location":
                continue
            fields[name] = strip_locations(getattr(node, name))
        return (type(node).__name__, tuple(sorted(fields.items(), key=str)))
    return node


@pytest.mark.parametrize("name", sorted(library.ALL_PROGRAMS))
def test_roundtrip_all_library_programs(name):
    source = library.ALL_PROGRAMS[name]
    original = parse(source)
    printed = pretty(original)
    reparsed = parse(printed)
    assert strip_locations(original) == strip_locations(reparsed)


def test_idempotent_formatting():
    source = library.LCCD_ITERATION
    once = format_source(source)
    twice = format_source(once)
    assert once == twice


def test_expression_precedence_preserved():
    src = "sial t\nscalar x\nscalar y\nx = (1.0 + y) * 2.0 - y / 3.0\nendsial t\n"
    printed = format_source(src)
    assert "(1.0 + y) * 2.0" in printed
    a = parse(src)
    b = parse(printed)
    assert strip_locations(a) == strip_locations(b)


def test_left_associativity_preserved():
    src = "sial t\nscalar x\nx = 1.0 - 2.0 - 3.0\nendsial t\n"
    a = parse(src)
    b = parse(format_source(src))
    assert strip_locations(a) == strip_locations(b)


def test_where_clauses_printed():
    src = (
        "sial t\nsymbolic nb\naoindex M = 1, nb\naoindex N = 1, nb\n"
        "pardo M, N where M < N, N < nb\nendpardo M, N\nendsial t\n"
    )
    printed = format_source(src)
    assert "where M < N, N < nb" in printed
    assert strip_locations(parse(src)) == strip_locations(parse(printed))


def test_proc_and_control_printed():
    src = """
sial t
scalar x
index k = 1, 5
proc inc
  x += 1.0
endproc inc
do k
  if x < 3.0
    call inc
  else
    x *= 2.0
  endif
enddo k
endsial t
"""
    printed = format_source(src)
    assert "proc inc" in printed
    assert "else" in printed
    assert strip_locations(parse(src)) == strip_locations(parse(printed))


def test_unary_minus_printed():
    src = "sial t\nscalar x\nx = -(1.0 + 2.0)\nendsial t\n"
    assert strip_locations(parse(src)) == strip_locations(
        parse(format_source(src))
    )
