"""Unit tests for the SIAL tokenizer."""

import pytest

from repro.sial.errors import LexError
from repro.sial.lexer import Token, TokenKind, tokenize


def kinds_and_texts(source):
    return [(t.kind, t.text) for t in tokenize(source)]


def test_keywords_case_insensitive():
    toks = kinds_and_texts("PARDO M, N\nendpardo")
    assert toks[0] == (TokenKind.KEYWORD, "pardo")
    assert (TokenKind.KEYWORD, "endpardo") in toks


def test_identifiers_keep_spelling():
    toks = tokenize("Tmp = 1.0")
    assert toks[0].kind == TokenKind.IDENT
    assert toks[0].text == "Tmp"


def test_numbers_int_float_exponent():
    toks = kinds_and_texts("x = 42 + 3.14 + 1.0e-3 + 2e5")
    numbers = [t for k, t in toks if k == TokenKind.NUMBER]
    assert numbers == ["42", "3.14", "1.0e-3", "2e5"]


def test_malformed_number_rejected():
    with pytest.raises(LexError):
        tokenize("x = 1.2.3")


def test_two_char_operators():
    toks = kinds_and_texts("a += b\nc <= d\ne != f\ng == h")
    ops = [t for k, t in toks if k == TokenKind.OP]
    assert ops == ["+=", "<=", "!=", "=="]


def test_comments_stripped():
    toks = kinds_and_texts("x = 1 # a comment with pardo keywords\ny = 2")
    texts = [t for _, t in toks]
    assert "pardo" not in texts
    assert "y" in texts


def test_newlines_separate_statements():
    toks = tokenize("a = 1\nb = 2")
    kinds = [t.kind for t in toks]
    assert kinds.count(TokenKind.NEWLINE) == 2  # between stmts and trailing
    assert kinds[-1] == TokenKind.EOF


def test_blank_lines_collapsed():
    toks = tokenize("a = 1\n\n\n\nb = 2")
    kinds = [t.kind for t in toks]
    # exactly one NEWLINE between the two statements
    newline_positions = [i for i, k in enumerate(kinds) if k == TokenKind.NEWLINE]
    assert len(newline_positions) == 2


def test_locations_are_accurate():
    toks = tokenize("a = 1\n  b = 2")
    b_tok = [t for t in toks if t.text == "b"][0]
    assert b_tok.location.line == 2
    assert b_tok.location.column == 3


def test_unexpected_character_raises_with_location():
    with pytest.raises(LexError) as excinfo:
        tokenize("a = 1\nb = $")
    assert "2:5" in str(excinfo.value)


def test_empty_source_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind == TokenKind.EOF


def test_paper_example_tokenizes():
    source = """
sial example
pardo M, N, I, J
  tmpsum(M, N, I, J) = 0.0
  do L
    do S
      get T(L, S, I, J)
      compute_integrals V(M, N, L, S)
      tmp(M, N, I, J) = V(M, N, L, S) * T(L, S, I, J)
      tmpsum(M, N, I, J) += tmp(M, N, I, J)
    enddo S
  enddo L
  put R(M, N, I, J) = tmpsum(M, N, I, J)
endpardo M, N, I, J
endsial example
"""
    toks = tokenize(source)
    keywords = [t.text for t in toks if t.kind == TokenKind.KEYWORD]
    assert keywords[0] == "sial"
    assert "pardo" in keywords
    assert "compute_integrals" in keywords
    assert keywords[-1] == "endsial"
