"""Tests for diagnostic rendering."""

import pytest

from repro.sial import LexError, ParseError, SemanticError, compile_source, parse
from repro.sial.errors import SialError, SourceLocation


def test_location_str():
    loc = SourceLocation(3, 7, "prog.sial")
    assert str(loc) == "prog.sial:3:7"


def test_error_renders_line_and_caret():
    source = "sial t\nscalar x\nx = $\nendsial t\n"
    with pytest.raises(LexError) as excinfo:
        parse(source)
    text = str(excinfo.value)
    assert "3:5" in text
    assert "x = $" in text
    assert "^" in text
    caret_line = text.splitlines()[-1]
    assert caret_line.index("^") == 4 + len("x = ")  # 4-space indent


def test_error_without_location_is_plain():
    err = SialError("plain message")
    assert str(err) == "plain message"


def test_parse_error_points_at_offending_token():
    source = "sial t\nscalar x\nx = = 1\nendsial t\n"
    with pytest.raises(ParseError) as excinfo:
        parse(source)
    assert "3:" in str(excinfo.value)


def test_semantic_error_names_the_symbol():
    source = "sial t\nscalar x\nx = nope\nendsial t\n"
    with pytest.raises(SemanticError) as excinfo:
        compile_source(source)
    assert "nope" in str(excinfo.value)
    assert "3:" in str(excinfo.value)


def test_error_on_out_of_range_line_skips_snippet():
    err = SialError("msg", SourceLocation(99, 1), "one line only")
    assert "msg" in str(err)
    assert "^" not in str(err)


def test_duplicate_declaration_points_at_second_site():
    source = "sial t\nscalar x\nscalar x\nendsial t\n"
    with pytest.raises(SemanticError) as excinfo:
        compile_source(source)
    assert "3:" in str(excinfo.value)
    assert "already declared" in str(excinfo.value)
