"""Golden coverage test for the disassembler.

Every opcode the bytecode defines -- including the optimizer-introduced
``PREFETCH`` and ``CONTRACT_FUSED`` -- must render through
``disassemble`` without falling back to ``repr`` noise, and compiled
RPN scalar programs must render symbolically (infix, with names), not
as raw tagged tuples.
"""

import re

from repro.programs.library import ALL_PROGRAMS
from repro.sial import compile_source, disassemble, format_rpn
from repro.sial.bytecode import ALL_OPS, Op


# exercises the opcodes no bundled application needs (procedure calls,
# explicit array lifetime, list conversion, allocate/negate)
KITCHEN_SINK = """sial sink
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
local LO(M, N)
scalar x
proc setx
  x = 1.0
endproc setx
call setx
create D
pardo M, N
  allocate LO(M, N)
  LO(M, N) = 2.0
  T(M, N) = -LO(M, N)
  put D(M, N) = T(M, N)
  deallocate LO(M, N)
endpardo M, N
sip_barrier
blocks_to_list D
list_to_blocks D
delete D
endsial sink
"""


def collect_rendered_ops() -> dict[str, str]:
    """Opcode -> one rendered listing line, across all bundled programs
    compiled at every level (so optimizer-only opcodes appear)."""
    rendered: dict[str, str] = {}
    sources = dict(ALL_PROGRAMS, kitchen_sink=KITCHEN_SINK)
    for name, source in sources.items():
        for level in (0, 2):
            prog = compile_source(source, optimize=level)
            listing = disassemble(prog).splitlines()
            for pc, instr in enumerate(prog.instructions):
                line = next(
                    ln for ln in listing if re.match(rf"\s+{pc}\s+{instr.op}\b", ln)
                )
                rendered.setdefault(instr.op, line)
    return rendered


def test_disassemble_covers_every_opcode():
    rendered = collect_rendered_ops()
    missing = set(ALL_OPS) - set(rendered)
    # every opcode must be exercised by at least one bundled program --
    # an opcode nothing can emit is dead weight, and one the
    # disassembler cannot render is a tooling bug
    assert not missing, f"opcodes never rendered: {sorted(missing)}"


def test_optimizer_opcodes_render_with_operands():
    rendered = collect_rendered_ops()
    assert Op.CONTRACT_FUSED in rendered
    assert Op.PREFETCH in rendered
    # the fused op shows its destination operand symbolically
    assert "(" in rendered[Op.CONTRACT_FUSED]


def test_rpn_renders_symbolically_in_listings():
    source = ALL_PROGRAMS["lccd_iteration"]
    prog = compile_source(source)
    listing = disassemble(prog)
    # the scalar expressions render infix with scalar names, wrapped in
    # braces -- never as raw (('num', ...), ...) tuples
    assert "{0.25}" in listing or "0.25" in listing
    assert "'num'" not in listing and "'scalar'" not in listing


def test_format_rpn_round_trips_shapes():
    prog = compile_source(
        "sial t\nscalar x\nscalar y\nx = 1.0\ny = -x * (x + 2.0) / 4.0\nendsial t\n"
    )
    assigns = [i for i in prog.instructions if i.op == Op.SCALAR_ASSIGN]
    text = format_rpn(assigns[1].args[2], prog)
    assert "x" in text and "+" in text and "/" in text
    # parenthesization respects precedence
    assert "(x + 2.0)" in text


def test_disassemble_marks_optimized_programs():
    source = ALL_PROGRAMS["ccsd"]
    plain = disassemble(compile_source(source))
    opt = disassemble(compile_source(source, optimize=2))
    assert "; optimized at -O2" in opt
    assert "; optimized" not in plain
