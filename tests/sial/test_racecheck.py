"""Tests for the static race detector (repro.sial.racecheck)."""

import pytest

from repro.programs.library import ALL_PROGRAMS
from repro.sial import SemanticError, check_races, parse
from repro.sial.analyzer import analyze
from repro.sial.racecheck import (
    NON_INJECTIVE,
    READ_WRITE,
    SPMD_OVERWRITE,
    WRITE_WRITE,
)


def lint(source, filename="<test>"):
    return check_races(analyze(parse(source, filename), source))


RACY_OVERWRITE = """
sial racy_overwrite
symbolic nb
aoindex i = 1, nb
aoindex j = 1, nb
distributed D(i, i)
temp T(i, i)
pardo i, j
  T(i, i) = 1.0
  put D(i, i) = T(i, i)
endpardo i, j
sip_barrier
endsial racy_overwrite
"""

SAFE_ACCUMULATE = RACY_OVERWRITE.replace(
    "put D(i, i) = T(i, i)", "put D(i, i) += T(i, i)"
).replace("racy_overwrite", "safe_accumulate")

SAFE_COVERING = """
sial safe_covering
symbolic nb
aoindex i = 1, nb
aoindex j = 1, nb
distributed D(i, j)
temp T(i, j)
pardo i, j
  T(i, j) = 1.0
  put D(i, j) = T(i, j)
endpardo i, j
sip_barrier
endsial safe_covering
"""

PHASE_CROSSING_GET = """
sial phase_crossing_get
symbolic nb
aoindex i = 1, nb
aoindex j = 1, nb
distributed D(i, j)
temp T(i, j)
pardo i, j
  T(i, j) = 1.0
  put D(i, j) = T(i, j)
endpardo i, j
pardo i, j
  get D(i, j)
  T(i, j) = D(i, j) * 2.0
endpardo i, j
sip_barrier
endsial phase_crossing_get
"""

BARRIER_SEPARATED = PHASE_CROSSING_GET.replace(
    "endpardo i, j\npardo i, j", "endpardo i, j\nsip_barrier\npardo i, j"
).replace("phase_crossing_get", "barrier_separated")

SPMD_PUT = """
sial spmd_put
symbolic nb
aoindex i = 1, nb
distributed D(i, i)
temp T(i, i)
do i
  T(i, i) = 1.0
  put D(i, i) = T(i, i)
enddo i
sip_barrier
endsial spmd_put
"""

SERVED_OVERWRITE = """
sial served_overwrite
symbolic nb
aoindex i = 1, nb
aoindex j = 1, nb
served S(i, i)
temp T(i, i)
pardo i, j
  T(i, i) = 1.0
  prepare S(i, i) = T(i, i)
endpardo i, j
server_barrier
endsial served_overwrite
"""


def test_overwrite_put_flagged_non_injective():
    report = lint(RACY_OVERWRITE)
    assert not report.ok
    kinds = {d.kind for d in report.diagnostics}
    assert NON_INJECTIVE in kinds
    diag = next(d for d in report.diagnostics if d.kind == NON_INJECTIVE)
    assert diag.array == "D"


def test_diagnostic_carries_exact_source_location():
    report = lint(RACY_OVERWRITE, filename="prog.sial")
    diag = report.diagnostics[0]
    assert diag.location is not None
    # `put D(i, i) = ...` is on line 10 of the source, column 3
    assert diag.location.line == 10
    assert diag.location.column == 3
    assert "prog.sial:10:3" in diag.render()


def test_accumulate_variant_is_clean():
    assert lint(SAFE_ACCUMULATE).ok


def test_covering_overwrite_is_clean():
    assert lint(SAFE_COVERING).ok


def test_phase_crossing_get_flagged_read_write():
    report = lint(PHASE_CROSSING_GET)
    assert not report.ok
    diag = next(d for d in report.diagnostics if d.kind == READ_WRITE)
    # the reader is primary, the writer is the related endpoint
    assert diag.location is not None and diag.related is not None
    assert diag.location.line != diag.related.line


def test_barrier_separates_the_phases():
    assert lint(BARRIER_SEPARATED).ok


def test_spmd_overwrite_outside_pardo_flagged():
    report = lint(SPMD_PUT)
    assert not report.ok
    assert {d.kind for d in report.diagnostics} == {SPMD_OVERWRITE}


def test_served_arrays_checked_like_distributed():
    report = lint(SERVED_OVERWRITE)
    assert not report.ok
    assert any(d.kind == NON_INJECTIVE for d in report.diagnostics)
    assert all(d.array == "S" for d in report.diagnostics)


def test_report_render_mentions_program_and_count():
    report = lint(RACY_OVERWRITE)
    text = report.render()
    assert "racy_overwrite" in text
    assert "potential race" in text
    clean = lint(SAFE_COVERING)
    assert "no races detected" in clean.render()


@pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
def test_bundled_programs_have_no_false_positives(name):
    report = lint(ALL_PROGRAMS[name], filename=f"<{name}>")
    assert report.ok, report.render()


def test_analyze_strict_raises_semantic_error_with_location():
    program = parse(RACY_OVERWRITE, "prog.sial")
    with pytest.raises(SemanticError) as exc:
        analyze(program, RACY_OVERWRITE, strict=True)
    assert "non-injective" in str(exc.value)
    assert "prog.sial:10" in str(exc.value)


def test_analyze_strict_passes_clean_program():
    program = parse(SAFE_COVERING, "prog.sial")
    analyze(program, SAFE_COVERING, strict=True)  # must not raise


WRITE_WRITE_ACROSS_PARDOS = """
sial ww_across
symbolic nb
aoindex i = 1, nb
aoindex j = 1, nb
distributed D(i, j)
temp T(i, j)
pardo i, j
  T(i, j) = 1.0
  put D(i, j) = T(i, j)
endpardo i, j
pardo i, j
  T(i, j) = 2.0
  put D(i, j) = T(i, j)
endpardo i, j
sip_barrier
endsial ww_across
"""


def test_write_write_across_pardo_instances():
    report = lint(WRITE_WRITE_ACROSS_PARDOS)
    assert not report.ok
    assert any(d.kind == WRITE_WRITE for d in report.diagnostics)
