"""Unit tests for machine models and the cost model."""

import pytest

from repro.costmodel import INTEGRAL_FLOPS_PER_ELEMENT, CostModel, contraction_flops
from repro.machines import (
    BLUEGENE_P,
    CRAY_XT5,
    LAPTOP,
    MACHINES,
    SUN_OPTERON_IB,
    Machine,
    get_machine,
)


def test_all_paper_platforms_present():
    for name in (
        "sun-opteron-ib",
        "cray-xt4",
        "cray-xt5",
        "jaguar-xt5",
        "sgi-altix",
        "bluegene-p",
        "laptop",
    ):
        assert name in MACHINES


def test_get_machine_roundtrip_and_error():
    assert get_machine("cray-xt5") is CRAY_XT5
    with pytest.raises(KeyError, match="known machines"):
        get_machine("cray-xt9")


def test_network_built_from_machine_parameters():
    net = SUN_OPTERON_IB.network()
    assert net.latency == SUN_OPTERON_IB.latency
    assert net.bandwidth == SUN_OPTERON_IB.bandwidth


def test_with_memory_copy():
    m = CRAY_XT5.with_memory(4.0e9)
    assert m.memory_per_rank == 4.0e9
    assert m.flop_rate == CRAY_XT5.flop_rate
    assert CRAY_XT5.memory_per_rank != 4.0e9  # original untouched


def test_bgp_slower_and_smaller_than_xt5():
    """The Section VI-A premise: different processor/network ratios."""
    assert BLUEGENE_P.flop_rate < CRAY_XT5.flop_rate
    assert BLUEGENE_P.bandwidth < CRAY_XT5.bandwidth
    assert BLUEGENE_P.memory_per_rank < CRAY_XT5.memory_per_rank
    ratio_xt5 = CRAY_XT5.flop_rate / CRAY_XT5.bandwidth
    ratio_bgp = BLUEGENE_P.flop_rate / BLUEGENE_P.bandwidth
    assert ratio_bgp != pytest.approx(ratio_xt5, rel=0.2)


def test_contraction_flops_formula():
    # matrix multiply (m x k) @ (k x n): 2 m n k
    assert contraction_flops((10, 20), (30,)) == 2 * 10 * 20 * 30
    assert contraction_flops((), (5, 5)) == 50  # full contraction
    assert contraction_flops((4,), ()) == 8  # outer/scale-like


def test_cost_model_contraction_time():
    cm = CostModel(LAPTOP)
    t = cm.contraction_time((10, 10), (10,))
    expected = LAPTOP.kernel_overhead + 2000 / LAPTOP.flop_rate
    assert t == pytest.approx(expected)


def test_cost_model_elementwise_and_integrals():
    cm = CostModel(LAPTOP)
    assert cm.elementwise_time(8_000_000) > cm.elementwise_time(8_000)
    t_int = cm.integral_time(1000)
    expected = LAPTOP.kernel_overhead + 1000 * INTEGRAL_FLOPS_PER_ELEMENT / LAPTOP.flop_rate
    assert t_int == pytest.approx(expected)


def test_integrals_cost_more_than_contraction_per_element():
    cm = CostModel(LAPTOP)
    # a seg^4 integral block vs a similarly sized contraction flop count
    assert cm.integral_time(10_000) > cm.flops_time(2 * 10_000)


def test_flops_time_monotone():
    cm = CostModel(BLUEGENE_P)
    assert cm.flops_time(1e9) > cm.flops_time(1e6) > cm.flops_time(0)


def test_machine_is_frozen():
    with pytest.raises(Exception):
        LAPTOP.flop_rate = 1.0  # type: ignore[misc]


def test_custom_machine_usable_end_to_end():
    from repro.sip import SIPConfig, run_source

    weird = Machine(name="weird", flop_rate=1e6, latency=1e-3, bandwidth=1e6)
    src = (
        "sial t\nsymbolic nb\naoindex M = 1, nb\ndistributed D(M, M)\n"
        "temp T(M, M)\npardo M\nT(M, M) = 1.0\nput D(M, M) = T(M, M)\n"
        "endpardo\nendsial t\n"
    )
    slow = run_source(
        src, SIPConfig(workers=2, segment_size=4, machine=weird), {"nb": 8}
    )
    fast = run_source(
        src, SIPConfig(workers=2, segment_size=4, machine=LAPTOP), {"nb": 8}
    )
    assert slow.elapsed > fast.elapsed
