"""Tests for the command-line interface."""

import pytest

from repro.cli import main

GOOD = """
sial cli_demo
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
scalar total

pardo M, N
  T(M, N) = 1.0
  put D(M, N) = T(M, N)
  total += T(M, N) * T(M, N)
endpardo M, N
collective total
endsial cli_demo
"""

BAD = "sial broken\npardo M\nendpardo\nendsial broken\n"


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "demo.sial"
    path.write_text(GOOD)
    return str(path)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "broken.sial"
    path.write_text(BAD)
    return str(path)


def test_check_ok(good_file, capsys):
    assert main(["check", good_file]) == 0
    assert "OK" in capsys.readouterr().out


def test_check_reports_semantic_error(bad_file, capsys):
    assert main(["check", bad_file]) == 1
    err = capsys.readouterr().err
    assert "undeclared" in err


def test_compile_prints_bytecode(good_file, capsys):
    assert main(["compile", good_file]) == 0
    out = capsys.readouterr().out
    assert "PARDO_START" in out
    assert "COLLECTIVE" in out


def test_format_is_reparsable(good_file, capsys):
    assert main(["format", good_file]) == 0
    out = capsys.readouterr().out
    from repro.sial import parse

    assert parse(out).name == "cli_demo"


def test_dryrun_feasible(good_file, capsys):
    assert main(["dryrun", good_file, "-D", "nb=16"]) == 0
    assert "FEASIBLE" in capsys.readouterr().out


def test_dryrun_infeasible_exit_code(tmp_path, capsys):
    path = tmp_path / "big.sial"
    path.write_text(GOOD)
    code = main(
        ["dryrun", str(path), "-D", "nb=12000", "-w", "1", "-s", "16",
         "-m", "bluegene-p"]
    )
    assert code == 2
    assert "INFEASIBLE" in capsys.readouterr().out


def test_run_executes_and_prints_scalars(good_file, capsys):
    code = main(["run", good_file, "-D", "nb=8", "-w", "3", "-s", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "simulated time" in out
    assert "scalar total" in out


def test_run_with_profile(good_file, capsys):
    code = main(["run", good_file, "-D", "nb=8", "--profile"])
    assert code == 0
    assert "hot super instructions" in capsys.readouterr().out


def test_scale_table(good_file, capsys):
    code = main(
        ["scale", good_file, "-D", "nb=32", "-p", "4,8,16", "-m", "cray-xt5"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "efficiency" in out
    assert out.count("\n") >= 4


def test_missing_file_reported(capsys):
    assert main(["check", "/nonexistent/file.sial"]) == 1
    assert "error" in capsys.readouterr().err


def test_bad_define_rejected(good_file):
    with pytest.raises(SystemExit):
        main(["run", good_file, "-D", "nb"])


def test_trace_command_renders_timeline(good_file, capsys):
    code = main(["trace", good_file, "-D", "nb=8", "-w", "2", "--width", "40"])
    assert code == 0
    out = capsys.readouterr().out
    assert "timeline:" in out
    assert "w0" in out and "w1" in out


RACY = """
sial cli_racy
symbolic nb
aoindex i = 1, nb
aoindex j = 1, nb
distributed D(i, i)
temp T(i, i)
pardo i, j
  T(i, i) = 1.0
  put D(i, i) = T(i, i)
endpardo i, j
sip_barrier
endsial cli_racy
"""


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.sial"
    path.write_text(RACY)
    return str(path)


def test_check_strict_passes_clean_program(good_file, capsys):
    assert main(["check", "--strict", good_file]) == 0
    assert "no races detected" in capsys.readouterr().out


def test_check_strict_fails_on_race_with_location(racy_file, capsys):
    assert main(["check", "--strict", racy_file]) == 1
    err = capsys.readouterr().err
    assert "non-injective" in err
    assert "racy.sial:10:3" in err


def test_check_non_strict_accepts_racy_program(racy_file, capsys):
    assert main(["check", racy_file]) == 0


def test_lint_clean_file(good_file, capsys):
    assert main(["lint", good_file]) == 0
    assert "no races detected" in capsys.readouterr().out


def test_lint_racy_file_prints_diagnostics(racy_file, capsys):
    assert main(["lint", racy_file]) == 1
    out = capsys.readouterr().out
    assert "non-injective-overwrite" in out
    assert "racy.sial:10:3" in out


def test_lint_library_all_clean(capsys):
    assert main(["lint", "--library"]) == 0
    out = capsys.readouterr().out
    assert "library:ccsd" in out
    assert "library:checkpoint_demo" in out
    assert "no races detected" in out


def test_lint_without_targets_rejected():
    with pytest.raises(SystemExit):
        main(["lint"])


def test_run_sanitize_clean_program(good_file, capsys):
    code = main(["run", "--sanitize", good_file, "-D", "nb=8", "-w", "3"])
    assert code == 0
    assert "sanitizer: no conflicts" in capsys.readouterr().out


def test_run_sanitize_racy_program_nonzero_exit(racy_file, capsys):
    code = main(
        ["run", "--sanitize", racy_file, "-D", "nb=4", "-w", "3", "-s", "2"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "write-write" in out
    assert "owner-side" in out
