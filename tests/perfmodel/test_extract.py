"""Tests for automatic workload extraction from SIAL bytecode."""

import pytest

from repro.machines import LAPTOP
from repro.perfmodel import extract_workload, matmul_workload, simulate
from repro.perfmodel.calibrate import _MATMUL_SRC
from repro.programs import library
from repro.sial import compile_source
from repro.sip import SIPConfig, run_source


def extract(src, seg=4, symbolics=None, **cfg):
    prog = compile_source(src)
    return extract_workload(
        prog, SIPConfig(segment_size=seg, **cfg), symbolics or {}
    )


def test_matmul_matches_hand_built_spec():
    w = extract(_MATMUL_SRC, seg=8, symbolics={"nb": 64})
    hand = matmul_workload(64, 8)
    assert len(w.phases) == 1
    p, h = w.phases[0], hand.phases[0]
    assert p.n_iterations == h.n_iterations
    # contraction flops identical; extraction adds the fill/accum pass
    assert p.flops_per_iter == pytest.approx(h.flops_per_iter, rel=0.05)
    assert p.fetch_bytes_per_iter == h.fetch_bytes_per_iter
    assert p.put_bytes_per_iter == h.put_bytes_per_iter


def test_where_clause_respected_in_iteration_count():
    src = """
sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
distributed D(M, N)
temp T(M, N)
pardo M, N where M < N
  T(M, N) = 1.0
  put D(M, N) = T(M, N)
endpardo M, N
endsial t
"""
    w = extract(src, seg=4, symbolics={"nb": 16})
    # 4 segments -> 6 strictly-upper-triangular pairs
    assert w.phases[0].n_iterations == 6


def test_sequential_loop_multiplies_body_costs():
    src = """
sial t
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
temp T(M, N)
pardo M, N
  T(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    T(M, N) += A(M, L) * B(L, N)
  enddo L
endpardo M, N
endsial t
"""
    w4 = extract(src, seg=4, symbolics={"nb": 16})  # 4 L-blocks
    w2 = extract(src, seg=8, symbolics={"nb": 16})  # 2 L-blocks
    assert w4.phases[0].fetch_messages_per_iter == 2 * 4
    assert w2.phases[0].fetch_messages_per_iter == 2 * 2


def test_pardo_inside_do_emits_phase_per_trip():
    src = """
sial t
symbolic nb
symbolic niter
aoindex M = 1, nb
index it = 1, niter
distributed D(M, M)
temp T(M, M)
do it
  pardo M
    T(M, M) = 1.0
    put D(M, M) += T(M, M)
  endpardo M
enddo it
endsial t
"""
    w = extract(src, seg=4, symbolics={"nb": 8, "niter": 5})
    assert len(w.phases) == 5
    assert all(p.n_iterations == 2 for p in w.phases)


def test_lccd_phase_structure():
    w = extract(
        library.LCCD_ITERATION,
        seg=2,
        symbolics={"no": 4, "nv": 8, "niter": 3},
    )
    # init + 3 x (ring + residual + swap) + energy = 11 pardo phases
    assert len(w.phases) == 11
    # the residual phases request served VVVV blocks
    served = [p for p in w.phases if p.served_bytes_per_iter > 0]
    assert len(served) == 3


def test_if_branches_weighted_half():
    src = """
sial t
symbolic nb
aoindex M = 1, nb
distributed D(M, M)
temp T(M, M)
pardo M
  T(M, M) = 0.0
  if M == 1
    T(M, M) = 1.0
  endif
  put D(M, M) = T(M, M)
endpardo M
endsial t
"""
    w = extract(src, seg=4, symbolics={"nb": 8})
    # fill(1) + 0.5 * fill(1) + the put -> kernels = 1.5
    assert w.phases[0].kernels_per_iter == pytest.approx(1.5)


def test_procedure_bodies_inlined():
    src = """
sial t
symbolic nb
aoindex M = 1, nb
distributed D(M, M)
temp T(M, M)
proc work
  T(M, M) = 1.0
  put D(M, M) = T(M, M)
endproc work
pardo M
  call work
endpardo M
endsial t
"""
    w = extract(src, seg=4, symbolics={"nb": 8})
    assert w.phases[0].put_bytes_per_iter > 0


def test_serial_sections_become_single_iteration_phases():
    src = """
sial t
symbolic nb
aoindex M = 1, nb
distributed D(M, M)
static S(M, M)
temp T(M, M)
do M
  S(M, M) = 1.0
enddo M
pardo M
  T(M, M) = S(M, M)
  put D(M, M) = T(M, M)
endpardo M
endsial t
"""
    w = extract(src, seg=4, symbolics={"nb": 8})
    names = [p.name for p in w.phases]
    assert any(n.startswith("serial") for n in names)
    serial = [p for p in w.phases if p.name.startswith("serial")][0]
    assert serial.n_iterations == 1


def test_extracted_model_tracks_fine_simulator():
    """End-to-end: simulate the extracted workload and compare with a
    fine-grained run of the same program."""
    symbolics = {"nb": 48}
    cfg = SIPConfig(
        workers=4,
        io_servers=1,
        segment_size=8,
        backend="model",
        machine=LAPTOP,
        inputs={"A": None, "B": None},
    )
    fine = run_source(_MATMUL_SRC, cfg, symbolics)
    w = extract(_MATMUL_SRC, seg=8, symbolics=symbolics)
    coarse = simulate(w, LAPTOP, 4, io_servers=1)
    ratio = coarse.time / fine.elapsed
    assert 0.3 < ratio < 3.0


def test_compute_integrals_charged():
    w = extract(
        library.FOCK_BUILD, seg=4, symbolics={"nb": 16}
    )
    phase = w.phases[0]
    # integral evaluation dominates the per-iteration flops
    assert phase.flops_per_iter > 100 * phase.put_bytes_per_iter
