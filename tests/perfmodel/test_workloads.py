"""Unit tests for workload builders and fine-vs-coarse calibration."""

import pytest

from repro.chem import DIAMOND_NV, HMX, LUCIFERIN, RDX, CYTOSINE_OH, tiny
from repro.costmodel import INTEGRAL_FLOPS_PER_ELEMENT
from repro.machines import JAGUAR_XT5, LAPTOP, SUN_OPTERON_IB
from repro.perfmodel import (
    calibration_table,
    ccsd_iteration_workload,
    fock_build_workload,
    mp2_gradient_workload,
    simulate,
    sweep,
    triples_workload,
)


def test_ccsd_flop_count_scales_as_o2v4():
    small = ccsd_iteration_workload(tiny(40, 10), seg=5)
    big = ccsd_iteration_workload(tiny(80, 20), seg=5)
    # doubling the system multiplies o^2 v^4 work by ~2^6
    assert big.total_flops / small.total_flops == pytest.approx(64, rel=0.35)


def test_triples_flop_count_scales_as_o3v4():
    small = triples_workload(tiny(40, 10), seg=5)
    big = triples_workload(tiny(80, 20), seg=5)
    assert big.total_flops / small.total_flops == pytest.approx(128, rel=0.35)


def test_fock_flops_match_formula():
    mol = tiny(32, 8)
    w = fock_build_workload(mol, seg=8)
    n = 32
    expected = n**4 * (2 * INTEGRAL_FLOPS_PER_ELEMENT + 4)
    assert w.total_flops == pytest.approx(expected, rel=1e-6)


def test_smaller_segments_more_parallelism():
    coarse = ccsd_iteration_workload(LUCIFERIN, seg=20)
    fine = ccsd_iteration_workload(LUCIFERIN, seg=10)
    assert fine.max_parallelism > coarse.max_parallelism


def test_hmx_scales_better_than_rdx():
    """Fig. 4's headline: the larger molecule has better efficiency."""
    procs = [1000, 4000, 8000]
    rdx_rows = sweep(
        ccsd_iteration_workload(RDX, seg=16), JAGUAR_XT5, procs, io_servers=64
    )
    hmx_rows = sweep(
        ccsd_iteration_workload(HMX, seg=16), JAGUAR_XT5, procs, io_servers=64
    )
    for r, h in zip(rdx_rows[1:], hmx_rows[1:]):
        assert h["efficiency"] > r["efficiency"]


def test_luciferin_ccsd_wait_band():
    """Fig. 2: single-digit-to-low-teens percent wait time."""
    w = ccsd_iteration_workload(LUCIFERIN, seg=14)
    for row in sweep(w, SUN_OPTERON_IB, [32, 64, 128, 256], io_servers=8):
        assert 2.0 < row["wait_percent"] < 20.0


def test_triples_scaling_good_to_30k():
    """Fig. 5: strong scaling holds to ~30k cores at tuned granularity."""
    w = triples_workload(RDX, seg=14)
    rows = sweep(
        w, JAGUAR_XT5, [10000, 20000, 30000], baseline_procs=10000, io_servers=64
    )
    assert rows[1]["efficiency"] > 0.85
    assert rows[2]["efficiency"] > 0.8


def test_fock_build_turnover_past_72k():
    """Fig. 6: times stop improving (and efficiency falls) past ~72k."""
    w = fock_build_workload(DIAMOND_NV, seg=11)
    rows = sweep(
        w,
        JAGUAR_XT5,
        [12000, 24000, 48000, 72000, 84000, 96000, 108000],
        baseline_procs=12000,
        io_servers=64,
    )
    by_procs = {r["procs"]: r for r in rows}
    assert by_procs[72000]["time"] < by_procs[12000]["time"] / 3
    # beyond 72k: no further improvement
    assert by_procs[84000]["time"] >= by_procs[72000]["time"] * 0.99
    assert by_procs[108000]["time"] >= by_procs[72000]["time"] * 0.99
    assert by_procs[108000]["efficiency"] < by_procs[72000]["efficiency"]


def test_fock_segment_retune_at_84k_beats_72k_untuned():
    """Fig. 6 inset: at 84k cores, retuning the segment size beats both
    the untuned 84k run *and* the untuned 72k run (paper: 57.5 s tuned
    at 84k vs 83.2 s untuned at 84k and 79.4 s at 72k).  All the
    paper's scaling runs shared one default segment size."""
    default_seg = 8
    untuned_72k = simulate(
        fock_build_workload(DIAMOND_NV, seg=default_seg),
        JAGUAR_XT5,
        72000,
        io_servers=64,
    )
    untuned_84k = simulate(
        fock_build_workload(DIAMOND_NV, seg=default_seg),
        JAGUAR_XT5,
        84000,
        io_servers=64,
    )
    tuned_84k = min(
        simulate(
            fock_build_workload(DIAMOND_NV, seg=s), JAGUAR_XT5, 84000, io_servers=64
        ).time
        for s in (6, 7, 8, 9, 10, 11, 12, 13)
    )
    assert tuned_84k < untuned_84k.time
    assert tuned_84k < untuned_72k.time


def test_mp2_gradient_uhf_heavier_than_rhf():
    from dataclasses import replace

    rhf_mol = replace(CYTOSINE_OH, uhf=False)
    w_uhf = mp2_gradient_workload(CYTOSINE_OH, seg=12)
    w_rhf = mp2_gradient_workload(rhf_mol, seg=12)
    assert w_uhf.total_flops > w_rhf.total_flops


def test_calibration_coarse_tracks_fine():
    """The coarse model stays within a small factor of the fine sim."""
    rows = calibration_table(LAPTOP, n=48, seg=8, proc_counts=(1, 2, 4))
    for row in rows:
        assert 0.3 < row.ratio < 3.0, (row.procs, row.ratio)
