"""Unit tests for the coarse performance model."""

import pytest

from repro.machines import JAGUAR_XT5, LAPTOP, SUN_OPTERON_IB
from repro.perfmodel import PhaseSpec, WorkloadSpec, simulate, sweep


def phase(n_iter=1000, flops=1e9, fetch=1e6, msgs=10, served=0.0, unique=0.0):
    return PhaseSpec(
        name="p",
        n_iterations=n_iter,
        flops_per_iter=flops,
        fetch_bytes_per_iter=fetch,
        fetch_messages_per_iter=msgs,
        served_bytes_per_iter=served,
        served_unique_bytes=unique,
    )


def workload(*phases):
    return WorkloadSpec(name="w", phases=tuple(phases))


def test_single_proc_time_is_serial_work():
    w = workload(phase(n_iter=100, flops=1e9, fetch=0, msgs=0))
    r = simulate(w, LAPTOP, 1)
    serial = 100 * (1e9 / LAPTOP.flop_rate + LAPTOP.kernel_overhead)
    assert r.time == pytest.approx(serial, rel=0.05)


def test_strong_scaling_near_linear_with_ample_work():
    w = workload(phase(n_iter=100_000))
    t1 = simulate(w, LAPTOP, 10).time
    t2 = simulate(w, LAPTOP, 100).time
    assert t1 / t2 == pytest.approx(10.0, rel=0.1)


def test_scaling_saturates_beyond_parallelism():
    w = workload(phase(n_iter=128))
    t_match = simulate(w, LAPTOP, 128).time
    t_over = simulate(w, LAPTOP, 1024).time
    # more procs than iterations cannot help (master drain even hurts)
    assert t_over >= t_match * 0.95


def test_master_serialization_limits_scaling():
    # tiny iterations: chunk service eventually dominates, so adding
    # workers first helps, then actively hurts (the Fig. 6 mechanism)
    w = workload(phase(n_iter=200_000, flops=3e6, fetch=0, msgs=0))
    t100, t1000, t50000 = (
        simulate(w, JAGUAR_XT5, p).time for p in (100, 1000, 50000)
    )
    assert t1000 < t100  # still scaling
    assert t50000 > t1000  # master-bound: more workers are slower
    r = simulate(w, JAGUAR_XT5, 50000)
    assert r.master_busy > 0.5 * r.time  # the master is the bottleneck


def test_wait_fraction_grows_with_comm():
    light = workload(phase(fetch=1e4))
    heavy = workload(phase(fetch=1e9))
    r_light = simulate(light, SUN_OPTERON_IB, 32)
    r_heavy = simulate(heavy, SUN_OPTERON_IB, 32)
    assert r_heavy.wait_fraction > r_light.wait_fraction


def test_no_overlap_is_slower():
    w = workload(phase(fetch=5e7))
    with_overlap = simulate(w, SUN_OPTERON_IB, 32, overlap=True)
    without = simulate(w, SUN_OPTERON_IB, 32, overlap=False)
    assert without.time > with_overlap.time


def test_unhidden_fraction_zero_hides_everything_under_compute():
    w = workload(phase(flops=1e10, fetch=1e5))
    r = simulate(w, LAPTOP, 16, unhidden_comm_fraction=0.0)
    assert r.wait_fraction == pytest.approx(0.0, abs=1e-6)


def test_served_unique_bytes_floor_the_phase_time():
    # a disk-heavy phase cannot beat the disk streaming time
    w = workload(phase(n_iter=100, flops=1e6, unique=1e12))
    r = simulate(w, JAGUAR_XT5, 1000, io_servers=4)
    disk_floor = 1e12 / (4 * JAGUAR_XT5.disk_bandwidth)
    assert r.time >= disk_floor


def test_more_io_servers_relieve_disk_floor():
    w = workload(phase(n_iter=100, flops=1e6, unique=1e12))
    few = simulate(w, JAGUAR_XT5, 1000, io_servers=2)
    many = simulate(w, JAGUAR_XT5, 1000, io_servers=16)
    assert many.time < few.time


def test_static_scheduling_no_dole_out_queueing():
    w = workload(phase(n_iter=10_000))
    guided = simulate(w, LAPTOP, 64, scheduling="guided")
    static = simulate(w, LAPTOP, 64, scheduling="static")
    assert static.chunks_served <= 64
    assert guided.chunks_served > 64
    # with uniform iteration costs the two land close together
    assert static.time == pytest.approx(guided.time, rel=0.3)


def test_phases_accumulate():
    w2 = workload(phase(n_iter=1000), phase(n_iter=1000))
    w1 = workload(phase(n_iter=1000))
    t2 = simulate(w2, LAPTOP, 8).time
    t1 = simulate(w1, LAPTOP, 8).time
    assert t2 == pytest.approx(2 * t1, rel=0.05)


def test_empty_phase_free():
    w = workload(phase(n_iter=0))
    r = simulate(w, LAPTOP, 8)
    assert r.time < 1e-3


def test_sweep_rows_and_efficiency_normalization():
    w = workload(phase(n_iter=100_000))
    rows = sweep(w, LAPTOP, [10, 20, 40])
    assert [r["procs"] for r in rows] == [10, 20, 40]
    assert rows[0]["efficiency"] == pytest.approx(1.0)
    assert all(0 < r["efficiency"] <= 1.01 for r in rows)


def test_sweep_custom_baseline():
    w = workload(phase(n_iter=100_000))
    rows = sweep(w, LAPTOP, [10, 20], baseline_procs=20)
    assert rows[1]["efficiency"] == pytest.approx(1.0)


def test_invalid_procs_rejected():
    with pytest.raises(ValueError):
        simulate(workload(phase()), LAPTOP, 0)


def test_deterministic():
    w = workload(phase(n_iter=5000, fetch=1e6))
    a = simulate(w, JAGUAR_XT5, 777).time
    b = simulate(w, JAGUAR_XT5, 777).time
    assert a == b


def test_workload_totals():
    w = workload(phase(n_iter=10, flops=5.0), phase(n_iter=20, flops=2.0))
    assert w.total_flops == 90.0
    assert w.max_parallelism == 20
