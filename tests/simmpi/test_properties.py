"""Property-based tests (hypothesis) for the simulated MPI substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import Network, Simulator, Timeout, World


@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30)
)
@settings(max_examples=50, deadline=None)
def test_fifo_per_source_tag(payloads):
    """Messages on one (src, dst, tag) arrive in send order."""
    sim = Simulator()
    world = World(sim, 2, Network())
    got = []

    def sender():
        comm = world.comm(0)
        for p in payloads:
            comm.isend(p, dest=1, tag=0)
        yield Timeout(0)

    def receiver():
        comm = world.comm(1)
        for _ in payloads:
            msg = yield from comm.recv(source=0, tag=0)
            got.append(msg.payload)

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert got == payloads


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # sender
            st.integers(min_value=0, max_value=3),  # receiver
            st.integers(min_value=0, max_value=2),  # tag
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=40, deadline=None)
def test_simulation_is_deterministic(sends):
    """Identical programs produce identical event traces."""

    def run_once():
        sim = Simulator()
        world = World(sim, 4, Network())
        log = []
        counts = [0, 0, 0, 0]
        for _s, d, _t in sends:
            counts[d] += 1

        def sender(rank):
            comm = world.comm(rank)
            for s, d, t in sends:
                if s == rank:
                    comm.isend((s, d, t), dest=d, tag=t)
            yield Timeout(0)

        def receiver(rank):
            comm = world.comm(rank)
            for _ in range(counts[rank]):
                msg = yield from comm.recv()
                log.append((sim.now, rank, msg.source, msg.tag))

        for r in range(4):
            sim.spawn(sender(r))
            sim.spawn(receiver(r))
        sim.run()
        return log, sim.now

    first = run_once()
    second = run_once()
    assert first == second


@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=20)
)
@settings(max_examples=50, deadline=None)
def test_simulated_time_monotone(delays):
    sim = Simulator()
    seen = []

    def proc():
        for d in delays:
            yield Timeout(d)
            seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == sorted(seen)
    assert seen[-1] == sum(delays) or abs(seen[-1] - sum(delays)) < 1e-9


@given(
    st.integers(min_value=2, max_value=12),
    st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=2, max_size=12),
)
@settings(max_examples=40, deadline=None)
def test_barrier_releases_everyone_simultaneously(size, arrivals):
    from repro.simmpi import Barrier

    size = min(size, len(arrivals))
    sim = Simulator()
    world = World(sim, size, Network(latency=0.5))
    barrier = Barrier(world, range(size))
    release = []

    def proc(rank):
        yield Timeout(arrivals[rank])
        yield from barrier.wait(world.comm(rank))
        release.append(sim.now)

    for r in range(size):
        sim.spawn(proc(r))
    sim.run()
    assert len(set(release)) == 1
    assert release[0] >= max(arrivals[:size])


@given(st.integers(min_value=1, max_value=1000), st.integers(min_value=0, max_value=3))
@settings(max_examples=50, deadline=None)
def test_transfer_time_monotone_in_size(nbytes, dst):
    net = Network(latency=1e-6, bandwidth=1e9)
    small = net.transfer_time(nbytes, 0, dst)
    big = net.transfer_time(nbytes * 2 + 1, 0, dst)
    assert big >= small
