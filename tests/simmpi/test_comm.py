"""Unit tests for the simulated MPI communication layer."""

import numpy as np
import pytest

from repro.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    Barrier,
    Network,
    Simulator,
    Timeout,
    World,
    payload_nbytes,
)


def make_world(size, **net_kwargs):
    sim = Simulator()
    world = World(sim, size, Network(**net_kwargs))
    return sim, world


def test_send_recv_roundtrip():
    sim, world = make_world(2)
    got = []

    def sender():
        yield from world.comm(0).send({"x": 1}, dest=1, tag=7)

    def receiver():
        msg = yield from world.comm(1).recv(source=0, tag=7)
        got.append(msg.payload)

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert got == [{"x": 1}]


def test_numpy_payload_charged_real_size():
    sim, world = make_world(2, latency=1.0, bandwidth=100.0)
    arrival = []
    data = np.zeros(50, dtype=np.float64)  # 400 bytes

    def sender():
        yield from world.comm(0).send(data, dest=1, tag=0)

    def receiver():
        msg = yield from world.comm(1).recv()
        arrival.append((sim.now, msg.nbytes))

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    # latency 1.0 + 400/100 bandwidth = 5.0
    assert arrival == [(5.0, 400)]


def test_payload_nbytes_defaults_for_control_messages():
    assert payload_nbytes({"cmd": "chunk"}) == 256
    assert payload_nbytes(np.zeros(4)) == 32
    assert payload_nbytes("x", explicit=10) == 10


def test_irecv_before_send_matches():
    sim, world = make_world(2)
    got = []

    def receiver():
        req = world.comm(1).irecv(source=0, tag=3)
        msg = yield req.event
        got.append(msg.payload)

    def sender():
        yield Timeout(5.0)
        world.comm(0).isend("late", dest=1, tag=3)

    sim.spawn(receiver())
    sim.spawn(sender())
    sim.run()
    assert got == ["late"]


def test_fifo_ordering_same_src_dst_tag():
    sim, world = make_world(2)
    got = []

    def sender():
        comm = world.comm(0)
        for i in range(5):
            comm.isend(i, dest=1, tag=0)
        yield Timeout(0)

    def receiver():
        comm = world.comm(1)
        for _ in range(5):
            msg = yield from comm.recv(source=0, tag=0)
            got.append(msg.payload)

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_tag_selectivity():
    sim, world = make_world(2)
    got = []

    def sender():
        comm = world.comm(0)
        comm.isend("a", dest=1, tag=1)
        comm.isend("b", dest=1, tag=2)
        yield Timeout(0)

    def receiver():
        comm = world.comm(1)
        msg2 = yield from comm.recv(source=0, tag=2)
        msg1 = yield from comm.recv(source=0, tag=1)
        got.extend([msg2.payload, msg1.payload])

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert got == ["b", "a"]


def test_wildcard_source_and_tag():
    sim, world = make_world(3)
    got = []

    def sender(rank, delay):
        def gen():
            yield Timeout(delay)
            world.comm(rank).isend(f"from-{rank}", dest=2, tag=rank)

        return gen()

    def receiver():
        comm = world.comm(2)
        for _ in range(2):
            msg = yield from comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
            got.append((msg.source, msg.payload))

    sim.spawn(sender(0, 1.0))
    sim.spawn(sender(1, 2.0))
    sim.spawn(receiver())
    sim.run()
    assert got == [(0, "from-0"), (1, "from-1")]


def test_self_send_is_cheap():
    sim, world = make_world(1, latency=10.0, bandwidth=1.0, memcpy_bandwidth=1e12)
    times = []

    def proc():
        comm = world.comm(0)
        comm.isend("x", dest=0, tag=0)
        msg = yield from comm.recv()
        times.append(sim.now)
        assert msg.payload == "x"

    sim.spawn(proc())
    sim.run()
    assert times[0] < 1e-6  # no network latency for self-sends


def test_isend_request_completes_after_injection_only():
    sim, world = make_world(2, latency=100.0, bandwidth=1.0, send_overhead=0.5)
    completion = []

    def sender():
        req = world.comm(0).isend(np.zeros(1000), dest=1, tag=0)
        yield req.event
        completion.append(sim.now)

    def receiver():
        yield from world.comm(1).recv()

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert completion == [0.5]  # injection overhead only, not transfer time


def test_invalid_dest_rank_raises():
    sim, world = make_world(2)
    with pytest.raises(ValueError):
        world.comm(0).isend("x", dest=5, tag=0)
    with pytest.raises(ValueError):
        world.comm(9)


def test_world_stats_counts_remote_bytes():
    sim, world = make_world(2)

    def proc():
        comm = world.comm(0)
        comm.isend(np.zeros(10), dest=1, tag=0)  # 80 remote bytes
        comm.isend(np.zeros(10), dest=0, tag=1)  # self-send
        yield Timeout(0)

    def receiver():
        yield from world.comm(1).recv(tag=0)

    def selfrecv():
        yield from world.comm(0).recv(tag=1)

    sim.spawn(proc())
    sim.spawn(receiver())
    sim.spawn(selfrecv())
    sim.run()
    assert world.stats.messages_sent == 2
    assert world.stats.bytes_sent == 160
    assert world.stats.remote_bytes == 80


def test_barrier_releases_all_at_same_time():
    sim, world = make_world(4, latency=1.0)
    barrier = Barrier(world, range(4))
    release_times = []

    def proc(rank):
        yield Timeout(float(rank))  # ranks arrive staggered
        yield from barrier.wait(world.comm(rank))
        release_times.append((rank, sim.now))

    for r in range(4):
        sim.spawn(proc(r))
    sim.run()
    times = {t for _, t in release_times}
    assert len(times) == 1
    # last arrival at t=3 plus one latency for release
    assert times.pop() == 4.0


def test_barrier_reusable_across_generations():
    sim, world = make_world(2, latency=0.0)
    barrier = Barrier(world, [0, 1])
    passes = []

    def proc(rank):
        for gen in range(3):
            yield Timeout(1.0 if rank == 0 else 2.0)
            yield from barrier.wait(world.comm(rank))
            passes.append((gen, rank, sim.now))

    sim.spawn(proc(0))
    sim.spawn(proc(1))
    sim.run()
    # generation i completes at 2*(i+1)
    by_gen = {}
    for gen, _rank, t in passes:
        by_gen.setdefault(gen, set()).add(t)
    assert by_gen == {0: {2.0}, 1: {4.0}, 2: {6.0}}


def test_barrier_rejects_non_member():
    sim, world = make_world(3)
    barrier = Barrier(world, [0, 1])
    with pytest.raises(ValueError):
        next(barrier.wait(world.comm(2)))


def test_barrier_subgroup_does_not_involve_others():
    sim, world = make_world(3, latency=0.0)
    barrier = Barrier(world, [0, 2])
    done = []

    def member(rank):
        yield from barrier.wait(world.comm(rank))
        done.append(rank)

    def bystander():
        yield Timeout(0.5)

    sim.spawn(member(0))
    sim.spawn(bystander())
    sim.spawn(member(2))
    sim.run()
    assert sorted(done) == [0, 2]
