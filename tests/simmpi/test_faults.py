"""Unit tests for the deterministic fault-injection plan."""

import pytest

from repro.simmpi import Disk, FaultPlan, Simulator


def drain_verdicts(plan, n=50):
    return [plan.message_verdict(0, 1, 7, 1024, 0.0) for _ in range(n)]


def test_fixed_seed_is_deterministic():
    a = FaultPlan(seed=11, message_drop_rate=0.2, message_delay_rate=0.3)
    b = FaultPlan(seed=11, message_drop_rate=0.2, message_delay_rate=0.3)
    assert drain_verdicts(a) == drain_verdicts(b)
    assert a.stats == b.stats
    # disk stream is independent of the message stream
    assert [a.disk_verdict("write", "d0", 0.0) for _ in range(20)] == [
        b.disk_verdict("write", "d0", 0.0) for _ in range(20)
    ]


def test_different_seeds_differ():
    a = FaultPlan(seed=1, message_drop_rate=0.5)
    b = FaultPlan(seed=2, message_drop_rate=0.5)
    assert drain_verdicts(a) != drain_verdicts(b)


def test_self_sends_never_faulted():
    plan = FaultPlan(seed=0, message_drop_rate=1.0)
    for _ in range(10):
        assert plan.message_verdict(3, 3, 1, 100, 0.0) == ("ok", 0.0)
    assert plan.stats.messages_dropped == 0


def test_drop_rate_one_drops_remote_messages():
    plan = FaultPlan(seed=0, message_drop_rate=1.0)
    for _ in range(5):
        verdict, extra = plan.message_verdict(0, 1, 1, 100, 0.0)
        assert verdict == "drop" and extra == 0.0
    assert plan.stats.messages_dropped == 5
    assert len(plan.log) == 5
    assert all(ev.kind == "drop" for ev in plan.log)


def test_max_message_drops_cap():
    plan = FaultPlan(seed=0, message_drop_rate=1.0, max_message_drops=2)
    verdicts = [plan.message_verdict(0, 1, 1, 8, 0.0)[0] for _ in range(6)]
    assert verdicts == ["drop", "drop", "ok", "ok", "ok", "ok"]
    assert plan.stats.messages_dropped == 2


def test_delay_spike_bounds_and_accounting():
    plan = FaultPlan(seed=0, message_delay_rate=1.0, message_delay=1e-3)
    total = 0.0
    for _ in range(20):
        verdict, extra = plan.message_verdict(0, 1, 1, 8, 0.0)
        assert verdict == "delay"
        assert 0.5e-3 <= extra <= 1.5e-3
        total += extra
    assert plan.stats.messages_delayed == 20
    assert plan.stats.added_latency == pytest.approx(total)


def test_disk_verdict_cap():
    plan = FaultPlan(seed=0, disk_write_error_rate=1.0, max_disk_errors=1)
    assert plan.disk_verdict("write", "d0", 0.0) is True
    assert plan.disk_verdict("write", "d0", 0.0) is False
    assert plan.stats.disk_write_errors == 1
    # reads draw from the same cap
    plan2 = FaultPlan(
        seed=0, disk_read_error_rate=1.0, disk_write_error_rate=1.0, max_disk_errors=2
    )
    results = [plan2.disk_verdict(k, "d0", 0.0) for k in ("read", "write", "read")]
    assert results == [True, True, False]


def test_crash_fires_once():
    plan = FaultPlan(seed=0, crash_times={2: 1.5})
    assert plan.pending_crash_time(2) == 1.5
    assert plan.pending_crash_time(3) is None
    plan.record_crash(2, 1.6)
    assert plan.pending_crash_time(2) is None  # consumed; restart is safe
    assert plan.stats.crashes == 1


def test_rate_validation():
    with pytest.raises(ValueError):
        FaultPlan(message_drop_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(message_drop_rate=0.6, message_delay_rate=0.6)
    with pytest.raises(ValueError):
        FaultPlan(message_delay=-1.0)


def test_any_faults_configured():
    assert not FaultPlan().any_faults_configured
    assert FaultPlan(message_drop_rate=0.1).any_faults_configured
    assert FaultPlan(crash_times={1: 0.5}).any_faults_configured


def test_faulted_disk_op_still_occupies_device():
    """A failed write costs full device time and carries a DiskFault."""
    sim = Simulator()
    plan = FaultPlan(seed=0, disk_write_error_rate=1.0, max_disk_errors=1)
    disk = Disk(sim, seek_latency=1.0, bandwidth=1.0, faults=plan)
    results = []

    def proc():
        fault = yield disk.write(1)  # busy [0, 2] -- fails
        results.append((fault, sim.now))
        fault = yield disk.write(1)  # busy [2, 4] -- cap reached, succeeds
        results.append((fault, sim.now))

    sim.spawn(proc())
    sim.run()
    (f1, t1), (f2, t2) = results
    assert f1 is not None and f1.kind == "write"
    assert t1 == pytest.approx(2.0)
    assert f2 is None
    assert t2 == pytest.approx(4.0)
    assert disk.stats.errors == 1
