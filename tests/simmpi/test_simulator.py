"""Unit tests for the discrete-event engine."""

import pytest

from repro.simmpi import (
    AllOf,
    AnyOf,
    DeadlockError,
    SimulationError,
    Simulator,
    Timeout,
)


def test_timeout_advances_time():
    sim = Simulator()
    seen = []

    def proc():
        yield Timeout(1.5)
        seen.append(sim.now)
        yield Timeout(2.5)
        seen.append(sim.now)

    sim.spawn(proc())
    end = sim.run()
    assert seen == [1.5, 4.0]
    assert end == 4.0


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def proc(name, delay):
        yield Timeout(delay)
        order.append(name)
        yield Timeout(delay)
        order.append(name)

    sim.spawn(proc("a", 1.0))
    sim.spawn(proc("b", 1.0))
    sim.run()
    # ties broken by spawn/schedule order
    assert order == ["a", "b", "a", "b"]


def test_event_value_passed_to_waiter():
    sim = Simulator()
    ev = sim.event("payload")
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    def trigger():
        yield Timeout(3.0)
        ev.succeed("hello")

    sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert got == ["hello"]


def test_event_already_triggered_resumes_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(42)
    got = []

    def waiter():
        got.append((yield ev))

    sim.spawn(waiter())
    sim.run()
    assert got == [42]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_failure_propagates_into_process():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as err:
            caught.append(str(err))

    sim.spawn(waiter())
    ev.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_process_exception_aborts_run():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise ValueError("crash")

    sim.spawn(bad())
    with pytest.raises(ValueError, match="crash"):
        sim.run()


def test_anyof_resumes_on_first():
    sim = Simulator()
    e1, e2 = sim.event("e1"), sim.event("e2")
    got = []

    def waiter():
        ready = yield AnyOf([e1, e2])
        got.append([e.name for e in ready])

    def trigger():
        yield Timeout(2.0)
        e2.succeed()
        yield Timeout(2.0)
        e1.succeed()

    sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert got == [["e2"]]


def test_allof_waits_for_all():
    sim = Simulator()
    e1, e2 = sim.event(), sim.event()
    times = []

    def waiter():
        values = yield AllOf([e1, e2])
        times.append((sim.now, values))

    def trigger():
        yield Timeout(1.0)
        e1.succeed("x")
        yield Timeout(1.0)
        e2.succeed("y")

    sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert times == [(2.0, ["x", "y"])]


def test_allof_with_empty_list_resumes_immediately():
    sim = Simulator()
    done = []

    def waiter():
        yield AllOf([])
        done.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    assert done == [0.0]


def test_deadlock_detected():
    sim = Simulator()
    ev = sim.event("never")

    def waiter():
        yield ev

    sim.spawn(waiter())
    with pytest.raises(DeadlockError):
        sim.run()


def test_run_until_time_limit():
    sim = Simulator()

    def ticker():
        while True:
            yield Timeout(1.0)

    sim.spawn(ticker())
    end = sim.run(until=10.5)
    assert end == 10.5


def test_done_event_carries_return_value():
    sim = Simulator()
    results = []

    def child():
        yield Timeout(1.0)
        return "child-result"

    def parent():
        proc = sim.spawn(child(), name="child")
        value = yield proc.done_event
        results.append(value)

    sim.spawn(parent(), name="parent")
    sim.run()
    assert results == ["child-result"]


def test_yield_from_subgenerator():
    sim = Simulator()
    trace = []

    def inner():
        yield Timeout(1.0)
        trace.append(("inner", sim.now))
        return 7

    def outer():
        v = yield from inner()
        trace.append(("outer", sim.now, v))

    sim.spawn(outer())
    sim.run()
    assert trace == [("inner", 1.0), ("outer", 1.0, 7)]


def test_unsupported_effect_is_error():
    sim = Simulator()

    def bad():
        yield "not an effect"

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_timeout_event_fires_with_value():
    sim = Simulator()
    got = []

    def waiter():
        got.append((yield sim.timeout_event(5.0, "v")))

    sim.spawn(waiter())
    sim.run()
    assert got == ["v"]
    assert sim.now == 5.0
