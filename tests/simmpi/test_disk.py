"""Unit tests for the simulated asynchronous disk."""

import pytest

from repro.simmpi import Disk, Simulator, Timeout


def test_single_read_cost():
    sim = Simulator()
    disk = Disk(sim, seek_latency=0.01, bandwidth=100.0)
    times = []

    def proc():
        yield disk.read(50)  # 0.01 + 0.5
        times.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert times == [pytest.approx(0.51)]


def test_operations_serialize_on_device():
    sim = Simulator()
    disk = Disk(sim, seek_latency=1.0, bandwidth=1.0)
    times = []

    def proc():
        e1 = disk.write(1)  # busy [0, 2]
        e2 = disk.read(1)  # busy [2, 4]
        yield e1
        times.append(("w", sim.now))
        yield e2
        times.append(("r", sim.now))

    sim.spawn(proc())
    sim.run()
    assert times == [("w", 2.0), ("r", 4.0)]


def test_issuer_not_blocked_while_disk_busy():
    sim = Simulator()
    disk = Disk(sim, seek_latency=10.0, bandwidth=1e9)
    trace = []

    def proc():
        ev = disk.write(100)
        # can keep computing while the write is in flight
        yield Timeout(1.0)
        trace.append(("computed", sim.now))
        yield ev
        trace.append(("written", sim.now))

    sim.spawn(proc())
    sim.run()
    assert trace[0] == ("computed", 1.0)
    assert trace[1][1] == pytest.approx(10.0, rel=1e-6)


def test_stats_accumulate():
    sim = Simulator()
    disk = Disk(sim, seek_latency=0.0, bandwidth=10.0)

    def proc():
        yield disk.read(10)
        yield disk.write(30)

    sim.spawn(proc())
    sim.run()
    assert disk.stats.reads == 1
    assert disk.stats.writes == 1
    assert disk.stats.bytes_read == 10
    assert disk.stats.bytes_written == 30
    assert disk.stats.busy_time == pytest.approx(4.0)


def test_idle_gap_not_charged():
    sim = Simulator()
    disk = Disk(sim, seek_latency=0.0, bandwidth=1.0)
    times = []

    def proc():
        yield disk.read(1)  # done at t=1
        yield Timeout(5.0)  # idle gap
        yield disk.read(1)  # starts at t=6, done t=7
        times.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert times == [7.0]


def test_zero_bandwidth_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Disk(sim, bandwidth=0.0)
