"""Tests for the shared einsum contraction-path cache."""

import numpy as np

from repro.einsum_cache import cached_einsum, clear_path_cache, path_cache_info


def test_cached_einsum_matches_numpy_bitwise():
    clear_path_cache()
    rng = np.random.default_rng(0)
    a = rng.standard_normal((6, 7))
    b = rng.standard_normal((7, 5))
    want = np.einsum("ij,jk->ik", a, b, optimize=True)
    got = cached_einsum("ij,jk->ik", a, b)
    assert np.array_equal(got, want)


def test_path_cached_per_subscripts_and_shapes():
    clear_path_cache()
    a = np.ones((3, 4))
    b = np.ones((4, 2))
    cached_einsum("ij,jk->ik", a, b)
    cached_einsum("ij,jk->ik", a, b)
    assert path_cache_info() == {"hits": 1, "misses": 1, "paths": 1}
    # a different shape is a different path entry
    cached_einsum("ij,jk->ik", np.ones((5, 4)), b)
    assert path_cache_info() == {"hits": 1, "misses": 2, "paths": 2}


def test_explicit_optimize_kwarg_bypasses_cache():
    clear_path_cache()
    a = np.ones((3, 3))
    got = cached_einsum("ij,jk->ik", a, a, optimize=False)
    assert np.array_equal(got, np.einsum("ij,jk->ik", a, a, optimize=False))
    assert path_cache_info()["paths"] == 0  # nothing cached


def test_three_operand_contraction():
    clear_path_cache()
    rng = np.random.default_rng(1)
    a = rng.standard_normal((4, 5))
    b = rng.standard_normal((5, 6))
    c = rng.standard_normal((6, 3))
    want = np.einsum("ij,jk,kl->il", a, b, c, optimize=True)
    got = cached_einsum("ij,jk,kl->il", a, b, c)
    assert np.array_equal(got, want)
