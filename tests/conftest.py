"""Shared fixtures: flaky-proofing for multiprocess-backend tests."""

import gc
import multiprocessing
import os

import pytest


def _shm_segments() -> set[str]:
    """Names of this runtime's shared-memory segments currently live."""
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("rmp")}
    except OSError:  # non-Linux: no /dev/shm to inspect
        return set()


@pytest.fixture(autouse=True)
def _mp_teardown(request):
    """Backstop for tests marked ``mp``: reap strays, assert zero leaks.

    The mp runner tears its fleet down even on error; this fixture
    keeps one failing test from poisoning the rest of the session
    (orphaned rank processes holding pipe ends, leaked /dev/shm
    segments) and turns any leak into a test failure of its own.
    """
    if request.node.get_closest_marker("mp") is None:
        yield
        return
    before = _shm_segments()
    yield
    for child in multiprocessing.active_children():
        child.terminate()
        child.join(timeout=10)
        if child.is_alive():
            child.kill()
            child.join()
    leaked = sorted(_shm_segments() - before)
    for name in leaked:
        try:
            os.unlink(os.path.join("/dev/shm", name))
        except OSError:
            pass
    assert not leaked, f"mp backend leaked shared memory segments: {leaked}"
    # any in-process arena object (the roundtrip tests build them
    # directly) must have zero outstanding slot leases once the test's
    # garbage is collected -- a nonzero count is a refcount leak even
    # if the segments themselves were reclaimed above
    from repro.sip.arena import LIVE_ARENAS

    gc.collect()
    dangling = {
        f"{type(a).__name__}:{a.outstanding()}"
        for a in LIVE_ARENAS
        if a.outstanding()
    }
    assert not dangling, f"arena slot leases leaked: {sorted(dangling)}"
