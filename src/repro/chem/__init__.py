"""Chemistry substrate: synthetic integrals and reference methods.

The paper's application domain is coupled-cluster electronic structure
(ACES III).  This package supplies the *simulated* chemistry the
reproduction needs: seeded model-Hamiltonian integrals with the correct
tensor symmetries, plus straightforward numpy reference implementations
of RHF/UHF SCF, MP2 (energy and density), LCCD, CCSD, and the (T)
triples correction.  The SIAL programs in :mod:`repro.programs` are
validated against these references.
"""

from .ccsd import CCResult, ccd, ccsd, ccsd_t, lccd, lccd_anderson, lccd_residual
from .integrals import SyntheticIntegrals, make_integrals
from .mo import (
    ao_to_mo,
    mo_slices,
    n_occ_spin,
    spin_orbital_eri,
    spin_orbital_eri_uhf,
    spin_orbital_fock,
)
from .molecules import (
    CYTOSINE_OH,
    DIAMOND_NV,
    HMX,
    LUCIFERIN,
    PAPER_MOLECULES,
    RDX,
    WATER_CLUSTER_21,
    Molecule,
    tiny,
)
from .mp2 import mp2_density_spin, mp2_energy_rhf, mp2_energy_spin, mp2_energy_uhf
from .scf import SCFResult, fock_rhf, rhf, uhf

__all__ = [
    "CCResult",
    "CYTOSINE_OH",
    "DIAMOND_NV",
    "HMX",
    "LUCIFERIN",
    "Molecule",
    "PAPER_MOLECULES",
    "RDX",
    "SCFResult",
    "SyntheticIntegrals",
    "WATER_CLUSTER_21",
    "ao_to_mo",
    "ccd",
    "ccsd",
    "ccsd_t",
    "fock_rhf",
    "lccd",
    "lccd_anderson",
    "lccd_residual",
    "make_integrals",
    "mo_slices",
    "mp2_density_spin",
    "mp2_energy_rhf",
    "mp2_energy_spin",
    "mp2_energy_uhf",
    "n_occ_spin",
    "rhf",
    "spin_orbital_eri",
    "spin_orbital_eri_uhf",
    "spin_orbital_fock",
    "tiny",
    "uhf",
]
