"""AO -> MO integral transformations.

The staged O(n^5) quarter transformations, plus helpers producing the
spin-orbital quantities the coupled-cluster references consume:
antisymmetrized physicists'-notation integrals <pq||rs> and the
spin-orbital Fock matrix.
"""

from __future__ import annotations

import numpy as np

from ..einsum_cache import cached_einsum

__all__ = [
    "ao_to_mo",
    "mo_slices",
    "spin_orbital_eri",
    "spin_orbital_eri_uhf",
    "spin_orbital_fock",
    "n_occ_spin",
]


def ao_to_mo(eri_ao: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Transform chemists'-notation (mu nu|la si) to the MO basis.

    Four quarter-transformations, each O(n^5) -- the very contraction
    sequence whose parallelization the SIA targets.
    """
    tmp = cached_einsum("mp,mnls->pnls", c, eri_ao)
    tmp = cached_einsum("nq,pnls->pqls", c, tmp)
    tmp = cached_einsum("lr,pqls->pqrs", c, tmp)
    return cached_einsum("st,pqrs->pqrt", c, tmp)


def mo_slices(n_occ: int, n_basis: int) -> tuple[slice, slice]:
    """(occupied, virtual) orbital slices."""
    return slice(0, n_occ), slice(n_occ, n_basis)


def spin_orbital_eri(eri_mo: np.ndarray) -> np.ndarray:
    """Antisymmetrized spin-orbital integrals <pq||rs>.

    Spin orbitals alternate (spatial p, spin sigma) with even = alpha,
    odd = beta; input is chemists' (pq|rs) over spatial MOs, output is
    physicists' <pq||rs> = <pq|rs> - <pq|sr> over 2n spin orbitals.
    """
    n = eri_mo.shape[0]
    spat = np.repeat(np.arange(n), 2)
    spin = np.tile(np.arange(2), n)
    # physicists' <pq|rs> = chemists' (pr|qs); apply spin deltas
    coul = eri_mo[np.ix_(spat, spat, spat, spat)].transpose(0, 2, 1, 3)
    same = (spin[:, None] == spin[None, :]).astype(float)
    coulomb = coul * same[:, None, :, None] * same[None, :, None, :]
    exchange = coulomb.transpose(0, 1, 3, 2)
    return coulomb - exchange


def spin_orbital_fock(mo_energy: np.ndarray) -> np.ndarray:
    """Diagonal spin-orbital Fock matrix from canonical orbital energies."""
    return np.diag(np.repeat(mo_energy, 2))


def spin_orbital_eri_uhf(
    eri_ao: np.ndarray,
    c_alpha: np.ndarray,
    c_beta: np.ndarray,
    order: np.ndarray,
) -> np.ndarray:
    """Antisymmetrized <pq||rs> for an *unrestricted* reference.

    ``order`` lists the spin orbitals as (spatial index, spin) pairs in
    the desired energy ordering -- an (nso, 2) integer array with spin
    0 = alpha, 1 = beta.  Used by the UHF MP2 cross-checks: alpha and
    beta spatial orbitals come from different coefficient matrices, so
    the closed-shell :func:`spin_orbital_eri` does not apply.
    """
    mo_a = ao_to_mo(eri_ao, c_alpha)
    mo_b = ao_to_mo(eri_ao, c_beta)
    # mixed chemists' integrals (alpha alpha | beta beta)
    tmp = cached_einsum("mp,mnls->pnls", c_alpha, eri_ao)
    tmp = cached_einsum("nq,pnls->pqls", c_alpha, tmp)
    tmp = cached_einsum("lr,pqls->pqrs", c_beta, tmp)
    mo_ab = cached_einsum("st,pqrs->pqrt", c_beta, tmp)

    def chem(p, sp, q, sq, r, sr, s, ss):
        """(pq|rs) with given spatial indices and spins."""
        if sp != sq or sr != ss:
            return 0.0
        if sp == 0 and sr == 0:
            return mo_a[p, q, r, s]
        if sp == 1 and sr == 1:
            return mo_b[p, q, r, s]
        if sp == 0 and sr == 1:
            return mo_ab[p, q, r, s]
        return mo_ab[r, s, p, q]

    nso = len(order)
    out = np.zeros((nso, nso, nso, nso))
    for i, (pi, si) in enumerate(order):
        for j, (pj, sj) in enumerate(order):
            for k, (pk, sk) in enumerate(order):
                for l, (pl, sl) in enumerate(order):
                    # physicists' <ij|kl> = chemists' (ik|jl)
                    coul = chem(pi, si, pk, sk, pj, sj, pl, sl)
                    exch = chem(pi, si, pl, sl, pj, sj, pk, sk)
                    out[i, j, k, l] = coul - exch
    return out


def n_occ_spin(n_occ: int) -> int:
    """Number of occupied *spin* orbitals for a closed shell."""
    return 2 * n_occ
