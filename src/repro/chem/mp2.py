"""Second-order Moller-Plesset perturbation theory references.

Closed-shell (spatial orbital) and spin-orbital forms; the Fig.-7
workload is a UHF MP2 gradient, for which we also provide the
(unrelaxed) one-particle density matrix -- the extra O(o^2 v^2) tensor
work that makes a "gradient" cost more than an energy.
"""

from __future__ import annotations

import numpy as np

from ..einsum_cache import cached_einsum

__all__ = [
    "mp2_energy_rhf",
    "mp2_energy_uhf",
    "mp2_energy_spin",
    "mp2_density_spin",
]


def mp2_energy_rhf(
    eri_mo: np.ndarray, mo_energy: np.ndarray, n_occ: int
) -> float:
    """Closed-shell MP2 correlation energy.

    E2 = sum_{ijab} (ia|jb) [2 (ia|jb) - (ib|ja)] / (ei + ej - ea - eb)
    """
    n = eri_mo.shape[0]
    o, v = slice(0, n_occ), slice(n_occ, n)
    ovov = eri_mo[o, v, o, v]
    e_o = mo_energy[o]
    e_v = mo_energy[v]
    denom = (
        e_o[:, None, None, None]
        - e_v[None, :, None, None]
        + e_o[None, None, :, None]
        - e_v[None, None, None, :]
    )
    t = ovov / denom
    return float(np.sum(t * (2.0 * ovov - ovov.transpose(0, 3, 2, 1))))


def _same_spin_pair_energy(
    ovov: np.ndarray, e_occ: np.ndarray, e_virt: np.ndarray
) -> float:
    """1/2 sum (ia|jb)[(ia|jb) - (ib|ja)] / D for one spin channel."""
    denom = (
        e_occ[:, None, None, None]
        - e_virt[None, :, None, None]
        + e_occ[None, None, :, None]
        - e_virt[None, None, None, :]
    )
    anti = ovov - ovov.transpose(0, 3, 2, 1)
    return 0.5 * float(np.sum(ovov * anti / denom))


def _cross_spin_pair_energy(
    ovov_ab: np.ndarray,
    e_occ_a: np.ndarray,
    e_virt_a: np.ndarray,
    e_occ_b: np.ndarray,
    e_virt_b: np.ndarray,
) -> float:
    """sum (ia|jb)^2 / D for the mixed alpha/beta channel."""
    denom = (
        e_occ_a[:, None, None, None]
        - e_virt_a[None, :, None, None]
        + e_occ_b[None, None, :, None]
        - e_virt_b[None, None, None, :]
    )
    return float(np.sum(ovov_ab**2 / denom))


def mp2_energy_uhf(
    ovov_aa: np.ndarray,
    ovov_bb: np.ndarray,
    ovov_ab: np.ndarray,
    e_occ_a: np.ndarray,
    e_virt_a: np.ndarray,
    e_occ_b: np.ndarray,
    e_virt_b: np.ndarray,
) -> float:
    """Unrestricted MP2 from spatial-orbital (ia|jb) blocks.

    Three channels: alpha-alpha and beta-beta (antisymmetrized) plus
    the alpha-beta cross term -- the Fig. 7 workload's energy.
    """
    e_aa = _same_spin_pair_energy(ovov_aa, e_occ_a, e_virt_a)
    e_bb = _same_spin_pair_energy(ovov_bb, e_occ_b, e_virt_b)
    e_ab = _cross_spin_pair_energy(ovov_ab, e_occ_a, e_virt_a, e_occ_b, e_virt_b)
    return e_aa + e_bb + e_ab


def _spin_amplitudes(eri_so: np.ndarray, eps: np.ndarray, n_occ_so: int):
    o, v = slice(0, n_occ_so), slice(n_occ_so, eri_so.shape[0])
    oovv = eri_so[o, o, v, v]
    e_o, e_v = eps[o], eps[v]
    denom = (
        e_o[:, None, None, None]
        + e_o[None, :, None, None]
        - e_v[None, None, :, None]
        - e_v[None, None, None, :]
    )
    return oovv / denom, oovv


def mp2_energy_spin(
    eri_so: np.ndarray, eps: np.ndarray, n_occ_so: int
) -> float:
    """Spin-orbital MP2: E2 = 1/4 sum <ij||ab>^2 / D_ijab.

    ``eri_so`` is antisymmetrized <pq||rs> with occupied spin orbitals
    first; works for RHF and UHF references alike.
    """
    t, oovv = _spin_amplitudes(eri_so, eps, n_occ_so)
    return 0.25 * float(np.sum(t * oovv))


def mp2_density_spin(
    eri_so: np.ndarray, eps: np.ndarray, n_occ_so: int
) -> np.ndarray:
    """Unrelaxed MP2 one-particle density correction (block diagonal).

    occ-occ:   -1/2 sum_{mab} t_im^ab t_jm^ab
    virt-virt: +1/2 sum_{ijc} t_ij^ac t_ij^bc

    This supplies the extra contraction load of a *gradient* versus an
    energy-only MP2 run (Fig. 7).
    """
    n = eri_so.shape[0]
    t, _ = _spin_amplitudes(eri_so, eps, n_occ_so)
    no = n_occ_so
    dm = np.zeros((n, n))
    dm[:no, :no] = -0.5 * cached_einsum("imab,jmab->ij", t, t)
    dm[no:, no:] = 0.5 * cached_einsum("ijac,ijbc->ab", t, t)
    return dm
