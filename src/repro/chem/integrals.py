"""Deterministic synthetic molecular integrals.

The paper's integrals come from Gaussian basis sets; we cannot evaluate
those, so this module builds a *model Hamiltonian* with the same
structure: a symmetric, diagonally dominant core Hamiltonian ``h`` and
a two-electron integral tensor ``(pq|rs)`` (chemists' notation) with
the full 8-fold permutational symmetry

    (pq|rs) = (qp|rs) = (pq|sr) = (qp|sr) = (rs|pq) = ...

and Coulomb-dominated diagonals ``(pp|qq) > 0`` so Hartree-Fock and the
correlated methods converge.  Everything is seeded, so a molecule name
maps to one reproducible Hamiltonian.

The basis is taken orthonormal (overlap = identity); this loses no
structure relevant to the paper -- the tensor contractions are
identical -- and keeps the SCF reference compact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SyntheticIntegrals", "make_integrals"]


@dataclass
class SyntheticIntegrals:
    """Model-Hamiltonian integrals over an orthonormal basis."""

    n_basis: int
    h: np.ndarray  # (n, n) core Hamiltonian
    eri: np.ndarray  # (n, n, n, n) two-electron integrals, chemists' notation

    def eri_block(self, element_ranges) -> np.ndarray:
        """Slice of the ERI tensor; plugs into SIPConfig.integral_source."""
        slices = tuple(slice(lo, hi) for lo, hi in element_ranges)
        return self.eri[slices]

    def h_block(self, element_ranges) -> np.ndarray:
        slices = tuple(slice(lo, hi) for lo, hi in element_ranges)
        return self.h[slices]


def make_integrals(
    n_basis: int,
    seed: int = 1234,
    coupling: float = 0.02,
    level_spread: float = 1.0,
    hopping: float = 0.15,
    coulomb_scale: float = 0.5,
) -> SyntheticIntegrals:
    """Build seeded synthetic integrals for ``n_basis`` functions.

    The defaults were calibrated so that every correlated method in
    :mod:`repro.chem` (MP2, LCCD, CCSD, (T), UHF references) converges
    for any seed and size the test-suite uses, while keeping the
    correlation energy non-trivial.  ``coupling`` scales the random
    two-electron part; ``level_spread`` sets the one-particle level
    spacing (and hence the HOMO-LUMO gap), ``hopping`` the one-particle
    off-diagonal coupling, and ``coulomb_scale`` the (pp|qq) Coulomb
    diagonal.
    """
    rng = np.random.default_rng(seed)
    n = n_basis

    # core Hamiltonian: attractive wells of increasing depth with
    # exponentially decaying off-diagonal hopping
    diag = -2.0 - level_spread * np.arange(n)
    idx = np.arange(n)
    dist = np.abs(idx[:, None] - idx[None, :])
    h = hopping * np.exp(-dist / 1.5)
    np.fill_diagonal(h, diag)
    h = 0.5 * (h + h.T)

    # random two-electron part, 8-fold symmetrized
    raw = rng.standard_normal((n, n, n, n))
    eri = raw
    eri = eri + eri.transpose(1, 0, 2, 3)
    eri = eri + eri.transpose(0, 1, 3, 2)
    eri = eri + eri.transpose(2, 3, 0, 1)
    eri *= coupling / 8.0

    # Coulomb-like dominant part: (pp|qq) = scale / (1 + |p - q|)
    coulomb = coulomb_scale / (1.0 + dist)
    pp = np.zeros_like(eri)
    pp[idx[:, None], idx[:, None], idx[None, :], idx[None, :]] = coulomb
    eri = eri + pp

    return SyntheticIntegrals(n_basis=n, h=h, eri=eri)
