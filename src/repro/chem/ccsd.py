"""Spin-orbital coupled-cluster references: CCSD, (T), and LCCD.

These numpy implementations define *correct answers* for the SIAL
coupled-cluster programs and supply the operation counts behind the
performance model (CCSD iterations are the Fig. 2-4 workload, the
perturbative triples of CCSD(T) are Fig. 5).

Equations follow Stanton, Gauss, Watts & Bartlett (J. Chem. Phys. 94,
4334, 1991) in the ``t1[i,a]``, ``t2[i,j,a,b]`` index convention, with
``eri`` the antisymmetrized physicists' integrals <pq||rs> over spin
orbitals (occupied first) and a diagonal Fock matrix from canonical
orbital energies.

LCCD (= CEPA(0)) drops the terms quadratic in T: it is the method the
repository's SIAL implementation of a CC iteration executes, chosen
because its three contraction families (particle-particle ladder,
hole-hole ladder, ring) already exhibit the paper's full data-movement
structure, including an O(v^4) integral array that must live on disk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..einsum_cache import cached_einsum

__all__ = [
    "CCResult",
    "ccd",
    "ccsd",
    "ccsd_t",
    "lccd",
    "lccd_anderson",
    "lccd_residual",
]


@dataclass
class CCResult:
    e_corr: float
    t1: np.ndarray | None
    t2: np.ndarray
    converged: bool
    iterations: int
    history: list[float]

    @property
    def e_mp2(self) -> float:
        """The first-iteration energy (equals MP2 for canonical HF)."""
        return self.history[0] if self.history else 0.0


def _denominators(eps: np.ndarray, no: int):
    e_o, e_v = eps[:no], eps[no:]
    d1 = e_o[:, None] - e_v[None, :]
    d2 = (
        e_o[:, None, None, None]
        + e_o[None, :, None, None]
        - e_v[None, None, :, None]
        - e_v[None, None, None, :]
    )
    return d1, d2


def ccsd(
    eps: np.ndarray,
    eri: np.ndarray,
    n_occ_so: int,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> CCResult:
    """Full spin-orbital CCSD with a canonical (diagonal) Fock matrix."""
    no = n_occ_so
    nso = eri.shape[0]
    nv = nso - no
    o, v = slice(0, no), slice(no, nso)
    d1, d2 = _denominators(eps, no)

    t1 = np.zeros((no, nv))
    t2 = eri[o, o, v, v] / d2
    history: list[float] = []
    e_prev = _cc_energy(eri, t1, t2, no)
    history.append(e_prev)
    converged = False
    it = 0
    for it in range(1, max_iterations + 1):
        t1, t2 = _ccsd_update(eps, eri, t1, t2, no, d1, d2)
        e = _cc_energy(eri, t1, t2, no)
        history.append(e)
        if abs(e - e_prev) < tolerance:
            converged = True
            break
        e_prev = e
    return CCResult(
        e_corr=history[-1],
        t1=t1,
        t2=t2,
        converged=converged,
        iterations=it,
        history=history,
    )


def _cc_energy(eri, t1, t2, no):
    o, v = slice(0, no), slice(no, eri.shape[0])
    oovv = eri[o, o, v, v]
    e = 0.25 * cached_einsum("ijab,ijab->", oovv, t2)
    e += 0.5 * cached_einsum("ijab,ia,jb->", oovv, t1, t1)
    return float(e)


def _ccsd_update(eps, eri, t1, t2, no, d1, d2):
    nso = eri.shape[0]
    o, v = slice(0, no), slice(no, nso)
    ein = cached_einsum

    tau_t = t2 + 0.5 * (
        ein("ia,jb->ijab", t1, t1) - ein("ib,ja->ijab", t1, t1)
    )
    tau = t2 + ein("ia,jb->ijab", t1, t1) - ein("ib,ja->ijab", t1, t1)

    # one-particle intermediates (f is diagonal: off-diagonal parts vanish)
    fae = ein("mf,mafe->ae", t1, eri[o, v, v, v], optimize=True)
    fae -= 0.5 * ein("mnaf,mnef->ae", tau_t, eri[o, o, v, v], optimize=True)
    fmi = ein("ne,mnie->mi", t1, eri[o, o, o, v], optimize=True)
    fmi += 0.5 * ein("inef,mnef->mi", tau_t, eri[o, o, v, v], optimize=True)
    fme = ein("nf,mnef->me", t1, eri[o, o, v, v], optimize=True)

    # two-particle intermediates
    wmnij = eri[o, o, o, o].copy()
    x = ein("je,mnie->mnij", t1, eri[o, o, o, v], optimize=True)
    wmnij += x - x.transpose(0, 1, 3, 2)
    wmnij += 0.25 * ein("ijef,mnef->mnij", tau, eri[o, o, v, v], optimize=True)

    wabef = eri[v, v, v, v].copy()
    y = ein("mb,amef->abef", t1, eri[v, o, v, v], optimize=True)
    wabef -= y - y.transpose(1, 0, 2, 3)
    wabef += 0.25 * ein("mnab,mnef->abef", tau, eri[o, o, v, v], optimize=True)

    wmbej = eri[o, v, v, o].copy()
    wmbej += ein("jf,mbef->mbej", t1, eri[o, v, v, v], optimize=True)
    wmbej -= ein("nb,mnej->mbej", t1, eri[o, o, v, o], optimize=True)
    wmbej -= ein(
        "jnfb,mnef->mbej",
        0.5 * t2 + ein("jf,nb->jnfb", t1, t1),
        eri[o, o, v, v],
        optimize=True,
    )

    # T1 equation
    rhs1 = ein("ie,ae->ia", t1, fae, optimize=True)
    rhs1 -= ein("ma,mi->ia", t1, fmi, optimize=True)
    rhs1 += ein("imae,me->ia", t2, fme, optimize=True)
    rhs1 -= ein("nf,naif->ia", t1, eri[o, v, o, v], optimize=True)
    rhs1 -= 0.5 * ein("imef,maef->ia", t2, eri[o, v, v, v], optimize=True)
    rhs1 -= 0.5 * ein("mnae,nmei->ia", t2, eri[o, o, v, o], optimize=True)
    t1_new = rhs1 / d1

    # T2 equation
    rhs2 = eri[o, o, v, v].copy()
    tmp = fae - 0.5 * ein("mb,me->be", t1, fme, optimize=True)
    x = ein("ijae,be->ijab", t2, tmp, optimize=True)
    rhs2 += x - x.transpose(0, 1, 3, 2)
    tmp = fmi + 0.5 * ein("je,me->mj", t1, fme, optimize=True)
    x = ein("imab,mj->ijab", t2, tmp, optimize=True)
    rhs2 -= x - x.transpose(1, 0, 2, 3)
    rhs2 += 0.5 * ein("mnab,mnij->ijab", tau, wmnij, optimize=True)
    rhs2 += 0.5 * ein("ijef,abef->ijab", tau, wabef, optimize=True)
    x = ein("imae,mbej->ijab", t2, wmbej, optimize=True)
    x -= ein("ie,ma,mbej->ijab", t1, t1, eri[o, v, v, o], optimize=True)
    rhs2 += (
        x
        - x.transpose(1, 0, 2, 3)
        - x.transpose(0, 1, 3, 2)
        + x.transpose(1, 0, 3, 2)
    )
    x = ein("ie,abej->ijab", t1, eri[v, v, v, o], optimize=True)
    rhs2 += x - x.transpose(1, 0, 2, 3)
    x = ein("ma,mbij->ijab", t1, eri[o, v, o, o], optimize=True)
    rhs2 -= x - x.transpose(0, 1, 3, 2)
    t2_new = rhs2 / d2

    return t1_new, t2_new


def ccd(
    eps: np.ndarray,
    eri: np.ndarray,
    n_occ_so: int,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> CCResult:
    """Coupled cluster doubles: CCSD with the singles frozen at zero.

    Uses the same Stanton update with t1 = 0 on every sweep, so the
    quadratic-in-T2 terms (through tau and the W intermediates) are
    fully included -- the method sits between LCCD and CCSD.
    """
    no = n_occ_so
    nso = eri.shape[0]
    nv = nso - no
    o = slice(0, no)
    v = slice(no, nso)
    d1, d2 = _denominators(eps, no)
    zero_t1 = np.zeros((no, nv))
    t2 = eri[o, o, v, v] / d2
    history = [_cc_energy(eri, zero_t1, t2, no)]
    converged = False
    it = 0
    e_prev = history[0]
    for it in range(1, max_iterations + 1):
        _t1, t2 = _ccsd_update(eps, eri, zero_t1, t2, no, d1, d2)
        e = _cc_energy(eri, zero_t1, t2, no)
        history.append(e)
        if abs(e - e_prev) < tolerance:
            converged = True
            break
        e_prev = e
    return CCResult(
        e_corr=history[-1],
        t1=None,
        t2=t2,
        converged=converged,
        iterations=it,
        history=history,
    )


def ccsd_t(
    eps: np.ndarray, eri: np.ndarray, t1: np.ndarray, t2: np.ndarray, n_occ_so: int
) -> float:
    """Perturbative triples correction E(T) (the Fig.-5 n^7 workload)."""
    no = n_occ_so
    nso = eri.shape[0]
    o, v = slice(0, no), slice(no, nso)
    e_o, e_v = eps[:no], eps[no:]
    ein = cached_einsum

    d3 = (
        e_o[:, None, None, None, None, None]
        + e_o[None, :, None, None, None, None]
        + e_o[None, None, :, None, None, None]
        - e_v[None, None, None, :, None, None]
        - e_v[None, None, None, None, :, None]
        - e_v[None, None, None, None, None, :]
    )

    def p_i_jk(x):
        return x - x.transpose(1, 0, 2, 3, 4, 5) - x.transpose(2, 1, 0, 3, 4, 5)

    def p_a_bc(x):
        return x - x.transpose(0, 1, 2, 4, 3, 5) - x.transpose(0, 1, 2, 5, 4, 3)

    disc = ein("ia,jkbc->ijkabc", t1, eri[o, o, v, v], optimize=True)
    t3d = p_i_jk(p_a_bc(disc)) / d3

    conn = ein("jkae,eibc->ijkabc", t2, eri[v, o, v, v], optimize=True)
    conn -= ein("imbc,majk->ijkabc", t2, eri[o, v, o, o], optimize=True)
    t3c = p_i_jk(p_a_bc(conn)) / d3

    return float(np.sum(t3c * d3 * (t3c + t3d)) / 36.0)


def lccd_residual(eri: np.ndarray, t2: np.ndarray, n_occ_so: int) -> np.ndarray:
    """One linearized-CCD residual: driver + two ladders + four rings.

    This is exactly the contraction set the SIAL program
    :data:`repro.programs.library.LCCD_ITERATION` evaluates, so the two
    implementations can be compared iteration by iteration.
    """
    no = n_occ_so
    o, v = slice(0, no), slice(no, eri.shape[0])
    ein = cached_einsum
    r = eri[o, o, v, v].copy()
    r += 0.5 * ein("abef,ijef->ijab", eri[v, v, v, v], t2, optimize=True)
    r += 0.5 * ein("mnij,mnab->ijab", eri[o, o, o, o], t2, optimize=True)
    ring = ein("imae,mbej->ijab", t2, eri[o, v, v, o], optimize=True)
    r += (
        ring
        - ring.transpose(1, 0, 2, 3)
        - ring.transpose(0, 1, 3, 2)
        + ring.transpose(1, 0, 3, 2)
    )
    return r


def lccd_anderson(
    eps: np.ndarray,
    eri: np.ndarray,
    n_occ_so: int,
    iterations: int = 8,
) -> CCResult:
    """LCCD with Anderson (depth-1 DIIS) convergence acceleration.

    This is the convergence-acceleration algorithm behind the paper's
    Section II storage arithmetic: keeping extra amplitude copies (here
    t_prev and the previous update) buys faster convergence.  The SIAL
    program :data:`repro.programs.library.LCCD_ANDERSON` implements the
    *identical* fixed-sweep algorithm, so the two match bitwise-ish:

        u_k      = R(t_k) / D                    (plain update)
        theta_k  = <dr, r_k> / <dr, dr>,  r_k = u_k - t_k,
                   dr = r_k - r_{k-1}
        t_{k+1}  = (1 - theta_k) u_k + theta_k u_{k-1}

    with t_1 = u_0 on the first sweep.
    """
    no = n_occ_so
    o, v = slice(0, no), slice(no, eri.shape[0])
    _, d2 = _denominators(eps, no)
    oovv = eri[o, o, v, v]

    def energy(t):
        return 0.25 * float(np.einsum("ijab,ijab->", oovv, t))

    t = oovv / d2
    t_prev = None
    u_prev = None
    history = [energy(t)]
    it = 0
    for it in range(1, iterations + 1):
        u = lccd_residual(eri, t, no) / d2
        if t_prev is None:
            t_new = u
        else:
            r = u - t
            r_prev = u_prev - t_prev
            dr = r - r_prev
            denom = float(np.sum(dr * dr))
            theta = float(np.sum(dr * r)) / (denom + 1e-30)
            t_new = (1.0 - theta) * u + theta * u_prev
        t_prev, u_prev = t, u
        t = t_new
        history.append(energy(t))
    return CCResult(
        e_corr=history[-1],
        t1=None,
        t2=t,
        converged=True,
        iterations=it,
        history=history,
    )


def lccd(
    eps: np.ndarray,
    eri: np.ndarray,
    n_occ_so: int,
    iterations: int = 12,
    tolerance: float = 0.0,
) -> CCResult:
    """Linearized CCD (CEPA(0)) by fixed-point iteration.

    Runs exactly ``iterations`` sweeps unless ``tolerance`` > 0 stops
    it earlier -- fixed sweeps keep it bit-comparable with the SIAL
    program, which has no early-exit construct.
    """
    no = n_occ_so
    o, v = slice(0, no), slice(no, eri.shape[0])
    _, d2 = _denominators(eps, no)
    t2 = eri[o, o, v, v] / d2
    history: list[float] = []
    e_prev = 0.25 * float(np.einsum("ijab,ijab->", eri[o, o, v, v], t2))
    history.append(e_prev)
    converged = False
    it = 0
    for it in range(1, iterations + 1):
        t2 = lccd_residual(eri, t2, no) / d2
        e = 0.25 * float(np.einsum("ijab,ijab->", eri[o, o, v, v], t2))
        history.append(e)
        if tolerance > 0 and abs(e - e_prev) < tolerance:
            converged = True
            break
        e_prev = e
    return CCResult(
        e_corr=history[-1],
        t1=None,
        t2=t2,
        converged=converged or tolerance == 0.0,
        iterations=it,
        history=history,
    )
