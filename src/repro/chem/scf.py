"""Restricted and unrestricted Hartree-Fock over an orthonormal basis.

These are the *reference* implementations the SIAL programs are
validated against (the paper's Fock-build workload of Fig. 6 is the
``fock_rhf`` contraction).  DIIS convergence acceleration is included
-- it is the very algorithm whose extra amplitude copies drive the
paper's Section II storage arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..einsum_cache import cached_einsum

__all__ = ["SCFResult", "fock_rhf", "rhf", "uhf"]


@dataclass
class SCFResult:
    energy: float
    mo_coeff: np.ndarray  # (n, n) MO coefficients, columns are orbitals
    mo_energy: np.ndarray  # (n,) orbital energies
    density: np.ndarray
    fock: np.ndarray
    converged: bool
    iterations: int
    history: list[float] = field(default_factory=list)
    # UHF: beta-spin counterparts (None for RHF)
    mo_coeff_b: np.ndarray | None = None
    mo_energy_b: np.ndarray | None = None
    density_b: np.ndarray | None = None
    fock_b: np.ndarray | None = None


def fock_rhf(h: np.ndarray, eri: np.ndarray, density: np.ndarray) -> np.ndarray:
    """Closed-shell Fock matrix: F = h + J - K/2 with D = 2 C_occ C_occ^T.

    This is the contraction pair the diamond-nanocrystal benchmark
    (Fig. 6) spends its time in:

        J[mu,nu] = (mu nu|la si) D[la,si]
        K[mu,nu] = (mu la|nu si) D[la,si]
    """
    j = cached_einsum("mnls,ls->mn", eri, density)
    k = cached_einsum("mlns,ls->mn", eri, density)
    return h + j - 0.5 * k


def _fock_spin(h, eri, d_total, d_spin):
    """One spin channel of the UHF Fock matrix."""
    j = cached_einsum("mnls,ls->mn", eri, d_total)
    k = cached_einsum("mlns,ls->mn", eri, d_spin)
    return h + j - k


class _DIIS:
    """Pulay's DIIS on the Fock matrix with error e = FD - DF."""

    def __init__(self, max_vectors: int = 8) -> None:
        self.focks: list[np.ndarray] = []
        self.errors: list[np.ndarray] = []
        self.max_vectors = max_vectors

    def extrapolate(self, fock: np.ndarray, error: np.ndarray) -> np.ndarray:
        self.focks.append(fock.copy())
        self.errors.append(error.copy())
        if len(self.focks) > self.max_vectors:
            self.focks.pop(0)
            self.errors.pop(0)
        m = len(self.focks)
        if m < 2:
            return fock
        b = -np.ones((m + 1, m + 1))
        b[m, m] = 0.0
        for i in range(m):
            for j in range(m):
                b[i, j] = np.vdot(self.errors[i], self.errors[j])
        rhs = np.zeros(m + 1)
        rhs[m] = -1.0
        try:
            coeffs = np.linalg.solve(b, rhs)[:m]
        except np.linalg.LinAlgError:
            return fock
        return sum(c * f for c, f in zip(coeffs, self.focks))


def rhf(
    h: np.ndarray,
    eri: np.ndarray,
    n_occ: int,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
    diis: bool = True,
) -> SCFResult:
    """Closed-shell SCF; returns converged orbitals and energy."""
    n = h.shape[0]
    if not 0 < n_occ <= n:
        raise ValueError(f"n_occ={n_occ} out of range for {n} basis functions")
    eps, c = np.linalg.eigh(h)  # core guess
    density = 2.0 * c[:, :n_occ] @ c[:, :n_occ].T
    accel = _DIIS() if diis else None
    energy = 0.0
    history: list[float] = []
    converged = False
    it = 0
    for it in range(1, max_iterations + 1):
        fock = fock_rhf(h, eri, density)
        energy = 0.5 * float(np.sum(density * (h + fock)))
        history.append(energy)
        error = fock @ density - density @ fock
        if np.max(np.abs(error)) < tolerance:
            converged = True
            break
        if accel is not None:
            fock = accel.extrapolate(fock, error)
        eps, c = np.linalg.eigh(fock)
        density = 2.0 * c[:, :n_occ] @ c[:, :n_occ].T
    fock = fock_rhf(h, eri, density)
    eps, c = np.linalg.eigh(fock)
    return SCFResult(
        energy=energy,
        mo_coeff=c,
        mo_energy=eps,
        density=density,
        fock=fock,
        converged=converged,
        iterations=it,
        history=history,
    )


def uhf(
    h: np.ndarray,
    eri: np.ndarray,
    n_alpha: int,
    n_beta: int,
    max_iterations: int = 200,
    tolerance: float = 1e-10,
    diis: bool = True,
) -> SCFResult:
    """Open-shell (spin-unrestricted) SCF, the Fig.-7 reference."""
    n = h.shape[0]
    eps, c = np.linalg.eigh(h)
    ca = cb = c
    da = ca[:, :n_alpha] @ ca[:, :n_alpha].T
    # break alpha/beta symmetry slightly so UHF can relax
    db = cb[:, :n_beta] @ cb[:, :n_beta].T
    accel_a = _DIIS() if diis else None
    accel_b = _DIIS() if diis else None
    energy = 0.0
    history: list[float] = []
    converged = False
    it = 0
    for it in range(1, max_iterations + 1):
        d_total = da + db
        fa = _fock_spin(h, eri, d_total, da)
        fb = _fock_spin(h, eri, d_total, db)
        energy = 0.5 * float(
            np.sum((da + db) * h) + np.sum(da * fa) + np.sum(db * fb)
        )
        history.append(energy)
        err_a = fa @ da - da @ fa
        err_b = fb @ db - db @ fb
        if max(np.max(np.abs(err_a)), np.max(np.abs(err_b))) < tolerance:
            converged = True
            break
        if accel_a is not None:
            fa = accel_a.extrapolate(fa, err_a)
            fb = accel_b.extrapolate(fb, err_b)
        eps_a, ca = np.linalg.eigh(fa)
        eps_b, cb = np.linalg.eigh(fb)
        da = ca[:, :n_alpha] @ ca[:, :n_alpha].T
        db = cb[:, :n_beta] @ cb[:, :n_beta].T
    d_total = da + db
    fa = _fock_spin(h, eri, d_total, da)
    fb = _fock_spin(h, eri, d_total, db)
    eps_a, ca = np.linalg.eigh(fa)
    eps_b, cb = np.linalg.eigh(fb)
    return SCFResult(
        energy=energy,
        mo_coeff=ca,
        mo_energy=eps_a,
        density=da,
        fock=fa,
        converged=converged,
        iterations=it,
        history=history,
        mo_coeff_b=cb,
        mo_energy_b=eps_b,
        density_b=db,
        fock_b=fb,
    )
