"""Molecular systems from the paper's evaluation.

The paper benchmarks ACES III on specific molecules (Section VI-C).
We cannot run real Gaussian-basis integrals, so each molecule is
described by the two quantities that determine the *tensor shapes* and
therefore the computational structure: the number of single-particle
basis functions ``n_basis`` (the paper's ``n``) and the number of
occupied spatial orbitals ``n_occ`` (electron pairs; the paper's
``N/2``).  These drive the coarse performance model.

Basis counts are estimated from standard double-zeta basis sizes
(14 functions per first-row heavy atom, 18 per S, 5 per H), except the
diamond nanocrystal where the paper states the count (2944 functions of
aug-cc-pVTZ).  Electron counts are exact for the given formulas.

``tiny(...)`` builds scaled-down molecules whose synthetic integrals
run in real mode on one machine; the structure (occ/virt split, array
kinds) is identical.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Molecule",
    "tiny",
    "LUCIFERIN",
    "WATER_CLUSTER_21",
    "RDX",
    "HMX",
    "CYTOSINE_OH",
    "DIAMOND_NV",
    "PAPER_MOLECULES",
]


@dataclass(frozen=True)
class Molecule:
    """A molecular system, reduced to its tensor dimensions."""

    name: str
    formula: str
    n_basis: int  # paper's n: single-particle basis functions
    n_electrons: int
    uhf: bool = False  # open shell -> UHF reference (Fig. 7 workload)

    @property
    def n_occ(self) -> int:
        """Occupied spatial orbitals (closed shell: electron pairs)."""
        return (self.n_electrons + 1) // 2

    @property
    def n_virt(self) -> int:
        return self.n_basis - self.n_occ

    def scaled(self, factor: float) -> "Molecule":
        """A proportionally smaller copy for laptop-scale real runs."""
        n_basis = max(4, round(self.n_basis * factor))
        n_elec = max(2, round(self.n_electrons * factor))
        n_elec = min(n_elec, 2 * n_basis - 2)
        if not self.uhf and n_elec % 2:
            n_elec += 1
        return Molecule(
            name=f"{self.name}-x{factor:g}",
            formula=self.formula,
            n_basis=n_basis,
            n_electrons=n_elec,
            uhf=self.uhf,
        )


def tiny(n_basis: int = 8, n_occ: int = 3, name: str = "tiny") -> Molecule:
    """A synthetic test molecule small enough for real-mode execution."""
    if n_occ >= n_basis:
        raise ValueError("need at least one virtual orbital")
    return Molecule(
        name=name, formula="Xn", n_basis=n_basis, n_electrons=2 * n_occ
    )


# Fig. 2: RHF CCSD on a Sun/Opteron cluster (aug-cc-pVDZ-scale basis:
# ~35 functions per heavy atom, ~9 per H)
LUCIFERIN = Molecule("luciferin", "C11H8O3S2N2", n_basis=570, n_electrons=144)

# Fig. 3: RHF CCSD on Cray XT4/XT5 (cc-pVDZ-scale)
WATER_CLUSTER_21 = Molecule(
    "water-cluster-21", "(H2O)21H+", n_basis=509, n_electrons=210
)

# Figs. 4-5: RHF CCSD / CCSD(T) on jaguar; 10k-80k-core runs imply
# triple-zeta-scale bases (~46 functions per heavy atom, ~23 per H)
RDX = Molecule("rdx", "C3H6N6O6", n_basis=828, n_electrons=114)
HMX = Molecule("hmx", "C4H8N8O8", n_basis=1104, n_electrons=152)

# Fig. 7: UHF MP2 gradient vs NWChem on the SGI Altix
CYTOSINE_OH = Molecule(
    "cytosine-oh", "C4H6N3O2", n_basis=156, n_electrons=67, uhf=True
)

# Fig. 6: Fock matrix build; the paper gives the basis size explicitly
DIAMOND_NV = Molecule("diamond-nv", "C42H42N", n_basis=2944, n_electrons=301)

PAPER_MOLECULES: dict[str, Molecule] = {
    m.name: m
    for m in (LUCIFERIN, WATER_CLUSTER_21, RDX, HMX, CYTOSINE_OH, DIAMOND_NV)
}
