"""Cost model for super instructions.

The SIP charges every super instruction a modeled execution time derived
from the machine parameters.  In *real* mode the numpy kernels also run
(for correctness), but simulated time always comes from this model so
that performance results are reproducible and machine-independent.

The model is deliberately simple -- the paper's point is that super
instructions are coarse enough that a latency/bandwidth/flop-rate model
captures the behaviour that matters (overlap, granularity, load
balance):

* contraction:  ``2 * |out| * |contracted|`` flops at the machine's
  effective DGEMM rate, plus a fixed kernel launch overhead;
* permutation / copy / elementwise ops: bytes over the copy bandwidth;
* integral computation: an expensive per-element cost (two-electron
  integrals cost far more than a flop each).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Sequence

from .machines import Machine

__all__ = ["CostModel", "contraction_flops"]

# Cost (in equivalent flops) of producing one two-electron integral on
# demand.  Real integral kernels evaluate Boys functions and primitive
# Gaussian products; hundreds of flops per integral is typical.
INTEGRAL_FLOPS_PER_ELEMENT = 450.0


def contraction_flops(
    out_shape: Sequence[int], contracted_shape: Sequence[int]
) -> float:
    """Flop count of a block contraction (one multiply-add pair each)."""
    return 2.0 * prod(out_shape, start=1) * prod(contracted_shape, start=1)


@dataclass(frozen=True)
class CostModel:
    """Maps super instruction descriptions to simulated seconds."""

    machine: Machine

    def contraction_time(
        self, out_shape: Sequence[int], contracted_shape: Sequence[int]
    ) -> float:
        flops = contraction_flops(out_shape, contracted_shape)
        return self.machine.kernel_overhead + flops / self.machine.flop_rate

    def elementwise_time(self, nbytes: float) -> float:
        """Copy, permute, fill, scale, add: bandwidth bound."""
        return self.machine.kernel_overhead + nbytes / self.machine.copy_bandwidth

    def integral_time(self, n_elements: float) -> float:
        flops = INTEGRAL_FLOPS_PER_ELEMENT * n_elements
        return self.machine.kernel_overhead + flops / self.machine.flop_rate

    def flops_time(self, flops: float) -> float:
        """Generic compute cost for user super instructions."""
        return self.machine.kernel_overhead + flops / self.machine.flop_rate
