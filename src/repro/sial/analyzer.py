"""Semantic analysis for SIAL programs.

Enforces the language's static rules (paper, Section IV):

* declaration-before-use, no duplicate declarations;
* typed segment indices -- an array dimension declared with an
  ``aoindex`` can only be addressed by an ``ao``-kind variable (or a
  subindex of one), which is exactly the "useful checks on the
  consistent use of index variables" the type system provides;
* ``pardo`` loops may not nest, not even through procedure calls;
* index variables must be bound by an enclosing loop before use, and a
  loop may not rebind an already-bound variable;
* ``do ii in i`` requires ``i`` to be bound in an enclosing loop;
* ``get``/``put`` only touch distributed arrays, ``request``/``prepare``
  only served arrays; distributed/served blocks may be *read* in
  expressions only after a ``get``/``request`` of the same block in the
  enclosing loop nest; direct assignment into them is rejected;
* block statements perform ONE block operation (SIAL is an *assembly*
  language): fill, copy/permute/slice/insert, scale, add/subtract, or a
  single contraction -- compound block expressions are rejected with a
  hint to introduce a temporary;
* contraction shape rules: the LHS indices must be exactly the
  non-contracted indices of the two operands;
* ``where`` clauses may reference only that pardo's own indices,
  numbers, and symbolic constants;
* barriers, ``collective`` and ``checkpoint`` must appear outside pardo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as ast
from .errors import SemanticError
from .symbols import (
    ArraySymbol,
    IndexSymbol,
    ProcSymbol,
    ScalarSymbol,
    SubindexSymbol,
    SymbolicSymbol,
    SymbolTable,
)

__all__ = ["analyze", "AnalyzedProgram", "classify_block_assign"]

DISTRIBUTED = "distributed"
SERVED = "served"
LOCAL_KINDS = ("static", "temp", "local")


@dataclass
class AnalyzedProgram:
    """A parsed program that passed all static checks."""

    program: ast.Program
    symbols: SymbolTable
    # statement-level classification cache used by the compiler
    assign_forms: dict[int, str] = field(default_factory=dict)


def analyze(
    program: ast.Program, source: str = "", strict: bool = False
) -> AnalyzedProgram:
    """Run all semantic checks; returns the annotated program.

    With ``strict=True`` the static race detector
    (:mod:`~repro.sial.racecheck`) also runs, and any potential race
    on a distributed/served array is raised as a :class:`SemanticError`
    carrying the source location of the offending access.
    """
    checker = _Checker(program, source)
    checker.run()
    analyzed = AnalyzedProgram(
        program=program, symbols=checker.symbols, assign_forms=checker.assign_forms
    )
    if strict:
        from .racecheck import check_races  # local import: avoids a cycle

        report = check_races(analyzed)
        if not report.ok:
            diag = report.diagnostics[0]
            raise SemanticError(
                f"{diag.kind}: {diag.message}", diag.location, source
            )
    return analyzed


# The single-operation forms a BlockAssign may take.
FORM_FILL = "fill"  # X(...) = 0.0 | scalar
FORM_COPY = "copy"  # X(...) = Y(...)        (permute / slice / insert)
FORM_SCALE = "scale"  # X(...) = s * Y(...)
FORM_CONTRACT = "contract"  # X(...) = Y(...) * Z(...)
FORM_ADD = "add"  # X(...) = Y(...) + Z(...)   (or '-')
FORM_NEGATE = "negate"  # X(...) = -Y(...)
FORM_SCALAR_RHS = "scalar_rhs"  # X(...) *= s  etc.


class _Checker:
    def __init__(self, program: ast.Program, source: str) -> None:
        self.program = program
        self.source = source
        self.symbols = SymbolTable(source=source)
        self.assign_forms: dict[int, str] = {}
        # procs that (transitively) contain a pardo
        self._proc_has_pardo: dict[str, bool] = {}

    def error(self, message: str, node) -> SemanticError:
        loc = getattr(node, "location", None)
        return SemanticError(message, loc, self.source)

    # -- entry ---------------------------------------------------------------
    def run(self) -> None:
        self.declare_all()
        self.compute_proc_pardo_flags()
        ctx = _Context()
        self.check_body(self.program.body, ctx)

    # -- declarations ----------------------------------------------------------
    def declare_all(self) -> None:
        for decl in self.program.decls:
            if isinstance(decl, ast.IndexDecl):
                self.check_range_expr(decl.lo)
                self.check_range_expr(decl.hi)
                self.symbols.declare(
                    IndexSymbol(decl.name, decl.kind, decl.lo, decl.hi, decl.location)
                )
            elif isinstance(decl, ast.SubindexDecl):
                sup = self.symbols.require(
                    decl.super_name, IndexSymbol, decl.location, "index"
                )
                assert isinstance(sup, IndexSymbol)
                if not sup.is_segment_index:
                    raise self.error(
                        f"subindex {decl.name!r} requires a segment index, "
                        f"but {decl.super_name!r} is a simple index",
                        decl,
                    )
                self.symbols.declare(
                    SubindexSymbol(decl.name, decl.super_name, sup.kind, decl.location)
                )
            elif isinstance(decl, ast.ArrayDecl):
                for ix in decl.index_names:
                    sym = self.symbols.require(
                        ix, (IndexSymbol, SubindexSymbol), decl.location, "index"
                    )
                    if isinstance(sym, IndexSymbol) and not sym.is_segment_index:
                        raise self.error(
                            f"array {decl.name!r} dimension uses simple index {ix!r}; "
                            "array dimensions require segment indices",
                            decl,
                        )
                self.symbols.declare(
                    ArraySymbol(decl.name, decl.kind, decl.index_names, decl.location)
                )
            elif isinstance(decl, ast.ScalarDecl):
                self.symbols.declare(ScalarSymbol(decl.name, decl.location))
            elif isinstance(decl, ast.SymbolicDecl):
                self.symbols.declare(SymbolicSymbol(decl.name, decl.location))
            elif isinstance(decl, ast.ProcDecl):
                self.symbols.declare(ProcSymbol(decl.name, decl, decl.location))

    def check_range_expr(self, expr: ast.Expr) -> None:
        """Index bounds: integers and symbolic constants, + - * / only."""
        if isinstance(expr, ast.NumberLit):
            return
        if isinstance(expr, ast.ScalarRef):
            sym = self.symbols.lookup(expr.name)
            if not isinstance(sym, SymbolicSymbol):
                raise self.error(
                    f"index range may reference only numbers and symbolic "
                    f"constants, not {expr.name!r}",
                    expr,
                )
            return
        if isinstance(expr, ast.BinaryOp):
            self.check_range_expr(expr.left)
            self.check_range_expr(expr.right)
            return
        if isinstance(expr, ast.UnaryOp):
            self.check_range_expr(expr.operand)
            return
        raise self.error("invalid index range expression", expr)

    # -- pardo reachability through procs ----------------------------------------
    def compute_proc_pardo_flags(self) -> None:
        procs = self.program.procs

        def contains_pardo(name: str, stack: tuple[str, ...]) -> bool:
            key = name.lower()
            if key in self._proc_has_pardo:
                return self._proc_has_pardo[key]
            if key in stack:
                raise SemanticError(
                    f"recursive procedure call cycle through {name!r}",
                    procs[key].location,
                    self.source,
                )
            decl = procs.get(key)
            if decl is None:
                return False
            result = body_has_pardo(decl.body, stack + (key,))
            self._proc_has_pardo[key] = result
            return result

        def body_has_pardo(body: list[ast.Stmt], stack: tuple[str, ...]) -> bool:
            for stmt in body:
                if isinstance(stmt, ast.Pardo):
                    return True
                if isinstance(stmt, ast.Call) and contains_pardo(stmt.name, stack):
                    return True
                for sub in _sub_bodies(stmt):
                    if body_has_pardo(sub, stack):
                        return True
            return False

        for name in procs:
            contains_pardo(name, ())

    def proc_has_pardo(self, name: str) -> bool:
        return self._proc_has_pardo.get(name.lower(), False)

    # -- statement checking ----------------------------------------------------
    def check_body(self, body: list[ast.Stmt], ctx: "_Context") -> None:
        for stmt in body:
            self.check_stmt(stmt, ctx)

    def check_stmt(self, stmt: ast.Stmt, ctx: "_Context") -> None:
        method = getattr(self, f"check_{type(stmt).__name__.lower()}", None)
        if method is None:  # pragma: no cover - defensive
            raise self.error(f"unhandled statement {type(stmt).__name__}", stmt)
        method(stmt, ctx)

    def check_pardo(self, stmt: ast.Pardo, ctx: "_Context") -> None:
        if ctx.in_pardo:
            raise self.error("pardo loops may not be nested", stmt)
        for name in stmt.indices:
            sym = self.symbols.require(
                name, (IndexSymbol, SubindexSymbol), stmt.location, "index"
            )
            if isinstance(sym, SubindexSymbol):
                raise self.error(
                    f"pardo may not iterate a subindex ({name!r}); "
                    "use 'pardo ... do {sub} in {super}'",
                    stmt,
                )
            if name.lower() in ctx.bound:
                raise self.error(f"index {name!r} is already bound", stmt)
        if len({n.lower() for n in stmt.indices}) != len(stmt.indices):
            raise self.error("duplicate index in pardo list", stmt)
        pardo_names = {n.lower() for n in stmt.indices}
        for cond in stmt.where:
            self.check_where_condition(cond, pardo_names)
        inner = ctx.bind(stmt.indices, in_pardo=True)
        self.check_body(stmt.body, inner)

    def check_where_condition(self, cond: ast.Condition, pardo_names: set[str]) -> None:
        for operand in (cond.left, cond.right):
            if isinstance(operand, ast.NumberLit):
                continue
            if isinstance(operand, ast.ScalarRef):
                sym = self.symbols.lookup(operand.name)
                if isinstance(sym, SymbolicSymbol):
                    continue
                if (
                    isinstance(sym, IndexSymbol)
                    and operand.name.lower() in pardo_names
                ):
                    continue
                raise self.error(
                    "where clauses may reference only this pardo's indices, "
                    f"numbers, and symbolic constants, not {operand.name!r}",
                    operand,
                )
            else:
                raise self.error("where clause operands must be simple values", cond)

    def check_do(self, stmt: ast.Do, ctx: "_Context") -> None:
        sym = self.symbols.require(
            stmt.index, (IndexSymbol, SubindexSymbol), stmt.location, "index"
        )
        if isinstance(sym, SubindexSymbol):
            raise self.error(
                f"'do {stmt.index}' iterates a subindex; use "
                f"'do {stmt.index} in {sym.super_name}'",
                stmt,
            )
        if stmt.index.lower() in ctx.bound:
            raise self.error(f"index {stmt.index!r} is already bound", stmt)
        inner = ctx.bind((stmt.index,), in_pardo=ctx.in_pardo)
        self.check_body(stmt.body, inner)

    def check_doin(self, stmt: ast.DoIn, ctx: "_Context") -> None:
        sub = self.symbols.require(
            stmt.subindex, SubindexSymbol, stmt.location, "subindex"
        )
        assert isinstance(sub, SubindexSymbol)
        if sub.super_name.lower() != stmt.super_index.lower():
            raise self.error(
                f"{stmt.subindex!r} is a subindex of {sub.super_name!r}, "
                f"not of {stmt.super_index!r}",
                stmt,
            )
        if stmt.super_index.lower() not in ctx.bound:
            raise self.error(
                f"'do {stmt.subindex} in {stmt.super_index}' requires "
                f"{stmt.super_index!r} to be bound by an enclosing loop",
                stmt,
            )
        if stmt.subindex.lower() in ctx.bound:
            raise self.error(f"subindex {stmt.subindex!r} is already bound", stmt)
        inner = ctx.bind((stmt.subindex,), in_pardo=ctx.in_pardo)
        self.check_body(stmt.body, inner)

    def check_if(self, stmt: ast.If, ctx: "_Context") -> None:
        self.check_scalar_condition(stmt.condition, ctx)
        self.check_body(stmt.then_body, ctx)
        self.check_body(stmt.else_body, ctx)

    def check_scalar_condition(self, cond: ast.Condition, ctx: "_Context") -> None:
        for operand in (cond.left, cond.right):
            self.check_scalar_expr(operand, ctx)

    def check_call(self, stmt: ast.Call, ctx: "_Context") -> None:
        self.symbols.require(stmt.name, ProcSymbol, stmt.location, "procedure")
        if ctx.in_pardo and self.proc_has_pardo(stmt.name):
            raise self.error(
                f"procedure {stmt.name!r} contains a pardo and may not be "
                "called from inside a pardo",
                stmt,
            )
        # procedure bodies are checked in the context of each call site so
        # that index bindings are validated; guard against exponential blowup
        # by limiting to the first check per (proc, binding) signature.
        decl = self.program.procs[stmt.name.lower()]
        sig = (stmt.name.lower(), frozenset(ctx.bound), ctx.in_pardo)
        if sig not in ctx.checked_calls:
            ctx.checked_calls.add(sig)
            self.check_body(decl.body, ctx)

    def check_get(self, stmt: ast.Get, ctx: "_Context") -> None:
        self.check_block_ref(stmt.ref, ctx, want_kinds=(DISTRIBUTED,), verb="get")
        ctx.note_fetch(stmt.ref.array, self.canonical_indices(stmt.ref))

    def check_request(self, stmt: ast.Request, ctx: "_Context") -> None:
        self.check_block_ref(stmt.ref, ctx, want_kinds=(SERVED,), verb="request")
        ctx.note_fetch(stmt.ref.array, self.canonical_indices(stmt.ref))

    def check_put(self, stmt: ast.Put, ctx: "_Context") -> None:
        self.check_block_ref(stmt.dst, ctx, want_kinds=(DISTRIBUTED,), verb="put")
        self.check_block_ref(stmt.src, ctx, want_kinds=LOCAL_KINDS, verb="read")
        self.check_same_index_set(stmt.dst, stmt.src, stmt)

    def check_prepare(self, stmt: ast.Prepare, ctx: "_Context") -> None:
        self.check_block_ref(stmt.dst, ctx, want_kinds=(SERVED,), verb="prepare")
        self.check_block_ref(stmt.src, ctx, want_kinds=LOCAL_KINDS, verb="read")
        self.check_same_index_set(stmt.dst, stmt.src, stmt)

    def check_same_index_set(
        self, a: ast.BlockRef, b: ast.BlockRef, stmt: ast.Stmt
    ) -> None:
        if sorted(i.lower() for i in a.indices) != sorted(
            i.lower() for i in b.indices
        ):
            raise self.error(
                f"blocks {a.array}({', '.join(a.indices)}) and "
                f"{b.array}({', '.join(b.indices)}) must use the same index "
                "variables (possibly permuted)",
                stmt,
            )

    def check_create(self, stmt: ast.Create, ctx: "_Context") -> None:
        self.require_array(stmt.array, stmt, kinds=(DISTRIBUTED, SERVED))

    def check_delete(self, stmt: ast.Delete, ctx: "_Context") -> None:
        self.require_array(stmt.array, stmt, kinds=(DISTRIBUTED, SERVED))

    def check_allocate(self, stmt: ast.Allocate, ctx: "_Context") -> None:
        self.check_block_ref(stmt.ref, ctx, want_kinds=("local",), verb="allocate")

    def check_deallocate(self, stmt: ast.Deallocate, ctx: "_Context") -> None:
        self.check_block_ref(stmt.ref, ctx, want_kinds=("local",), verb="deallocate")

    def check_computeintegrals(self, stmt: ast.ComputeIntegrals, ctx: "_Context") -> None:
        self.check_block_ref(
            stmt.ref, ctx, want_kinds=("temp", "local"), verb="compute_integrals into"
        )
        ctx.note_fetch(stmt.ref.array, self.canonical_indices(stmt.ref))

    def check_execute(self, stmt: ast.Execute, ctx: "_Context") -> None:
        for arg in stmt.args:
            if isinstance(arg, ast.BlockRef):
                self.check_block_ref(arg, ctx, want_kinds=None, verb="pass")
            elif isinstance(arg, ast.ScalarRef):
                sym = self.symbols.lookup(arg.name)
                if sym is None:
                    raise self.error(f"undeclared name {arg.name!r}", arg)
            elif isinstance(arg, ast.NumberLit):
                pass
            else:
                raise self.error(
                    "execute arguments must be blocks, scalars, or numbers", stmt
                )

    def check_collective(self, stmt: ast.Collective, ctx: "_Context") -> None:
        if ctx.in_pardo:
            raise self.error("collective must appear outside pardo", stmt)
        self.symbols.require(stmt.scalar, ScalarSymbol, stmt.location, "scalar")

    def check_barrier(self, stmt: ast.Barrier, ctx: "_Context") -> None:
        if ctx.in_pardo:
            raise self.error("barriers are not allowed inside pardo", stmt)

    def check_blockstolist(self, stmt: ast.BlocksToList, ctx: "_Context") -> None:
        if ctx.in_pardo:
            raise self.error("blocks_to_list must appear outside pardo", stmt)
        self.require_array(stmt.array, stmt, kinds=(DISTRIBUTED,))

    def check_listtoblocks(self, stmt: ast.ListToBlocks, ctx: "_Context") -> None:
        if ctx.in_pardo:
            raise self.error("list_to_blocks must appear outside pardo", stmt)
        self.require_array(stmt.array, stmt, kinds=(DISTRIBUTED,))

    def check_checkpoint(self, stmt: ast.Checkpoint, ctx: "_Context") -> None:
        if ctx.in_pardo:
            raise self.error("checkpoint must appear outside pardo", stmt)

    # -- assignments -------------------------------------------------------------
    def check_blockassign(self, stmt: ast.BlockAssign, ctx: "_Context") -> None:
        lhs_sym = self.require_array(stmt.lhs.array, stmt)
        if lhs_sym.kind in (DISTRIBUTED, SERVED):
            verb = "put" if lhs_sym.kind == DISTRIBUTED else "prepare"
            raise self.error(
                f"{lhs_sym.kind} array {stmt.lhs.array!r} blocks are written "
                f"with '{verb}', not direct assignment",
                stmt,
            )
        if lhs_sym.kind == "static" and ctx.in_pardo:
            raise self.error(
                f"static array {stmt.lhs.array!r} may not be written inside "
                "pardo (it is replicated on all workers)",
                stmt,
            )
        self.check_block_ref(stmt.lhs, ctx, want_kinds=None, verb="assign")
        form = self.classify_and_check_rhs(stmt, ctx)
        self.assign_forms[id(stmt)] = form

    def classify_and_check_rhs(self, stmt: ast.BlockAssign, ctx: "_Context") -> str:
        rhs = stmt.rhs
        lhs_set = sorted(i.lower() for i in stmt.lhs.indices)

        def ref_ok(ref: ast.BlockRef) -> None:
            self.check_block_ref(ref, ctx, want_kinds=None, verb="read")
            self.check_readable(ref, ctx)

        if stmt.op == "*=":
            self.check_scalar_expr(rhs, ctx)
            return FORM_SCALAR_RHS
        if isinstance(rhs, (ast.NumberLit, ast.ScalarRef)):
            if isinstance(rhs, ast.ScalarRef):
                self.check_scalar_expr(rhs, ctx)
            return FORM_FILL
        if isinstance(rhs, ast.BlockRef):
            ref_ok(rhs)
            rhs_set = sorted(i.lower() for i in rhs.indices)
            if rhs_set != lhs_set:
                raise self.error(
                    "block copy requires the same index variables on both "
                    f"sides (possibly permuted): {stmt.lhs.indices} vs {rhs.indices}",
                    stmt,
                )
            return FORM_COPY
        if isinstance(rhs, ast.UnaryOp) and isinstance(rhs.operand, ast.BlockRef):
            ref_ok(rhs.operand)
            return FORM_NEGATE
        if isinstance(rhs, ast.BinaryOp):
            left, right = rhs.left, rhs.right
            if rhs.op == "*":
                if isinstance(left, ast.BlockRef) and isinstance(right, ast.BlockRef):
                    ref_ok(left)
                    ref_ok(right)
                    self.check_contraction_shape(stmt.lhs, left, right, stmt)
                    return FORM_CONTRACT
                if isinstance(left, ast.BlockRef) != isinstance(right, ast.BlockRef):
                    block = left if isinstance(left, ast.BlockRef) else right
                    scalar = right if isinstance(left, ast.BlockRef) else left
                    ref_ok(block)
                    self.check_scalar_expr(scalar, ctx)
                    blk_set = sorted(i.lower() for i in block.indices)
                    if blk_set != lhs_set:
                        raise self.error(
                            "scaled block must use the same index variables as "
                            "the left-hand side",
                            stmt,
                        )
                    return FORM_SCALE
            if rhs.op in ("+", "-"):
                if isinstance(left, ast.BlockRef) and isinstance(right, ast.BlockRef):
                    ref_ok(left)
                    ref_ok(right)
                    for ref in (left, right):
                        if sorted(i.lower() for i in ref.indices) != lhs_set:
                            raise self.error(
                                "elementwise +/- requires all three blocks to "
                                "use the same index variables",
                                stmt,
                            )
                    return FORM_ADD
        raise self.error(
            "SIAL block statements perform a single block operation (fill, "
            "copy/permute, scale, add, or one contraction); split compound "
            "expressions using a temp array",
            stmt,
        )

    def check_contraction_shape(
        self,
        lhs: ast.BlockRef,
        a: ast.BlockRef,
        b: ast.BlockRef,
        stmt: ast.Stmt,
    ) -> None:
        a_set = {i.lower() for i in a.indices}
        b_set = {i.lower() for i in b.indices}
        out = a_set.symmetric_difference(b_set)
        lhs_set = {i.lower() for i in lhs.indices}
        if lhs_set != out:
            raise self.error(
                f"contraction output indices {sorted(out)} do not match "
                f"left-hand side indices {sorted(lhs_set)}",
                stmt,
            )
        if len(a_set) != len(a.indices) or len(b_set) != len(b.indices):
            raise self.error(
                "repeated index within a single contraction operand is not "
                "supported",
                stmt,
            )

    def check_scalarassign(self, stmt: ast.ScalarAssign, ctx: "_Context") -> None:
        sym = self.symbols.lookup(stmt.name)
        if not isinstance(sym, ScalarSymbol):
            raise self.error(
                f"assignment target {stmt.name!r} is not a declared scalar", stmt
            )
        rhs = stmt.rhs
        # scalar = full contraction of two blocks
        if (
            isinstance(rhs, ast.BinaryOp)
            and rhs.op == "*"
            and isinstance(rhs.left, ast.BlockRef)
            and isinstance(rhs.right, ast.BlockRef)
        ):
            self.check_block_ref(rhs.left, ctx, want_kinds=None, verb="read")
            self.check_block_ref(rhs.right, ctx, want_kinds=None, verb="read")
            self.check_readable(rhs.left, ctx)
            self.check_readable(rhs.right, ctx)
            a_set = sorted(i.lower() for i in rhs.left.indices)
            b_set = sorted(i.lower() for i in rhs.right.indices)
            if a_set != b_set:
                raise self.error(
                    "scalar-valued contraction requires both blocks to use "
                    "the same index variables (full contraction)",
                    stmt,
                )
            self.assign_forms[id(stmt)] = "scalar_contract"
            return
        self.check_scalar_expr(rhs, ctx)
        self.assign_forms[id(stmt)] = "scalar_expr"

    def check_scalar_expr(self, expr: ast.Expr, ctx: "_Context") -> None:
        if isinstance(expr, ast.NumberLit):
            return
        if isinstance(expr, ast.ScalarRef):
            sym = self.symbols.lookup(expr.name)
            if sym is None:
                raise self.error(f"undeclared name {expr.name!r}", expr)
            if isinstance(sym, (ScalarSymbol, SymbolicSymbol)):
                return
            if isinstance(sym, (IndexSymbol, SubindexSymbol)):
                if expr.name.lower() not in ctx.bound:
                    raise self.error(
                        f"index {expr.name!r} is not bound by an enclosing loop",
                        expr,
                    )
                return
            raise self.error(
                f"{expr.name!r} cannot appear in a scalar expression", expr
            )
        if isinstance(expr, ast.BinaryOp):
            self.check_scalar_expr(expr.left, ctx)
            self.check_scalar_expr(expr.right, ctx)
            return
        if isinstance(expr, ast.UnaryOp):
            self.check_scalar_expr(expr.operand, ctx)
            return
        if isinstance(expr, ast.BlockRef):
            raise self.error(
                "block used where a scalar is required; scalar-valued block "
                "contractions have the form 's = A(...) * B(...)'",
                expr,
            )
        raise self.error("invalid scalar expression", expr)

    # -- shared reference checks ----------------------------------------------
    def require_array(
        self, name: str, node, kinds: tuple[str, ...] | None = None
    ) -> ArraySymbol:
        sym = self.symbols.require(
            name, ArraySymbol, getattr(node, "location", None), "array"
        )
        assert isinstance(sym, ArraySymbol)
        if kinds is not None and sym.kind not in kinds:
            raise self.error(
                f"array {name!r} has kind {sym.kind!r}; expected one of {kinds}",
                node,
            )
        return sym

    def check_block_ref(
        self,
        ref: ast.BlockRef,
        ctx: "_Context",
        want_kinds: tuple[str, ...] | None,
        verb: str,
    ) -> None:
        sym = self.require_array(ref.array, ref, kinds=want_kinds)
        if len(ref.indices) != sym.rank:
            raise self.error(
                f"array {ref.array!r} has rank {sym.rank}, referenced with "
                f"{len(ref.indices)} indices",
                ref,
            )
        for used, declared in zip(ref.indices, sym.index_names):
            self.check_index_compatible(used, declared, ref, ctx)

    def check_index_compatible(
        self, used: str, declared: str, ref: ast.BlockRef, ctx: "_Context"
    ) -> None:
        used_sym = self.symbols.require(
            used, (IndexSymbol, SubindexSymbol), ref.location, "index"
        )
        if used.lower() not in ctx.bound:
            raise self.error(
                f"index {used!r} is not bound by an enclosing loop", ref
            )
        declared_sym = self.symbols.lookup(declared)
        assert isinstance(declared_sym, (IndexSymbol, SubindexSymbol))
        used_kind = used_sym.kind
        declared_kind = declared_sym.kind
        if used_kind != declared_kind:
            raise self.error(
                f"index {used!r} has kind {used_kind!r} but dimension of "
                f"{ref.array!r} was declared with kind {declared_kind!r}",
                ref,
            )

    def canonical_indices(self, ref: ast.BlockRef) -> tuple[str, ...]:
        """Index tuple with subindices replaced by their super index.

        A ``get A(a, b)`` fetches the whole block; a later read of the
        slice ``A(aa, b)`` (aa a subindex of a) touches the same block,
        so fetch tracking compares super-resolved tuples.
        """
        out = []
        for name in ref.indices:
            sym = self.symbols.lookup(name)
            if isinstance(sym, SubindexSymbol):
                out.append(sym.super_name.lower())
            else:
                out.append(name.lower())
        return tuple(out)

    def check_readable(self, ref: ast.BlockRef, ctx: "_Context") -> None:
        """Distributed/served blocks may be read only after get/request."""
        sym = self.require_array(ref.array, ref)
        canonical = self.canonical_indices(ref)
        if sym.kind == DISTRIBUTED and not ctx.was_fetched(ref.array, canonical):
            raise self.error(
                f"block {ref.array}({', '.join(ref.indices)}) of a distributed "
                "array is read without a preceding 'get' in the enclosing "
                "loop nest",
                ref,
            )
        if sym.kind == SERVED and not ctx.was_fetched(ref.array, canonical):
            raise self.error(
                f"block {ref.array}({', '.join(ref.indices)}) of a served "
                "array is read without a preceding 'request' in the "
                "enclosing loop nest",
                ref,
            )


@dataclass
class _Context:
    """Static context threaded through statement checking."""

    bound: frozenset[str] = frozenset()
    in_pardo: bool = False
    # (array, indices) fetched by get/request/compute_integrals in this or
    # an enclosing loop body -- shared via parent chain for simplicity
    fetched: set[tuple[str, tuple[str, ...]]] = field(default_factory=set)
    checked_calls: set = field(default_factory=set)

    def bind(self, names: tuple[str, ...], in_pardo: bool) -> "_Context":
        return _Context(
            bound=self.bound | {n.lower() for n in names},
            in_pardo=in_pardo,
            fetched=set(self.fetched),
            checked_calls=self.checked_calls,
        )

    def note_fetch(self, array: str, canonical_indices: tuple[str, ...]) -> None:
        self.fetched.add((array.lower(), canonical_indices))

    def was_fetched(self, array: str, canonical_indices: tuple[str, ...]) -> bool:
        return (array.lower(), canonical_indices) in self.fetched


def _sub_bodies(stmt: ast.Stmt) -> list[list[ast.Stmt]]:
    if isinstance(stmt, (ast.Pardo, ast.Do, ast.DoIn)):
        return [stmt.body]
    if isinstance(stmt, ast.If):
        return [stmt.then_body, stmt.else_body]
    return []


def classify_block_assign(analyzed: AnalyzedProgram, stmt: ast.Stmt) -> str:
    """The single-operation form the analyzer assigned to this statement."""
    return analyzed.assign_forms[id(stmt)]
