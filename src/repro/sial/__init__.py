"""SIAL: the Super Instruction Assembly Language.

The domain-specific language of the Super Instruction Architecture
(paper, Section IV).  This package contains the complete front end:

* :mod:`~repro.sial.lexer`     -- tokenizer,
* :mod:`~repro.sial.parser`    -- recursive-descent parser,
* :mod:`~repro.sial.analyzer`  -- semantic checks (index typing, pardo
  rules, array-kind access rules, single-operation statements),
* :mod:`~repro.sial.racecheck` -- static race detection on
  distributed/served array accesses between barriers,
* :mod:`~repro.sial.compiler`  -- AST to SIA bytecode,
* :mod:`~repro.sial.passes`    -- the optimizing middle-end (verified
  rewrite passes between the compiler and the SIP),
* :mod:`~repro.sial.bytecode`  -- the bytecode and descriptor tables
  interpreted by the SIP.
"""

from .analyzer import AnalyzedProgram, analyze
from .ast_nodes import Program
from .bytecode import CompiledProgram, disassemble, format_rpn
from .compiler import compile_program, compile_source
from .errors import LexError, ParseError, SemanticError, SialError
from .lexer import tokenize
from .parser import parse
from .passes import optimize_program
from .racecheck import RaceDiagnostic, RaceReport, check_races

__all__ = [
    "AnalyzedProgram",
    "CompiledProgram",
    "LexError",
    "ParseError",
    "Program",
    "RaceDiagnostic",
    "RaceReport",
    "SemanticError",
    "SialError",
    "analyze",
    "check_races",
    "compile_program",
    "compile_source",
    "disassemble",
    "format_rpn",
    "optimize_program",
    "parse",
    "tokenize",
]
