"""SIA bytecode: the compiled form of a SIAL program.

A compiled program is a flat *instruction table* plus *data descriptor
tables* (paper, Section V-A): an index table, an array table, a scalar
table, and a table of symbolic constants whose concrete values are
supplied at initialization.  Operands in instructions are integer ids
into these tables, so the SIP interpreter never touches names on the
hot path.

Scalar expressions (index bounds, fill values, scalar arithmetic) are
compiled to small RPN programs evaluated against the worker's scalar
store and current index values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .errors import SourceLocation

__all__ = [
    "Op",
    "Instr",
    "IndexDesc",
    "ArrayDesc",
    "BlockOperand",
    "CompiledCondition",
    "CompiledProgram",
    "evaluate_rpn",
    "disassemble",
]


class Op:
    """Opcode mnemonics."""

    # control
    JUMP = "JUMP"
    DO_START = "DO_START"
    DO_END = "DO_END"
    DOIN_START = "DOIN_START"
    DOIN_END = "DOIN_END"
    PARDO_START = "PARDO_START"
    PARDO_END = "PARDO_END"
    BRANCH_FALSE = "BRANCH_FALSE"
    CALL = "CALL"
    RETURN = "RETURN"
    STOP = "STOP"
    # data movement
    GET = "GET"
    PUT = "PUT"
    PREPARE = "PREPARE"
    REQUEST = "REQUEST"
    CREATE = "CREATE"
    DELETE = "DELETE"
    ALLOCATE = "ALLOCATE"
    DEALLOCATE = "DEALLOCATE"
    # block compute (super instructions)
    FILL = "FILL"
    COPY = "COPY"
    NEGATE = "NEGATE"
    SCALE = "SCALE"
    SCALE_INPLACE = "SCALE_INPLACE"
    CONTRACT = "CONTRACT"
    ADDSUB = "ADDSUB"
    ACCUM = "ACCUM"
    SCALAR_CONTRACT = "SCALAR_CONTRACT"
    SCALAR_ASSIGN = "SCALAR_ASSIGN"
    COMPUTE_INTEGRALS = "COMPUTE_INTEGRALS"
    EXECUTE = "EXECUTE"
    # synchronization & utility
    COLLECTIVE = "COLLECTIVE"
    SIP_BARRIER = "SIP_BARRIER"
    SERVER_BARRIER = "SERVER_BARRIER"
    BLOCKS_TO_LIST = "BLOCKS_TO_LIST"
    LIST_TO_BLOCKS = "LIST_TO_BLOCKS"
    CHECKPOINT = "CHECKPOINT"


@dataclass(frozen=True)
class IndexDesc:
    """Descriptor-table entry for an index variable."""

    name: str
    kind: str  # 'ao', 'mo', 'moa', 'mob', 'la', 'simple'
    lo_rpn: tuple  # RPN over numbers and symbolic constants
    hi_rpn: tuple
    super_id: Optional[int] = None  # set for subindices

    @property
    def is_subindex(self) -> bool:
        return self.super_id is not None


@dataclass(frozen=True)
class ArrayDesc:
    """Descriptor-table entry for an array."""

    name: str
    kind: str  # 'static', 'temp', 'local', 'distributed', 'served'
    index_ids: tuple[int, ...]

    @property
    def rank(self) -> int:
        return len(self.index_ids)


@dataclass(frozen=True)
class BlockOperand:
    """An (array, index variables) operand of a block instruction."""

    array_id: int
    index_ids: tuple[int, ...]


@dataclass(frozen=True)
class CompiledCondition:
    op: str  # '==', '!=', '<', '<=', '>', '>='
    left_rpn: tuple
    right_rpn: tuple


@dataclass(frozen=True)
class Instr:
    op: str
    args: tuple = ()
    location: Optional[SourceLocation] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instr({self.op}, {self.args})"


@dataclass
class CompiledProgram:
    """A SIAL program compiled to SIA bytecode."""

    name: str
    instructions: list[Instr]
    index_table: list[IndexDesc]
    array_table: list[ArrayDesc]
    scalar_table: list[str]
    symbolic_table: list[str]
    # pc of each procedure's entry, by lowered name
    proc_entries: dict[str, int] = field(default_factory=dict)
    source: str = ""

    def index_id(self, name: str) -> int:
        return self._lookup(self.index_table, name)

    def array_id(self, name: str) -> int:
        return self._lookup(self.array_table, name)

    def scalar_id(self, name: str) -> int:
        lowered = name.lower()
        for i, n in enumerate(self.scalar_table):
            if n.lower() == lowered:
                return i
        raise KeyError(name)

    def symbolic_id(self, name: str) -> int:
        lowered = name.lower()
        for i, n in enumerate(self.symbolic_table):
            if n.lower() == lowered:
                return i
        raise KeyError(name)

    @staticmethod
    def _lookup(table, name: str) -> int:
        lowered = name.lower()
        for i, desc in enumerate(table):
            if desc.name.lower() == lowered:
                return i
        raise KeyError(name)


# -- RPN evaluation ----------------------------------------------------------
#
# RPN items: ('num', v) | ('scalar', id) | ('symbolic', id) | ('index', id)
#            | ('+',) | ('-',) | ('*',) | ('/',) | ('neg',)
def evaluate_rpn(
    rpn: tuple,
    scalars: Optional[list[float]] = None,
    symbolics: Optional[list[float]] = None,
    index_values: Optional[dict[int, int]] = None,
) -> float:
    """Evaluate a compiled RPN scalar expression."""
    stack: list[float] = []
    for item in rpn:
        tag = item[0]
        if tag == "num":
            stack.append(item[1])
        elif tag == "scalar":
            assert scalars is not None
            stack.append(scalars[item[1]])
        elif tag == "symbolic":
            assert symbolics is not None
            stack.append(symbolics[item[1]])
        elif tag == "index":
            assert index_values is not None
            stack.append(float(index_values[item[1]]))
        elif tag == "neg":
            stack.append(-stack.pop())
        else:
            b = stack.pop()
            a = stack.pop()
            if tag == "+":
                stack.append(a + b)
            elif tag == "-":
                stack.append(a - b)
            elif tag == "*":
                stack.append(a * b)
            elif tag == "/":
                stack.append(a / b)
            else:  # pragma: no cover - compiler emits only the above
                raise ValueError(f"bad RPN op {tag!r}")
    if len(stack) != 1:
        raise ValueError("malformed RPN expression")
    return stack[0]


_COMPARATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def evaluate_condition(
    cond: CompiledCondition,
    scalars: Optional[list[float]] = None,
    symbolics: Optional[list[float]] = None,
    index_values: Optional[dict[int, int]] = None,
) -> bool:
    left = evaluate_rpn(cond.left_rpn, scalars, symbolics, index_values)
    right = evaluate_rpn(cond.right_rpn, scalars, symbolics, index_values)
    return _COMPARATORS[cond.op](left, right)


def disassemble(prog: CompiledProgram) -> str:
    """Human-readable listing of the bytecode, for debugging and docs."""
    lines = [f"; program {prog.name}"]
    lines.append(f"; {len(prog.index_table)} indices, {len(prog.array_table)} arrays")
    rev_procs = {pc: name for name, pc in prog.proc_entries.items()}
    for pc, instr in enumerate(prog.instructions):
        if pc in rev_procs:
            lines.append(f"proc {rev_procs[pc]}:")
        args = ", ".join(_fmt_arg(a, prog) for a in instr.args)
        lines.append(f"  {pc:4d}  {instr.op:<18s} {args}")
    return "\n".join(lines)


def _fmt_arg(arg: Any, prog: CompiledProgram) -> str:
    if isinstance(arg, BlockOperand):
        name = prog.array_table[arg.array_id].name
        idx = ",".join(prog.index_table[i].name for i in arg.index_ids)
        return f"{name}({idx})"
    if isinstance(arg, CompiledCondition):
        return f"<{arg.op}>"
    return repr(arg)
