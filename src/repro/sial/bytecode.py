"""SIA bytecode: the compiled form of a SIAL program.

A compiled program is a flat *instruction table* plus *data descriptor
tables* (paper, Section V-A): an index table, an array table, a scalar
table, and a table of symbolic constants whose concrete values are
supplied at initialization.  Operands in instructions are integer ids
into these tables, so the SIP interpreter never touches names on the
hot path.

Scalar expressions (index bounds, fill values, scalar arithmetic) are
compiled to small RPN programs evaluated against the worker's scalar
store and current index values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .errors import SourceLocation

__all__ = [
    "Op",
    "Instr",
    "IndexDesc",
    "ArrayDesc",
    "BlockOperand",
    "CompiledCondition",
    "CompiledProgram",
    "evaluate_rpn",
    "format_rpn",
    "disassemble",
]


class Op:
    """Opcode mnemonics."""

    # control
    JUMP = "JUMP"
    DO_START = "DO_START"
    DO_END = "DO_END"
    DOIN_START = "DOIN_START"
    DOIN_END = "DOIN_END"
    PARDO_START = "PARDO_START"
    PARDO_END = "PARDO_END"
    BRANCH_FALSE = "BRANCH_FALSE"
    CALL = "CALL"
    RETURN = "RETURN"
    STOP = "STOP"
    # data movement
    GET = "GET"
    PUT = "PUT"
    PREPARE = "PREPARE"
    REQUEST = "REQUEST"
    CREATE = "CREATE"
    DELETE = "DELETE"
    ALLOCATE = "ALLOCATE"
    DEALLOCATE = "DEALLOCATE"
    # optimizer-inserted: a hint that a block will be needed soon.
    # Same argument layout as GET/REQUEST; never blocks, never faults.
    PREFETCH = "PREFETCH"
    # block compute (super instructions)
    FILL = "FILL"
    COPY = "COPY"
    NEGATE = "NEGATE"
    SCALE = "SCALE"
    SCALE_INPLACE = "SCALE_INPLACE"
    CONTRACT = "CONTRACT"
    ADDSUB = "ADDSUB"
    ACCUM = "ACCUM"
    # optimizer-fused ``tmp = a*b; c op2 tmp`` super instruction:
    # args = (dst, op2, a, b, tmp_index_ids, factor_rpn | None)
    CONTRACT_FUSED = "CONTRACT_FUSED"
    SCALAR_CONTRACT = "SCALAR_CONTRACT"
    SCALAR_ASSIGN = "SCALAR_ASSIGN"
    COMPUTE_INTEGRALS = "COMPUTE_INTEGRALS"
    EXECUTE = "EXECUTE"
    # synchronization & utility
    COLLECTIVE = "COLLECTIVE"
    SIP_BARRIER = "SIP_BARRIER"
    SERVER_BARRIER = "SERVER_BARRIER"
    BLOCKS_TO_LIST = "BLOCKS_TO_LIST"
    LIST_TO_BLOCKS = "LIST_TO_BLOCKS"
    CHECKPOINT = "CHECKPOINT"


@dataclass(frozen=True)
class IndexDesc:
    """Descriptor-table entry for an index variable."""

    name: str
    kind: str  # 'ao', 'mo', 'moa', 'mob', 'la', 'simple'
    lo_rpn: tuple  # RPN over numbers and symbolic constants
    hi_rpn: tuple
    super_id: Optional[int] = None  # set for subindices

    @property
    def is_subindex(self) -> bool:
        return self.super_id is not None


@dataclass(frozen=True)
class ArrayDesc:
    """Descriptor-table entry for an array."""

    name: str
    kind: str  # 'static', 'temp', 'local', 'distributed', 'served'
    index_ids: tuple[int, ...]

    @property
    def rank(self) -> int:
        return len(self.index_ids)


@dataclass(frozen=True)
class BlockOperand:
    """An (array, index variables) operand of a block instruction."""

    array_id: int
    index_ids: tuple[int, ...]


@dataclass(frozen=True)
class CompiledCondition:
    op: str  # '==', '!=', '<', '<=', '>', '>='
    left_rpn: tuple
    right_rpn: tuple


@dataclass(frozen=True)
class Instr:
    op: str
    args: tuple = ()
    location: Optional[SourceLocation] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instr({self.op}, {self.args})"


@dataclass
class CompiledProgram:
    """A SIAL program compiled to SIA bytecode."""

    name: str
    instructions: list[Instr]
    index_table: list[IndexDesc]
    array_table: list[ArrayDesc]
    scalar_table: list[str]
    symbolic_table: list[str]
    # pc of each procedure's entry, by lowered name
    proc_entries: dict[str, int] = field(default_factory=dict)
    source: str = ""
    # set by the middle-end pass pipeline (repro.sial.passes): the -O
    # level the program was optimized at and the machine-checkable
    # PipelineReport describing what each pass did
    opt_level: int = 0
    opt_report: Optional[Any] = None

    def index_id(self, name: str) -> int:
        return self._lookup(self.index_table, name)

    def array_id(self, name: str) -> int:
        return self._lookup(self.array_table, name)

    def scalar_id(self, name: str) -> int:
        lowered = name.lower()
        for i, n in enumerate(self.scalar_table):
            if n.lower() == lowered:
                return i
        raise KeyError(name)

    def symbolic_id(self, name: str) -> int:
        lowered = name.lower()
        for i, n in enumerate(self.symbolic_table):
            if n.lower() == lowered:
                return i
        raise KeyError(name)

    @staticmethod
    def _lookup(table, name: str) -> int:
        lowered = name.lower()
        for i, desc in enumerate(table):
            if desc.name.lower() == lowered:
                return i
        raise KeyError(name)


# -- RPN evaluation ----------------------------------------------------------
#
# RPN items: ('num', v) | ('scalar', id) | ('symbolic', id) | ('index', id)
#            | ('+',) | ('-',) | ('*',) | ('/',) | ('neg',)
def evaluate_rpn(
    rpn: tuple,
    scalars: Optional[list[float]] = None,
    symbolics: Optional[list[float]] = None,
    index_values: Optional[dict[int, int]] = None,
) -> float:
    """Evaluate a compiled RPN scalar expression."""
    stack: list[float] = []
    for item in rpn:
        tag = item[0]
        if tag == "num":
            stack.append(item[1])
        elif tag == "scalar":
            assert scalars is not None
            stack.append(scalars[item[1]])
        elif tag == "symbolic":
            assert symbolics is not None
            stack.append(symbolics[item[1]])
        elif tag == "index":
            assert index_values is not None
            stack.append(float(index_values[item[1]]))
        elif tag == "neg":
            stack.append(-stack.pop())
        else:
            b = stack.pop()
            a = stack.pop()
            if tag == "+":
                stack.append(a + b)
            elif tag == "-":
                stack.append(a - b)
            elif tag == "*":
                stack.append(a * b)
            elif tag == "/":
                stack.append(a / b)
            else:  # pragma: no cover - compiler emits only the above
                raise ValueError(f"bad RPN op {tag!r}")
    if len(stack) != 1:
        raise ValueError("malformed RPN expression")
    return stack[0]


_COMPARATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def evaluate_condition(
    cond: CompiledCondition,
    scalars: Optional[list[float]] = None,
    symbolics: Optional[list[float]] = None,
    index_values: Optional[dict[int, int]] = None,
) -> bool:
    left = evaluate_rpn(cond.left_rpn, scalars, symbolics, index_values)
    right = evaluate_rpn(cond.right_rpn, scalars, symbolics, index_values)
    return _COMPARATORS[cond.op](left, right)


#: every opcode the disassembler (and hence the tooling) must know;
#: the golden test in tests/sial/test_disassemble.py checks coverage
ALL_OPS = tuple(
    value
    for name, value in sorted(vars(Op).items())
    if not name.startswith("_") and isinstance(value, str)
)

_RPN_TAGS = {"num", "scalar", "symbolic", "index", "+", "-", "*", "/", "neg"}

_BINOP_PREC = {"+": 1, "-": 1, "*": 2, "/": 2}


def _is_rpn(arg: Any) -> bool:
    """True for a compiled RPN scalar program (a tuple of tagged tuples)."""
    return (
        isinstance(arg, tuple)
        and len(arg) > 0
        and all(
            isinstance(item, tuple)
            and len(item) >= 1
            and item[0] in _RPN_TAGS
            for item in arg
        )
    )


def format_rpn(rpn: tuple, prog: Optional[CompiledProgram] = None) -> str:
    """Render a compiled RPN program as a symbolic infix expression."""
    stack: list[tuple[str, int]] = []  # (text, precedence); atoms = 3
    for item in rpn:
        tag = item[0]
        if tag == "num":
            value = item[1]
            text = repr(value)
            stack.append((text, 0 if value < 0 else 3))
        elif tag == "scalar":
            name = prog.scalar_table[item[1]] if prog else f"s{item[1]}"
            stack.append((name, 3))
        elif tag == "symbolic":
            name = prog.symbolic_table[item[1]] if prog else f"c{item[1]}"
            stack.append((name, 3))
        elif tag == "index":
            name = prog.index_table[item[1]].name if prog else f"i{item[1]}"
            stack.append((name, 3))
        elif tag == "neg":
            text, prec = stack.pop()
            if prec < 3:
                text = f"({text})"
            stack.append((f"-{text}", 0))
        else:
            prec = _BINOP_PREC[tag]
            b_text, b_prec = stack.pop()
            a_text, a_prec = stack.pop()
            if a_prec < prec:
                a_text = f"({a_text})"
            # -, / are left associative: parenthesize an equal-precedence rhs
            if b_prec < prec or (b_prec == prec and tag in ("-", "/")):
                b_text = f"({b_text})"
            stack.append((f"{a_text} {tag} {b_text}", prec))
    if len(stack) != 1:
        return repr(rpn)
    return stack[0][0]


def disassemble(prog: CompiledProgram) -> str:
    """Human-readable listing of the bytecode, for debugging and docs."""
    lines = [f"; program {prog.name}"]
    lines.append(f"; {len(prog.index_table)} indices, {len(prog.array_table)} arrays")
    if prog.opt_level:
        lines.append(f"; optimized at -O{prog.opt_level}")
    rev_procs = {pc: name for name, pc in prog.proc_entries.items()}
    for pc, instr in enumerate(prog.instructions):
        if pc in rev_procs:
            lines.append(f"proc {rev_procs[pc]}:")
        args = ", ".join(_fmt_arg(a, prog) for a in instr.args)
        lines.append(f"  {pc:4d}  {instr.op:<18s} {args}")
    return "\n".join(lines)


def _fmt_arg(arg: Any, prog: CompiledProgram) -> str:
    if isinstance(arg, BlockOperand):
        name = prog.array_table[arg.array_id].name
        idx = ",".join(prog.index_table[i].name for i in arg.index_ids)
        return f"{name}({idx})"
    if isinstance(arg, CompiledCondition):
        left = format_rpn(arg.left_rpn, prog)
        right = format_rpn(arg.right_rpn, prog)
        return f"<{left} {arg.op} {right}>"
    if _is_rpn(arg):
        return f"{{{format_rpn(arg, prog)}}}"
    if isinstance(arg, (tuple, list)):
        inner = ", ".join(_fmt_arg(a, prog) for a in arg)
        return f"[{inner}]" if isinstance(arg, list) else f"({inner})"
    return repr(arg)
