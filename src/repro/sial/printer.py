"""Pretty-printer for SIAL ASTs.

Renders a parsed program back to canonical SIAL source.  The printer
and parser form a round-trip pair (``parse(pretty(ast)) == ast`` up to
source locations), which the property-based tests exercise; it is also
what the CLI's ``format`` command uses.
"""

from __future__ import annotations

from . import ast_nodes as ast

__all__ = ["pretty", "format_source"]

_INDENT = "  "


def format_source(source: str, filename: str = "<sial>") -> str:
    """Parse and re-render SIAL source in canonical form."""
    from .parser import parse

    return pretty(parse(source, filename))


def pretty(program: ast.Program) -> str:
    lines: list[str] = [f"sial {program.name}"]
    for decl in program.decls:
        lines.extend(_decl(decl))
    if program.decls and program.body:
        lines.append("")
    for stmt in program.body:
        lines.extend(_stmt(stmt, 0))
    lines.append(f"endsial {program.name}")
    return "\n".join(lines) + "\n"


_KIND_KEYWORD = {
    "ao": "aoindex",
    "mo": "moindex",
    "moa": "moaindex",
    "mob": "mobindex",
    "la": "laindex",
    "simple": "index",
}


def _decl(decl: ast.Decl) -> list[str]:
    if isinstance(decl, ast.IndexDecl):
        kw = _KIND_KEYWORD[decl.kind]
        return [f"{kw} {decl.name} = {_expr(decl.lo)}, {_expr(decl.hi)}"]
    if isinstance(decl, ast.SubindexDecl):
        return [f"subindex {decl.name} of {decl.super_name}"]
    if isinstance(decl, ast.ArrayDecl):
        return [f"{decl.kind} {decl.name}({', '.join(decl.index_names)})"]
    if isinstance(decl, ast.ScalarDecl):
        return [f"scalar {decl.name}"]
    if isinstance(decl, ast.SymbolicDecl):
        return [f"symbolic {decl.name}"]
    if isinstance(decl, ast.ProcDecl):
        lines = [f"proc {decl.name}"]
        for stmt in decl.body:
            lines.extend(_stmt(stmt, 1))
        lines.append(f"endproc {decl.name}")
        return lines
    raise TypeError(f"unknown declaration {decl!r}")  # pragma: no cover


def _stmt(stmt: ast.Stmt, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(stmt, ast.Pardo):
        head = f"pardo {', '.join(stmt.indices)}"
        if stmt.where:
            head += " where " + ", ".join(_cond(c) for c in stmt.where)
        lines = [pad + head]
        for s in stmt.body:
            lines.extend(_stmt(s, depth + 1))
        lines.append(pad + f"endpardo {', '.join(stmt.indices)}")
        return lines
    if isinstance(stmt, ast.Do):
        lines = [pad + f"do {stmt.index}"]
        for s in stmt.body:
            lines.extend(_stmt(s, depth + 1))
        lines.append(pad + f"enddo {stmt.index}")
        return lines
    if isinstance(stmt, ast.DoIn):
        lines = [pad + f"do {stmt.subindex} in {stmt.super_index}"]
        for s in stmt.body:
            lines.extend(_stmt(s, depth + 1))
        lines.append(pad + f"enddo {stmt.subindex}")
        return lines
    if isinstance(stmt, ast.If):
        lines = [pad + f"if {_cond(stmt.condition)}"]
        for s in stmt.then_body:
            lines.extend(_stmt(s, depth + 1))
        if stmt.else_body:
            lines.append(pad + "else")
            for s in stmt.else_body:
                lines.extend(_stmt(s, depth + 1))
        lines.append(pad + "endif")
        return lines
    if isinstance(stmt, ast.Call):
        return [pad + f"call {stmt.name}"]
    if isinstance(stmt, ast.Get):
        return [pad + f"get {_expr(stmt.ref)}"]
    if isinstance(stmt, ast.Request):
        return [pad + f"request {_expr(stmt.ref)}"]
    if isinstance(stmt, ast.Put):
        return [pad + f"put {_expr(stmt.dst)} {stmt.op} {_expr(stmt.src)}"]
    if isinstance(stmt, ast.Prepare):
        return [pad + f"prepare {_expr(stmt.dst)} {stmt.op} {_expr(stmt.src)}"]
    if isinstance(stmt, ast.Create):
        return [pad + f"create {stmt.array}"]
    if isinstance(stmt, ast.Delete):
        return [pad + f"delete {stmt.array}"]
    if isinstance(stmt, ast.Allocate):
        return [pad + f"allocate {_expr(stmt.ref)}"]
    if isinstance(stmt, ast.Deallocate):
        return [pad + f"deallocate {_expr(stmt.ref)}"]
    if isinstance(stmt, ast.ComputeIntegrals):
        return [pad + f"compute_integrals {_expr(stmt.ref)}"]
    if isinstance(stmt, ast.Execute):
        args = ", ".join(_expr(a) for a in stmt.args)
        return [pad + f"execute {stmt.name} {args}".rstrip()]
    if isinstance(stmt, ast.Collective):
        return [pad + f"collective {stmt.scalar}"]
    if isinstance(stmt, ast.Barrier):
        return [pad + ("sip_barrier" if stmt.kind == "sip" else "server_barrier")]
    if isinstance(stmt, ast.BlocksToList):
        return [pad + f"blocks_to_list {stmt.array}"]
    if isinstance(stmt, ast.ListToBlocks):
        return [pad + f"list_to_blocks {stmt.array}"]
    if isinstance(stmt, ast.Checkpoint):
        return [pad + "checkpoint"]
    if isinstance(stmt, ast.BlockAssign):
        return [pad + f"{_expr(stmt.lhs)} {stmt.op} {_expr(stmt.rhs)}"]
    if isinstance(stmt, ast.ScalarAssign):
        return [pad + f"{stmt.name} {stmt.op} {_expr(stmt.rhs)}"]
    raise TypeError(f"unknown statement {stmt!r}")  # pragma: no cover


def _cond(cond: ast.Condition) -> str:
    return f"{_expr(cond.left)} {cond.op} {_expr(cond.right)}"


def _expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    if isinstance(expr, ast.NumberLit):
        value = expr.value
        if value == int(value) and abs(value) < 1e15:
            # keep a decimal point so the value reads as a float literal
            return f"{value:.1f}"
        return repr(value)
    if isinstance(expr, ast.ScalarRef):
        return expr.name
    if isinstance(expr, ast.BlockRef):
        return f"{expr.array}({', '.join(expr.indices)})"
    if isinstance(expr, ast.UnaryOp):
        inner = _expr(expr.operand, parent_prec=3)
        return f"-{inner}"
    if isinstance(expr, ast.BinaryOp):
        prec = 1 if expr.op in "+-" else 2
        left = _expr(expr.left, parent_prec=prec)
        # right side binds one tighter to preserve left associativity
        right = _expr(expr.right, parent_prec=prec + 1)
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"unknown expression {expr!r}")  # pragma: no cover
