"""Symbol tables for the SIAL compiler.

Identifiers in SIAL are case-insensitive (the language descends from the
Fortran world); the table normalizes lookups but remembers the declared
spelling for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from . import ast_nodes as ast
from .errors import SemanticError, SourceLocation

__all__ = [
    "IndexSymbol",
    "SubindexSymbol",
    "ArraySymbol",
    "ScalarSymbol",
    "SymbolicSymbol",
    "ProcSymbol",
    "SymbolTable",
]

#: Index kinds considered *segment* indices (they select blocks).  A
#: 'simple' index counts iterations and addresses nothing.
SEGMENT_KINDS = frozenset({"ao", "mo", "moa", "mob", "la"})


@dataclass(frozen=True)
class IndexSymbol:
    name: str
    kind: str  # 'ao', 'mo', 'moa', 'mob', 'la', 'simple'
    lo: ast.Expr
    hi: ast.Expr
    location: Optional[SourceLocation] = None

    @property
    def is_segment_index(self) -> bool:
        return self.kind in SEGMENT_KINDS


@dataclass(frozen=True)
class SubindexSymbol:
    name: str
    super_name: str
    kind: str  # inherited from the super index
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class ArraySymbol:
    name: str
    kind: str  # 'static', 'temp', 'local', 'distributed', 'served'
    index_names: tuple[str, ...]
    location: Optional[SourceLocation] = None

    @property
    def rank(self) -> int:
        return len(self.index_names)


@dataclass(frozen=True)
class ScalarSymbol:
    name: str
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class SymbolicSymbol:
    name: str
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class ProcSymbol:
    name: str
    decl: ast.ProcDecl
    location: Optional[SourceLocation] = None


Symbol = (
    IndexSymbol
    | SubindexSymbol
    | ArraySymbol
    | ScalarSymbol
    | SymbolicSymbol
    | ProcSymbol
)

_KIND_NAMES = {
    IndexSymbol: "index",
    SubindexSymbol: "subindex",
    ArraySymbol: "array",
    ScalarSymbol: "scalar",
    SymbolicSymbol: "symbolic constant",
    ProcSymbol: "procedure",
}


@dataclass
class SymbolTable:
    """Case-insensitive map of declared names to symbols."""

    source: str = ""
    _symbols: dict[str, Symbol] = field(default_factory=dict)

    def declare(self, symbol: Symbol) -> None:
        key = symbol.name.lower()
        existing = self._symbols.get(key)
        if existing is not None:
            kind = _KIND_NAMES[type(existing)]
            raise SemanticError(
                f"{symbol.name!r} already declared as {kind}",
                symbol.location,
                self.source,
            )
        self._symbols[key] = symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        return self._symbols.get(name.lower())

    def require(
        self,
        name: str,
        expected: type | tuple[type, ...],
        location: Optional[SourceLocation],
        what: str,
    ) -> Symbol:
        sym = self.lookup(name)
        if sym is None:
            raise SemanticError(f"undeclared {what} {name!r}", location, self.source)
        if not isinstance(sym, expected):
            kind = _KIND_NAMES[type(sym)]
            raise SemanticError(
                f"{name!r} is a {kind}, not a {what}", location, self.source
            )
        return sym

    def arrays(self) -> list[ArraySymbol]:
        return [s for s in self._symbols.values() if isinstance(s, ArraySymbol)]

    def indices(self) -> list[IndexSymbol]:
        return [s for s in self._symbols.values() if isinstance(s, IndexSymbol)]

    def subindices(self) -> list[SubindexSymbol]:
        return [s for s in self._symbols.values() if isinstance(s, SubindexSymbol)]

    def scalars(self) -> list[ScalarSymbol]:
        return [s for s in self._symbols.values() if isinstance(s, ScalarSymbol)]

    def symbolics(self) -> list[SymbolicSymbol]:
        return [s for s in self._symbols.values() if isinstance(s, SymbolicSymbol)]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._symbols
