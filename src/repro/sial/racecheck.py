"""Static race detection for SIAL programs.

The SIA programming model (paper, Section IV-C) is only deterministic
when the accesses to ``distributed`` and ``served`` arrays issued
between two barriers commute: pardo iterations may run in any order on
any worker, so within one barrier *phase*

* a plain (overwriting) ``put``/``prepare`` must write each block from
  at most one iteration,
* a ``get``/``request`` must not read a block that another iteration
  writes in the same phase, and
* only ``+=`` accumulates may target the same block from different
  iterations.

This pass checks those rules symbolically, before the program ever
runs.  It walks the whole program -- inlining procedure calls, walking
``do``/``do..in`` bodies twice so hazards across the loop's back edge
are seen, and splitting the instruction stream into barrier phases
(``sip_barrier`` delimits distributed-array phases, ``server_barrier``
served-array phases).  Every ``get``/``request``/``put``/``prepare``
becomes an access record carrying its canonical index tuple (subindices
resolved to their super index, as in the analyzer), the enclosing pardo,
the phases it may execute in, and its source location.

Two accesses to the same array conflict when their phase sets
intersect, they can occur on the same block from different pardo
iterations (or from different SPMD workers outside pardo), and they are
not both reads or both accumulates.  Iterations of one pardo are known
to touch distinct blocks only when the access tuples are identical and
contain every pardo index; anything else is conservatively reported.

``if`` branches outside pardo are treated as mutually exclusive (every
worker evaluates the same replicated scalar condition), so accesses in
opposite branches never conflict; inside pardo different iterations may
take different branches, so branches are unioned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from . import ast_nodes as ast
from .errors import SourceLocation
from .symbols import ArraySymbol, SubindexSymbol, SymbolTable

__all__ = ["RaceDiagnostic", "RaceReport", "check_races"]

DISTRIBUTED = "distributed"
SERVED = "served"

# conflict kinds
WRITE_WRITE = "write-write"
READ_WRITE = "read-write"
NON_INJECTIVE = "non-injective-overwrite"
SPMD_OVERWRITE = "spmd-overwrite"


@dataclass(frozen=True)
class RaceDiagnostic:
    """One potential race, with the source locations of both endpoints."""

    kind: str  # WRITE_WRITE | READ_WRITE | NON_INJECTIVE | SPMD_OVERWRITE
    array: str
    message: str
    location: Optional[SourceLocation] = None
    related: Optional[SourceLocation] = None

    def render(self) -> str:
        loc = f"{self.location}: " if self.location is not None else ""
        return f"{loc}{self.kind}: {self.message}"


@dataclass
class RaceReport:
    """All potential races found in one program."""

    program_name: str
    diagnostics: list[RaceDiagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def render(self) -> str:
        if self.ok:
            return f"{self.program_name}: no races detected"
        lines = [
            f"{self.program_name}: {len(self.diagnostics)} potential race(s)"
        ]
        for diag in self.diagnostics:
            lines.append("  " + diag.render())
        return "\n".join(lines)


@dataclass(frozen=True)
class _Access:
    """One get/request/put/prepare occurrence along the symbolic walk."""

    array: str  # lowercased array name
    display: str  # declared spelling, for messages
    cls: str  # DISTRIBUTED or SERVED
    mode: str  # "read" | "=" | "+="
    tuple: Optional[tuple[str, ...]]  # canonical indices; None = whole array
    pardo: Optional[int]  # pardo instance id, None outside pardo
    covers: bool  # tuple contains every enclosing-pardo index
    phases: frozenset[int]
    branch: tuple[tuple[int, int], ...]  # (if instance, arm) path outside pardo
    location: Optional[SourceLocation]
    verb: str  # source spelling: get/request/put/prepare/...
    owned_only: bool = False  # list_to_blocks: each worker writes its own blocks


@dataclass
class _WalkState:
    """Mutable state threaded through the program walk."""

    phases: dict[str, frozenset[int]]
    branch: tuple[tuple[int, int], ...] = ()
    pardo: Optional[int] = None
    pardo_indices: frozenset[str] = frozenset()
    pardo_location: Optional[SourceLocation] = None


class _Walker:
    def __init__(
        self,
        program: ast.Program,
        symbols: SymbolTable,
        ignore_barriers: frozenset = frozenset(),
    ) -> None:
        self.program = program
        self.symbols = symbols
        #: (line, column) of barrier statements to treat as absent --
        #: used by the optimizer's barrier-coalescing pass to prove a
        #: barrier redundant: if ignoring it adds no diagnostics, the
        #: phases it separated already commute
        self.ignore_barriers = ignore_barriers
        self.accesses: list[_Access] = []
        self._next_id = 0

    def fresh(self) -> int:
        self._next_id += 1
        return self._next_id

    # -- helpers ------------------------------------------------------------
    def canonical(self, ref: ast.BlockRef) -> tuple[str, ...]:
        out = []
        for name in ref.indices:
            sym = self.symbols.lookup(name)
            if isinstance(sym, SubindexSymbol):
                out.append(sym.super_name.lower())
            else:
                out.append(name.lower())
        return tuple(out)

    def array_symbol(self, name: str) -> ArraySymbol:
        sym = self.symbols.lookup(name)
        assert isinstance(sym, ArraySymbol)
        return sym

    def record(
        self,
        st: _WalkState,
        ref: ast.BlockRef,
        mode: str,
        verb: str,
        location: Optional[SourceLocation],
    ) -> None:
        sym = self.array_symbol(ref.array)
        if sym.kind not in (DISTRIBUTED, SERVED):
            return
        canonical = self.canonical(ref)
        covers = st.pardo is not None and st.pardo_indices <= set(canonical)
        self.accesses.append(
            _Access(
                array=ref.array.lower(),
                display=sym.name,
                cls=sym.kind,
                mode=mode,
                tuple=canonical,
                pardo=st.pardo,
                covers=covers,
                phases=st.phases[sym.kind],
                branch=st.branch,
                location=location,
                verb=verb,
            )
        )

    def record_whole_array(
        self,
        st: _WalkState,
        name: str,
        mode: str,
        verb: str,
        location: Optional[SourceLocation],
        owned_only: bool = False,
    ) -> None:
        sym = self.array_symbol(name)
        self.accesses.append(
            _Access(
                array=sym.name.lower(),
                display=sym.name,
                cls=sym.kind,
                mode=mode,
                tuple=None,
                pardo=st.pardo,
                covers=False,
                phases=st.phases[sym.kind],
                branch=st.branch,
                location=location,
                verb=verb,
                owned_only=owned_only,
            )
        )

    # -- the walk -----------------------------------------------------------
    def walk_program(self) -> None:
        st = _WalkState(
            phases={DISTRIBUTED: frozenset([self.fresh()]),
                    SERVED: frozenset([self.fresh()])}
        )
        self.walk_body(self.program.body, st, proc_stack=())

    def walk_body(
        self, body: list[ast.Stmt], st: _WalkState, proc_stack: tuple[str, ...]
    ) -> None:
        for stmt in body:
            self.walk_stmt(stmt, st, proc_stack)

    def walk_stmt(
        self, stmt: ast.Stmt, st: _WalkState, proc_stack: tuple[str, ...]
    ) -> None:
        if isinstance(stmt, ast.Barrier):
            loc = stmt.location
            if loc is not None and (loc.line, loc.column) in self.ignore_barriers:
                return  # pretend the barrier is not there
            cls = DISTRIBUTED if stmt.kind == "sip" else SERVED
            st.phases[cls] = frozenset([self.fresh()])
        elif isinstance(stmt, ast.Pardo):
            inner = _WalkState(
                phases=st.phases,
                branch=st.branch,
                pardo=self.fresh(),
                pardo_indices=frozenset(n.lower() for n in stmt.indices),
                pardo_location=stmt.location,
            )
            # barriers cannot appear inside pardo (analyzer-enforced), so
            # the shared phase dict cannot change during the body walk
            self.walk_body(stmt.body, inner, proc_stack)
        elif isinstance(stmt, (ast.Do, ast.DoIn)):
            # walk the body twice so accesses of consecutive iterations
            # land in the walk together: hazards across the loop's back
            # edge (a last-phase write meeting a first-phase read of the
            # next iteration) are only visible then
            self.walk_body(stmt.body, st, proc_stack)
            self.walk_body(stmt.body, st, proc_stack)
        elif isinstance(stmt, ast.If):
            if st.pardo is not None:
                # iterations may branch differently: union both arms
                self.walk_body(stmt.then_body, st, proc_stack)
                self.walk_body(stmt.else_body, st, proc_stack)
            else:
                # outside pardo the condition is replicated SPMD state:
                # every worker takes the same arm, so the arms are
                # mutually exclusive program-wide
                if_id = self.fresh()
                then_st = _WalkState(
                    phases=dict(st.phases),
                    branch=st.branch + ((if_id, 0),),
                )
                else_st = _WalkState(
                    phases=dict(st.phases),
                    branch=st.branch + ((if_id, 1),),
                )
                self.walk_body(stmt.then_body, then_st, proc_stack)
                self.walk_body(stmt.else_body, else_st, proc_stack)
                # either arm may have been taken: afterwards the current
                # phase is any phase either arm ended in
                for cls in st.phases:
                    st.phases[cls] = then_st.phases[cls] | else_st.phases[cls]
        elif isinstance(stmt, ast.Call):
            key = stmt.name.lower()
            decl = self.program.procs.get(key)
            if decl is None or key in proc_stack:
                return  # undefined/recursive: the analyzer reports these
            self.walk_body(decl.body, st, proc_stack + (key,))
        elif isinstance(stmt, ast.Get):
            self.record(st, stmt.ref, "read", "get", stmt.location)
        elif isinstance(stmt, ast.Request):
            self.record(st, stmt.ref, "read", "request", stmt.location)
        elif isinstance(stmt, ast.Put):
            self.record(st, stmt.dst, stmt.op, "put", stmt.location)
        elif isinstance(stmt, ast.Prepare):
            self.record(st, stmt.dst, stmt.op, "prepare", stmt.location)
        elif isinstance(stmt, ast.BlocksToList):
            # reads every owned block, then synchronizes all workers
            self.record_whole_array(
                st, stmt.array, "read", "blocks_to_list", stmt.location
            )
            st.phases[DISTRIBUTED] = frozenset([self.fresh()])
        elif isinstance(stmt, ast.ListToBlocks):
            # each worker overwrites only the blocks it owns, then
            # synchronizes; the write itself cannot self-conflict
            self.record_whole_array(
                st,
                stmt.array,
                "=",
                "list_to_blocks",
                stmt.location,
                owned_only=True,
            )
            st.phases[DISTRIBUTED] = frozenset([self.fresh()])
        elif isinstance(stmt, ast.Checkpoint):
            for sym in self.symbols.arrays():
                if sym.kind == DISTRIBUTED:
                    self.record_whole_array(
                        st, sym.name, "read", "checkpoint", stmt.location
                    )
            st.phases[DISTRIBUTED] = frozenset([self.fresh()])
        # all remaining statements (block assignments, scalar work,
        # collective, create/delete, allocate, compute_integrals,
        # execute) touch only worker-local state or replicated scalars


# -- conflict rules ---------------------------------------------------------


def _branch_compatible(a: _Access, b: _Access) -> bool:
    """False when the accesses sit in opposite arms of one if."""
    arms = dict(a.branch)
    for if_id, arm in b.branch:
        if arms.get(if_id, arm) != arm:
            return False
    return True


def _may_overlap(a: _Access, b: _Access) -> bool:
    """Can a and b touch the same block from different iterations?

    Same-pardo accesses with identical canonical tuples containing
    every pardo index map iteration -> block injectively; any other
    same-phase combination is conservatively overlapping.
    """
    if a.pardo is not None and a.pardo == b.pardo:
        return not (a.tuple == b.tuple and a.covers and b.covers)
    return True


def _describe(acc: _Access) -> str:
    if acc.tuple is None:
        ref = acc.display
    else:
        ref = f"{acc.display}({', '.join(acc.tuple)})"
    stmt = f"{acc.verb} {ref}"
    if acc.mode == "+=":
        stmt += " +="
    where = "" if acc.location is None else f" at {acc.location}"
    return f"'{stmt}'{where}"


class _ConflictFinder:
    def __init__(self, program_name: str) -> None:
        self.report = RaceReport(program_name)
        self._seen: set[tuple] = set()

    def add(
        self,
        kind: str,
        acc: _Access,
        message: str,
        related: Optional[SourceLocation] = None,
    ) -> None:
        key = (kind, acc.array, acc.location, related)
        if key in self._seen:
            return
        self._seen.add(key)
        self.report.diagnostics.append(
            RaceDiagnostic(
                kind=kind,
                array=acc.display,
                message=message,
                location=acc.location,
                related=related,
            )
        )

    def check_single(self, acc: _Access) -> None:
        """Self-conflicts: one overwrite executed by many iterations/workers."""
        if acc.mode != "=" or acc.owned_only:
            return
        if acc.pardo is not None:
            if not acc.covers:
                self.add(
                    NON_INJECTIVE,
                    acc,
                    f"{_describe(acc)} does not use every index of the "
                    "enclosing pardo, so different iterations may overwrite "
                    "the same block; use '+=' to accumulate or cover all "
                    "pardo indices",
                )
        else:
            self.add(
                SPMD_OVERWRITE,
                acc,
                f"{_describe(acc)} executes outside pardo, so every worker "
                "overwrites the same block in the same phase; move it into "
                "a pardo or use '+='",
            )

    def check_pair(self, a: _Access, b: _Access) -> None:
        if a.mode == "read" and b.mode == "read":
            return
        if a.mode == "+=" and b.mode == "+=":
            return  # accumulates commute
        if (
            a.pardo is None
            and b.pardo is None
            and a.location == b.location
            and a.verb == b.verb
        ):
            # the same sequential statement seen again through a loop
            # unroll; SPMD self-conflicts are reported by check_single
            return
        if not (a.phases & b.phases):
            return
        if not _branch_compatible(a, b):
            return
        if not _may_overlap(a, b):
            return
        # order: writer first for the message
        if a.mode == "read":
            a, b = b, a
        kind = READ_WRITE if b.mode == "read" else WRITE_WRITE
        if kind == READ_WRITE:
            msg = (
                f"{_describe(b)} may read a block that {_describe(a)} writes "
                "in the same barrier phase"
            )
            primary, related = b, a.location
        else:
            msg = (
                f"{_describe(a)} and {_describe(b)} may write the same block "
                "in the same barrier phase and at most one is an accumulate"
            )
            primary, related = a, b.location
        self.add(kind, primary, msg, related)


def check_races(analyzed, ignore_barriers: frozenset = frozenset()) -> RaceReport:
    """Run the race check on an :class:`~.analyzer.AnalyzedProgram`.

    ``ignore_barriers`` is a set of ``(line, column)`` source positions
    of barrier statements to treat as absent; the phase segmentation is
    otherwise identical.  The optimizer's barrier-coalescing pass uses
    this to prove a barrier redundant by re-running the check without it.
    """
    walker = _Walker(analyzed.program, analyzed.symbols, ignore_barriers)
    walker.walk_program()
    finder = _ConflictFinder(analyzed.program.name)

    by_array: dict[tuple[str, str], list[_Access]] = {}
    for acc in walker.accesses:
        finder.check_single(acc)
        by_array.setdefault((acc.cls, acc.array), []).append(acc)

    for group in by_array.values():
        for i, a in enumerate(group):
            for b in group[i + 1 :]:
                finder.check_pair(a, b)
    return finder.report
