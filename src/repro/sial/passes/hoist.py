"""Loop-invariant block-operand hoisting and pardo prefetch insertion.

**Hoisting** moves a ``GET``/``REQUEST`` whose operand does not depend
on the enclosing ``do``/``do..in`` loop's index (nor on any index bound
inside that loop) from the loop body to just before the loop, so one
fetch replaces N re-executions.  Legality: gets are idempotent reads --
the cache absorbs repeats, an evicted block is transparently refetched
by the consuming instruction, and the runtime sanitizer's per-iteration
set semantics keep verdicts unchanged as long as one access per
iteration identity survives (the hoisted copy runs in the same pardo
iteration and the same barrier phase, since the pass refuses to cross
barriers, calls, branches, or any write that could touch the same
array).  The pass assumes loops run at least one iteration -- true for
every ``1..N`` SIAL range with a positive bound; a zero-trip loop would
merely fetch a block early that the original program fetched never,
which can only matter for traffic, not results, when the block exists.

**Prefetch insertion** plants :data:`~..bytecode.Op.PREFETCH` hints at
the top of a pardo body for gets the body is guaranteed to issue later
in the same iteration (straight-line, after the leading get run), so
their communication overlaps the preceding compute.  The inserted pcs
join the loop's ``get_pcs`` and therefore the locality scheduler's
affinity lists automatically.  A hint never records sanitizer or
tracker state and never faults, so it is legality-free by construction;
the pass still refuses bodies with branches or calls (a hint must not
fetch a block the original program might never touch) and arrays the
body also writes (a hint must not cache a value a put then supersedes).
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import replace as dc_replace

from ..bytecode import BlockOperand, CompiledProgram, Instr, Op
from .manager import PassReport
from .rewrite import Rewriter

__all__ = [
    "eliminate_redundant_fetches",
    "hoist_invariants",
    "insert_prefetches",
]

_LOOP_STARTS = (Op.DO_START, Op.DOIN_START, Op.PARDO_START)
_LOOP_ENDS = (Op.DO_END, Op.DOIN_END, Op.PARDO_END)

#: opcodes whose presence in a loop body vetoes motion across it
_MOTION_BARRIERS = (
    Op.SIP_BARRIER,
    Op.SERVER_BARRIER,
    Op.COLLECTIVE,
    Op.CALL,
    Op.JUMP,
    Op.BRANCH_FALSE,
    Op.CREATE,
    Op.DELETE,
    Op.BLOCKS_TO_LIST,
    Op.LIST_TO_BLOCKS,
    Op.CHECKPOINT,
)


@dataclass
class _Region:
    """One loop region of the instruction stream."""

    op: str
    start: int
    end: int
    index_ids: tuple[int, ...]  # indices this loop binds
    body_pcs: list[int]  # direct body, excluding nested loop interiors
    inner_bound: set[int]  # indices bound by loops nested inside


def _regions(prog: CompiledProgram) -> list[_Region]:
    out: list[_Region] = []
    stack: list[_Region] = []
    for pc, instr in enumerate(prog.instructions):
        if instr.op in _LOOP_STARTS:
            ids = (
                tuple(instr.args[1])
                if instr.op == Op.PARDO_START
                else (instr.args[0],)
            )
            region = _Region(instr.op, pc, -1, ids, [], set())
            if stack:
                stack[-1].inner_bound.update(ids)
            stack.append(region)
        elif instr.op in _LOOP_ENDS:
            region = stack.pop()
            region.end = pc
            out.append(region)
            if stack:
                stack[-1].inner_bound.update(region.inner_bound)
        elif stack:
            stack[-1].body_pcs.append(pc)
    return out


def _body_ops(prog: CompiledProgram, region: _Region):
    return (prog.instructions[pc] for pc in range(region.start + 1, region.end))


_WRITING_OPS = {
    Op.FILL,
    Op.COPY,
    Op.NEGATE,
    Op.SCALE,
    Op.SCALE_INPLACE,
    Op.ACCUM,
    Op.ADDSUB,
    Op.CONTRACT,
    Op.CONTRACT_FUSED,
}


def _written_arrays(prog: CompiledProgram, region: _Region) -> set[int]:
    """Arrays any instruction inside the region may write."""
    out: set[int] = set()
    for instr in _body_ops(prog, region):
        if instr.op in (Op.PUT, Op.PREPARE) or instr.op in _WRITING_OPS:
            out.add(instr.args[0].array_id)
        elif instr.op == Op.EXECUTE:
            for kind, value in instr.args[1]:
                if kind == "block":
                    out.add(value.array_id)
    return out


def hoist_invariants(prog: CompiledProgram) -> tuple[CompiledProgram, PassReport]:
    report = PassReport(name="hoist")
    hoisted = 0
    deduped = 0
    while True:
        moved = _hoist_round(prog)
        if moved is None:
            break
        prog, n, kept = moved
        hoisted += n
        deduped += n - kept
    report.removed = hoisted
    report.inserted = hoisted - deduped
    report.notes.append(
        f"hoisted {hoisted} loop-invariant fetches "
        f"({deduped} duplicates collapsed)"
    )
    return prog, report


def _hoist_round(prog: CompiledProgram):
    rw = Rewriter(prog)
    n = 0
    kept = 0
    for region in _regions(prog):
        if region.op == Op.PARDO_START:
            continue  # pardo indices define the iteration space
        if any(
            instr.op in _MOTION_BARRIERS
            for instr in _body_ops(prog, region)
        ):
            continue
        written = _written_arrays(prog, region)
        forbidden = set(region.index_ids) | region.inner_bound
        lifted: set[tuple] = set()
        for pc in region.body_pcs:
            instr = prog.instructions[pc]
            if instr.op not in (Op.GET, Op.REQUEST):
                continue
            operand = instr.args[0]
            if forbidden & set(operand.index_ids):
                continue
            if operand.array_id in written:
                continue
            key = (instr.op, operand)
            rw.delete(pc)
            if key not in lifted:
                lifted.add(key)
                rw.insert_before(region.start, [instr])
                kept += 1
            n += 1
        # regions are reported innermost-first and body_pcs exclude
        # nested interiors, so edits from different regions never
        # collide within one round
    if n == 0:
        return None
    return rw.apply(), n, kept


def eliminate_redundant_fetches(
    prog: CompiledProgram,
) -> tuple[CompiledProgram, PassReport]:
    """Delete re-fetches of blocks already gotten in the same iteration.

    Within one pardo body -- where barriers cannot appear (analyzer-
    enforced) and, for this pass, branches and calls must not either --
    a later ``get``/``request`` of the *identical* operand is dominated
    by an earlier one when the earlier site's divergent enclosing-loop
    index ids are a subset of the later site's: identical ids iterate
    identical ranges, so the earlier site already enumerated every
    block the later one will touch (a common pattern: sibling ``do m``
    loops each re-fetching ``t1(m,i)``), and a zero-trip range silences
    both sites symmetrically.  The later fetch is then a guaranteed
    cache probe for a block this worker already requested this
    iteration; the array is written nowhere in the body (checked), and
    no other worker can write it during the pardo (a writer would have
    to be in this same body).  Deleting it is result-identical -- if
    memory pressure evicted the block meanwhile, the consuming
    instruction's acquire refetches it transparently -- and drops one
    dispatch per execution.  Sanitizer verdicts are unchanged: per-
    iteration access sets already collapse duplicate reads of a block.

    Runs after hoisting, which lifts loop-invariant fetches to shallow
    positions where they dominate more sites.
    """
    report = PassReport(name="dedup_fetch")
    rw = Rewriter(prog)
    removed = 0
    for region in _regions(prog):
        if region.op != Op.PARDO_START:
            continue
        if any(
            instr.op in _MOTION_BARRIERS
            for instr in _body_ops(prog, region)
        ):
            continue
        written = _written_arrays(prog, region)
        # each fetch site with its chain of enclosing do-loops inside
        # the pardo, as (start pc, frozenset of index ids) pairs
        kept: dict[tuple, list[tuple]] = {}  # key -> [chains of kept sites]
        chain: list[tuple[int, int]] = []  # (start pc, index id)
        for pc in range(region.start + 1, region.end):
            instr = prog.instructions[pc]
            if instr.op in (Op.DO_START, Op.DOIN_START):
                chain.append((pc, instr.args[0]))
            elif instr.op in (Op.DO_END, Op.DOIN_END):
                chain.pop()
            elif instr.op in (Op.GET, Op.REQUEST):
                operand = instr.args[0]
                if operand.array_id in written:
                    continue
                key = (instr.op, operand)
                here = tuple(chain)
                dominated = False
                for earlier in kept.get(key, ()):
                    shared = 0
                    for a, b in zip(earlier, here):
                        if a != b:
                            break
                        shared += 1
                    rest_a = {ix for _, ix in earlier[shared:]}
                    rest_b = {ix for _, ix in here[shared:]}
                    if rest_a <= rest_b:
                        dominated = True
                        break
                if dominated:
                    rw.delete(pc)
                    removed += 1
                else:
                    kept.setdefault(key, []).append(here)
    report.removed = removed
    report.notes.append(f"deleted {removed} already-fetched gets")
    prog = rw.apply() if rw.dirty else prog
    return prog, report


def insert_prefetches(prog: CompiledProgram) -> tuple[CompiledProgram, PassReport]:
    report = PassReport(name="prefetch")
    rw = Rewriter(prog)
    inserted = 0
    for region in _regions(prog):
        if region.op != Op.PARDO_START:
            continue
        if any(
            instr.op in _MOTION_BARRIERS
            for instr in _body_ops(prog, region)
        ):
            continue
        written = _written_arrays(prog, region)
        # the leading run of gets right after PARDO_START already
        # overlaps nothing; hint only the stragglers after it
        body_start = region.start + 1
        run_end = body_start
        while (
            run_end < region.end
            and prog.instructions[run_end].op in (Op.GET, Op.REQUEST)
        ):
            run_end += 1
        leading = {
            prog.instructions[pc].args[0]
            for pc in range(body_start, run_end)
        }
        hints: list[Instr] = []
        seen: set[BlockOperand] = set(leading)
        for pc in region.body_pcs:
            if pc < run_end or len(hints) >= 8:
                continue
            instr = prog.instructions[pc]
            if instr.op not in (Op.GET, Op.REQUEST):
                continue
            operand = instr.args[0]
            if operand in seen or operand.array_id in written:
                continue
            seen.add(operand)
            hints.append(
                dc_replace(instr, op=Op.PREFETCH, args=(operand,))
            )
        if hints:
            rw.insert_before(body_start, hints)
            inserted += len(hints)
    report.inserted = inserted
    report.notes.append(f"inserted {inserted} pardo prefetch hints")
    prog = rw.apply() if rw.dirty else prog
    return prog, report
