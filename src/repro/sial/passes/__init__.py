"""The SIAL optimizing middle-end: verified passes between compiler and SIP.

The compiler emits naive, source-shaped bytecode; the SIP executes
whatever it is handed.  This package sits between them: a
:class:`~.manager.PassManager` pipeline of independent rewrite passes,
each of which must leave the program *structurally valid* (checked by
:func:`~.rewrite.verify_program` after every pass) and *bitwise
identical* in observable results to the unoptimized program (enforced
by the differential harness over every bundled program and backend).

Levels:

* ``-O0`` -- no passes; the compiler's output runs verbatim.
* ``-O1`` -- cheap, always-profitable cleanups: constant folding and
  RPN dedup, dead-instruction/dead-temp elimination.
* ``-O2`` -- everything: ``-O1`` plus contraction fusion, loop-
  invariant fetch hoisting, pardo prefetch insertion, and race-check-
  proven barrier coalescing.  DCE runs *after* fusion so the fused
  temps' writes and descriptors are swept up.
"""

from __future__ import annotations

from ..bytecode import CompiledProgram
from .barriers import coalesce_barriers
from .constfold import fold_constants
from .dce import eliminate_dead
from .fuse import fuse_contractions
from .hoist import (
    eliminate_redundant_fetches,
    hoist_invariants,
    insert_prefetches,
)
from .manager import PassManager, PassReport, PipelineReport
from .rewrite import Rewriter, verify_program

__all__ = [
    "PassManager",
    "PassReport",
    "PipelineReport",
    "Rewriter",
    "build_pipeline",
    "coalesce_barriers",
    "eliminate_dead",
    "eliminate_redundant_fetches",
    "fold_constants",
    "fuse_contractions",
    "hoist_invariants",
    "insert_prefetches",
    "optimize_program",
    "verify_program",
]


def build_pipeline(level: int) -> PassManager:
    """The standard pipeline for one ``-O`` level."""
    pm = PassManager(level)
    if level >= 1:
        pm.add("constfold", fold_constants)
        pm.add("dce", eliminate_dead)
    if level >= 2:
        pm.add("fuse", fuse_contractions)
        pm.add("dce2", eliminate_dead)
        pm.add("hoist", hoist_invariants)
        pm.add("dedup_fetch", eliminate_redundant_fetches)
        pm.add("prefetch", insert_prefetches)
        pm.add("barriers", coalesce_barriers)
    return pm


def optimize_program(prog: CompiledProgram, level: int) -> CompiledProgram:
    """Run the ``-O{level}`` pipeline; ``-O0`` returns the program as-is.

    Idempotent per program object: a program already optimized at the
    requested (or a higher) level is returned unchanged, so callers can
    apply the config level unconditionally.
    """
    if not 0 <= level <= 2:
        raise ValueError(f"optimization level must be 0..2, got {level}")
    if level == 0 or prog.opt_level >= level:
        return prog
    return build_pipeline(level).run(prog)
