"""Structural rewriting of SIA bytecode.

The pass pipeline never mutates a :class:`CompiledProgram` in place.
Each pass records deletions, replacements and insertions against the
*old* pc numbering on a :class:`Rewriter`; :meth:`Rewriter.apply` then
produces a fresh program with

* every explicit branch target (``JUMP``, ``BRANCH_FALSE``, ``CALL``,
  ``proc_entries``) remapped through the old->new pc map,
* loop bookkeeping (``DO_START``/``DOIN_START`` exit pcs and prefetch
  lists, ``DO_END``/``DOIN_END`` body starts, ``PARDO_START`` exit pcs,
  ``PARDO_END`` back links) *recomputed structurally* rather than
  remapped, exactly as the compiler would have emitted them, and
* per-loop ``get_pcs`` prefetch lists rebuilt by the same lexical walk
  the compiler's ``note_get`` performs (``PREFETCH`` counts as a get).

Jumping to a deleted pc lands on the next surviving instruction;
instructions inserted *before* a pc execute whenever control reaches
that pc, including via a branch.

:func:`verify_program` is the legality backstop: it re-checks the
structural invariants of the rewritten table (target ranges, loop
nesting, operand-table ids) so every pass run is machine-checkable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import Optional

from ..bytecode import (
    ArrayDesc,
    BlockOperand,
    CompiledProgram,
    Instr,
    Op,
)

__all__ = ["Rewriter", "verify_program", "remove_arrays", "jump_targets"]

#: loop families: (start opcode, end opcode)
_LOOP_PAIRS = {
    Op.DO_START: Op.DO_END,
    Op.DOIN_START: Op.DOIN_END,
    Op.PARDO_START: Op.PARDO_END,
}
_LOOP_ENDS = {v: k for k, v in _LOOP_PAIRS.items()}

#: opcodes the compiler's ``note_get`` records into enclosing loops
_GETLIKE = (Op.GET, Op.REQUEST, Op.PREFETCH)


def jump_targets(prog: CompiledProgram) -> set[int]:
    """Every pc that is the target of some explicit or implicit branch."""
    targets: set[int] = set(prog.proc_entries.values())
    for instr in prog.instructions:
        op = instr.op
        if op == Op.JUMP:
            targets.add(instr.args[0])
        elif op == Op.BRANCH_FALSE:
            targets.add(instr.args[1])
        elif op == Op.CALL:
            targets.add(instr.args[0])
        elif op in (Op.DO_START, Op.DOIN_START):
            targets.add(instr.args[1])
        elif op == Op.PARDO_START:
            targets.add(instr.args[3])
        elif op in (Op.DO_END, Op.DOIN_END):
            targets.add(instr.args[1])
        elif op == Op.PARDO_END:
            targets.add(instr.args[0] + 1)
    return targets


class Rewriter:
    """Collects edits against one program and applies them atomically."""

    def __init__(self, prog: CompiledProgram) -> None:
        self.prog = prog
        self._deleted: set[int] = set()
        self._replaced: dict[int, Instr] = {}
        self._before: dict[int, list[Instr]] = {}

    # -- edit recording ------------------------------------------------------
    def delete(self, pc: int) -> None:
        self._deleted.add(pc)

    def replace(self, pc: int, instr: Instr) -> None:
        self._replaced[pc] = instr

    def insert_before(self, pc: int, instrs: list[Instr]) -> None:
        self._before.setdefault(pc, []).extend(instrs)

    @property
    def dirty(self) -> bool:
        return bool(self._deleted or self._replaced or self._before)

    # -- application ---------------------------------------------------------
    def apply(self) -> CompiledProgram:
        old = self.prog.instructions
        new: list[Instr] = []
        land: list[int] = []  # old pc -> new pc control lands on
        for pc, instr in enumerate(old):
            land.append(len(new))
            new.extend(self._before.get(pc, ()))
            if pc in self._deleted:
                continue
            new.append(self._replaced.get(pc, instr))
        land.append(len(new))  # one-past-the-end target (STOP fallthrough)

        # the landing pc of old pc p is where p's insertions begin if p
        # survives or has insertions; a deleted pc with no insertions
        # falls through to the next surviving instruction, which the
        # running construction above already encodes
        def target(old_pc: int) -> int:
            return land[old_pc]

        remapped: list[Instr] = []
        for instr in new:
            op = instr.op
            if op == Op.JUMP:
                remapped.append(dc_replace(instr, args=(target(instr.args[0]),)))
            elif op == Op.BRANCH_FALSE:
                remapped.append(
                    dc_replace(
                        instr, args=(instr.args[0], target(instr.args[1]))
                    )
                )
            elif op == Op.CALL:
                remapped.append(
                    dc_replace(
                        instr, args=(target(instr.args[0]), instr.args[1])
                    )
                )
            else:
                remapped.append(instr)

        _relink_loops(remapped)
        _rebuild_get_pcs(remapped)
        return CompiledProgram(
            name=self.prog.name,
            instructions=remapped,
            index_table=self.prog.index_table,
            array_table=self.prog.array_table,
            scalar_table=self.prog.scalar_table,
            symbolic_table=self.prog.symbolic_table,
            proc_entries={
                name: target(pc) for name, pc in self.prog.proc_entries.items()
            },
            source=self.prog.source,
            opt_level=self.prog.opt_level,
            opt_report=self.prog.opt_report,
        )


def _relink_loops(instrs: list[Instr]) -> None:
    """Recompute loop start/end bookkeeping after pcs moved."""
    stack: list[tuple[str, int]] = []
    for pc, instr in enumerate(instrs):
        op = instr.op
        if op in _LOOP_PAIRS:
            stack.append((op, pc))
        elif op in _LOOP_ENDS:
            start_op, start_pc = stack.pop()
            if start_op != _LOOP_ENDS[op]:  # pragma: no cover - verify catches
                raise ValueError(f"mismatched loop nesting at pc {pc}")
            start = instrs[start_pc]
            if op == Op.PARDO_END:
                instrs[pc] = dc_replace(instr, args=(start_pc,))
                args = list(start.args)
                args[3] = pc + 1
                instrs[start_pc] = dc_replace(start, args=tuple(args))
            else:
                instrs[pc] = dc_replace(
                    instr, args=(instr.args[0], start_pc + 1)
                )
                args = list(start.args)
                args[1] = pc + 1
                instrs[start_pc] = dc_replace(start, args=tuple(args))
    if stack:  # pragma: no cover - verify catches
        raise ValueError("unterminated loop after rewrite")


def _rebuild_get_pcs(instrs: list[Instr]) -> None:
    """Recompute each loop's ``get_pcs`` list (compiler's ``note_get``)."""
    gets: dict[int, list[int]] = {}  # start pc -> get pcs
    stack: list[int] = []
    for pc, instr in enumerate(instrs):
        op = instr.op
        if op in _LOOP_PAIRS:
            stack.append(pc)
            gets[pc] = []
        elif op in _LOOP_ENDS:
            stack.pop()
        elif op in _GETLIKE:
            for start_pc in stack:
                gets[start_pc].append(pc)
    for start_pc, pcs in gets.items():
        instr = instrs[start_pc]
        args = list(instr.args)
        slot = 4 if instr.op == Op.PARDO_START else 2
        args[slot] = tuple(pcs)
        instrs[start_pc] = dc_replace(instr, args=tuple(args))


def remove_arrays(
    prog: CompiledProgram, dead_ids: set[int]
) -> CompiledProgram:
    """Drop array descriptors and renumber every array reference."""
    if not dead_ids:
        return prog
    remap: dict[int, int] = {}
    table: list[ArrayDesc] = []
    for old_id, desc in enumerate(prog.array_table):
        if old_id in dead_ids:
            continue
        remap[old_id] = len(table)
        table.append(desc)

    def fix(arg):
        if isinstance(arg, BlockOperand):
            return BlockOperand(remap[arg.array_id], arg.index_ids)
        if isinstance(arg, tuple):
            return tuple(fix(a) for a in arg)
        if isinstance(arg, list):  # pragma: no cover - args are tuples
            return [fix(a) for a in arg]
        return arg

    instrs: list[Instr] = []
    for instr in prog.instructions:
        if instr.op in (
            Op.CREATE,
            Op.DELETE,
            Op.BLOCKS_TO_LIST,
            Op.LIST_TO_BLOCKS,
        ):
            instrs.append(
                dc_replace(instr, args=(remap[instr.args[0]],))
            )
        else:
            instrs.append(dc_replace(instr, args=fix(instr.args)))
    return CompiledProgram(
        name=prog.name,
        instructions=instrs,
        index_table=prog.index_table,
        array_table=table,
        scalar_table=prog.scalar_table,
        symbolic_table=prog.symbolic_table,
        proc_entries=dict(prog.proc_entries),
        source=prog.source,
        opt_level=prog.opt_level,
        opt_report=prog.opt_report,
    )


@dataclass
class VerifyResult:
    """Outcome of the structural validity check; falsy when broken."""

    problems: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return not self.problems

    def render(self) -> str:
        if not self.problems:
            return "program structurally valid"
        return "\n".join(self.problems)


def verify_program(prog: CompiledProgram) -> VerifyResult:
    """Machine-checkable legality report for one rewritten program.

    Checks that every branch target is in range, loop pairs nest and
    back-link correctly, operand ids index into the descriptor tables
    and each loop's ``get_pcs`` matches a fresh lexical recount.
    """
    out = VerifyResult()
    n = len(prog.instructions)
    n_arrays = len(prog.array_table)
    n_indices = len(prog.index_table)

    def check_operand(pc: int, operand) -> None:
        if not isinstance(operand, BlockOperand):
            out.problems.append(f"pc {pc}: expected BlockOperand, got {operand!r}")
            return
        if not 0 <= operand.array_id < n_arrays:
            out.problems.append(f"pc {pc}: array id {operand.array_id} out of range")
        for ix in operand.index_ids:
            if not 0 <= ix < n_indices:
                out.problems.append(f"pc {pc}: index id {ix} out of range")

    stack: list[tuple[str, int]] = []
    for pc, instr in enumerate(prog.instructions):
        op = instr.op
        if op == Op.JUMP and not 0 <= instr.args[0] <= n:
            out.problems.append(f"pc {pc}: JUMP target {instr.args[0]} out of range")
        elif op == Op.BRANCH_FALSE and not 0 <= instr.args[1] <= n:
            out.problems.append(
                f"pc {pc}: BRANCH_FALSE target {instr.args[1]} out of range"
            )
        elif op == Op.CALL and not 0 <= instr.args[0] < n:
            out.problems.append(f"pc {pc}: CALL entry {instr.args[0]} out of range")
        elif op in _LOOP_PAIRS:
            stack.append((op, pc))
        elif op in _LOOP_ENDS:
            if not stack or stack[-1][0] != _LOOP_ENDS[op]:
                out.problems.append(f"pc {pc}: {op} without matching start")
                continue
            start_op, start_pc = stack.pop()
            start = prog.instructions[start_pc]
            if op == Op.PARDO_END:
                if instr.args[0] != start_pc:
                    out.problems.append(
                        f"pc {pc}: PARDO_END back link {instr.args[0]} != {start_pc}"
                    )
                if start.args[3] != pc + 1:
                    out.problems.append(
                        f"pc {start_pc}: PARDO_START exit {start.args[3]} != {pc + 1}"
                    )
            else:
                if instr.args[1] != start_pc + 1:
                    out.problems.append(
                        f"pc {pc}: {op} body start {instr.args[1]} != {start_pc + 1}"
                    )
                if start.args[1] != pc + 1:
                    out.problems.append(
                        f"pc {start_pc}: {start_op} exit {start.args[1]} != {pc + 1}"
                    )
        elif op in (Op.GET, Op.REQUEST, Op.PREFETCH, Op.ALLOCATE,
                    Op.DEALLOCATE, Op.COMPUTE_INTEGRALS):
            check_operand(pc, instr.args[0])
        elif op in (Op.PUT, Op.PREPARE):
            check_operand(pc, instr.args[0])
            check_operand(pc, instr.args[2])
        elif op in (Op.CREATE, Op.DELETE, Op.BLOCKS_TO_LIST, Op.LIST_TO_BLOCKS):
            if not 0 <= instr.args[0] < n_arrays:
                out.problems.append(
                    f"pc {pc}: array id {instr.args[0]} out of range"
                )
        elif op == Op.CONTRACT_FUSED:
            check_operand(pc, instr.args[0])
            check_operand(pc, instr.args[2])
            check_operand(pc, instr.args[3])
            if instr.args[1] not in ("=", "+=", "-="):
                out.problems.append(
                    f"pc {pc}: bad CONTRACT_FUSED op {instr.args[1]!r}"
                )
    if stack:
        out.problems.append(
            f"unterminated loops at pcs {[pc for _, pc in stack]}"
        )

    # get_pcs must equal a fresh lexical recount
    recount: dict[int, list[int]] = {}
    open_loops: list[int] = []
    for pc, instr in enumerate(prog.instructions):
        if instr.op in _LOOP_PAIRS:
            open_loops.append(pc)
            recount[pc] = []
        elif instr.op in _LOOP_ENDS and open_loops:
            open_loops.pop()
        elif instr.op in _GETLIKE:
            for start_pc in open_loops:
                recount[start_pc].append(pc)
    for start_pc, pcs in recount.items():
        instr = prog.instructions[start_pc]
        slot = 4 if instr.op == Op.PARDO_START else 2
        if tuple(instr.args[slot]) != tuple(pcs):
            out.problems.append(
                f"pc {start_pc}: stale get_pcs {instr.args[slot]} != {tuple(pcs)}"
            )
    return out
