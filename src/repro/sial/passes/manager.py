"""The pass manager: runs rewrite passes and collects legality evidence.

A *pass* is a callable ``(CompiledProgram) -> (CompiledProgram, PassReport)``
registered under a stable name.  :class:`PassManager` runs a pipeline of
them, verifying the structural invariants of the program after every
pass (see :func:`~.rewrite.verify_program`) and accumulating a
:class:`PipelineReport` -- a picklable record of what each pass did
(instruction counts before/after, per-pass notes, verification result)
that travels on ``CompiledProgram.opt_report`` into ``RunResult.stats``.

A pass that breaks a structural invariant aborts the pipeline with
:class:`ValueError` rather than shipping a corrupt program; bitwise
result identity with ``-O0`` is enforced separately by the differential
harness in ``tests/sial/test_passes_differential.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..bytecode import CompiledProgram
from .rewrite import verify_program

__all__ = ["PassReport", "PipelineReport", "PassManager"]


@dataclass
class PassReport:
    """What one pass did to one program (picklable)."""

    name: str
    instructions_before: int = 0
    instructions_after: int = 0
    removed: int = 0
    inserted: int = 0
    #: free-form pass-specific facts ("folded 3 rpn ops", ...)
    notes: list[str] = field(default_factory=list)
    verified: bool = True

    @property
    def delta(self) -> int:
        return self.instructions_after - self.instructions_before


@dataclass
class PipelineReport:
    """Accumulated evidence for one pipeline run (picklable)."""

    level: int
    passes: list[PassReport] = field(default_factory=list)

    @property
    def instructions_before(self) -> int:
        return self.passes[0].instructions_before if self.passes else 0

    @property
    def instructions_after(self) -> int:
        return self.passes[-1].instructions_after if self.passes else 0

    def counters(self) -> dict[str, int]:
        """Flat ``opt_*`` counters for ``RunResult.stats``."""
        out = {
            "opt_level": self.level,
            "opt_instructions_before": self.instructions_before,
            "opt_instructions_after": self.instructions_after,
        }
        for rep in self.passes:
            out[f"opt_{rep.name}_removed"] = rep.removed
            out[f"opt_{rep.name}_inserted"] = rep.inserted
        return out

    def render(self) -> str:
        lines = [f"pass pipeline at -O{self.level}:"]
        for rep in self.passes:
            note = f"  ({'; '.join(rep.notes)})" if rep.notes else ""
            lines.append(
                f"  {rep.name:<18s} {rep.instructions_before:4d} -> "
                f"{rep.instructions_after:4d} instrs "
                f"(-{rep.removed} +{rep.inserted}){note}"
            )
        lines.append(
            f"  total              {self.instructions_before:4d} -> "
            f"{self.instructions_after:4d} instrs"
        )
        return "\n".join(lines)


Pass = Callable[[CompiledProgram], tuple[CompiledProgram, PassReport]]


class PassManager:
    """Runs an ordered pipeline of verified rewrite passes."""

    def __init__(self, level: int) -> None:
        self.level = level
        self._passes: list[tuple[str, Pass]] = []

    def add(self, name: str, fn: Pass) -> "PassManager":
        self._passes.append((name, fn))
        return self

    @property
    def passes(self) -> list[tuple[str, Pass]]:
        return list(self._passes)

    def run(self, prog: CompiledProgram) -> CompiledProgram:
        report = PipelineReport(level=self.level)
        for name, fn in self._passes:
            before = len(prog.instructions)
            prog, pass_report = fn(prog)
            pass_report.name = name
            pass_report.instructions_before = before
            pass_report.instructions_after = len(prog.instructions)
            verdict = verify_program(prog)
            pass_report.verified = bool(verdict)
            report.passes.append(pass_report)
            if not verdict:
                raise ValueError(
                    f"optimizer pass {name!r} broke the program:\n"
                    + verdict.render()
                )
        prog.opt_level = self.level
        prog.opt_report = report
        return prog
