"""Constant folding and deduplication of RPN scalar programs.

Folding evaluates constant subexpressions of an RPN program at compile
time with the *same* Python float arithmetic :func:`evaluate_rpn` uses
at run time, so the folded program is bitwise-identical by
construction.  Only number-number operations fold; ``x / 0`` is left
alone so a run-time ``ZeroDivisionError`` still happens exactly where
the unoptimized program raised it.

Dedup then interns equal RPN tuples program-wide (instruction operands
and compiled conditions alike), so the runtime's constant-RPN memo --
which is keyed by tuple identity -- hits once per distinct expression
instead of once per occurrence.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from ..bytecode import CompiledCondition, CompiledProgram, Op
from .manager import PassReport

__all__ = ["fold_constants"]

_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}

_RPN_TAGS = {"num", "scalar", "symbolic", "index", "+", "-", "*", "/", "neg"}


def _is_rpn(arg) -> bool:
    return (
        isinstance(arg, tuple)
        and len(arg) > 0
        and all(
            isinstance(item, tuple) and len(item) >= 1 and item[0] in _RPN_TAGS
            for item in arg
        )
    )


def fold_rpn(rpn: tuple) -> tuple:
    """Fold constant subexpressions; returns the input when nothing folds.

    Simulates the evaluation stack symbolically: each slot is either a
    known number or an opaque item run, and an operator over two known
    numbers becomes one ``('num', value)`` item.
    """
    # stack of (items, const_value_or_None)
    stack: list[tuple[tuple, object]] = []
    for item in rpn:
        tag = item[0]
        if tag == "num":
            stack.append(((item,), item[1]))
        elif tag in ("scalar", "symbolic", "index"):
            stack.append(((item,), None))
        elif tag == "neg":
            if not stack:
                return rpn  # malformed; leave for the runtime to report
            items, value = stack.pop()
            if value is not None:
                folded = -value
                stack.append(((("num", folded),), folded))
            else:
                stack.append((items + (item,), None))
        else:
            if len(stack) < 2:
                return rpn
            b_items, b_val = stack.pop()
            a_items, a_val = stack.pop()
            if (
                a_val is not None
                and b_val is not None
                and not (tag == "/" and b_val == 0)
            ):
                folded = _BINOPS[tag](a_val, b_val)
                stack.append(((("num", folded),), folded))
            else:
                stack.append((a_items + b_items + (item,), None))
    if len(stack) != 1:
        return rpn
    out = stack[0][0]
    return out if out != rpn else rpn


def fold_constants(prog: CompiledProgram) -> tuple[CompiledProgram, PassReport]:
    report = PassReport(name="constfold")
    folded = 0
    interned: dict[tuple, tuple] = {}

    def intern(rpn: tuple) -> tuple:
        return interned.setdefault(rpn, rpn)

    def fix(arg):
        nonlocal folded
        if isinstance(arg, CompiledCondition):
            return CompiledCondition(
                arg.op, fix(arg.left_rpn), fix(arg.right_rpn)
            )
        if _is_rpn(arg):
            new = fold_rpn(arg)
            if new is not arg:
                folded += 1
            return intern(new)
        if isinstance(arg, tuple):
            return tuple(fix(a) for a in arg)
        return arg

    instrs = []
    changed = 0
    for instr in prog.instructions:
        # EXECUTE argument specs are (kind, value) pairs the fold walk
        # could misread as one-item RPNs; user superinstructions see
        # their arguments verbatim, so leave them untouched
        if instr.op == Op.EXECUTE:
            instrs.append(instr)
            continue
        new_args = fix(instr.args)
        if new_args != instr.args:
            changed += 1
        instrs.append(dc_replace(instr, args=new_args))

    report.notes.append(f"folded {folded} expressions in {changed} instrs")
    report.notes.append(
        f"{len(interned)} distinct RPN programs after interning"
    )
    out = CompiledProgram(
        name=prog.name,
        instructions=instrs,
        index_table=prog.index_table,
        array_table=prog.array_table,
        scalar_table=prog.scalar_table,
        symbolic_table=prog.symbolic_table,
        proc_entries=dict(prog.proc_entries),
        source=prog.source,
        opt_level=prog.opt_level,
        opt_report=prog.opt_report,
    )
    return out, report
