"""Barrier coalescing, proven safe by the static race detector.

A ``sip_barrier`` (or ``server_barrier``) is redundant when the two
phases it separates already commute: no access before it conflicts with
an access after it.  That is exactly the question the race detector's
phase segmentation answers, so instead of a bespoke (and inevitably
weaker) dependence analysis, the pass *reuses the checker as an
oracle*: re-run :func:`~..racecheck.check_races` with the candidate
barrier's source location in ``ignore_barriers`` -- which merges the
two phases -- and remove the barrier only when the merged-phase run
reports **no diagnostic beyond the baseline** run's.  A barrier whose
removal could reorder a write against a conflicting access would
produce a new read-write/write-write diagnostic in the merged run and
is kept.

Conservatisms: programs without source text (hand-built
``CompiledProgram`` objects) are skipped, as are barriers the compiler
emitted without a source location; barriers are tested one at a time
against the original baseline (greedy, but each accepted removal
re-enters the accepted set so compound removals are re-proven
together); a program whose *baseline* already has diagnostics only
drops barriers that add nothing to the existing diagnostic set.
"""

from __future__ import annotations

from ..bytecode import CompiledProgram, Op
from .manager import PassReport
from .rewrite import Rewriter

__all__ = ["coalesce_barriers"]

_BARRIER_OPS = (Op.SIP_BARRIER, Op.SERVER_BARRIER)


def _diag_keys(report) -> set[tuple]:
    return {
        (d.kind, d.array, str(d.location), str(d.related))
        for d in report.diagnostics
    }


def coalesce_barriers(prog: CompiledProgram) -> tuple[CompiledProgram, PassReport]:
    report = PassReport(name="barriers")

    candidates = [
        (pc, instr.location)
        for pc, instr in enumerate(prog.instructions)
        if instr.op in _BARRIER_OPS and instr.location is not None
    ]
    if not candidates or not prog.source:
        report.notes.append("no provable barriers (no source or none present)")
        return prog, report

    from ..analyzer import analyze
    from ..errors import SialError
    from ..parser import parse
    from ..racecheck import check_races

    try:
        analyzed = analyze(parse(prog.source, prog.name), prog.source)
    except SialError:
        report.notes.append("source no longer analyzable; pass skipped")
        return prog, report

    baseline = _diag_keys(check_races(analyzed))
    accepted: set[tuple[int, int]] = set()
    removed_pcs: list[int] = []
    for pc, loc in candidates:
        trial = accepted | {(loc.line, loc.column)}
        merged = check_races(analyzed, ignore_barriers=frozenset(trial))
        if _diag_keys(merged) <= baseline:
            accepted = trial
            removed_pcs.append(pc)

    if removed_pcs:
        rw = Rewriter(prog)
        for pc, instr in enumerate(prog.instructions):
            # every instruction compiled from an accepted source barrier
            # goes (one source line can only hold one barrier statement)
            if instr.op in _BARRIER_OPS and instr.location is not None and (
                instr.location.line, instr.location.column
            ) in accepted:
                rw.delete(pc)
                if pc not in removed_pcs:
                    removed_pcs.append(pc)
        prog = rw.apply()

    report.removed = len(removed_pcs)
    report.notes.append(
        f"removed {len(removed_pcs)} of {len(candidates)} barriers "
        "(race-check proven redundant)"
    )
    return prog, report
