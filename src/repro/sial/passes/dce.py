"""Dead-instruction and dead-temp-array elimination.

An instruction is dead when it only writes blocks of a ``temp`` array
that no other instruction ever reads, and its sources are free of
communication side effects (numbers, or blocks of worker-local
``temp``/``local``/``static`` arrays).  Distributed/served reads are
never deleted -- a ``GET`` both communicates and feeds the sanitizer,
so removing one could change traffic accounting or a verdict.

Legality argument: a write to a never-read temp block is observable
only through (a) the block's contents, which nothing reads, (b) memory
accounting and simulated time, which the bitwise contract does not
cover, and (c) errors the instruction itself could raise; restricting
sources to local kinds removes the remote-error cases, and a local
source read cannot raise unless the *kept* program would already have
raised at its own producer.  Scalars are never dead (``RunResult``
reports every scalar), so scalar instructions are untouched.

Runs to a fixpoint -- deleting ``tmp2 = tmp1 * x`` can make ``tmp1``
dead -- then prunes array-table descriptors with zero remaining
references, renumbering ids everywhere (contraction fusion leaves its
virtual temps fully unreferenced, and this is where they disappear).
"""

from __future__ import annotations

from ..bytecode import BlockOperand, CompiledProgram, Op
from .manager import PassReport
from .rewrite import Rewriter, remove_arrays

__all__ = ["eliminate_dead"]

#: kinds whose blocks live on the executing worker; reading them has no
#: communication side effects
_LOCAL_KINDS = ("temp", "local", "static")

#: (write-operand arg positions, read-operand arg positions) for the
#: pure block-compute instructions DCE may delete
_COMPUTE_OPS = {
    Op.FILL: ((0,), ()),
    Op.COPY: ((0,), (1,)),
    Op.NEGATE: ((0,), (1,)),
    Op.SCALE: ((0,), (2,)),
    Op.ADDSUB: ((0,), (2, 3)),
    Op.CONTRACT: ((0,), (2, 3)),
    Op.CONTRACT_FUSED: ((0,), (2, 3)),
    Op.ACCUM: ((0,), (2,)),
    Op.SCALE_INPLACE: ((0,), (0,)),  # read-modify-write
}


def _operands(arg):
    """Every BlockOperand inside one (possibly nested) argument."""
    if isinstance(arg, BlockOperand):
        yield arg
    elif isinstance(arg, (tuple, list)):
        for item in arg:
            yield from _operands(item)


def _read_array_ids(prog: CompiledProgram) -> set[int]:
    """Arrays some instruction may read (conservatively)."""
    reads: set[int] = set()
    for instr in prog.instructions:
        op = instr.op
        spec = _COMPUTE_OPS.get(op)
        if spec is not None:
            _, read_slots = spec
            for slot in read_slots:
                reads.add(instr.args[slot].array_id)
            # accumulate forms read their destination too
            write_op = instr.args[1] if op in (
                Op.FILL, Op.SCALE, Op.ACCUM, Op.CONTRACT, Op.CONTRACT_FUSED
            ) else "="
            if write_op != "=" or op == Op.SCALE_INPLACE:
                reads.add(instr.args[0].array_id)
            continue
        # everything else: every referenced array counts as read
        # (EXECUTE may do anything with its blocks; PUT/PREPARE read
        # their source; GET/REQUEST materialize reads; ALLOCATE /
        # DEALLOCATE / COMPUTE_INTEGRALS / ADDSUB dst slices etc. are
        # kept conservative)
        for operand in _operands(instr.args):
            reads.add(operand.array_id)
        if op in (Op.CREATE, Op.DELETE, Op.BLOCKS_TO_LIST, Op.LIST_TO_BLOCKS):
            reads.add(instr.args[0])
    return reads


def _sources_are_local(prog: CompiledProgram, instr) -> bool:
    op = instr.op
    _, read_slots = _COMPUTE_OPS[op]
    for slot in read_slots:
        kind = prog.array_table[instr.args[slot].array_id].kind
        if kind not in _LOCAL_KINDS:
            return False
    return True


def eliminate_dead(prog: CompiledProgram) -> tuple[CompiledProgram, PassReport]:
    report = PassReport(name="dce")
    removed_total = 0
    while True:
        reads = _read_array_ids(prog)
        rw = Rewriter(prog)
        removed = 0
        for pc, instr in enumerate(prog.instructions):
            spec = _COMPUTE_OPS.get(instr.op)
            if spec is None:
                continue
            dst = instr.args[0]
            desc = prog.array_table[dst.array_id]
            if desc.kind != "temp" or dst.array_id in reads:
                continue
            if not _sources_are_local(prog, instr):
                continue
            rw.delete(pc)
            removed += 1
        if not removed:
            break
        prog = rw.apply()
        removed_total += removed

    # prune array descriptors nothing references any more
    referenced: set[int] = set()
    for instr in prog.instructions:
        for operand in _operands(instr.args):
            referenced.add(operand.array_id)
        if instr.op in (
            Op.CREATE, Op.DELETE, Op.BLOCKS_TO_LIST, Op.LIST_TO_BLOCKS
        ):
            referenced.add(instr.args[0])
    dead_arrays = {
        array_id
        for array_id, desc in enumerate(prog.array_table)
        if desc.kind == "temp" and array_id not in referenced
    }
    if dead_arrays:
        prog = remove_arrays(prog, dead_arrays)

    report.removed = removed_total
    report.notes.append(
        f"dropped {removed_total} dead writes, "
        f"{len(dead_arrays)} dead temp arrays"
    )
    return prog, report
