"""Contraction fusion: collapse ``tmp = a*b; c (+|-)= [k*] tmp`` pairs.

The SIAL idiom for an accumulated contraction materializes the product
in a ``temp`` block and folds it into the accumulator on the next line::

    tmp(i,j) = a(i,k) * b(k,j)
    c(i,j) += 0.5 * tmp(i,j)

The pass rewrites the producer into one
:data:`~..bytecode.Op.CONTRACT_FUSED` super instruction -- a fused
GEMM-accumulate whose kernel computes the product into scratch, scales
it, and applies it to ``c`` directly -- and deletes the consumer.  The
temp's descriptor disappears in the DCE pass that follows.

Bitwise identity holds because the fused kernel runs *the same two
numpy expressions in the same order* as the unfused pair: the
contraction kernel's plan/einsum with ``=`` into a scratch buffer of
the temp's exact shape, then the consumer's transpose/scale/apply on
the destination (see ``Backend.fused_contract``).  Float non-
associativity is therefore never exercised.

Legality is *global per temp array*: every occurrence of the temp
anywhere in the program must belong to some fused pair, otherwise a
third reader (or a superinstruction) could observe the block the fused
form never writes, and the whole temp is left alone.  A consumer is
only paired when it immediately follows its producer with no branch
landing between them, reads the whole temp block (identical index
tuple, no slicing), and the destination covers the same indices.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from ..bytecode import BlockOperand, CompiledProgram, Instr, Op
from .dce import _operands
from .manager import PassReport
from .rewrite import Rewriter, jump_targets

__all__ = ["fuse_contractions"]


def _pair_at(prog: CompiledProgram, pc: int, targets: set[int]):
    """The fused instruction for the (producer, consumer) pair at pc.

    Returns ``(fused_instr, tmp_operand)`` or None.
    """
    producer = prog.instructions[pc]
    if producer.op != Op.CONTRACT or producer.args[1] != "=":
        return None
    tmp_op = producer.args[0]
    if prog.array_table[tmp_op.array_id].kind != "temp":
        return None
    if len(set(tmp_op.index_ids)) != len(tmp_op.index_ids):
        return None  # diagonal write; the fused kernel has no slice path
    if pc + 1 >= len(prog.instructions) or pc + 1 in targets:
        return None  # a branch may land between producer and consumer
    consumer = prog.instructions[pc + 1]

    # consumer forms: ACCUM c ±= tmp | SCALE c op= k*tmp | COPY c = tmp
    if consumer.op == Op.ACCUM:
        dst, op2, src, factor = consumer.args[0], consumer.args[1], consumer.args[2], None
    elif consumer.op == Op.SCALE:
        dst, op2, src, factor = consumer.args[0], consumer.args[1], consumer.args[2], consumer.args[3]
    elif consumer.op == Op.COPY:
        dst, op2, src, factor = consumer.args[0], "=", consumer.args[1], None
    else:
        return None
    if src != tmp_op:
        return None  # must read the temp exactly as written
    if dst.array_id == tmp_op.array_id:
        return None
    if set(dst.index_ids) != set(tmp_op.index_ids):
        return None
    if len(set(dst.index_ids)) != len(dst.index_ids):
        return None

    fused = Instr(
        op=Op.CONTRACT_FUSED,
        args=(
            dst,
            op2,
            producer.args[2],
            producer.args[3],
            tmp_op.index_ids,
            factor,
        ),
        location=producer.location,
    )
    return fused, tmp_op


def fuse_contractions(prog: CompiledProgram) -> tuple[CompiledProgram, PassReport]:
    report = PassReport(name="fuse")
    targets = jump_targets(prog)

    # candidate pairs, keyed by producer pc
    pairs: dict[int, tuple[Instr, BlockOperand]] = {}
    for pc in range(len(prog.instructions)):
        found = _pair_at(prog, pc, targets)
        if found is not None:
            pairs[pc] = found

    # global legality: every reference to a fused temp must be a
    # sanctioned pair member (its producer dst or its consumer src)
    sanctioned: dict[int, set[int]] = {}  # array id -> {producer pcs}
    for pc, (_, tmp_op) in pairs.items():
        sanctioned.setdefault(tmp_op.array_id, set()).add(pc)
    for array_id, producer_pcs in list(sanctioned.items()):
        member_pcs = set(producer_pcs) | {pc + 1 for pc in producer_pcs}
        for pc, instr in enumerate(prog.instructions):
            if pc in member_pcs:
                continue
            refs = any(
                operand.array_id == array_id
                for operand in _operands(instr.args)
            )
            if instr.op in (
                Op.CREATE, Op.DELETE, Op.BLOCKS_TO_LIST, Op.LIST_TO_BLOCKS
            ):
                refs = refs or instr.args[0] == array_id
            if refs:
                del sanctioned[array_id]
                break

    rw = Rewriter(prog)
    fused = 0
    for pc, (fused_instr, tmp_op) in pairs.items():
        if tmp_op.array_id not in sanctioned:
            continue
        rw.replace(pc, fused_instr)
        rw.delete(pc + 1)
        fused += 1

    report.removed = fused
    report.notes.append(f"fused {fused} contract+apply pairs")
    prog = rw.apply() if rw.dirty else prog
    return prog, report
