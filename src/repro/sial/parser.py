"""Recursive-descent parser for SIAL.

Grammar sketch (newline-terminated statements; keywords case-insensitive)::

    program   := 'sial' IDENT NL item* 'endsial' [IDENT]
    item      := decl NL | stmt NL
    decl      := indexkind IDENT '=' expr ',' expr
               | 'subindex' IDENT 'of' IDENT
               | arraykind IDENT '(' identlist ')'
               | 'scalar' IDENT | 'symbolic' IDENT
               | 'proc' IDENT NL stmt* 'endproc' [IDENT]
    stmt      := 'pardo' identlist whereclause* NL stmt* 'endpardo' [identlist]
               | 'do' IDENT ['in' IDENT] NL stmt* 'enddo' [IDENT]
               | 'if' cond NL stmt* ['else' NL stmt*] 'endif'
               | 'call' IDENT
               | 'get' blockref | 'request' blockref
               | ('put'|'prepare') blockref ('='|'+=') blockref
               | ('create'|'delete') IDENT
               | ('allocate'|'deallocate') blockref
               | 'compute_integrals' blockref
               | 'execute' IDENT arg*
               | 'collective' IDENT
               | 'sip_barrier' | 'server_barrier'
               | ('blocks_to_list'|'list_to_blocks') IDENT
               | 'checkpoint'
               | lhs ('='|'+='|'-='|'*=') expr          (assignment)
    expr      := addexpr ; usual precedence + - then * /; unary -
    blockref  := IDENT '(' identlist ')'
    cond      := operand relop operand
"""

from __future__ import annotations

from typing import Optional

from . import ast_nodes as ast
from .errors import ParseError, SourceLocation
from .lexer import ARRAY_KINDS, INDEX_KINDS, Token, TokenKind, tokenize

__all__ = ["parse"]

_RELOPS = ("==", "!=", "<", "<=", ">", ">=")
_ASSIGN_OPS = ("=", "+=", "-=", "*=")


def parse(source: str, filename: str = "<sial>") -> ast.Program:
    """Parse SIAL source text into a :class:`~repro.sial.ast_nodes.Program`."""
    return _Parser(source, filename).parse_program()


class _Parser:
    def __init__(self, source: str, filename: str) -> None:
        self.source = source
        self.filename = filename
        self.tokens = tokenize(source, filename)
        self.pos = 0

    # -- token helpers -----------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != TokenKind.EOF:
            self.pos += 1
        return tok

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def check_keyword(self, *names: str) -> bool:
        tok = self.peek()
        return tok.kind == TokenKind.KEYWORD and tok.text in names

    def match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None, what: str = "") -> Token:
        if self.check(kind, text):
            return self.advance()
        tok = self.peek()
        wanted = what or (text or kind)
        found = tok.text or tok.kind
        raise ParseError(
            f"expected {wanted}, found {found!r}", tok.location, self.source
        )

    def expect_newline(self) -> None:
        if self.check(TokenKind.EOF):
            return
        self.expect(TokenKind.NEWLINE, what="end of statement")

    def skip_newlines(self) -> None:
        while self.match(TokenKind.NEWLINE):
            pass

    def error(self, message: str, loc: Optional[SourceLocation] = None) -> ParseError:
        if loc is None:
            loc = self.peek().location
        return ParseError(message, loc, self.source)

    # -- program -----------------------------------------------------------
    def parse_program(self) -> ast.Program:
        self.skip_newlines()
        start = self.expect(TokenKind.KEYWORD, "sial")
        name = self.expect(TokenKind.IDENT, what="program name").text
        self.expect_newline()
        decls: list[ast.Decl] = []
        body: list[ast.Stmt] = []
        self.skip_newlines()
        while not self.check_keyword("endsial"):
            if self.check(TokenKind.EOF):
                raise self.error("missing 'endsial'")
            item = self.parse_item()
            if isinstance(item, _DECL_TYPES):
                decls.append(item)
            else:
                body.append(item)
            self.skip_newlines()
        self.advance()  # endsial
        trailer = self.match(TokenKind.IDENT)
        if trailer is not None and trailer.text.lower() != name.lower():
            raise self.error(
                f"'endsial {trailer.text}' does not match 'sial {name}'",
                trailer.location,
            )
        self.skip_newlines()
        self.expect(TokenKind.EOF, what="end of file")
        return ast.Program(name=name, decls=decls, body=body, location=start.location)

    def parse_item(self):
        tok = self.peek()
        if tok.kind == TokenKind.KEYWORD:
            if tok.text in INDEX_KINDS:
                return self.parse_index_decl()
            if tok.text in ARRAY_KINDS:
                return self.parse_array_decl()
            if tok.text == "subindex":
                return self.parse_subindex_decl()
            if tok.text == "scalar":
                return self.parse_scalar_decl()
            if tok.text == "symbolic":
                return self.parse_symbolic_decl()
            if tok.text == "proc":
                return self.parse_proc_decl()
        return self.parse_stmt()

    # -- declarations --------------------------------------------------------
    def parse_index_decl(self) -> ast.IndexDecl:
        tok = self.advance()
        kind = INDEX_KINDS[tok.text]
        name = self.expect(TokenKind.IDENT, what="index name").text
        self.expect(TokenKind.OP, "=")
        lo = self.parse_expr()
        self.expect(TokenKind.OP, ",")
        hi = self.parse_expr()
        self.expect_newline()
        return ast.IndexDecl(name=name, kind=kind, lo=lo, hi=hi, location=tok.location)

    def parse_subindex_decl(self) -> ast.SubindexDecl:
        tok = self.advance()
        name = self.expect(TokenKind.IDENT, what="subindex name").text
        self.expect(TokenKind.KEYWORD, "of")
        super_name = self.expect(TokenKind.IDENT, what="super index name").text
        self.expect_newline()
        return ast.SubindexDecl(name=name, super_name=super_name, location=tok.location)

    def parse_array_decl(self) -> ast.ArrayDecl:
        tok = self.advance()
        name = self.expect(TokenKind.IDENT, what="array name").text
        self.expect(TokenKind.OP, "(")
        names = self.parse_ident_list()
        self.expect(TokenKind.OP, ")")
        self.expect_newline()
        return ast.ArrayDecl(
            name=name, kind=tok.text, index_names=tuple(names), location=tok.location
        )

    def parse_scalar_decl(self) -> ast.ScalarDecl:
        tok = self.advance()
        name = self.expect(TokenKind.IDENT, what="scalar name").text
        self.expect_newline()
        return ast.ScalarDecl(name=name, location=tok.location)

    def parse_symbolic_decl(self) -> ast.SymbolicDecl:
        tok = self.advance()
        name = self.expect(TokenKind.IDENT, what="constant name").text
        self.expect_newline()
        return ast.SymbolicDecl(name=name, location=tok.location)

    def parse_proc_decl(self) -> ast.ProcDecl:
        tok = self.advance()
        name = self.expect(TokenKind.IDENT, what="procedure name").text
        self.expect_newline()
        body = self.parse_block(("endproc",))
        self.advance()  # endproc
        trailer = self.match(TokenKind.IDENT)
        if trailer is not None and trailer.text.lower() != name.lower():
            raise self.error(
                f"'endproc {trailer.text}' does not match 'proc {name}'",
                trailer.location,
            )
        self.expect_newline()
        return ast.ProcDecl(name=name, body=body, location=tok.location)

    # -- statements ----------------------------------------------------------
    def parse_block(self, terminators: tuple[str, ...]) -> list[ast.Stmt]:
        """Parse statements until (but not consuming) a terminator keyword."""
        body: list[ast.Stmt] = []
        self.skip_newlines()
        while not self.check_keyword(*terminators):
            if self.check(TokenKind.EOF):
                raise self.error(f"missing {' or '.join(terminators)!r}")
            body.append(self.parse_stmt())
            self.skip_newlines()
        return body

    def parse_stmt(self) -> ast.Stmt:
        tok = self.peek()
        if tok.kind == TokenKind.KEYWORD:
            handler = {
                "pardo": self.parse_pardo,
                "do": self.parse_do,
                "if": self.parse_if,
                "call": self.parse_call,
                "get": self.parse_get,
                "request": self.parse_request,
                "put": self.parse_put,
                "prepare": self.parse_prepare,
                "create": self.parse_create,
                "delete": self.parse_delete,
                "allocate": self.parse_allocate,
                "deallocate": self.parse_deallocate,
                "compute_integrals": self.parse_compute_integrals,
                "execute": self.parse_execute,
                "collective": self.parse_collective,
                "sip_barrier": self.parse_barrier,
                "server_barrier": self.parse_barrier,
                "blocks_to_list": self.parse_blocks_to_list,
                "list_to_blocks": self.parse_list_to_blocks,
                "checkpoint": self.parse_checkpoint,
            }.get(tok.text)
            if handler is None:
                raise self.error(f"unexpected keyword {tok.text!r}")
            return handler()
        if tok.kind == TokenKind.IDENT:
            return self.parse_assignment()
        raise self.error(f"unexpected token {tok.text or tok.kind!r}")

    def parse_pardo(self) -> ast.Pardo:
        tok = self.advance()
        indices = self.parse_ident_list()
        where: list[ast.Condition] = []
        while self.check_keyword("where"):
            self.advance()
            where.append(self.parse_condition())
            while self.match(TokenKind.OP, ","):
                where.append(self.parse_condition())
        self.expect_newline()
        body = self.parse_block(("endpardo",))
        self.advance()  # endpardo
        trailer = []
        while self.check(TokenKind.IDENT):
            trailer.append(self.advance().text)
            if not self.match(TokenKind.OP, ","):
                break
        if trailer and [t.lower() for t in trailer] != [i.lower() for i in indices]:
            raise self.error(
                f"endpardo indices {trailer} do not match pardo indices {list(indices)}",
                tok.location,
            )
        self.expect_newline()
        return ast.Pardo(
            indices=tuple(indices), where=where, body=body, location=tok.location
        )

    def parse_do(self) -> ast.Stmt:
        tok = self.advance()
        index = self.expect(TokenKind.IDENT, what="loop index").text
        super_index = None
        if self.check_keyword("in"):
            self.advance()
            super_index = self.expect(TokenKind.IDENT, what="super index").text
        self.expect_newline()
        body = self.parse_block(("enddo",))
        self.advance()  # enddo
        trailer = self.match(TokenKind.IDENT)
        if trailer is not None and trailer.text.lower() != index.lower():
            raise self.error(
                f"'enddo {trailer.text}' does not match 'do {index}'", trailer.location
            )
        self.expect_newline()
        if super_index is not None:
            return ast.DoIn(
                subindex=index,
                super_index=super_index,
                body=body,
                location=tok.location,
            )
        return ast.Do(index=index, body=body, location=tok.location)

    def parse_if(self) -> ast.If:
        tok = self.advance()
        cond = self.parse_condition()
        self.expect_newline()
        then_body = self.parse_block(("else", "endif"))
        else_body: list[ast.Stmt] = []
        if self.check_keyword("else"):
            self.advance()
            self.expect_newline()
            else_body = self.parse_block(("endif",))
        self.advance()  # endif
        self.expect_newline()
        return ast.If(
            condition=cond,
            then_body=then_body,
            else_body=else_body,
            location=tok.location,
        )

    def parse_call(self) -> ast.Call:
        tok = self.advance()
        name = self.expect(TokenKind.IDENT, what="procedure name").text
        self.expect_newline()
        return ast.Call(name=name, location=tok.location)

    def parse_get(self) -> ast.Get:
        tok = self.advance()
        ref = self.parse_block_ref()
        self.expect_newline()
        return ast.Get(ref=ref, location=tok.location)

    def parse_request(self) -> ast.Request:
        tok = self.advance()
        ref = self.parse_block_ref()
        self.expect_newline()
        return ast.Request(ref=ref, location=tok.location)

    def _parse_put_like(self, cls):
        tok = self.advance()
        dst = self.parse_block_ref()
        op_tok = self.peek()
        if not (op_tok.kind == TokenKind.OP and op_tok.text in ("=", "+=")):
            raise self.error(
                f"{tok.text} requires '=' or '+=', found {op_tok.text!r}",
                op_tok.location,
            )
        self.advance()
        src = self.parse_block_ref()
        self.expect_newline()
        return cls(dst=dst, op=op_tok.text, src=src, location=tok.location)

    def parse_put(self) -> ast.Put:
        return self._parse_put_like(ast.Put)

    def parse_prepare(self) -> ast.Prepare:
        return self._parse_put_like(ast.Prepare)

    def parse_create(self) -> ast.Create:
        tok = self.advance()
        name = self.expect(TokenKind.IDENT, what="array name").text
        self.expect_newline()
        return ast.Create(array=name, location=tok.location)

    def parse_delete(self) -> ast.Delete:
        tok = self.advance()
        name = self.expect(TokenKind.IDENT, what="array name").text
        self.expect_newline()
        return ast.Delete(array=name, location=tok.location)

    def parse_allocate(self) -> ast.Allocate:
        tok = self.advance()
        ref = self.parse_block_ref()
        self.expect_newline()
        return ast.Allocate(ref=ref, location=tok.location)

    def parse_deallocate(self) -> ast.Deallocate:
        tok = self.advance()
        ref = self.parse_block_ref()
        self.expect_newline()
        return ast.Deallocate(ref=ref, location=tok.location)

    def parse_compute_integrals(self) -> ast.ComputeIntegrals:
        tok = self.advance()
        ref = self.parse_block_ref()
        self.expect_newline()
        return ast.ComputeIntegrals(ref=ref, location=tok.location)

    def parse_execute(self) -> ast.Execute:
        tok = self.advance()
        name = self.expect(TokenKind.IDENT, what="super instruction name").text
        args: list[ast.Expr] = []
        while not self.check(TokenKind.NEWLINE) and not self.check(TokenKind.EOF):
            args.append(self.parse_primary())
            self.match(TokenKind.OP, ",")
        self.expect_newline()
        return ast.Execute(name=name, args=tuple(args), location=tok.location)

    def parse_collective(self) -> ast.Collective:
        tok = self.advance()
        name = self.expect(TokenKind.IDENT, what="scalar name").text
        self.expect_newline()
        return ast.Collective(scalar=name, location=tok.location)

    def parse_barrier(self) -> ast.Barrier:
        tok = self.advance()
        self.expect_newline()
        kind = "sip" if tok.text == "sip_barrier" else "server"
        return ast.Barrier(kind=kind, location=tok.location)

    def parse_blocks_to_list(self) -> ast.BlocksToList:
        tok = self.advance()
        name = self.expect(TokenKind.IDENT, what="array name").text
        self.expect_newline()
        return ast.BlocksToList(array=name, location=tok.location)

    def parse_list_to_blocks(self) -> ast.ListToBlocks:
        tok = self.advance()
        name = self.expect(TokenKind.IDENT, what="array name").text
        self.expect_newline()
        return ast.ListToBlocks(array=name, location=tok.location)

    def parse_checkpoint(self) -> ast.Checkpoint:
        tok = self.advance()
        self.expect_newline()
        return ast.Checkpoint(location=tok.location)

    def parse_assignment(self) -> ast.Stmt:
        name_tok = self.expect(TokenKind.IDENT)
        if self.check(TokenKind.OP, "("):
            lhs = self.finish_block_ref(name_tok)
            op = self.parse_assign_op()
            rhs = self.parse_expr()
            self.expect_newline()
            return ast.BlockAssign(lhs=lhs, op=op, rhs=rhs, location=name_tok.location)
        op = self.parse_assign_op()
        rhs = self.parse_expr()
        self.expect_newline()
        return ast.ScalarAssign(
            name=name_tok.text, op=op, rhs=rhs, location=name_tok.location
        )

    def parse_assign_op(self) -> str:
        tok = self.peek()
        if tok.kind == TokenKind.OP and tok.text in _ASSIGN_OPS:
            self.advance()
            return tok.text
        raise self.error(f"expected assignment operator, found {tok.text!r}")

    # -- expressions -----------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        left = self.parse_term()
        while self.check(TokenKind.OP, "+") or self.check(TokenKind.OP, "-"):
            op_tok = self.advance()
            right = self.parse_term()
            left = ast.BinaryOp(
                op=op_tok.text, left=left, right=right, location=op_tok.location
            )
        return left

    def parse_term(self) -> ast.Expr:
        left = self.parse_unary()
        while self.check(TokenKind.OP, "*") or self.check(TokenKind.OP, "/"):
            op_tok = self.advance()
            right = self.parse_unary()
            left = ast.BinaryOp(
                op=op_tok.text, left=left, right=right, location=op_tok.location
            )
        return left

    def parse_unary(self) -> ast.Expr:
        if self.check(TokenKind.OP, "-"):
            tok = self.advance()
            return ast.UnaryOp(op="-", operand=self.parse_unary(), location=tok.location)
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == TokenKind.NUMBER:
            self.advance()
            return ast.NumberLit(value=float(tok.text), location=tok.location)
        if tok.kind == TokenKind.IDENT:
            self.advance()
            if self.check(TokenKind.OP, "("):
                return self.finish_block_ref(tok)
            return ast.ScalarRef(name=tok.text, location=tok.location)
        if self.match(TokenKind.OP, "("):
            inner = self.parse_expr()
            self.expect(TokenKind.OP, ")")
            return inner
        raise self.error(f"expected expression, found {tok.text or tok.kind!r}")

    def parse_block_ref(self) -> ast.BlockRef:
        name_tok = self.expect(TokenKind.IDENT, what="array name")
        return self.finish_block_ref(name_tok)

    def finish_block_ref(self, name_tok: Token) -> ast.BlockRef:
        self.expect(TokenKind.OP, "(")
        names = self.parse_ident_list()
        self.expect(TokenKind.OP, ")")
        return ast.BlockRef(
            array=name_tok.text, indices=tuple(names), location=name_tok.location
        )

    def parse_ident_list(self) -> list[str]:
        names = [self.expect(TokenKind.IDENT, what="identifier").text]
        while self.match(TokenKind.OP, ","):
            names.append(self.expect(TokenKind.IDENT, what="identifier").text)
        return names

    def parse_condition(self) -> ast.Condition:
        left = self.parse_expr()
        tok = self.peek()
        if not (tok.kind == TokenKind.OP and tok.text in _RELOPS):
            raise self.error(f"expected comparison operator, found {tok.text!r}")
        self.advance()
        right = self.parse_expr()
        return ast.Condition(op=tok.text, left=left, right=right, location=tok.location)


_DECL_TYPES = (
    ast.IndexDecl,
    ast.SubindexDecl,
    ast.ArrayDecl,
    ast.ScalarDecl,
    ast.SymbolicDecl,
    ast.ProcDecl,
)
