"""Tokenizer for SIAL source code.

SIAL is line-oriented and case-insensitive for keywords (we normalize
keywords to lower case; identifiers keep their spelling but compare
case-insensitively, as in Fortran-descended languages).  Comments run
from ``#`` to end of line.  Newlines are significant: they terminate
statements, so the lexer emits NEWLINE tokens (collapsing blank lines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import LexError, SourceLocation

__all__ = ["Token", "TokenKind", "tokenize", "KEYWORDS", "INDEX_KINDS", "ARRAY_KINDS"]


class TokenKind:
    """Token kind constants (plain strings for cheap comparison)."""

    IDENT = "IDENT"
    NUMBER = "NUMBER"
    KEYWORD = "KEYWORD"
    OP = "OP"
    NEWLINE = "NEWLINE"
    EOF = "EOF"


#: Index declaration keywords and the index *kind* they declare.  The
#: domain-specific kinds (atomic orbital, molecular orbital, ...) allow
#: the type system to check consistent usage (paper, Section IV-A).
INDEX_KINDS = {
    "aoindex": "ao",
    "moindex": "mo",
    "moaindex": "moa",
    "mobindex": "mob",
    "index": "simple",
    "laindex": "la",
}

#: Array kind keywords (paper, Section IV-A).
ARRAY_KINDS = ("static", "temp", "local", "distributed", "served")

KEYWORDS = frozenset(
    [
        "sial",
        "endsial",
        "pardo",
        "endpardo",
        "do",
        "enddo",
        "in",
        "where",
        "if",
        "else",
        "endif",
        "proc",
        "endproc",
        "call",
        "get",
        "put",
        "prepare",
        "request",
        "create",
        "delete",
        "allocate",
        "deallocate",
        "execute",
        "collective",
        "sip_barrier",
        "server_barrier",
        "subindex",
        "of",
        "scalar",
        "symbolic",
        "compute_integrals",
        "blocks_to_list",
        "list_to_blocks",
        "checkpoint",
        *INDEX_KINDS,
        *ARRAY_KINDS,
    ]
)

_TWO_CHAR_OPS = ("+=", "-=", "*=", "==", "!=", "<=", ">=")
_ONE_CHAR_OPS = "+-*/()=,<>"


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    location: SourceLocation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.location})"


def tokenize(source: str, filename: str = "<sial>") -> list[Token]:
    """Tokenize SIAL source, raising :class:`LexError` on bad input."""
    return list(_tokens(source, filename))


def _tokens(source: str, filename: str) -> Iterator[Token]:
    line_no = 0
    pending_newline = False
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("#", 1)[0]
        col = 0
        emitted_on_line = False
        n = len(line)
        while col < n:
            ch = line[col]
            if ch in " \t\r":
                col += 1
                continue
            loc = SourceLocation(line_no, col + 1, filename)
            if pending_newline and not emitted_on_line:
                # emit the newline separating this token from the
                # previous line's tokens
                yield Token(TokenKind.NEWLINE, "\n", loc)
                pending_newline = False
            if ch.isalpha() or ch == "_":
                start = col
                while col < n and (line[col].isalnum() or line[col] == "_"):
                    col += 1
                text = line[start:col]
                lowered = text.lower()
                if lowered in KEYWORDS:
                    yield Token(TokenKind.KEYWORD, lowered, loc)
                else:
                    yield Token(TokenKind.IDENT, text, loc)
            elif ch.isdigit() or (
                ch == "." and col + 1 < n and line[col + 1].isdigit()
            ):
                start = col
                while col < n and (line[col].isdigit() or line[col] == "."):
                    col += 1
                # exponent part: 1.0e-3
                if col < n and line[col] in "eE":
                    mark = col
                    col += 1
                    if col < n and line[col] in "+-":
                        col += 1
                    if col < n and line[col].isdigit():
                        while col < n and line[col].isdigit():
                            col += 1
                    else:
                        col = mark  # not an exponent after all
                text = line[start:col]
                if text.count(".") > 1:
                    raise LexError(f"malformed number {text!r}", loc, source)
                yield Token(TokenKind.NUMBER, text, loc)
            elif line[col : col + 2] in _TWO_CHAR_OPS:
                yield Token(TokenKind.OP, line[col : col + 2], loc)
                col += 2
            elif ch in _ONE_CHAR_OPS:
                yield Token(TokenKind.OP, ch, loc)
                col += 1
            else:
                raise LexError(f"unexpected character {ch!r}", loc, source)
            emitted_on_line = True
        if emitted_on_line:
            pending_newline = True
    eof_loc = SourceLocation(max(line_no, 1) + 1, 1, filename)
    if pending_newline:
        yield Token(TokenKind.NEWLINE, "\n", eof_loc)
    yield Token(TokenKind.EOF, "", eof_loc)
