"""Abstract syntax tree for SIAL programs.

The AST mirrors the paper's language surface (Section IV): declarations
of typed indices and array kinds, `pardo`/`do`/`do ... in` loops, block
data-movement statements (`get`/`put`/`request`/`prepare`), block
assignments whose right-hand sides are (restricted) block expressions,
scalar arithmetic, procedures, barriers, and utility statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .errors import SourceLocation

__all__ = [
    "Program",
    "IndexDecl",
    "SubindexDecl",
    "ArrayDecl",
    "ScalarDecl",
    "SymbolicDecl",
    "ProcDecl",
    "Pardo",
    "Do",
    "DoIn",
    "If",
    "Call",
    "Get",
    "Put",
    "Prepare",
    "Request",
    "Create",
    "Delete",
    "Allocate",
    "Deallocate",
    "ComputeIntegrals",
    "Execute",
    "Collective",
    "Barrier",
    "BlocksToList",
    "ListToBlocks",
    "Checkpoint",
    "BlockAssign",
    "ScalarAssign",
    "BlockRef",
    "ScalarRef",
    "NumberLit",
    "BinaryOp",
    "UnaryOp",
    "Condition",
    "Decl",
    "Stmt",
    "Expr",
]


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class NumberLit:
    value: float
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class ScalarRef:
    """Reference to a scalar variable, symbolic constant, or index value."""

    name: str
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class BlockRef:
    """``A(i, j, ...)`` -- one block of an array, selected by index vars."""

    array: str
    indices: tuple[str, ...]
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class BinaryOp:
    op: str  # '+', '-', '*', '/'
    left: "Expr"
    right: "Expr"
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class UnaryOp:
    op: str  # '-'
    operand: "Expr"
    location: Optional[SourceLocation] = None


Expr = Union[NumberLit, ScalarRef, BlockRef, BinaryOp, UnaryOp]


@dataclass(frozen=True)
class Condition:
    """A ``where`` clause or ``if`` condition: ``operand relop operand``."""

    op: str  # '==', '!=', '<', '<=', '>', '>='
    left: Expr
    right: Expr
    location: Optional[SourceLocation] = None


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class IndexDecl:
    name: str
    kind: str  # 'ao', 'mo', 'moa', 'mob', 'la', 'simple'
    lo: Expr
    hi: Expr
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class SubindexDecl:
    name: str
    super_name: str
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class ArrayDecl:
    name: str
    kind: str  # 'static', 'temp', 'local', 'distributed', 'served'
    index_names: tuple[str, ...]
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class ScalarDecl:
    name: str
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class SymbolicDecl:
    """A symbolic constant whose value is supplied at initialization."""

    name: str
    location: Optional[SourceLocation] = None


@dataclass
class ProcDecl:
    name: str
    body: list["Stmt"]
    location: Optional[SourceLocation] = None


Decl = Union[IndexDecl, SubindexDecl, ArrayDecl, ScalarDecl, SymbolicDecl, ProcDecl]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------
@dataclass
class Pardo:
    indices: tuple[str, ...]
    where: list[Condition]
    body: list["Stmt"]
    location: Optional[SourceLocation] = None


@dataclass
class Do:
    index: str
    body: list["Stmt"]
    location: Optional[SourceLocation] = None


@dataclass
class DoIn:
    """``do ii in i`` -- iterate subsegments of the current segment of i."""

    subindex: str
    super_index: str
    body: list["Stmt"]
    location: Optional[SourceLocation] = None


@dataclass
class If:
    condition: Condition
    then_body: list["Stmt"]
    else_body: list["Stmt"] = field(default_factory=list)
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Call:
    name: str
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Get:
    ref: BlockRef
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Put:
    dst: BlockRef
    op: str  # '=' or '+='
    src: BlockRef
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Prepare:
    dst: BlockRef
    op: str  # '=' or '+='
    src: BlockRef
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Request:
    ref: BlockRef
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Create:
    array: str
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Delete:
    array: str
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Allocate:
    ref: BlockRef
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Deallocate:
    ref: BlockRef
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class ComputeIntegrals:
    """Intrinsic super instruction: fill a block of V on demand."""

    ref: BlockRef
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Execute:
    """``execute name arg1 arg2 ...`` -- user super instruction."""

    name: str
    args: tuple[Expr, ...]
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Collective:
    """``collective s`` -- allreduce-sum scalar s over all workers."""

    scalar: str
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Barrier:
    kind: str  # 'sip' or 'server'
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class BlocksToList:
    array: str
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class ListToBlocks:
    array: str
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Checkpoint:
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class BlockAssign:
    lhs: BlockRef
    op: str  # '=', '+=', '-=', '*='
    rhs: Expr
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class ScalarAssign:
    name: str
    op: str  # '=', '+=', '-=', '*='
    rhs: Expr
    location: Optional[SourceLocation] = None


Stmt = Union[
    Pardo,
    Do,
    DoIn,
    If,
    Call,
    Get,
    Put,
    Prepare,
    Request,
    Create,
    Delete,
    Allocate,
    Deallocate,
    ComputeIntegrals,
    Execute,
    Collective,
    Barrier,
    BlocksToList,
    ListToBlocks,
    Checkpoint,
    BlockAssign,
    ScalarAssign,
]


@dataclass
class Program:
    name: str
    decls: list[Decl]
    body: list[Stmt]
    location: Optional[SourceLocation] = None

    @property
    def procs(self) -> dict[str, ProcDecl]:
        return {d.name.lower(): d for d in self.decls if isinstance(d, ProcDecl)}
