"""Compiler from the analyzed SIAL AST to SIA bytecode.

The translation is a straightforward single pass: loops become
START/END instruction pairs with explicit jump targets, `if` becomes a
conditional branch, block statements become one super instruction each
(the analyzer already guaranteed the single-operation property), and
procedures are compiled after the main body with call sites patched at
the end.

Every loop START instruction additionally carries the program counters
of the GET/REQUEST instructions inside its body; the SIP's lookahead
prefetcher uses these to issue block requests for upcoming iterations
(paper, Section V-A: "The SIP looks ahead and requests several blocks
that it expects will be needed soon").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from . import ast_nodes as ast
from .analyzer import (
    FORM_ADD,
    FORM_CONTRACT,
    FORM_COPY,
    FORM_FILL,
    FORM_NEGATE,
    FORM_SCALAR_RHS,
    FORM_SCALE,
    AnalyzedProgram,
    analyze,
)
from .bytecode import (
    ArrayDesc,
    BlockOperand,
    CompiledCondition,
    CompiledProgram,
    IndexDesc,
    Instr,
    Op,
)
from .errors import SemanticError, SourceLocation
from .parser import parse
from .symbols import (
    ArraySymbol,
    IndexSymbol,
    ScalarSymbol,
    SubindexSymbol,
    SymbolicSymbol,
)

__all__ = ["compile_program", "compile_source"]


def compile_source(
    source: str, filename: str = "<sial>", optimize: int = 0
) -> CompiledProgram:
    """Parse, analyze and compile SIAL source text.

    ``optimize`` selects the middle-end level (``-O0``..``-O2``, see
    :mod:`repro.sial.passes`); the default compiles verbatim.
    """
    program = parse(source, filename)
    analyzed = analyze(program, source)
    compiled = compile_program(analyzed)
    if optimize:
        from .passes import optimize_program  # local import: avoids a cycle

        compiled = optimize_program(compiled, optimize)
    return compiled


def compile_program(analyzed: AnalyzedProgram) -> CompiledProgram:
    return _Compiler(analyzed).compile()


@dataclass
class _PendingInstr:
    op: str
    args: list
    location: Optional[SourceLocation]


@dataclass
class _LoopFrame:
    """Collects GET/REQUEST pcs inside a loop for the prefetcher."""

    start_pc: int
    get_pcs: list[int] = field(default_factory=list)


class _Compiler:
    def __init__(self, analyzed: AnalyzedProgram) -> None:
        self.analyzed = analyzed
        self.program = analyzed.program
        self.symbols = analyzed.symbols
        self.source = self.symbols.source
        self.code: list[_PendingInstr] = []
        self.loop_stack: list[_LoopFrame] = []
        self.call_sites: list[tuple[int, str]] = []
        self.pardo_counter = 0

        # descriptor tables ------------------------------------------------
        self.index_names: list[str] = []
        self.index_ids: dict[str, int] = {}
        self.array_ids: dict[str, int] = {}
        self.scalar_ids: dict[str, int] = {}
        self.symbolic_ids: dict[str, int] = {}
        self.index_table: list[IndexDesc] = []
        self.array_table: list[ArrayDesc] = []
        self.scalar_table: list[str] = []
        self.symbolic_table: list[str] = []

    # -- table construction -------------------------------------------------
    def build_tables(self) -> None:
        for sym in self.symbols.symbolics():
            self.symbolic_ids[sym.name.lower()] = len(self.symbolic_table)
            self.symbolic_table.append(sym.name)
        for sym in self.symbols.scalars():
            self.scalar_ids[sym.name.lower()] = len(self.scalar_table)
            self.scalar_table.append(sym.name)
        # plain indices first, then subindices (they reference super ids)
        for sym in self.symbols.indices():
            self.index_ids[sym.name.lower()] = len(self.index_table)
            self.index_table.append(
                IndexDesc(
                    name=sym.name,
                    kind=sym.kind,
                    lo_rpn=self.compile_rpn(sym.lo),
                    hi_rpn=self.compile_rpn(sym.hi),
                )
            )
        for sym in self.symbols.subindices():
            super_id = self.index_ids[sym.super_name.lower()]
            sup = self.index_table[super_id]
            self.index_ids[sym.name.lower()] = len(self.index_table)
            self.index_table.append(
                IndexDesc(
                    name=sym.name,
                    kind=sym.kind,
                    lo_rpn=sup.lo_rpn,
                    hi_rpn=sup.hi_rpn,
                    super_id=super_id,
                )
            )
        for sym in self.symbols.arrays():
            self.array_ids[sym.name.lower()] = len(self.array_table)
            self.array_table.append(
                ArrayDesc(
                    name=sym.name,
                    kind=sym.kind,
                    index_ids=tuple(
                        self.index_ids[n.lower()] for n in sym.index_names
                    ),
                )
            )

    # -- main ------------------------------------------------------------------
    def compile(self) -> CompiledProgram:
        self.build_tables()
        self.emit_body(self.program.body)
        self.emit(Op.STOP, [])
        proc_entries: dict[str, int] = {}
        for name, decl in self.program.procs.items():
            proc_entries[name] = len(self.code)
            self.emit_body(decl.body)
            self.emit(Op.RETURN, [], decl.location)
        for pc, name in self.call_sites:
            entry = proc_entries.get(name.lower())
            if entry is None:  # pragma: no cover - analyzer catches this
                raise SemanticError(
                    f"undefined procedure {name!r}",
                    self.code[pc].location,
                    self.source,
                )
            self.code[pc].args = [entry, name]
        return CompiledProgram(
            name=self.program.name,
            instructions=[
                Instr(op=p.op, args=tuple(p.args), location=p.location)
                for p in self.code
            ],
            index_table=self.index_table,
            array_table=self.array_table,
            scalar_table=self.scalar_table,
            symbolic_table=self.symbolic_table,
            proc_entries=proc_entries,
            source=self.source,
        )

    # -- emission helpers ----------------------------------------------------
    def emit(
        self,
        op: str,
        args: list,
        location: Optional[SourceLocation] = None,
    ) -> int:
        pc = len(self.code)
        self.code.append(_PendingInstr(op=op, args=args, location=location))
        return pc

    def here(self) -> int:
        return len(self.code)

    def note_get(self, pc: int) -> None:
        for frame in self.loop_stack:
            frame.get_pcs.append(pc)

    # -- statement emission ----------------------------------------------------
    def emit_body(self, body: list[ast.Stmt]) -> None:
        for stmt in body:
            self.emit_stmt(stmt)

    def emit_stmt(self, stmt: ast.Stmt) -> None:
        method = getattr(self, f"emit_{type(stmt).__name__.lower()}")
        method(stmt)

    def emit_pardo(self, stmt: ast.Pardo) -> None:
        pardo_id = self.pardo_counter
        self.pardo_counter += 1
        index_ids = tuple(self.index_ids[n.lower()] for n in stmt.indices)
        conditions = tuple(self.compile_condition(c) for c in stmt.where)
        start = self.emit(
            Op.PARDO_START,
            [pardo_id, index_ids, conditions, None, ()],
            stmt.location,
        )
        frame = _LoopFrame(start_pc=start)
        self.loop_stack.append(frame)
        self.emit_body(stmt.body)
        self.loop_stack.pop()
        self.emit(Op.PARDO_END, [start], stmt.location)
        self.code[start].args[3] = self.here()  # exit pc
        self.code[start].args[4] = tuple(frame.get_pcs)

    def emit_do(self, stmt: ast.Do) -> None:
        index_id = self.index_ids[stmt.index.lower()]
        start = self.emit(Op.DO_START, [index_id, None, ()], stmt.location)
        frame = _LoopFrame(start_pc=start)
        self.loop_stack.append(frame)
        self.emit_body(stmt.body)
        self.loop_stack.pop()
        self.emit(Op.DO_END, [index_id, start + 1], stmt.location)
        self.code[start].args[1] = self.here()
        self.code[start].args[2] = tuple(frame.get_pcs)

    def emit_doin(self, stmt: ast.DoIn) -> None:
        sub_id = self.index_ids[stmt.subindex.lower()]
        start = self.emit(Op.DOIN_START, [sub_id, None, ()], stmt.location)
        frame = _LoopFrame(start_pc=start)
        self.loop_stack.append(frame)
        self.emit_body(stmt.body)
        self.loop_stack.pop()
        self.emit(Op.DOIN_END, [sub_id, start + 1], stmt.location)
        self.code[start].args[1] = self.here()
        self.code[start].args[2] = tuple(frame.get_pcs)

    def emit_if(self, stmt: ast.If) -> None:
        cond = self.compile_condition(stmt.condition)
        branch = self.emit(Op.BRANCH_FALSE, [cond, None], stmt.location)
        self.emit_body(stmt.then_body)
        if stmt.else_body:
            jump = self.emit(Op.JUMP, [None], stmt.location)
            self.code[branch].args[1] = self.here()
            self.emit_body(stmt.else_body)
            self.code[jump].args[0] = self.here()
        else:
            self.code[branch].args[1] = self.here()

    def emit_call(self, stmt: ast.Call) -> None:
        pc = self.emit(Op.CALL, [None, stmt.name], stmt.location)
        self.call_sites.append((pc, stmt.name))

    def emit_get(self, stmt: ast.Get) -> None:
        pc = self.emit(Op.GET, [self.block_operand(stmt.ref)], stmt.location)
        self.note_get(pc)

    def emit_request(self, stmt: ast.Request) -> None:
        pc = self.emit(Op.REQUEST, [self.block_operand(stmt.ref)], stmt.location)
        self.note_get(pc)

    def emit_put(self, stmt: ast.Put) -> None:
        self.emit(
            Op.PUT,
            [self.block_operand(stmt.dst), stmt.op, self.block_operand(stmt.src)],
            stmt.location,
        )

    def emit_prepare(self, stmt: ast.Prepare) -> None:
        self.emit(
            Op.PREPARE,
            [self.block_operand(stmt.dst), stmt.op, self.block_operand(stmt.src)],
            stmt.location,
        )

    def emit_create(self, stmt: ast.Create) -> None:
        self.emit(Op.CREATE, [self.array_ids[stmt.array.lower()]], stmt.location)

    def emit_delete(self, stmt: ast.Delete) -> None:
        self.emit(Op.DELETE, [self.array_ids[stmt.array.lower()]], stmt.location)

    def emit_allocate(self, stmt: ast.Allocate) -> None:
        self.emit(Op.ALLOCATE, [self.block_operand(stmt.ref)], stmt.location)

    def emit_deallocate(self, stmt: ast.Deallocate) -> None:
        self.emit(Op.DEALLOCATE, [self.block_operand(stmt.ref)], stmt.location)

    def emit_computeintegrals(self, stmt: ast.ComputeIntegrals) -> None:
        self.emit(Op.COMPUTE_INTEGRALS, [self.block_operand(stmt.ref)], stmt.location)

    def emit_execute(self, stmt: ast.Execute) -> None:
        args = []
        for arg in stmt.args:
            if isinstance(arg, ast.BlockRef):
                args.append(("block", self.block_operand(arg)))
            elif isinstance(arg, ast.NumberLit):
                args.append(("num", arg.value))
            elif isinstance(arg, ast.ScalarRef):
                args.append(self.resolve_name_item(arg))
            else:  # pragma: no cover - analyzer rejects
                raise SemanticError(
                    "bad execute argument", stmt.location, self.source
                )
        self.emit(Op.EXECUTE, [stmt.name, tuple(args)], stmt.location)

    def emit_collective(self, stmt: ast.Collective) -> None:
        self.emit(
            Op.COLLECTIVE, [self.scalar_ids[stmt.scalar.lower()]], stmt.location
        )

    def emit_barrier(self, stmt: ast.Barrier) -> None:
        op = Op.SIP_BARRIER if stmt.kind == "sip" else Op.SERVER_BARRIER
        self.emit(op, [], stmt.location)

    def emit_blockstolist(self, stmt: ast.BlocksToList) -> None:
        self.emit(
            Op.BLOCKS_TO_LIST, [self.array_ids[stmt.array.lower()]], stmt.location
        )

    def emit_listtoblocks(self, stmt: ast.ListToBlocks) -> None:
        self.emit(
            Op.LIST_TO_BLOCKS, [self.array_ids[stmt.array.lower()]], stmt.location
        )

    def emit_checkpoint(self, stmt: ast.Checkpoint) -> None:
        self.emit(Op.CHECKPOINT, [], stmt.location)

    def emit_blockassign(self, stmt: ast.BlockAssign) -> None:
        form = self.analyzed.assign_forms[id(stmt)]
        dst = self.block_operand(stmt.lhs)
        rhs = stmt.rhs
        loc = stmt.location
        if form == FORM_FILL:
            self.require_op(stmt, ("=", "+=", "-="))
            self.emit(Op.FILL, [dst, stmt.op, self.compile_rpn(rhs)], loc)
        elif form == FORM_COPY:
            assert isinstance(rhs, ast.BlockRef)
            src = self.block_operand(rhs)
            if stmt.op == "=":
                self.emit(Op.COPY, [dst, src], loc)
            else:
                self.require_op(stmt, ("+=", "-="))
                self.emit(Op.ACCUM, [dst, stmt.op, src], loc)
        elif form == FORM_NEGATE:
            self.require_op(stmt, ("=",))
            assert isinstance(rhs, ast.UnaryOp)
            self.emit(Op.NEGATE, [dst, self.block_operand(rhs.operand)], loc)
        elif form == FORM_SCALE:
            assert isinstance(rhs, ast.BinaryOp)
            block = rhs.left if isinstance(rhs.left, ast.BlockRef) else rhs.right
            scalar = rhs.right if isinstance(rhs.left, ast.BlockRef) else rhs.left
            self.require_op(stmt, ("=", "+=", "-="))
            self.emit(
                Op.SCALE,
                [dst, stmt.op, self.block_operand(block), self.compile_rpn(scalar)],
                loc,
            )
        elif form == FORM_CONTRACT:
            assert isinstance(rhs, ast.BinaryOp)
            self.require_op(stmt, ("=", "+=", "-="))
            self.emit(
                Op.CONTRACT,
                [
                    dst,
                    stmt.op,
                    self.block_operand(rhs.left),
                    self.block_operand(rhs.right),
                ],
                loc,
            )
        elif form == FORM_ADD:
            assert isinstance(rhs, ast.BinaryOp)
            self.require_op(stmt, ("=",))
            self.emit(
                Op.ADDSUB,
                [
                    dst,
                    rhs.op,
                    self.block_operand(rhs.left),
                    self.block_operand(rhs.right),
                ],
                loc,
            )
        elif form == FORM_SCALAR_RHS:
            self.require_op(stmt, ("*=",))
            self.emit(Op.SCALE_INPLACE, [dst, self.compile_rpn(rhs)], loc)
        else:  # pragma: no cover - analyzer covers all forms
            raise SemanticError(
                f"unknown assignment form {form!r}", stmt.location, self.source
            )

    def require_op(self, stmt: ast.BlockAssign, allowed: tuple[str, ...]) -> None:
        if stmt.op not in allowed:
            raise SemanticError(
                f"operator {stmt.op!r} is not supported for this block "
                f"operation (allowed: {', '.join(allowed)})",
                stmt.location,
                self.source,
            )

    def emit_scalarassign(self, stmt: ast.ScalarAssign) -> None:
        form = self.analyzed.assign_forms[id(stmt)]
        scalar_id = self.scalar_ids[stmt.name.lower()]
        if form == "scalar_contract":
            rhs = stmt.rhs
            assert isinstance(rhs, ast.BinaryOp)
            if stmt.op not in ("=", "+=", "-="):
                raise SemanticError(
                    f"operator {stmt.op!r} not supported for scalar contraction",
                    stmt.location,
                    self.source,
                )
            self.emit(
                Op.SCALAR_CONTRACT,
                [
                    scalar_id,
                    stmt.op,
                    self.block_operand(rhs.left),
                    self.block_operand(rhs.right),
                ],
                stmt.location,
            )
        else:
            self.emit(
                Op.SCALAR_ASSIGN,
                [scalar_id, stmt.op, self.compile_rpn(stmt.rhs)],
                stmt.location,
            )

    # -- operand helpers --------------------------------------------------------
    def block_operand(self, ref: ast.BlockRef) -> BlockOperand:
        return BlockOperand(
            array_id=self.array_ids[ref.array.lower()],
            index_ids=tuple(self.index_ids[n.lower()] for n in ref.indices),
        )

    def resolve_name_item(self, ref: ast.ScalarRef) -> tuple:
        sym = self.symbols.lookup(ref.name)
        if isinstance(sym, ScalarSymbol):
            return ("scalar", self.scalar_ids[ref.name.lower()])
        if isinstance(sym, SymbolicSymbol):
            return ("symbolic", self.symbolic_ids[ref.name.lower()])
        if isinstance(sym, (IndexSymbol, SubindexSymbol)):
            return ("index", self.index_ids[ref.name.lower()])
        if isinstance(sym, ArraySymbol):
            raise SemanticError(
                f"array {ref.name!r} used without indices",
                ref.location,
                self.source,
            )
        raise SemanticError(
            f"undeclared name {ref.name!r}", ref.location, self.source
        )

    def compile_rpn(self, expr: ast.Expr) -> tuple:
        out: list[tuple] = []
        self._rpn(expr, out)
        return tuple(out)

    def _rpn(self, expr: ast.Expr, out: list[tuple]) -> None:
        if isinstance(expr, ast.NumberLit):
            out.append(("num", expr.value))
        elif isinstance(expr, ast.ScalarRef):
            out.append(self.resolve_name_item(expr))
        elif isinstance(expr, ast.BinaryOp):
            self._rpn(expr.left, out)
            self._rpn(expr.right, out)
            out.append((expr.op,))
        elif isinstance(expr, ast.UnaryOp):
            self._rpn(expr.operand, out)
            out.append(("neg",))
        else:  # pragma: no cover - analyzer rejects blocks in scalar exprs
            raise SemanticError(
                "invalid scalar expression",
                getattr(expr, "location", None),
                self.source,
            )

    def compile_condition(self, cond: ast.Condition) -> CompiledCondition:
        return CompiledCondition(
            op=cond.op,
            left_rpn=self.compile_rpn(cond.left),
            right_rpn=self.compile_rpn(cond.right),
        )
