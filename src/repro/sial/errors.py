"""Diagnostics for the SIAL compiler.

All compiler errors carry a source location and render with the
offending source line and a caret, in the style of modern compilers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SourceLocation", "SialError", "LexError", "ParseError", "SemanticError"]


@dataclass(frozen=True)
class SourceLocation:
    """1-based line/column position in a SIAL source file."""

    line: int
    column: int
    filename: str = "<sial>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class SialError(Exception):
    """Base class for all SIAL compilation errors."""

    def __init__(
        self,
        message: str,
        location: SourceLocation | None = None,
        source: str | None = None,
    ) -> None:
        self.message = message
        self.location = location
        self.source_line = ""
        if location is not None and source is not None:
            lines = source.splitlines()
            if 1 <= location.line <= len(lines):
                self.source_line = lines[location.line - 1]
        super().__init__(self._render())

    def _render(self) -> str:
        if self.location is None:
            return self.message
        out = f"{self.location}: {self.message}"
        if self.source_line:
            caret = " " * (self.location.column - 1) + "^"
            out += f"\n    {self.source_line}\n    {caret}"
        return out


class LexError(SialError):
    """Invalid character or malformed token."""


class ParseError(SialError):
    """Token stream does not match the SIAL grammar."""


class SemanticError(SialError):
    """Program is grammatical but violates SIAL's static rules."""
