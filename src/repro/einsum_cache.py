"""A process-wide cache of ``np.einsum_path`` results.

``np.einsum(..., optimize=True)`` re-runs the contraction-order search
on *every* call, even when the subscripts and operand shapes are
unchanged.  The reference chemistry code (SCF Fock builds, AO->MO
transforms, CCSD residuals) calls the same handful of einsums hundreds
of times per run, so the path search dominates their wall time for
small systems.

``cached_einsum`` is a drop-in replacement for ``np.einsum`` with
``optimize=True`` semantics: the first call with a given
``(subscripts, operand shapes)`` pair runs ``np.einsum_path`` once and
memoizes the resulting contraction list; later calls execute with the
precomputed path.  Because an explicit path executes the exact same
contraction sequence the search would have chosen, results are
bit-identical to the uncached call.

This is the host-side analogue of :class:`repro.sip.plans.KernelPlanCache`,
which does the same (plus GEMM lowering) for super-instruction kernels.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cached_einsum", "path_cache_info", "clear_path_cache"]

_PATHS: dict[tuple, list] = {}
_HITS = 0
_MISSES = 0


def cached_einsum(subscripts: str, *operands: np.ndarray, **kwargs):
    """``np.einsum(subscripts, *operands, optimize=True)`` with the
    contraction path memoized by ``(subscripts, operand shapes)``."""
    global _HITS, _MISSES
    opt = kwargs.pop("optimize", True)
    if opt is True:
        key = (subscripts, *(op.shape for op in operands))
        opt = _PATHS.get(key)
        if opt is None:
            _MISSES += 1
            opt = np.einsum_path(subscripts, *operands, optimize=True)[0]
            _PATHS[key] = opt
        else:
            _HITS += 1
    return np.einsum(subscripts, *operands, optimize=opt, **kwargs)


def path_cache_info() -> dict:
    """Hit/miss counters and the number of distinct cached paths."""
    return {"hits": _HITS, "misses": _MISSES, "paths": len(_PATHS)}


def clear_path_cache() -> None:
    global _HITS, _MISSES
    _PATHS.clear()
    _HITS = 0
    _MISSES = 0
