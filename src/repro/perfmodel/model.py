"""Coarse task-level performance model for large virtual core counts.

The fine-grained simulator (:mod:`repro.sip`) executes every super
instruction and message and is practical up to a few hundred ranks.
The paper's figures go to 108,000 cores; this module reproduces those
*shapes* with a deterministic queueing simulation at pardo-chunk
granularity, driven by the same machine models.

What is represented, and why it suffices:

* **per-iteration time** -- compute (flops at the machine's DGEMM rate
  plus kernel launch overheads) vs. communication (message latencies
  plus remote bytes over the link bandwidth; a random static placement
  makes the remote fraction (P-1)/P).  With overlap (the SIP's
  prefetching), an iteration costs ``max(comp, comm)``; without (the
  GA baseline's synchronous gets), ``comp + comm``;
* **master serialization** -- chunk requests queue at the single
  master, each costing ``master_chunk_overhead``; at very large P this
  service rate caps scaling (the Fig. 6 turnover);
* **guided scheduling & load imbalance** -- shrinking chunks are dealt
  out exactly as in :class:`repro.sip.scheduler.GuidedScheduler`, so
  tail imbalance appears when iterations/P gets small;
* **I/O servers** -- served-array traffic shares the configured number
  of disks;
* **barriers** -- ``latency * log2(P)`` per phase boundary.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from math import ceil, log2
from typing import Optional

from ..machines import Machine

__all__ = ["PhaseSpec", "WorkloadSpec", "CoarseResult", "simulate", "sweep"]


@dataclass(frozen=True)
class PhaseSpec:
    """One pardo phase of a workload, in per-iteration terms."""

    name: str
    n_iterations: int
    flops_per_iter: float
    kernels_per_iter: float = 1.0
    fetch_bytes_per_iter: float = 0.0
    fetch_messages_per_iter: float = 0.0
    put_bytes_per_iter: float = 0.0
    # served-array traffic: per-iteration bytes move over the network
    # like any fetch (the I/O servers' caches absorb re-reads), while
    # the *unique* bytes of the phase must stream off the disks once
    served_bytes_per_iter: float = 0.0
    served_unique_bytes: float = 0.0
    served_unique_blocks: float = 0.0  # disk ops: one seek each


@dataclass(frozen=True)
class WorkloadSpec:
    """A sequence of phases (e.g. one CC iteration, or one Fock build)."""

    name: str
    phases: tuple[PhaseSpec, ...]

    @property
    def total_flops(self) -> float:
        return sum(p.n_iterations * p.flops_per_iter for p in self.phases)

    @property
    def max_parallelism(self) -> int:
        return max((p.n_iterations for p in self.phases), default=0)


@dataclass
class CoarseResult:
    """Modeled execution of one workload at one processor count."""

    workload: str
    machine: str
    n_procs: int
    time: float
    phase_times: dict[str, float]
    wait_time_total: float
    compute_time_total: float
    master_busy: float
    chunks_served: int

    @property
    def wait_fraction(self) -> float:
        """Average per-worker wait share of elapsed time (Fig. 2 metric)."""
        if self.time <= 0 or self.n_procs == 0:
            return 0.0
        return self.wait_time_total / (self.n_procs * self.time)


@dataclass(order=True)
class _WorkerEvent:
    ready_at: float
    worker: int = field(compare=False)


def _iteration_times(
    phase: PhaseSpec,
    machine: Machine,
    n_procs: int,
    io_servers: int,
    overlap: bool,
    overlap_efficiency: float,
    unhidden_comm_fraction: float,
) -> tuple[float, float, float]:
    """(iteration time, compute part, wait part) for one iteration."""
    comp = (
        phase.flops_per_iter / machine.flop_rate
        + phase.kernels_per_iter * machine.kernel_overhead
    )
    remote_fraction = (n_procs - 1) / n_procs if n_procs > 1 else 0.0
    comm = (
        phase.fetch_messages_per_iter * machine.latency
        + (
            phase.fetch_bytes_per_iter
            + phase.put_bytes_per_iter
            + phase.served_bytes_per_iter
        )
        * remote_fraction
        / machine.bandwidth
    )
    if overlap:
        # some communication is structurally unhideable (first fetch of
        # a chunk, dependences at iteration starts); the rest overlaps
        # with compute up to the prefetcher's efficiency.  The paper's
        # Fig. 2 reports an 8.4-13.4% residual wait on a well-tuned
        # program; the default unhidden fraction reproduces that band.
        hideable = comm * (1.0 - unhidden_comm_fraction)
        hidden = min(hideable, comp * overlap_efficiency)
        wait = comm - hidden
        return comp + wait, comp, wait
    return comp + comm, comp, comm


def simulate(
    workload: WorkloadSpec,
    machine: Machine,
    n_procs: int,
    io_servers: Optional[int] = None,
    overlap: bool = True,
    overlap_efficiency: float = 1.0,
    unhidden_comm_fraction: float = 0.35,
    chunk_factor: int = 2,
    scheduling: str = "guided",
) -> CoarseResult:
    """Model one run of ``workload`` on ``n_procs`` workers."""
    if n_procs < 1:
        raise ValueError("n_procs must be >= 1")
    if io_servers is None:
        io_servers = max(1, n_procs // 32)
    phase_times: dict[str, float] = {}
    wait_total = 0.0
    comp_total = 0.0
    master_busy = 0.0
    chunks_served = 0
    clock = 0.0

    for phase in workload.phases:
        iter_time, comp, wait = _iteration_times(
            phase,
            machine,
            n_procs,
            io_servers,
            overlap,
            overlap_efficiency,
            unhidden_comm_fraction,
        )
        end, waits, comps, busy, chunks = _run_phase(
            phase, machine, n_procs, iter_time, comp, wait, chunk_factor,
            scheduling,
        )
        if phase.served_unique_bytes > 0:
            # the phase cannot complete before the disks have streamed
            # the unique served data once (lazy reads overlap compute);
            # each unique block costs one seek on top of the streaming
            disk_stream = (
                phase.served_unique_bytes / machine.disk_bandwidth
                + phase.served_unique_blocks * machine.disk_seek
            ) / io_servers
            if disk_stream > end:
                waits += (disk_stream - end) * min(n_procs, phase.n_iterations)
                end = disk_stream
        barrier = machine.latency * max(1.0, log2(n_procs)) if n_procs > 1 else 0.0
        phase_times[phase.name] = end + barrier
        clock += end + barrier
        wait_total += waits
        comp_total += comps
        master_busy += busy
        chunks_served += chunks

    return CoarseResult(
        workload=workload.name,
        machine=machine.name,
        n_procs=n_procs,
        time=clock,
        phase_times=phase_times,
        wait_time_total=wait_total,
        compute_time_total=comp_total,
        master_busy=master_busy,
        chunks_served=chunks_served,
    )


def _run_phase(
    phase: PhaseSpec,
    machine: Machine,
    n_procs: int,
    iter_time: float,
    comp_per_iter: float,
    wait_per_iter: float,
    chunk_factor: int,
    scheduling: str,
) -> tuple[float, float, float, float, int]:
    """Deterministic queueing simulation of one pardo phase.

    Workers request chunks from the master (a serial resource with a
    fixed per-request service time); a worker computes its chunk, then
    queues for the next.  Returns (phase end time, total wait time,
    total compute time, master busy time, chunks served).
    """
    remaining = phase.n_iterations
    if remaining == 0:
        return 0.0, 0.0, 0.0, 0.0, 0
    service = machine.master_chunk_overhead
    rtt = 2.0 * machine.latency

    if scheduling == "static":
        per = ceil(remaining / n_procs)
        active = ceil(remaining / per)
        end = rtt + service * active + per * iter_time
        waits = wait_per_iter * remaining
        comps = comp_per_iter * remaining
        return end, waits, comps, service * active, active

    # guided: event-driven dole-out
    heap: list[_WorkerEvent] = [
        _WorkerEvent(0.0, w) for w in range(min(n_procs, remaining))
    ]
    heapq.heapify(heap)
    master_free = 0.0
    master_busy = 0.0
    chunks = 0
    finish = 0.0
    waits = 0.0
    comps = 0.0
    while heap and remaining > 0:
        ev = heapq.heappop(heap)
        # chunk request: master serializes
        start_service = max(ev.ready_at + machine.latency, master_free)
        master_free = start_service + service
        master_busy += service
        chunks += 1
        size = max(1, ceil(remaining / (chunk_factor * n_procs)))
        size = min(size, remaining)
        remaining -= size
        got_chunk = master_free + machine.latency
        done = got_chunk + size * iter_time
        waits += size * wait_per_iter
        comps += size * comp_per_iter
        finish = max(finish, done)
        if remaining > 0:
            heapq.heappush(heap, _WorkerEvent(done, ev.worker))
    # every worker makes one final "no more work" request; they arrive
    # together at the end of the phase and the master serves them one
    # at a time -- a drain cost that grows with the worker count
    finish += rtt + service * n_procs
    return finish, waits, comps, master_busy, chunks


def sweep(
    workload: WorkloadSpec,
    machine: Machine,
    proc_counts: list[int],
    baseline_procs: Optional[int] = None,
    **kwargs,
) -> list[dict]:
    """Strong-scaling sweep; rows carry time, efficiency, wait %.

    Efficiency is relative to ``baseline_procs`` (default: the first
    count), exactly as the paper's figures are normalized.
    """
    results = [simulate(workload, machine, p, **kwargs) for p in proc_counts]
    base = baseline_procs if baseline_procs is not None else proc_counts[0]
    base_result = next((r for r in results if r.n_procs == base), results[0])
    base_work = base_result.time * base_result.n_procs
    rows = []
    for r in results:
        efficiency = base_work / (r.time * r.n_procs) if r.time > 0 else 0.0
        rows.append(
            {
                "procs": r.n_procs,
                "time": r.time,
                "efficiency": efficiency,
                "wait_percent": 100.0 * r.wait_fraction,
                "chunks": r.chunks_served,
                "master_busy": r.master_busy,
            }
        )
    return rows
