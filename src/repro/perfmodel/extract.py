"""Automatic workload extraction from compiled SIAL programs.

The paper lists "providing support for performance modeling" as planned
SIAL tool support (Section VIII).  This module implements it: a static
analysis that walks SIA bytecode and derives the coarse
:class:`~repro.perfmodel.model.WorkloadSpec` of the program -- pardo
iteration counts (with ``where`` clauses honoured exactly), flops per
iteration from the contraction shapes, fetched/put/served bytes from
the ``get``/``put``/``request``/``prepare`` traffic, with sequential
loop multiplicities applied.  The result feeds
:func:`~repro.perfmodel.model.simulate`, so any SIAL program can be
scaling-studied at 100k virtual cores without hand-building its phase
specification.

Approximations (documented, conservative):

* ragged segments enter as the average segment length of each index;
* both branches of an ``if`` are charged at weight 1/2;
* block-cache reuse is not modeled -- every ``get`` inside a loop body
  counts as traffic (an upper bound on communication);
* user ``execute`` super instructions are charged one elementwise pass
  over their block arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod
from typing import Optional

from ..costmodel import INTEGRAL_FLOPS_PER_ELEMENT
from ..sial.bytecode import BlockOperand, CompiledProgram, Op
from ..sip.blocks import ResolvedIndexTable
from ..sip.config import SIPConfig
from ..sip.scheduler import enumerate_pardo
from .model import PhaseSpec, WorkloadSpec

__all__ = ["extract_workload"]

_B = 8.0


@dataclass
class _PhaseAccumulator:
    """Per-iteration aggregates of one pardo body (or a serial region)."""

    flops: float = 0.0
    kernels: float = 0.0
    fetch_bytes: float = 0.0
    fetch_messages: float = 0.0
    put_bytes: float = 0.0
    served_bytes: float = 0.0
    served_arrays: set[int] = field(default_factory=set)

    @property
    def empty(self) -> bool:
        return (
            self.flops == 0
            and self.kernels == 0
            and self.fetch_bytes == 0
            and self.put_bytes == 0
            and self.served_bytes == 0
        )


class _Extractor:
    def __init__(self, program: CompiledProgram, table: ResolvedIndexTable) -> None:
        self.program = program
        self.table = table
        self.instrs = program.instructions
        self.phases: list[PhaseSpec] = []
        self._serial = _PhaseAccumulator()
        self._serial_count = 0

    # -- index / operand geometry --------------------------------------------
    def avg_len(self, index_id: int) -> float:
        ri = self.table[index_id]
        if ri.is_simple or ri.n_segments == 0:
            return 1.0
        return ri.n_elements / ri.n_segments

    def operand_dims(self, op: BlockOperand) -> list[float]:
        return [self.avg_len(i) for i in op.index_ids]

    def operand_elements(self, op: BlockOperand) -> float:
        return prod(self.operand_dims(op), start=1.0)

    def operand_kind(self, op: BlockOperand) -> str:
        return self.program.array_table[op.array_id].kind

    def array_total_bytes(self, array_id: int) -> float:
        desc = self.program.array_table[array_id]
        return prod(
            (float(self.table[i].n_elements) for i in desc.index_ids), start=1.0
        ) * _B

    def array_total_blocks(self, array_id: int) -> float:
        desc = self.program.array_table[array_id]
        return prod(
            (float(max(self.table[i].n_segments, 1)) for i in desc.index_ids),
            start=1.0,
        )

    # -- instruction costing ------------------------------------------------
    def charge(self, acc: _PhaseAccumulator, instr, weight: float) -> None:
        op = instr.op
        args = instr.args
        if op == Op.CONTRACT:
            dst, _assign, a, b = args
            out = self.operand_dims(dst)
            contracted = [
                self.avg_len(i) for i in a.index_ids if i not in dst.index_ids
            ]
            acc.flops += weight * 2.0 * prod(out, start=1.0) * prod(
                contracted, start=1.0
            )
            acc.kernels += weight
        elif op == Op.CONTRACT_FUSED:
            # the fused pair: a contraction into the (virtual) temp
            # shape plus the elementwise apply onto the destination
            dst, _assign, a, _b, tmp_ids, _factor = args
            out = [self.avg_len(i) for i in tmp_ids]
            contracted = [
                self.avg_len(i) for i in a.index_ids if i not in tmp_ids
            ]
            acc.flops += weight * 2.0 * prod(out, start=1.0) * prod(
                contracted, start=1.0
            )
            acc.flops += weight * self.operand_elements(dst)
            acc.kernels += weight
        elif op == Op.SCALAR_CONTRACT:
            _sid, _assign, a, _b = args
            acc.flops += weight * 2.0 * self.operand_elements(a)
            acc.kernels += weight
        elif op in (
            Op.FILL,
            Op.COPY,
            Op.NEGATE,
            Op.SCALE,
            Op.SCALE_INPLACE,
            Op.ACCUM,
            Op.ADDSUB,
        ):
            dst = args[0]
            acc.flops += weight * self.operand_elements(dst)
            acc.kernels += weight
        elif op == Op.COMPUTE_INTEGRALS:
            dst = args[0]
            acc.flops += (
                weight * INTEGRAL_FLOPS_PER_ELEMENT * self.operand_elements(dst)
            )
            acc.kernels += weight
        elif op == Op.EXECUTE:
            _name, arg_spec = args
            elements = sum(
                self.operand_elements(value)
                for kind, value in arg_spec
                if kind == "block"
            )
            acc.flops += weight * max(elements, 1.0)
            acc.kernels += weight
        elif op == Op.GET:
            ref = args[0]
            acc.fetch_bytes += weight * self.operand_elements(ref) * _B
            acc.fetch_messages += weight
        elif op == Op.REQUEST:
            ref = args[0]
            acc.served_bytes += weight * self.operand_elements(ref) * _B
            acc.fetch_messages += weight
            acc.served_arrays.add(ref.array_id)
        elif op == Op.PUT:
            dst = args[0]
            acc.put_bytes += weight * self.operand_elements(dst) * _B
        elif op == Op.PREPARE:
            dst = args[0]
            acc.served_bytes += weight * self.operand_elements(dst) * _B
            acc.served_arrays.add(dst.array_id)
        # control, barriers, scalar assigns: negligible

    # -- structured walk --------------------------------------------------------
    def run(self) -> None:
        self.walk_region(0, self._find_stop(), acc=None, weight=1.0)
        self._flush_serial()

    def _find_stop(self) -> int:
        for pc, instr in enumerate(self.instrs):
            if instr.op == Op.STOP:
                return pc
        return len(self.instrs)

    def walk_region(
        self,
        pc: int,
        end: int,
        acc: Optional[_PhaseAccumulator],
        weight: float,
    ) -> None:
        """Walk [pc, end); charge into ``acc`` (None = serial context)."""
        while pc < end:
            instr = self.instrs[pc]
            op = instr.op
            if op == Op.PARDO_START:
                pardo_id, index_ids, conditions, exit_pc, _gets = instr.args
                if acc is not None:  # analyzer forbids nesting
                    raise ValueError("nested pardo in bytecode")
                self._flush_serial()
                body_acc = _PhaseAccumulator()
                # body spans up to the PARDO_END (at exit_pc - 1)
                self.walk_region(pc + 1, exit_pc - 1, body_acc, 1.0)
                n_iter = len(
                    enumerate_pardo(self.table, index_ids, conditions)
                )
                # a pardo inside a sequential loop executes once per trip
                repeats = max(1, round(weight))
                for _ in range(repeats):
                    self._emit_pardo_phase(pardo_id, n_iter, body_acc)
                pc = exit_pc
            elif op in (Op.DO_START, Op.DOIN_START):
                index_id, exit_pc, _gets = instr.args
                ri = self.table[index_id]
                if op == Op.DOIN_START:
                    trips = float(ri.per_segment)
                else:
                    trips = float(len(ri.values()))
                # body spans up to the DO_END (at exit_pc - 1)
                self.walk_region(pc + 1, exit_pc - 1, acc, weight * trips)
                pc = exit_pc
            elif op == Op.BRANCH_FALSE:
                _cond, else_target = instr.args
                then_end = else_target
                join = else_target
                if (
                    then_end - 1 > pc
                    and self.instrs[then_end - 1].op == Op.JUMP
                ):
                    join = self.instrs[then_end - 1].args[0]
                    self.walk_region(pc + 1, then_end - 1, acc, weight * 0.5)
                    self.walk_region(else_target, join, acc, weight * 0.5)
                else:
                    self.walk_region(pc + 1, then_end, acc, weight * 0.5)
                pc = join
            elif op == Op.CALL:
                entry = instr.args[0]
                ret = entry
                while self.instrs[ret].op != Op.RETURN:
                    ret += 1
                self.walk_region(entry, ret, acc, weight)
                pc += 1
            elif op in (Op.JUMP, Op.PARDO_END, Op.DO_END, Op.DOIN_END):
                pc += 1  # structure handled by the enclosing construct
            else:
                target = acc if acc is not None else self._serial
                self.charge(target, instr, weight)
                pc += 1

    def _emit_pardo_phase(
        self, pardo_id: int, n_iter: int, acc: _PhaseAccumulator
    ) -> None:
        served_unique = 0.0
        served_blocks = 0.0
        if acc.served_arrays:
            total_arrays = sum(
                self.array_total_bytes(a) for a in acc.served_arrays
            )
            served_unique = min(total_arrays, acc.served_bytes * n_iter)
            total_blocks = sum(
                self.array_total_blocks(a) for a in acc.served_arrays
            )
            fraction = served_unique / total_arrays if total_arrays else 0.0
            served_blocks = total_blocks * fraction
        self.phases.append(
            PhaseSpec(
                name=f"pardo{pardo_id}.{len(self.phases)}",
                n_iterations=n_iter,
                flops_per_iter=acc.flops,
                kernels_per_iter=max(acc.kernels, 1.0),
                fetch_bytes_per_iter=acc.fetch_bytes,
                fetch_messages_per_iter=acc.fetch_messages,
                put_bytes_per_iter=acc.put_bytes,
                served_bytes_per_iter=acc.served_bytes,
                served_unique_bytes=served_unique,
                served_unique_blocks=served_blocks,
            )
        )

    def _flush_serial(self) -> None:
        if self._serial.empty:
            self._serial = _PhaseAccumulator()
            return
        acc = self._serial
        self.phases.append(
            PhaseSpec(
                name=f"serial{self._serial_count}",
                n_iterations=1,
                flops_per_iter=acc.flops,
                kernels_per_iter=max(acc.kernels, 1.0),
                fetch_bytes_per_iter=acc.fetch_bytes,
                fetch_messages_per_iter=acc.fetch_messages,
                put_bytes_per_iter=acc.put_bytes,
                served_bytes_per_iter=acc.served_bytes,
                served_unique_bytes=acc.served_bytes,
            )
        )
        self._serial_count += 1
        self._serial = _PhaseAccumulator()


def extract_workload(
    program: CompiledProgram,
    config: Optional[SIPConfig] = None,
    symbolics: Optional[dict[str, float]] = None,
    name: Optional[str] = None,
) -> WorkloadSpec:
    """Derive a coarse workload specification from SIA bytecode."""
    config = config if config is not None else SIPConfig()
    table = ResolvedIndexTable(
        program,
        symbolics or {},
        segment_size=config.segment_size,
        segment_sizes=config.segment_sizes,
        subsegments_per_segment=config.subsegments_per_segment,
    )
    extractor = _Extractor(program, table)
    extractor.run()
    return WorkloadSpec(
        name=name or f"extracted[{program.name}]",
        phases=tuple(extractor.phases),
    )
