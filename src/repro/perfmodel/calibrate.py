"""Cross-validation of the coarse model against the fine simulator.

The coarse model's credibility rests on tracking the fine-grained SIP
simulation where both can run.  This module executes a blocked
matrix-multiply SIAL program on the fine simulator (model backend) at
several worker counts, builds the equivalent coarse
:class:`~repro.perfmodel.model.WorkloadSpec`, and compares predicted
times.  The benchmark suite prints the comparison table; tests assert
agreement within a small factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from ..machines import Machine
from ..sip import SIPConfig, run_source
from .model import PhaseSpec, WorkloadSpec, simulate

__all__ = ["CalibrationRow", "matmul_workload", "calibration_table"]

_MATMUL_SRC = """
sial calib_matmul
symbolic nb
aoindex M = 1, nb
aoindex N = 1, nb
aoindex L = 1, nb
distributed A(M, L)
distributed B(L, N)
distributed C(M, N)
temp TC(M, N)

pardo M, N
  TC(M, N) = 0.0
  do L
    get A(M, L)
    get B(L, N)
    TC(M, N) += A(M, L) * B(L, N)
  enddo L
  put C(M, N) = TC(M, N)
endpardo M, N
endsial calib_matmul
"""


@dataclass
class CalibrationRow:
    procs: int
    fine_time: float
    coarse_time: float

    @property
    def ratio(self) -> float:
        return self.coarse_time / self.fine_time if self.fine_time > 0 else 0.0


def matmul_workload(n: int, seg: int) -> WorkloadSpec:
    """Coarse spec equivalent to the blocked matmul SIAL program."""
    s = max(1, ceil(n / seg))
    block = seg * seg * 8.0
    phase = PhaseSpec(
        name="matmul",
        n_iterations=s * s,
        flops_per_iter=2.0 * seg * seg * n,
        kernels_per_iter=2 * s + 1,  # s contractions + s fills/accums + put
        fetch_bytes_per_iter=2 * s * block,
        fetch_messages_per_iter=2 * s,
        put_bytes_per_iter=block,
    )
    return WorkloadSpec(name=f"matmul[{n}x{n}/{seg}]", phases=(phase,))


def calibration_table(
    machine: Machine,
    n: int = 64,
    seg: int = 8,
    proc_counts: tuple[int, ...] = (1, 2, 4, 8),
) -> list[CalibrationRow]:
    """Fine-vs-coarse comparison at several worker counts."""
    rows = []
    for p in proc_counts:
        cfg = SIPConfig(
            workers=p,
            io_servers=1,
            segment_size=seg,
            backend="model",
            machine=machine,
            inputs={"A": None, "B": None},
        )
        fine = run_source(_MATMUL_SRC, cfg, symbolics={"nb": n})
        coarse = simulate(matmul_workload(n, seg), machine, p, io_servers=1)
        rows.append(
            CalibrationRow(procs=p, fine_time=fine.elapsed, coarse_time=coarse.time)
        )
    return rows
