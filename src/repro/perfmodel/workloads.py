"""Workload builders: paper molecules -> coarse phase specifications.

Each builder converts (molecule, segment size) into the
:class:`~repro.perfmodel.model.WorkloadSpec` of one unit of the
benchmarked computation, using standard operation counts for the
methods (o = occupied orbitals, v = virtual orbitals, n = basis
functions; spin-summed closed-shell counts):

* CCSD iteration: particle-particle ladder 2 o^2 v^4, ring family
  8 o^3 v^3, hole-hole ladder 2 o^4 v^2 (the small o^2 v^2-scale terms
  are folded into kernel counts);
* perturbative triples (T): ~2 o^3 v^4 + 2 o^4 v^3, blocked over
  virtual triples;
* Fock build: 2 n^4 integral evaluations at
  :data:`~repro.costmodel.INTEGRAL_FLOPS_PER_ELEMENT` flops each plus
  2 x 2 n^4 contraction flops, blocked over (mu, nu);
* MP2 energy + gradient: the O(n^5) transform dominates, plus
  o^2 v^2-scale amplitude work and the gradient's density build.

Data movement per iteration is counted in blocks of ``seg`` elements
per dimension fetched by the inner loops, mirroring the SIAL programs
in :mod:`repro.programs.library`.
"""

from __future__ import annotations

from math import ceil

from ..chem.molecules import Molecule
from ..costmodel import INTEGRAL_FLOPS_PER_ELEMENT
from .model import PhaseSpec, WorkloadSpec

__all__ = [
    "ccsd_iteration_workload",
    "triples_workload",
    "fock_build_workload",
    "mp2_gradient_workload",
]

_B = 8.0  # bytes per double


def _segs(extent: int, seg: int) -> int:
    return max(1, ceil(extent / seg))


def ccsd_iteration_workload(
    mol: Molecule, seg: int, vvvv_on_disk: bool | None = None
) -> WorkloadSpec:
    """One CCSD amplitude iteration (Figs. 2-4).

    ``vvvv_on_disk`` is the placement decision a SIAL programmer makes
    for the O(v^4) <ab||ef> integrals: a *served* (disk-backed) array
    when they exceed the machine's aggregate memory, a *distributed*
    array otherwise (paper, Section VI-B: "changing an array from
    distributed to served" is a standard retuning step).  The default
    (None) serves arrays above 1 TB from disk -- small clusters cannot
    hold them, jaguar-scale runs keep them in memory.
    """
    o, v = mol.n_occ, mol.n_virt
    so, sv = _segs(o, seg), _segs(v, seg)
    block = seg**4 * _B

    vvvv_bytes = float(v) ** 4 * _B
    if vvvv_on_disk is None:
        vvvv_on_disk = vvvv_bytes > 1.0e12

    # particle-particle ladder: pardo (a,b,i,j), inner (e,f)
    pp_iters = sv * sv * so * so
    pp = PhaseSpec(
        name="pp_ladder",
        n_iterations=pp_iters,
        flops_per_iter=2.0 * o * o * v * v * (v * v) / pp_iters,
        kernels_per_iter=sv * sv,
        fetch_bytes_per_iter=(1 if vvvv_on_disk else 2) * sv * sv * block,
        fetch_messages_per_iter=2 * sv * sv,
        put_bytes_per_iter=block,
        served_bytes_per_iter=sv * sv * block if vvvv_on_disk else 0.0,
        served_unique_bytes=vvvv_bytes if vvvv_on_disk else 0.0,
        # streamed sequentially by the I/O servers: one seek per ~MB
        # extent, not per block (cf. the lazy write-back design)
        served_unique_blocks=vvvv_bytes / 1e6 if vvvv_on_disk else 0.0,
    )

    # ring family: pardo (a,b,i,j), inner (m,e); ~8 spin cases folded in
    ring_iters = sv * sv * so * so
    ring = PhaseSpec(
        name="ring",
        n_iterations=ring_iters,
        flops_per_iter=8.0 * o * o * v * v * (o * v) / ring_iters,
        kernels_per_iter=4 * so * sv,
        fetch_bytes_per_iter=2 * so * sv * block,
        fetch_messages_per_iter=2 * so * sv,
        put_bytes_per_iter=block,
    )

    # hole-hole ladder: pardo (a,b,i,j), inner (m,n)
    hh_iters = sv * sv * so * so
    hh = PhaseSpec(
        name="hh_ladder",
        n_iterations=hh_iters,
        flops_per_iter=2.0 * o * o * v * v * (o * o) / hh_iters,
        kernels_per_iter=so * so,
        fetch_bytes_per_iter=2 * so * so * block,
        fetch_messages_per_iter=2 * so * so,
        put_bytes_per_iter=block,
    )
    return WorkloadSpec(name=f"ccsd-iter[{mol.name}]", phases=(pp, ring, hh))


def triples_workload(mol: Molecule, seg: int) -> WorkloadSpec:
    """The (T) perturbative-triples correction (Fig. 5).

    Blocked over virtual triples (a,b,c): each block builds its T3
    slice by contracting T2 blocks with <vo||vv> / <ov||oo> integrals
    over the full occupied space.
    """
    o, v = mol.n_occ, mol.n_virt
    so, sv = _segs(o, seg), _segs(v, seg)
    # pardo over (a<=b<=c) virtual triple blocks x (i<=j<=k) occupied
    # triple blocks: ample parallelism for the paper's 10k-80k cores
    vt = sv * (sv + 1) * (sv + 2) // 6
    ot = so * (so + 1) * (so + 2) // 6
    n_iter = vt * ot
    total_flops = 2.0 * o**3 * v**4 + 2.0 * o**4 * v**3
    block = seg**4 * _B
    triples = PhaseSpec(
        name="triples",
        n_iterations=n_iter,
        flops_per_iter=total_flops / n_iter,
        kernels_per_iter=3 * sv,
        fetch_bytes_per_iter=3 * sv * block,
        fetch_messages_per_iter=3 * sv,
        put_bytes_per_iter=0.0,  # energy only: scalar reductions
    )
    return WorkloadSpec(name=f"ccsd(t)[{mol.name}]", phases=(triples,))


def fock_build_workload(mol: Molecule, seg: int) -> WorkloadSpec:
    """One Fock matrix build with on-demand integrals (Fig. 6)."""
    n = mol.n_basis
    sn = _segs(n, seg)
    n_iter = sn * sn  # pardo (mu, nu)
    block4 = seg**4
    block2 = seg**2 * _B
    inner = sn * sn  # do (la, si)
    flops_per_iter = inner * (
        2.0 * INTEGRAL_FLOPS_PER_ELEMENT * block4  # J and K integral blocks
        + 2.0 * 2.0 * block4  # two contractions
    )
    fock = PhaseSpec(
        name="fock",
        n_iterations=n_iter,
        flops_per_iter=flops_per_iter,
        kernels_per_iter=4 * inner,
        # the density is replicated (static): only the result moves
        fetch_bytes_per_iter=0.0,
        fetch_messages_per_iter=0.0,
        put_bytes_per_iter=block2,
    )
    return WorkloadSpec(name=f"fock[{mol.name}]", phases=(fock,))


def mp2_gradient_workload(mol: Molecule, seg: int) -> WorkloadSpec:
    """UHF MP2 gradient (Fig. 7): transform + amplitudes + density.

    UHF doubles the amplitude work relative to RHF (two spin cases,
    plus the mixed-spin block -> factor ~3 on the o^2 v^2 terms).
    """
    n, o, v = mol.n_basis, mol.n_occ, mol.n_virt
    sn, so, sv = _segs(n, seg), _segs(o, seg), _segs(v, seg)
    block = seg**4 * _B

    # four quarter transforms, pardo over (p, q) target blocks
    t_iters = sn * sn
    transform = PhaseSpec(
        name="transform",
        n_iterations=t_iters,
        flops_per_iter=4.0 * 2.0 * n**5 / t_iters,
        kernels_per_iter=sn * sn,
        fetch_bytes_per_iter=sn * sn * block,
        fetch_messages_per_iter=sn * sn,
        put_bytes_per_iter=block,
        served_bytes_per_iter=sn * sn * block,  # AO integrals from disk
        served_unique_bytes=float(n) ** 4 * _B,
        served_unique_blocks=float(n) ** 4 * _B / 1e6,  # sequential extents
    )

    amp_iters = so * sv * so * sv
    spin_factor = 3.0 if mol.uhf else 1.0
    amplitudes = PhaseSpec(
        name="amplitudes",
        n_iterations=amp_iters,
        flops_per_iter=spin_factor * 6.0 * o * o * v * v / amp_iters,
        kernels_per_iter=4.0,
        fetch_bytes_per_iter=2 * block,
        fetch_messages_per_iter=2.0,
        put_bytes_per_iter=block,
    )

    dens_iters = max(so * so, sv * sv)
    density = PhaseSpec(
        name="density",
        n_iterations=dens_iters,
        flops_per_iter=spin_factor
        * 2.0
        * (o * o * (o * v * v) + v * v * (o * o * v))
        / dens_iters,
        kernels_per_iter=so * sv,
        fetch_bytes_per_iter=so * sv * block,
        fetch_messages_per_iter=so * sv,
        put_bytes_per_iter=seg**2 * _B,
    )
    return WorkloadSpec(
        name=f"mp2-grad[{mol.name}]", phases=(transform, amplitudes, density)
    )
