"""Coarse performance model for the paper's large-scale figures.

The fine-grained simulated SIP executes every message and super
instruction; this package models the same runtime at pardo-chunk
granularity so the 1k-108k-core experiments of Figs. 2-7 run in
seconds.  Workload builders translate the paper's molecules into phase
specifications; :func:`~repro.perfmodel.model.simulate` plays them
against a machine model; :mod:`~repro.perfmodel.calibrate`
cross-validates against the fine simulator where both can run.
"""

from .calibrate import CalibrationRow, calibration_table, matmul_workload
from .extract import extract_workload
from .model import CoarseResult, PhaseSpec, WorkloadSpec, simulate, sweep
from .workloads import (
    ccsd_iteration_workload,
    fock_build_workload,
    mp2_gradient_workload,
    triples_workload,
)

__all__ = [
    "CalibrationRow",
    "CoarseResult",
    "PhaseSpec",
    "WorkloadSpec",
    "calibration_table",
    "ccsd_iteration_workload",
    "extract_workload",
    "fock_build_workload",
    "matmul_workload",
    "mp2_gradient_workload",
    "simulate",
    "sweep",
    "triples_workload",
]
