"""Machine performance models for the systems in the paper's evaluation.

The paper reports results on several platforms (Section VI).  Because we
run on a simulated MPI substrate, each platform is described by a
:class:`Machine` record whose parameters feed the network model, the
per-super-instruction cost model, and the dry-run feasibility analysis.

Numbers are order-of-magnitude-faithful public specifications of the
era's hardware (effective DGEMM rate per core, MPI latency/bandwidth,
memory per core).  Absolute reproduced times are therefore *not*
expected to match the paper; the scaling *shapes* are.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .simmpi.network import Network

__all__ = [
    "Machine",
    "SUN_OPTERON_IB",
    "CRAY_XT4",
    "CRAY_XT5",
    "JAGUAR_XT5",
    "SGI_ALTIX",
    "BLUEGENE_P",
    "LAPTOP",
    "MACHINES",
    "get_machine",
]


@dataclass(frozen=True)
class Machine:
    """Performance parameters of one simulated platform.

    Attributes
    ----------
    name:
        Human-readable identifier used in benchmark output.
    flop_rate:
        Effective double-precision DGEMM rate of one core, flop/s.
    kernel_overhead:
        Fixed cost of launching one super instruction (call overhead,
        cache warm-up), seconds.
    latency / bandwidth / send_overhead:
        Point-to-point network parameters (see
        :class:`repro.simmpi.network.Network`).
    memory_per_rank:
        Usable bytes of RAM per MPI rank (after OS and code).
    disk_seek / disk_bandwidth:
        Parameters of each I/O server's disk.
    master_chunk_overhead:
        Master CPU time to service one pardo chunk request; this is the
        serialization term that limits scaling at very high core counts
        (Fig. 6 turnover).
    copy_bandwidth:
        In-memory block permute/copy bandwidth, bytes/s.
    """

    name: str
    flop_rate: float
    kernel_overhead: float = 20.0e-6
    latency: float = 5.0e-6
    bandwidth: float = 1.5e9
    send_overhead: float = 1.0e-6
    memory_per_rank: float = 1.0e9
    disk_seek: float = 4.0e-3
    disk_bandwidth: float = 250.0e6
    master_chunk_overhead: float = 30.0e-6
    copy_bandwidth: float = 4.0e9

    def network(self) -> Network:
        """Instantiate the alpha-beta network model for this machine."""
        return Network(
            latency=self.latency,
            bandwidth=self.bandwidth,
            send_overhead=self.send_overhead,
            memcpy_bandwidth=self.copy_bandwidth,
        )

    def with_memory(self, memory_per_rank: float) -> "Machine":
        """A copy of this machine with a different RAM budget per rank."""
        return replace(self, memory_per_rank=memory_per_rank)


# "midnight" at ARSC: Sun cluster, 2.6 GHz Opterons, InfiniBand (Fig. 2)
SUN_OPTERON_IB = Machine(
    name="sun-opteron-ib",
    flop_rate=4.5e9,
    latency=4.0e-6,
    bandwidth=1.2e9,
    memory_per_rank=2.0e9,
)

# "kraken" at NICS: Cray XT4, dual-core Opteron + SeaStar (Fig. 3)
CRAY_XT4 = Machine(
    name="cray-xt4",
    flop_rate=4.6e9,
    latency=7.0e-6,
    bandwidth=1.6e9,
    memory_per_rank=2.0e9,
)

# "pingo" at ARSC: Cray XT5, quad-core Opteron + SeaStar2 (Fig. 3)
CRAY_XT5 = Machine(
    name="cray-xt5",
    flop_rate=9.2e9,
    latency=6.0e-6,
    bandwidth=2.0e9,
    memory_per_rank=2.0e9,
)

# "jaguar" at ORNL: Cray XT5, used for Figs. 4-6
JAGUAR_XT5 = Machine(
    name="jaguar-xt5",
    flop_rate=9.2e9,
    latency=6.0e-6,
    bandwidth=2.0e9,
    memory_per_rank=1.3e9,
)

# "pople" at PSC: SGI Altix 4700 shared-memory NUMA (Fig. 7)
SGI_ALTIX = Machine(
    name="sgi-altix",
    flop_rate=6.4e9,
    latency=1.5e-6,
    bandwidth=3.0e9,
    memory_per_rank=1.0e9,
)

# BlueGene/P at ALCF: slow cores, small memory; the ratio of processor
# to network speed differs sharply from the Crays (Section VI-A).
BLUEGENE_P = Machine(
    name="bluegene-p",
    flop_rate=2.7e9,
    latency=3.0e-6,
    bandwidth=0.4e9,
    memory_per_rank=0.5e9,
    kernel_overhead=40.0e-6,
)

# A neutral small model for unit tests and the quickstart example.
LAPTOP = Machine(
    name="laptop",
    flop_rate=10.0e9,
    latency=1.0e-6,
    bandwidth=5.0e9,
    memory_per_rank=4.0e9,
)

MACHINES: dict[str, Machine] = {
    m.name: m
    for m in (
        SUN_OPTERON_IB,
        CRAY_XT4,
        CRAY_XT5,
        JAGUAR_XT5,
        SGI_ALTIX,
        BLUEGENE_P,
        LAPTOP,
    )
}


def get_machine(name: str) -> Machine:
    """Look up a machine model by name, with a helpful error."""
    try:
        return MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(MACHINES))
        raise KeyError(f"unknown machine {name!r}; known machines: {known}") from None
