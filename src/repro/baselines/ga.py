"""A miniature Global Arrays (GA) toolkit on the simulated MPI substrate.

The paper's main comparison point (Fig. 7) is NWChem, built on the
Global Arrays toolkit [Nieplocha et al.].  GA provides a global view of
distributed dense arrays with one-sided ``put``/``get``/``acc`` on
arbitrary rectangular *patches* -- but, as the paper stresses, the
programming model differs from the SIA in exactly the ways that matter:

* algorithms are written in terms of element index ranges chosen by the
  programmer (who must get the blocking right by hand);
* ``get`` is synchronous by default; overlap requires explicitly
  managed non-blocking handles (``nbget``/``wait``);
* the data layout is fixed by the program (here: contiguous row-block
  distribution), and local working buffers must be allocated up front,
  which is where the rigid per-core memory requirement comes from.

This implementation is functionally real: patches move between ranks
over :mod:`repro.simmpi`, accumulate is atomic at the owner, and a GA
program produces actual numbers that tests compare to numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, prod
from typing import Any, Callable, Generator, Optional

import numpy as np

from ..costmodel import CostModel
from ..machines import LAPTOP, Machine
from ..simmpi import Barrier, Event, Simulator, Timeout, World

__all__ = ["GAError", "GAMemoryError", "GACluster", "GAEnv", "GAHandle"]

GA_TAG = 11
_REPLY_BASE = 5000


class GAError(Exception):
    """Errors raised by the mini Global Arrays toolkit."""


class GAMemoryError(GAError):
    """A rank could not allocate its required local buffers.

    This is the failure mode the paper reports for NWChem at 1 GB/core
    (Fig. 7): "the calculation will simply not run"."""


@dataclass
class _GlobalArrayMeta:
    name: str
    shape: tuple[int, ...]
    # row-block distribution: rank r owns rows [bounds[r], bounds[r+1])
    bounds: list[int]

    def owner_of_row(self, row: int) -> int:
        for r in range(len(self.bounds) - 1):
            if self.bounds[r] <= row < self.bounds[r + 1]:
                return r
        raise GAError(f"row {row} outside array {self.name!r}")


@dataclass(frozen=True)
class _PatchRequest:
    kind: str  # 'get', 'put', 'acc'
    name: str
    lo: tuple[int, ...]
    hi: tuple[int, ...]
    data: Any
    reply_tag: int


class GAHandle:
    """Non-blocking request handle (nga_nbget / nga_wait)."""

    def __init__(self, events: list[Event], assemble: Callable[[], np.ndarray]):
        self.events = events
        self._assemble = assemble

    def wait(self) -> Generator:
        for ev in self.events:
            if not ev.triggered:
                yield ev
        return self._assemble()


class GAEnv:
    """One rank's view of the GA world."""

    def __init__(self, cluster: "GACluster", rank: int) -> None:
        self.cluster = cluster
        self.rank = rank
        self.comm = cluster.world.comm(rank)
        self.cost = cluster.cost
        self._tag = _REPLY_BASE
        self._pending_write_acks: list[Event] = []
        self.local_bytes_allocated = 0

    # -- collectives -------------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self.cluster.n_ranks

    def sync(self) -> Generator:
        """GA_Sync: complete outstanding writes, then barrier."""
        for ev in self._pending_write_acks:
            if not ev.triggered:
                yield ev
        self._pending_write_acks.clear()
        yield from self.cluster.barrier.wait(self.comm)

    def create(self, name: str, shape: tuple[int, ...]) -> Generator:
        """Collectively create a global array (row-block distributed)."""
        self.cluster.register_array(name, shape, self.rank)
        yield from self.cluster.barrier.wait(self.comm)

    # -- local memory discipline ----------------------------------------------
    def allocate_local(self, shape: tuple[int, ...]) -> np.ndarray:
        """Allocate a local working buffer, enforcing the memory budget.

        GA programs size their buffers up front; exceeding the per-rank
        budget aborts the run, reproducing NWChem's hard memory floor.
        """
        nbytes = prod(shape, start=1) * 8
        local_share = self.cluster.local_share_bytes(self.rank)
        budget = self.cluster.machine.memory_per_rank
        if self.local_bytes_allocated + nbytes + local_share > budget:
            raise GAMemoryError(
                f"rank {self.rank}: cannot allocate {nbytes} B buffer on top "
                f"of {self.local_bytes_allocated} B buffers and "
                f"{local_share} B of global-array shares within "
                f"{budget:.0f} B per core"
            )
        self.local_bytes_allocated += nbytes
        return (
            np.zeros(shape)
            if self.cluster.real
            else np.zeros(1)  # placeholder in model mode
        )

    # -- one-sided operations -----------------------------------------------
    def nbget(self, name: str, lo, hi) -> GAHandle:
        """Non-blocking patch fetch (nga_nbget)."""
        meta = self.cluster.meta(name)
        lo, hi = tuple(lo), tuple(hi)
        pieces: list[tuple[int, Optional[np.ndarray], Event]] = []
        events: list[Event] = []
        out_shape = tuple(h - l for l, h in zip(lo, hi))
        parts: dict[int, Any] = {}
        for owner, olo, ohi in self.cluster.split_patch(meta, lo, hi):
            if owner == self.rank:
                data = self.cluster.local_patch(self.rank, name, olo, ohi)
                parts[olo[0]] = (olo, ohi, data)
                continue
            tag = self._next_tag()
            req = self.comm.irecv(source=self.cluster.rank_of(owner), tag=tag)
            nbytes = prod((h - l for l, h in zip(olo, ohi)), start=1) * 8
            self.comm.isend(
                _PatchRequest("get", name, olo, ohi, None, tag),
                dest=self.cluster.rank_of(owner),
                tag=GA_TAG,
            )
            ev = self.cluster.sim.event(name=f"nbget {name}")

            def on_reply(msg_ev, key=olo, lo_=olo, hi_=ohi, done=ev):
                parts[key[0]] = (lo_, hi_, msg_ev.value.payload)
                done.succeed(None)

            req.event.add_callback(on_reply)
            events.append(ev)

        def assemble() -> np.ndarray:
            if not self.cluster.real:
                return np.zeros(out_shape)
            out = np.zeros(out_shape)
            for olo, ohi, data in parts.values():
                sl = tuple(
                    slice(l - base, h - base) for l, h, base in zip(olo, ohi, lo)
                )
                out[sl] = data
            return out

        return GAHandle(events, assemble)

    def get(self, name: str, lo, hi) -> Generator:
        """Blocking patch fetch -- the GA default access mode."""
        handle = self.nbget(name, lo, hi)
        result = yield from handle.wait()
        return result

    def put(self, name: str, lo, hi, data) -> Generator:
        yield from self._write("put", name, lo, hi, data)

    def acc(self, name: str, lo, hi, data) -> Generator:
        """Atomic accumulate into a patch."""
        yield from self._write("acc", name, lo, hi, data)

    def _write(self, kind: str, name: str, lo, hi, data) -> Generator:
        meta = self.cluster.meta(name)
        lo, hi = tuple(lo), tuple(hi)
        for owner, olo, ohi in self.cluster.split_patch(meta, lo, hi):
            piece = None
            if self.cluster.real and data is not None:
                sl = tuple(
                    slice(l - base, h - base) for l, h, base in zip(olo, ohi, lo)
                )
                piece = np.ascontiguousarray(np.asarray(data)[sl])
            if owner == self.rank:
                self.cluster.apply_write(self.rank, kind, name, olo, ohi, piece)
                continue
            tag = self._next_tag()
            req = self.comm.irecv(source=self.cluster.rank_of(owner), tag=tag)
            nbytes = prod((h - l for l, h in zip(olo, ohi)), start=1) * 8
            payload = _PatchRequest(kind, name, olo, ohi, piece, tag)
            self.comm.isend(
                payload,
                dest=self.cluster.rank_of(owner),
                tag=GA_TAG,
                nbytes=64 + nbytes,
            )
            self._pending_write_acks.append(req.event)
        yield Timeout(self.cluster.machine.send_overhead)

    def compute(self, flops: float) -> Timeout:
        """Charge local computation time."""
        return Timeout(self.cost.flops_time(flops))

    def reduce_sum(self, value: float) -> Generator:
        """Allreduce-sum a scalar over all ranks (via rank 0)."""
        root = self.cluster.rank_of(0)
        if self.rank == root:
            total = value
            for _ in range(self.cluster.n_ranks - 1):
                msg = yield from self.comm.recv(tag=GA_TAG + 1)
                total += msg.payload
            for r in range(1, self.cluster.n_ranks):
                self.comm.isend(total, dest=self.cluster.rank_of(r), tag=GA_TAG + 2)
            return total
        self.comm.isend(value, dest=root, tag=GA_TAG + 1)
        msg = yield from self.comm.recv(source=root, tag=GA_TAG + 2)
        return msg.payload

    def _next_tag(self) -> int:
        self._tag += 1
        return self._tag


class GACluster:
    """A set of simulated ranks running a GA program SPMD-style."""

    def __init__(
        self,
        n_ranks: int,
        machine: Machine = LAPTOP,
        real: bool = True,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.machine = machine
        self.real = real
        self.cost = CostModel(machine)
        self.sim = Simulator()
        self.world = World(self.sim, n_ranks, machine.network())
        self.barrier = Barrier(self.world, range(n_ranks), name="ga_sync")
        self._arrays: dict[str, _GlobalArrayMeta] = {}
        # local storage: per rank, name -> local rows ndarray (real mode)
        self._local: list[dict[str, np.ndarray]] = [dict() for _ in range(n_ranks)]
        self.elapsed = 0.0

    def rank_of(self, logical: int) -> int:
        return logical

    # -- array management ------------------------------------------------------
    def register_array(self, name: str, shape: tuple[int, ...], rank: int) -> None:
        if name in self._arrays:
            meta = self._arrays[name]
            if meta.shape != tuple(shape):
                raise GAError(f"conflicting create of {name!r}")
            return
        rows = shape[0]
        per = ceil(rows / self.n_ranks)
        bounds = [min(r * per, rows) for r in range(self.n_ranks + 1)]
        self._arrays[name] = _GlobalArrayMeta(name, tuple(shape), bounds)
        if self.real:
            for r in range(self.n_ranks):
                nrows = bounds[r + 1] - bounds[r]
                self._local[r][name] = np.zeros((nrows, *shape[1:]))

    def meta(self, name: str) -> _GlobalArrayMeta:
        meta = self._arrays.get(name)
        if meta is None:
            raise GAError(f"unknown global array {name!r}")
        return meta

    def local_share_bytes(self, rank: int) -> int:
        total = 0
        for meta in self._arrays.values():
            nrows = meta.bounds[rank + 1] - meta.bounds[rank]
            total += nrows * prod(meta.shape[1:], start=1) * 8
        return total

    def split_patch(self, meta: _GlobalArrayMeta, lo, hi):
        """Split a patch into (owner, lo, hi) pieces along dimension 0."""
        for axis, (l, h, s) in enumerate(zip(lo, hi, meta.shape)):
            if not (0 <= l < h <= s):
                raise GAError(
                    f"patch [{lo}:{hi}] outside array {meta.name!r} {meta.shape}"
                )
        row = lo[0]
        while row < hi[0]:
            owner = meta.owner_of_row(row)
            top = min(hi[0], meta.bounds[owner + 1])
            yield owner, (row, *lo[1:]), (top, *hi[1:]),
            row = top

    def local_patch(self, rank: int, name: str, lo, hi) -> Optional[np.ndarray]:
        if not self.real:
            return None
        meta = self.meta(name)
        base = meta.bounds[rank]
        sl = (slice(lo[0] - base, hi[0] - base),) + tuple(
            slice(l, h) for l, h in zip(lo[1:], hi[1:])
        )
        return self._local[rank][name][sl].copy()

    def apply_write(self, rank: int, kind: str, name: str, lo, hi, data) -> None:
        if not self.real:
            return
        meta = self.meta(name)
        base = meta.bounds[rank]
        sl = (slice(lo[0] - base, hi[0] - base),) + tuple(
            slice(l, h) for l, h in zip(lo[1:], hi[1:])
        )
        if kind == "put":
            self._local[rank][name][sl] = data
        else:
            self._local[rank][name][sl] += data

    def preload(self, name: str, shape: tuple[int, ...], value: np.ndarray) -> None:
        """Fill a global array before the run (models input file I/O)."""
        self.register_array(name, shape, rank=0)
        if not self.real:
            return
        meta = self.meta(name)
        for r in range(self.n_ranks):
            lo, hi = meta.bounds[r], meta.bounds[r + 1]
            self._local[r][name][...] = value[lo:hi]

    def read_array(self, name: str) -> np.ndarray:
        meta = self.meta(name)
        if not self.real:
            raise GAError("array contents unavailable in model mode")
        return np.concatenate(
            [self._local[r][name] for r in range(self.n_ranks)], axis=0
        )

    # -- service pump ---------------------------------------------------------
    def _service(self, rank: int) -> Generator:
        comm = self.world.comm(rank)
        while True:
            msg = yield from comm.recv(tag=GA_TAG)
            p = msg.payload
            if p == "shutdown":
                return
            if not isinstance(p, _PatchRequest):
                raise GAError(f"unexpected GA message {p!r}")
            if p.kind == "get":
                data = self.local_patch(rank, p.name, p.lo, p.hi)
                nbytes = prod((h - l for l, h in zip(p.lo, p.hi)), start=1) * 8
                comm.isend(data, dest=msg.source, tag=p.reply_tag, nbytes=64 + nbytes)
            else:
                self.apply_write(rank, p.kind, p.name, p.lo, p.hi, p.data)
                comm.isend(True, dest=msg.source, tag=p.reply_tag)

    # -- program execution -------------------------------------------------------
    def run(self, program: Callable[[GAEnv], Generator]) -> list:
        """Run one GA program SPMD on every rank; returns rank results."""
        envs = [GAEnv(self, r) for r in range(self.n_ranks)]
        procs = []
        finish_times = [0.0] * self.n_ranks

        def wrapped(env: GAEnv) -> Generator:
            result = yield from program(env)
            finish_times[env.rank] = self.sim.now
            return result

        for env in envs:
            procs.append(self.sim.spawn(wrapped(env), name=f"ga{env.rank}"))
            self.sim.spawn(self._service(env.rank), name=f"ga{env.rank}.svc")

        def shutdown_watch() -> Generator:
            for p in procs:
                if not p.finished:
                    yield p.done_event
            for r in range(self.n_ranks):
                self.world.comm(0).isend("shutdown", dest=r, tag=GA_TAG)

        self.sim.spawn(shutdown_watch(), name="ga.shutdown")
        self.sim.run()
        self.elapsed = max(finish_times)
        return [p.result for p in procs]
