"""An NWChem-style MP2 on the mini Global Arrays toolkit.

The Fig.-7 comparison point: the same MP2 energy the SIAL program
computes, but written the way a GA application is written --

* the (ia|jb) integrals live in one 2-D global array laid out by the
  *programmer* as ``(i*nv + a, j*nv + b)``;
* each rank loops over its statically assigned (i, j) pairs, doing a
  *synchronous* ``ga.get`` of the (nv, nv) patch for each pair (no
  overlap of communication and computation unless hand-coded);
* working buffers are allocated up front against the per-core memory
  budget, and the run aborts with :class:`GAMemoryError` when they do
  not fit -- NWChem's "calculation will simply not run" behaviour.

``nwchem_memory_floor`` models the baseline's additional rigid
per-core requirement (replicated half-transformed integral scratch of
the preceding 4-index transformation), which is what makes NWChem fail
outright at 1 GB/core in Fig. 7 while ACES III (served arrays, SIP-
managed placement) runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ..chem import Molecule
from ..machines import Machine
from .ga import GACluster, GAEnv, GAMemoryError

__all__ = ["GAMP2Result", "ga_mp2", "nwchem_memory_floor", "nwchem_feasible"]


@dataclass
class GAMP2Result:
    energy: float
    elapsed: float
    n_ranks: int


def nwchem_memory_floor(n_basis: int, n_occ: int, copies: int = 5) -> float:
    """Rigid per-core bytes the GA baseline needs regardless of P.

    Models the replicated half-transformed integral scratch
    (``copies`` buffers of n^2 x o^2 doubles) of the conventional
    4-index transformation preceding MP2 -- the component that cannot
    shrink with more processors because its layout is fixed in the
    program.
    """
    return float(copies) * (n_basis**2) * (n_occ**2) * 8.0


def nwchem_feasible(
    molecule: Molecule, n_ranks: int, memory_per_rank: float
) -> bool:
    """Whether the GA-style MP2 fits: rigid floor + local GA share."""
    n, no = molecule.n_basis, molecule.n_occ
    nv = n - no
    ga_share = (no * nv) ** 2 * 8.0 / n_ranks
    patch = nv * nv * 8.0
    return nwchem_memory_floor(n, no) + ga_share + 2 * patch <= memory_per_rank


def nwchem_gradient_feasible(
    molecule: Molecule, n_ranks: int, memory_per_rank: float
) -> bool:
    """Memory feasibility of the GA-style MP2 *gradient* (Fig. 7).

    The gradient keeps three O(n^4) integral generations (AO, half-
    and fully-transformed) in global arrays whose local shares divide
    by P, on top of the rigid replicated floor.  A served-array design
    (ACES III) keeps those on disk instead; GA's disk-resident arrays
    existed but NWChem's MP2 gradient of the era held them in
    aggregate memory -- which is what the paper's Fig. 7 exposes.
    """
    n, no = molecule.n_basis, molecule.n_occ
    ga_total = 3.0 * float(n) ** 4 * 8.0
    working = 2.0 * n * n * 8.0
    return (
        nwchem_memory_floor(n, no) + ga_total / n_ranks + working
        <= memory_per_rank
    )


def ga_mp2(
    ovov: np.ndarray,
    e_occ: np.ndarray,
    e_virt: np.ndarray,
    n_ranks: int = 4,
    machine: Optional[Machine] = None,
    memory_floor: float = 0.0,
    use_nbget: bool = False,
) -> GAMP2Result:
    """Run the GA-style MP2; returns energy and simulated elapsed time.

    ``use_nbget`` switches to the hand-overlapped variant (prefetching
    the next pair's patch with ``nga_nbget``/``wait``) -- the extra
    code a GA programmer must write to get what the SIP does
    automatically.
    """
    no, nv = len(e_occ), len(e_virt)
    flat = np.ascontiguousarray(ovov.reshape(no * nv, no * nv))

    from ..machines import LAPTOP

    cluster = GACluster(n_ranks, machine=machine or LAPTOP, real=True)
    cluster.preload("v", (no * nv, no * nv), flat)

    denom_i = e_occ[:, None] - e_virt[None, :]

    pairs = [(i, j) for i in range(no) for j in range(no)]

    def patch_bounds(i, j):
        return (i * nv, j * nv), ((i + 1) * nv, (j + 1) * nv)

    def program(env: GAEnv) -> Generator:
        # rigid up-front allocations: the replicated scratch plus two
        # patch buffers (current + prefetched)
        if memory_floor > 0:
            side = max(1, int((memory_floor / 8) ** 0.5))
            env.allocate_local((side, side))
        env.allocate_local((nv, nv))
        env.allocate_local((nv, nv))

        my_pairs = pairs[env.rank :: env.nprocs]
        yield from env.sync()
        energy = 0.0
        handle = None
        if use_nbget and my_pairs:
            lo, hi = patch_bounds(*my_pairs[0])
            handle = env.nbget("v", lo, hi)
        for k, (i, j) in enumerate(my_pairs):
            if use_nbget:
                patch = yield from handle.wait()
                if k + 1 < len(my_pairs):
                    lo, hi = patch_bounds(*my_pairs[k + 1])
                    handle = env.nbget("v", lo, hi)
            else:
                lo, hi = patch_bounds(i, j)
                patch = yield from env.get("v", lo, hi)
            denom = denom_i[i][:, None] + denom_i[j][None, :]
            t = patch / denom
            energy += float(np.sum(t * (2.0 * patch - patch.T)))
            yield env.compute(6.0 * nv * nv)
        yield from env.sync()
        total = yield from env.reduce_sum(energy)
        return total

    results = cluster.run(program)
    return GAMP2Result(energy=results[0], elapsed=cluster.elapsed, n_ranks=n_ranks)
