"""Baseline systems the paper compares against.

A miniature Global Arrays toolkit (:mod:`~repro.baselines.ga`) and an
NWChem-style MP2 written on top of it
(:mod:`~repro.baselines.nwchem_mp2`) -- the comparison system of the
paper's Fig. 7.
"""

from .ga import GACluster, GAEnv, GAError, GAHandle, GAMemoryError
from .nwchem_mp2 import (
    GAMP2Result,
    ga_mp2,
    nwchem_feasible,
    nwchem_gradient_feasible,
    nwchem_memory_floor,
)

__all__ = [
    "GACluster",
    "GAEnv",
    "GAError",
    "GAHandle",
    "GAMP2Result",
    "GAMemoryError",
    "ga_mp2",
    "nwchem_feasible",
    "nwchem_gradient_feasible",
    "nwchem_memory_floor",
]
