"""Command-line interface: ``python -m repro <command> ...``.

Subcommands mirror the SIA toolchain a SIAL developer uses:

* ``check``   -- parse + semantic-check a SIAL source file
  (``--strict`` also fails on race-detector diagnostics);
* ``lint``    -- run the static race detector and print every
  diagnostic with its source location;
* ``compile`` -- compile and print the SIA bytecode listing;
* ``disasm``  -- compile at an ``-O`` level and print the optimized
  listing (``--diff`` also shows per-pass instruction-count deltas);
* ``format``  -- pretty-print the program in canonical form;
* ``dryrun``  -- the master's memory-feasibility report;
* ``run``     -- execute on the simulated SIP (model backend; real
  data needs inputs, which the Python API provides);
* ``trace``   -- run with the trace recorder and print per-worker
  timelines showing communication/computation overlap;
* ``scale``   -- extract the program's workload model from its bytecode
  and print a strong-scaling table at the requested core counts.

Symbolic constants are passed as ``-D name=value``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .machines import MACHINES, get_machine
from .perfmodel import extract_workload, sweep
from .sial import SialError, compile_source, disassemble, parse
from .sial.analyzer import analyze
from .sial.printer import pretty
from .sip import SIPConfig
from .sip.blocks import ResolvedIndexTable
from .sip.dryrun import dry_run
from .sip.runner import run_program

__all__ = ["main"]


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as fh:
        return fh.read()


def _symbolics(pairs: Optional[Sequence[str]]) -> dict[str, float]:
    out: dict[str, float] = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"bad -D option {pair!r}; expected name=value")
        name, value = pair.split("=", 1)
        out[name.strip()] = float(value)
    return out


def _config(args: argparse.Namespace) -> SIPConfig:
    kwargs = {}
    if args.memory_mb is not None:
        kwargs["memory_per_worker"] = args.memory_mb * 1e6
    execution = getattr(args, "backend", "sim")
    if execution == "mp":
        if getattr(args, "no_arena", False):
            kwargs["mp_arena"] = False
        arena_mb = getattr(args, "arena_mb", None)
        if arena_mb is not None:
            kwargs["mp_arena_max_bytes"] = int(arena_mb * 1e6)
        if getattr(args, "no_batch", False):
            kwargs["mp_batch_max_msgs"] = 1
    # the multiprocess backend exists for real wallclock, so it pairs
    # with real kernels; the simulator defaults to the coarse model
    return SIPConfig(
        workers=args.workers,
        io_servers=args.io_servers,
        segment_size=args.segment,
        backend="real" if execution == "mp" else "model",
        execution=execution,
        machine=get_machine(args.machine),
        prefetch_depth=args.prefetch,
        spill=args.spill,
        opt_level=getattr(args, "opt_level", 0),
        **kwargs,
    )


def _add_opt_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-O",
        dest="opt_level",
        type=int,
        default=0,
        choices=(0, 1, 2),
        metavar="N",
        help="SIAL optimization level (0 = verbatim, 2 = full pipeline)",
    )


def _add_runtime_options(parser: argparse.ArgumentParser) -> None:
    _add_opt_option(parser)
    parser.add_argument("-w", "--workers", type=int, default=4)
    parser.add_argument("--io-servers", type=int, default=1)
    parser.add_argument("-s", "--segment", type=int, default=4)
    parser.add_argument("--prefetch", type=int, default=2)
    parser.add_argument(
        "-m",
        "--machine",
        default="laptop",
        choices=sorted(MACHINES),
        help="machine performance model",
    )
    parser.add_argument(
        "--memory-mb",
        type=float,
        default=None,
        metavar="MB",
        help="per-worker memory budget in MB (default: config default)",
    )
    parser.add_argument(
        "--spill",
        action="store_true",
        help="enable the unified memory hierarchy with spill-to-scratch",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SIAL/SIP toolchain (Super Instruction Architecture)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="parse and semantic-check")
    p.add_argument("file")
    p.add_argument(
        "--strict",
        action="store_true",
        help="also fail on static race-detector diagnostics",
    )

    p = sub.add_parser("lint", help="static race detection")
    p.add_argument("files", nargs="*", metavar="FILE")
    p.add_argument(
        "--library",
        action="store_true",
        help="also lint every bundled SIAL program",
    )

    p = sub.add_parser("compile", help="compile and show SIA bytecode")
    p.add_argument("file")

    p = sub.add_parser(
        "disasm", help="compile at an -O level and show the optimized bytecode"
    )
    p.add_argument("file")
    _add_opt_option(p)
    p.add_argument(
        "--diff",
        action="store_true",
        help="also print the per-pass instruction-count deltas",
    )

    p = sub.add_parser("format", help="pretty-print canonical SIAL")
    p.add_argument("file")

    p = sub.add_parser("dryrun", help="memory-feasibility report")
    p.add_argument("file")
    p.add_argument("-D", dest="defines", action="append", metavar="NAME=VALUE")
    _add_runtime_options(p)

    p = sub.add_parser("run", help="execute on the simulated SIP")
    p.add_argument("file")
    p.add_argument("-D", dest="defines", action="append", metavar="NAME=VALUE")
    p.add_argument("--profile", action="store_true", help="print the profile")
    p.add_argument(
        "--sanitize",
        action="store_true",
        help="record block accesses and report runtime conflicts",
    )
    p.add_argument(
        "--backend",
        default="sim",
        choices=("sim", "mp"),
        help="execution backend: the deterministic simulator (default) "
        "or real multiprocess workers over pipes + shared memory",
    )
    p.add_argument(
        "--no-arena",
        action="store_true",
        help="mp backend: disable the pooled shared-memory slab arena "
        "(every detoured payload pays a one-shot segment)",
    )
    p.add_argument(
        "--arena-mb",
        type=float,
        default=None,
        metavar="MB",
        help="mp backend: per-rank cap on the slab arena footprint",
    )
    p.add_argument(
        "--no-batch",
        action="store_true",
        help="mp backend: disable control-plane frame coalescing "
        "(one pipe write per message)",
    )
    _add_runtime_options(p)

    p = sub.add_parser("trace", help="run and print per-worker timelines")
    p.add_argument("file")
    p.add_argument("-D", dest="defines", action="append", metavar="NAME=VALUE")
    p.add_argument("--width", type=int, default=72)
    _add_runtime_options(p)

    p = sub.add_parser("scale", help="strong-scaling table via the coarse model")
    p.add_argument("file")
    p.add_argument("-D", dest="defines", action="append", metavar="NAME=VALUE")
    p.add_argument(
        "-p",
        "--procs",
        default="32,64,128,256",
        help="comma-separated processor counts",
    )
    _add_runtime_options(p)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except SialError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except (ValueError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


def _lint_targets(args: argparse.Namespace) -> list[tuple[str, str, str]]:
    """(label, source, filename) triples for the lint subcommand."""
    targets = [(path, _read(path), path) for path in args.files]
    if args.library:
        from .programs.library import ALL_PROGRAMS

        for name, src in ALL_PROGRAMS.items():
            targets.append((f"library:{name}", src, f"<{name}>"))
    if not targets:
        raise SystemExit(
            "lint: no files given (use --library for the bundled programs)"
        )
    return targets


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "lint":
        from .sial.racecheck import check_races

        failures = 0
        for label, src, filename in _lint_targets(args):
            program = parse(src, filename)
            report = check_races(analyze(program, src))
            if report.ok:
                print(f"{label}: no races detected")
            else:
                failures += 1
                print(f"{label}: {len(report.diagnostics)} diagnostic(s)")
                for diag in report.diagnostics:
                    print(f"  {diag.render()}")
        return 1 if failures else 0

    source = _read(args.file)

    if args.command == "check":
        program = parse(source, args.file)
        analyze(program, source, strict=args.strict)
        suffix = ", no races detected" if args.strict else ""
        print(f"{args.file}: OK ({program.name}{suffix})")
        return 0

    if args.command == "compile":
        compiled = compile_source(source, args.file)
        print(disassemble(compiled))
        return 0

    if args.command == "disasm":
        compiled = compile_source(source, args.file, optimize=args.opt_level)
        if args.diff:
            if compiled.opt_report is not None:
                print(compiled.opt_report.render())
            else:
                print("pass pipeline at -O0: (not run)")
            print()
        print(disassemble(compiled))
        return 0

    if args.command == "format":
        print(pretty(parse(source, args.file)), end="")
        return 0

    compiled = compile_source(source, args.file)
    symbolics = _symbolics(getattr(args, "defines", None))
    config = _config(args)

    if args.command == "dryrun":
        table = ResolvedIndexTable(
            compiled,
            symbolics,
            segment_size=config.segment_size,
            segment_sizes=config.segment_sizes,
            subsegments_per_segment=config.subsegments_per_segment,
        )
        report = dry_run(compiled, config, table)
        print(report.report())
        return 0 if report.feasible else 2

    if args.command == "run":
        if args.sanitize:
            config.sanitize = True
        result = run_program(compiled, config, symbolics)
        if config.execution == "mp":
            print(
                f"wallclock time: {result.stats['wallclock_seconds']:.6f} s "
                f"on {config.workers} worker processes"
            )
        else:
            print(
                f"simulated time: {result.elapsed:.6f} s on {config.workers} workers"
            )
        print(f"wait fraction : {100 * result.profile.wait_fraction:.2f} %")
        for name, value in sorted(result.scalars.items()):
            print(f"scalar {name} = {value!r}")
        if args.profile:
            print(result.profile.report())
        if result.sanitizer_report is not None:
            print(result.sanitizer_report.render())
            if not result.sanitizer_report.ok:
                return 1
        return 0

    if args.command == "trace":
        from .sip.tracing import TraceRecorder

        tracer = TraceRecorder()
        config.tracer = tracer
        result = run_program(compiled, config, symbolics)
        print(tracer.timeline(width=args.width))
        print(
            f"elapsed {result.elapsed:.6f} s, wait "
            f"{100 * result.profile.wait_fraction:.1f} % of elapsed"
        )
        return 0

    if args.command == "scale":
        workload = extract_workload(compiled, config, symbolics)
        procs = [int(p) for p in args.procs.split(",")]
        machine = get_machine(args.machine)
        rows = sweep(workload, machine, procs)
        print(f"{'procs':>8s} {'time (s)':>12s} {'efficiency':>10s} {'wait %':>7s}")
        for row in rows:
            print(
                f"{row['procs']:>8d} {row['time']:>12.6f} "
                f"{row['efficiency']:>10.2f} {row['wait_percent']:>7.1f}"
            )
        return 0

    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover
