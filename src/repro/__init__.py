"""repro: the Super Instruction Architecture (SIAL + SIP), reproduced.

A from-scratch Python implementation of the system described in
"A Block-Oriented Language and Runtime System for Tensor Algebra with
Very Large Arrays" (Sanders, Bartlett, Deumens, Lotrich, Ponton;
SC 2010):

* :mod:`repro.sial`      -- the SIAL language: lexer, parser, semantic
  analysis, and compilation to SIA bytecode;
* :mod:`repro.sip`       -- the SIP runtime: master/workers/I/O servers,
  distributed and served arrays, block caches, prefetching, guided
  pardo scheduling, dry-run memory analysis, profiling, checkpointing;
* :mod:`repro.simmpi`    -- the deterministic simulated-MPI substrate
  the SIP runs on;
* :mod:`repro.chem`      -- synthetic quantum-chemistry inputs and the
  numpy reference methods (SCF, MP2, LCCD, CCSD, (T));
* :mod:`repro.programs`  -- SIAL application programs (the "ACES III"
  layer) and drivers validating them against the references;
* :mod:`repro.baselines` -- a mini Global Arrays toolkit and an
  NWChem-style MP2 (the paper's comparison system);
* :mod:`repro.perfmodel` -- the coarse model reproducing the paper's
  1k-108k-core scaling figures;
* :mod:`repro.api`       -- the high-level entry points.
"""

from . import api
from .api import MACHINES, SIPConfig, compile_sial, dry_run, get_machine, run
from .machines import Machine

__version__ = "1.0.0"

__all__ = [
    "MACHINES",
    "Machine",
    "SIPConfig",
    "api",
    "compile_sial",
    "dry_run",
    "get_machine",
    "run",
]
