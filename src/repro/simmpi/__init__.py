"""Simulated MPI substrate for the SIP runtime.

The paper's SIP runs on real MPI clusters; this package provides a
deterministic discrete-event stand-in with the same programming model
(non-blocking sends/receives, tags, barriers, asynchronous disk I/O)
plus explicit machine performance parameters, so that the runtime's
overlap, prefetching and scheduling behaviour can be both *executed*
(real numpy data) and *measured* (simulated seconds) on one laptop.
"""

from .comm import ANY_SOURCE, ANY_TAG, Barrier, Message, Request, SimComm, World
from .disk import Disk, DiskStats
from .faults import (
    DiskFault,
    FaultEvent,
    FaultPlan,
    FaultReport,
    FaultStats,
    ResilienceStats,
    WorkerCrashed,
)
from .network import Network, payload_nbytes
from .simulator import (
    AllOf,
    AnyOf,
    DeadlockError,
    Event,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "AllOf",
    "AnyOf",
    "Barrier",
    "DeadlockError",
    "Disk",
    "DiskFault",
    "DiskStats",
    "Event",
    "FaultEvent",
    "FaultPlan",
    "FaultReport",
    "FaultStats",
    "ResilienceStats",
    "WorkerCrashed",
    "Message",
    "Network",
    "Process",
    "Request",
    "SimComm",
    "SimulationError",
    "Simulator",
    "Timeout",
    "World",
    "payload_nbytes",
]
