"""Simulated asynchronous disks for the SIP I/O servers.

Each I/O server rank owns one :class:`Disk`.  Operations are issued
asynchronously -- ``read``/``write`` immediately return an
:class:`~repro.simmpi.simulator.Event` that fires when the operation
completes -- but the device itself is serial: requests queue and are
serviced one at a time in issue order, each costing a seek latency plus
``nbytes / bandwidth``.  This reproduces the property the paper relies
on: a slow disk operation never blocks the I/O server's message loop,
it only delays the completion event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .faults import DiskFault, FaultPlan
from .simulator import Event, Simulator

__all__ = ["Disk", "DiskStats"]


@dataclass
class DiskStats:
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time: float = 0.0
    errors: int = 0


class Disk:
    """A serial storage device with seek latency and streaming bandwidth."""

    def __init__(
        self,
        sim: Simulator,
        seek_latency: float = 5.0e-3,
        bandwidth: float = 200.0e6,
        name: str = "disk",
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("disk bandwidth must be positive")
        self.sim = sim
        self.seek_latency = seek_latency
        self.bandwidth = bandwidth
        self.name = name
        self.faults = faults
        self.stats = DiskStats()
        # simulated time at which the device becomes free
        self._free_at = 0.0

    def _enqueue(self, nbytes: int, kind: str) -> Event:
        duration = self.seek_latency + nbytes / self.bandwidth
        start = max(self.sim.now, self._free_at)
        finish = start + duration
        self._free_at = finish
        self.stats.busy_time += duration
        # A faulted operation still occupies the device for its full
        # duration; its completion event carries a DiskFault instead of
        # None so resilient callers can distinguish and retry.
        value = None
        if self.faults is not None and self.faults.disk_verdict(
            kind, self.name, self.sim.now
        ):
            self.stats.errors += 1
            value = DiskFault(kind, self.name, self.sim.now)
        ev = self.sim.event(name=f"{self.name} io")
        self.sim._schedule_call(finish - self.sim.now, ev.succeed, value)
        return ev

    def read(self, nbytes: int) -> Event:
        """Asynchronously read ``nbytes``; event fires on completion.

        The event value is ``None`` on success or a
        :class:`~repro.simmpi.faults.DiskFault` on an injected error.
        """
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        return self._enqueue(nbytes, "read")

    def write(self, nbytes: int) -> Event:
        """Asynchronously write ``nbytes``; event fires on completion.

        The event value is ``None`` on success or a
        :class:`~repro.simmpi.faults.DiskFault` on an injected error.
        """
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        return self._enqueue(nbytes, "write")
