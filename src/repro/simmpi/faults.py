"""Deterministic fault injection for the simulated MPI substrate.

Production SIP deployments (ACES III at 100k+ cores) run for hours on
hardware where transient faults are routine; the reproduction's perfect
network and immortal ranks hide an entire dimension of the runtime's
design.  A :class:`FaultPlan` makes the substrate adversarial in a
fully deterministic, seed-driven way:

* **message drops** -- a remote send is silently discarded in transit;
* **message delay spikes** -- delivery is held back by an extra latency;
* **disk errors** -- a read or write completes with a :class:`DiskFault`
  instead of succeeding;
* **rank crashes** -- a rank dies at a scheduled simulated time
  (surfaced as :class:`WorkerCrashed`).

The :class:`~repro.simmpi.comm.World` and :class:`~repro.simmpi.disk.Disk`
consult the plan only when one is attached, so the default (no plan)
execution path is untouched.  Decisions come from per-category
``random.Random`` streams seeded from the plan's seed, so a fixed seed
gives the same fault pattern on every run -- the same determinism
guarantee the rest of the simulator provides.

The recovery side lives in the SIP layer (retry/backoff/dedup in
:mod:`repro.sip`); this module also defines the bookkeeping they share:
:class:`ResilienceStats` (retry counters) and :class:`FaultReport`
(injected vs. recovered, assembled by the runner).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields
from typing import Optional

from .simulator import SimulationError

__all__ = [
    "FaultPlan",
    "FaultStats",
    "FaultEvent",
    "DiskFault",
    "WorkerCrashed",
    "ResilienceStats",
    "FaultReport",
]


class WorkerCrashed(SimulationError):
    """A simulated rank died (injected by a :class:`FaultPlan`)."""

    def __init__(self, rank: int, time: float) -> None:
        super().__init__(f"rank {rank} crashed at t={time:g}")
        self.rank = rank
        self.time = time


@dataclass(frozen=True)
class DiskFault:
    """Value a faulted disk operation's completion event carries."""

    kind: str  # "read" | "write"
    device: str
    time: float


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for the report's detailed log."""

    kind: str
    time: float
    detail: str


@dataclass
class FaultStats:
    """Counters of faults actually injected during a run."""

    messages_dropped: int = 0
    messages_delayed: int = 0
    added_latency: float = 0.0
    disk_read_errors: int = 0
    disk_write_errors: int = 0
    crashes: int = 0

    @property
    def total(self) -> int:
        return (
            self.messages_dropped
            + self.messages_delayed
            + self.disk_read_errors
            + self.disk_write_errors
            + self.crashes
        )


class FaultPlan:
    """Seed-driven schedule of injected faults for one (or more) runs.

    Parameters
    ----------
    seed:
        Seeds the per-category decision streams; a fixed seed yields an
        identical fault pattern on every run.
    message_drop_rate / message_delay_rate:
        Per-remote-message probabilities of a drop / a delay spike.
    message_delay:
        Mean added delivery latency of a delay spike, seconds (the
        actual spike varies deterministically in [0.5x, 1.5x]).
    disk_read_error_rate / disk_write_error_rate:
        Per-operation probabilities that a disk read / write fails.
    crash_times:
        ``{rank: simulated_time}`` -- the rank dies the first time its
        interpreter runs at or after that time.  Each crash fires once,
        even across an automatic restart.
    max_message_drops / max_disk_errors:
        Optional hard caps on injected counts (handy for tests that
        want "exactly one disk error").
    max_restarts:
        How many crash-triggered restarts the runner may attempt.
    """

    def __init__(
        self,
        seed: int = 0,
        message_drop_rate: float = 0.0,
        message_delay_rate: float = 0.0,
        message_delay: float = 1.0e-3,
        disk_read_error_rate: float = 0.0,
        disk_write_error_rate: float = 0.0,
        crash_times: Optional[dict[int, float]] = None,
        max_message_drops: Optional[int] = None,
        max_disk_errors: Optional[int] = None,
        max_restarts: int = 3,
        keep_log: bool = True,
    ) -> None:
        for name, rate in (
            ("message_drop_rate", message_drop_rate),
            ("message_delay_rate", message_delay_rate),
            ("disk_read_error_rate", disk_read_error_rate),
            ("disk_write_error_rate", disk_write_error_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if message_drop_rate + message_delay_rate > 1.0:
            raise ValueError("message drop + delay rates must not exceed 1")
        if message_delay < 0:
            raise ValueError("message_delay must be >= 0")
        self.seed = seed
        self.message_drop_rate = message_drop_rate
        self.message_delay_rate = message_delay_rate
        self.message_delay = message_delay
        self.disk_read_error_rate = disk_read_error_rate
        self.disk_write_error_rate = disk_write_error_rate
        self.crash_times = dict(crash_times or {})
        self.max_message_drops = max_message_drops
        self.max_disk_errors = max_disk_errors
        self.max_restarts = max_restarts
        self.keep_log = keep_log
        self.stats = FaultStats()
        self.log: list[FaultEvent] = []
        self._msg_rng = random.Random(f"{seed}/messages")
        self._disk_rng = random.Random(f"{seed}/disk")
        self._crashed: set[int] = set()

    # -- messages ---------------------------------------------------------
    def message_verdict(
        self, src: int, dst: int, tag: int, nbytes: int, now: float
    ) -> tuple[str, float]:
        """Fate of one message: ("ok"|"drop"|"delay", extra_delay)."""
        if src == dst:
            return ("ok", 0.0)  # self-sends are a local memcpy
        r = self._msg_rng.random()
        if r < self.message_drop_rate:
            if (
                self.max_message_drops is not None
                and self.stats.messages_dropped >= self.max_message_drops
            ):
                return ("ok", 0.0)
            self.stats.messages_dropped += 1
            self._log("drop", now, f"{src}->{dst} tag={tag} ({nbytes} B)")
            return ("drop", 0.0)
        if r < self.message_drop_rate + self.message_delay_rate:
            spike = self.message_delay * (0.5 + self._msg_rng.random())
            self.stats.messages_delayed += 1
            self.stats.added_latency += spike
            self._log("delay", now, f"{src}->{dst} tag={tag} +{spike:g}s")
            return ("delay", spike)
        return ("ok", 0.0)

    # -- disks ------------------------------------------------------------
    def disk_verdict(self, kind: str, device: str, now: float) -> bool:
        """True if this disk operation should fail."""
        rate = (
            self.disk_read_error_rate if kind == "read" else self.disk_write_error_rate
        )
        if rate <= 0.0 or self._disk_rng.random() >= rate:
            return False
        errors = self.stats.disk_read_errors + self.stats.disk_write_errors
        if self.max_disk_errors is not None and errors >= self.max_disk_errors:
            return False
        if kind == "read":
            self.stats.disk_read_errors += 1
        else:
            self.stats.disk_write_errors += 1
        self._log(f"disk-{kind}-error", now, device)
        return True

    # -- crashes ----------------------------------------------------------
    def pending_crash_time(self, rank: int) -> Optional[float]:
        """The scheduled crash time of a rank, if it has not fired yet."""
        if rank in self._crashed:
            return None
        return self.crash_times.get(rank)

    def record_crash(self, rank: int, now: float) -> None:
        """Mark a scheduled crash as fired (it will not recur on restart)."""
        self._crashed.add(rank)
        self.stats.crashes += 1
        self._log("crash", now, f"rank {rank}")

    # -- bookkeeping -------------------------------------------------------
    def _log(self, kind: str, now: float, detail: str) -> None:
        if self.keep_log:
            self.log.append(FaultEvent(kind, now, detail))

    @property
    def any_faults_configured(self) -> bool:
        return (
            self.message_drop_rate > 0
            or self.message_delay_rate > 0
            or self.disk_read_error_rate > 0
            or self.disk_write_error_rate > 0
            or bool(self.crash_times)
        )


@dataclass
class ResilienceStats:
    """Recovery-action counters, kept per rank and summed by the runner."""

    fetch_retries: int = 0  # get / request re-sends
    put_retries: int = 0
    prepare_retries: int = 0
    chunk_retries: int = 0
    collective_retries: int = 0
    control_retries: int = 0  # WorkerDone / Shutdown re-sends
    duplicates_ignored: int = 0  # sequence-number dedup hits
    writeback_retries: int = 0
    disk_read_retries: int = 0

    @property
    def message_retries(self) -> int:
        return (
            self.fetch_retries
            + self.put_retries
            + self.prepare_retries
            + self.chunk_retries
            + self.collective_retries
            + self.control_retries
        )

    def add(self, other: "ResilienceStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class FaultReport:
    """Injected vs. observed vs. recovered faults for one completed run."""

    injected: FaultStats
    retries: ResilienceStats
    restarts: int = 0
    completed: bool = True
    log: list[FaultEvent] = field(default_factory=list)

    def recovery_gaps(self) -> list[str]:
        """Injected faults with no matching recovery action (empty = all
        faults were retried or recovered)."""
        gaps: list[str] = []
        if not self.completed:
            gaps.append("run did not complete")
        inj, ret = self.injected, self.retries
        if inj.messages_dropped > ret.message_retries:
            gaps.append(
                f"{inj.messages_dropped} dropped messages but only "
                f"{ret.message_retries} retries"
            )
        if inj.disk_write_errors > ret.writeback_retries:
            gaps.append(
                f"{inj.disk_write_errors} disk write errors but only "
                f"{ret.writeback_retries} write-back retries"
            )
        if inj.disk_read_errors > ret.disk_read_retries:
            gaps.append(
                f"{inj.disk_read_errors} disk read errors but only "
                f"{ret.disk_read_retries} read retries"
            )
        if inj.crashes > self.restarts:
            gaps.append(f"{inj.crashes} crashes but only {self.restarts} restarts")
        return gaps

    @property
    def all_recovered(self) -> bool:
        return not self.recovery_gaps()

    def summary(self) -> str:
        inj, ret = self.injected, self.retries
        lines = [
            "fault report:",
            f"  injected : {inj.messages_dropped} drops, "
            f"{inj.messages_delayed} delays (+{inj.added_latency:g}s), "
            f"{inj.disk_read_errors}r/{inj.disk_write_errors}w disk errors, "
            f"{inj.crashes} crashes",
            f"  recovered: {ret.message_retries} message retries "
            f"({ret.fetch_retries} fetch, {ret.put_retries} put, "
            f"{ret.prepare_retries} prepare, {ret.chunk_retries} chunk, "
            f"{ret.collective_retries} collective, {ret.control_retries} control), "
            f"{ret.duplicates_ignored} duplicates deduped, "
            f"{ret.writeback_retries} write-back retries, "
            f"{ret.disk_read_retries} disk read retries, "
            f"{self.restarts} restarts",
        ]
        gaps = self.recovery_gaps()
        if gaps:
            lines.append("  UNRECOVERED: " + "; ".join(gaps))
        else:
            lines.append("  all injected faults retried or recovered")
        return "\n".join(lines)
