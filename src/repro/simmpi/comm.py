"""Simulated MPI point-to-point and collective communication.

The :class:`World` owns the mailboxes of every rank; each rank obtains
a :class:`SimComm` view and uses an mpi4py-flavoured API:

* ``req = comm.isend(payload, dest, tag)`` -- non-blocking send.
* ``req = comm.irecv(source, tag)``        -- non-blocking receive.
* ``msg = yield req.event``                -- wait for completion.
* ``yield from comm.send(...)`` / ``msg = yield from comm.recv(...)``
  -- blocking convenience wrappers.
* ``yield from barrier.wait(comm)``        -- barrier over a rank group.

Matching follows MPI semantics: receives match messages by
``(source, tag)`` with :data:`ANY_SOURCE` / :data:`ANY_TAG` wildcards,
and matching is FIFO with respect to message *delivery* order for a
given (source, dest, tag) triple.  Delivery order is deterministic
because the underlying engine breaks simultaneous-event ties by
schedule order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Iterable, Optional

from .faults import FaultPlan
from .network import Network, payload_nbytes
from .simulator import Event, Simulator, Timeout

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "Request", "SimComm", "World", "Barrier"]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class Message:
    """A delivered message as seen by the receiver."""

    payload: Any
    source: int
    tag: int
    nbytes: int


class Request:
    """Handle for a non-blocking operation; ``event`` fires on completion.

    For receives the event value is the :class:`Message`; for sends it
    is ``None``.
    """

    __slots__ = ("event", "kind")

    def __init__(self, event: Event, kind: str) -> None:
        self.event = event
        self.kind = kind

    @property
    def completed(self) -> bool:
        return self.event.triggered

    def test(self) -> bool:
        """Non-blocking completion check (MPI_Test)."""
        return self.event.triggered


@dataclass
class _PostedRecv:
    source: int
    tag: int
    event: Event


class _Mailbox:
    """Per-rank store of arrived-but-unmatched messages and posted receives."""

    __slots__ = ("arrived", "posted")

    def __init__(self) -> None:
        self.arrived: list[Message] = []
        self.posted: list[_PostedRecv] = []

    def deliver(self, msg: Message) -> None:
        for i, pr in enumerate(self.posted):
            if _matches(pr.source, pr.tag, msg):
                del self.posted[i]
                pr.event.succeed(msg)
                return
        self.arrived.append(msg)

    def post(self, pr: _PostedRecv) -> None:
        for i, msg in enumerate(self.arrived):
            if _matches(pr.source, pr.tag, msg):
                del self.arrived[i]
                pr.event.succeed(msg)
                return
        self.posted.append(pr)


def _matches(want_source: int, want_tag: int, msg: Message) -> bool:
    return (want_source in (ANY_SOURCE, msg.source)) and (
        want_tag in (ANY_TAG, msg.tag)
    )


class World:
    """The set of simulated ranks sharing one network."""

    def __init__(
        self,
        sim: Simulator,
        size: int,
        network: Optional[Network] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.sim = sim
        self.size = size
        self.network = network if network is not None else Network()
        self.faults = faults
        self._mailboxes = [_Mailbox() for _ in range(size)]
        self.stats = WorldStats()

    def comm(self, rank: int) -> "SimComm":
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} outside world of size {self.size}")
        return SimComm(self, rank)

    def barrier(self, group: Iterable[int], name: str = "barrier") -> "Barrier":
        """Create a reusable barrier over ``group``.

        Part of the transport interface (see
        :mod:`repro.sip.transport`): the multiprocess world returns a
        message-based barrier here, while the simulated one can simply
        count arrivals in shared memory.
        """
        return Barrier(self, group, name=name)


@dataclass
class WorldStats:
    """Aggregate traffic counters, useful in tests and benchmarks."""

    messages_sent: int = 0
    bytes_sent: int = 0
    # bytes that crossed between distinct ranks (excludes self-sends)
    remote_bytes: int = 0


class SimComm:
    """A single rank's endpoint into the :class:`World`."""

    __slots__ = ("world", "rank")

    def __init__(self, world: World, rank: int) -> None:
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    # -- point to point ---------------------------------------------------
    def isend(
        self,
        payload: Any,
        dest: int,
        tag: int,
        nbytes: Optional[int] = None,
    ) -> Request:
        """Non-blocking send; the request completes after injection.

        Delivery to the destination mailbox happens after the modeled
        transfer time, independently of the request's completion -- this
        is what lets the SIP overlap communication with computation.
        """
        world = self.world
        if not (0 <= dest < world.size):
            raise ValueError(f"invalid destination rank {dest}")
        size = payload_nbytes(payload, nbytes)
        msg = Message(payload=payload, source=self.rank, tag=tag, nbytes=size)
        net = world.network
        dropped = False
        extra_delay = 0.0
        if world.faults is not None:
            verdict, extra_delay = world.faults.message_verdict(
                self.rank, dest, tag, size, world.sim.now
            )
            dropped = verdict == "drop"
        if not dropped:
            transfer = net.transfer_time(size, self.rank, dest, extra_delay)
            world.sim._schedule_call(transfer, world._mailboxes[dest].deliver, msg)
        world.stats.messages_sent += 1
        world.stats.bytes_sent += size
        if dest != self.rank:
            world.stats.remote_bytes += size
        done = world.sim.event(name=f"isend {self.rank}->{dest} tag={tag}")
        world.sim._schedule_call(net.injection_time(size), done.succeed, None)
        return Request(done, "send")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive for a matching message."""
        ev = self.sim.event(name=f"irecv rank={self.rank} src={source} tag={tag}")
        self.world._mailboxes[self.rank].post(_PostedRecv(source, tag, ev))
        return Request(ev, "recv")

    def send(
        self, payload: Any, dest: int, tag: int, nbytes: Optional[int] = None
    ) -> Generator[Any, Any, None]:
        """Blocking send (waits for injection, not delivery)."""
        req = self.isend(payload, dest, tag, nbytes=nbytes)
        yield req.event

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Any, Any, Message]:
        """Blocking receive; returns the :class:`Message`."""
        req = self.irecv(source, tag)
        msg = yield req.event
        return msg

    def compute(self, seconds: float) -> Timeout:
        """Effect representing local CPU work of the given duration."""
        return Timeout(seconds)


class Barrier:
    """A reusable barrier over an arbitrary group of ranks.

    Centralized counter semantics: the ``i``-th use of the barrier by
    every member forms generation ``i``; all members of a generation
    resume at the same simulated time (when the last one arrives, plus
    one network latency for the release broadcast).
    """

    def __init__(self, world: World, group: Iterable[int], name: str = "barrier") -> None:
        self.world = world
        self.group = sorted(set(group))
        if not self.group:
            raise ValueError("barrier group must be non-empty")
        self.name = name
        self._generation_counts: dict[int, int] = {}
        self._generation_events: dict[int, Event] = {}
        self._member_generation: dict[int, int] = {r: 0 for r in self.group}

    def wait(self, comm: SimComm) -> Generator[Any, Any, None]:
        rank = comm.rank
        if rank not in self._member_generation:
            raise ValueError(f"rank {rank} is not a member of barrier {self.name!r}")
        gen = self._member_generation[rank]
        self._member_generation[rank] = gen + 1
        count = self._generation_counts.get(gen, 0) + 1
        self._generation_counts[gen] = count
        ev = self._generation_events.get(gen)
        if ev is None:
            ev = self.world.sim.event(name=f"{self.name} gen={gen}")
            self._generation_events[gen] = ev
        if count == len(self.group):
            release = self.world.network.latency
            self.world.sim._schedule_call(release, ev.succeed, None)
            del self._generation_counts[gen]
        yield ev
        # allow the events dict to be GC'd once everyone has passed
        self._generation_events.pop(gen, None)
