"""Deterministic discrete-event simulation engine.

This module is the foundation of the simulated MPI substrate
(:mod:`repro.simmpi`).  It provides a classic event-driven simulator in
the style of SimPy, but trimmed down to exactly what the SIP runtime
needs and made fully deterministic: events scheduled for the same
simulated time fire in the order they were scheduled (a monotonically
increasing sequence number breaks ties), so a given program produces an
identical event trace on every run.

Processes are Python generators that *yield* effect objects:

* :class:`Timeout` -- advance the process's local time by a duration.
* :class:`Event`   -- suspend until another process triggers the event.
* :class:`AnyOf` / :class:`AllOf` -- composite waits.

``yield from`` composes sub-generators naturally, which the SIP bytecode
interpreter relies on heavily (every super instruction that may block is
a sub-generator).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Process",
    "Simulator",
    "SimulationError",
    "DeadlockError",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine."""


class DeadlockError(SimulationError):
    """Raised when processes remain but no event can ever fire again."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; a call to :meth:`succeed` (or
    :meth:`fail`) makes it *triggered* and schedules the resumption of
    every waiting process at the current simulated time.  Triggering an
    event twice is an error -- it almost always indicates a protocol bug
    in the caller (e.g. completing the same receive twice).
    """

    __slots__ = ("sim", "_value", "_triggered", "_failed", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._triggered = False
        self._failed = False
        self._callbacks: list[Callable[["Event"], None]] = []

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.name!r} has no value yet")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        self._flush()
        return self

    def succeed_if_pending(self, value: Any = None) -> bool:
        """Trigger the event if still pending; returns whether it fired.

        Useful where two legitimate completion paths can race (e.g. a
        block arriving over the network vs. being installed directly
        into the cache) and "already done" is not a protocol bug.
        """
        if self._triggered:
            return False
        self.succeed(value)
        return True

    def fail(self, exc: BaseException) -> "Event":
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._failed = True
        self._value = exc
        self._flush()
        return self

    def _flush(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim._schedule_call(0.0, cb, self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Invoke *cb(event)* when triggered (immediately if already)."""
        if self._triggered:
            self.sim._schedule_call(0.0, cb, self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


@dataclass(frozen=True)
class Timeout:
    """Effect: suspend the yielding process for ``delay`` simulated time."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative timeout: {self.delay}")


class AnyOf:
    """Effect: resume when *any* of the given events has triggered.

    The yielded value is the list of events that are triggered at resume
    time (at least one, possibly several if they fired simultaneously).
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]) -> None:
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")


class AllOf:
    """Effect: resume when *all* of the given events have triggered."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]) -> None:
        self.events = list(events)


ProcessGen = Generator[Any, Any, Any]


class Process:
    """A running simulated process wrapping a generator."""

    __slots__ = (
        "sim",
        "gen",
        "name",
        "finished",
        "result",
        "error",
        "done_event",
        "daemon",
    )

    def __init__(
        self, sim: "Simulator", gen: ProcessGen, name: str, daemon: bool = False
    ) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.done_event = Event(sim, name=f"done:{name}")
        self.daemon = daemon

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name!r} {state}>"


@dataclass(order=True)
class _ScheduledCall:
    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())


class Simulator:
    """The discrete-event engine.

    Typical use::

        sim = Simulator()
        sim.spawn(my_process(sim), name="worker-0")
        sim.run()
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[_ScheduledCall] = []
        self._seq = 0
        self._processes: list[Process] = []
        self._active = 0
        self._errors: list[BaseException] = []
        self.trace: Optional[Callable[[float, str], None]] = None

    # -- scheduling primitives -------------------------------------------
    def _schedule_call(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        self._seq += 1
        heapq.heappush(self._queue, _ScheduledCall(self.now + delay, self._seq, fn, args))

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout_event(self, delay: float, value: Any = None) -> Event:
        """An event that triggers after ``delay`` simulated time."""
        ev = Event(self, name=f"timeout+{delay:g}")
        self._schedule_call(delay, lambda: ev.succeed(value))
        return ev

    # -- processes ---------------------------------------------------------
    def spawn(self, gen: ProcessGen, name: str = "proc", daemon: bool = False) -> Process:
        """Start a new process from generator *gen*; returns its handle.

        A *daemon* process serves others but never ends on its own (e.g.
        a message pump kept alive for late retries); it is exempt from
        end-of-run deadlock detection.
        """
        proc = Process(self, gen, name, daemon=daemon)
        self._processes.append(proc)
        if not daemon:
            self._active += 1
        self._schedule_call(0.0, self._step, proc, None, None)
        return proc

    def _step(
        self,
        proc: Process,
        value: Any,
        exc: Optional[BaseException],
    ) -> None:
        try:
            if exc is not None:
                effect = proc.gen.throw(exc)
            else:
                effect = proc.gen.send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value, None)
            return
        except BaseException as err:  # noqa: BLE001 - must surface process crashes
            self._finish(proc, None, err)
            return
        self._handle_effect(proc, effect)

    def _handle_effect(self, proc: Process, effect: Any) -> None:
        if isinstance(effect, Timeout):
            self._schedule_call(effect.delay, self._step, proc, None, None)
        elif isinstance(effect, Event):
            effect.add_callback(lambda ev: self._resume_from_event(proc, ev))
        elif isinstance(effect, AnyOf):
            self._wait_any(proc, effect.events)
        elif isinstance(effect, AllOf):
            self._wait_all(proc, effect.events)
        else:
            self._finish(
                proc,
                None,
                SimulationError(
                    f"process {proc.name!r} yielded unsupported effect {effect!r}"
                ),
            )

    def _resume_from_event(self, proc: Process, ev: Event) -> None:
        if ev.failed:
            self._step(proc, None, ev.value)
        else:
            self._step(proc, ev.value, None)

    def _wait_any(self, proc: Process, events: list[Event]) -> None:
        fired = {"done": False}

        def on_trigger(_ev: Event) -> None:
            if fired["done"]:
                return
            fired["done"] = True
            ready = [e for e in events if e.triggered]
            self._step(proc, ready, None)

        already = [e for e in events if e.triggered]
        if already:
            self._schedule_call(0.0, lambda: on_trigger(already[0]))
            return
        for e in events:
            e.add_callback(on_trigger)

    def _wait_all(self, proc: Process, events: list[Event]) -> None:
        remaining = {"n": sum(1 for e in events if not e.triggered)}
        if remaining["n"] == 0:
            self._schedule_call(0.0, self._step, proc, [e.value for e in events], None)
            return

        def on_trigger(_ev: Event) -> None:
            remaining["n"] -= 1
            if remaining["n"] == 0:
                self._step(proc, [e.value for e in events], None)

        for e in events:
            if not e.triggered:
                e.add_callback(on_trigger)

    def _finish(self, proc: Process, result: Any, error: Optional[BaseException]) -> None:
        proc.finished = True
        proc.result = result
        proc.error = error
        if not proc.daemon:
            self._active -= 1
        if error is not None:
            self._errors.append(error)
            proc.done_event.fail(error)
        else:
            proc.done_event.succeed(result)

    # -- main loop ---------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains (or simulated time *until*).

        Returns the final simulated time.  Raises the first process
        error encountered, and :class:`DeadlockError` if processes
        remain un-finished with an empty queue (i.e. they all wait on
        events nobody will trigger).
        """
        while self._queue:
            call = self._queue[0]
            if until is not None and call.time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            if call.time < self.now - 1e-12:
                raise SimulationError("time went backwards")
            self.now = call.time
            call.fn(*call.args)
            if self._errors:
                raise self._errors[0]
        if self._active > 0:
            waiting = [
                p.name for p in self._processes if not p.finished and not p.daemon
            ]
            raise DeadlockError(
                f"deadlock at t={self.now:g}: processes still waiting: {waiting[:10]}"
                + ("..." if len(waiting) > 10 else "")
            )
        return self.now
