"""Network performance models for the simulated MPI substrate.

A :class:`Network` converts a message size into a transfer time using
the classic latency/bandwidth (alpha-beta) model, with a separate CPU
*injection overhead* charged to the sender.  Machine descriptions in
:mod:`repro.machines` instantiate one of these per simulated system.

Intra-rank "transfers" (a rank sending to itself, which the SIP uses
when a block is locally owned) are free except for a small memcpy cost.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Network", "payload_nbytes"]

_CONTROL_MESSAGE_BYTES = 256


def payload_nbytes(payload: object, explicit: int | None = None) -> int:
    """Best-effort size in bytes of a message payload.

    NumPy arrays and anything exposing ``nbytes`` report their true
    size; other Python objects (control messages: chunk assignments,
    block requests, acknowledgements) are charged a small fixed size.
    """
    if explicit is not None:
        return explicit
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    return _CONTROL_MESSAGE_BYTES


@dataclass(frozen=True)
class Network:
    """Alpha-beta network model.

    Parameters
    ----------
    latency:
        One-way message latency in seconds (the "alpha" term).
    bandwidth:
        Point-to-point bandwidth in bytes/second (the "beta" term is
        ``1/bandwidth``).
    send_overhead:
        CPU time the sender spends injecting a message (charged before
        the send request completes; this is what asynchronous progress
        overlaps against).
    memcpy_bandwidth:
        Local copy bandwidth used for self-sends.
    """

    latency: float = 2.0e-6
    bandwidth: float = 1.0e9
    send_overhead: float = 0.5e-6
    memcpy_bandwidth: float = 8.0e9

    def transfer_time(
        self, nbytes: int, src: int, dst: int, extra_delay: float = 0.0
    ) -> float:
        """One-way delivery time for ``nbytes`` from ``src`` to ``dst``.

        ``extra_delay`` models a transient congestion/fault spike added
        on top of the alpha-beta cost (see :mod:`repro.simmpi.faults`).
        """
        if src == dst:
            return nbytes / self.memcpy_bandwidth
        return self.latency + nbytes / self.bandwidth + extra_delay

    def injection_time(self, nbytes: int) -> float:
        """Sender CPU time consumed by initiating a transfer."""
        return self.send_overhead
