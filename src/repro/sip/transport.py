"""The narrow transport interface between the SIP and its substrate.

The SIP runtime (workers, I/O servers, master) is written against four
small surfaces, not against the simulator:

* a **world** — the set of ranks, source of per-rank endpoints and
  barriers, carrier of aggregate traffic stats;
* a per-rank **comm endpoint** — MPI-flavoured non-blocking
  ``isend``/``irecv`` (tag-matched, wildcard-capable), blocking
  ``send``/``recv`` wrappers, and ``compute`` for charging local work;
* a **barrier** over an arbitrary rank group, reusable generation by
  generation;
* the **block service**: every rank answers ``GetBlock`` /
  ``RequestBlock`` on its well-known tag (this one is plain message
  traffic, so it needs no extra interface beyond the endpoint).

Two implementations exist:

* :class:`repro.simmpi.comm.World` / ``SimComm`` / ``Barrier`` — the
  deterministic discrete-event simulator (the reference oracle);
* :class:`repro.sip.mptransport.MPWorld` / ``MPComm`` / ``MPBarrier``
  — real OS processes connected by duplex pipes, with large block
  payloads riding POSIX shared memory.

Both produce bitwise-identical results: every order-sensitive
reduction in the runtime (scalar collectives, '+=' block
accumulation) folds its contributions by canonical sender-side keys,
never by arrival order.  This module pins down the contract with
runtime-checkable protocols so the conformance suite can assert that
both transports implement the same surface.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional, Protocol, runtime_checkable

__all__ = ["CommEndpoint", "BarrierHandle", "TransportWorld"]


@runtime_checkable
class CommEndpoint(Protocol):
    """One rank's endpoint: MPI-flavoured point-to-point messaging."""

    rank: Any  # int on both implementations (attribute, not property)

    @property
    def size(self) -> int: ...

    def isend(
        self, payload: Any, dest: int, tag: int, nbytes: Optional[int] = None
    ) -> Any:
        """Non-blocking send; returns a request whose ``.event`` completes
        once the message is injected (delivery is independent)."""
        ...

    def irecv(self, source: int = -1, tag: int = -1) -> Any:
        """Non-blocking tag/source-matched receive (-1 is a wildcard)."""
        ...

    def send(
        self, payload: Any, dest: int, tag: int, nbytes: Optional[int] = None
    ) -> Generator[Any, Any, None]: ...

    def recv(self, source: int = -1, tag: int = -1) -> Generator[Any, Any, Any]: ...

    def compute(self, seconds: float) -> Any:
        """Effect representing local CPU work of the given duration."""
        ...


@runtime_checkable
class BarrierHandle(Protocol):
    """A reusable barrier over a fixed group of ranks."""

    def wait(self, comm: Any) -> Generator[Any, Any, None]: ...


@runtime_checkable
class TransportWorld(Protocol):
    """The rank set: endpoint factory, barrier factory, traffic stats."""

    @property
    def size(self) -> int: ...

    def comm(self, rank: int) -> Any: ...

    def barrier(self, group: Iterable[int], name: str = "barrier") -> Any: ...
