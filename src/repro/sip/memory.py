"""Per-worker block memory pools.

The paper's SIP manages each worker's memory as stacks of preallocated
blocks of the sizes the dry run predicted (Section V-B).  We reproduce
that design: a :class:`BlockPool` keeps a free-stack per block shape,
reuses buffers on allocate/free, enforces the worker's memory budget,
and records the peak usage that the dry-run analysis is validated
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .blocks import Block, block_nbytes
from .config import SIPError

__all__ = ["BlockPool", "OutOfBlockMemory", "PoolStats"]


class OutOfBlockMemory(SIPError):
    """The worker's block memory budget would be exceeded."""


@dataclass
class PoolStats:
    allocations: int = 0
    reuses: int = 0
    frees: int = 0
    bytes_in_use: int = 0
    peak_bytes: int = 0
    # peak *total* live block count across all shapes
    peak_blocks: int = 0
    blocks_in_use: int = 0
    # peak live block count per shape, for dry-run validation (how many
    # buffers of each size a preallocating runtime would need)
    peak_by_shape: dict[tuple[int, ...], int] = field(default_factory=dict)


class BlockPool:
    """Stacks of reusable blocks, one stack per shape.

    In *real* mode freed numpy buffers are kept on the stack and handed
    back on the next allocation of the same shape, exactly like the
    preallocated Fortran block stacks in the paper.  In *model* mode no
    data is allocated but all accounting still happens, so memory
    feasibility behaves identically in both modes.
    """

    def __init__(
        self,
        budget_bytes: float,
        real: bool,
        name: str = "pool",
        dtype=np.float64,
    ) -> None:
        self.budget_bytes = budget_bytes
        self.real = real
        self.name = name
        self.dtype = np.dtype(dtype)
        self.stats = PoolStats()
        self._free: dict[tuple[int, ...], list[np.ndarray]] = {}
        self._live_by_shape: dict[tuple[int, ...], int] = {}

    def allocate(self, shape: tuple[int, ...]) -> Block:
        nbytes = block_nbytes(shape, self.dtype)
        if self.stats.bytes_in_use + nbytes > self.budget_bytes:
            raise OutOfBlockMemory(
                f"{self.name}: allocating {nbytes} bytes for shape {shape} "
                f"would exceed the budget ({self.stats.bytes_in_use} of "
                f"{self.budget_bytes:.0f} bytes in use); rerun with more "
                "workers or a smaller segment size"
            )
        self.stats.bytes_in_use += nbytes
        self.stats.blocks_in_use += 1
        self.stats.peak_bytes = max(self.stats.peak_bytes, self.stats.bytes_in_use)
        self.stats.peak_blocks = max(self.stats.peak_blocks, self.stats.blocks_in_use)
        live = self._live_by_shape.get(shape, 0) + 1
        self._live_by_shape[shape] = live
        if live > self.stats.peak_by_shape.get(shape, 0):
            self.stats.peak_by_shape[shape] = live
        data = None
        if self.real:
            stack = self._free.get(shape)
            if stack:
                data = stack.pop()
                self.stats.reuses += 1
            else:
                data = np.zeros(shape, dtype=self.dtype)
                self.stats.allocations += 1
        else:
            self.stats.allocations += 1
        return Block(shape, data, dtype=self.dtype)

    def free(self, block: Block) -> None:
        self.stats.bytes_in_use -= block.nbytes
        self.stats.blocks_in_use -= 1
        self.stats.frees += 1
        live = self._live_by_shape.get(block.shape, 0) - 1
        if live > 0:
            self._live_by_shape[block.shape] = live
        else:
            self._live_by_shape.pop(block.shape, None)
        if self.stats.bytes_in_use < 0:  # pragma: no cover - double free guard
            raise SIPError(f"{self.name}: double free detected")
        if self.real and block.data is not None:
            # a copy-on-write twin (in-flight message payload, another
            # worker's cache entry) may still reference this buffer; it
            # can only be recycled once the last holder surrenders it
            if block.surrender():
                self._free.setdefault(block.shape, []).append(block.data)
            block.data = None
