"""Runtime configuration of the SIP virtual machine.

Everything the paper treats as a runtime parameter lives here: the
number of workers and I/O servers, segment sizes (globally or per index
kind), the prefetch lookahead depth, block-cache budgets, the pardo
chunking policy, and the target machine model.  SIAL programs never see
any of this -- retuning for a new platform means changing a
:class:`SIPConfig`, not the program (paper, Section VI-B).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..machines import LAPTOP, Machine
from ..simmpi.faults import FaultPlan

__all__ = ["SIPConfig", "SIPError"]


class SIPError(Exception):
    """Base class for SIP runtime errors."""


@dataclass
class SIPConfig:
    """Tunable parameters of one SIP run.

    Parameters
    ----------
    workers:
        Number of worker ranks (the master and I/O servers are extra).
    io_servers:
        Number of I/O server ranks backing served arrays.
    segment_size:
        Default elements per segment for every segment-index kind.
    segment_sizes:
        Per-kind overrides, e.g. ``{"ao": 12, "mo": 8}``.
    subsegments_per_segment:
        How many subsegments a subindex carves out of each segment.
    prefetch_depth:
        How many future loop iterations the lookahead prefetcher
        requests blocks for.  0 disables prefetching.
    cache_blocks:
        Capacity of each worker's remote-block LRU cache, in blocks.
    server_cache_blocks:
        Capacity of each I/O server's block cache, in blocks.
    blockio_reserve:
        Cache slots the block-transfer engine keeps free of speculative
        fetches so demand fetches always have room (the engine's
        backpressure predicate drops prefetch hints once fewer than
        this many slots remain).
    blockio_max_in_flight:
        Optional hard bound on a rank's in-flight block fetches;
        ``None`` (the default) bounds them by cache capacity alone.
    chunk_factor:
        Guided-scheduling aggressiveness: a chunk is
        ``ceil(remaining / (chunk_factor * workers))`` iterations.
    min_chunk:
        Lower bound on guided/locality chunk size, in iterations.  1
        (the default) reproduces classic guided scheduling; larger
        values trade tail balance for fewer master round-trips.
    scheduling:
        Pardo dole-out policy: ``"guided"`` (shrinking chunks from one
        shared queue), ``"static"`` (one equal slice per worker), or
        ``"locality"`` (per-worker affinity queues scored from block
        placement, with work stealing; see
        :class:`~repro.sip.scheduler.LocalityScheduler`).  Results are
        bitwise identical across policies.
    affinity_owner_weight:
        Locality scoring: weight (per byte) credited to the worker that
        *owns* a distributed block a pardo iteration gets.
    affinity_replica_weight:
        Locality scoring: weight (per byte) credited to each worker
        recently holding a cached replica of a block the iteration gets
        (distributed or served).
    affinity_replica_history:
        How many recent cache holders the replica map remembers per
        block; 0 disables replica tracking entirely.
    backend:
        ``"real"`` executes numpy kernels (correctness); ``"model"``
        charges only modeled time (scaling studies).
    execution:
        Which execution backend carries the ranks: ``"sim"`` (default)
        runs every rank cooperatively inside the deterministic
        :mod:`repro.simmpi` discrete-event simulator; ``"mp"`` runs
        each rank as a real OS process (``multiprocessing`` fork) with
        pickled control messages over duplex pipes and block payloads
        in POSIX shared memory (see :mod:`repro.sip.mptransport`).
        Results are bitwise identical between the two; the simulator
        stays the reference oracle while ``"mp"`` uses all cores.
    mp_payload_shm_min:
        Smallest block payload, in bytes, shipped through a shared
        memory segment rather than pickled inline on the pipe
        (``execution="mp"`` only).
    mp_timeout:
        Watchdog, in seconds, for the multiprocess backend: a rank that
        makes no progress and receives no message for this long aborts
        the run, and the parent reports which rank stalled.
    mp_arena:
        Use the pooled shared-memory slab arena for at-threshold block
        payloads (``execution="mp"`` only): senders lease size-classed
        slots from long-lived slabs and receivers map block views
        directly over them -- zero per-transfer segment creation and
        zero receive-side copies (see :mod:`repro.sip.arena`).  Off,
        every detoured payload pays the legacy one-shot
        create/copy/attach/copy/unlink lifecycle.
    mp_arena_slab_bytes:
        Size of one arena slab segment in bytes; also the largest
        payload the arena serves (bigger blocks overflow to one-shot
        segments).
    mp_arena_max_bytes:
        Cap on a rank's total arena footprint; when all size classes
        are saturated, further payloads overflow to one-shot segments.
    mp_batch_max_msgs:
        Outbox depth at which a peer's queued control messages are
        flushed as one framed ``send_bytes`` write.  1 disables
        batching (every message is its own frame).
    mp_batch_max_bytes:
        Payload-byte threshold that flushes a peer's outbox early, so
        a burst of inline block replies does not sit queued.
    opt_level:
        SIAL optimization level applied to the compiled program before
        execution (the ``-O`` flag): 0 runs the compiler's output
        verbatim, 1 runs the cheap cleanup passes (constant folding,
        dead-code elimination), 2 additionally fuses contract+apply
        pairs, hoists loop-invariant fetches, inserts pardo prefetch
        hints and coalesces provably redundant barriers (see
        :mod:`repro.sial.passes`).  Results are bitwise identical
        across levels.
    fastpath:
        Enable the execution fast path: compiled kernel plans (cached
        GEMM lowering / einsum paths), memoized operand resolution, and
        zero-copy (copy-on-write) block transport.  Results -- data and
        simulated time -- are bit-identical with it on or off; turning
        it off recovers the legacy per-call einsum + eager-copy
        behaviour for benchmarking.
    kernel_wallclock:
        Accumulate host wall-clock time per kernel opcode on each
        worker's backend (``backend.wall``); the benchmark harness uses
        this for per-kernel timings.
    machine:
        Machine performance model used for all costs.
    memory_per_worker:
        Override of the machine's per-rank memory budget, bytes.
    spill:
        Unify each rank's pool, cache and adopted input bytes under one
        budget and, under pressure, run the victim cascade (drop clean
        cached replicas, then spill evictable blocks to the rank's
        scratch disk, faulted back in on next touch) instead of raising
        ``OutOfBlockMemory``.  Off by default: without it every
        mechanism enforces its own budget exactly as before, and runs
        are bitwise identical to historical behaviour.
    scratch_per_worker:
        Scratch-disk capacity available for spilled blocks on each
        rank, bytes.  None (default) means unbounded scratch.
    dtype:
        Numpy dtype name of block elements (default ``"float64"``, the
        paper's double precision).  Threads through block allocation,
        pool/cache byte accounting, and the dry run.
    validate_barriers:
        Detect conflicting distributed/served accesses that are not
        separated by the appropriate barrier (paper, Section IV-C).
    sanitize:
        Record every distributed/served block access with its pardo
        iteration, bytecode pc and source line, and report accesses
        from different iterations that do not commute within a barrier
        epoch (see :mod:`repro.sip.sanitizer`).  Pure bookkeeping: a
        sanitized run is bit-identical to an unsanitized one.  The
        ``REPRO_SANITIZE`` environment variable (any non-empty value)
        turns this on by default, so a whole test suite can be run
        sanitized without touching code.
    integral_source:
        Callable mapping per-axis global element ranges to an ndarray
        of two-electron integrals; used by ``compute_integrals``.
    inputs:
        Initial contents for arrays, by (case-insensitive) name.
        Static arrays are replicated; distributed/served arrays are
        scattered to their owners before simulated time starts.
    external_store:
        Dict shared across runs for ``blocks_to_list`` /
        ``list_to_blocks`` serialization and checkpoint/restart.
    superinstructions:
        Extra user super instructions: name -> callable (see
        :mod:`repro.sip.registry`).
    trace:
        Optional callable ``(time, rank, text)`` for debugging.
    faults:
        Optional :class:`~repro.simmpi.faults.FaultPlan` injecting
        message drops/delays, disk errors and rank crashes.  Attaching
        one also enables the resilient messaging protocol (timeouts,
        retries with exponential backoff, sequence-number dedup).
    resilient:
        Force the resilient protocol on (True) or off (False)
        regardless of ``faults``; None (default) follows ``faults``.
    retry_timeout:
        Seconds a resilient requester waits for a reply/ack before
        re-sending.  Must comfortably exceed the slowest normal
        round-trip (disk reads, back-pressured prepares) or spurious
        retries inflate traffic -- they stay harmless for correctness.
    retry_limit:
        Re-sends attempted before the requester declares the peer dead.
    retry_backoff:
        Multiplier applied to the timeout after each retry.
    """

    workers: int = 4
    io_servers: int = 1
    segment_size: int = 4
    segment_sizes: dict[str, int] = field(default_factory=dict)
    subsegments_per_segment: int = 2
    prefetch_depth: int = 2
    cache_blocks: int = 64
    server_cache_blocks: int = 128
    blockio_reserve: int = 2
    blockio_max_in_flight: Optional[int] = None
    chunk_factor: int = 2
    min_chunk: int = 1
    scheduling: str = "guided"
    affinity_owner_weight: float = 2.0
    affinity_replica_weight: float = 1.0
    affinity_replica_history: int = 2
    backend: str = "real"
    execution: str = "sim"
    mp_payload_shm_min: int = 1 << 14
    mp_timeout: float = 120.0
    mp_arena: bool = True
    mp_arena_slab_bytes: int = 1 << 22
    mp_arena_max_bytes: int = 1 << 26
    mp_batch_max_msgs: int = 128
    mp_batch_max_bytes: int = 1 << 20
    opt_level: int = 0
    fastpath: bool = True
    kernel_wallclock: bool = False
    machine: Machine = LAPTOP
    memory_per_worker: Optional[float] = None
    spill: bool = False
    scratch_per_worker: Optional[float] = None
    dtype: str = "float64"
    validate_barriers: bool = True
    sanitize: bool = False
    integral_source: Optional[Callable[..., Any]] = None
    inputs: dict[str, Any] = field(default_factory=dict)
    external_store: dict[str, Any] = field(default_factory=dict)
    superinstructions: dict[str, Callable[..., Any]] = field(default_factory=dict)
    trace: Optional[Callable[[float, int, str], None]] = None
    tracer: Optional[Any] = None  # a repro.sip.tracing.TraceRecorder
    faults: Optional[FaultPlan] = None
    resilient: Optional[bool] = None
    retry_timeout: float = 0.05
    retry_limit: int = 10
    retry_backoff: float = 2.0

    def __post_init__(self) -> None:
        if not self.sanitize and os.environ.get("REPRO_SANITIZE"):
            self.sanitize = True
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.io_servers < 0:
            raise ValueError("io_servers must be >= 0")
        if self.segment_size < 1:
            raise ValueError("segment_size must be >= 1")
        if self.backend not in ("real", "model"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.execution not in ("sim", "mp"):
            raise ValueError(f"unknown execution backend {self.execution!r}")
        if self.execution == "mp":
            if self.faults is not None:
                raise ValueError(
                    "fault injection needs virtual time; use execution='sim'"
                )
            if self.resilient:
                raise ValueError(
                    "the resilient protocol's timeout races need virtual "
                    "time; use execution='sim'"
                )
            if self.mp_payload_shm_min < 0:
                raise ValueError("mp_payload_shm_min must be >= 0")
            if self.mp_timeout <= 0:
                raise ValueError("mp_timeout must be positive")
            if self.mp_arena_slab_bytes < 4096:
                raise ValueError("mp_arena_slab_bytes must be >= 4096")
            if self.mp_arena_max_bytes < self.mp_arena_slab_bytes:
                raise ValueError(
                    "mp_arena_max_bytes must be >= mp_arena_slab_bytes"
                )
            if self.mp_batch_max_msgs < 1:
                raise ValueError("mp_batch_max_msgs must be >= 1")
            if self.mp_batch_max_bytes < 1:
                raise ValueError("mp_batch_max_bytes must be >= 1")
        if self.opt_level not in (0, 1, 2):
            raise ValueError("opt_level must be 0, 1 or 2")
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        if self.blockio_reserve < 0:
            raise ValueError("blockio_reserve must be >= 0")
        if self.blockio_max_in_flight is not None and self.blockio_max_in_flight < 1:
            raise ValueError("blockio_max_in_flight must be >= 1 (or None)")
        if self.scheduling not in ("guided", "static", "locality"):
            raise ValueError(f"unknown scheduling policy {self.scheduling!r}")
        if self.min_chunk < 1:
            raise ValueError("min_chunk must be >= 1")
        if self.affinity_owner_weight < 0 or self.affinity_replica_weight < 0:
            raise ValueError("affinity weights must be >= 0")
        if self.affinity_replica_history < 0:
            raise ValueError("affinity_replica_history must be >= 0")
        if self.retry_timeout <= 0:
            raise ValueError("retry_timeout must be positive")
        if self.retry_limit < 1:
            raise ValueError("retry_limit must be >= 1")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")
        if self.scratch_per_worker is not None and self.scratch_per_worker <= 0:
            raise ValueError("scratch_per_worker must be positive")
        try:
            import numpy as _np

            _np.dtype(self.dtype)
        except TypeError:
            raise ValueError(f"unknown dtype {self.dtype!r}") from None

    @property
    def resilience_enabled(self) -> bool:
        """Whether the resilient messaging protocol is active."""
        if self.resilient is not None:
            return self.resilient
        return self.faults is not None

    @property
    def memory_budget(self) -> float:
        if self.memory_per_worker is not None:
            return self.memory_per_worker
        return self.machine.memory_per_rank

    # -- rank layout: [master][workers...][io servers...] -------------------
    @property
    def world_size(self) -> int:
        return 1 + self.workers + self.io_servers

    @property
    def master_rank(self) -> int:
        return 0

    def worker_rank(self, worker_index: int) -> int:
        return 1 + worker_index

    def server_rank(self, server_index: int) -> int:
        return 1 + self.workers + server_index

    @property
    def worker_ranks(self) -> range:
        return range(1, 1 + self.workers)

    @property
    def server_ranks(self) -> range:
        return range(1 + self.workers, self.world_size)
