"""SIP: the Super Instruction Processor.

The parallel virtual machine that executes SIA bytecode (paper,
Section V): a master that analyses memory in a dry run and doles out
pardo chunks, workers interpreting bytecode with asynchronous block
communication, lookahead prefetching and LRU block caches, and I/O
servers backing disk-resident (served) arrays with write-back caches
and asynchronous disk I/O -- all on the deterministic simulated MPI of
:mod:`repro.simmpi`.
"""

from ..simmpi.faults import (
    DiskFault,
    FaultPlan,
    FaultReport,
    FaultStats,
    ResilienceStats,
    WorkerCrashed,
)
from .backend import KernelOperand, ModelBackend, RealBackend
from .blocks import Block, BlockId, ResolvedIndexTable
from .cache import BlockCache
from .config import SIPConfig, SIPError
from .distributed import BarrierViolation, ConflictTracker, Placement, ReplicaMap
from .dryrun import DryRunReport, InfeasibleComputation, dry_run
from .memory import BlockPool, OutOfBlockMemory
from .profiling import RunProfile, WorkerProfile
from .registry import GLOBAL_REGISTRY, SuperCall, SuperInstructionRegistry, register
from .runner import RunResult, run_program, run_source
from .sanitizer import (
    AccessPoint,
    Sanitizer,
    SanitizerConflict,
    SanitizerReport,
)
from .scheduler import (
    GuidedScheduler,
    LocalityScheduler,
    SchedStats,
    StaticScheduler,
    enumerate_pardo,
    make_scheduler,
)
from .tracing import SchedTraceEvent, TraceRecorder
from .transport import BarrierHandle, CommEndpoint, TransportWorld

__all__ = [
    "AccessPoint",
    "BarrierHandle",
    "BarrierViolation",
    "CommEndpoint",
    "TransportWorld",
    "Block",
    "BlockCache",
    "BlockId",
    "BlockPool",
    "ConflictTracker",
    "DiskFault",
    "DryRunReport",
    "FaultPlan",
    "FaultReport",
    "FaultStats",
    "GLOBAL_REGISTRY",
    "GuidedScheduler",
    "InfeasibleComputation",
    "KernelOperand",
    "ModelBackend",
    "OutOfBlockMemory",
    "Placement",
    "RealBackend",
    "ResilienceStats",
    "ResolvedIndexTable",
    "RunProfile",
    "RunResult",
    "SIPConfig",
    "SIPError",
    "Sanitizer",
    "SanitizerConflict",
    "SanitizerReport",
    "LocalityScheduler",
    "ReplicaMap",
    "SchedStats",
    "SchedTraceEvent",
    "StaticScheduler",
    "SuperCall",
    "TraceRecorder",
    "make_scheduler",
    "SuperInstructionRegistry",
    "WorkerCrashed",
    "WorkerProfile",
    "dry_run",
    "enumerate_pardo",
    "register",
    "run_program",
    "run_source",
]
