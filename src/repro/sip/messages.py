"""Wire messages exchanged between SIP ranks.

Rank layout: rank 0 is the master, then workers, then I/O servers.
Three well-known tags exist -- every rank's *service* mailbox
(block traffic between workers), the master's mailbox, and each I/O
server's mailbox.  Replies go to per-request tags allocated from a
counter on the requesting rank, so a requester can wait selectively on
exactly its own reply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .blocks import Block, BlockId

__all__ = [
    "SERVICE_TAG",
    "MASTER_TAG",
    "SERVER_TAG",
    "REPLY_TAG_BASE",
    "HEADER_BYTES",
    "GetBlock",
    "PutBlock",
    "BlockReply",
    "Ack",
    "ChunkRequest",
    "ChunkReply",
    "CollectiveContribution",
    "CollectiveResult",
    "RequestBlock",
    "PrepareBlock",
    "WorkerDone",
    "Shutdown",
    "BarrierArrive",
    "BarrierRelease",
    "BARRIER_TAG",
    "BARRIER_RELEASE_TAG",
    "message_nbytes",
    "snapshot_for_transport",
]

SERVICE_TAG = 1
MASTER_TAG = 2
SERVER_TAG = 3
#: Barrier coordination (multiprocess backend): arrivals go to the
#: coordinator's BARRIER_TAG mailbox, releases come back on each
#: member's BARRIER_RELEASE_TAG.  A rank waits on at most one barrier
#: at a time, so one release tag per rank suffices.
BARRIER_TAG = 4
BARRIER_RELEASE_TAG = 5
REPLY_TAG_BASE = 1000

#: Envelope overhead charged per message on top of block payloads.
HEADER_BYTES = 64


@dataclass(frozen=True)
class GetBlock:
    """Worker -> owner worker: send me this distributed block."""

    block_id: BlockId
    reply_tag: int
    worker_index: int
    epoch: int


@dataclass(frozen=True)
class PutBlock:
    """Worker -> owner worker: store ('=') or accumulate ('+=').

    ``seq`` is a sender-unique sequence number used by the resilient
    protocol to apply a retried put exactly once; -1 when resilience is
    off.  ``accum_key`` orders '+=' contributions canonically at the
    owner: ``(0, pardo_id, activation, iteration, n)`` inside a pardo,
    ``(1, worker_index, n)`` outside one, so the fold order -- and the
    floating-point result -- is independent of arrival order and
    identical across execution backends.  None (legacy senders) applies
    immediately in arrival order.
    """

    block_id: BlockId
    op: str
    block: Block
    worker_index: int
    epoch: int
    ack_tag: int
    seq: int = -1
    accum_key: Optional[tuple] = None


@dataclass(frozen=True)
class BlockReply:
    block_id: BlockId
    block: Block


@dataclass(frozen=True)
class Ack:
    tag: int


@dataclass(frozen=True)
class ChunkRequest:
    """Worker -> master: give me pardo iterations.

    ``scalars`` is the requester's scalar snapshot at pardo entry; it is
    carried only when the pardo's where clauses reference scalars (legal
    only in hand-built bytecode), so the master enumerates the iteration
    space against the worker's values instead of its own stale copy.
    """

    pardo_pc: int
    activation: int
    worker_index: int
    reply_tag: int
    seq: int = -1  # resilient protocol: replay key for the master's reply cache
    scalars: Optional[tuple[float, ...]] = None


@dataclass(frozen=True)
class ChunkReply:
    iterations: tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class CollectiveContribution:
    """Worker -> master: my term of an allreduce-sum.

    ``value`` is the worker's full scalar (the legacy wire field);
    ``base`` and ``deltas`` decompose it into the non-pardo part plus
    per-iteration increments keyed ``(pardo_id, activation, iteration)``
    so the master can reduce in canonical iteration order -- making the
    sum bitwise independent of which worker ran which iteration.
    ``poisoned`` marks a scalar whose pardo-side updates were not plain
    accumulations; the master then falls back to the legacy
    worker-order sum.  ``deltas is None`` means a legacy sender.
    """

    seq: int
    worker_index: int
    value: float
    reply_tag: int
    base: float = 0.0
    deltas: Optional[tuple[tuple[tuple, float], ...]] = None
    poisoned: bool = False


@dataclass(frozen=True)
class CollectiveResult:
    value: float


@dataclass(frozen=True)
class RequestBlock:
    """Worker -> I/O server: fetch a served block."""

    block_id: BlockId
    reply_tag: int
    worker_index: int
    epoch: int


@dataclass(frozen=True)
class PrepareBlock:
    """Worker -> I/O server: store ('=') or accumulate ('+=').

    ``seq`` is a sender-unique sequence number used by the resilient
    protocol to apply a retried prepare exactly once; -1 when
    resilience is off.  ``accum_key`` is the same canonical '+='
    ordering key as :class:`PutBlock`.
    """

    block_id: BlockId
    op: str
    block: Block
    worker_index: int
    epoch: int
    ack_tag: int
    seq: int = -1
    accum_key: Optional[tuple] = None


@dataclass(frozen=True)
class WorkerDone:
    worker_index: int
    ack_tag: int = -1  # resilient protocol: master acks on this tag


@dataclass(frozen=True)
class Shutdown:
    ack_tag: int = -1  # resilient protocol: receiver acks on this tag


@dataclass(frozen=True)
class BarrierArrive:
    """Member -> barrier coordinator: I reached this barrier generation."""

    name: str
    generation: int
    rank: int


@dataclass(frozen=True)
class BarrierRelease:
    """Barrier coordinator -> member: everyone arrived, proceed."""

    name: str
    generation: int


def message_nbytes(msg: Any) -> Optional[int]:
    """Explicit wire size for messages carrying blocks; None = default.

    The ``block`` field may hold a real :class:`Block` *or* a transport
    detour stub (an arena-slot or one-shot shm reference); either way,
    traffic stats must account the block bytes the message stands for,
    never the few dozen bytes of a stub, so every stub type exposes the
    same ``nbytes`` property as a block.
    """
    block = getattr(msg, "block", None)
    if block is not None:
        return HEADER_BYTES + block.nbytes
    return None


def snapshot_for_transport(block: Block, zero_copy: bool = False, stats=None) -> Block:
    """Snapshot a block payload for a message.

    The simulated network delivers payloads by reference, so the sender
    must hand over a snapshot that later local writes cannot disturb.
    With ``zero_copy`` off that is an eager deep copy (the legacy
    behaviour); with it on, a copy-on-write share -- the copy happens
    only if the sender writes the block before the buffer is dropped.
    ``stats`` (a :class:`~repro.sip.blocks.CowStats`) records the bytes
    that did not need copying.
    """
    if not zero_copy or block.data is None:
        return block.copy()
    if stats is not None:
        stats.sends_shared += 1
        stats.bytes_not_copied += block.nbytes
    return block.share()
