"""Compute backends: the super-instruction kernels.

Super instructions take one or two blocks as input and produce a new
block, never communicating (paper, Section III).  The SIP treats them
as opaque; here they come in two flavours sharing one interface:

* :class:`RealBackend` executes numpy kernels (einsum/matmul play
  the role of the paper's Fortran+DGEMM implementations) *and* charges
  modeled time;
* :class:`ModelBackend` charges only the modeled time, letting the
  simulator run performance experiments without touching data.

Every method returns the simulated seconds the instruction costs; the
interpreter yields a Timeout for that amount.

When a :class:`~repro.sip.plans.KernelPlanCache` is attached (the
default fast path), contractions execute through compiled GEMM /
einsum-path plans and axis permutations are memoized; without one the
backend runs the legacy per-call ``np.einsum(..., optimize=True)``
path.  Both produce bit-identical data and charge identical simulated
time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from math import prod
from typing import Callable, Optional

import numpy as np

from ..costmodel import CostModel
from .blocks import DTYPE_BYTES
from .config import SIPError
from .plans import KernelPlanCache, einsum_subscripts, perm as _perm

__all__ = ["KernelOperand", "ComputeBackend", "RealBackend", "ModelBackend", "make_backend"]

#: kernel methods wrapped by the wall-clock instrumentation
_KERNEL_NAMES = (
    "fill",
    "copy",
    "accumulate",
    "scale",
    "scale_inplace",
    "negate",
    "addsub",
    "contract",
    "fused_contract",
    "scalar_contract",
    "compute_integrals",
)


@dataclass
class KernelOperand:
    """A block operand as seen by a kernel.

    ``data`` is the (already sliced) ndarray view in real mode, None in
    model mode.  ``index_ids`` names each axis by the index variable
    addressing it; kernels align axes by matching these ids.
    ``element_ranges`` gives, per axis, the global element offsets the
    block covers within its dimension -- user super instructions (e.g.
    orbital-energy denominators) need them to know *which* elements
    they are looking at.
    """

    shape: tuple[int, ...]
    index_ids: tuple[int, ...]
    data: Optional[np.ndarray] = None
    element_ranges: tuple[tuple[int, int], ...] = ()

    @property
    def nbytes(self) -> int:
        # model mode carries no data; the runtime is double precision
        # throughout, so both modes charge identical costs
        itemsize = DTYPE_BYTES if self.data is None else self.data.dtype.itemsize
        return prod(self.shape, start=1) * itemsize


class ComputeBackend:
    """Shared cost accounting; subclasses add/skip real data movement."""

    real = False

    def __init__(
        self,
        cost: CostModel,
        plans: Optional[KernelPlanCache] = None,
        timed: bool = False,
    ) -> None:
        self.cost = cost
        self.plans = plans
        self.wall: dict[str, float] = {}
        if timed:
            self._enable_wall_timing()

    def _enable_wall_timing(self) -> None:
        """Wrap every kernel to accumulate host wall-clock per opcode."""
        for name in _KERNEL_NAMES:
            inner = getattr(self, name)

            def timed(*args, __inner=inner, __name=name):
                t0 = time.perf_counter()
                try:
                    return __inner(*args)
                finally:
                    self.wall[__name] = (
                        self.wall.get(__name, 0.0) + time.perf_counter() - t0
                    )

            setattr(self, name, timed)

    def _perm(self, dst_ids: tuple[int, ...], src_ids: tuple[int, ...]) -> tuple[int, ...]:
        if self.plans is not None:
            return self.plans.perm(dst_ids, src_ids)
        return _perm(dst_ids, src_ids)

    # -- kernels -----------------------------------------------------------
    def fill(self, dst: KernelOperand, value: float, op: str) -> float:
        if self.real:
            if op == "=":
                dst.data[...] = value
            elif op == "+=":
                dst.data[...] += value
            else:
                dst.data[...] -= value
        return self.cost.elementwise_time(dst.nbytes)

    def copy(self, dst: KernelOperand, src: KernelOperand) -> float:
        if self.real:
            dst.data[...] = np.transpose(
                src.data, self._perm(dst.index_ids, src.index_ids)
            )
        return self.cost.elementwise_time(dst.nbytes)

    def accumulate(self, dst: KernelOperand, op: str, src: KernelOperand) -> float:
        if self.real:
            aligned = np.transpose(
                src.data, self._perm(dst.index_ids, src.index_ids)
            )
            if op == "+=":
                dst.data[...] += aligned
            else:
                dst.data[...] -= aligned
        return self.cost.elementwise_time(dst.nbytes)

    def scale(
        self, dst: KernelOperand, op: str, src: KernelOperand, factor: float
    ) -> float:
        if self.real:
            aligned = factor * np.transpose(
                src.data, self._perm(dst.index_ids, src.index_ids)
            )
            if op == "=":
                dst.data[...] = aligned
            elif op == "+=":
                dst.data[...] += aligned
            else:
                dst.data[...] -= aligned
        return self.cost.elementwise_time(dst.nbytes)

    def scale_inplace(self, dst: KernelOperand, factor: float) -> float:
        if self.real:
            dst.data[...] *= factor
        return self.cost.elementwise_time(dst.nbytes)

    def negate(self, dst: KernelOperand, src: KernelOperand) -> float:
        if self.real:
            dst.data[...] = -np.transpose(
                src.data, self._perm(dst.index_ids, src.index_ids)
            )
        return self.cost.elementwise_time(dst.nbytes)

    def addsub(
        self, dst: KernelOperand, op: str, a: KernelOperand, b: KernelOperand
    ) -> float:
        if self.real:
            aa = np.transpose(a.data, self._perm(dst.index_ids, a.index_ids))
            bb = np.transpose(b.data, self._perm(dst.index_ids, b.index_ids))
            dst.data[...] = aa + bb if op == "+" else aa - bb
        return self.cost.elementwise_time(2 * dst.nbytes)

    def contract(
        self, dst: KernelOperand, op: str, a: KernelOperand, b: KernelOperand
    ) -> float:
        contracted_shape = tuple(
            dim
            for dim, ix in zip(a.shape, a.index_ids)
            if ix not in dst.index_ids
        )
        if self.real:
            if self.plans is not None:
                plan = self.plans.contraction(
                    a.index_ids, a.shape, b.index_ids, b.shape,
                    dst.index_ids, dst.shape,
                )
                plan.execute(a.data, b.data, dst.data, op)
            else:
                subscripts = einsum_subscripts(
                    a.index_ids, b.index_ids, dst.index_ids
                )
                result = np.einsum(subscripts, a.data, b.data, optimize=True)
                if op == "=":
                    dst.data[...] = result
                elif op == "+=":
                    dst.data[...] += result
                else:
                    dst.data[...] -= result
        return self.cost.contraction_time(dst.shape, contracted_shape)

    def fused_contract(
        self,
        dst: KernelOperand,
        op: str,
        a: KernelOperand,
        b: KernelOperand,
        tmp_ids: tuple[int, ...],
        factor: Optional[float],
    ) -> float:
        """Optimizer-fused ``tmp = a*b; dst op [factor*]tmp``.

        Contracts into the *virtual* temp layout ``tmp_ids`` and applies
        the transposed (optionally scaled) result to ``dst`` -- the exact
        data flow of the unfused CONTRACT + ACCUM/SCALE/COPY pair, so the
        result is bit-identical, with one block allocation and one
        instruction dispatch less.  Charges the sum of both unfused
        costs, keeping the simulated-time model honest.
        """
        dims = dict(zip(a.index_ids, a.shape))
        dims.update(zip(b.index_ids, b.shape))
        tmp_shape = tuple(dims[ix] for ix in tmp_ids)
        contracted_shape = tuple(
            dim
            for dim, ix in zip(a.shape, a.index_ids)
            if ix not in tmp_ids
        )
        if self.real:
            if self.plans is not None:
                plan = self.plans.contraction(
                    a.index_ids, a.shape, b.index_ids, b.shape,
                    tmp_ids, tmp_shape,
                )
                res = np.empty(tmp_shape)
                plan.execute(a.data, b.data, res, "=")
            else:
                subscripts = einsum_subscripts(
                    a.index_ids, b.index_ids, tmp_ids
                )
                res = np.einsum(subscripts, a.data, b.data, optimize=True)
            aligned = np.transpose(res, self._perm(dst.index_ids, tmp_ids))
            if factor is not None:
                aligned = factor * aligned
            if op == "=":
                dst.data[...] = aligned
            elif op == "+=":
                dst.data[...] += aligned
            else:
                dst.data[...] -= aligned
        return self.cost.contraction_time(
            tmp_shape, contracted_shape
        ) + self.cost.elementwise_time(dst.nbytes)

    def scalar_contract(self, a: KernelOperand, b: KernelOperand) -> tuple[float, float]:
        """Full contraction to a scalar; returns (value, cost)."""
        value = 0.0
        if self.real:
            aligned = np.transpose(b.data, self._perm(a.index_ids, b.index_ids))
            value = float(np.sum(a.data * aligned))
        cost = self.cost.contraction_time((), a.shape)
        return value, cost

    def compute_integrals(
        self,
        dst: KernelOperand,
        element_ranges: tuple[tuple[int, int], ...],
        source: Optional[Callable],
    ) -> float:
        n_elements = prod(dst.shape, start=1)
        if self.real:
            if source is None:
                raise SIPError(
                    "compute_integrals used but no integral_source configured"
                )
            values = source(element_ranges)
            if values.shape != dst.shape:
                raise SIPError(
                    f"integral_source returned shape {values.shape}, "
                    f"expected {dst.shape}"
                )
            dst.data[...] = values
        return self.cost.integral_time(n_elements)


class RealBackend(ComputeBackend):
    real = True


class ModelBackend(ComputeBackend):
    real = False


def make_backend(
    kind: str,
    cost: CostModel,
    plans: Optional[KernelPlanCache] = None,
    timed: bool = False,
) -> ComputeBackend:
    if kind == "real":
        return RealBackend(cost, plans=plans, timed=timed)
    if kind == "model":
        return ModelBackend(cost, timed=timed)
    raise ValueError(f"unknown backend {kind!r}")


def _einsum_subscripts(
    a: KernelOperand, b: KernelOperand, out_ids: tuple[int, ...]
) -> tuple[str, dict[int, str]]:
    """Backward-compatible wrapper kept for external callers/tests."""
    import string

    letters: dict[int, str] = {}
    pool = iter(string.ascii_lowercase)
    for ix in (*a.index_ids, *b.index_ids, *out_ids):
        if ix not in letters:
            letters[ix] = next(pool)
    return einsum_subscripts(a.index_ids, b.index_ids, out_ids), letters
