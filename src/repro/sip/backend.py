"""Compute backends: the super-instruction kernels.

Super instructions take one or two blocks as input and produce a new
block, never communicating (paper, Section III).  The SIP treats them
as opaque; here they come in two flavours sharing one interface:

* :class:`RealBackend` executes numpy kernels (einsum/transpose play
  the role of the paper's Fortran+DGEMM implementations) *and* charges
  modeled time;
* :class:`ModelBackend` charges only the modeled time, letting the
  simulator run performance experiments without touching data.

Every method returns the simulated seconds the instruction costs; the
interpreter yields a Timeout for that amount.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from math import prod
from typing import Callable, Optional

import numpy as np

from ..costmodel import CostModel
from .config import SIPError

__all__ = ["KernelOperand", "ComputeBackend", "RealBackend", "ModelBackend", "make_backend"]


@dataclass
class KernelOperand:
    """A block operand as seen by a kernel.

    ``data`` is the (already sliced) ndarray view in real mode, None in
    model mode.  ``index_ids`` names each axis by the index variable
    addressing it; kernels align axes by matching these ids.
    ``element_ranges`` gives, per axis, the global element offsets the
    block covers within its dimension -- user super instructions (e.g.
    orbital-energy denominators) need them to know *which* elements
    they are looking at.
    """

    shape: tuple[int, ...]
    index_ids: tuple[int, ...]
    data: Optional[np.ndarray] = None
    element_ranges: tuple[tuple[int, int], ...] = ()

    @property
    def nbytes(self) -> int:
        return prod(self.shape, start=1) * 8


def _perm(dst_ids: tuple[int, ...], src_ids: tuple[int, ...]) -> tuple[int, ...]:
    """Axes permutation mapping src layout onto dst layout.

    Handles repeated index variables (e.g. a diagonal block ``D(M, M)``)
    by matching each destination axis to the first unused source axis
    with the same id.
    """
    used = [False] * len(src_ids)
    perm = []
    for ix in dst_ids:
        for pos, sid in enumerate(src_ids):
            if sid == ix and not used[pos]:
                used[pos] = True
                perm.append(pos)
                break
        else:
            raise SIPError(f"operand index mismatch: {dst_ids} vs {src_ids}")
    return tuple(perm)


class ComputeBackend:
    """Shared cost accounting; subclasses add/skip real data movement."""

    real = False

    def __init__(self, cost: CostModel) -> None:
        self.cost = cost

    # -- kernels -----------------------------------------------------------
    def fill(self, dst: KernelOperand, value: float, op: str) -> float:
        if self.real:
            if op == "=":
                dst.data[...] = value
            elif op == "+=":
                dst.data[...] += value
            else:
                dst.data[...] -= value
        return self.cost.elementwise_time(dst.nbytes)

    def copy(self, dst: KernelOperand, src: KernelOperand) -> float:
        if self.real:
            dst.data[...] = np.transpose(src.data, _perm(dst.index_ids, src.index_ids))
        return self.cost.elementwise_time(dst.nbytes)

    def accumulate(self, dst: KernelOperand, op: str, src: KernelOperand) -> float:
        if self.real:
            aligned = np.transpose(src.data, _perm(dst.index_ids, src.index_ids))
            if op == "+=":
                dst.data[...] += aligned
            else:
                dst.data[...] -= aligned
        return self.cost.elementwise_time(dst.nbytes)

    def scale(
        self, dst: KernelOperand, op: str, src: KernelOperand, factor: float
    ) -> float:
        if self.real:
            aligned = factor * np.transpose(
                src.data, _perm(dst.index_ids, src.index_ids)
            )
            if op == "=":
                dst.data[...] = aligned
            elif op == "+=":
                dst.data[...] += aligned
            else:
                dst.data[...] -= aligned
        return self.cost.elementwise_time(dst.nbytes)

    def scale_inplace(self, dst: KernelOperand, factor: float) -> float:
        if self.real:
            dst.data[...] *= factor
        return self.cost.elementwise_time(dst.nbytes)

    def negate(self, dst: KernelOperand, src: KernelOperand) -> float:
        if self.real:
            dst.data[...] = -np.transpose(
                src.data, _perm(dst.index_ids, src.index_ids)
            )
        return self.cost.elementwise_time(dst.nbytes)

    def addsub(
        self, dst: KernelOperand, op: str, a: KernelOperand, b: KernelOperand
    ) -> float:
        if self.real:
            aa = np.transpose(a.data, _perm(dst.index_ids, a.index_ids))
            bb = np.transpose(b.data, _perm(dst.index_ids, b.index_ids))
            dst.data[...] = aa + bb if op == "+" else aa - bb
        return self.cost.elementwise_time(2 * dst.nbytes)

    def contract(
        self, dst: KernelOperand, op: str, a: KernelOperand, b: KernelOperand
    ) -> float:
        contracted_shape = tuple(
            dim
            for dim, ix in zip(a.shape, a.index_ids)
            if ix not in dst.index_ids
        )
        if self.real:
            subscripts, letters = _einsum_subscripts(a, b, dst.index_ids)
            result = np.einsum(subscripts, a.data, b.data, optimize=True)
            if op == "=":
                dst.data[...] = result
            elif op == "+=":
                dst.data[...] += result
            else:
                dst.data[...] -= result
        return self.cost.contraction_time(dst.shape, contracted_shape)

    def scalar_contract(self, a: KernelOperand, b: KernelOperand) -> tuple[float, float]:
        """Full contraction to a scalar; returns (value, cost)."""
        value = 0.0
        if self.real:
            aligned = np.transpose(b.data, _perm(a.index_ids, b.index_ids))
            value = float(np.sum(a.data * aligned))
        cost = self.cost.contraction_time((), a.shape)
        return value, cost

    def compute_integrals(
        self,
        dst: KernelOperand,
        element_ranges: tuple[tuple[int, int], ...],
        source: Optional[Callable],
    ) -> float:
        n_elements = prod(dst.shape, start=1)
        if self.real:
            if source is None:
                raise SIPError(
                    "compute_integrals used but no integral_source configured"
                )
            values = source(element_ranges)
            if values.shape != dst.shape:
                raise SIPError(
                    f"integral_source returned shape {values.shape}, "
                    f"expected {dst.shape}"
                )
            dst.data[...] = values
        return self.cost.integral_time(n_elements)


class RealBackend(ComputeBackend):
    real = True


class ModelBackend(ComputeBackend):
    real = False


def make_backend(kind: str, cost: CostModel) -> ComputeBackend:
    if kind == "real":
        return RealBackend(cost)
    if kind == "model":
        return ModelBackend(cost)
    raise ValueError(f"unknown backend {kind!r}")


def _einsum_subscripts(
    a: KernelOperand, b: KernelOperand, out_ids: tuple[int, ...]
) -> tuple[str, dict[int, str]]:
    letters: dict[int, str] = {}
    pool = iter(string.ascii_lowercase)
    for ix in (*a.index_ids, *b.index_ids, *out_ids):
        if ix not in letters:
            letters[ix] = next(pool)
    a_sub = "".join(letters[i] for i in a.index_ids)
    b_sub = "".join(letters[i] for i in b.index_ids)
    out_sub = "".join(letters[i] for i in out_ids)
    return f"{a_sub},{b_sub}->{out_sub}", letters
