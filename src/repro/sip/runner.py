"""Top-level execution of a compiled SIAL program on the simulated SIP.

``run_program`` wires a master, N workers (each with a service pump),
and M I/O servers onto a simulated MPI world, scatters any initial
array contents, runs the discrete-event simulation to completion, and
returns a :class:`RunResult` with the simulated wall time, the full
profile, scalar values, and (in real mode) array contents.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..sial.bytecode import CompiledProgram
from ..sial.compiler import compile_source
from ..simmpi import Simulator, World
from ..simmpi.faults import FaultReport, ResilienceStats, WorkerCrashed
from .blockio import BlockIOStats
from .blocks import Block, BlockId
from .checkpoint import has_checkpoint
from .config import SIPConfig, SIPError
from .dryrun import DryRunReport, InfeasibleComputation, dry_run
from .ioserver import IOServerProcess
from .master import MasterProcess
from .profiling import RunProfile
from .runtime import SharedRuntime
from .sanitizer import SanitizerReport
from .vm import WorkerProcess

__all__ = ["RunResult", "run_program", "run_source"]


@dataclass
class RunResult:
    """Everything a run produced."""

    elapsed: float
    profile: RunProfile
    scalars: dict[str, float]
    dry_run: DryRunReport
    stats: dict[str, Any]
    external_store: dict[str, Any]
    fault_report: Optional[FaultReport] = None
    sanitizer_report: Optional[SanitizerReport] = None
    _rt: SharedRuntime = field(repr=False, default=None)
    _workers: list = field(repr=False, default_factory=list)
    _servers: list = field(repr=False, default_factory=list)

    def array(self, name: str) -> np.ndarray:
        """Gather a named array's final contents (real mode only)."""
        rt = self._rt
        array_id = rt.array_id_by_name(name)
        desc = rt.array_desc(array_id)
        blocks: dict[tuple[int, ...], Block] = {}
        if desc.kind == "static":
            for bid, block in self._workers[0].local_blocks.items():
                if bid.array_id == array_id:
                    blocks[bid.coords] = block
        elif desc.kind == "distributed":
            for w in self._workers:
                for bid, block in w.owned.items():
                    if bid.array_id == array_id:
                        blocks[bid.coords] = block
        elif desc.kind == "served":
            for s in self._servers:
                blocks.update(s.current_blocks(array_id))
        else:
            raise SIPError(
                f"array {name!r} has kind {desc.kind!r}; only static, "
                "distributed and served arrays persist after a run"
            )
        return rt.assemble_array(array_id, blocks)

    def scalar(self, name: str) -> float:
        return self.scalars[name.lower()]


def run_source(
    source: str,
    config: Optional[SIPConfig] = None,
    symbolics: Optional[dict[str, float]] = None,
) -> RunResult:
    """Compile SIAL source and run it (convenience wrapper)."""
    return run_program(compile_source(source), config, symbolics)


def run_program(
    program: CompiledProgram,
    config: Optional[SIPConfig] = None,
    symbolics: Optional[dict[str, float]] = None,
) -> RunResult:
    config = config if config is not None else SIPConfig()
    symbolics = dict(symbolics or {})

    # Apply the optimizing middle-end once, before the restart loop:
    # every attempt (and every mp child, which receives the program by
    # pickle) executes the same optimized bytecode
    if config.opt_level > 0:
        from ..sial.passes import optimize_program

        program = optimize_program(program, config.opt_level)

    # Retry counters accumulate across crash-triggered restarts (the
    # FaultPlan's own injection counters already persist on the plan).
    retries = ResilienceStats()
    restarts = 0
    while True:
        try:
            return _execute(program, config, symbolics, retries, restarts)
        except WorkerCrashed as crash:
            plan = config.faults
            if plan is None:
                raise
            if not has_checkpoint(config.external_store):
                raise SIPError(
                    f"{crash} and no checkpoint exists to restart from"
                ) from crash
            if restarts >= plan.max_restarts:
                raise SIPError(
                    f"{crash}; giving up after {restarts} restarts"
                ) from crash
            restarts += 1
            # the program-level restart idiom: SIAL programs branch on
            # the `restart` symbolic to reload checkpointed state
            if any(n.lower() == "restart" for n in program.symbolic_table):
                symbolics["restart"] = 1.0


def _execute(
    program: CompiledProgram,
    config: SIPConfig,
    symbolics: dict[str, float],
    retries: ResilienceStats,
    restarts: int,
) -> RunResult:
    if config.execution == "mp":
        from .mprunner import execute_mp

        return execute_mp(program, config, symbolics, retries, restarts)

    wall_start = time.perf_counter()
    sim = Simulator()
    world = World(sim, config.world_size, config.machine.network(), config.faults)
    rt = SharedRuntime(program, config, symbolics, sim, world)

    report = dry_run(program, config, rt.table)
    if not report.feasible:
        raise InfeasibleComputation(report.report())

    workers = [
        WorkerProcess(rt, i, world.comm(config.worker_rank(i)))
        for i in range(config.workers)
    ]
    servers = [
        IOServerProcess(rt, i, world.comm(config.server_rank(i)))
        for i in range(config.io_servers)
    ]
    master = MasterProcess(rt, world.comm(config.master_rank))

    _scatter_inputs(rt, workers, servers)

    sim.spawn(master.run(), name="master")
    for i, w in enumerate(workers):
        sim.spawn(w.run(), name=f"worker{i}")
        sim.spawn(w.service(), name=f"worker{i}.service")
    for i, s in enumerate(servers):
        sim.spawn(s.run(), name=f"ioserver{i}")

    try:
        sim.run()
    finally:
        # harvest retry counters even from a crashed attempt, so the
        # post-restart FaultReport covers the whole recovery story
        for w in workers:
            retries.add(w.resilience)
        for s in servers:
            retries.add(s.resilience)
        retries.add(master.resilience)
        # fault spilled blocks back in so result gathering (and the
        # external store) sees every block's data
        for w in workers:
            w.memman.restore_all()
        # fold any never-read buffered '+=' contributions so gathered
        # arrays see them (canonical key order keeps results identical
        # to an in-run fold)
        for w in workers:
            w.fold_pending_accums()
        for s in servers:
            s.flush_pending()

    return _finalize(
        program,
        config,
        rt,
        report,
        workers,
        servers,
        master,
        retries,
        restarts,
        wall_seconds=time.perf_counter() - wall_start,
    )


def _finalize(
    program: CompiledProgram,
    config: SIPConfig,
    rt: SharedRuntime,
    report: DryRunReport,
    workers: list,
    servers: list,
    master,
    retries: ResilienceStats,
    restarts: int,
    wall_seconds: float = 0.0,
) -> RunResult:
    """Assemble a :class:`RunResult` from finished rank objects.

    Shared by both execution backends: the simulator passes its live
    ``WorkerProcess``/``IOServerProcess``/``MasterProcess`` objects, the
    multiprocess runner passes gathered per-rank stand-ins exposing the
    same attributes (see :mod:`repro.sip.mprunner`).
    """
    elapsed = max((w.profile.elapsed for w in workers), default=0.0)
    memory = _aggregate_mem(workers, servers)
    blockio = _aggregate_blockio(workers, servers)
    profile = RunProfile(
        workers=[w.profile for w in workers],
        elapsed=elapsed,
        program=program,
        plan_cache=rt.plan_cache.stats if rt.plan_cache is not None else None,
        cow=rt.cow if rt.cow_enabled else None,
        memory=memory,
        memory_budget=config.memory_budget,
        scheduling=master.sched_stats,
        blockio=blockio,
    )
    scalars = {
        name.lower(): workers[0].scalars[i]
        for i, name in enumerate(program.scalar_table)
    }
    stats = _collect_stats(rt, workers, servers, master)
    stats["execution"] = config.execution
    stats["wallclock_seconds"] = wall_seconds
    tracer = config.tracer
    if tracer is not None and hasattr(tracer, "annotate"):
        if rt.plan_cache is not None:
            p = rt.plan_cache.stats
            tracer.annotate(
                "plan_cache",
                f"{p.hits} hits / {p.misses} misses "
                f"(hit rate {100.0 * p.hit_rate:.1f} %)",
            )
        if rt.cow_enabled:
            tracer.annotate(
                "zero_copy",
                f"{rt.cow.sends_shared} payloads shared, "
                f"{rt.cow.bytes_not_copied} bytes not copied, "
                f"{rt.cow.cow_copies} cow copies",
            )
        if memory.cascades or memory.spills or memory.pressure_evictions:
            tracer.annotate(
                "memory_pressure",
                f"{memory.pressure_evictions} pressure evictions, "
                f"{memory.spills} spills ({memory.spill_bytes} B), "
                f"{memory.faults_in} faults back in, "
                f"peak {memory.peak_bytes} B of "
                f"{config.memory_budget:.0f} B budget",
            )
        if blockio.issued or blockio.disk_loads:
            tracer.annotate(
                "blockio",
                f"{blockio.issued} fetches issued "
                f"({blockio.coalesced} coalesced, peak "
                f"{blockio.in_flight_peak} in flight), "
                f"{blockio.puts_posted + blockio.prepares_posted} writes "
                f"posted, {blockio.hint_drops} hints dropped",
            )
        sched = master.sched_stats
        if sched.chunks:
            text = (
                f"{sched.policy}: {sched.chunks} chunks, "
                f"{sched.iterations} iterations"
            )
            if sched.policy == "locality":
                text += (
                    f", {sched.locality_hits} locality hits, "
                    f"{sched.steals} steals"
                )
            tracer.annotate("scheduling", text)
    fault_report = None
    if config.faults is not None:
        fault_report = FaultReport(
            injected=config.faults.stats,
            retries=retries,
            restarts=restarts,
            completed=True,
            log=list(config.faults.log),
        )
    return RunResult(
        elapsed=elapsed,
        profile=profile,
        scalars=scalars,
        dry_run=report,
        stats=stats,
        external_store=rt.external_store,
        fault_report=fault_report,
        sanitizer_report=(
            rt.sanitizer.report() if rt.sanitizer is not None else None
        ),
        _rt=rt,
        _workers=workers,
        _servers=servers,
    )


def _scatter_inputs(
    rt: SharedRuntime, workers: list[WorkerProcess], servers: list[IOServerProcess]
) -> None:
    """Pre-load initial array contents (outside simulated time)."""
    for name, value in rt.config.inputs.items():
        try:
            array_id = rt.array_id_by_name(name)
        except KeyError:
            raise SIPError(f"input provided for undeclared array {name!r}") from None
        desc = rt.array_desc(array_id)
        if desc.kind == "static":
            if rt.cow_enabled:
                # slice the input once; every worker gets a copy-on-write
                # share of the same block (copies happen on first write)
                for coords, block in rt.blocks_from_input(array_id, value).items():
                    bid = BlockId(array_id, coords)
                    for w in workers:
                        twin = block.share()
                        w.local_blocks[bid] = twin
                        w.memman.adopt(bid, twin, "static")
            else:
                for w in workers:
                    for coords, block in rt.blocks_from_input(array_id, value).items():
                        bid = BlockId(array_id, coords)
                        w.local_blocks[bid] = block
                        w.memman.adopt(bid, block, "static")
        elif desc.kind == "distributed":
            placement = rt.placements[array_id]
            blocks = rt.blocks_from_input(array_id, value)
            for coords, block in blocks.items():
                owner = placement.owner_index(coords)
                bid = BlockId(array_id, coords)
                workers[owner].owned[bid] = block
                workers[owner].memman.adopt(bid, block, "distributed")
        elif desc.kind == "served":
            placement = rt.served_placements[array_id]
            blocks = rt.blocks_from_input(array_id, value)
            for coords, block in blocks.items():
                sidx = placement.owner_index(coords)
                bid = BlockId(array_id, coords)
                if block.data is not None:
                    servers[sidx].disk_data[bid] = block.data
                else:
                    servers[sidx].disk_data[bid] = block.shape
        elif desc.kind == "temp" or desc.kind == "local":
            raise SIPError(
                f"cannot provide input for {desc.kind} array {name!r}; "
                "only static, distributed, and served arrays take inputs"
            )


def scatter_worker_inputs(rt: SharedRuntime, worker) -> None:
    """Pre-load one worker's share of the initial array contents.

    The multiprocess backend calls this in each worker child, which
    holds exactly one :class:`WorkerProcess`; static arrays are fully
    replicated, distributed arrays filtered to the worker's owned
    coordinates.
    """
    for name, value in rt.config.inputs.items():
        try:
            array_id = rt.array_id_by_name(name)
        except KeyError:
            raise SIPError(f"input provided for undeclared array {name!r}") from None
        desc = rt.array_desc(array_id)
        if desc.kind == "static":
            for coords, block in rt.blocks_from_input(array_id, value).items():
                bid = BlockId(array_id, coords)
                worker.local_blocks[bid] = block
                worker.memman.adopt(bid, block, "static")
        elif desc.kind == "distributed":
            placement = rt.placements[array_id]
            for coords, block in rt.blocks_from_input(array_id, value).items():
                if placement.owner_index(coords) != worker.worker_index:
                    continue
                bid = BlockId(array_id, coords)
                worker.owned[bid] = block
                worker.memman.adopt(bid, block, "distributed")
        elif desc.kind in ("temp", "local"):
            raise SIPError(
                f"cannot provide input for {desc.kind} array {name!r}; "
                "only static, distributed, and served arrays take inputs"
            )


def scatter_server_inputs(rt: SharedRuntime, server) -> None:
    """Pre-load one I/O server's share of the served array contents."""
    for name, value in rt.config.inputs.items():
        try:
            array_id = rt.array_id_by_name(name)
        except KeyError:
            raise SIPError(f"input provided for undeclared array {name!r}") from None
        desc = rt.array_desc(array_id)
        if desc.kind != "served":
            continue
        placement = rt.served_placements[array_id]
        for coords, block in rt.blocks_from_input(array_id, value).items():
            if placement.owner_index(coords) != server.server_index:
                continue
            bid = BlockId(array_id, coords)
            if block.data is not None:
                server.disk_data[bid] = block.data
            else:
                server.disk_data[bid] = block.shape


def _aggregate_mem(workers, servers):
    from .memman import MemStats

    agg = MemStats()
    for w in workers:
        agg.add(w.memman.stats)
    for s in servers:
        agg.add(s.memman.stats)
    return agg


def _aggregate_blockio(workers, servers) -> BlockIOStats:
    """Sum every rank's transfer-engine counters (peaks take max)."""
    total = BlockIOStats()
    for rank_obj in list(workers) + list(servers):
        total.add(rank_obj.blockio.stats)
    return total


def _collect_stats(rt, workers, servers, master) -> dict[str, Any]:
    cache_hits = sum(w.cache.stats.hits for w in workers)
    cache_misses = sum(w.cache.stats.misses for w in workers)
    plans = rt.plan_cache
    kernel_wall: dict[str, float] = {}
    for w in workers:
        for name, seconds in getattr(w.backend, "wall", {}).items():
            kernel_wall[name] = kernel_wall.get(name, 0.0) + seconds
    opt_counters: dict[str, Any] = {"opt_level": rt.program.opt_level}
    if rt.program.opt_report is not None:
        opt_counters = rt.program.opt_report.counters()
    bio = _aggregate_blockio(workers, servers)
    return {
        **opt_counters,
        "instr_executed": sum(w.profile.instructions for w in workers),
        "plan_cache_hits": plans.stats.hits if plans is not None else 0,
        "plan_cache_misses": plans.stats.misses if plans is not None else 0,
        "plan_cache_hit_rate": plans.stats.hit_rate if plans is not None else 0.0,
        "plan_cache_gemm": plans.stats.gemm_plans if plans is not None else 0,
        "plan_cache_einsum": plans.stats.einsum_plans if plans is not None else 0,
        "cow_shared_payloads": rt.cow.sends_shared,
        "cow_bytes_not_copied": rt.cow.bytes_not_copied,
        "cow_copies": rt.cow.cow_copies,
        "cow_bytes_copied": rt.cow.cow_bytes_copied,
        "kernel_wall": kernel_wall,
        "messages_sent": rt.world.stats.messages_sent,
        "bytes_sent": rt.world.stats.bytes_sent,
        "remote_bytes": rt.world.stats.remote_bytes,
        # mp transport counters; zero on the simulator so the stats
        # surface is uniform across backends (mprunner overwrites)
        "arena_hits": 0,
        "arena_misses": 0,
        "arena_handoffs": 0,
        "bytes_zero_copy": 0,
        "arena_refs_leaked": 0,
        "batch_msgs_per_write": 0.0,
        "blockio_issued": bio.issued,
        "blockio_issued_gets": bio.issued_gets,
        "blockio_issued_requests": bio.issued_requests,
        "blockio_coalesced": bio.coalesced,
        "blockio_waiters": bio.waiters,
        "blockio_waiter_peak": bio.waiter_peak,
        "blockio_in_flight_peak": bio.in_flight_peak,
        "blockio_backpressure_stalls": bio.backpressure_stalls,
        "blockio_hint_drops": bio.hint_drops,
        "blockio_puts": bio.puts_posted,
        "blockio_prepares": bio.prepares_posted,
        "blockio_replies": bio.replies_served,
        "blockio_disk_loads": bio.disk_loads,
        "blockio_writebacks": bio.writebacks,
        "blockio_writebacks_superseded": bio.writebacks_superseded,
        "blockio_accums_buffered": bio.accums_buffered,
        "blockio_accum_folds": bio.accum_folds,
        "blockio_fault_ins": bio.fault_ins,
        "blockio_spills": bio.spills,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "cache_evictions": sum(w.cache.stats.evictions for w in workers),
        "cache_evicted_before_use": sum(
            w.cache.stats.evicted_before_use for w in workers
        ),
        "refetches": sum(w.cache.stats.refetches for w in workers),
        "pool_peak_bytes": max((w.pool.stats.peak_bytes for w in workers), default=0),
        "mem_budget_bytes": rt.config.memory_budget,
        "mem_peak_bytes": max(
            (w.memman.stats.peak_bytes for w in workers), default=0
        ),
        "mem_cascades": sum(w.memman.stats.cascades for w in workers)
        + sum(s.memman.stats.cascades for s in servers),
        "mem_pressure_evictions": sum(
            w.memman.stats.pressure_evictions for w in workers
        )
        + sum(s.memman.stats.pressure_evictions for s in servers),
        "mem_spills": sum(w.memman.stats.spills for w in workers),
        "mem_spill_bytes": sum(w.memman.stats.spill_bytes for w in workers),
        "mem_faults_in": sum(w.memman.stats.faults_in for w in workers),
        "mem_fault_bytes": sum(w.memman.stats.fault_bytes for w in workers),
        "mem_peak_spill_bytes": max(
            (w.memman.stats.peak_spill_bytes for w in workers), default=0
        ),
        "mem_spill_retries": sum(
            w.memman.stats.spill_write_retries + w.memman.stats.spill_read_retries
            for w in workers
        ),
        "chunks_served": master.chunks_served,
        "sched_policy": master.sched_stats.policy,
        "sched_chunks": master.sched_stats.chunks,
        "sched_iterations": master.sched_stats.iterations,
        "sched_locality_hits": master.sched_stats.locality_hits,
        "sched_locality_misses": master.sched_stats.locality_misses,
        "sched_steals": master.sched_stats.steals,
        "sched_stolen_iterations": master.sched_stats.stolen_iterations,
        "server_cache_hits": sum(s.cache.stats.hits for s in servers),
        "server_cache_misses": sum(s.cache.stats.misses for s in servers),
        "disk_reads": sum(s.disk.stats.reads for s in servers),
        "disk_writes": sum(s.disk.stats.writes for s in servers),
        "disk_bytes_read": sum(s.disk.stats.bytes_read for s in servers),
        "disk_bytes_written": sum(s.disk.stats.bytes_written for s in servers),
    }
