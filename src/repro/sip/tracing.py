"""Execution tracing: per-worker timelines of super instructions.

The SIP's coarse instruction granularity makes detailed tracing cheap
(paper, Section VI-B); this module records one event per executed
(slow) instruction -- start/end simulated time, busy/wait split, rank
and opcode -- and renders text timelines that make communication
overlap visible:

    w0 |####....####======####|
    w1 |..####====####....####|

where ``#`` is contraction time, ``=`` other kernels, ``.`` waiting.

Attach a :class:`TraceRecorder` via ``SIPConfig.tracer``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from ..sial.bytecode import Op

__all__ = ["TraceEvent", "FaultTraceEvent", "SchedTraceEvent", "TraceRecorder"]

# timeline glyphs by opcode family
_GLYPHS = {
    Op.CONTRACT: "#",
    Op.SCALAR_CONTRACT: "#",
    Op.COMPUTE_INTEGRALS: "%",
    Op.EXECUTE: "x",
    Op.FILL: "=",
    Op.COPY: "=",
    Op.NEGATE: "=",
    Op.SCALE: "=",
    Op.SCALE_INPLACE: "=",
    Op.ACCUM: "=",
    Op.ADDSUB: "=",
    Op.PUT: ">",
    Op.PREPARE: ">",
    Op.SIP_BARRIER: "|",
    Op.SERVER_BARRIER: "|",
    Op.COLLECTIVE: "+",
    Op.PARDO_START: "?",
    Op.BLOCKS_TO_LIST: "s",
    Op.LIST_TO_BLOCKS: "s",
    Op.CHECKPOINT: "s",
}
_WAIT_GLYPH = "."
_IDLE_GLYPH = " "


@dataclass(frozen=True)
class TraceEvent:
    worker: int
    pc: int
    op: str
    start: float
    end: float
    wait: float
    line: Optional[int] = None  # SIAL source line of the instruction

    @property
    def busy(self) -> float:
        return (self.end - self.start) - self.wait


@dataclass(frozen=True)
class FaultTraceEvent:
    """One recovery action taken by the resilient protocol."""

    time: float
    rank: int
    kind: str  # e.g. "retry-get", "disk-write-retry"
    detail: str


@dataclass(frozen=True)
class MemTraceEvent:
    """One memory-pressure action taken by a rank's MemoryManager."""

    time: float
    rank: int
    kind: str  # "spill" | "fault-in"
    block: str
    nbytes: int


@dataclass(frozen=True)
class SchedTraceEvent:
    """One pardo chunk served by the master."""

    time: float
    worker: int
    pardo_pc: int
    size: int  # iterations in the chunk
    locality_hits: int  # iterations served to their preferred worker
    stolen: int  # iterations moved between affinity queues to fill it


@dataclass
class TraceRecorder:
    """Collects instruction events; query or render after the run."""

    events: list[TraceEvent] = field(default_factory=list)
    fault_events: list[FaultTraceEvent] = field(default_factory=list)
    mem_events: list[MemTraceEvent] = field(default_factory=list)
    sched_events: list[SchedTraceEvent] = field(default_factory=list)
    # run-level annotations (plan-cache hit rates, zero-copy savings, ...)
    summary: dict = field(default_factory=dict)

    def annotate(self, key: str, value) -> None:
        """Attach a run-level summary value (shown by :meth:`report`)."""
        self.summary[key] = value

    def record(
        self,
        worker: int,
        pc: int,
        op: str,
        start: float,
        end: float,
        wait: float,
        line: Optional[int] = None,
    ) -> None:
        self.events.append(TraceEvent(worker, pc, op, start, end, wait, line))

    def record_fault(self, time: float, rank: int, kind: str, detail: str = "") -> None:
        self.fault_events.append(FaultTraceEvent(time, rank, kind, detail))

    def record_mem(
        self, time: float, rank: int, kind: str, block: str, nbytes: int
    ) -> None:
        self.mem_events.append(MemTraceEvent(time, rank, kind, block, nbytes))

    def record_sched(
        self,
        time: float,
        worker: int,
        pardo_pc: int,
        size: int,
        locality_hits: int,
        stolen: int,
    ) -> None:
        self.sched_events.append(
            SchedTraceEvent(time, worker, pardo_pc, size, locality_hits, stolen)
        )

    def absorb(self, other: "TraceRecorder") -> None:
        """Merge a child rank's recorder (multiprocess gather)."""
        self.events.extend(other.events)
        self.fault_events.extend(other.fault_events)
        self.mem_events.extend(other.mem_events)
        self.sched_events.extend(other.sched_events)
        self.summary.update(other.summary)

    # -- queries -----------------------------------------------------------
    def for_worker(self, worker: int) -> list[TraceEvent]:
        return [e for e in self.events if e.worker == worker]

    def op_counts(self) -> Counter:
        return Counter(e.op for e in self.events)

    def total_busy(self) -> float:
        return sum(e.busy for e in self.events)

    def total_wait(self) -> float:
        return sum(e.wait for e in self.events)

    def span(self) -> tuple[float, float]:
        if not self.events:
            return (0.0, 0.0)
        return (
            min(e.start for e in self.events),
            max(e.end for e in self.events),
        )

    # -- rendering ---------------------------------------------------------
    def timeline(self, width: int = 72) -> str:
        """Per-worker text gantt over the traced span."""
        if not self.events:
            return "(no events traced)"
        t0, t1 = self.span()
        duration = max(t1 - t0, 1e-30)
        workers = sorted({e.worker for e in self.events})
        lines = [
            f"timeline: {duration:.6f} s across {len(workers)} workers "
            f"(# contract, % integrals, = kernels, > put, . wait, | barrier)"
        ]
        for w in workers:
            cells = [_IDLE_GLYPH] * width
            for e in self.for_worker(w):
                lo = int((e.start - t0) / duration * width)
                hi = max(lo + 1, int((e.end - t0) / duration * width))
                hi = min(hi, width)
                glyph = _GLYPHS.get(e.op, "=")
                span = hi - lo
                wait_cells = 0
                if e.end > e.start:
                    wait_cells = int(round(span * e.wait / (e.end - e.start)))
                for i in range(lo, hi):
                    cells[i] = _WAIT_GLYPH if i - lo < wait_cells else glyph
            lines.append(f"w{w:<3d}|{''.join(cells)}|")
        return "\n".join(lines)

    def report(self) -> str:
        counts = self.op_counts()
        lines = ["traced instruction counts:"]
        for op, n in counts.most_common():
            lines.append(f"  {op:<18s} {n}")
        lines.append(f"total busy: {self.total_busy():.6f} s")
        lines.append(f"total wait: {self.total_wait():.6f} s")
        if self.fault_events:
            lines.append("recovery actions:")
            for kind, n in Counter(e.kind for e in self.fault_events).most_common():
                lines.append(f"  {kind:<18s} {n}")
        if self.mem_events:
            lines.append("memory pressure actions:")
            for kind, n in Counter(e.kind for e in self.mem_events).most_common():
                total = sum(e.nbytes for e in self.mem_events if e.kind == kind)
                lines.append(f"  {kind:<18s} {n}  ({total} B)")
        if self.sched_events:
            iters = sum(e.size for e in self.sched_events)
            hits = sum(e.locality_hits for e in self.sched_events)
            stolen = sum(e.stolen for e in self.sched_events)
            lines.append(
                f"chunk scheduling: {len(self.sched_events)} chunks, "
                f"{iters} iterations, {hits} locality hits, "
                f"{stolen} stolen"
            )
        if self.summary:
            lines.append("run annotations:")
            for key in sorted(self.summary):
                lines.append(f"  {key}: {self.summary[key]}")
        return "\n".join(lines)
