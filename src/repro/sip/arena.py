"""Pooled shared-memory slab arena for the multiprocess transport.

PR 7's transport paid one ``SharedMemory`` create/copy/close on the
sender and one attach/copy/unlink on the receiver for *every* detoured
block.  This module replaces that per-payload lifecycle with a pooled
arena, the block-transfer layer real SIP implementations rely on:

* Each rank lazily creates a small set of shared-memory **slabs**
  (``SIPConfig.mp_arena_slab_bytes`` each, ``mp_arena_max_bytes``
  total) and carves every slab into power-of-two size-classed
  **slots**.  A block send leases a slot from the free list and copies
  the payload in once; the pickle carries a slim :class:`ArenaRef`.
* The receiver attaches each slab **once** (attach-cached) and maps a
  numpy view directly over the slot — no copy-out.  The view becomes a
  :class:`~repro.sip.blocks.Block` with a permanent phantom entry in
  the PR 3 copy-on-write cell, so ``ensure_writable`` copies on the
  first in-place *write*; the receive itself is zero-copy, and the
  block pool can never recycle borrowed arena memory.
* Slot reclamation needs no cross-process atomics.  Every slot owns
  ``world_size`` one-byte **release flags** at the head of its slab;
  the sender sets ``flag[dest] = 1`` before the send, the receiver's
  view finalizer writes it back to 0, and each byte is written by
  exactly one process on each side of the protocol.  The sender
  reclaims lazily when it next needs a slot.
* A **residency** registry remembers which sender buffer each slot
  holds a copy of (keyed by the ndarray's identity, pinned immutable
  via a phantom count in the shared COW cell).  Re-sending the same
  buffer to another rank is then a pure flag write — zero copies.
  Residencies are evicted (phantom dropped, slot freed) under arena
  pressure, so the cache never blocks reclamation for long.

Crash safety: slab names are distinguishable from the one-shot
fallback segments, children never unlink slabs themselves, and the
parent unlinks all of the run's slabs after the fleet joins (the same
sweep that catches genuinely leaked one-shot segments).

The arena guarantees the same snapshot semantics as the simulator's
zero-copy transport: content pinning relies on every in-place block
write going through ``ensure_writable`` — exactly the discipline the
PR 3 COW fast path already requires.
"""

from __future__ import annotations

import contextlib
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

from .blocks import Block

__all__ = [
    "ArenaStats",
    "ArenaRef",
    "SlabArena",
    "ArenaReceiver",
    "MIN_SLOT_BYTES",
]

#: smallest slot size class, bytes (power of two)
MIN_SLOT_BYTES = 256
#: alignment of the slot data region inside a slab
_ALIGN = 64

#: Live arena-side objects in this process.  The test suite's autouse
#: teardown sweeps this to assert zero outstanding slot leases after
#: every mp-marked test (zero leaked refcounts, not just segments).
LIVE_ARENAS: "weakref.WeakSet" = weakref.WeakSet()


@contextlib.contextmanager
def _untracked_shm():
    """Open a SharedMemory without resource-tracker registration.

    Segment lifecycle is managed explicitly here (receivers release
    flags, the parent sweeps).  Python < 3.13 has no ``track=False``
    and registers on *attach* as well as create, so with a forked
    (shared) tracker the sender's unregister can race the receiver's
    attach/unlink pair and corrupt the tracker's cache.  Suppressing
    registration around the constructor avoids the race; the engine is
    single-threaded, so the swap is safe.
    """
    orig_reg = resource_tracker.register
    orig_unreg = resource_tracker.unregister
    resource_tracker.register = lambda name, rtype: None
    resource_tracker.unregister = lambda name, rtype: None
    try:
        yield
    finally:
        resource_tracker.register = orig_reg
        resource_tracker.unregister = orig_unreg


@dataclass
class ArenaStats:
    """Arena traffic of one rank (sender + receiver sides), or summed."""

    hits: int = 0  # payloads copied into a leased slot
    handoffs: int = 0  # repeat sends satisfied with zero copies
    misses: int = 0  # fallbacks to a one-shot segment (full/oversize)
    bytes_placed: int = 0  # bytes copied into slots (sender side)
    handoff_bytes: int = 0  # bytes re-sent without any copy
    slabs_created: int = 0
    slab_bytes: int = 0
    slots_leased: int = 0
    slots_reclaimed: int = 0
    residencies_evicted: int = 0
    recv_mapped: int = 0  # blocks delivered as views over a slot
    bytes_zero_copy: int = 0  # bytes delivered without a receive copy
    recv_released: int = 0  # leases returned by the view finalizer
    recv_live_at_exit: int = 0  # leases still held when the rank reported
    refs_leaked: int = 0  # mapped - released - live; must be 0

    def add(self, other: "ArenaStats") -> None:
        self.hits += other.hits
        self.handoffs += other.handoffs
        self.misses += other.misses
        self.bytes_placed += other.bytes_placed
        self.handoff_bytes += other.handoff_bytes
        self.slabs_created += other.slabs_created
        self.slab_bytes += other.slab_bytes
        self.slots_leased += other.slots_leased
        self.slots_reclaimed += other.slots_reclaimed
        self.residencies_evicted += other.residencies_evicted
        self.recv_mapped += other.recv_mapped
        self.bytes_zero_copy += other.bytes_zero_copy
        self.recv_released += other.recv_released
        self.recv_live_at_exit += other.recv_live_at_exit
        self.refs_leaked += other.refs_leaked


@dataclass(frozen=True)
class ArenaRef:
    """Wire stub for a Block payload parked in an arena slot.

    ``release_off`` is the absolute offset of the *receiver's* release
    flag byte inside the slab; the receiver's view finalizer zeroes it
    when the mapped block (and every view derived from it) dies.
    """

    name: str
    data_off: int
    data_shape: tuple
    dtype_str: str
    block_shape: tuple
    release_off: int
    payload_nbytes: int

    @property
    def nbytes(self) -> int:
        # message_nbytes() must account a detoured payload at the block
        # bytes it stands for, never at the size of this stub
        return self.payload_nbytes


class _Slab:
    __slots__ = ("name", "seg", "class_size", "n_slots")

    def __init__(self, name, seg, class_size, n_slots):
        self.name = name
        self.seg = seg
        self.class_size = class_size
        self.n_slots = n_slots


class _Slot:
    __slots__ = ("slab", "data_off", "flags_off", "size", "pending", "res_key")

    def __init__(self, slab, data_off, flags_off, size):
        self.slab = slab
        self.data_off = data_off
        self.flags_off = flags_off
        self.size = size
        self.pending: set[int] = set()  # dest ranks whose flag we set
        self.res_key: Optional[int] = None  # residency key, or None


class _Residency:
    __slots__ = ("key", "slot", "cell", "fin")

    def __init__(self, key, slot, cell, fin):
        self.key = key
        self.slot = slot
        self.cell = cell
        self.fin = fin


class SlabArena:
    """Sender-side slot allocator over pooled shared-memory slabs."""

    def __init__(
        self,
        run_id: str,
        rank: int,
        world_size: int,
        *,
        slab_bytes: int = 1 << 22,
        max_bytes: int = 1 << 26,
        epoch: int = 0,
        stats: Optional[ArenaStats] = None,
        ledger=None,
    ) -> None:
        self.run_id = run_id
        self.rank = rank
        self.world_size = world_size
        self.slab_bytes = int(slab_bytes)
        self.max_bytes = int(max_bytes)
        self.epoch = epoch
        self.stats = stats if stats is not None else ArenaStats()
        #: a MemoryManager charged for the slab footprint, or None
        self.ledger = ledger
        self._free: dict[int, list[_Slot]] = {}
        self._busy: dict[int, list[_Slot]] = {}
        self._slabs: list[_Slab] = []
        self._seg_bytes = 0
        self._slab_counter = 0
        self._residency: dict[int, _Residency] = {}
        LIVE_ARENAS.add(self)

    # -- naming ------------------------------------------------------------
    def _slab_name(self, class_size: int) -> str:
        # the trailing ``a<class-exponent>x<n>`` marker distinguishes an
        # expected slab from a leaked one-shot segment (…n<seq>) in the
        # parent's sweep; the epoch guards a re-created world in one run
        self._slab_counter += 1
        exp = class_size.bit_length()
        return (
            f"rmp{self.run_id}r{self.rank}e{self.epoch}"
            f"a{exp}x{self._slab_counter}"
        )

    # -- allocation --------------------------------------------------------
    @staticmethod
    def _class_for(nbytes: int) -> int:
        c = MIN_SLOT_BYTES
        while c < nbytes:
            c <<= 1
        return c

    def _flags_clear(self, slot: _Slot) -> bool:
        buf = slot.slab.seg.buf
        base = slot.flags_off
        return all(buf[base + r] == 0 for r in slot.pending)

    def _sweep(self, class_size: int, evict_residents: bool = False) -> None:
        """Move released busy slots of one class back to the free list."""
        busy = self._busy.get(class_size)
        if not busy:
            return
        keep: list[_Slot] = []
        free = self._free.setdefault(class_size, [])
        for slot in busy:
            if not self._flags_clear(slot):
                keep.append(slot)
                continue
            if slot.res_key is not None:
                if not evict_residents:
                    keep.append(slot)
                    continue
                self._evict_residency(slot)
            slot.pending.clear()
            free.append(slot)
            self.stats.slots_reclaimed += 1
        self._busy[class_size] = keep

    def _new_slab(self, class_size: int) -> None:
        n_slots = max(1, self.slab_bytes // class_size)
        flags_area = -(-n_slots * self.world_size // _ALIGN) * _ALIGN
        total = flags_area + n_slots * class_size
        if self._seg_bytes + total > self.max_bytes:
            return
        name = self._slab_name(class_size)
        with _untracked_shm():
            seg = shared_memory.SharedMemory(name=name, create=True, size=total)
        # a fresh mapping is zero-filled: every release flag starts clear
        slab = _Slab(name, seg, class_size, n_slots)
        self._slabs.append(slab)
        self._seg_bytes += total
        self.stats.slabs_created += 1
        self.stats.slab_bytes += total
        if self.ledger is not None:
            self.ledger.charge_arena(total)
        free = self._free.setdefault(class_size, [])
        for i in range(n_slots):
            free.append(
                _Slot(
                    slab,
                    data_off=flags_area + i * class_size,
                    flags_off=i * self.world_size,
                    size=class_size,
                )
            )

    def lease(self, nbytes: int) -> Optional[_Slot]:
        """A free slot fitting ``nbytes``, or None (arena full/oversize)."""
        if nbytes > self.slab_bytes:
            return None
        c = self._class_for(nbytes)
        free = self._free.setdefault(c, [])
        if not free:
            self._sweep(c)
        if not free:
            self._new_slab(c)
        if not free:
            self._sweep(c, evict_residents=True)
        if not free:
            return None
        slot = free.pop()
        self._busy.setdefault(c, []).append(slot)
        self.stats.slots_leased += 1
        return slot

    # -- payload placement -------------------------------------------------
    def place(self, block: Block, dest: int) -> Optional[ArenaRef]:
        """Park ``block``'s data in a slot for ``dest``; None on miss.

        A buffer already resident in a slot (an earlier send of the
        same pinned ndarray) is handed off with zero copies — only its
        release flag for ``dest`` is written.
        """
        data = block.data
        ent = self._residency.get(id(data))
        if ent is not None:
            slot = ent.slot
            buf = slot.slab.seg.buf
            if buf[slot.flags_off + dest] == 0:
                buf[slot.flags_off + dest] = 1
                slot.pending.add(dest)
                self.stats.handoffs += 1
                self.stats.handoff_bytes += data.nbytes
                return self._ref(slot, block, dest)
            # dest still holds the previous delivery of this very slot;
            # fall through to a second slot so the one-byte release
            # protocol stays exact (one delivery per flag)
        slot = self.lease(data.nbytes)
        if slot is None:
            self.stats.misses += 1
            return None
        seg = slot.slab.seg
        view = np.ndarray(
            data.shape, dtype=data.dtype, buffer=seg.buf, offset=slot.data_off
        )
        np.copyto(view, data)
        del view
        seg.buf[slot.flags_off + dest] = 1
        slot.pending.add(dest)
        self.stats.hits += 1
        self.stats.bytes_placed += data.nbytes
        self._bind(block, slot)
        return self._ref(slot, block, dest)

    def _ref(self, slot: _Slot, block: Block, dest: int) -> ArenaRef:
        data = block.data
        return ArenaRef(
            name=slot.slab.name,
            data_off=slot.data_off,
            data_shape=tuple(data.shape),
            dtype_str=str(data.dtype),
            block_shape=tuple(block.shape),
            release_off=slot.flags_off + dest,
            payload_nbytes=data.nbytes,
        )

    # -- residency (sender-side zero-copy resends) -------------------------
    def _bind(self, block: Block, slot: _Slot) -> None:
        """Remember that ``slot`` holds a copy of ``block.data``.

        The content is pinned by a phantom count in the block's COW
        cell: every holder's ``ensure_writable`` then copies instead of
        writing in place, so the slot copy stays bitwise equal to the
        buffer for as long as the buffer lives.  (The cell is shared
        with every COW twin, so the pin covers the owner a snapshot
        twin was taken from, too.)
        """
        data = block.data
        key = id(data)
        if key in self._residency:
            # a dest-collision re-copy of an already-bound buffer: the
            # registry keeps pointing at the first slot; this second
            # slot is reclaimed normally once its receiver releases it
            return
        cell = block._shared
        if cell is None:
            cell = block._shared = [1]
        cell[0] += 1  # the phantom held by this residency
        fin = weakref.finalize(data, self._residency_dropped, key)
        slot.res_key = key
        self._residency[key] = _Residency(key, slot, cell, fin)

    def _residency_dropped(self, key: int) -> None:
        # the pinned ndarray died: no holder can resend it, the slot
        # just waits for its receivers' flags like any other lease
        ent = self._residency.pop(key, None)
        if ent is not None:
            ent.slot.res_key = None

    def _evict_residency(self, slot: _Slot) -> None:
        ent = self._residency.pop(slot.res_key, None)
        slot.res_key = None
        if ent is None:
            return
        ent.fin.detach()
        # un-pin: the buffer may be written in place again (heap memory,
        # never the slot), and the slot can be reused immediately
        ent.cell[0] -= 1
        self.stats.residencies_evicted += 1

    # -- observability / teardown -----------------------------------------
    def outstanding(self) -> int:
        """Slots whose receivers have not yet released them."""
        return sum(
            1
            for busy in self._busy.values()
            for slot in busy
            if slot.pending and not self._flags_clear(slot)
        )

    def destroy(self) -> None:
        """Unlink every slab (tests and benchmarks; children never do
        this — the parent's sweep owns slab teardown in a real run)."""
        for ent in list(self._residency.values()):
            ent.fin.detach()
        self._residency.clear()
        self._free.clear()
        self._busy.clear()
        slabs, self._slabs = self._slabs, []
        self._seg_bytes = 0
        for slab in slabs:
            with contextlib.suppress(BufferError):
                slab.seg.close()
            with _untracked_shm(), contextlib.suppress(FileNotFoundError):
                slab.seg.unlink()


class _Lease:
    __slots__ = ("seg", "release_off", "count")

    def __init__(self, seg, release_off):
        self.seg = seg
        self.release_off = release_off
        self.count = 0


class ArenaReceiver:
    """Receiver side: attach-cached slabs, mapped views, flag releases."""

    def __init__(self, stats: Optional[ArenaStats] = None) -> None:
        self.stats = stats if stats is not None else ArenaStats()
        self._segs: dict[str, shared_memory.SharedMemory] = {}
        self._live: dict[tuple[str, int], _Lease] = {}
        LIVE_ARENAS.add(self)

    def _attach(self, name: str) -> shared_memory.SharedMemory:
        seg = self._segs.get(name)
        if seg is None:
            with _untracked_shm():
                seg = shared_memory.SharedMemory(name=name)
            self._segs[name] = seg
        return seg

    def unpack(self, ref: ArenaRef) -> Block:
        """Map a Block view over the slot — the zero-copy receive.

        The returned block is read-only with a permanent phantom COW
        holder: an in-place write triggers ``ensure_writable``'s
        copy-out (the only copy of the transfer), and the block pool
        can never recycle the borrowed slot memory.  The slot's release
        flag is cleared by a finalizer when the mapped view — and every
        view derived from it — is garbage.
        """
        seg = self._attach(ref.name)
        view = np.ndarray(
            ref.data_shape,
            dtype=np.dtype(ref.dtype_str),
            buffer=seg.buf,
            offset=ref.data_off,
        )
        view.flags.writeable = False
        key = (ref.name, ref.release_off)
        lease = self._live.get(key)
        if lease is None:
            lease = self._live[key] = _Lease(seg, ref.release_off)
        lease.count += 1
        block = Block.mapped(ref.block_shape, view)
        weakref.finalize(view, self._release, key)
        self.stats.recv_mapped += 1
        self.stats.bytes_zero_copy += view.nbytes
        return block

    def _release(self, key: tuple[str, int]) -> None:
        lease = self._live.get(key)
        if lease is None:  # pragma: no cover - double-release guard
            return
        lease.count -= 1
        if lease.count > 0:
            return
        del self._live[key]
        try:
            lease.seg.buf[lease.release_off] = 0
        except (TypeError, ValueError, IndexError):  # pragma: no cover
            pass  # the segment is already torn down (test-only path)
        self.stats.recv_released += 1

    # -- observability / teardown -----------------------------------------
    def live_leases(self) -> int:
        return sum(lease.count for lease in self._live.values())

    def outstanding(self) -> int:
        return self.live_leases()

    def account_exit(self) -> None:
        """Record the rank's lease balance right before results ship.

        Leases still live here back blocks the rank is about to pickle
        into its result (or parked mailbox deliveries) — held, not
        leaked.  ``refs_leaked`` counts bookkeeping violations only:
        every mapped lease must be either released or still live.
        """
        st = self.stats
        st.recv_live_at_exit = self.live_leases()
        st.refs_leaked = st.recv_mapped - st.recv_released - st.recv_live_at_exit

    def close(self) -> None:
        """Drop attach caches (tests; a child just exits in a real run)."""
        segs, self._segs = self._segs, {}
        for seg in segs.values():
            with contextlib.suppress(BufferError):
                seg.close()
