"""SIP I/O servers: the disk-backed (served) array ranks.

Each I/O server owns a static share of every served array's blocks, a
write-back LRU cache, and one simulated disk.  All of its operations
are non-blocking (paper, Section V-B): a ``prepare`` is acknowledged as
soon as the block lands in the cache and is *lazily* written to disk; a
``request`` is answered from the cache when possible and otherwise
spawns an asynchronous disk read, so a slow disk never stalls the
message loop.  Blocks are materialized only when actually filled with
data, which keeps symmetric arrays cheap to declare (paper, Section
V-B).

Cache fills, write-back versioning, accumulate buffering and reply
snapshots all go through the rank's
:class:`~repro.sip.blockio.BlockTransferEngine` -- the same engine the
workers use, so concurrent loads coalesce and back-pressure is applied
by one discipline.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..simmpi import Disk, Timeout
from ..simmpi.faults import ResilienceStats
from .blockio import BlockTransferEngine
from .blocks import Block, BlockId, block_nbytes
from .config import SIPError
from .memman import MemoryManager
from .distributed import ConflictTracker
from .messages import (
    Ack,
    PrepareBlock,
    RequestBlock,
    SERVER_TAG,
    Shutdown,
)
from .runtime import SharedRuntime
from .transport import CommEndpoint

__all__ = ["IOServerProcess"]


class IOServerProcess:
    def __init__(
        self, rt: SharedRuntime, server_index: int, comm: CommEndpoint
    ) -> None:
        self.rt = rt
        self.server_index = server_index
        self.rank = rt.config.server_rank(server_index)
        self.comm = comm
        self.sim = rt.sim
        self._nbytes_memo: dict[BlockId, int] = {}
        # the server's cache shares the rank budget through the same
        # MemoryManager workers use; it has no spillable blocks, so
        # pressure resolves through eviction and write-back alone
        self.memman = MemoryManager(
            rt.config.memory_budget,
            real=rt.real,
            name=f"ioserver{server_index}",
            cache_blocks=rt.config.server_cache_blocks,
            nbytes_of=self._block_nbytes,
            dtype=rt.dtype,
            spill=rt.config.spill,
            clock=lambda: rt.sim.now,
            tracer=rt.config.tracer,
            rank=self.rank,
        )
        # servers answer demand traffic only; every insert may evict
        self.memman.cache_spill_ok = True
        self.cache = self.memman.cache
        self.disk = Disk(
            rt.sim,
            seek_latency=rt.config.machine.disk_seek,
            bandwidth=rt.config.machine.disk_bandwidth,
            name=f"disk{server_index}",
            faults=rt.config.faults,
        )
        # "on-disk" contents: ndarray in real mode, block shape in model mode
        self.disk_data: dict[BlockId, object] = {}
        self.trackers: dict[int, ConflictTracker] = {}
        # all block movement (cache fills, write-back versions, the
        # canonical '+=' ledger, reply snapshots) goes through the engine
        self.blockio = BlockTransferEngine(
            self,
            reserve=rt.config.blockio_reserve,
            max_in_flight=rt.config.blockio_max_in_flight,
        )
        self.memman.blockio = self.blockio
        # resilient protocol: (source rank, seq) -> "pending" | "done",
        # so a retried prepare is applied exactly once but still acked
        self._prepare_state: dict[tuple[int, int], str] = {}
        self.resilience = ResilienceStats()

    def tracker(self, epoch: int) -> ConflictTracker:
        t = self.trackers.get(epoch)
        if t is None:
            t = self.trackers[epoch] = ConflictTracker(
                "served",
                enabled=self.rt.config.validate_barriers,
                sink=(
                    self.rt.sanitizer.note_owner_violation
                    if self.rt.sanitizer is not None
                    else None
                ),
            )
        return t

    # -- main pump -----------------------------------------------------------
    def run(self) -> Generator:
        while True:
            msg = yield from self.comm.recv(tag=SERVER_TAG)
            payload = msg.payload
            if isinstance(payload, Shutdown):
                if payload.ack_tag >= 0:
                    self.comm.isend(
                        Ack(payload.ack_tag), dest=msg.source, tag=payload.ack_tag
                    )
                return
            if isinstance(payload, PrepareBlock):
                self._handle_prepare(payload, msg.source)
            elif isinstance(payload, RequestBlock):
                self._handle_request(payload, msg.source)
            else:
                raise SIPError(f"I/O server got unexpected message {payload!r}")

    # -- prepare -----------------------------------------------------------------
    def _handle_prepare(self, p: PrepareBlock, source: int) -> None:
        if p.seq >= 0:
            # resilient protocol: exactly-once apply of retried prepares.
            # While the original is still being applied we stay silent
            # (its own ack will come); once done, re-ack duplicates.
            state = self._prepare_state.get((source, p.seq))
            if state == "done":
                self.resilience.duplicates_ignored += 1
                self._ack(p, source)
                return
            if state == "pending":
                self.resilience.duplicates_ignored += 1
                return
            self._prepare_state[(source, p.seq)] = "pending"
        self.tracker(p.epoch).record_write(p.worker_index, p.block_id, p.op)
        bid = p.block_id
        if p.op != "=" and p.accum_key is not None:
            self.blockio.accums.buffer(bid, p.accum_key, p.block)
            self._finish_prepare(p, source)
            return
        if p.op == "=":
            # an overwrite supersedes any buffered contributions
            self.blockio.accums.discard(bid)
        entry = self.cache.lookup(bid)
        if entry is not None and not entry.pending:
            self._apply(entry.block, p)
            entry.dirty = True
            self._start_writeback(bid)
            self._finish_prepare(p, source)
        else:
            # contents must be pulled (pending fetch / disk) or cache
            # space must free up first; do it off the message pump
            self.sim.spawn(
                self._prepare_later(p, source),
                name=f"ioserver{self.server_index}.prepare",
            )

    def _prepare_later(self, p: PrepareBlock, source: int) -> Generator:
        entry = yield from self._ensure_cached(p.block_id, allow_missing=True)
        self._apply(entry.block, p)
        entry.dirty = True
        self._start_writeback(p.block_id)
        self._finish_prepare(p, source)

    def _finish_prepare(self, p: PrepareBlock, source: int) -> None:
        if p.seq >= 0:
            self._prepare_state[(source, p.seq)] = "done"
        self._ack(p, source)

    def _ack(self, p: PrepareBlock, source: int) -> None:
        self.comm.isend(Ack(p.ack_tag), dest=source, tag=p.ack_tag)

    def _apply(self, block: Block, p: PrepareBlock) -> None:
        if block.data is None or p.block.data is None:
            return
        # the cached block may have been shared zero-copy with a
        # requester; detach before writing
        copied = block.ensure_writable()
        if copied:
            self.rt.cow.cow_copies += 1
            self.rt.cow.cow_bytes_copied += copied
        if p.op == "=":
            block.data[...] = p.block.data
        else:
            block.data[...] += p.block.data

    def _block_nbytes(self, bid: BlockId) -> int:
        n = self._nbytes_memo.get(bid)
        if n is None:
            n = self._nbytes_memo[bid] = block_nbytes(
                self.rt.block_shape(bid), self.rt.dtype
            )
        return n

    def _fresh_block(self, bid: BlockId) -> Block:
        shape = self.rt.block_shape(bid)
        data = np.zeros(shape, dtype=self.rt.dtype) if self.rt.real else None
        return Block(shape, data, dtype=self.rt.dtype)

    def _start_writeback(self, bid: BlockId) -> None:
        version = self.blockio.begin_writeback(bid)
        entry = self.cache.lookup(bid, touch=False)
        snapshot = (
            entry.block.data.copy()
            if entry.block.data is not None
            else entry.block.shape
        )
        nbytes = entry.block.nbytes

        def writer() -> Generator:
            attempts = 0
            while True:
                fault = yield self.disk.write(nbytes)
                if fault is None:
                    break
                attempts += 1
                self.resilience.writeback_retries += 1
                self._trace_fault("disk-write-retry", bid)
                if attempts > self.rt.config.retry_limit:
                    raise SIPError(
                        f"ioserver{self.server_index}: write-back of {bid} "
                        f"still failing after {attempts} attempts"
                    )
                yield Timeout(
                    self.rt.config.retry_timeout
                    * self.rt.config.retry_backoff ** (attempts - 1)
                )
            if not self.blockio.writeback_current(bid, version):
                # a newer write-back owns the disk image; storing this
                # snapshot would clobber fresher data
                return
            self.disk_data[bid] = snapshot
            current = self.cache.lookup(bid, touch=False)
            if current is not None:
                current.dirty = False
                self.blockio.signal_evictable()

        self.sim.spawn(writer(), name=f"ioserver{self.server_index}.writeback")

    # -- request -----------------------------------------------------------------
    def _handle_request(self, p: RequestBlock, source: int) -> None:
        self.tracker(p.epoch).record_read(p.worker_index, p.block_id)
        entry = self.cache.lookup(p.block_id)
        if entry is not None and not entry.pending:
            self.cache.record_use(p.block_id, hit=True)
            self._fold_pending(p.block_id)
            self.blockio.reply_block(source, p.reply_tag, p.block_id, entry.block)
            return
        self.cache.record_use(p.block_id, hit=False)
        self.sim.spawn(
            self._request_later(p, source),
            name=f"ioserver{self.server_index}.read",
        )

    def _request_later(self, p: RequestBlock, source: int) -> Generator:
        # a block that only ever received buffered '+=' contributions
        # has no disk image yet: fold onto zeros
        allow_missing = p.block_id in self.blockio.accums
        entry = yield from self._ensure_cached(
            p.block_id, allow_missing=allow_missing
        )
        self._fold_pending(p.block_id)
        self.blockio.reply_block(source, p.reply_tag, p.block_id, entry.block)

    def _fold_pending(self, bid: BlockId) -> None:
        """Fold buffered '+=' contributions into the (ready) cache entry."""
        if bid not in self.blockio.accums:
            return
        entry = self.cache.lookup(bid, touch=False)
        block = entry.block
        copied = block.ensure_writable()
        if copied:
            self.rt.cow.cow_copies += 1
            self.rt.cow.cow_bytes_copied += copied
        self.blockio.accums.fold_into(bid, block)
        entry.dirty = True
        self._start_writeback(bid)

    def _ensure_cached(self, bid: BlockId, allow_missing: bool) -> Generator:
        """Get a ready cache entry, loading from disk if necessary.

        The engine coalesces concurrent loads of the same block and
        applies write-back back-pressure when the cache is full of
        dirty/pending entries.
        """
        return (
            yield from self.blockio.ensure_cached(
                bid, lambda: self._load_block(bid, allow_missing)
            )
        )

    def _load_block(self, bid: BlockId, allow_missing: bool) -> Generator:
        """Read a block from disk (or create zeros if allowed)."""
        stored = self.disk_data.get(bid)
        if stored is None:
            if not allow_missing:
                desc = self.rt.array_desc(bid.array_id)
                raise SIPError(
                    f"request of block {bid.coords} of served array "
                    f"{desc.name!r} that was never prepared"
                )
            return self._fresh_block(bid)
        shape = self.rt.block_shape(bid)
        attempts = 0
        while True:
            fault = yield self.disk.read(self._block_nbytes(bid))
            if fault is None:
                break
            attempts += 1
            self.resilience.disk_read_retries += 1
            self._trace_fault("disk-read-retry", bid)
            if attempts > self.rt.config.retry_limit:
                raise SIPError(
                    f"ioserver{self.server_index}: read of {bid} still "
                    f"failing after {attempts} attempts"
                )
            yield Timeout(
                self.rt.config.retry_timeout
                * self.rt.config.retry_backoff ** (attempts - 1)
            )
        if isinstance(stored, np.ndarray):
            return Block(shape, stored.copy())
        return Block(shape, None)

    def _trace_fault(self, kind: str, detail: object) -> None:
        tracer = self.rt.config.tracer
        if tracer is not None and hasattr(tracer, "record_fault"):
            tracer.record_fault(self.sim.now, self.rank, kind, str(detail))

    # -- post-run access (outside simulated time) -------------------------------
    def flush_pending(self) -> None:
        """Fold never-read buffered '+=' contributions into the disk image.

        Called after the run (outside simulated time) so result
        gathering through :meth:`current_blocks` sees every
        contribution; canonical key order keeps the result identical to
        what an in-run fold would have produced.
        """
        for bid in self.blockio.accums.pending_ids():
            pending = self.blockio.accums.pop_sorted(bid)
            entry = self.cache.lookup(bid, touch=False)
            if entry is not None and not entry.pending and entry.block is not None:
                base = entry.block
                copied = base.ensure_writable()
                if copied:
                    self.rt.cow.cow_copies += 1
                    self.rt.cow.cow_bytes_copied += copied
                if base.data is not None:
                    for _key, inc in pending:
                        if inc.data is not None:
                            base.data[...] += inc.data
                    self.disk_data[bid] = base.data.copy()
                else:
                    self.disk_data[bid] = base.shape
                continue
            stored = self.disk_data.get(bid)
            shape = self.rt.block_shape(bid)
            if self.rt.real:
                data = (
                    stored.copy()
                    if isinstance(stored, np.ndarray)
                    else np.zeros(shape, dtype=self.rt.dtype)
                )
                for _key, inc in pending:
                    if inc.data is not None:
                        data += inc.data
                self.disk_data[bid] = data
            else:
                self.disk_data[bid] = shape

    def current_blocks(self, array_id: int) -> dict[tuple[int, ...], Block]:
        """Freshest contents of one array's blocks on this server."""
        out: dict[tuple[int, ...], Block] = {}
        for bid, stored in self.disk_data.items():
            if bid.array_id != array_id:
                continue
            if isinstance(stored, np.ndarray):
                out[bid.coords] = Block(stored.shape, stored)
            else:
                out[bid.coords] = Block(tuple(stored), None)
        for bid, entry in self.cache.items():
            if bid.array_id == array_id and entry.block is not None:
                out[bid.coords] = entry.block
        return out
