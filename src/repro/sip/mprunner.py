"""Multiprocess execution of a compiled SIAL program (``execution="mp"``).

The parent builds the shared runtime exactly like the simulator path
(feasibility check, placements, gather/assembly helpers), then forks
one OS process per SIP rank.  Each child wires its single rank object
(:class:`~.vm.WorkerProcess`, :class:`~.ioserver.IOServerProcess` or
:class:`~.master.MasterProcess`) onto an :class:`~.mptransport.MPWorld`
over a pre-forked full mesh of duplex pipes, drives it with an
:class:`~.mptransport.MPEngine`, and ships its results -- scalars,
profile, owned blocks, stats, sanitizer/trace state -- back over a
dedicated result pipe.

The parent supervises: it drains result pipes while children run (a
``Connection.send`` larger than the pipe buffer blocks until the
reader catches up, so results must be read *before* join), detects a
child that died without reporting, tears the fleet down on any error,
and finally sweeps ``/dev/shm`` for segments the crashed path may have
leaked.  Gathered per-rank state is wrapped in duck-typed stand-ins so
:func:`~.runner._finalize` and :meth:`~.runner.RunResult.array` work
unchanged on both backends.
"""

from __future__ import annotations

import os
import re
import time
import traceback
from multiprocessing import connection as mpconn
from multiprocessing import get_context
from typing import Any, Optional

from ..sial.bytecode import CompiledProgram
from ..simmpi import Simulator, World
from ..simmpi.faults import ResilienceStats
from .blocks import Block, BlockId
from .config import SIPConfig, SIPError
from .dryrun import InfeasibleComputation, dry_run
from .ioserver import IOServerProcess
from .master import MasterProcess
from .mptransport import MPEngine, MPWorld, mp_barrier_service
from .runtime import SharedRuntime
from .vm import WorkerProcess

__all__ = ["execute_mp"]

#: seconds to wait for an already-reported child to exit before terminating
_JOIN_GRACE = 10.0


class _Bag:
    """Attribute bag standing in for a live runtime object."""

    def __init__(self, **kw: Any) -> None:
        self.__dict__.update(kw)


class _WorkerStandIn:
    """Gathered worker state shaped like a :class:`WorkerProcess`."""

    def __init__(self, res: dict) -> None:
        self.worker_index = res["worker_index"]
        self.profile = res["profile"]
        self.scalars = res["scalars"]
        self.owned = res["owned"]
        self.local_blocks = res["local_blocks"]
        self.memman = _Bag(stats=res["mem_stats"], restore_all=lambda: None)
        self.cache = _Bag(stats=res["cache_stats"])
        self.pool = _Bag(stats=res["pool_stats"])
        self.backend = _Bag(wall=res["kernel_wall"])
        self.blockio = _Bag(stats=res["blockio_stats"])
        self.resilience = ResilienceStats()


class _ServerStandIn:
    """Gathered server state shaped like an :class:`IOServerProcess`."""

    def __init__(self, res: dict) -> None:
        self.server_index = res["server_index"]
        self.memman = _Bag(stats=res["mem_stats"])
        self.cache = _Bag(stats=res["cache_stats"])
        self.disk = _Bag(stats=res["disk_stats"])
        self.blockio = _Bag(stats=res["blockio_stats"])
        self.resilience = ResilienceStats()
        self._served: dict[int, dict[tuple, Block]] = res["served"]

    def current_blocks(self, array_id: int) -> dict[tuple, Block]:
        return self._served.get(array_id, {})


class _MasterStandIn:
    def __init__(self, res: dict) -> None:
        self.sched_stats = res["sched_stats"]
        self.chunks_served = res["chunks_served"]
        self.resilience = ResilienceStats()


def _rank_roles(config: SIPConfig) -> dict[int, tuple[str, int]]:
    roles: dict[int, tuple[str, int]] = {config.master_rank: ("master", 0)}
    for i in range(config.workers):
        roles[config.worker_rank(i)] = ("worker", i)
    for i in range(config.io_servers):
        roles[config.server_rank(i)] = ("server", i)
    return roles


def _store_baseline(store: dict) -> dict:
    return {k: dict(v) if isinstance(v, dict) else v for k, v in store.items()}


def _store_delta(store: dict, baseline: dict) -> dict:
    """Entries this rank wrote (identity check: writes bind new objects)."""
    delta: dict = {}
    for k, v in store.items():
        base = baseline.get(k)
        if isinstance(v, dict):
            if not isinstance(base, dict):
                delta[k] = dict(v)
            else:
                d = {c: val for c, val in v.items() if base.get(c) is not val}
                if d:
                    delta[k] = d
        elif k not in baseline or base is not v:
            delta[k] = v
    return delta


#: an arena slab name after its run/rank prefix: e<epoch>a<class>x<seq>
_SLAB_SUFFIX = re.compile(r"^r\d+e\d+a\d+x\d+$")


def _sweep_shm(run_id: str) -> tuple[int, int]:
    """Unlink this run's leftover segments: ``(slabs_swept, leaked)``.

    Arena slabs live for the whole run by design -- children never
    unlink them (a straggler may still be pickling results out of a
    mapped slot), so finding them here is the expected lifecycle, not
    a leak.  Anything else under the run prefix (a one-shot segment a
    crashed rank never unlinked) counts as leaked.
    """
    slabs = leaked = 0
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return 0, 0
    prefix = f"rmp{run_id}"
    for name in names:
        if not name.startswith(prefix):
            continue
        try:
            os.unlink(os.path.join("/dev/shm", name))
        except OSError:
            continue
        if _SLAB_SUFFIX.match(name[len(prefix):]):
            slabs += 1
        else:
            leaked += 1
    return slabs, leaked


def _child_main(
    role: str,
    index: int,
    rank: int,
    program: CompiledProgram,
    config: SIPConfig,
    symbolics: dict[str, float],
    conns: dict[int, Any],
    run_id: str,
    result_conn: Any,
) -> None:
    """One SIP rank, from fork to result shipment.  Never returns."""
    try:
        sim = Simulator()
        world = MPWorld(
            sim,
            config.world_size,
            rank,
            conns,
            run_id,
            shm_min=config.mp_payload_shm_min,
            timeout=config.mp_timeout,
            coordinator=config.master_rank,
            arena=config.mp_arena,
            arena_slab_bytes=config.mp_arena_slab_bytes,
            arena_max_bytes=config.mp_arena_max_bytes,
            batch_max_msgs=config.mp_batch_max_msgs,
            batch_max_bytes=config.mp_batch_max_bytes,
        )
        rt = SharedRuntime(program, config, symbolics, sim, world)
        baseline = _store_baseline(rt.external_store)
        comm = world.comm(rank)
        proc: Any
        if role == "worker":
            from .runner import scatter_worker_inputs

            proc = WorkerProcess(rt, index, comm)
            scatter_worker_inputs(rt, proc)
            sim.spawn(proc.run(), name=f"worker{index}")
            sim.spawn(proc.service(), name=f"worker{index}.service")
        elif role == "server":
            from .runner import scatter_server_inputs

            proc = IOServerProcess(rt, index, comm)
            scatter_server_inputs(rt, proc)
            sim.spawn(proc.run(), name=f"ioserver{index}")
        else:
            proc = MasterProcess(rt, comm)
            sim.spawn(proc.run(), name="master")
            sim.spawn(
                mp_barrier_service(world.comm(rank), world),
                name="barrier.service",
                daemon=True,
            )

        if world.arena is not None and role in ("worker", "server"):
            # slab footprints count against the rank's memory budget
            world.arena.ledger = proc.memman

        MPEngine(sim, world).run()

        res: dict[str, Any] = {
            "role": role,
            "rank": rank,
            "world_stats": world.stats,
            "shm_stats": world.shm_stats,
            "arena_stats": world.arena_stats,
            "batch_stats": world.batch_stats,
        }
        if rt.sanitizer is not None:
            res["sanitizer"] = (rt.sanitizer._records, rt.sanitizer.report_data)
        if config.tracer is not None:
            # the forked recorder holds exactly this rank's events
            res["tracer"] = config.tracer
        if role == "worker":
            proc.memman.restore_all()
            proc.fold_pending_accums()
            res.update(
                worker_index=index,
                scalars=list(proc.scalars),
                profile=proc.profile,
                mem_stats=proc.memman.stats,
                cache_stats=proc.cache.stats,
                pool_stats=proc.pool.stats,
                blockio_stats=proc.blockio.stats,
                kernel_wall=dict(getattr(proc.backend, "wall", None) or {}),
                plan_stats=(
                    rt.plan_cache.stats if rt.plan_cache is not None else None
                ),
                cow=rt.cow,
                owned=dict(proc.owned),
                local_blocks=dict(proc.local_blocks) if index == 0 else {},
                store_delta=_store_delta(rt.external_store, baseline),
            )
        elif role == "server":
            proc.flush_pending()
            res.update(
                server_index=index,
                mem_stats=proc.memman.stats,
                cache_stats=proc.cache.stats,
                disk_stats=proc.disk.stats,
                blockio_stats=proc.blockio.stats,
                served={
                    aid: proc.current_blocks(aid) for aid in rt.served_placements
                },
            )
        else:
            res.update(
                sched_stats=proc.sched_stats, chunks_served=proc.chunks_served
            )
        # lease balance right before anything ships: every mapped slot
        # must be released or still held by a live block; the stats
        # object inside ``res`` is pickled with the updated fields
        world.receiver.account_exit()
        result_conn.send(("ok", res))
        result_conn.close()
    except BaseException as exc:  # noqa: BLE001 - ship *any* failure home
        try:
            result_conn.send(
                (
                    "error",
                    {
                        "role": role,
                        "rank": rank,
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(),
                    },
                )
            )
            result_conn.close()
        except Exception:
            pass
        os._exit(1)
    # os._exit skips atexit/teardown inherited from the parent (pytest
    # plugins, coverage hooks, the parent's resource tracker state)
    os._exit(0)


def execute_mp(
    program: CompiledProgram,
    config: SIPConfig,
    symbolics: dict[str, float],
    retries: ResilienceStats,
    restarts: int,
):
    """Run one attempt on the multiprocess backend; returns a RunResult."""
    from .runner import _finalize

    wall_start = time.perf_counter()
    # The parent's runtime serves feasibility checking, result assembly
    # and merged stats; its (simulated) world never runs a coroutine.
    sim = Simulator()
    world = World(sim, config.world_size, config.machine.network(), None)
    rt = SharedRuntime(program, config, symbolics, sim, world)
    report = dry_run(program, config, rt.table)
    if not report.feasible:
        raise InfeasibleComputation(report.report())

    size = config.world_size
    roles = _rank_roles(config)
    run_id = f"{os.getpid():x}{os.urandom(3).hex()}"
    ctx = get_context("fork")

    # full mesh of duplex pipes, one per unordered rank pair
    mesh: dict[tuple[int, int], tuple[Any, Any]] = {}
    for i in range(size):
        for j in range(i + 1, size):
            mesh[(i, j)] = ctx.Pipe(duplex=True)

    def conns_for(rank: int) -> dict[int, Any]:
        out: dict[int, Any] = {}
        for (i, j), (ci, cj) in mesh.items():
            if i == rank:
                out[j] = ci
            elif j == rank:
                out[i] = cj
        return out

    result_pipes = [ctx.Pipe(duplex=False) for _ in range(size)]
    procs: dict[int, Any] = {}
    try:
        for rank in range(size):
            role, index = roles[rank]
            p = ctx.Process(
                target=_child_main,
                args=(
                    role,
                    index,
                    rank,
                    program,
                    config,
                    symbolics,
                    conns_for(rank),
                    run_id,
                    result_pipes[rank][1],
                ),
                name=f"sip-{role}{index}-r{rank}",
            )
            p.daemon = True  # never outlive a dying parent
            p.start()
            procs[rank] = p
    finally:
        # the parent keeps no mesh or child-side result ends open, so
        # a dead peer reads as EOF instead of a silent hang
        for ci, cj in mesh.values():
            ci.close()
            cj.close()
        for _, child_end in result_pipes:
            child_end.close()

    results: dict[int, dict] = {}
    try:
        results = _supervise(procs, result_pipes, roles)
    except BaseException:
        for p in procs.values():
            if p.is_alive():
                p.terminate()
        for p in procs.values():
            p.join(timeout=_JOIN_GRACE)
            if p.is_alive():
                p.kill()
                p.join()
        _sweep_shm(run_id)
        raise
    for p in procs.values():
        p.join(timeout=_JOIN_GRACE)
        if p.is_alive():
            p.terminate()
            p.join()
    slabs_swept, leaked = _sweep_shm(run_id)

    return _merge(
        program,
        config,
        rt,
        report,
        results,
        roles,
        retries,
        restarts,
        slabs_swept,
        leaked,
        time.perf_counter() - wall_start,
        _finalize,
    )


def _supervise(
    procs: dict[int, Any],
    result_pipes: list,
    roles: dict[int, tuple[str, int]],
) -> dict[int, dict]:
    """Read every rank's result, watching for children dying early."""
    recvs = {rank: result_pipes[rank][0] for rank in procs}
    results: dict[int, dict] = {}
    while len(results) < len(procs):
        pending = [recvs[r] for r in procs if r not in results]
        sentinels = {p.sentinel: r for r, p in procs.items() if p.is_alive()}
        ready = mpconn.wait(pending + list(sentinels), timeout=1.0)
        by_conn = {recvs[r]: r for r in procs if r not in results}
        for obj in ready:
            rank = by_conn.get(obj)
            if rank is None:
                continue  # a sentinel; the liveness check below handles it
            try:
                status, payload = obj.recv()
            except (EOFError, OSError):
                continue  # died between wait and recv; handled below
            if status == "error":
                role, index = roles[rank]
                raise SIPError(
                    f"mp backend: {role} {index} (rank {rank}) failed:\n"
                    f"{payload['traceback']}"
                )
            results[rank] = payload
        for rank, p in procs.items():
            if rank in results or p.is_alive():
                continue
            try:
                if recvs[rank].poll(0):
                    continue  # result (or error) still in flight
            except (EOFError, OSError):
                pass
            role, index = roles[rank]
            raise SIPError(
                f"mp backend: {role} {index} (rank {rank}) died with exit "
                f"code {p.exitcode} before reporting a result"
            )
    return results


def _merge(
    program: CompiledProgram,
    config: SIPConfig,
    rt: SharedRuntime,
    report,
    results: dict[int, dict],
    roles: dict[int, tuple[str, int]],
    retries: ResilienceStats,
    restarts: int,
    slabs_swept: int,
    leaked: int,
    wall_seconds: float,
    _finalize,
):
    workers = [
        _WorkerStandIn(results[config.worker_rank(i)])
        for i in range(config.workers)
    ]
    servers = [
        _ServerStandIn(results[config.server_rank(i)])
        for i in range(config.io_servers)
    ]
    master = _MasterStandIn(results[config.master_rank])

    # traffic, shared-memory, arena and fast-path counters, summed over
    # ranks in rank order
    from .arena import ArenaStats
    from .mptransport import BatchStats

    shm_created = shm_unlinked = shm_bytes = 0
    arena = ArenaStats()
    batches = BatchStats()
    for rank in sorted(results):
        res = results[rank]
        ws = res["world_stats"]
        rt.world.stats.messages_sent += ws.messages_sent
        rt.world.stats.bytes_sent += ws.bytes_sent
        rt.world.stats.remote_bytes += ws.remote_bytes
        ss = res["shm_stats"]
        shm_created += ss.segments_created
        shm_unlinked += ss.segments_unlinked
        shm_bytes += ss.bytes_shared
        ar = res.get("arena_stats")
        if ar is not None:
            arena.add(ar)
        bt = res.get("batch_stats")
        if bt is not None:
            batches.batches += bt.batches
            batches.messages += bt.messages
            batches.frame_bytes += bt.frame_bytes
        san = res.get("sanitizer")
        if san is not None and rt.sanitizer is not None:
            rt.sanitizer.absorb(*san)
        child_tracer = res.get("tracer")
        if child_tracer is not None and config.tracer is not None:
            config.tracer.absorb(child_tracer)

    for w_res in (results[config.worker_rank(i)] for i in range(config.workers)):
        ps = w_res.get("plan_stats")
        if ps is not None and rt.plan_cache is not None:
            tgt = rt.plan_cache.stats
            tgt.hits += ps.hits
            tgt.misses += ps.misses
            tgt.gemm_plans += ps.gemm_plans
            tgt.einsum_plans += ps.einsum_plans
            tgt.perm_hits += ps.perm_hits
            tgt.perm_misses += ps.perm_misses
        cow = w_res.get("cow")
        if cow is not None:
            rt.cow.sends_shared += cow.sends_shared
            rt.cow.bytes_not_copied += cow.bytes_not_copied
            rt.cow.cow_copies += cow.cow_copies
            rt.cow.cow_bytes_copied += cow.cow_bytes_copied
        # merge each worker's external-store writes (worker order keeps
        # checkpoint chaining deterministic; owned coords are disjoint)
        for key, val in w_res.get("store_delta", {}).items():
            if isinstance(val, dict):
                rt.external_store.setdefault(key, {}).update(val)
            else:
                rt.external_store[key] = val

    result = _finalize(
        program,
        config,
        rt,
        report,
        workers,
        servers,
        master,
        retries,
        restarts,
        wall_seconds=wall_seconds,
    )
    result.stats["mp_shm_segments"] = shm_created
    result.stats["mp_shm_bytes"] = shm_bytes
    result.stats["mp_shm_unlinked"] = shm_unlinked
    result.stats["mp_shm_leaked"] = leaked
    result.stats["mp_processes"] = len(results)
    per_write = batches.messages / batches.batches if batches.batches else 0.0
    result.stats.update(
        arena_hits=arena.hits,
        arena_misses=arena.misses,
        arena_handoffs=arena.handoffs,
        arena_slabs=arena.slabs_created,
        arena_slab_bytes=arena.slab_bytes,
        arena_refs_leaked=arena.refs_leaked,
        bytes_zero_copy=arena.bytes_zero_copy,
        mp_arena_slabs_swept=slabs_swept,
        mp_batches=batches.batches,
        batch_msgs_per_write=per_write,
    )
    result.profile.transport = {
        "arena": arena,
        "batches": batches,
        "slabs_swept": slabs_swept,
        "batch_msgs_per_write": per_write,
    }
    if config.tracer is not None:
        config.tracer.annotate(
            "mp_transport",
            {
                "arena_hits": arena.hits,
                "arena_misses": arena.misses,
                "arena_handoffs": arena.handoffs,
                "bytes_zero_copy": arena.bytes_zero_copy,
                "arena_refs_leaked": arena.refs_leaked,
                "batch_msgs_per_write": per_write,
            },
        )
    return result
